// Package interconnect models the socket-to-socket message fabric
// (HyperTransport-style point-to-point links) of a simulated machine. It does
// not add latency — transaction latencies are part of the cache model's cost
// parameters — but it accounts traffic per directed link in 32-bit dwords,
// the unit the paper's Table 4 reports, and derives link utilization.
//
// For fault injection the fabric additionally carries per-directed-link
// degradation state (a latency multiplier and a loss probability); the cache
// model consults TransferPenalty on cross-socket transactions so that a
// degraded or partitioned link slows every coherence transfer routed across
// it. The fault-free fast path is a single boolean test.
package interconnect

import (
	"fmt"
	"sort"
	"strings"

	"multikernel/internal/metrics"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Standard transaction sizes in dwords, approximating HyperTransport packet
// framing: commands and responses are 2-dword packets; a cache-line data
// transfer carries 16 dwords of payload plus a header.
const (
	DwordsProbe = 2  // coherence probe / read command
	DwordsAck   = 2  // probe response / completion without data
	DwordsData  = 18 // 64-byte line + header
)

// Fabric accounts interconnect traffic for one machine.
type Fabric struct {
	m       *topo.Machine
	traffic map[[2]topo.SocketID]uint64 // directed link -> dwords

	// Fault-injection state: per-directed-link degradation. Empty in the
	// fault-free case; the cache model's hot path only pays for it after
	// testing Degraded().
	degrade     map[[2]topo.SocketID]Degrade
	retransmits uint64
}

// New returns an empty fabric for machine m.
func New(m *topo.Machine) *Fabric {
	return &Fabric{m: m, traffic: make(map[[2]topo.SocketID]uint64)}
}

// Degrade describes a fault-injected impairment of one directed link.
// DelayFactor >= 1 multiplies the latency contribution of transfers crossing
// the link; LossProb in [0,1] is the per-crossing probability that a transfer
// is corrupted and must be retried end-to-end. A partitioned link is modeled
// as LossProb = 1: every crossing pays the maximum retry budget, so traffic
// still (eventually) gets through at severe cost — HyperTransport has no
// out-of-band routing table update in this model, and coherence transactions
// cannot simply be dropped.
type Degrade struct {
	DelayFactor float64
	LossProb    float64
}

// maxRetransmits bounds the retry budget of a lossy link crossing, keeping
// even a fully partitioned link's latency finite and deterministic.
const maxRetransmits = 8

// SetDegrade impairs the physical link between sockets a and b (both
// directions). It overwrites any previous degradation of the link.
func (f *Fabric) SetDegrade(a, b topo.SocketID, d Degrade) {
	if f.degrade == nil {
		f.degrade = make(map[[2]topo.SocketID]Degrade)
	}
	f.degrade[[2]topo.SocketID{a, b}] = d
	f.degrade[[2]topo.SocketID{b, a}] = d
}

// ClearDegrade restores the link between a and b (both directions).
func (f *Fabric) ClearDegrade(a, b topo.SocketID) {
	delete(f.degrade, [2]topo.SocketID{a, b})
	delete(f.degrade, [2]topo.SocketID{b, a})
}

// Degraded reports whether any link is currently impaired — the fault-free
// fast-path test.
func (f *Fabric) Degraded() bool { return len(f.degrade) > 0 }

// LinkDegrade returns the impairment of directed link a->b, if any.
func (f *Fabric) LinkDegrade(a, b topo.SocketID) (Degrade, bool) {
	d, ok := f.degrade[[2]topo.SocketID{a, b}]
	return d, ok
}

// Retransmits returns the number of fault-induced end-to-end retries charged
// so far.
func (f *Fabric) Retransmits() uint64 { return f.retransmits }

// TransferPenalty returns the extra latency a transaction of base latency
// pays for crossing degraded links on the shortest path from socket a to b.
// Loss draws come from the engine RNG, so the penalty is deterministic for a
// given seed and event order. A fault-free fabric returns 0 without touching
// the RNG.
func (f *Fabric) TransferPenalty(a, b topo.SocketID, base sim.Time, rng *sim.RNG) sim.Time {
	if len(f.degrade) == 0 || a == b {
		return 0
	}
	var extra sim.Time
	cur := a
	for _, next := range f.m.Route(a, b) {
		if d, ok := f.degrade[[2]topo.SocketID{cur, next}]; ok {
			if d.DelayFactor > 1 {
				extra += sim.Time(float64(base) * (d.DelayFactor - 1))
			}
			for try := 0; d.LossProb > 0 && try < maxRetransmits; try++ {
				if rng.Float64() >= d.LossProb {
					break
				}
				extra += base // end-to-end retry of the whole transaction
				f.retransmits++
			}
		}
		cur = next
	}
	return extra
}

// Machine returns the machine this fabric belongs to.
func (f *Fabric) Machine() *topo.Machine { return f.m }

// Lookahead returns the conservative lookahead of partition map pm on
// machine m: the minimum latency of any coherence transaction crossing a
// partition boundary. A parallel sub-engine may safely run that many cycles
// ahead of its peers, because no message sent "now" by another partition can
// arrive sooner — the cross-partition epoch width of sim.ParallelEngine.
// With fewer than two partitions there is no cross traffic and the lookahead
// is unbounded (sim.Forever).
func Lookahead(m *topo.Machine, pm *topo.PartitionMap) sim.Time {
	min := sim.Forever
	for a := 0; a < m.NSockets; a++ {
		for b := a + 1; b < m.NSockets; b++ {
			sa, sb := topo.SocketID(a), topo.SocketID(b)
			if pm.Part(sa) == pm.Part(sb) {
				continue
			}
			if lat := crossLat(m, sa, sb); lat < min {
				min = lat
			}
		}
	}
	return min
}

// crossLat is the cheapest coherence transaction between two sockets: base
// plus per-hop cost plus any per-link latency surcharge along the route.
func crossLat(m *topo.Machine, a, b topo.SocketID) sim.Time {
	return m.Costs.RemoteBase + sim.Time(m.Hops(a, b))*m.Costs.RemoteHop + m.PathExtra(a, b)
}

// LookaheadMatrix returns the per-partition-pair conservative lookahead:
// entry [i][j] is the minimum cross latency from any socket of partition i to
// any socket of partition j (sim.Forever on the diagonal and for partition
// pairs with no cross traffic possible, i.e. never). On large meshes the
// global Lookahead shrinks with the closest partition pair; a pairwise
// matrix preserves the slack between distant partitions for engines that can
// exploit it (ROADMAP item 4).
func LookaheadMatrix(m *topo.Machine, pm *topo.PartitionMap) [][]sim.Time {
	n := pm.NParts()
	la := make([][]sim.Time, n)
	for i := range la {
		la[i] = make([]sim.Time, n)
		for j := range la[i] {
			la[i][j] = sim.Forever
		}
	}
	for a := 0; a < m.NSockets; a++ {
		for b := 0; b < m.NSockets; b++ {
			sa, sb := topo.SocketID(a), topo.SocketID(b)
			pa, pb := pm.Part(sa), pm.Part(sb)
			if pa == pb {
				continue
			}
			if lat := crossLat(m, sa, sb); lat < la[pa][pb] {
				la[pa][pb] = lat
			}
		}
	}
	return la
}

// SetMetrics registers the fabric's accumulated state with a registry as lazy
// counters: totals, retransmits, and the dword count of each physical link in
// both directions. Sampling happens only at snapshot time, so the charge path
// stays untouched.
func (f *Fabric) SetMetrics(reg *metrics.Registry) {
	reg.CounterFunc("interconnect.dwords_total", f.TotalDwords)
	reg.CounterFunc("interconnect.retransmits", f.Retransmits)
	for _, l := range f.m.Links {
		a, b := l.A, l.B
		reg.CounterFunc(fmt.Sprintf("interconnect.link.%d-%d.dwords", a, b),
			func() uint64 { return f.LinkDwords(a, b) })
		reg.CounterFunc(fmt.Sprintf("interconnect.link.%d-%d.dwords", b, a),
			func() uint64 { return f.LinkDwords(b, a) })
	}
}

// Reset zeroes all traffic counters.
func (f *Fabric) Reset() { f.traffic = make(map[[2]topo.SocketID]uint64) }

// Charge records dwords of traffic along the shortest path from socket a to
// socket b. Charging a == b is a no-op (intra-socket traffic never reaches
// the fabric).
func (f *Fabric) Charge(a, b topo.SocketID, dwords int) {
	cur := a
	for _, next := range f.m.Route(a, b) {
		f.traffic[[2]topo.SocketID{cur, next}] += uint64(dwords)
		cur = next
	}
}

// ChargeBroadcast records dwords of traffic from socket a to every other
// socket along a shortest-path tree (each link charged once per broadcast),
// modelling probe broadcast on an unfiltered coherence fabric.
func (f *Fabric) ChargeBroadcast(a topo.SocketID, dwords int) {
	seen := map[[2]topo.SocketID]bool{}
	for s := 0; s < f.m.NSockets; s++ {
		if topo.SocketID(s) == a {
			continue
		}
		cur := a
		for _, next := range f.m.Route(a, topo.SocketID(s)) {
			k := [2]topo.SocketID{cur, next}
			if !seen[k] {
				seen[k] = true
				f.traffic[k] += uint64(dwords)
			}
			cur = next
		}
	}
}

// LinkDwords returns the dwords recorded on the directed link a->b. The link
// need not exist; missing links carry zero.
func (f *Fabric) LinkDwords(a, b topo.SocketID) uint64 {
	return f.traffic[[2]topo.SocketID{a, b}]
}

// PathDwords returns the traffic recorded on the first link of the shortest
// path from a to b — the "a to b direction" figure reported in the paper's
// loopback table.
func (f *Fabric) PathDwords(a, b topo.SocketID) uint64 {
	r := f.m.Route(a, b)
	if len(r) == 0 {
		return 0
	}
	return f.LinkDwords(a, r[0])
}

// TotalDwords returns the sum over all directed links.
func (f *Fabric) TotalDwords() uint64 {
	var sum uint64
	for _, v := range f.traffic {
		sum += v
	}
	return sum
}

// Utilization returns the fraction of link a->b's bandwidth consumed over an
// interval of elapsed cycles, given the link's bandwidth in GB/s.
func (f *Fabric) Utilization(a, b topo.SocketID, elapsed uint64, linkGBps float64) float64 {
	if elapsed == 0 || linkGBps <= 0 {
		return 0
	}
	bytes := float64(f.LinkDwords(a, b)) * 4
	seconds := float64(elapsed) / (f.m.ClockGHz * 1e9)
	return bytes / (linkGBps * 1e9 * seconds)
}

// LinkUtilization is Utilization with the bandwidth taken from the machine's
// per-topology link bandwidth map (topo.Machine.LinkBandwidth), so slower
// uplinks of a hierarchy saturate earlier than their traffic share suggests.
func (f *Fabric) LinkUtilization(a, b topo.SocketID, elapsed uint64) float64 {
	return f.Utilization(a, b, elapsed, f.m.LinkBandwidth(a, b))
}

// Snapshot returns a sorted human-readable listing of per-link traffic.
func (f *Fabric) Snapshot() string {
	keys := make([][2]topo.SocketID, 0, len(f.traffic))
	for k := range f.traffic {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "link %d->%d: %d dwords\n", k[0], k[1], f.traffic[k])
	}
	return b.String()
}
