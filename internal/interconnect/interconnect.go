// Package interconnect models the socket-to-socket message fabric
// (HyperTransport-style point-to-point links) of a simulated machine. It does
// not add latency — transaction latencies are part of the cache model's cost
// parameters — but it accounts traffic per directed link in 32-bit dwords,
// the unit the paper's Table 4 reports, and derives link utilization.
package interconnect

import (
	"fmt"
	"sort"
	"strings"

	"multikernel/internal/topo"
)

// Standard transaction sizes in dwords, approximating HyperTransport packet
// framing: commands and responses are 2-dword packets; a cache-line data
// transfer carries 16 dwords of payload plus a header.
const (
	DwordsProbe = 2  // coherence probe / read command
	DwordsAck   = 2  // probe response / completion without data
	DwordsData  = 18 // 64-byte line + header
)

// Fabric accounts interconnect traffic for one machine.
type Fabric struct {
	m       *topo.Machine
	traffic map[[2]topo.SocketID]uint64 // directed link -> dwords
}

// New returns an empty fabric for machine m.
func New(m *topo.Machine) *Fabric {
	return &Fabric{m: m, traffic: make(map[[2]topo.SocketID]uint64)}
}

// Machine returns the machine this fabric belongs to.
func (f *Fabric) Machine() *topo.Machine { return f.m }

// Reset zeroes all traffic counters.
func (f *Fabric) Reset() { f.traffic = make(map[[2]topo.SocketID]uint64) }

// Charge records dwords of traffic along the shortest path from socket a to
// socket b. Charging a == b is a no-op (intra-socket traffic never reaches
// the fabric).
func (f *Fabric) Charge(a, b topo.SocketID, dwords int) {
	cur := a
	for _, next := range f.m.Route(a, b) {
		f.traffic[[2]topo.SocketID{cur, next}] += uint64(dwords)
		cur = next
	}
}

// ChargeBroadcast records dwords of traffic from socket a to every other
// socket along a shortest-path tree (each link charged once per broadcast),
// modelling probe broadcast on an unfiltered coherence fabric.
func (f *Fabric) ChargeBroadcast(a topo.SocketID, dwords int) {
	seen := map[[2]topo.SocketID]bool{}
	for s := 0; s < f.m.NSockets; s++ {
		if topo.SocketID(s) == a {
			continue
		}
		cur := a
		for _, next := range f.m.Route(a, topo.SocketID(s)) {
			k := [2]topo.SocketID{cur, next}
			if !seen[k] {
				seen[k] = true
				f.traffic[k] += uint64(dwords)
			}
			cur = next
		}
	}
}

// LinkDwords returns the dwords recorded on the directed link a->b. The link
// need not exist; missing links carry zero.
func (f *Fabric) LinkDwords(a, b topo.SocketID) uint64 {
	return f.traffic[[2]topo.SocketID{a, b}]
}

// PathDwords returns the traffic recorded on the first link of the shortest
// path from a to b — the "a to b direction" figure reported in the paper's
// loopback table.
func (f *Fabric) PathDwords(a, b topo.SocketID) uint64 {
	r := f.m.Route(a, b)
	if len(r) == 0 {
		return 0
	}
	return f.LinkDwords(a, r[0])
}

// TotalDwords returns the sum over all directed links.
func (f *Fabric) TotalDwords() uint64 {
	var sum uint64
	for _, v := range f.traffic {
		sum += v
	}
	return sum
}

// Utilization returns the fraction of link a->b's bandwidth consumed over an
// interval of elapsed cycles, given the link's bandwidth in GB/s.
func (f *Fabric) Utilization(a, b topo.SocketID, elapsed uint64, linkGBps float64) float64 {
	if elapsed == 0 || linkGBps <= 0 {
		return 0
	}
	bytes := float64(f.LinkDwords(a, b)) * 4
	seconds := float64(elapsed) / (f.m.ClockGHz * 1e9)
	return bytes / (linkGBps * 1e9 * seconds)
}

// Snapshot returns a sorted human-readable listing of per-link traffic.
func (f *Fabric) Snapshot() string {
	keys := make([][2]topo.SocketID, 0, len(f.traffic))
	for k := range f.traffic {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "link %d->%d: %d dwords\n", k[0], k[1], f.traffic[k])
	}
	return b.String()
}
