package interconnect

import (
	"strings"
	"testing"

	"multikernel/internal/topo"
)

func TestChargeSingleLink(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(0, 1, 18)
	if got := f.LinkDwords(0, 1); got != 18 {
		t.Fatalf("0->1 = %d, want 18", got)
	}
	if got := f.LinkDwords(1, 0); got != 0 {
		t.Fatalf("reverse direction charged: %d", got)
	}
}

func TestChargeSelfIsNoop(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(1, 1, 100)
	if f.TotalDwords() != 0 {
		t.Fatal("self-charge recorded traffic")
	}
}

func TestChargeMultiHop(t *testing.T) {
	m := topo.AMD8x4()
	f := New(m)
	// 0 -> 2 is two hops (0-4-2).
	if m.Hops(0, 2) != 2 {
		t.Fatalf("precondition: hops(0,2)=%d", m.Hops(0, 2))
	}
	f.Charge(0, 2, 10)
	if f.TotalDwords() != 20 {
		t.Fatalf("total=%d, want 20 (10 on each of 2 links)", f.TotalDwords())
	}
	route := m.Route(0, 2)
	if got := f.LinkDwords(0, route[0]); got != 10 {
		t.Fatalf("first link=%d", got)
	}
}

func TestChargeBroadcastChargesEachLinkOnce(t *testing.T) {
	m := topo.AMD4x4()
	f := New(m)
	f.ChargeBroadcast(0, 2)
	// Shortest-path tree from socket 0 in a 4-socket square reaches the 3
	// other sockets over exactly 3 directed links.
	if got := f.TotalDwords(); got != 6 {
		t.Fatalf("total=%d, want 6", got)
	}
}

func TestPathDwords(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(0, 1, 7)
	f.Charge(1, 0, 3)
	if got := f.PathDwords(0, 1); got != 7 {
		t.Fatalf("path 0->1 = %d", got)
	}
	if got := f.PathDwords(1, 0); got != 3 {
		t.Fatalf("path 1->0 = %d", got)
	}
	if got := f.PathDwords(0, 0); got != 0 {
		t.Fatalf("self path = %d", got)
	}
}

func TestUtilization(t *testing.T) {
	m := topo.AMD2x2() // 2.8 GHz
	f := New(m)
	// 2.8e9 cycles = 1 second. 2e9 dwords = 8 GB on an 8 GB/s link = 100%.
	f.Charge(0, 1, 2_000_000_000)
	u := f.Utilization(0, 1, 2_800_000_000, 8)
	if u < 0.99 || u > 1.01 {
		t.Fatalf("utilization=%v, want ~1.0", u)
	}
	if f.Utilization(0, 1, 0, 8) != 0 {
		t.Fatal("zero elapsed should give zero utilization")
	}
}

func TestReset(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(0, 1, 5)
	f.Reset()
	if f.TotalDwords() != 0 {
		t.Fatal("reset did not clear traffic")
	}
}

func TestSnapshotListsLinks(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(0, 1, 5)
	s := f.Snapshot()
	if !strings.Contains(s, "link 0->1: 5 dwords") {
		t.Fatalf("snapshot: %q", s)
	}
}
