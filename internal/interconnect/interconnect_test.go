package interconnect

import (
	"strings"
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func TestChargeSingleLink(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(0, 1, 18)
	if got := f.LinkDwords(0, 1); got != 18 {
		t.Fatalf("0->1 = %d, want 18", got)
	}
	if got := f.LinkDwords(1, 0); got != 0 {
		t.Fatalf("reverse direction charged: %d", got)
	}
}

func TestChargeSelfIsNoop(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(1, 1, 100)
	if f.TotalDwords() != 0 {
		t.Fatal("self-charge recorded traffic")
	}
}

func TestChargeMultiHop(t *testing.T) {
	m := topo.AMD8x4()
	f := New(m)
	// 0 -> 2 is two hops (0-4-2).
	if m.Hops(0, 2) != 2 {
		t.Fatalf("precondition: hops(0,2)=%d", m.Hops(0, 2))
	}
	f.Charge(0, 2, 10)
	if f.TotalDwords() != 20 {
		t.Fatalf("total=%d, want 20 (10 on each of 2 links)", f.TotalDwords())
	}
	route := m.Route(0, 2)
	if got := f.LinkDwords(0, route[0]); got != 10 {
		t.Fatalf("first link=%d", got)
	}
}

func TestChargeBroadcastChargesEachLinkOnce(t *testing.T) {
	m := topo.AMD4x4()
	f := New(m)
	f.ChargeBroadcast(0, 2)
	// Shortest-path tree from socket 0 in a 4-socket square reaches the 3
	// other sockets over exactly 3 directed links.
	if got := f.TotalDwords(); got != 6 {
		t.Fatalf("total=%d, want 6", got)
	}
}

func TestPathDwords(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(0, 1, 7)
	f.Charge(1, 0, 3)
	if got := f.PathDwords(0, 1); got != 7 {
		t.Fatalf("path 0->1 = %d", got)
	}
	if got := f.PathDwords(1, 0); got != 3 {
		t.Fatalf("path 1->0 = %d", got)
	}
	if got := f.PathDwords(0, 0); got != 0 {
		t.Fatalf("self path = %d", got)
	}
}

func TestUtilization(t *testing.T) {
	m := topo.AMD2x2() // 2.8 GHz
	f := New(m)
	// 2.8e9 cycles = 1 second. 2e9 dwords = 8 GB on an 8 GB/s link = 100%.
	f.Charge(0, 1, 2_000_000_000)
	u := f.Utilization(0, 1, 2_800_000_000, 8)
	if u < 0.99 || u > 1.01 {
		t.Fatalf("utilization=%v, want ~1.0", u)
	}
	if f.Utilization(0, 1, 0, 8) != 0 {
		t.Fatal("zero elapsed should give zero utilization")
	}
}

func TestReset(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(0, 1, 5)
	f.Reset()
	if f.TotalDwords() != 0 {
		t.Fatal("reset did not clear traffic")
	}
}

func TestSnapshotListsLinks(t *testing.T) {
	f := New(topo.AMD2x2())
	f.Charge(0, 1, 5)
	s := f.Snapshot()
	if !strings.Contains(s, "link 0->1: 5 dwords") {
		t.Fatalf("snapshot: %q", s)
	}
}

func TestDegradeDelayFactorAddsPenalty(t *testing.T) {
	m := topo.AMD2x2()
	f := New(m)
	rng := sim.NewRNG(1)
	if f.Degraded() {
		t.Fatal("fresh fabric reports degraded")
	}
	if got := f.TransferPenalty(0, 1, 100, rng); got != 0 {
		t.Fatalf("fault-free penalty=%d, want 0", got)
	}
	f.SetDegrade(0, 1, Degrade{DelayFactor: 3})
	if !f.Degraded() {
		t.Fatal("degraded fabric not reported")
	}
	// DelayFactor 3 adds 2x the base latency on the single crossed link,
	// symmetrically in both directions.
	if got := f.TransferPenalty(0, 1, 100, rng); got != 200 {
		t.Fatalf("penalty=%d, want 200", got)
	}
	if got := f.TransferPenalty(1, 0, 100, rng); got != 200 {
		t.Fatalf("reverse penalty=%d, want 200", got)
	}
	f.ClearDegrade(0, 1)
	if f.Degraded() {
		t.Fatal("degradation not cleared")
	}
	if got := f.TransferPenalty(0, 1, 100, rng); got != 0 {
		t.Fatalf("penalty after clear=%d, want 0", got)
	}
}

func TestDegradeOnlyChargesCrossedLinks(t *testing.T) {
	m := topo.AMD8x4()
	f := New(m)
	rng := sim.NewRNG(1)
	// Degrade a link that is NOT on the 0->4 route.
	f.SetDegrade(2, 6, Degrade{DelayFactor: 10})
	if got := f.TransferPenalty(0, 4, 100, rng); got != 0 {
		t.Fatalf("penalty on unaffected route=%d, want 0", got)
	}
	// Multi-hop route 0->2 crosses 0-4 and 4-2; degrade the second hop.
	route := m.Route(0, 2)
	if len(route) != 2 {
		t.Fatalf("precondition: route 0->2 = %v", route)
	}
	f.SetDegrade(route[0], 2, Degrade{DelayFactor: 2})
	if got := f.TransferPenalty(0, 2, 100, rng); got != 100 {
		t.Fatalf("multi-hop penalty=%d, want 100", got)
	}
}

func TestPartitionedLinkPaysFullRetryBudgetDeterministically(t *testing.T) {
	m := topo.AMD2x2()
	f := New(m)
	rng := sim.NewRNG(9)
	f.SetDegrade(0, 1, Degrade{LossProb: 1})
	// LossProb 1 always exhausts the retry budget: penalty is exactly
	// maxRetransmits full retries, independent of the RNG.
	want := sim.Time(maxRetransmits * 100)
	if got := f.TransferPenalty(0, 1, 100, rng); got != want {
		t.Fatalf("partition penalty=%d, want %d", got, want)
	}
	if f.Retransmits() != maxRetransmits {
		t.Fatalf("retransmits=%d, want %d", f.Retransmits(), maxRetransmits)
	}
}

func TestLossyLinkIsSeedDeterministic(t *testing.T) {
	m := topo.AMD2x2()
	run := func() []sim.Time {
		f := New(m)
		rng := sim.NewRNG(1234)
		f.SetDegrade(0, 1, Degrade{LossProb: 0.4})
		var out []sim.Time
		for i := 0; i < 50; i++ {
			out = append(out, f.TransferPenalty(0, 1, 100, rng))
		}
		return out
	}
	a, b := run(), run()
	var retried bool
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
		if a[i] > 0 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("lossy link never retried in 50 draws at p=0.4")
	}
}
