package interconnect

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func TestLookaheadPerSocket(t *testing.T) {
	m := topo.AMD8x4()
	// Finest partitioning: the lookahead is the cheapest cross-socket
	// transaction anywhere — adjacent sockets, one hop.
	want := m.Costs.RemoteBase + 1*m.Costs.RemoteHop
	if got := Lookahead(m, topo.PerSocket(m)); got != want {
		t.Errorf("Lookahead(PerSocket) = %d, want %d", got, want)
	}
}

func TestLookaheadSinglePartition(t *testing.T) {
	m := topo.AMD8x4()
	// One partition has no cross-partition traffic at all: the epoch is
	// unbounded and the parallel engine degenerates to a serial run.
	if got := Lookahead(m, topo.Partition(m, 1)); got != sim.Forever {
		t.Errorf("Lookahead(1 partition) = %d, want Forever", got)
	}
}

// TestLookaheadMonotone: coarsening the partitioning removes cross-partition
// socket pairs, so the lookahead (a minimum over those pairs) can only grow
// or stay put. Verified against a brute-force recomputation at every width.
func TestLookaheadMonotone(t *testing.T) {
	for _, m := range topo.AllMachines() {
		prev := sim.Time(0)
		for nparts := m.NSockets; nparts >= 1; nparts-- {
			pm := topo.Partition(m, nparts)
			got := Lookahead(m, pm)
			want := sim.Forever
			for a := 0; a < m.NSockets; a++ {
				for b := 0; b < m.NSockets; b++ {
					if a == b || pm.Part(topo.SocketID(a)) == pm.Part(topo.SocketID(b)) {
						continue
					}
					lat := m.Costs.RemoteBase + sim.Time(m.Hops(topo.SocketID(a), topo.SocketID(b)))*m.Costs.RemoteHop
					if lat < want {
						want = lat
					}
				}
			}
			if got != want {
				t.Fatalf("%s nparts=%d: Lookahead = %d, brute force says %d", m.Name, nparts, got, want)
			}
			if got < prev {
				t.Fatalf("%s: lookahead shrank from %d to %d when coarsening to %d partitions", m.Name, prev, got, nparts)
			}
			prev = got
		}
	}
}
