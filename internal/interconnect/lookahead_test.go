package interconnect

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func TestLookaheadPerSocket(t *testing.T) {
	m := topo.AMD8x4()
	// Finest partitioning: the lookahead is the cheapest cross-socket
	// transaction anywhere — adjacent sockets, one hop.
	want := m.Costs.RemoteBase + 1*m.Costs.RemoteHop
	if got := Lookahead(m, topo.PerSocket(m)); got != want {
		t.Errorf("Lookahead(PerSocket) = %d, want %d", got, want)
	}
}

func TestLookaheadSinglePartition(t *testing.T) {
	m := topo.AMD8x4()
	// One partition has no cross-partition traffic at all: the epoch is
	// unbounded and the parallel engine degenerates to a serial run.
	if got := Lookahead(m, topo.Partition(m, 1)); got != sim.Forever {
		t.Errorf("Lookahead(1 partition) = %d, want Forever", got)
	}
}

// Mesh and torus partition maps: the lookahead is the cheapest adjacent
// cross-partition pair, and it is the SAME for every mesh size — growing the
// mesh never grows the epoch width, which is why per-partition-pair matrices
// matter at scale (ROADMAP item 4).
func TestLookaheadMeshTorus(t *testing.T) {
	for _, k := range []int{3, 4, 8, 16} {
		m := topo.Mesh(k)
		want := m.Costs.RemoteBase + 1*m.Costs.RemoteHop
		if got := Lookahead(m, topo.PerSocket(m)); got != want {
			t.Errorf("mesh-%d Lookahead(PerSocket) = %d, want %d", k, got, want)
		}
		// Contiguous halves still touch along a row boundary: adjacent pair.
		if got := Lookahead(m, topo.Partition(m, 2)); got != want {
			t.Errorf("mesh-%d Lookahead(2 parts) = %d, want %d", k, got, want)
		}
	}
	for _, k := range []int{3, 5, 8} {
		m := topo.Torus(k)
		want := m.Costs.RemoteBase + 1*m.Costs.RemoteHop
		if got := Lookahead(m, topo.PerSocket(m)); got != want {
			t.Errorf("torus-%d Lookahead(PerSocket) = %d, want %d", k, got, want)
		}
	}
}

// The hierarchy's uplink surcharge must show up in the lookahead: two
// clusters in separate partitions are at least one uplink crossing apart.
func TestLookaheadHierUplink(t *testing.T) {
	m := topo.Hier(4, 4, 2)
	// One partition per cluster (4 sockets each).
	pm := topo.Partition(m, 4)
	base := m.Costs.RemoteBase + 1*m.Costs.RemoteHop
	got := Lookahead(m, pm)
	if got <= base {
		t.Fatalf("Lookahead(per-cluster) = %d, want > %d (uplink surcharge)", got, base)
	}
	if got != base+m.PathExtra(0, 4) {
		t.Fatalf("Lookahead(per-cluster) = %d, want %d", got, base+m.PathExtra(0, 4))
	}
}

// TestLookaheadMatrix: every entry is the brute-force per-pair minimum, the
// global Lookahead equals the matrix minimum, and on a big mesh distant
// partition pairs keep strictly more slack than adjacent ones — the payoff
// of tracking the matrix at all.
func TestLookaheadMatrix(t *testing.T) {
	machines := []*topo.Machine{topo.AMD8x4(), topo.Mesh(4), topo.Torus(4), topo.Mesh(8)}
	for _, m := range machines {
		pm := topo.PerSocket(m)
		la := LookaheadMatrix(m, pm)
		min := sim.Forever
		for i := 0; i < pm.NParts(); i++ {
			for j := 0; j < pm.NParts(); j++ {
				want := sim.Forever
				for _, sa := range pm.Sockets(i) {
					for _, sb := range pm.Sockets(j) {
						if pm.Part(sa) == pm.Part(sb) {
							continue
						}
						lat := m.Costs.RemoteBase + sim.Time(m.Hops(sa, sb))*m.Costs.RemoteHop + m.PathExtra(sa, sb)
						if lat < want {
							want = lat
						}
					}
				}
				if la[i][j] != want {
					t.Fatalf("%s matrix[%d][%d] = %d, brute force says %d", m.Name, i, j, la[i][j], want)
				}
				if la[i][j] < min {
					min = la[i][j]
				}
			}
		}
		if got := Lookahead(m, pm); got != min {
			t.Fatalf("%s: Lookahead = %d, matrix min = %d", m.Name, got, min)
		}
	}
	// mesh-8 per-socket: corner partitions (sockets 0 and 63) are 14 hops
	// apart; their pairwise lookahead must exceed the adjacent-pair epoch.
	m := topo.Mesh(8)
	pm := topo.PerSocket(m)
	la := LookaheadMatrix(m, pm)
	if la[0][63] <= la[0][1] {
		t.Fatalf("distant pair lookahead %d not > adjacent %d", la[0][63], la[0][1])
	}
}

// TestLookaheadMonotone: coarsening the partitioning removes cross-partition
// socket pairs, so the lookahead (a minimum over those pairs) can only grow
// or stay put. Verified against a brute-force recomputation at every width.
func TestLookaheadMonotone(t *testing.T) {
	for _, m := range topo.AllMachines() {
		prev := sim.Time(0)
		for nparts := m.NSockets; nparts >= 1; nparts-- {
			pm := topo.Partition(m, nparts)
			got := Lookahead(m, pm)
			want := sim.Forever
			for a := 0; a < m.NSockets; a++ {
				for b := 0; b < m.NSockets; b++ {
					if a == b || pm.Part(topo.SocketID(a)) == pm.Part(topo.SocketID(b)) {
						continue
					}
					lat := m.Costs.RemoteBase + sim.Time(m.Hops(topo.SocketID(a), topo.SocketID(b)))*m.Costs.RemoteHop
					if lat < want {
						want = lat
					}
				}
			}
			if got != want {
				t.Fatalf("%s nparts=%d: Lookahead = %d, brute force says %d", m.Name, nparts, got, want)
			}
			if got < prev {
				t.Fatalf("%s: lookahead shrank from %d to %d when coarsening to %d partitions", m.Name, prev, got, nparts)
			}
			prev = got
		}
	}
}
