// The virtual-time health monitor: a pure consumer of committed windows.
// It never probes the cluster — replication factor and latency quantiles are
// read off the store the aggregation tree already filled, so health judgments
// arrive with the same bounded staleness as every other observation and cost
// no extra messages. A kvcluster server kill therefore surfaces as a degraded
// event within (detector period + op timeout + ~2 sampling intervals): the
// failure detector must notice the silence, the cluster must shrink the ISR
// gauge, and the shrunken level must ride one window up the tree.

package obs

import (
	"sort"
	"strconv"
	"strings"

	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/trace"
)

// HealthConfig parameterizes the monitor.
type HealthConfig struct {
	// ReplicaPrefix selects the per-shard replication gauges:
	// series named <ReplicaPrefix><shard>.replicas (default "kv.shard.").
	ReplicaPrefix string
	// ReplicaTarget is the healthy replication factor: a shard whose level
	// drops below it is degraded, at or above it recovered.
	ReplicaTarget int64
	// LatencyHist names the op-latency histogram whose windowed p99/p999 the
	// monitor derives and commits back as gauge series <LatencyHist>.p99 and
	// <LatencyHist>.p999 (default "kv.op_cycles").
	LatencyHist string
}

// HealthEventKind distinguishes degraded from recovered transitions.
type HealthEventKind uint8

const (
	ShardDegraded HealthEventKind = iota
	ShardRecovered
)

func (k HealthEventKind) String() string {
	if k == ShardDegraded {
		return "degraded"
	}
	return "recovered"
}

// HealthEvent is one shard health transition, stamped with the window's
// nominal virtual time.
type HealthEvent struct {
	At       uint64
	Shard    int
	Kind     HealthEventKind
	Replicas int64
}

// Health watches committed windows for shard replication drops and derives
// windowed latency quantiles.
type Health struct {
	pl  *Plane
	cfg HealthConfig

	degraded map[int]bool // shard -> currently below target
	events   []HealthEvent
}

// EnableHealth attaches a health monitor to the plane's commit hook and
// returns it. Call before Start.
func (pl *Plane) EnableHealth(cfg HealthConfig) *Health {
	if cfg.ReplicaPrefix == "" {
		cfg.ReplicaPrefix = "kv.shard."
	}
	if cfg.LatencyHist == "" {
		cfg.LatencyHist = "kv.op_cycles"
	}
	h := &Health{pl: pl, cfg: cfg, degraded: make(map[int]bool)}
	pl.OnCommit(h.check)
	return h
}

// Events returns every transition observed so far, in commit order.
func (h *Health) Events() []HealthEvent { return h.events }

// Degraded reports whether any shard is currently below target.
func (h *Health) Degraded() bool {
	for _, d := range h.degraded {
		if d {
			return true
		}
	}
	return false
}

// check runs after window `tick` commits: replica state machine first, then
// windowed quantiles.
func (h *Health) check(p *sim.Proc, tick uint64) {
	at := tick * uint64(h.pl.cfg.Interval)
	st := h.pl.store

	// Shard replica levels. Iterating the store's sorted names keeps event
	// order deterministic when several shards transition in one window.
	for _, name := range st.Names() {
		rest, ok := strings.CutPrefix(name, h.cfg.ReplicaPrefix)
		if !ok {
			continue
		}
		idx, ok := strings.CutSuffix(rest, ".replicas")
		if !ok {
			continue
		}
		shard, err := strconv.Atoi(idx)
		if err != nil {
			continue
		}
		last, ok := st.Get(name).Last()
		if !ok {
			continue
		}
		below := last.V < h.cfg.ReplicaTarget
		if below == h.degraded[shard] {
			continue
		}
		h.degraded[shard] = below
		kind, evName := ShardRecovered, "obs.shard.recovered"
		if below {
			kind, evName = ShardDegraded, "obs.shard.degraded"
		}
		h.events = append(h.events, HealthEvent{At: at, Shard: shard, Kind: kind, Replicas: last.V})
		h.pl.eng.Tracer().Emit(at, trace.Instant, trace.SubObs, -1, evName,
			uint64(shard), uint64(last.V))
	}

	// Windowed latency quantiles, rebuilt from the histogram's bucket
	// pseudo-series: a bucket contributed to this window iff its last point
	// landed at this window's nominal time.
	var sum stats.HistogramSummary
	for _, name := range st.Names() {
		rest, ok := strings.CutPrefix(name, h.cfg.LatencyHist+".le")
		if !ok {
			continue
		}
		le, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			continue
		}
		last, ok := st.Get(name).Last()
		if !ok || last.At != at || last.V <= 0 {
			continue
		}
		sum.Buckets = append(sum.Buckets, stats.HistBucket{Le: le, Count: uint64(last.V)})
		sum.N += uint64(last.V)
	}
	if sum.N == 0 {
		return // idle window: no ops, no quantile points
	}
	sort.Slice(sum.Buckets, func(i, j int) bool { return sum.Buckets[i].Le < sum.Buckets[j].Le })
	sum.Max = sum.Buckets[len(sum.Buckets)-1].Le
	st.Commit(at, h.cfg.LatencyHist+".p99", int64(sum.Quantile(0.99)), true)
	st.Commit(at, h.cfg.LatencyHist+".p999", int64(sum.Quantile(0.999)), true)
}
