// The cluster-wide time-series store: where the aggregation tree's committed
// windows land, keyed by virtual time.
//
// Two series shapes exist. Counter series hold per-window deltas (the value
// committed at tick k is what the cluster accumulated during window k), with
// a running Total so fidelity against the exact registry counters is a
// one-line comparison. Gauge series hold levels, committed only on change.
// Each series ring-buffers its most recent points — bounded memory for an
// arbitrarily long run, like the trace ring.
//
// Like trace export, every renderer here (JSON, table, Perfetto counter
// tracks) is hand-rolled over name-sorted series, so the output bytes are a
// pure function of the committed data — the property the byte-identity
// determinism test hashes.

package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"multikernel/internal/trace"
)

// Point is one committed sample: the series' value V at virtual time At (a
// window delta for counter series, a level for gauge series).
type Point struct {
	At uint64
	V  int64
}

// Series is one named time series in the store.
type Series struct {
	Name  string
	Gauge bool

	ring  []Point // fixed-capacity ring, oldest overwritten first
	n     uint64  // points ever committed
	total int64   // counters: cumulative sum of all committed deltas
}

// Points returns the retained points, oldest first.
func (s *Series) Points() []Point {
	cap := uint64(cap(s.ring))
	if s.n <= cap {
		return s.ring
	}
	cut := int(s.n % cap)
	out := make([]Point, 0, cap)
	out = append(out, s.ring[cut:]...)
	return append(out, s.ring[:cut]...)
}

// N returns the number of points ever committed (≥ len(Points()) after the
// ring wraps).
func (s *Series) N() uint64 { return s.n }

// Total returns the cumulative sum of every committed delta — for a counter
// series, the cluster-wide counter value as of the last committed window.
func (s *Series) Total() int64 { return s.total }

// Last returns the most recent point, if any.
func (s *Series) Last() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	return s.ring[(s.n-1)%uint64(cap(s.ring))], true
}

// Store holds every committed series.
type Store struct {
	ring   int
	series map[string]*Series
}

// NewStore returns an empty store whose series each retain the last ring
// points.
func NewStore(ring int) *Store {
	if ring < 1 {
		ring = 1
	}
	return &Store{ring: ring, series: make(map[string]*Series)}
}

// Commit appends one point to the named series, creating it on first use.
func (st *Store) Commit(at uint64, name string, v int64, gauge bool) {
	s := st.series[name]
	if s == nil {
		s = &Series{Name: name, Gauge: gauge, ring: make([]Point, 0, st.ring)}
		st.series[name] = s
	}
	pt := Point{At: at, V: v}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, pt)
	} else {
		s.ring[s.n%uint64(cap(s.ring))] = pt
	}
	s.n++
	if !gauge {
		s.total += v
	}
}

// Get returns the named series, or nil.
func (st *Store) Get(name string) *Series { return st.series[name] }

// Names returns every series name, sorted.
func (st *Store) Names() []string {
	out := make([]string, 0, len(st.series))
	for n := range st.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteJSON exports the store as a deterministic JSON document: series sorted
// by name, points oldest first. Hand-rolled for the same reason trace export
// is — the bytes must be identical across runs and host parallelism.
func (st *Store) WriteJSON(w io.Writer) error {
	var b []byte
	b = append(b, `{"series":[`...)
	for i, name := range st.Names() {
		s := st.series[name]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n{\"name\":"...)
		b = strconv.AppendQuote(b, s.Name)
		if s.Gauge {
			b = append(b, `,"gauge":true`...)
		} else {
			b = append(b, `,"total":`...)
			b = strconv.AppendInt(b, s.total, 10)
		}
		b = append(b, `,"n":`...)
		b = strconv.AppendUint(b, s.n, 10)
		b = append(b, `,"points":[`...)
		for j, p := range s.Points() {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, `[`...)
			b = strconv.AppendUint(b, p.At, 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, p.V, 10)
			b = append(b, ']')
		}
		b = append(b, "]}"...)
	}
	b = append(b, "\n]}\n"...)
	_, err := w.Write(b)
	return err
}

// Render returns an aligned text table of every series matching prefix (""
// for all): name, point count, last value, and cumulative total for counter
// series.
func (st *Store) Render(prefix string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %8s %14s %14s\n", "series", "points", "last", "total")
	for _, name := range st.Names() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		s := st.series[name]
		last, _ := s.Last()
		tot := "gauge"
		if !s.Gauge {
			tot = strconv.FormatInt(s.total, 10)
		}
		fmt.Fprintf(&b, "%-40s %8d %14d %14s\n", s.Name, s.n, last.V, tot)
	}
	return b.String()
}

// CounterTracks converts every series matching prefix into Perfetto counter
// tracks. Counter series are re-accumulated into running totals (ending at
// Total even after a ring wrap, so the plotted line agrees with the exact
// counters); gauge series plot their levels directly. Negative levels clamp
// to zero — the export format carries unsigned samples.
func (st *Store) CounterTracks(prefix string) []trace.CounterTrack {
	var out []trace.CounterTrack
	for _, name := range st.Names() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		s := st.series[name]
		pts := s.Points()
		tr := trace.CounterTrack{Name: s.Name, Sub: trace.SubObs, Core: -1,
			Points: make([]trace.CounterPoint, 0, len(pts))}
		if s.Gauge {
			for _, p := range pts {
				v := p.V
				if v < 0 {
					v = 0
				}
				tr.Points = append(tr.Points, trace.CounterPoint{At: p.At, V: uint64(v)})
			}
		} else {
			// Start the running sum where the ring begins: total minus the
			// retained deltas.
			run := s.total
			for _, p := range pts {
				run -= p.V
			}
			for _, p := range pts {
				run += p.V
				v := run
				if v < 0 {
					v = 0
				}
				tr.Points = append(tr.Points, trace.CounterPoint{At: p.At, V: uint64(v)})
			}
		}
		out = append(out, tr)
	}
	return out
}
