package obs

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
)

// The observability cost contract, pinned by ci/traceguard: the /base and
// /disabled variants run the same cross-socket ping-pong workload with no
// plane and with a constructed-but-disabled plane, and must report the SAME
// deterministic simcycles/op — a disabled plane spawns no procs, builds no
// channels and charges zero virtual time. The /sampling variant pins the
// workload cost with the plane live (samplers share the interconnect, so
// this may legitimately differ) plus the plane's own per-window message
// count, so a wire-protocol or tree change that inflates obs traffic fails
// CI even though every functional test still passes.

const benchOps = 200

// obsPinnedRun returns the client's completion cycles for the ping-pong
// workload; mode 0 = no plane, 1 = disabled plane, 2 = sampling plane.
func obsPinnedRun(b *testing.B, mode int) (sim.Time, float64) {
	m := topo.AMD4x4()
	e, sys := newSys(m)
	if mode > 0 {
		kb := skb.New(m)
		kb.Discover()
		var interval sim.Time
		if mode == 2 {
			interval = 100_000
		}
		pl := NewPlane(e, sys, kb, Config{Interval: interval})
		pl.Start()
	}
	done := pingPong(e, sys, benchOps)
	if mode == 2 {
		// Sampling daemons keep the event queue alive; bound the run.
		e.RunUntil(10_000_000)
	} else {
		e.Run()
	}
	if *done == 0 {
		b.Fatal("workload did not finish")
	}
	var msgsPerWindow float64
	if mode == 2 {
		w := e.Metrics().Counter("obs.windows").Value()
		if w == 0 {
			b.Fatal("no windows committed")
		}
		msgsPerWindow = float64(e.Metrics().Counter("obs.msgs").Value()) / float64(w)
	}
	return *done, msgsPerWindow
}

func BenchmarkObsPinned(b *testing.B) {
	for _, c := range []struct {
		name string
		mode int
	}{{"base", 0}, {"disabled", 1}, {"sampling", 2}} {
		b.Run(c.name, func(b *testing.B) {
			var cycles sim.Time
			var msgs float64
			for i := 0; i < b.N; i++ {
				cycles, msgs = obsPinnedRun(b, c.mode)
			}
			b.ReportMetric(float64(cycles)/benchOps, "simcycles/op")
			if c.mode == 2 {
				b.ReportMetric(msgs, "simevents/window")
			}
		})
	}
}
