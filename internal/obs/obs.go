// Package obs is the distributed observability plane: per-core sampler
// processes snapshot the metrics registry at seeded virtual-time intervals
// and ship mergeable deltas over URPC up the SKB-derived aggregation tree
// into the cluster-wide time-series Store — the multikernel argument applied
// to monitoring itself. Nothing reads another core's state directly: every
// sample is a message, aggregation nodes fold their subtree's windows before
// forwarding, and the root commits whole windows keyed by virtual time.
//
// Determinism: sampling times are virtual (tick k for core c fires at
// k·Interval + jitter_c, jitter seeded per core), message ordering is the
// engine's, and every fold iterates in sorted order — so the committed store,
// its JSON export, and the SKB facts derived from it are byte-identical at
// any host parallelism and across runs.
//
// Exactly-once accounting: the engine's registry is shared, so each series
// name is assigned one owning core (link counters to their socket's first
// core, health-critical kv./monitor./sim. series to the root — which
// experiments never kill — and the rest by hash) and each node's cursor
// filter accepts only its own names. Summing any series' committed deltas
// therefore reproduces the exact registry counter, a property the obs
// experiment checks as "fidelity".
//
// Fault survivability: an aggregation node force-flushes window k when it
// samples tick k+1, whether or not every child reported — a killed core costs
// its own series' tail (counted in obs.late), never the window. The health
// monitor rides on committed windows, so a kvcluster server kill surfaces as
// a degraded event within a bounded number of cycles (see health.go).
//
// The cost contract matches the trace layer's: with Interval == 0 the plane
// spawns no procs, builds no channels and charges zero virtual time — the
// pinned BenchmarkObsPinned/disabled simcycles must equal the no-plane
// baseline exactly, enforced by ci/traceguard.
package obs

import (
	"sort"
	"strconv"
	"strings"

	"multikernel/internal/cache"
	"multikernel/internal/metrics"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// Sampling-path costs in cycles, charged on the obs procs only (never on the
// instrumented subsystems — registry updates stay free).
const (
	costSample = 400 // taking one cursor delta
	costPair   = 12  // marshaling one (series, value) pair
	costCommit = 200 // committing one window at the root
)

// Wire protocol: word 0 is kind<<60 | pairs<<56 | tick; words 1..6 carry up
// to three (seriesID, value) pairs.
const (
	msgDelta    = 1 // carries 1..3 pairs of window `tick`
	msgDone     = 2 // window `tick` complete from this subtree
	pairsPerMsg = (urpc.PayloadWords - 1) / 2
)

// Config parameterizes the plane.
type Config struct {
	// Interval is the sampling period in cycles. 0 disables the plane
	// entirely: Start spawns nothing and the run is cycle-for-cycle
	// identical to one without a plane.
	Interval sim.Time
	// Jitter bounds each core's seeded phase offset within the interval
	// (default Interval/4) — samplers are deliberately not phase-aligned,
	// like real per-CPU stat kernels.
	Jitter sim.Time
	// Ring is the per-series point retention (default 1024).
	Ring int
	// Seed drives the per-core jitter draws (default 1).
	Seed uint64
	// Root is the aggregation root core holding the store (default core 0).
	// Experiments must not kill it; health-critical series are owned here.
	Root topo.CoreID
	// Publish asserts link_heat/queue_depth/shard_health facts into the KB
	// at every commit, for SKB-driven placement to consume.
	Publish bool
}

// fact is a series' SKB publication rule, parsed once at registration.
type fact struct {
	pred string
	a, b int64
}

// Plane wires the samplers, the tree and the store together.
type Plane struct {
	eng *sim.Engine
	sys *cache.System
	kb  *skb.KB
	cfg Config

	store *Store
	nodes map[topo.CoreID]*node

	// Series control plane (engine-shared, like the kvcluster shard map):
	// dense ids assigned at first registration, in sorted-name order per
	// sample, so numbering is deterministic.
	ids   map[string]uint32
	names []string
	gauge []bool
	facts []*fact

	failed map[topo.CoreID]bool

	onCommit []func(p *sim.Proc, tick uint64)

	mMsgs, mPairs, mLate, mWindows *metrics.Counter
}

// NewPlane builds a plane over the engine's registry. kb supplies the
// aggregation tree (and receives facts when cfg.Publish is set); it must have
// Discover()ed topology. Nothing runs until Start.
func NewPlane(e *sim.Engine, sys *cache.System, kb *skb.KB, cfg Config) *Plane {
	if cfg.Jitter == 0 {
		cfg.Jitter = cfg.Interval / 4
	}
	if cfg.Ring == 0 {
		cfg.Ring = 1024
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Plane{
		eng: e, sys: sys, kb: kb, cfg: cfg,
		store:  NewStore(cfg.Ring),
		nodes:  make(map[topo.CoreID]*node),
		ids:    make(map[string]uint32),
		failed: make(map[topo.CoreID]bool),
	}
}

// Store returns the root's committed time-series store.
func (pl *Plane) Store() *Store { return pl.store }

// Enabled reports whether the plane samples at all.
func (pl *Plane) Enabled() bool { return pl.cfg.Interval > 0 }

// Interval returns the sampling period (0 when disabled).
func (pl *Plane) Interval() sim.Time { return pl.cfg.Interval }

// OnCommit registers fn to run (in the root sampler's context) after each
// window is committed to the store. The health monitor hangs off this hook.
func (pl *Plane) OnCommit(fn func(p *sim.Proc, tick uint64)) {
	pl.onCommit = append(pl.onCommit, fn)
}

// FailStop tells the plane core c fail-stopped: its sampler dies with it and
// its parents stop waiting for its windows. Call alongside the fault that
// kills the core. Killing the root is not supported (the store dies with it).
func (pl *Plane) FailStop(c topo.CoreID) {
	if pl.failed[c] {
		return
	}
	pl.failed[c] = true
	if n, ok := pl.nodes[c]; ok && n.proc != nil {
		pl.eng.Kill(n.proc)
	}
}

// Start builds the aggregation tree and spawns one sampler per core. With
// Interval == 0 it is a no-op: no procs, no channels, no registry entries —
// the zero-overhead contract.
func (pl *Plane) Start() {
	if !pl.Enabled() {
		return
	}
	reg := pl.eng.Metrics()
	pl.mMsgs = reg.Counter("obs.msgs")
	pl.mPairs = reg.Counter("obs.pairs")
	pl.mLate = reg.Counter("obs.late")
	pl.mWindows = reg.Counter("obs.windows")

	// The SKB's multicast tree, reversed: monitors fan out over it, samplers
	// fan in. Socket-local cores report to their socket's aggregation core,
	// aggregation cores to the root.
	tree := pl.kb.MulticastTree(pl.cfg.Root, nil)
	root := pl.newNode(pl.cfg.Root, nil)
	for _, c := range tree.Local {
		pl.newNode(c, root)
	}
	for _, g := range tree.Groups {
		agg := pl.newNode(g.Agg, root)
		for _, c := range g.Children {
			pl.newNode(c, agg)
		}
	}
	// Spawn in ascending core order so proc creation — and therefore the
	// engine's tie-breaking — is topology-determined.
	cores := make([]topo.CoreID, 0, len(pl.nodes))
	for c := range pl.nodes {
		cores = append(cores, c)
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })
	for _, c := range cores {
		n := pl.nodes[c]
		n.proc = pl.eng.Spawn("obs@c"+strconv.Itoa(int(c)), n.run)
	}
}

// newNode builds node state for core c under parent (nil for the root),
// including its fan-in channel and its cursor over the names it owns.
func (pl *Plane) newNode(c topo.CoreID, parent *node) *node {
	n := &node{
		pl: pl, core: c, parent: parent,
		jitter:    sim.NewRNG(pl.cfg.Seed ^ (uint64(c)+0x9e37)).Time(pl.cfg.Jitter + 1),
		win:       make(map[uint64]map[uint32]int64),
		childDone: make(map[topo.CoreID]uint64),
		cursor: pl.eng.Metrics().NewCursor(func(name string) bool {
			o, ok := pl.ownerOf(name)
			return ok && o == c
		}),
		tick: 1,
	}
	pl.nodes[c] = n
	if parent != nil {
		n.up = urpc.New(pl.sys, c, parent.core, urpc.Options{
			Slots: 32, Home: int(pl.sys.Machine().Socket(parent.core)),
		})
		parent.children = append(parent.children, n)
		parent.down = append(parent.down, n.up)
	}
	return n
}

// ownerOf maps a series name to the single core that samples it. ok is false
// for names the plane must not observe (its own counters — sampling the
// sampler would feed back into every window).
func (pl *Plane) ownerOf(name string) (topo.CoreID, bool) {
	if strings.HasPrefix(name, "obs.") {
		return 0, false
	}
	m := pl.sys.Machine()
	// Per-link interconnect counters belong to the first core of the link's
	// A-side socket: "interconnect.link.<A>-<B>.dwords".
	if rest, ok := strings.CutPrefix(name, "interconnect.link."); ok {
		if i := strings.IndexByte(rest, '-'); i > 0 {
			if a, err := strconv.Atoi(rest[:i]); err == nil && a >= 0 && a < m.NSockets {
				return m.CoresOf(topo.SocketID(a))[0], true
			}
		}
	}
	// Health-critical and engine-global series live on the root, which
	// experiments never kill: shard health must survive any server death.
	for _, p := range []string{"kv.", "monitor.", "sim."} {
		if strings.HasPrefix(name, p) {
			return pl.cfg.Root, true
		}
	}
	// Everything else spreads by hash (FNV-1a) across all cores.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return topo.CoreID(h % uint64(m.NumCores())), true
}

// sid returns name's dense series id, assigning one on first registration
// (callers iterate names in sorted order, so assignment is deterministic).
func (pl *Plane) sid(name string, gauge bool) uint32 {
	if id, ok := pl.ids[name]; ok {
		return id
	}
	id := uint32(len(pl.names))
	pl.ids[name] = id
	pl.names = append(pl.names, name)
	pl.gauge = append(pl.gauge, gauge)
	pl.facts = append(pl.facts, parseFact(name))
	return id
}

// parseFact derives name's SKB publication rule, or nil for unpublished
// series.
func parseFact(name string) *fact {
	if rest, ok := strings.CutPrefix(name, "interconnect.link."); ok {
		if j := strings.Index(rest, ".dwords"); j > 0 {
			if i := strings.IndexByte(rest, '-'); i > 0 && i < j {
				a, errA := strconv.ParseInt(rest[:i], 10, 64)
				b, errB := strconv.ParseInt(rest[i+1:j], 10, 64)
				if errA == nil && errB == nil {
					return &fact{pred: "link_heat", a: a, b: b}
				}
			}
		}
	}
	if rest, ok := strings.CutPrefix(name, "kv.server."); ok {
		if j := strings.Index(rest, ".pending"); j > 0 {
			if c, err := strconv.ParseInt(rest[:j], 10, 64); err == nil {
				return &fact{pred: "queue_depth", a: c}
			}
		}
	}
	if rest, ok := strings.CutPrefix(name, "kv.shard."); ok {
		if j := strings.Index(rest, ".replicas"); j > 0 {
			if s, err := strconv.ParseInt(rest[:j], 10, 64); err == nil {
				return &fact{pred: "shard_health", a: s}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Sampler / aggregation nodes

// node is one core's sampler: every core samples its owned series each tick;
// aggregation cores additionally fold their children's windows before
// forwarding (or, at the root, committing).
type node struct {
	pl     *Plane
	core   topo.CoreID
	proc   *sim.Proc
	parent *node

	children []*node
	up       *urpc.Channel   // to parent (nil at the root)
	down     []*urpc.Channel // from children, ascending core order

	cursor *metrics.Cursor
	jitter sim.Time
	tick   uint64 // next tick to sample (1-based)

	win        map[uint64]map[uint32]int64 // buffered windows: tick -> id -> value
	childDone  map[topo.CoreID]uint64      // highest complete tick per child
	maxFlushed uint64                      // windows ≤ this are sealed; late data drops
}

func (n *node) run(p *sim.Proc) {
	p.SetDaemon(true)
	interval := n.pl.cfg.Interval
	for {
		next := sim.Time(n.tick)*interval + n.jitter
		for p.Now() < next {
			p.ParkTimeout(next - p.Now())
			// A child burst can wake us early: fold it in, and forward any
			// window it completed without waiting for our own next tick.
			n.drain(p)
			n.forwardReady(p)
		}
		// Deadline: window k-1 seals no later than our tick k. Children that
		// never reported (killed mid-window, or their whole subtree stalled)
		// cost their own series' tail, never the window. In the healthy path
		// windows forward as soon as the last child's Done lands — one
		// subtree hop per level within the same interval — and forceFlush
		// finds nothing left to do.
		n.forceFlush(p, n.tick-1)
		n.sample(p)
		n.drain(p)
		n.tick++
		n.forwardReady(p)
	}
}

// sample takes this core's cursor delta for the current tick and folds it
// into the tick's window buffer.
func (n *node) sample(p *sim.Proc) {
	p.Sleep(costSample)
	d := n.cursor.SnapshotDelta()
	w := n.window(n.tick)
	for _, name := range sortedNames(d.Counters) {
		w[n.pl.sid(name, false)] += int64(d.Counters[name])
	}
	for _, name := range sortedNames(d.Gauges) {
		w[n.pl.sid(name, true)] = d.Gauges[name]
	}
	// Histograms ship as pseudo-series — count, sum, and one series per
	// non-empty bucket — so windows stay uniform (id, value) pairs and the
	// root can rebuild windowed summaries for quantiles.
	hnames := make([]string, 0, len(d.Histograms))
	for name := range d.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		hs := d.Histograms[name]
		w[n.pl.sid(name+".n", false)] += int64(hs.N)
		w[n.pl.sid(name+".sum", false)] += int64(hs.Sum)
		for _, b := range hs.Buckets {
			w[n.pl.sid(name+".le"+strconv.FormatUint(b.Le, 10), false)] += int64(b.Count)
		}
	}
	if len(w) > 0 {
		p.Sleep(sim.Time(len(w)) * costPair)
	}
}

func (n *node) window(k uint64) map[uint32]int64 {
	w := n.win[k]
	if w == nil {
		w = make(map[uint32]int64)
		n.win[k] = w
	}
	return w
}

// drain folds every queued child message into window buffers, in ascending
// child-core order (the engine already fixed arrival order; this fixes
// iteration).
func (n *node) drain(p *sim.Proc) {
	var buf [16]urpc.Message
	for i, ch := range n.down {
		child := n.children[i]
		for {
			got := ch.RecvAll(p, buf[:])
			for _, m := range buf[:got] {
				n.handle(child, m)
			}
			if got < len(buf) {
				break
			}
		}
	}
}

func (n *node) handle(child *node, m urpc.Message) {
	kind := m[0] >> 60
	k := m[0] & (1<<56 - 1)
	switch kind {
	case msgDelta:
		if k <= n.maxFlushed {
			// The window already went upstream without this subtree; the data
			// is lost, but accounted.
			n.pl.mLate.Inc()
			return
		}
		w := n.window(k)
		cnt := int((m[0] >> 56) & 0xf)
		for i := 0; i < cnt; i++ {
			id := uint32(m[1+2*i])
			v := int64(m[2+2*i])
			if n.pl.gauge[id] {
				w[id] = v
			} else {
				w[id] += v
			}
		}
	case msgDone:
		if k > n.childDone[child.core] {
			n.childDone[child.core] = k
		}
	}
}

// ready reports whether window k has everything it will ever get cheaply:
// our own sample and every live child's Done.
func (n *node) ready(k uint64) bool {
	if k >= n.tick { // our own tick-k sample not taken yet
		return false
	}
	for _, c := range n.children {
		if !n.pl.failed[c.core] && n.childDone[c.core] < k {
			return false
		}
	}
	return true
}

// forwardReady flushes complete windows upward in ascending tick order.
func (n *node) forwardReady(p *sim.Proc) {
	for {
		k := n.oldestWindow()
		if k == 0 || !n.ready(k) {
			return
		}
		n.flush(p, k)
	}
}

// forceFlush seals every window ≤ k, complete or not.
func (n *node) forceFlush(p *sim.Proc, k uint64) {
	for {
		o := n.oldestWindow()
		if o == 0 || o > k {
			return
		}
		for _, c := range n.children {
			if !n.pl.failed[c.core] && n.childDone[c.core] < o {
				n.pl.mLate.Inc()
			}
		}
		n.flush(p, o)
	}
}

func (n *node) oldestWindow() uint64 {
	min := uint64(0)
	for k := range n.win {
		if min == 0 || k < min {
			min = k
		}
	}
	return min
}

// flush seals window k: commit at the root, otherwise encode, ship to the
// parent and mark done.
func (n *node) flush(p *sim.Proc, k uint64) {
	w := n.win[k]
	delete(n.win, k)
	if k > n.maxFlushed {
		n.maxFlushed = k
	}
	if n.parent == nil {
		n.pl.commit(p, k, w)
		return
	}
	ids := make([]uint32, 0, len(w))
	for id := range w {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var m urpc.Message
	for len(ids) > 0 {
		cnt := pairsPerMsg
		if cnt > len(ids) {
			cnt = len(ids)
		}
		m[0] = msgDelta<<60 | uint64(cnt)<<56 | k
		for i := 0; i < cnt; i++ {
			m[1+2*i] = uint64(ids[i])
			m[2+2*i] = uint64(w[ids[i]])
		}
		ids = ids[cnt:]
		if !n.send(p, m) {
			return
		}
		n.pl.mMsgs.Inc()
		n.pl.mPairs.Add(uint64(cnt))
	}
	m = urpc.Message{msgDone<<60 | k}
	if n.send(p, m) {
		n.pl.mMsgs.Inc()
		n.pl.eng.Wake(n.parent.proc)
	}
}

// send ships one message to the parent, bounded by one interval — if the
// parent's subtree is dead or jammed that long, the window is lost and
// counted rather than wedging the sampler forever.
func (n *node) send(p *sim.Proc, m urpc.Message) bool {
	if n.up.Dead() {
		n.pl.mLate.Inc()
		return false
	}
	if !n.up.SendTimeout(p, m, n.pl.cfg.Interval) {
		n.up.MarkDead()
		n.pl.mLate.Inc()
		return false
	}
	return true
}

// commit lands window k in the store at its nominal time k·Interval, then
// publishes SKB facts and runs the commit hooks.
func (pl *Plane) commit(p *sim.Proc, k uint64, w map[uint32]int64) {
	p.Sleep(costCommit + sim.Time(len(w))*costPair)
	at := k * uint64(pl.cfg.Interval)
	ids := make([]uint32, 0, len(w))
	for id := range w {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pl.store.Commit(at, pl.names[id], w[id], pl.gauge[id])
	}
	pl.mWindows.Inc()
	if pl.cfg.Publish {
		pl.publish(w)
	}
	for _, fn := range pl.onCommit {
		fn(p, k)
	}
}

// publish refreshes the KB facts of every fact-bearing series ever seen:
// link_heat carries the window's delta (0 for an idle link — heat decays),
// queue_depth and shard_health carry the current level.
func (pl *Plane) publish(w map[uint32]int64) {
	for id, f := range pl.facts {
		if f == nil {
			continue
		}
		var v int64
		if pl.gauge[uint32(id)] {
			if last, ok := pl.store.Get(pl.names[id]).Last(); ok {
				v = last.V
			}
		} else {
			v = w[uint32(id)] // absent -> 0: no traffic this window
		}
		switch f.pred {
		case "link_heat":
			pl.kb.Retract(f.pred, f.a, f.b, skb.Wildcard)
			pl.kb.Assert(f.pred, f.a, f.b, v)
		default:
			pl.kb.Retract(f.pred, f.a, skb.Wildcard)
			pl.kb.Assert(f.pred, f.a, v)
		}
	}
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
