package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"multikernel/internal/apps"
	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
	"multikernel/internal/urpc"
)

func newSys(m *topo.Machine) (*sim.Engine, *cache.System) {
	e := sim.NewEngine(1)
	return e, cache.New(e, m, memory.New(m), interconnect.New(m))
}

func newPlane(m *topo.Machine, cfg Config) (*sim.Engine, *cache.System, *skb.KB, *Plane) {
	e, sys := newSys(m)
	kb := skb.New(m)
	kb.Discover()
	return e, sys, kb, NewPlane(e, sys, kb, cfg)
}

func TestStoreRingWrap(t *testing.T) {
	st := NewStore(4)
	for i := 1; i <= 10; i++ {
		st.Commit(uint64(i*100), "c", int64(i), false)
	}
	s := st.Get("c")
	if s.N() != 10 {
		t.Fatalf("N = %d, want 10", s.N())
	}
	if s.Total() != 55 {
		t.Fatalf("Total = %d, want 55 (ring must not truncate the total)", s.Total())
	}
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4", len(pts))
	}
	for i, p := range pts {
		want := int64(7 + i)
		if p.V != want || p.At != uint64(want*100) {
			t.Fatalf("point %d = %+v, want V=%d At=%d", i, p, want, want*100)
		}
	}
	if last, ok := s.Last(); !ok || last.V != 10 {
		t.Fatalf("Last = %+v/%v, want V=10", last, ok)
	}
}

func TestCounterTracksReaccumulateAfterWrap(t *testing.T) {
	st := NewStore(3)
	for i := 1; i <= 6; i++ {
		st.Commit(uint64(i), "c", 10, false)
	}
	st.Commit(7, "g", -5, true) // negative gauge level clamps in export
	trs := st.CounterTracks("")
	if len(trs) != 2 {
		t.Fatalf("got %d tracks, want 2", len(trs))
	}
	// Counter track: running totals for the retained window, ending at Total.
	c := trs[0]
	want := []uint64{40, 50, 60}
	for i, p := range c.Points {
		if p.V != want[i] {
			t.Fatalf("counter point %d = %d, want %d (must end at Total=60)", i, p.V, want[i])
		}
	}
	if g := trs[1]; g.Points[0].V != 0 {
		t.Fatalf("negative gauge exported as %d, want clamp to 0", g.Points[0].V)
	}
}

func TestOwnership(t *testing.T) {
	_, _, _, pl := newPlane(topo.AMD4x4(), Config{Interval: 10_000})
	if _, ok := pl.ownerOf("obs.msgs"); ok {
		t.Fatal("plane must not sample its own counters")
	}
	// Link counters live on the A-side socket's first core.
	if o, ok := pl.ownerOf("interconnect.link.2-3.dwords"); !ok || o != topo.CoreID(8) {
		t.Fatalf("link 2-3 owner = %v/%v, want core 8 (socket 2's first)", o, ok)
	}
	// Health-critical series live on the root.
	for _, n := range []string{"kv.shard.0.replicas", "monitor.pings", "sim.heap_max_depth"} {
		if o, ok := pl.ownerOf(n); !ok || o != pl.cfg.Root {
			t.Fatalf("%s owner = %v/%v, want root", n, o, ok)
		}
	}
	// Hash-spread names are total and stable.
	o1, ok1 := pl.ownerOf("app.widgets")
	o2, ok2 := pl.ownerOf("app.widgets")
	if !ok1 || !ok2 || o1 != o2 {
		t.Fatalf("hash ownership unstable: %v/%v vs %v/%v", o1, ok1, o2, ok2)
	}
}

// obsWorkload drives counters, a gauge and a histogram from a proc, then
// quiesces well before the horizon so committed totals must match exactly.
func obsWorkload(e *sim.Engine) {
	reg := e.Metrics()
	work := reg.Counter("app.work")
	depth := reg.Gauge("app.depth")
	lat := reg.Histogram("app.lat")
	e.Spawn("load", func(p *sim.Proc) {
		rng := sim.NewRNG(7)
		for i := 0; i < 500; i++ {
			work.Inc()
			depth.Set(int64(i % 17))
			lat.Observe(rng.Uint64() % 100_000)
			p.Sleep(1_000)
		}
	})
}

func TestPlaneFidelity(t *testing.T) {
	e, _, kb, pl := newPlane(topo.AMD4x4(), Config{Interval: 50_000, Publish: true})
	obsWorkload(e)
	pl.Start()
	// Workload quiesces at 500k; run several more windows so every last
	// delta is sampled, shipped and committed.
	e.RunUntil(1_000_000)

	reg := e.Metrics()
	st := pl.Store()
	if got, want := st.Get("app.work").Total(), int64(reg.Counter("app.work").Value()); got != want {
		t.Fatalf("app.work total = %d, want exact registry value %d", got, want)
	}
	if last, ok := st.Get("app.depth").Last(); !ok || last.V != reg.Gauge("app.depth").Value() {
		t.Fatalf("app.depth last = %+v/%v, want registry level %d", last, ok, reg.Gauge("app.depth").Value())
	}
	_, n, sum, _ := reg.Histogram("app.lat").Raw()
	if got := st.Get("app.lat.n").Total(); got != int64(n) {
		t.Fatalf("app.lat.n total = %d, want %d", got, n)
	}
	if got := st.Get("app.lat.sum").Total(); got != int64(sum) {
		t.Fatalf("app.lat.sum total = %d, want %d", got, sum)
	}
	if v := reg.Counter("obs.late").Value(); v != 0 {
		t.Fatalf("healthy run counted %d late windows, want 0", v)
	}
	if reg.Counter("obs.windows").Value() == 0 {
		t.Fatal("no windows committed")
	}
	// The plane's own URPC traffic crosses sockets, so link heat facts must
	// have been published.
	if len(kb.Query("link_heat", skb.Wildcard, skb.Wildcard, skb.Wildcard)) == 0 {
		t.Fatal("no link_heat facts published")
	}
}

func TestPlaneDisabledIsExactlyFree(t *testing.T) {
	// The same cross-socket URPC workload, with (a) no plane, (b) a disabled
	// plane, must finish on the same cycle — the zero-overhead contract.
	run := func(plane bool) sim.Time {
		e, sys := newSys(topo.AMD4x4())
		if plane {
			kb := skb.New(sys.Machine())
			kb.Discover()
			pl := NewPlane(e, sys, kb, Config{}) // Interval 0: disabled
			pl.Start()
			if pl.Enabled() {
				t.Fatal("Interval 0 plane claims enabled")
			}
		}
		done := pingPong(e, sys, 200)
		e.Run()
		return *done
	}
	base, disabled := run(false), run(true)
	if base == 0 || base != disabled {
		t.Fatalf("disabled plane perturbed the run: base %d, disabled %d", base, disabled)
	}
}

// pingPong runs n cross-socket request/response pairs between cores 1 and 5
// and returns a pointer filled with the client's completion time.
func pingPong(e *sim.Engine, sys *cache.System, n int) *sim.Time {
	req := urpc.New(sys, 1, 5, urpc.Options{Slots: 16})
	rsp := urpc.New(sys, 5, 1, urpc.Options{Slots: 16})
	done := new(sim.Time)
	var client, server *sim.Proc
	server = e.Spawn("server", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			if m, ok := req.TryRecv(p); ok {
				rsp.Send(p, m)
				e.Wake(client)
			} else {
				p.Park()
			}
		}
	})
	client = e.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			var msg urpc.Message
			msg[0] = uint64(i)
			req.Send(p, msg)
			e.Wake(server)
			for {
				if _, ok := rsp.TryRecv(p); ok {
					break
				}
				p.ParkTimeout(1_000)
			}
		}
		*done = p.Now()
	})
	return done
}

func TestPlaneByteIdenticalAcrossRuns(t *testing.T) {
	dump := func() []byte {
		e, _, _, pl := newPlane(topo.AMD4x4(), Config{Interval: 50_000, Seed: 42})
		obsWorkload(e)
		pl.Start()
		e.RunUntil(1_000_000)
		var b bytes.Buffer
		if err := pl.Store().WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Fatal("store JSON differs between identical runs")
	}
	if !bytes.Contains(a, []byte(`"name":"app.work"`)) {
		t.Fatal("dump missing app.work series")
	}
}

func TestHealthDetectsKill(t *testing.T) {
	const (
		fdPeriod  = sim.Time(400_000)
		opTimeout = sim.Time(100_000)
		interval  = sim.Time(200_000)
		killAt    = sim.Time(900_000)
	)
	m := topo.AMD4x4()
	e, sys := newSys(m)
	kern := kernel.NewSystem(e, m)
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	e.SetTracer(trace.NewRing(65536))
	net := monitor.NewNetwork(e, sys, kern, kb, monitor.Hooks{})
	net.EnableFaultTolerance(opTimeout)
	cl := apps.NewKVCluster(e, sys, net, apps.ClusterConfig{
		Rows:    16,
		Servers: []topo.CoreID{2, 3, 6},
		Spares:  []topo.CoreID{8, 12},
	})
	cl.StartFailureDetector(net, 0, fdPeriod)

	pl := NewPlane(e, sys, kb, Config{Interval: interval, Publish: true})
	h := pl.EnableHealth(HealthConfig{ReplicaTarget: 2})
	pl.Start()

	c := cl.Connect(1)
	e.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			c.Put(p, uint64(i%16), uint64(i))
			p.Sleep(30_000)
		}
	})
	victim := cl.Primary(0)
	e.After(killAt, func() {
		cl.KillCore(victim)
		net.FailStop(victim)
		pl.FailStop(victim)
	})
	// Detection bound: failure-detector period + monitor op deadline to
	// demote, plus at most two sampling intervals for the shrunken gauge to
	// ride up the tree and commit.
	bound := uint64(killAt + fdPeriod + opTimeout + 2*interval)
	e.RunUntil(sim.Time(bound) + 50_000)

	evs := h.Events()
	if len(evs) == 0 {
		t.Fatalf("no health event within the detection bound (kill %d, bound %d)", killAt, bound)
	}
	if evs[0].Kind != ShardDegraded {
		t.Fatalf("first event %+v, want degraded", evs[0])
	}
	if evs[0].At > bound {
		t.Fatalf("degraded at %d, want ≤ %d (kill %d + bound %d)",
			evs[0].At, bound, killAt, bound-uint64(killAt))
	}
	// The transition also lands in the trace as an instant event (checked
	// now, before the flight-recorder ring wraps past it).
	var sawTrace bool
	for _, ev := range e.Tracer().Events() {
		if ev.Name == "obs.shard.degraded" && ev.Sub == trace.SubObs {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Fatal("no obs.shard.degraded trace instant")
	}

	// Re-replication onto a spare must eventually recover every shard.
	e.RunUntil(60_000_000)
	evs = h.Events()
	if h.Degraded() {
		t.Fatalf("still degraded at horizon; events: %+v", evs)
	}
	var recovered bool
	for _, ev := range evs {
		if ev.Kind == ShardRecovered {
			recovered = true
			if ev.Replicas < 2 {
				t.Fatalf("recovered event with %d replicas: %+v", ev.Replicas, ev)
			}
		}
	}
	if !recovered {
		t.Fatal("no recovered event emitted")
	}
	// Windowed latency quantiles were derived for busy windows.
	p99 := pl.Store().Get("kv.op_cycles.p99")
	if p99 == nil || p99.N() == 0 {
		t.Fatal("no windowed p99 series derived")
	}
	// The dead server's sampler is gone, but the plane keeps committing.
	wBefore := e.Metrics().Counter("obs.windows").Value()
	e.RunUntil(61_000_000)
	if e.Metrics().Counter("obs.windows").Value() <= wBefore {
		t.Fatal("plane stopped committing after the kill")
	}
}

func TestShardHealthFactsPublished(t *testing.T) {
	e, sys := newSys(topo.AMD4x4())
	kb := skb.New(sys.Machine())
	kb.Discover()
	cl := apps.NewKVCluster(e, sys, nil, apps.ClusterConfig{
		Rows:    8,
		Servers: []topo.CoreID{2, 3, 6},
	})
	pl := NewPlane(e, sys, kb, Config{Interval: 100_000, Publish: true})
	pl.Start()
	e.RunUntil(500_000)
	rows := kb.Query("shard_health", skb.Wildcard, skb.Wildcard)
	if len(rows) != cl.Shards() {
		t.Fatalf("published %d shard_health facts, want %d", len(rows), cl.Shards())
	}
	for _, r := range rows {
		if r[1] < 2 {
			t.Fatalf("healthy shard %d published replicas %d", r[0], r[1])
		}
	}
	qd := kb.Query("queue_depth", skb.Wildcard, skb.Wildcard)
	if len(qd) != 3 {
		t.Fatalf("published %d queue_depth facts, want 3", len(qd))
	}
}

func TestRenderAndNames(t *testing.T) {
	st := NewStore(8)
	st.Commit(100, "b.two", 2, false)
	st.Commit(100, "a.one", 1, true)
	names := st.Names()
	if len(names) != 2 || names[0] != "a.one" || names[1] != "b.two" {
		t.Fatalf("Names = %v, want sorted", names)
	}
	out := st.Render("")
	if !strings.Contains(out, "a.one") || !strings.Contains(out, "gauge") {
		t.Fatalf("render missing series/gauge marker:\n%s", out)
	}
	if st.Render("b.") == out {
		t.Fatal("prefix filter had no effect")
	}
	if fmt.Sprintf("%d", st.Get("b.two").Total()) != "2" {
		t.Fatal("total wrong")
	}
}
