package sim

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"multikernel/internal/ckpt"
)

// The checkpoint equivalence gate: because Engine.Checkpoint serializes the
// engine's complete state — clock, sequence counters, RNG stream, procs,
// event heap, component blobs — "restore produces the same execution" can be
// tested as byte equality of later checkpoints. Three runs of the same
// workload must converge to identical final images: (A) run, checkpoint
// mid-way, continue; (B) restore from A's mid-image, continue; (C) run
// uninterrupted.

// ckptStore is a minimal checkpointed component: a value log plus a done
// flag, mirroring how real components keep durable state outside proc stacks.
type ckptStore struct {
	vals []uint64
	done uint64
}

func (s *ckptStore) CheckpointState(w io.Writer) error {
	if err := ckpt.WriteU64(w, s.done); err != nil {
		return err
	}
	return ckpt.WriteU64Slice(w, s.vals)
}

func (s *ckptStore) RestoreState(r io.Reader) error {
	if err := ckpt.ReadU64(r, &s.done); err != nil {
		return err
	}
	v, err := ckpt.ReadU64Slice(r)
	s.vals = v
	return err
}

const storeTarget = 32

// buildStoreSim is both the initial construction and the restore builder: a
// producer appending RNG-derived values on an RNG-derived cadence, and a
// parked server daemon that sums the log once the producer signals done. Both
// procs follow the checkpoint-restart-safe shape — durable state in the
// component, conditions re-checked at the top — so entering the function from
// the start (after a restore) is indistinguishable from resuming at a yield.
func buildStoreSim(st *ckptStore) func(e *Engine) {
	return func(e *Engine) {
		e.RegisterCheckpoint("store", st)
		appended := e.Metrics().Counter("store.appended")
		server := e.Spawn("server", func(p *Proc) {
			p.SetDaemon(true)
			for st.done == 0 {
				p.Park()
			}
			var sum uint64
			for _, v := range st.vals {
				sum += v
			}
			st.vals = append(st.vals, sum)
		})
		e.Spawn("producer", func(p *Proc) {
			for len(st.vals) < storeTarget {
				st.vals = append(st.vals, e.RNG().Uint64()>>32)
				appended.Inc()
				p.Sleep(50 + e.RNG().Time(100))
			}
			st.done = 1
			e.Wake(server)
		})
	}
}

func TestCheckpointRestoreEquivalence(t *testing.T) {
	finalState := func(e *Engine, st *ckptStore) ([]byte, []byte, []uint64) {
		t.Helper()
		if dl := e.Deadlocked(); len(dl) > 0 {
			t.Fatalf("deadlocked procs %v", dl)
		}
		var img bytes.Buffer
		if err := e.Checkpoint(&img); err != nil {
			t.Fatalf("final checkpoint: %v", err)
		}
		js, err := json.Marshal(e.Metrics().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		e.Close()
		return img.Bytes(), js, st.vals
	}

	// Run A: run to a mid-point, checkpoint, continue to completion.
	stA := &ckptStore{}
	eA := NewEngine(11)
	buildStoreSim(stA)(eA)
	eA.RunUntil(1234)
	var mid bytes.Buffer
	if err := eA.Checkpoint(&mid); err != nil {
		t.Fatalf("mid checkpoint: %v", err)
	}
	if len(stA.vals) == 0 || len(stA.vals) >= storeTarget {
		t.Fatalf("mid checkpoint caught the producer at %d values; want mid-run", len(stA.vals))
	}
	eA.Run()
	imgA, jsA, valsA := finalState(eA, stA)
	if len(valsA) != storeTarget+1 {
		t.Fatalf("run A produced %d values, want %d", len(valsA), storeTarget+1)
	}

	// Run B: restore from the mid-image and run to completion.
	stB := &ckptStore{}
	eB, err := Restore(bytes.NewReader(mid.Bytes()), buildStoreSim(stB))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	eB.Run()
	imgB, jsB, valsB := finalState(eB, stB)

	// Run C: uninterrupted.
	stC := &ckptStore{}
	eC := NewEngine(11)
	buildStoreSim(stC)(eC)
	eC.Run()
	imgC, jsC, valsC := finalState(eC, stC)

	if !bytes.Equal(imgA, imgB) {
		t.Error("restored run's final checkpoint differs from the interrupted original")
	}
	if !bytes.Equal(imgA, imgC) {
		t.Error("checkpointed run's final image differs from an uninterrupted run")
	}
	if !bytes.Equal(jsA, jsB) || !bytes.Equal(jsA, jsC) {
		t.Errorf("metrics diverge:\nA: %s\nB: %s\nC: %s", jsA, jsB, jsC)
	}
	for i := range valsA {
		if valsB[i] != valsA[i] || valsC[i] != valsA[i] {
			t.Fatalf("value %d diverges: A=%d B=%d C=%d", i, valsA[i], valsB[i], valsC[i])
		}
	}
}

// TestCheckpointAtEveryQuiescentPoint sweeps the checkpoint cut over the
// whole run: this workload parks and sleeps through proc wakeups only, so
// every point before completion is quiescent, and restoring from any of them
// must reproduce the uninterrupted final image.
func TestCheckpointAtEveryQuiescentPoint(t *testing.T) {
	stC := &ckptStore{}
	eC := NewEngine(11)
	buildStoreSim(stC)(eC)
	eC.Run()
	tEnd := eC.Now()
	var ref bytes.Buffer
	if err := eC.Checkpoint(&ref); err != nil {
		t.Fatal(err)
	}
	eC.Close()

	var restored int
	for cut := Time(0); cut < tEnd; cut += 157 {
		st := &ckptStore{}
		e := NewEngine(11)
		buildStoreSim(st)(e)
		e.RunUntil(cut)
		var mid bytes.Buffer
		err := e.Checkpoint(&mid)
		e.Close()
		if err != nil {
			t.Fatalf("cut=%d: checkpoint: %v", cut, err)
		}
		st2 := &ckptStore{}
		e2, err := Restore(bytes.NewReader(mid.Bytes()), buildStoreSim(st2))
		if err != nil {
			t.Fatalf("cut=%d: restore: %v", cut, err)
		}
		restored++
		e2.Run()
		var img bytes.Buffer
		if err := e2.Checkpoint(&img); err != nil {
			t.Fatalf("cut=%d: final checkpoint: %v", cut, err)
		}
		e2.Close()
		if !bytes.Equal(img.Bytes(), ref.Bytes()) {
			t.Fatalf("cut=%d: restored run's final image differs from uninterrupted run", cut)
		}
	}
	if restored == 0 {
		t.Fatal("no quiescent points found; sweep is vacuous")
	}
}

func TestCheckpointRejectsPendingCallback(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.After(10, func() {})
	if err := e.Checkpoint(io.Discard); err == nil {
		t.Fatal("checkpoint with a pending After callback did not error")
	}
}

func TestCheckpointRejectsPendingParkTimeout(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.Spawn("sleeper", func(p *Proc) { p.ParkTimeout(1000) })
	e.RunUntil(10)
	if err := e.Checkpoint(io.Discard); err == nil {
		t.Fatal("checkpoint with an armed ParkTimeout did not error")
	}
}

func TestCheckpointRejectsDuplicateProcNames(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	block := func(p *Proc) { p.Park() }
	e.Spawn("twin", block)
	e.Spawn("twin", block)
	e.Run()
	if err := e.Checkpoint(io.Discard); err == nil {
		t.Fatal("checkpoint with duplicate proc names did not error")
	}
}

func TestRestoreRejectsBuilderMismatch(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) { p.Park() })
	e.Run()
	var img bytes.Buffer
	if err := e.Checkpoint(&img); err != nil {
		t.Fatal(err)
	}
	e.Close()

	if _, err := Restore(bytes.NewReader(img.Bytes()), func(e *Engine) {}); err == nil {
		t.Error("restore whose builder omits a checkpointed proc did not error")
	}
	if _, err := Restore(bytes.NewReader(img.Bytes()), func(e *Engine) {
		e.Spawn("p", func(p *Proc) { p.Park() })
		e.RegisterCheckpoint("extra", &ckptStore{})
	}); err == nil {
		t.Error("restore whose builder registers an extra component did not error")
	}
	if _, err := Restore(bytes.NewReader(img.Bytes()[:len(img.Bytes())/2]), func(e *Engine) {
		e.Spawn("p", func(p *Proc) { p.Park() })
	}); err == nil {
		t.Error("restore of a truncated image did not error")
	}
}

// TestParallelCheckpointRestore runs the ring in two phases: phase 1 to
// quiescence, checkpoint, then phase 2 with fresh tokens. Restoring the
// mid-image — at a different worker count — and running the same phase 2 must
// produce final images and metrics byte-identical to the original engine
// continuing past its checkpoint, and to a run that never checkpointed.
func TestParallelCheckpointRestore(t *testing.T) {
	phase2 := func(pe *ParallelEngine) ([]byte, []byte) {
		t.Helper()
		ringSeed(pe, 40)
		pe.Run()
		if dl := pe.Deadlocked(); len(dl) > 0 {
			t.Fatalf("deadlocked procs %v", dl)
		}
		var img bytes.Buffer
		if err := pe.Checkpoint(&img); err != nil {
			t.Fatalf("final checkpoint: %v", err)
		}
		js, err := json.Marshal(pe.MetricsSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		pe.Close()
		return img.Bytes(), js
	}

	// A: phase 1, checkpoint, phase 2.
	peA := buildRing(2)
	ringSeed(peA, 60)
	peA.Run()
	var mid bytes.Buffer
	if err := peA.Checkpoint(&mid); err != nil {
		t.Fatalf("mid checkpoint: %v", err)
	}
	imgA, jsA := phase2(peA)

	// B and C: restore the phase-1 image at other worker counts and run the
	// same phase 2. The builder respawns only the procs alive at checkpoint
	// time (the sink daemons; the phase-1 locals had finished).
	for _, w := range []int{1, 4} {
		pe, err := RestoreParallel(bytes.NewReader(mid.Bytes()), w, func(pe *ParallelEngine, part int, e *Engine) {
			ringSetupOn(pe, part, e)
		})
		if err != nil {
			t.Fatalf("workers=%d: restore: %v", w, err)
		}
		img, js := phase2(pe)
		if !bytes.Equal(img, imgA) {
			t.Errorf("workers=%d: restored run's final image differs from the original", w)
		}
		if !bytes.Equal(js, jsA) {
			t.Errorf("workers=%d: restored run's metrics differ from the original\n got: %s\nwant: %s", w, js, jsA)
		}
	}

	// D: the same two phases with no checkpoint in between.
	peD := buildRing(2)
	ringSeed(peD, 60)
	peD.Run()
	imgD, jsD := phase2(peD)
	if !bytes.Equal(imgD, imgA) {
		t.Error("taking a checkpoint perturbed the run: final images differ")
	}
	if !bytes.Equal(jsD, jsA) {
		t.Error("taking a checkpoint perturbed the run: metrics differ")
	}
}
