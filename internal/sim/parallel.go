package sim

// Parallel intra-run simulation: conservative ("null-message-free") parallel
// discrete-event execution over per-partition sub-engines.
//
// The machine is partitioned along socket boundaries (topo.PartitionMap);
// each partition gets its own Engine — heap, clock, RNG stream, metrics
// registry, procs — running in a worker goroutine. Partitions share no
// simulated state: all cross-partition interaction goes through explicit
// messages, mirroring the multikernel's own no-shared-state discipline at
// the simulator level.
//
// Synchronization is the classic conservative-lookahead barrier. The minimum
// latency of any cross-partition transaction (interconnect.Lookahead) is the
// epoch width L: during epoch [E, E+L) every partition runs its local events
// independently, because no message sent by a peer inside the epoch can be
// due before E+L. Cross-partition sends are appended to the sender's outbox
// and merged into the destination heaps at the epoch barrier, in (source
// partition, send order) — a deterministic order independent of how many
// workers executed the epoch, which is what makes parallel runs byte-
// identical to serial ones at any worker count. Epochs are aligned to the
// fixed grid E = k·L, so epoch boundaries — and therefore checkpoint points
// — do not depend on event timing either.
//
// The serial Engine remains the reference implementation: a ParallelEngine
// with workers=1 executes partitions sequentially on the caller's goroutine
// with no synchronization, and the determinism gate in parallel_test.go
// asserts byte-identical traces, metrics and final state across worker
// counts.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"multikernel/internal/ckpt"
	"multikernel/internal/metrics"
)

// HandlerID names a cross-partition message handler registered with
// RegisterHandler.
type HandlerID int32

// xsend is one cross-partition message waiting in a source outbox for the
// epoch barrier. The handler form (h >= 0) carries its payload in two words
// and schedules with zero allocation; the fn form carries a closure.
type xsend struct {
	at   Time
	dst  int32
	h    int32 // handler index in the destination's table, or -1 for fn
	a, b uint64
	fn   func()
}

// ParallelEngine coordinates one sub-Engine per partition.
type ParallelEngine struct {
	parts     []*Engine
	lookahead Time
	workers   int

	handlers [][]func(a, b uint64) // per destination partition
	outbox   [][]xsend             // per source partition; reused across epochs

	// Worker pool: persistent goroutines released once per epoch; each
	// claims partitions off the shared counter until none remain.
	start    []chan struct{}
	wg       sync.WaitGroup
	claim    atomic.Int64
	epochEnd Time

	// Current epoch window. An epoch stays open across run calls when a
	// RunUntil limit cuts it short; outbox merges happen only when the whole
	// window has executed, so a staged sequence of RunUntil calls assigns
	// destination sequence numbers exactly as one uninterrupted Run would.
	epochStart Time
	epochLast  Time
	epochOpen  bool

	stopped atomic.Bool
	closed  bool
}

// NewParallelEngine returns a parallel engine with nparts partitions and the
// given conservative lookahead (the minimum cross-partition message latency;
// see interconnect.Lookahead). Each partition's Engine draws from its own
// RNG stream derived from seed, so results are a function of (seed, nparts)
// alone — never of workers, which only sets the host-goroutine budget and is
// clamped to [1, nparts].
func NewParallelEngine(nparts int, lookahead Time, seed uint64, workers int) *ParallelEngine {
	if nparts < 1 {
		panic("sim: parallel engine needs at least one partition")
	}
	if lookahead == 0 {
		panic("sim: parallel engine needs a positive lookahead")
	}
	pe := &ParallelEngine{lookahead: lookahead}
	pe.parts = make([]*Engine, nparts)
	for i := range pe.parts {
		pe.parts[i] = NewEngine(seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	pe.init(workers)
	return pe
}

// init sets up outboxes, handler tables and the worker pool on an engine
// whose parts slice is already populated (construction or restore).
func (pe *ParallelEngine) init(workers int) {
	n := len(pe.parts)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	pe.workers = workers
	pe.handlers = make([][]func(a, b uint64), n)
	pe.outbox = make([][]xsend, n)
	if workers > 1 {
		pe.start = make([]chan struct{}, workers)
		for i := range pe.start {
			c := make(chan struct{}, 1)
			pe.start[i] = c
			go pe.worker(c)
		}
	}
}

// worker is one pool goroutine: released at each epoch, it claims partitions
// off the shared counter and runs each to the epoch end.
func (pe *ParallelEngine) worker(c chan struct{}) {
	for range c {
		for {
			i := int(pe.claim.Add(1)) - 1
			if i >= len(pe.parts) {
				break
			}
			pe.parts[i].RunUntil(pe.epochEnd)
		}
		pe.wg.Done()
	}
}

// NParts returns the partition count.
func (pe *ParallelEngine) NParts() int { return len(pe.parts) }

// Workers returns the effective worker count.
func (pe *ParallelEngine) Workers() int { return pe.workers }

// Lookahead returns the epoch width in cycles.
func (pe *ParallelEngine) Lookahead() Time { return pe.lookahead }

// Part returns the sub-engine of partition i, for setup (spawning procs,
// registering components) and post-run inspection. During Run, partition
// state must only be touched by that partition's own procs.
func (pe *ParallelEngine) Part(i int) *Engine { return pe.parts[i] }

// Spawn creates a proc on partition part.
func (pe *ParallelEngine) Spawn(part int, name string, fn func(p *Proc)) *Proc {
	return pe.parts[part].Spawn(name, fn)
}

// RegisterHandler registers a cross-partition message handler on destination
// partition dst and returns its id. Handlers are registered once during
// setup; Post then delivers (a, b) payloads to them with zero allocation.
// Must not be called while Run is in progress.
func (pe *ParallelEngine) RegisterHandler(dst int, h func(a, b uint64)) HandlerID {
	pe.handlers[dst] = append(pe.handlers[dst], h)
	return HandlerID(len(pe.handlers[dst]) - 1)
}

// Post sends a zero-allocation cross-partition message: handler h on
// partition dst runs with payload (a, b) at the sender's current time plus
// delay. It must be called from simulated code of partition src (its procs
// or engine callbacks), and delay must be at least the lookahead — that is
// the conservative contract that lets partitions run an epoch unsynchronized.
func (pe *ParallelEngine) Post(src, dst int, delay Time, h HandlerID, a, b uint64) {
	if delay < pe.lookahead {
		panic(fmt.Sprintf("sim: cross-partition delay %d below lookahead %d", delay, pe.lookahead))
	}
	pe.outbox[src] = append(pe.outbox[src], xsend{
		at: pe.parts[src].now + delay, dst: int32(dst), h: int32(h), a: a, b: b,
	})
}

// Send is the closure form of Post, for low-rate control messages: fn runs
// in partition dst's engine context at the sender's time plus delay.
func (pe *ParallelEngine) Send(src, dst int, delay Time, fn func()) {
	if delay < pe.lookahead {
		panic(fmt.Sprintf("sim: cross-partition delay %d below lookahead %d", delay, pe.lookahead))
	}
	pe.outbox[src] = append(pe.outbox[src], xsend{
		at: pe.parts[src].now + delay, dst: int32(dst), h: -1, fn: fn,
	})
}

// earliest returns the earliest pending event time across all partitions,
// or ^Time(0) when every heap is empty.
func (pe *ParallelEngine) earliest() Time {
	min := ^Time(0)
	for _, p := range pe.parts {
		if len(p.events) > 0 && p.events[0].at < min {
			min = p.events[0].at
		}
	}
	return min
}

// runEpoch executes every partition up to and including time last.
func (pe *ParallelEngine) runEpoch(last Time) {
	if pe.workers <= 1 {
		for _, p := range pe.parts {
			p.RunUntil(last)
		}
		return
	}
	pe.epochEnd = last
	pe.claim.Store(0)
	pe.wg.Add(pe.workers)
	for _, c := range pe.start {
		c <- struct{}{}
	}
	pe.wg.Wait()
}

// mergeOutboxes drains every outbox into the destination heaps, in (source
// partition, send order) — the deterministic merge that decouples results
// from worker count. Outbox slices keep their capacity across epochs, so the
// steady-state barrier path does not allocate.
func (pe *ParallelEngine) mergeOutboxes() {
	for src := range pe.outbox {
		box := pe.outbox[src]
		for i := range box {
			s := &box[i]
			d := pe.parts[s.dst]
			if s.h >= 0 {
				d.scheduleArgsAt(s.at, pe.handlers[s.dst][s.h], s.a, s.b)
			} else {
				d.scheduleAt(s.at, s.fn)
				s.fn = nil // drop the closure reference while pooled
			}
		}
		pe.outbox[src] = box[:0]
	}
}

// run executes barrier epochs until no events remain at or before limit, or
// Stop is called. When limit lands inside an epoch, the window stays open —
// partitions have run only part of it and cross-partition sends stay in the
// outboxes — and the next call resumes it. Merging happens only once the full
// window has executed: every message sent inside epoch [E, E+L) is due at or
// after E+L, so deferring the merge to the true barrier is always safe, and it
// keeps destination heaps (and their sequence numbers) byte-identical between
// a staged sequence of RunUntil calls and one uninterrupted Run.
func (pe *ParallelEngine) run(limit Time) {
	pe.stopped.Store(false)
	for !pe.stopped.Load() {
		if !pe.epochOpen {
			// Deliver sends Posted from driver context between runs (seeding
			// work onto a quiescent or freshly-restored engine). At a closed
			// epoch every partition clock is below any send's due time, and in
			// the steady state the outboxes are already empty here.
			pe.mergeOutboxes()
			next := pe.earliest()
			if next == ^Time(0) || next > limit {
				return
			}
			// Epoch [start, start+L) on the fixed grid start = k·L.
			start := next - next%pe.lookahead
			last := start + pe.lookahead - 1
			if last < start { // start+L overflowed
				last = ^Time(0)
			}
			pe.epochStart, pe.epochLast, pe.epochOpen = start, last, true
		}
		if pe.epochLast > limit {
			pe.runEpoch(limit)
			return // window still open; outboxes keep their pending sends
		}
		pe.runEpoch(pe.epochLast)
		pe.mergeOutboxes()
		pe.epochOpen = false
	}
}

// Run processes events in all partitions until every heap is empty or Stop
// is called.
func (pe *ParallelEngine) Run() { pe.run(^Time(0)) }

// RunUntil processes events in all partitions up to and including virtual
// time t, then advances every partition clock to t.
func (pe *ParallelEngine) RunUntil(t Time) {
	pe.run(t)
	for _, p := range pe.parts {
		if p.now < t {
			p.now = t
		}
	}
}

// Stop makes Run return at the next epoch barrier. It is safe to call from
// simulated code in any partition; because it takes effect at the barrier,
// the stopping point is the same at every worker count.
func (pe *ParallelEngine) Stop() { pe.stopped.Store(true) }

// Deadlocked reports non-daemon procs parked with no pending wakeup across
// all partitions, each prefixed with its partition ("p3/core-12"). A
// cross-partition deadlock — a proc waiting on a message its peer partition
// never sends — drains every heap and shows up here, exactly like a local
// one.
func (pe *ParallelEngine) Deadlocked() []string {
	var out []string
	for i, p := range pe.parts {
		for _, name := range p.Deadlocked() {
			out = append(out, fmt.Sprintf("p%d/%s", i, name))
		}
	}
	return out
}

// MetricsSnapshot merges every partition's registry into one snapshot.
func (pe *ParallelEngine) MetricsSnapshot() metrics.Snapshot {
	var s metrics.Snapshot
	for _, p := range pe.parts {
		s.Merge(p.Metrics().Snapshot())
	}
	return s
}

// Close shuts down the worker pool and closes every partition engine in
// partition order, releasing proc goroutines and flushing telemetry.
func (pe *ParallelEngine) Close() {
	if pe.closed {
		return
	}
	pe.closed = true
	for _, c := range pe.start {
		close(c)
	}
	for _, p := range pe.parts {
		p.Close()
	}
}

// ---------------------------------------------------------------------------
// Checkpoint/restore: a parallel checkpoint is the per-partition engine
// images plus the epoch geometry. Engine.Checkpoint's quiescence rule
// applies per partition; pending cross-partition deliveries are engine
// callbacks and are rejected there, so a parallel image is always taken at a
// barrier with empty mailboxes.

const pckptMagic = "MKPCKP1\n"

// Checkpoint serializes all partitions to w. Call between Run calls.
func (pe *ParallelEngine) Checkpoint(w io.Writer) error {
	for i := range pe.outbox {
		if len(pe.outbox[i]) > 0 {
			return fmt.Errorf("sim: checkpoint with undelivered cross-partition messages from partition %d (mid-epoch)", i)
		}
	}
	if err := ckpt.Magic(w, pckptMagic); err != nil {
		return err
	}
	if err := ckpt.WriteU64(w, uint64(len(pe.parts)), uint64(pe.lookahead)); err != nil {
		return err
	}
	var blob bytes.Buffer
	for i, p := range pe.parts {
		blob.Reset()
		if err := p.Checkpoint(&blob); err != nil {
			return fmt.Errorf("sim: checkpoint partition %d: %w", i, err)
		}
		if err := ckpt.WriteBytes(w, blob.Bytes()); err != nil {
			return err
		}
	}
	return ckpt.Magic(w, ckptTrailer)
}

// RestoreParallel reads a parallel checkpoint. build reconstructs partition
// part's host-side graph on its fresh engine (see Restore for the
// contract); it may also use pe to re-register cross-partition handlers,
// which — like all engine callbacks — are never part of the serialized
// image.
func RestoreParallel(r io.Reader, workers int, build func(pe *ParallelEngine, part int, e *Engine)) (*ParallelEngine, error) {
	if err := ckpt.ExpectMagic(r, pckptMagic); err != nil {
		return nil, err
	}
	var nparts, lookahead uint64
	if err := ckpt.ReadU64(r, &nparts, &lookahead); err != nil {
		return nil, err
	}
	if nparts < 1 || lookahead == 0 {
		return nil, fmt.Errorf("sim: corrupt parallel checkpoint header (%d parts, lookahead %d)", nparts, lookahead)
	}
	pe := &ParallelEngine{lookahead: Time(lookahead), parts: make([]*Engine, nparts)}
	pe.init(workers)
	for i := range pe.parts {
		blob, err := ckpt.ReadBytes(r)
		if err != nil {
			return nil, err
		}
		e, err := Restore(bytes.NewReader(blob), func(e *Engine) { build(pe, i, e) })
		if err != nil {
			return nil, fmt.Errorf("sim: restore partition %d: %w", i, err)
		}
		pe.parts[i] = e
	}
	if err := ckpt.ExpectMagic(r, ckptTrailer); err != nil {
		return nil, err
	}
	return pe, nil
}
