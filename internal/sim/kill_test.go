package sim

import (
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the live goroutine count drops to at most bound,
// giving freshly unwound proc goroutines a moment to exit (the last victim's
// goroutine hands the baton back before its final return).
func waitGoroutines(t *testing.T, bound int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > bound && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > bound {
		t.Fatalf("goroutine leak: %d live, want <= %d", n, bound)
	}
}

// TestKillUnwindsParkedProc fail-stops a parked proc at virtual time and
// verifies its goroutine is released without running any further simulated
// code, and that the kill lands at the right virtual time.
func TestKillUnwindsParkedProc(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine(1)
	resumed := false
	victim := e.Spawn("victim", func(p *Proc) {
		p.Park()
		resumed = true
	})
	e.Spawn("killer", func(p *Proc) {
		p.Sleep(100)
		e.Kill(victim)
	})
	e.Run()
	if resumed {
		t.Fatal("killed proc ran past its Park")
	}
	if d := e.Deadlocked(); len(d) != 0 {
		t.Fatalf("deadlocked procs after kill: %v", d)
	}
	e.Close()
	waitGoroutines(t, base)
}

// TestKillFromEngineCallback is the fault-injector shape: a timer callback
// kills a proc that is mid-Sleep. The proc must unwind at the kill time, not
// at the end of its sleep, and its later sleep event must be discarded.
func TestKillFromEngineCallback(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine(1)
	var died Time
	victim := e.Spawn("victim", func(p *Proc) {
		p.Sleep(10_000)
		t.Error("killed proc woke from Sleep")
	})
	e.After(50, func() { e.Kill(victim) })
	e.After(51, func() { died = e.Now() })
	e.Run()
	if died != 51 {
		t.Fatalf("run did not pass the kill window: t=%d", died)
	}
	if e.Now() != 10_000 {
		t.Fatalf("queue should still drain past the stale sleep event: now=%d", e.Now())
	}
	e.Close()
	waitGoroutines(t, base)
}

// TestKillIsIdempotent kills the same proc twice (second kill after the proc
// is already gone) and kills an already-finished proc.
func TestKillIsIdempotent(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	victim := e.Spawn("victim", func(p *Proc) { p.Park() })
	finished := e.Spawn("finished", func(p *Proc) {})
	e.Spawn("killer", func(p *Proc) {
		p.Sleep(10)
		e.Kill(victim)
		e.Kill(victim)
		p.Sleep(10)
		e.Kill(victim)
		e.Kill(finished)
	})
	e.Run()
	e.CheckQuiesced()
}

// TestSelfKillUnwindsAtNextYield: a proc killing itself keeps running until
// its next yield point, then unwinds.
func TestSelfKillUnwindsAtNextYield(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	reachedYield := false
	e.Spawn("suicidal", func(p *Proc) {
		e.Kill(p)
		reachedYield = true // code before the yield still runs
		p.Sleep(1)
		t.Error("self-killed proc survived its yield")
	})
	e.Run()
	if !reachedYield {
		t.Fatal("self-kill pre-empted straight-line code")
	}
	e.CheckQuiesced()
}

// TestCloseWithProcBlockedOnPoisonedChannel models a dead-peer wait: the
// producer is fail-stopped, leaving the consumer parked forever on a channel
// that will never be written. Close must reap the blocked consumer without
// hanging, and no goroutine may outlive it (the regression bound required by
// the fault model).
func TestCloseWithProcBlockedOnPoisonedChannel(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine(7)
	q := NewQueue[int](e)
	producer := e.Spawn("producer", func(p *Proc) {
		p.Sleep(1000)
		q.Push(1) // never reached: killed at t=100
	})
	e.Spawn("consumer", func(p *Proc) {
		q.Pop(p) // blocks forever once the producer dies
		t.Error("consumer received from a poisoned channel")
	})
	e.After(100, func() { e.Kill(producer) })
	e.Run()
	if d := e.Deadlocked(); len(d) != 1 || d[0] != "consumer" {
		t.Fatalf("want exactly the consumer deadlocked, got %v", d)
	}
	e.Close()
	waitGoroutines(t, base)
}

// TestKilledProcNeverLeaksUnderChurn spawns and kills many procs across a run
// and bounds the goroutine count, the NumGoroutine regression guard from the
// fault-injection work.
func TestKilledProcNeverLeaksUnderChurn(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine(3)
	for i := 0; i < 64; i++ {
		d := Time(i)
		victim := e.Spawn("victim", func(p *Proc) {
			for {
				p.Sleep(10)
			}
		})
		e.After(5+d, func() { e.Kill(victim) })
	}
	e.Run()
	e.Close()
	waitGoroutines(t, base+2)
}
