// Package sim provides a deterministic discrete-event simulation engine with
// a virtual clock measured in CPU cycles.
//
// Simulated activities run as Procs: each Proc is backed by a goroutine, but
// the engine guarantees that at most one Proc executes at a time and that all
// wakeups are ordered by (virtual time, schedule sequence). Simulation state
// shared between Procs therefore needs no locking, and runs are bit-for-bit
// reproducible for a given seed.
//
// The engine is the substrate for every hardware and OS model in this
// repository: cores, caches, interconnect links, CPU drivers, monitors and
// applications are all Procs exchanging virtual time.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is a point in virtual time, measured in cycles.
type Time uint64

// Forever is a sentinel duration meaning "no timeout".
const Forever = Time(1) << 62

type event struct {
	at  Time
	seq uint64
	p   *Proc  // proc to resume, or nil
	fn  func() // callback to invoke, if p == nil
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event       { return h[0] }
func (h *eventHeap) pushEv(e *event)   { heap.Push(h, e) }
func (h *eventHeap) popEv() (e *event) { return heap.Pop(h).(*event) }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   map[*Proc]struct{}
	running *Proc
	yield   chan struct{}
	rng     *RNG
	trace   func(t Time, who, msg string)
	stopped bool
	nextID  int
}

// NewEngine returns an engine with its clock at zero and the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// SetTrace installs a trace hook invoked by Proc.Tracef. A nil hook disables
// tracing.
func (e *Engine) SetTrace(fn func(t Time, who, msg string)) { e.trace = fn }

func (e *Engine) schedule(d Time, p *Proc, fn func()) *event {
	e.seq++
	ev := &event{at: e.now + d, seq: e.seq, p: p, fn: fn}
	e.events.pushEv(ev)
	return ev
}

// After invokes fn at the current time plus d. fn runs in engine context and
// must not block; to perform blocking work, have fn wake a Proc.
func (e *Engine) After(d Time, fn func()) { e.schedule(d, nil, fn) }

// Spawn creates a new Proc executing fn and schedules it to start at the
// current virtual time. fn runs in its own goroutine under engine control.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{e: e, id: e.nextID, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			p.done = true
			delete(e.procs, p)
			if r != nil && r != errKilled {
				// A genuine panic inside simulated code: crash loudly so the
				// bug is visible, after releasing the engine.
				go func() { panic(fmt.Sprintf("sim: proc %q panicked at t=%d: %v", p.name, e.now, r)) }()
			}
			e.yield <- struct{}{}
		}()
		if p.killed {
			panic(errKilled)
		}
		fn(p)
	}()
	e.schedule(0, p, nil)
	return p
}

// step processes a single event. Reports whether an event was processed.
func (e *Engine) step() bool {
	for e.events.Len() > 0 {
		ev := e.events.popEv()
		if ev.at < e.now {
			panic("sim: event scheduled in the past")
		}
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			return true
		}
		p := ev.p
		if p.done || p.killed {
			continue
		}
		e.running = p
		p.resume <- struct{}{}
		<-e.yield
		e.running = nil
		return true
	}
	return false
}

// Run processes events until the event queue is empty or Stop is called.
// Procs that are parked with no pending wakeup remain parked; use Deadlocked
// to inspect them.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil processes events up to and including virtual time t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && e.events.Len() > 0 && e.events.peek().at <= t && e.step() {
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes Run return after the current event completes. It may be called
// from engine callbacks or Procs.
func (e *Engine) Stop() { e.stopped = true }

// Deadlocked returns the names of non-daemon procs that are alive but parked
// with no scheduled wakeup. An empty result after Run means the simulation
// quiesced cleanly.
func (e *Engine) Deadlocked() []string {
	var out []string
	for p := range e.procs {
		if !p.daemon && p.waiting {
			out = append(out, p.name)
		}
	}
	sort.Strings(out)
	return out
}

// Close terminates all live procs, releasing their goroutines. The engine
// must not be used afterwards.
func (e *Engine) Close() {
	for len(e.procs) > 0 {
		var victim *Proc
		for p := range e.procs {
			if victim == nil || p.id < victim.id {
				victim = p
			}
		}
		victim.killed = true
		victim.resume <- struct{}{}
		<-e.yield
	}
}

// CheckQuiesced is a test helper: it panics if any non-daemon proc is still
// parked after Run.
func (e *Engine) CheckQuiesced() {
	if d := e.Deadlocked(); len(d) > 0 {
		panic("sim: deadlocked procs: " + strings.Join(d, ", "))
	}
}
