// Package sim provides a deterministic discrete-event simulation engine with
// a virtual clock measured in CPU cycles.
//
// Simulated activities run as Procs: each Proc is backed by a goroutine, but
// the engine guarantees that at most one Proc executes at a time and that all
// wakeups are ordered by (virtual time, schedule sequence). Simulation state
// shared between Procs therefore needs no locking, and runs are bit-for-bit
// reproducible for a given seed.
//
// The engine is the substrate for every hardware and OS model in this
// repository: cores, caches, interconnect links, CPU drivers, monitors and
// applications are all Procs exchanging virtual time. Because every
// experiment's wall-clock cost is dominated by this event loop, the hot path
// is built for speed:
//
//   - events live in a hand-rolled 4-ary min-heap specialized to *event (no
//     container/heap interface boxing),
//   - dispatched events return to a free list, so steady-state scheduling
//     performs no heap allocation,
//   - After callbacks run inline in the dispatching goroutine and never touch
//     the proc machinery, and
//   - control transfers between procs are a single channel handoff: the
//     yielding goroutine itself dispatches the next event and resumes the
//     next proc directly, instead of bouncing through a central scheduler
//     goroutine (which would cost two handoffs per event).
package sim

import (
	"fmt"
	"sort"
	"strings"

	"multikernel/internal/metrics"
	"multikernel/internal/trace"
)

// Time is a point in virtual time, measured in cycles.
type Time uint64

// Forever is a sentinel duration meaning "no timeout".
const Forever = Time(1) << 62

type event struct {
	at  Time
	pri uint64 // tie-break demotion class; 0 except under a perturb hook
	seq uint64
	p   *Proc  // proc to resume, or nil
	fn  func() // callback to invoke, if p == nil
	// hfn is the argument-carrying callback variant used for cross-partition
	// message delivery (ParallelEngine mailboxes): the handler closure is
	// created once at registration time and the two payload words ride in the
	// pooled event itself, so steady-state cross-partition traffic schedules
	// with zero allocation.
	hfn  func(a, b uint64)
	a, b uint64
	next *event // free-list link while pooled
}

// eventQueue is a 4-ary min-heap of events ordered by (at, pri, seq). A
// 4-ary heap does the same number of comparisons as a binary heap in roughly
// half the tree depth, which means fewer cache-missing node hops per
// operation; specializing it to *event avoids container/heap's interface
// conversions and method-value indirections. pri is zero for every event
// unless a perturb hook is installed, so the default order is (at, seq).
type eventQueue []*event

func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e *event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

func (q *eventQueue) pop() *event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	// Sift the displaced element down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventBefore(h[c], h[min]) {
				min = c
			}
		}
		if !eventBefore(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventQueue
	free    *event // recycled events; makes steady-state scheduling zero-alloc
	procs   map[*Proc]struct{}
	running *Proc
	driver  chan struct{} // returns the baton to the Run/Close caller
	limit   Time          // dispatch boundary (RunUntil), or ^Time(0)
	rng     *RNG
	perturb PerturbFunc // schedule-exploration hook, or nil (the default)
	stopped bool
	closing bool
	nextID  int

	// Telemetry. rec is nil unless tracing is on (the tracing-off fast path
	// is the nil check inside trace.Recorder methods); met always exists.
	// The engine's own hot-path counters are plain fields bumped inline and
	// sampled lazily through CounterFunc, so the dispatch loop never touches
	// the registry.
	rec         *trace.Recorder
	met         *metrics.Registry
	serial      uint64         // Serial() allocator (channel ids, flow correlation)
	heapMax     *metrics.Gauge // high-water mark of the event heap
	wakes       uint64         // proc wakeups delivered via Wake/Unpark
	contributed bool           // telemetry already handed to the global collectors

	// ckpts are the components serialized into Engine.Checkpoint, in
	// registration order (see checkpoint.go). The engine's own metrics
	// registry is always the first entry.
	ckpts []ckptComponent
}

// NewEngine returns an engine with its clock at zero and the given RNG seed.
func NewEngine(seed uint64) *Engine {
	e := &Engine{
		procs:  make(map[*Proc]struct{}),
		driver: make(chan struct{}, 1),
		limit:  ^Time(0),
		rng:    NewRNG(seed),
		met:    metrics.NewRegistry(),
	}
	// Dispatched is derived, not counted: every event ever scheduled (seq)
	// is either still in the heap or has been popped by the dispatch loop —
	// there is no cancellation path — so the loop itself stays untouched.
	e.met.CounterFunc("sim.events_dispatched", func() uint64 { return e.seq - uint64(len(e.events)) })
	// The heap high-water mark is a level, not a monotone count: a shared
	// Gauge handle bumped inline keeps the dispatch loop registry-free while
	// letting samplers read it as a level series.
	e.heapMax = e.met.Gauge("sim.heap_max_depth")
	e.met.CounterFunc("sim.proc_wakes", func() uint64 { return e.wakes })
	e.met.CounterFunc("sim.procs_spawned", func() uint64 { return uint64(e.nextID) })
	if trace.Capturing() {
		e.rec = trace.NewRecorder()
	}
	// The registry participates in checkpoint/restore like any model
	// component, so counters and histograms survive a warm start.
	e.ckpts = []ckptComponent{{name: "metrics", c: e.met}}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Tracer returns the engine's trace recorder — nil when tracing is off,
// which trace.Recorder methods accept as the disabled fast path, so call
// sites emit unconditionally: e.Tracer().Emit(...).
func (e *Engine) Tracer() *trace.Recorder { return e.rec }

// SetTracer installs (or, with nil, removes) the trace recorder.
func (e *Engine) SetTracer(r *trace.Recorder) { e.rec = r }

// Metrics returns the engine's counter/histogram registry.
func (e *Engine) Metrics() *metrics.Registry { return e.met }

// Serial mints an engine-unique id (URPC channel ids, flow correlation).
func (e *Engine) Serial() uint64 {
	e.serial++
	return e.serial
}

// newEvent takes an event from the free list, or allocates one.
func (e *Engine) newEvent() *event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

// releaseEvent clears an event and returns it to the free list.
func (e *Engine) releaseEvent(ev *event) {
	*ev = event{next: e.free}
	e.free = ev
}

// PerturbFunc observes every scheduling decision and may perturb it: extra
// is added to the event's delay (wake jitter), and pri demotes the event
// within its timestamp cohort (events at equal virtual time dispatch in
// ascending (pri, seq) order). Returning (0, 0) leaves the decision
// untouched. The hook runs on the scheduling hot path, so implementations
// must be cheap and must not touch the engine.
type PerturbFunc func(now Time, delay Time, seq uint64) (extra Time, pri uint64)

// SetPerturb installs (or, with nil, removes) a schedule-perturbation hook.
// The hook is part of the run's identity: a given (seed, hook) pair is as
// deterministic as a plain seeded run, which is what lets the exploration
// harness replay and shrink failing schedules. With no hook installed the
// scheduling path is unchanged.
func (e *Engine) SetPerturb(fn PerturbFunc) { e.perturb = fn }

func (e *Engine) schedule(d Time, p *Proc, fn func()) {
	e.seq++
	ev := e.newEvent()
	ev.at, ev.seq, ev.p, ev.fn = e.now+d, e.seq, p, fn
	if e.perturb != nil {
		extra, pri := e.perturb(e.now, d, e.seq)
		ev.at += extra
		ev.pri = pri
	}
	e.events.push(ev)
	if n := int64(len(e.events)); n > e.heapMax.Value() {
		e.heapMax.Set(n)
	}
}

// scheduleAt enqueues an engine callback at an absolute virtual time,
// bypassing the perturb hook (cross-partition delivery times are fixed by the
// lookahead contract, not schedulable jitter). Used by the parallel engine's
// mailbox merge and by checkpoint restore.
func (e *Engine) scheduleAt(at Time, fn func()) {
	e.seq++
	ev := e.newEvent()
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	e.events.push(ev)
	if n := int64(len(e.events)); n > e.heapMax.Value() {
		e.heapMax.Set(n)
	}
}

// scheduleArgsAt is scheduleAt for the pooled argument-carrying handler form:
// no closure is created, the payload words travel in the event.
func (e *Engine) scheduleArgsAt(at Time, hfn func(a, b uint64), a, b uint64) {
	e.seq++
	ev := e.newEvent()
	ev.at, ev.seq, ev.hfn, ev.a, ev.b = at, e.seq, hfn, a, b
	e.events.push(ev)
	if n := int64(len(e.events)); n > e.heapMax.Value() {
		e.heapMax.Set(n)
	}
}

// After invokes fn at the current time plus d. fn runs in engine context and
// must not block; to perform blocking work, have fn wake a Proc. Engine
// callbacks are the fast path: they are dispatched inline with no proc
// handoff.
func (e *Engine) After(d Time, fn func()) { e.schedule(d, nil, fn) }

// Spawn creates a new Proc executing fn and schedules it to start at the
// current virtual time. fn runs in its own goroutine under engine control.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{e: e, id: e.nextID, name: name, resume: make(chan struct{}, 1)}
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			p.done = true
			delete(e.procs, p)
			if r != nil && r != errKilled {
				// A genuine panic inside simulated code: crash loudly so the
				// bug is visible, after releasing the engine.
				go func() { panic(fmt.Sprintf("sim: proc %q panicked at t=%d: %v", p.name, e.now, r)) }()
			}
			// The exiting goroutine holds the baton: pass it to the next
			// runnable proc, or back to the driver.
			e.exitDispatch()
		}()
		if p.killed {
			panic(errKilled)
		}
		fn(p)
	}()
	e.schedule(0, p, nil)
	return p
}

// dispatch is the scheduler loop, executed by whichever goroutine currently
// holds the control baton (the Run caller, or a proc that is yielding or
// exiting). It runs engine callbacks inline and, on reaching a proc event,
// hands the baton to that proc with a single channel send and reports true.
// It reports false when the run is over (queue empty or past the limit,
// Stop called, or the engine closing), leaving the baton with the caller.
func (e *Engine) dispatch() bool {
	e.running = nil
	for !e.stopped && !e.closing {
		if len(e.events) == 0 {
			return false
		}
		if e.events[0].at > e.limit {
			return false
		}
		ev := e.events.pop()
		if ev.at < e.now {
			panic("sim: event scheduled in the past")
		}
		e.now = ev.at
		p, fn, hfn, a, b := ev.p, ev.fn, ev.hfn, ev.a, ev.b
		e.releaseEvent(ev)
		if fn != nil {
			fn() // engine-context fast path: no handoff
			continue
		}
		if hfn != nil {
			hfn(a, b) // mailbox-delivery fast path: pooled event, no closure
			continue
		}
		if p.done {
			continue // stale wakeup
		}
		// A killed proc is still resumed: its goroutine must run once more
		// to unwind via the errKilled panic and release itself.
		e.running = p
		p.resume <- struct{}{}
		return true
	}
	return false
}

// exitDispatch passes the baton on when a proc yields or exits: either to
// the next runnable proc via dispatch, or back to the driver.
func (e *Engine) exitDispatch() {
	if !e.dispatch() {
		e.driver <- struct{}{}
	}
}

// runLoop drives dispatch from the caller's (driver's) context and blocks
// until the run is over.
func (e *Engine) runLoop() {
	if e.dispatch() {
		// The baton is with a proc; wait for it to come back.
		<-e.driver
	}
	e.running = nil
}

// Run processes events until the event queue is empty or Stop is called.
// Procs that are parked with no pending wakeup remain parked; use Deadlocked
// to inspect them.
func (e *Engine) Run() {
	e.stopped = false
	e.limit = ^Time(0)
	e.runLoop()
}

// RunUntil processes events up to and including virtual time t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	e.limit = t
	e.runLoop()
	e.limit = ^Time(0)
	if e.now < t {
		e.now = t
	}
}

// Stop makes Run return after the current event completes. It may be called
// from engine callbacks or Procs.
func (e *Engine) Stop() { e.stopped = true }

// Deadlocked returns the names of non-daemon procs that are alive but parked
// with no scheduled wakeup. An empty result after Run means the simulation
// quiesced cleanly.
func (e *Engine) Deadlocked() []string {
	var out []string
	for p := range e.procs {
		if !p.daemon && p.waiting {
			out = append(out, p.name)
		}
	}
	sort.Strings(out)
	return out
}

// Close terminates all live procs, releasing their goroutines. The engine
// must not be used afterwards. Victims are killed in ascending id order so
// shutdown is deterministic.
func (e *Engine) Close() {
	e.closing = true
	victims := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		victims = append(victims, p)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, v := range victims {
		if v.done {
			continue
		}
		v.killed = true
		v.resume <- struct{}{}
		<-e.driver
	}
	e.flushTelemetry()
}

// flushTelemetry hands the engine's trace and final metrics to the global
// capture collectors (no-ops when no capture window is open). Runs once, at
// the end of Close, so the contribution covers the whole run.
func (e *Engine) flushTelemetry() {
	if e.contributed {
		return
	}
	e.contributed = true
	if trace.Capturing() {
		trace.Contribute(e.rec)
	}
	if metrics.Capturing() {
		metrics.Contribute(e.met.Snapshot())
	}
}

// Kill fail-stops p at the current virtual time: no further simulated code of
// p runs, and its goroutine is released deterministically. It may be called
// from another Proc or from an engine callback (a fault injector timer); a
// proc may also kill itself, in which case it exits at its next yield. Killing
// a proc that is already dead is a no-op. Procs blocked on a channel or lock
// modeled with Park are unwound exactly as by Close, so a peer of the killed
// proc that later blocks on the now-poisoned channel simply parks forever and
// shows up in Deadlocked (or is reaped by Close).
func (e *Engine) Kill(p *Proc) {
	if p.done || p.killed {
		return
	}
	p.killed = true
	// Whether p is parked, sleeping, or running (self-kill), one immediate
	// resume event unwinds it at its next yield; any other scheduled wakeup
	// finds p.done and is discarded.
	p.waiting = false
	p.token = false
	e.schedule(0, p, nil)
}

// CheckQuiesced is a test helper: it panics if any non-daemon proc is still
// parked after Run.
func (e *Engine) CheckQuiesced() {
	if d := e.Deadlocked(); len(d) > 0 {
		panic("sim: deadlocked procs: " + strings.Join(d, ", "))
	}
}
