package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"multikernel/internal/trace"
)

func TestSleepAdvancesTime(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(100)
		at = p.Now()
	})
	e.Run()
	if at != 100 {
		t.Fatalf("woke at %d, want 100", at)
	}
	if e.Now() != 100 {
		t.Fatalf("engine time %d, want 100", e.Now())
	}
}

func TestEventOrderingIsFIFOWithinCycle(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(50)
			order = append(order, i)
		})
	}
	e.Run()
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestAfterCallbackRunsAtScheduledTime(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(42, func() { at = e.Now() })
	e.Run()
	if at != 42 {
		t.Fatalf("callback at %d, want 42", at)
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine(1)
	var wokenAt Time
	sleeper := e.Spawn("sleeper", func(p *Proc) {
		p.Park()
		wokenAt = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(500)
		p.Unpark(sleeper)
	})
	e.Run()
	if wokenAt != 500 {
		t.Fatalf("woken at %d, want 500", wokenAt)
	}
	e.CheckQuiesced()
}

func TestUnparkBeforeParkLeavesToken(t *testing.T) {
	e := NewEngine(1)
	var ranToEnd bool
	var target *Proc
	target = e.Spawn("t", func(p *Proc) {
		p.Sleep(10) // let the waker go first
		p.Park()    // token already present: returns immediately
		ranToEnd = true
	})
	e.Spawn("w", func(p *Proc) {
		p.Sleep(5)
		p.Unpark(target)
	})
	e.Run()
	if !ranToEnd {
		t.Fatal("park with pending token blocked")
	}
	e.CheckQuiesced()
}

func TestParkTimeout(t *testing.T) {
	e := NewEngine(1)
	var timedOut bool
	var at Time
	e.Spawn("t", func(p *Proc) {
		timedOut = p.ParkTimeout(300)
		at = p.Now()
	})
	e.Run()
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if at != 300 {
		t.Fatalf("timed out at %d, want 300", at)
	}
}

func TestParkTimeoutWokenEarly(t *testing.T) {
	e := NewEngine(1)
	var timedOut bool
	var at Time
	target := e.Spawn("t", func(p *Proc) {
		timedOut = p.ParkTimeout(1000)
		at = p.Now()
		p.Sleep(5000) // the stale timeout callback must not re-wake us early
	})
	e.Spawn("w", func(p *Proc) {
		p.Sleep(100)
		p.Unpark(target)
	})
	e.Run()
	if timedOut {
		t.Fatal("woken early but reported timeout")
	}
	if at != 100 {
		t.Fatalf("woke at %d, want 100", at)
	}
	if e.Now() != 5100 {
		t.Fatalf("end time %d, want 5100 (stale timeout interfered)", e.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", func(p *Proc) { p.Park() })
	e.Run()
	if d := e.Deadlocked(); len(d) != 1 || d[0] != "stuck" {
		t.Fatalf("deadlocked = %v, want [stuck]", d)
	}
	e.Close()
}

func TestDaemonExcludedFromDeadlock(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("server", func(p *Proc) {
		p.SetDaemon(true)
		p.Park()
	})
	e.Run()
	if d := e.Deadlocked(); len(d) != 0 {
		t.Fatalf("deadlocked = %v, want none", d)
	}
	e.Close()
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(100)
			ticks = append(ticks, p.Now())
		}
	})
	e.RunUntil(350)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks by t=350, want 3", len(ticks))
	}
	if e.Now() != 350 {
		t.Fatalf("now=%d, want 350", e.Now())
	}
	e.Run()
	if len(ticks) != 10 {
		t.Fatalf("got %d ticks after full run, want 10", len(ticks))
	}
}

func TestStopAbortsRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Spawn("p", func(p *Proc) {
		for {
			p.Sleep(10)
			n++
			if n == 5 {
				e.Stop()
			}
		}
	})
	e.Run()
	if n != 5 {
		t.Fatalf("ran %d iterations, want 5", n)
	}
	e.Close()
}

func TestCloseKillsLiveProcs(t *testing.T) {
	e := NewEngine(1)
	cleaned := false
	e.Spawn("p", func(p *Proc) {
		defer func() {
			// defers still run on kill so models can release resources
			cleaned = true
			if r := recover(); r != nil {
				panic(r)
			}
		}()
		p.Park()
	})
	e.Run()
	e.Close()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Close")
	}
	if len(e.procs) != 0 {
		t.Fatalf("%d procs alive after Close", len(e.procs))
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []Time {
		e := NewEngine(seed)
		var log []Time
		for i := 0; i < 8; i++ {
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(e.RNG().Time(100) + 1)
					log = append(log, p.Now())
				}
			})
		}
		e.Run()
		return log
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different schedules")
	}
	c := run(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine(1)
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(100)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(50)
			childAt = c.Now()
		})
	})
	e.Run()
	if childAt != 150 {
		t.Fatalf("child finished at %d, want 150", childAt)
	}
}

// Property: for any set of sleep durations, procs complete in nondecreasing
// time order and the engine clock ends at the max duration.
func TestSleepCompletionOrderProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 64 {
			return true
		}
		e := NewEngine(3)
		var finished []Time
		for _, d := range durs {
			d := Time(d)
			e.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				finished = append(finished, p.Now())
			})
		}
		e.Run()
		if len(finished) != len(durs) {
			return false
		}
		var max Time
		for i := 1; i < len(finished); i++ {
			if finished[i] < finished[i-1] {
				return false
			}
		}
		for _, d := range durs {
			if Time(d) > max {
				max = Time(d)
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerRecordsStructuredEvents(t *testing.T) {
	e := NewEngine(1)
	if e.Tracer() != nil {
		t.Fatal("tracing must be off by default")
	}
	rec := trace.NewRecorder()
	e.SetTracer(rec)
	e.Spawn("worker", func(p *Proc) {
		p.Sleep(50)
		e.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubApp, 0, "phase", 0, 1)
		p.Sleep(50)
		e.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubApp, 0, "phase", 0, 2)
	})
	e.Run()
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("trace events: %v", evs)
	}
	if evs[0].At != 50 || evs[0].Arg != 1 || evs[1].At != 100 || evs[1].Arg != 2 {
		t.Fatalf("trace content: %v", evs)
	}
	// Removing the recorder disables tracing; emitting through the nil
	// recorder is a safe no-op.
	e.SetTracer(nil)
	e.Spawn("quiet", func(p *Proc) {
		e.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubApp, 0, "ignored", 0, 0)
	})
	e.Run()
	if len(rec.Events()) != 2 {
		t.Fatal("trace recorded after recorder removal")
	}
}

// TestWakeEmitsTraceAndCounters pins the sim-layer instrumentation: proc
// wakeups show up as sim.wake instants when tracing and always move the
// sim.proc_wakes counter; the dispatch counter and heap high-water mark are
// sampled through the registry.
func TestWakeEmitsTraceAndCounters(t *testing.T) {
	e := NewEngine(1)
	rec := trace.NewRing(16)
	e.SetTracer(rec)
	var target *Proc
	target = e.Spawn("sleeper", func(p *Proc) { p.Park() })
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(10)
		p.Unpark(target)
	})
	e.Run()
	wakes := 0
	for _, ev := range rec.Events() {
		if ev.Name == "sim.wake" && ev.Kind == trace.Instant {
			wakes++
		}
	}
	if wakes != 1 {
		t.Fatalf("sim.wake instants = %d, want 1", wakes)
	}
	snap := e.Metrics().Snapshot()
	if snap.Counters["sim.proc_wakes"] != 1 {
		t.Fatalf("sim.proc_wakes = %d, want 1", snap.Counters["sim.proc_wakes"])
	}
	if snap.Counters["sim.events_dispatched"] == 0 || snap.Gauges["sim.heap_max_depth"] == 0 {
		t.Fatalf("engine counters not sampled: %v / %v", snap.Counters, snap.Gauges)
	}
}
