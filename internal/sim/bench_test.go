package sim

import (
	"testing"

	"multikernel/internal/trace"
)

// BenchmarkScheduleDispatch measures the engine-context fast path: schedule
// an After callback and dispatch it, with no proc handoff. Steady state must
// be zero-alloc: events come from the free list and the callback closure is
// hoisted out of the loop.
func BenchmarkScheduleDispatch(b *testing.B) {
	e := NewEngine(1)
	n := 0
	fn := func() { n++ }
	// Warm the free list and heap capacity.
	e.After(1, fn)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Run()
	}
	if n != b.N+1 {
		b.Fatalf("dispatched %d callbacks, want %d", n, b.N+1)
	}
}

// BenchmarkScheduleDispatchDeep measures schedule+dispatch with a populated
// heap, so sift-up/down costs at realistic queue depths are visible.
func BenchmarkScheduleDispatchDeep(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	// A standing population of far-future events keeps the heap deep.
	for i := 0; i < 1024; i++ {
		e.After(Forever, fn)
	}
	e.After(1, fn)
	e.RunUntil(e.Now() + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.RunUntil(e.Now() + 1)
	}
}

// BenchmarkProcHandoff measures the proc resume path: one Sleep per
// iteration is one schedule, one baton handoff to the proc and one handoff
// back. Zero allocations in steady state.
func BenchmarkProcHandoff(b *testing.B) {
	e := NewEngine(1)
	stop := false
	e.Spawn("worker", func(p *Proc) {
		for !stop {
			p.Sleep(1)
		}
	})
	// Reach steady state: the proc is parked in its Sleep loop.
	e.RunUntil(e.Now() + 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 1)
	}
	b.StopTimer()
	stop = true
	e.Run()
}

// BenchmarkParkUnpark measures the wakeup path underlying URPC blocking
// receives and monitor request loops: each virtual cycle, one proc wakes
// from Sleep and Unparks a parked peer (two handoffs per cycle).
func BenchmarkParkUnpark(b *testing.B) {
	e := NewEngine(1)
	stop := false
	var pong *Proc
	e.Spawn("ping", func(p *Proc) {
		for !stop {
			p.Sleep(1)
			p.Unpark(pong)
		}
	})
	pong = e.Spawn("pong", func(p *Proc) {
		p.SetDaemon(true)
		for {
			p.Park()
		}
	})
	e.RunUntil(e.Now() + 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 1)
	}
	b.StopTimer()
	stop = true
	e.Run()
	e.Close()
}

// benchWakeLoop is the ParkUnpark workload parameterized by tracer: it drives
// the instrumented paths (Wake emits a sim.wake instant when tracing), so the
// TraceOff/TraceOn pair below measures exactly the overhead the trace layer's
// disabled contract promises to keep under 2%.
func benchWakeLoop(b *testing.B, rec *trace.Recorder) {
	e := NewEngine(1)
	e.SetTracer(rec)
	stop := false
	var pong *Proc
	e.Spawn("ping", func(p *Proc) {
		for !stop {
			p.Sleep(1)
			p.Unpark(pong)
		}
	})
	pong = e.Spawn("pong", func(p *Proc) {
		p.SetDaemon(true)
		for {
			p.Park()
		}
	})
	e.RunUntil(e.Now() + 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 1)
	}
	b.StopTimer()
	stop = true
	e.Run()
	e.Close()
}

// BenchmarkTraceOffWake is the tracing-disabled baseline guarded by CI
// (ci/traceguard): a regression here means the nil-recorder fast path grew.
func BenchmarkTraceOffWake(b *testing.B) { benchWakeLoop(b, nil) }

// BenchmarkTraceOnWake is the same workload with a ring recorder attached,
// for judging the enabled-path cost (not guarded; tracing on may cost more).
func BenchmarkTraceOnWake(b *testing.B) { benchWakeLoop(b, trace.NewRing(1 << 16)) }

// BenchmarkTraceOffDispatch is the engine-context schedule+dispatch fast path
// with tracing disabled — the second CI-guarded baseline, covering the
// dispatched/maxHeap counter bookkeeping added to the hot loop.
func BenchmarkTraceOffDispatch(b *testing.B) {
	e := NewEngine(1)
	n := 0
	fn := func() { n++ }
	e.After(1, fn)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Run()
	}
}
