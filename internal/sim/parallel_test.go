package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"multikernel/internal/trace"
)

// The determinism gate for the parallel engine: a token ring crossing every
// partition boundary plus per-partition background load, run at several worker
// counts, must produce byte-identical traces, metrics, final clocks and final
// checkpoint images. The workload is deliberately irregular — RNG-driven local
// sleeps, RNG-dependent forwarding delays, parked daemons woken by message
// handlers — so any schedule divergence between worker counts shows up.

const (
	ringParts     = 4
	ringLookahead = Time(460)
	ringHops      = 200
)

// ringSetup registers partition i's message handler (always HandlerID 0: one
// handler per partition, registered in partition order) and spawns its parked
// sink daemon. The handler counts the token, wakes the sink, and forwards the
// token to the next partition with an RNG-flavored delay at or above the
// lookahead.
func ringSetup(pe *ParallelEngine, i int) { ringSetupOn(pe, i, pe.Part(i)) }

// ringSetupOn is ringSetup against an explicit engine, the form a
// RestoreParallel builder needs (pe.Part(i) is not wired yet during restore).
// The sink follows the checkpoint-restart-safe shape: durable progress lives
// in counters and the condition is re-checked before parking, so a restored
// sink entering its function from the top behaves exactly like one returning
// from Park.
func ringSetupOn(pe *ParallelEngine, i int, e *Engine) {
	tokens := e.Metrics().Counter("ring.tokens")
	sinkWakes := e.Metrics().Counter("ring.sink_wakes")
	sink := e.Spawn(fmt.Sprintf("sink%d", i), func(p *Proc) {
		p.SetDaemon(true)
		for {
			for sinkWakes.Value() < tokens.Value() {
				sinkWakes.Inc()
			}
			p.Park()
		}
	})
	pe.RegisterHandler(i, func(v, hop uint64) {
		tokens.Inc()
		e.Tracer().Emit(uint64(e.Now()), trace.Instant, trace.SubSim, int32(i), "ring.recv", v, hop)
		e.Wake(sink)
		if hop == 0 {
			return
		}
		// Local work before forwarding, then a cross-partition send with a
		// value-dependent delay ≥ lookahead.
		e.After(1+e.RNG().Time(97), func() {
			pe.Post(i, (i+1)%pe.NParts(), ringLookahead+Time(v%31), 0, v*0x9e3779b9+uint64(i), hop-1)
		})
	})
}

// ringLocals spawns partition i's background chatter: a proc doing a few
// hundred RNG sleeps, contributing local events that interleave with token
// handling inside every epoch.
func ringLocals(pe *ParallelEngine, i int) {
	e := pe.Part(i)
	pe.Spawn(i, fmt.Sprintf("local%d", i), func(p *Proc) {
		for j := 0; j < 300; j++ {
			p.Sleep(1 + e.RNG().Time(50))
		}
	})
}

// ringSeed injects one token per partition, each with the given hop budget.
func ringSeed(pe *ParallelEngine, hops uint64) {
	for i := 0; i < pe.NParts(); i++ {
		pe.Post(i, (i+1)%pe.NParts(), ringLookahead, 0, uint64(i+1)*12345, hops)
	}
}

func buildRing(workers int) *ParallelEngine {
	pe := NewParallelEngine(ringParts, ringLookahead, 7, workers)
	for i := 0; i < ringParts; i++ {
		ringSetup(pe, i)
		ringLocals(pe, i)
	}
	return pe
}

type ringResult struct {
	ckpt      []byte
	metrics   []byte
	traceHash [32]byte
	clocks    []Time
	tokens    uint64
}

func runRing(t *testing.T, workers int) ringResult {
	t.Helper()
	trace.StartCapture()
	defer trace.StopCapture()
	pe := buildRing(workers)
	ringSeed(pe, ringHops)
	pe.Run()
	if dl := pe.Deadlocked(); len(dl) > 0 {
		t.Fatalf("workers=%d: deadlocked procs %v", workers, dl)
	}
	var img bytes.Buffer
	if err := pe.Checkpoint(&img); err != nil {
		t.Fatalf("workers=%d: checkpoint: %v", workers, err)
	}
	snap := pe.MetricsSnapshot()
	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	clocks := make([]Time, pe.NParts())
	for i := range clocks {
		clocks[i] = pe.Part(i).Now()
	}
	pe.Close()
	var buf bytes.Buffer
	if err := trace.WriteCaptured(&buf); err != nil {
		t.Fatal(err)
	}
	return ringResult{
		ckpt:      img.Bytes(),
		metrics:   js,
		traceHash: sha256.Sum256(buf.Bytes()),
		clocks:    clocks,
		tokens:    snap.Counters["ring.tokens"],
	}
}

func TestParallelDeterminismAcrossWorkers(t *testing.T) {
	ref := runRing(t, 1)
	// Each of the ringParts tokens is received hops+1 times.
	if want := uint64(ringParts * (ringHops + 1)); ref.tokens != want {
		t.Fatalf("serial reference received %d tokens, want %d", ref.tokens, want)
	}
	for _, w := range []int{2, 3, 4, 8} {
		got := runRing(t, w)
		if !bytes.Equal(got.ckpt, ref.ckpt) {
			t.Errorf("workers=%d: final checkpoint image differs from serial reference", w)
		}
		if !bytes.Equal(got.metrics, ref.metrics) {
			t.Errorf("workers=%d: merged metrics differ from serial reference\n got: %s\nwant: %s", w, got.metrics, ref.metrics)
		}
		if got.traceHash != ref.traceHash {
			t.Errorf("workers=%d: trace bytes differ from serial reference", w)
		}
		for i := range ref.clocks {
			if got.clocks[i] != ref.clocks[i] {
				t.Errorf("workers=%d: partition %d clock %d, want %d", w, i, got.clocks[i], ref.clocks[i])
			}
		}
	}
}

// TestParallelRunUntilStaged checks that chopping a run into arbitrary
// RunUntil slices — epoch-aligned, mid-epoch, and a final open-ended Run — is
// indistinguishable from one uninterrupted Run, at every worker count: same
// metrics, same final checkpoint bytes (which cover clocks, heaps, sequence
// numbers and RNG streams). It also checks the clock contract: after
// RunUntil(t), every partition clock reads exactly t.
func TestParallelRunUntilStaged(t *testing.T) {
	finish := func(pe *ParallelEngine) ([]byte, []byte) {
		if dl := pe.Deadlocked(); len(dl) > 0 {
			t.Fatalf("deadlocked procs %v", dl)
		}
		var img bytes.Buffer
		if err := pe.Checkpoint(&img); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		js, err := json.Marshal(pe.MetricsSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		pe.Close()
		return img.Bytes(), js
	}

	pe := buildRing(1)
	ringSeed(pe, ringHops)
	pe.Run()
	refImg, refJS := finish(pe)

	L := ringLookahead
	cuts := []Time{3*L - 1, 3 * L, 10*L + 123, 10*L + 124, 40 * L}
	for _, w := range []int{1, 2, 4} {
		pe := buildRing(w)
		ringSeed(pe, ringHops)
		for _, cut := range cuts {
			pe.RunUntil(cut)
			for i := 0; i < pe.NParts(); i++ {
				if now := pe.Part(i).Now(); now != cut {
					t.Fatalf("workers=%d: after RunUntil(%d) partition %d clock is %d", w, cut, i, now)
				}
			}
		}
		pe.Run()
		img, js := finish(pe)
		if !bytes.Equal(img, refImg) {
			t.Errorf("workers=%d: staged run's final checkpoint differs from uninterrupted run", w)
		}
		if !bytes.Equal(js, refJS) {
			t.Errorf("workers=%d: staged run's metrics differ from uninterrupted run", w)
		}
	}
}

// TestParallelCrossPartitionDeadlock is the regression test for deadlock
// detection spanning partitions: a proc parked in partition 0 waiting for a
// message partition 1 never sends must drain every heap and be reported, with
// its partition prefix, just like a local deadlock.
func TestParallelCrossPartitionDeadlock(t *testing.T) {
	pe := NewParallelEngine(2, ringLookahead, 1, 2)
	defer pe.Close()
	pe.Spawn(0, "waiter", func(p *Proc) { p.Park() })
	pe.Spawn(1, "busy", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(100)
		}
	})
	pe.Run()
	dl := pe.Deadlocked()
	if len(dl) != 1 || dl[0] != "p0/waiter" {
		t.Fatalf("Deadlocked() = %v, want [p0/waiter]", dl)
	}
}

// TestParallelCrossPartitionWake is the positive counterpart: the same shape,
// but partition 1 does send the wakeup message, so the run quiesces cleanly
// and the waiter observes the sender's virtual time plus the message delay.
func TestParallelCrossPartitionWake(t *testing.T) {
	pe := NewParallelEngine(2, ringLookahead, 1, 2)
	defer pe.Close()
	var wokeAt Time
	waiter := pe.Spawn(0, "waiter", func(p *Proc) {
		p.Park()
		wokeAt = p.Now()
	})
	h := pe.RegisterHandler(0, func(a, b uint64) { pe.Part(0).Wake(waiter) })
	pe.Spawn(1, "sender", func(p *Proc) {
		p.Sleep(100)
		pe.Post(1, 0, ringLookahead, h, 0, 0)
	})
	pe.Run()
	if dl := pe.Deadlocked(); len(dl) != 0 {
		t.Fatalf("Deadlocked() = %v, want none", dl)
	}
	if want := Time(100) + ringLookahead; wokeAt != want {
		t.Fatalf("waiter woke at t=%d, want %d", wokeAt, want)
	}
}

func TestParallelPostBelowLookaheadPanics(t *testing.T) {
	pe := NewParallelEngine(2, ringLookahead, 1, 1)
	defer pe.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Post with delay below lookahead did not panic")
		}
	}()
	pe.Post(0, 1, ringLookahead-1, 0, 0, 0)
}

// TestParallelStopAtBarrier checks that Stop from simulated code halts at the
// epoch barrier at the same point regardless of worker count, and that Run can
// then resume to completion with results identical to a never-stopped run.
func TestParallelStopAtBarrier(t *testing.T) {
	run := func(w int, stop bool) ([]Time, []byte) {
		pe := buildRing(w)
		ringSeed(pe, ringHops)
		// The timer event exists in both variants so the engines' scheduling
		// state stays comparable; only whether it stops the run differs.
		pe.Part(0).After(20*ringLookahead+7, func() {
			if stop {
				pe.Stop()
			}
		})
		pe.Run()
		stopped := make([]Time, pe.NParts())
		for i := range stopped {
			stopped[i] = pe.Part(i).Now()
		}
		pe.Run() // resume to completion
		var img bytes.Buffer
		if err := pe.Checkpoint(&img); err != nil {
			t.Fatalf("workers=%d: checkpoint: %v", w, err)
		}
		pe.Close()
		return stopped, img.Bytes()
	}
	refStop, refImg := run(1, true)
	_, cleanImg := run(1, false)
	if !bytes.Equal(refImg, cleanImg) {
		t.Error("stop+resume run differs from never-stopped run")
	}
	for _, w := range []int{2, 4} {
		stopped, img := run(w, true)
		for i := range refStop {
			if stopped[i] != refStop[i] {
				t.Errorf("workers=%d: stopped with partition %d at t=%d, want %d", w, i, stopped[i], refStop[i])
			}
		}
		if !bytes.Equal(img, refImg) {
			t.Errorf("workers=%d: stop+resume final image differs from serial reference", w)
		}
	}
}

// TestParallelWorkerClamp checks the worker budget is clamped to [1, nparts].
func TestParallelWorkerClamp(t *testing.T) {
	pe := NewParallelEngine(3, ringLookahead, 1, 64)
	if pe.Workers() != 3 {
		t.Errorf("Workers() = %d, want clamp to 3", pe.Workers())
	}
	pe.Close()
	pe = NewParallelEngine(3, ringLookahead, 1, 0)
	if pe.Workers() != 1 {
		t.Errorf("Workers() = %d, want clamp to 1", pe.Workers())
	}
	pe.Close()
}
