package sim

// Checkpoint/restore: serializing a quiescent engine — clock, RNG, procs,
// pending proc wakeups and registered component state — so long boots run
// once and sweeps warm-start from the saved image (the gem5 workflow).
//
// What can and cannot be serialized follows directly from the engine's
// execution model. Proc goroutine stacks cannot be captured, so a checkpoint
// is only taken at a quiescent point: no proc running, and every pending
// event a plain proc wakeup (engine callbacks — After closures, parallel
// mailbox deliveries — carry Go closures and make the engine non-quiescent;
// Checkpoint reports an error rather than silently dropping them).
//
// Restore rebuilds the engine in two steps. First a caller-supplied build
// function reconstructs the host-side object graph: it registers the same
// checkpoint components under the same names and spawns one proc (by the
// same unique name) for each proc that was alive at checkpoint time. Then
// Restore overwrites the fresh engine's state with the serialized image:
// clock, sequence counters, RNG stream, per-proc park/daemon flags, the
// event heap, and each component's blob.
//
// Procs come back "at the top": a restored proc's goroutine restarts its
// function from the beginning rather than from the yield point where the
// checkpoint caught it. The contract for checkpoint-safe procs is therefore
// the one the repo's blocking primitives already follow — keep durable state
// in checkpointed components rather than in locals across yields, and
// re-check conditions before parking (sim.Queue.Pop's for-loop shape), so
// that "resume from entry" and "return from yield" are indistinguishable. A
// daemon parked in such a loop restores exactly: its waiting flag comes back
// and the next Wake delivers it into the loop as if it had never left.

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"multikernel/internal/ckpt"
)

// Checkpoint stream framing.
const (
	ckptMagic   = "MKCKPT1\n"
	ckptTrailer = "MKCKPTE\n"
)

// Proc flag bits in the serialized image.
const (
	pfDaemon = 1 << iota
	pfWaiting
	pfToken
	pfTimeout
)

// Checkpointer is implemented by simulation components whose state must
// survive checkpoint/restore: cache directories, memory pages, the metrics
// registry. CheckpointState writes the component's complete state;
// RestoreState reads back exactly what CheckpointState wrote.
type Checkpointer interface {
	CheckpointState(w io.Writer) error
	RestoreState(r io.Reader) error
}

type ckptComponent struct {
	name string
	c    Checkpointer
}

// RegisterCheckpoint adds a component to the engine's checkpoint image under
// a unique name. Registration order is the serialization order, so restore
// builders must register the same components under the same names.
func (e *Engine) RegisterCheckpoint(name string, c Checkpointer) {
	for _, rc := range e.ckpts {
		if rc.name == name {
			panic("sim: duplicate checkpoint component " + name)
		}
	}
	e.ckpts = append(e.ckpts, ckptComponent{name: name, c: c})
}

// Checkpoint serializes the engine's complete state to w. It must be called
// from driver context (between Run calls, never from a proc or engine
// callback), and the engine must be quiescent in the checkpointable sense:
// every pending event is a plain proc wakeup. Pending engine callbacks
// (After timers, ParkTimeout deadlines, parallel mailbox deliveries) are Go
// closures, which cannot be serialized; their presence is an error.
func (e *Engine) Checkpoint(w io.Writer) error {
	if e.running != nil {
		return fmt.Errorf("sim: checkpoint requires driver context")
	}

	// Procs, sorted by id. Mid-unwind procs (killed but not yet done) and
	// duplicate names would make the image unrestorable.
	procs := make([]*Proc, 0, len(e.procs))
	names := make(map[string]bool, len(e.procs))
	for p := range e.procs {
		if p.killed {
			return fmt.Errorf("sim: checkpoint with proc %q mid-kill", p.name)
		}
		if names[p.name] {
			return fmt.Errorf("sim: checkpoint requires unique proc names; %q is duplicated", p.name)
		}
		names[p.name] = true
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })

	// Events, sorted by dispatch order. Only proc wakeups are serializable.
	type evImage struct {
		at, pri, seq uint64
		procID       uint64
	}
	evs := make([]evImage, 0, len(e.events))
	for _, ev := range e.events {
		if ev.fn != nil || ev.hfn != nil {
			return fmt.Errorf("sim: checkpoint with pending engine callback at t=%d (not quiescent)", ev.at)
		}
		if ev.p.done {
			continue // stale wakeup for a dead proc; dispatch would drop it
		}
		evs = append(evs, evImage{uint64(ev.at), ev.pri, ev.seq, uint64(ev.p.id)})
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.pri != b.pri {
			return a.pri < b.pri
		}
		return a.seq < b.seq
	})

	if err := ckpt.Magic(w, ckptMagic); err != nil {
		return err
	}
	if err := ckpt.WriteU64(w, uint64(e.now), e.seq, e.serial, e.rng.State(),
		uint64(e.heapMax.Value()), e.wakes, uint64(e.nextID)); err != nil {
		return err
	}
	if err := ckpt.WriteU64(w, uint64(len(procs))); err != nil {
		return err
	}
	for _, p := range procs {
		var flags uint64
		if p.daemon {
			flags |= pfDaemon
		}
		if p.waiting {
			flags |= pfWaiting
		}
		if p.token {
			flags |= pfToken
		}
		if p.timeout {
			flags |= pfTimeout
		}
		if err := ckpt.WriteU64(w, uint64(p.id)); err != nil {
			return err
		}
		if err := ckpt.WriteString(w, p.name); err != nil {
			return err
		}
		if err := ckpt.WriteU64(w, flags, p.parkSeq); err != nil {
			return err
		}
	}
	if err := ckpt.WriteU64(w, uint64(len(evs))); err != nil {
		return err
	}
	for _, ev := range evs {
		if err := ckpt.WriteU64(w, ev.at, ev.pri, ev.seq, ev.procID); err != nil {
			return err
		}
	}
	if err := ckpt.WriteU64(w, uint64(len(e.ckpts))); err != nil {
		return err
	}
	var blob bytes.Buffer
	for _, rc := range e.ckpts {
		blob.Reset()
		if err := rc.c.CheckpointState(&blob); err != nil {
			return fmt.Errorf("sim: checkpoint component %q: %w", rc.name, err)
		}
		if err := ckpt.WriteString(w, rc.name); err != nil {
			return err
		}
		if err := ckpt.WriteBytes(w, blob.Bytes()); err != nil {
			return err
		}
	}
	return ckpt.Magic(w, ckptTrailer)
}

// Restore reads a checkpoint and returns an engine continuing from it. build
// reconstructs the host-side object graph on the fresh engine — registering
// the same checkpoint components and spawning one proc per live checkpointed
// proc, matched by (unique) name; proc ids are restored from the image, so
// spawn order inside build does not matter. Any events build schedules
// (including the spawned procs' start events) are discarded before the
// serialized state is applied: build constructs, the image governs.
func Restore(r io.Reader, build func(e *Engine)) (*Engine, error) {
	if err := ckpt.ExpectMagic(r, ckptMagic); err != nil {
		return nil, err
	}
	var now, seq, serial, rngState, maxHeap, wakes, nextID uint64
	if err := ckpt.ReadU64(r, &now, &seq, &serial, &rngState, &maxHeap, &wakes, &nextID); err != nil {
		return nil, err
	}
	type procImage struct {
		id      uint64
		name    string
		flags   uint64
		parkSeq uint64
	}
	var nprocs uint64
	if err := ckpt.ReadU64(r, &nprocs); err != nil {
		return nil, err
	}
	procs := make([]procImage, nprocs)
	for i := range procs {
		var err error
		if err = ckpt.ReadU64(r, &procs[i].id); err == nil {
			if procs[i].name, err = ckpt.ReadString(r); err == nil {
				err = ckpt.ReadU64(r, &procs[i].flags, &procs[i].parkSeq)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	type evImage struct{ at, pri, seq, procID uint64 }
	var nevs uint64
	if err := ckpt.ReadU64(r, &nevs); err != nil {
		return nil, err
	}
	evs := make([]evImage, nevs)
	for i := range evs {
		if err := ckpt.ReadU64(r, &evs[i].at, &evs[i].pri, &evs[i].seq, &evs[i].procID); err != nil {
			return nil, err
		}
	}
	var ncomp uint64
	if err := ckpt.ReadU64(r, &ncomp); err != nil {
		return nil, err
	}
	type compImage struct {
		name string
		blob []byte
	}
	comps := make([]compImage, ncomp)
	for i := range comps {
		name, err := ckpt.ReadString(r)
		if err != nil {
			return nil, err
		}
		blob, err := ckpt.ReadBytes(r)
		if err != nil {
			return nil, err
		}
		comps[i] = compImage{name, blob}
	}
	if err := ckpt.ExpectMagic(r, ckptTrailer); err != nil {
		return nil, err
	}

	e := NewEngine(0)
	build(e)

	// Discard build-time scheduling artifacts: the spawned procs' start
	// events (their goroutines stay parked on the resume channel) and any
	// callbacks build scheduled by mistake.
	for len(e.events) > 0 {
		e.releaseEvent(e.events.pop())
	}
	e.now = Time(now)
	e.seq = seq
	e.serial = serial
	e.rng.SetState(rngState)
	e.heapMax.Set(int64(maxHeap))
	e.wakes = wakes
	e.nextID = int(nextID)

	// Match live procs by name and restore identity and blocking state.
	byName := make(map[string]*Proc, len(e.procs))
	for p := range e.procs {
		if byName[p.name] != nil {
			return nil, fmt.Errorf("sim: restore builder spawned duplicate proc name %q", p.name)
		}
		byName[p.name] = p
	}
	if len(byName) != len(procs) {
		return nil, fmt.Errorf("sim: restore builder spawned %d procs; checkpoint has %d", len(byName), len(procs))
	}
	byID := make(map[uint64]*Proc, len(procs))
	for _, img := range procs {
		p := byName[img.name]
		if p == nil {
			return nil, fmt.Errorf("sim: checkpointed proc %q not spawned by restore builder", img.name)
		}
		p.id = int(img.id)
		p.daemon = img.flags&pfDaemon != 0
		p.waiting = img.flags&pfWaiting != 0
		p.token = img.flags&pfToken != 0
		p.timeout = img.flags&pfTimeout != 0
		p.parkSeq = img.parkSeq
		byID[img.id] = p
	}

	for _, img := range evs {
		p := byID[img.procID]
		if p == nil {
			return nil, fmt.Errorf("sim: checkpointed event for unknown proc id %d", img.procID)
		}
		ev := e.newEvent()
		ev.at, ev.pri, ev.seq, ev.p = Time(img.at), img.pri, img.seq, p
		e.events.push(ev)
	}

	regd := make(map[string]Checkpointer, len(e.ckpts))
	for _, rc := range e.ckpts {
		regd[rc.name] = rc.c
	}
	if len(regd) != len(comps) {
		return nil, fmt.Errorf("sim: restore builder registered %d checkpoint components; checkpoint has %d", len(regd), len(comps))
	}
	for _, img := range comps {
		c := regd[img.name]
		if c == nil {
			return nil, fmt.Errorf("sim: checkpointed component %q not registered by restore builder", img.name)
		}
		if err := c.RestoreState(bytes.NewReader(img.blob)); err != nil {
			return nil, fmt.Errorf("sim: restore component %q: %w", img.name, err)
		}
	}
	return e, nil
}
