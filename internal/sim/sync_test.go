package sim

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestResourceSerializesUse(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var ends []Time
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 100)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{100, 200, 300, 400}
	if !reflect.DeepEqual(ends, want) {
		t.Fatalf("ends=%v, want %v", ends, want)
	}
}

func TestResourceFIFOFairness(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn("u", func(p *Proc) {
			p.Sleep(Time(i)) // arrive in index order
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(50)
			r.Release()
		})
	}
	e.Run()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("acquisition order not FIFO: %v", order)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 100)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{100, 100, 200, 200}
	if !reflect.DeepEqual(ends, want) {
		t.Fatalf("ends=%v, want %v", ends, want)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on full resource")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := NewResource(NewEngine(1), 1)
	r.Release()
}

func TestQueueDeliversInOrder(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			q.Push(i)
		}
	})
	e.Run()
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
	e.CheckQuiesced()
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[string](e)
	var at Time
	e.Spawn("c", func(p *Proc) {
		q.Pop(p)
		at = p.Now()
	})
	e.After(777, func() { q.Push("x") })
	e.Run()
	if at != 777 {
		t.Fatalf("pop returned at %d, want 777", at)
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	q.Push(9)
	v, ok := q.TryPop()
	if !ok || v != 9 {
		t.Fatalf("TryPop = %d,%v", v, ok)
	}
}

func TestFutureAwait(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[int](e)
	var got int
	var at Time
	e.Spawn("w", func(p *Proc) {
		got = f.Await(p)
		at = p.Now()
	})
	e.After(250, func() { f.Complete(42) })
	e.Run()
	if got != 42 || at != 250 {
		t.Fatalf("got=%d at=%d", got, at)
	}
	if !f.Done() {
		t.Fatal("future not done")
	}
}

func TestFutureAwaitAfterComplete(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[int](e)
	f.Complete(7)
	var got int
	e.Spawn("w", func(p *Proc) { got = f.Await(p) })
	e.Run()
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewFuture[int](NewEngine(1))
	f.Complete(1)
	f.Complete(2)
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	var doneAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(Time(i * 100))
			wg.Done()
		})
	}
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 300 {
		t.Fatalf("wait released at %d, want 300", doneAt)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(1000, 0.05)
		if v < 950 || v > 1050 {
			t.Fatalf("jitter %d outside ±5%% of 1000", v)
		}
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Fatal("jitter of zero base changed value")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: a single-capacity resource with per-holder service time d serves
// n procs in exactly n*d cycles regardless of arrival pattern density.
func TestResourceThroughputProperty(t *testing.T) {
	f := func(n uint8, d uint8) bool {
		if n == 0 || d == 0 {
			return true
		}
		nn, dd := int(n%32+1), Time(d%100+1)
		e := NewEngine(1)
		r := NewResource(e, 1)
		for i := 0; i < nn; i++ {
			e.Spawn("u", func(p *Proc) { r.Use(p, dd) })
		}
		e.Run()
		return e.Now() == Time(nn)*dd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
