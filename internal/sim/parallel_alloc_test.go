//go:build !race

package sim

import (
	"fmt"
	"testing"
)

// TestEpochBarrierAllocs pins the zero-allocation contract of the
// steady-state epoch path: pooled events carry cross-partition payloads (no
// closure per message) and outbox slices keep their capacity across epochs,
// so once the heaps and outboxes are warm, running epochs of pure
// cross-partition traffic performs no heap allocation. Gated out under -race
// because the race runtime instruments allocations.
func TestEpochBarrierAllocs(t *testing.T) {
	const nparts = 4
	L := Time(500)
	for _, workers := range []int{1, nparts} {
		pe := NewParallelEngine(nparts, L, 3, workers)
		for i := 0; i < nparts; i++ {
			i := i
			// Perpetual ring: forward immediately from the handler — the
			// pooled-event path with no closures anywhere.
			pe.RegisterHandler(i, func(v, hop uint64) {
				pe.Post(i, (i+1)%nparts, L, 0, v, hop)
			})
		}
		for i := 0; i < nparts; i++ {
			for k := 0; k < 8; k++ {
				pe.Post(i, (i+1)%nparts, L, 0, uint64(i*8+k), 0)
			}
		}
		// Warm up: grow heaps, outbox capacity, the event free lists and the
		// worker pool's steady state.
		end := 50 * L
		pe.RunUntil(end)
		avg := testing.AllocsPerRun(20, func() {
			end += 10 * L
			pe.RunUntil(end)
		})
		pe.Stop()
		pe.Close()
		if avg > 0 {
			t.Errorf("workers=%d: steady-state epoch path allocates %.1f objects per 10 epochs, want 0", workers, avg)
		}
	}
}

// BenchmarkParallelEnginePinned is the fixed-cycle engine benchmark consumed
// by ci/traceguard: a deterministic cross-partition storm over a pinned
// virtual-time window, reported as simulated events per wall-second. The
// sub-benchmarks pin the worker count so serial and parallel engine
// executions are tracked side by side.
func BenchmarkParallelEnginePinned(b *testing.B) {
	const nparts = 4
	L := Time(500)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				pe := NewParallelEngine(nparts, L, 3, workers)
				for p := 0; p < nparts; p++ {
					p := p
					pe.RegisterHandler(p, func(v, hop uint64) {
						pe.Post(p, (p+1)%nparts, L+Time(v%63), 0, v+1, hop)
					})
					e := pe.Part(p)
					pe.Spawn(p, fmt.Sprintf("local%d", p), func(pr *Proc) {
						for pr.Now() < 2000*L {
							pr.Sleep(1 + e.RNG().Time(100))
						}
					})
				}
				for p := 0; p < nparts; p++ {
					pe.Post(p, (p+1)%nparts, L, 0, uint64(p), 0)
				}
				pe.RunUntil(2000 * L)
				events = pe.MetricsSnapshot().Counters["sim.events_dispatched"]
				pe.Stop()
				pe.Close()
			}
			b.ReportMetric(float64(events), "simevents/op")
		})
	}
}
