package sim

// RNG is a small, fast, deterministic random number generator (splitmix64).
// Every stochastic choice in the simulator draws from an engine-owned RNG so
// that runs replay identically for a given seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// State returns the generator's internal state, for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously returned by State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform on [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Time returns a duration uniform on [0, n).
func (r *RNG) Time(n Time) Time {
	if n == 0 {
		return 0
	}
	return Time(r.Uint64() % uint64(n))
}

// Float64 returns a value uniform on [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns base perturbed by at most ±frac (e.g. 0.05 for ±5%),
// modelling small per-run variation in compute times.
func (r *RNG) Jitter(base Time, frac float64) Time {
	if base == 0 || frac <= 0 {
		return base
	}
	span := float64(base) * frac
	delta := (r.Float64()*2 - 1) * span
	v := float64(base) + delta
	if v < 1 {
		v = 1
	}
	return Time(v)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
