package sim

// Resource is a FIFO-fair counting semaphore in virtual time. It models a
// serially-occupied facility: a cache line mid-transfer, a memory controller,
// a single-threaded server. Acquire while full queues the caller; Release
// hands the slot directly to the oldest waiter, preserving arrival order.
type Resource struct {
	e       *Engine
	cap     int
	inUse   int
	waiters []*resWaiter
}

// resWaiter is one queued Acquire. The granted flag records that Release
// transferred slot ownership to this waiter, which is what its unwind path
// needs to distinguish "still queued / skipped as a corpse" (nothing owned)
// from "granted, then fail-stopped before resuming" (must pass the slot on).
type resWaiter struct {
	p       *Proc
	granted bool
}

// NewResource returns a resource with the given capacity (number of
// concurrent holders). Capacity must be at least 1.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{e: e, cap: capacity}
}

// Acquire obtains a slot, blocking p in FIFO order if none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	w := &resWaiter{p: p}
	r.waiters = append(r.waiters, w)
	// Fail-stop audit: if p is killed while queued, its Park unwinds through
	// this frame. A corpse must not stay in the FIFO (Release would hand the
	// slot to it, leaking it forever), and a corpse that was already granted
	// the slot — popped by Release just before the kill landed — must pass it
	// on, or every later requester parks forever behind a dead holder.
	defer func() {
		if !p.killed && !p.done {
			return
		}
		for i, q := range r.waiters {
			if q == w {
				r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
				return
			}
		}
		if w.granted {
			r.Release()
		}
	}()
	p.Park()
}

// TryAcquire obtains a slot without blocking. It reports whether it
// succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release frees a slot, transferring it to the oldest waiter if any.
// It may be called from any proc or engine callback.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of unheld resource")
	}
	// Skip waiters that were fail-stopped while queued: waking a corpse is a
	// no-op, so handing it the slot would leak the slot forever.
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		if w.p.done || w.p.killed {
			continue
		}
		w.granted = true
		r.e.Wake(w.p) // slot ownership transfers; inUse unchanged
		return
	}
	r.inUse--
}

// InUse returns the number of currently-held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of procs waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Use acquires the resource, holds it for d cycles, then releases it. This is
// the common pattern for occupying a facility for a fixed service time.
// If p is fail-stopped during the hold, the slot is still released on the
// unwind path — the facility finishes the in-flight service time regardless.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	defer r.Release()
	p.Sleep(d)
}

// Queue is an unbounded FIFO of items with blocking receive, usable as a
// mailbox between procs. Push never blocks; Pop parks until an item arrives.
type Queue[T any] struct {
	e       *Engine
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{e: e} }

// Push appends v and wakes the oldest waiting consumer, if any. It may be
// called from any proc or engine callback.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	// Skip consumers fail-stopped while parked; waking a corpse would strand
	// the item until the next Push even with live waiters queued behind it.
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		if w.done || w.killed {
			continue
		}
		q.e.Wake(w)
		return
	}
}

// Pop removes and returns the oldest item, parking p until one is available.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.Park()
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Future is a one-shot value that procs can await: the virtual-time analogue
// of a completion for a split-phase operation.
type Future[T any] struct {
	e       *Engine
	done    bool
	v       T
	waiters []*Proc
}

// NewFuture returns an incomplete future bound to e.
func NewFuture[T any](e *Engine) *Future[T] { return &Future[T]{e: e} }

// Complete resolves the future and wakes all waiters. Completing twice
// panics: split-phase operations finish exactly once.
func (f *Future[T]) Complete(v T) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.v = v
	for _, w := range f.waiters {
		f.e.Wake(w)
	}
	f.waiters = nil
}

// Done reports whether the future has been completed.
func (f *Future[T]) Done() bool { return f.done }

// Await parks p until the future completes, then returns its value.
func (f *Future[T]) Await(p *Proc) T {
	for !f.done {
		f.waiters = append(f.waiters, p)
		p.Park()
	}
	return f.v
}

// WaitGroup counts outstanding activities in virtual time.
type WaitGroup struct {
	e       *Engine
	n       int
	waiters []*Proc
}

// NewWaitGroup returns a wait group bound to e.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{e: e} }

// Add increments the outstanding count by delta (which may be negative).
// When the count reaches zero all waiters are woken.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative waitgroup count")
	}
	if w.n == 0 {
		for _, p := range w.waiters {
			w.e.Wake(p)
		}
		w.waiters = nil
	}
}

// Done decrements the outstanding count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks p until the count is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.waiters = append(w.waiters, p)
		p.Park()
	}
}
