package sim

import (
	"errors"

	"multikernel/internal/trace"
)

// errKilled is panicked inside a proc goroutine when the engine shuts it
// down; the spawn wrapper recovers it.
var errKilled = errors.New("sim: proc killed")

// Proc is a simulated sequential activity (a core, a device, an OS service,
// an application thread). All Proc methods must be called from the proc's own
// goroutine unless documented otherwise.
type Proc struct {
	e    *Engine
	id   int
	name string

	resume  chan struct{}
	done    bool
	killed  bool
	daemon  bool
	waiting bool // parked, waiting for Unpark
	token   bool // a wakeup arrived before Park
	timeout bool // last ParkTimeout expired
	parkSeq uint64
}

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Name returns the proc's name.
func (p *Proc) Name() string { return p.name }

// SetDaemon marks the proc as a daemon: it is expected to park forever (for
// example, a server waiting for requests) and is excluded from deadlock
// reports. Safe to call from any context before or during the run.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// yieldToEngine hands the control baton on — dispatching the next event and
// resuming the next proc directly from this goroutine — and blocks until
// resumed. This is the single-handoff path: one channel send transfers
// control to the next runnable proc, with no central scheduler goroutine in
// between.
func (p *Proc) yieldToEngine() {
	p.e.exitDispatch()
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// Sleep advances the proc's local time by d cycles. Other events proceed in
// the meantime. Sleep(0) yields: the proc is rescheduled after all events
// already queued for the current cycle.
func (p *Proc) Sleep(d Time) {
	p.e.schedule(d, p, nil)
	p.yieldToEngine()
}

// Park blocks the proc until another activity calls Unpark. If an Unpark
// arrived since the last Park (a "token"), Park consumes it and returns
// immediately, so the Unpark/Park pair cannot race in virtual time.
func (p *Proc) Park() {
	if p.token {
		p.token = false
		return
	}
	p.parkSeq++
	p.waiting = true
	p.yieldToEngine()
}

// ParkTimeout is Park with a timeout of d cycles. It reports whether the wait
// timed out rather than being ended by Unpark. Pass Forever for no timeout.
func (p *Proc) ParkTimeout(d Time) (timedOut bool) {
	if p.token {
		p.token = false
		return false
	}
	p.parkSeq++
	seq := p.parkSeq
	p.waiting = true
	p.timeout = false
	if d < Forever {
		p.e.After(d, func() {
			if p.waiting && p.parkSeq == seq {
				p.timeout = true
				p.waiting = false
				p.e.schedule(0, p, nil)
			}
		})
	}
	p.yieldToEngine()
	return p.timeout
}

// Unpark wakes target if it is parked, or leaves a token making its next Park
// return immediately. It may be called from any proc or engine callback, and
// is idempotent while the target remains parked-and-signalled.
func (p *Proc) Unpark(target *Proc) { p.e.Wake(target) }

// Wake is Unpark callable from engine callbacks (timers, device models).
func (e *Engine) Wake(target *Proc) {
	if target.done || target.killed {
		return
	}
	if target.waiting {
		target.waiting = false
		e.wakes++
		e.rec.Emit(uint64(e.now), trace.Instant, trace.SubSim, -1, "sim.wake", 0, uint64(target.id))
		e.schedule(0, target, nil)
		return
	}
	target.token = true
}
