package topo

import (
	"testing"
	"testing/quick"
)

func TestPredefinedMachineShapes(t *testing.T) {
	cases := []struct {
		m       *Machine
		cores   int
		sockets int
		maxHops int
	}{
		{Intel2x4(), 8, 2, 1},
		{AMD2x2(), 4, 2, 1},
		{AMD4x4(), 16, 4, 2},
		{AMD8x4(), 32, 8, 4},
	}
	for _, c := range cases {
		if got := c.m.NumCores(); got != c.cores {
			t.Errorf("%s: cores=%d, want %d", c.m.Name, got, c.cores)
		}
		if c.m.NSockets != c.sockets {
			t.Errorf("%s: sockets=%d, want %d", c.m.Name, c.m.NSockets, c.sockets)
		}
		if got := c.m.MaxHops(); got != c.maxHops {
			t.Errorf("%s: maxHops=%d, want %d", c.m.Name, got, c.maxHops)
		}
	}
}

func TestSocketAssignment(t *testing.T) {
	m := AMD4x4()
	if m.Socket(0) != 0 || m.Socket(3) != 0 || m.Socket(4) != 1 || m.Socket(15) != 3 {
		t.Fatal("socket assignment wrong")
	}
	if !m.SameSocket(4, 7) || m.SameSocket(3, 4) {
		t.Fatal("SameSocket wrong")
	}
}

func TestIntelDieSharing(t *testing.T) {
	m := Intel2x4()
	// 2 cores per die: cores 0,1 share a die; 1,2 do not.
	if !m.SameDie(0, 1) {
		t.Fatal("cores 0,1 should share a die")
	}
	if m.SameDie(1, 2) {
		t.Fatal("cores 1,2 should not share a die")
	}
	if !m.SameSocket(0, 3) {
		t.Fatal("cores 0,3 share socket 0")
	}
}

func TestHopsSymmetric(t *testing.T) {
	for _, m := range AllMachines() {
		for a := 0; a < m.NSockets; a++ {
			for b := 0; b < m.NSockets; b++ {
				if m.Hops(SocketID(a), SocketID(b)) != m.Hops(SocketID(b), SocketID(a)) {
					t.Fatalf("%s: hops(%d,%d) asymmetric", m.Name, a, b)
				}
			}
			if m.Hops(SocketID(a), SocketID(a)) != 0 {
				t.Fatalf("%s: self-hops nonzero", m.Name)
			}
		}
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	for _, m := range AllMachines() {
		for a := 0; a < m.NSockets; a++ {
			for b := 0; b < m.NSockets; b++ {
				r := m.Route(SocketID(a), SocketID(b))
				if len(r) != m.Hops(SocketID(a), SocketID(b)) {
					t.Fatalf("%s: route %d->%d len %d, hops %d", m.Name, a, b, len(r), m.Hops(SocketID(a), SocketID(b)))
				}
				if len(r) > 0 && r[len(r)-1] != SocketID(b) {
					t.Fatalf("%s: route %d->%d ends at %d", m.Name, a, b, r[len(r)-1])
				}
			}
		}
	}
}

func TestRouteFollowsLinks(t *testing.T) {
	for _, m := range AllMachines() {
		linked := map[[2]SocketID]bool{}
		for _, l := range m.Links {
			linked[[2]SocketID{l.A, l.B}] = true
			linked[[2]SocketID{l.B, l.A}] = true
		}
		for a := 0; a < m.NSockets; a++ {
			for b := 0; b < m.NSockets; b++ {
				cur := SocketID(a)
				for _, n := range m.Route(SocketID(a), SocketID(b)) {
					if !linked[[2]SocketID{cur, n}] {
						t.Fatalf("%s: route %d->%d uses non-link %d-%d", m.Name, a, b, cur, n)
					}
					cur = n
				}
			}
		}
	}
}

func TestAMD8x4MatchesFigure2(t *testing.T) {
	m := AMD8x4()
	// Socket 7 and socket 0 are at opposite grid corners.
	if got := m.Hops(7, 0); got != 4 {
		t.Fatalf("hops(7,0)=%d, want 4", got)
	}
	if got := m.Hops(0, 1); got != 1 {
		t.Fatalf("hops(0,1)=%d, want 1", got)
	}
	if got := m.Hops(5, 2); got != 1 {
		t.Fatalf("hops(5,2)=%d, want 1", got)
	}
}

func TestTransferLatOrdering(t *testing.T) {
	// For every machine: self <= same-die <= same-socket <= remote, and
	// remote latency is nondecreasing in hop count.
	for _, m := range AllMachines() {
		local := m.TransferLat(0, 0)
		sameSocket := m.TransferLat(0, 1)
		if local > sameSocket {
			t.Errorf("%s: local %d > same-socket %d", m.Name, local, sameSocket)
		}
		remote := m.TransferLat(0, CoreID(m.CoresPerSocket))
		if sameSocket > remote {
			t.Errorf("%s: same-socket %d > remote %d", m.Name, sameSocket, remote)
		}
	}
	m := AMD8x4()
	oneHop := m.TransferLat(0, m.CoresOf(1)[0]) // sockets 0-1 adjacent
	twoHop := m.TransferLat(0, m.CoresOf(2)[0]) // 0-4-2
	if h := m.Hops(0, 2); h != 2 {
		t.Fatalf("precondition: hops(0,2)=%d, want 2", h)
	}
	if oneHop >= twoHop {
		t.Errorf("one-hop %d not < two-hop %d", oneHop, twoHop)
	}
}

func TestIntelIntraDieCheapest(t *testing.T) {
	m := Intel2x4()
	die := m.TransferLat(0, 1)    // same die
	socket := m.TransferLat(0, 2) // same socket, other die
	remote := m.TransferLat(0, 4) // other socket
	if !(die < socket && socket <= remote) {
		t.Fatalf("want die < socket <= remote, got %d %d %d", die, socket, remote)
	}
}

func TestMemLat(t *testing.T) {
	m := AMD8x4()
	local := m.MemLat(0, m.Socket(0))
	remote := m.MemLat(0, 7)
	if local >= remote {
		t.Fatalf("local DRAM %d should be < remote %d", local, remote)
	}
	i := Intel2x4()
	if i.MemLat(0, 0) != i.MemLat(0, 1) {
		t.Fatal("single-memory-controller machine should have uniform DRAM latency")
	}
}

func TestCyclesNanosecondsRoundTrip(t *testing.T) {
	m := AMD2x2() // 2.8 GHz
	ns := m.Nanoseconds(2800)
	if ns < 999.999 || ns > 1000.001 {
		t.Fatalf("2800 cycles = %vns, want 1000", ns)
	}
	if got := m.Cycles(100); got != 280 {
		t.Fatalf("100ns = %d cycles, want 280", got)
	}
}

func TestMeshConstruction(t *testing.T) {
	m := MeshXY(4, 4, 2)
	if m.NumCores() != 32 {
		t.Fatalf("cores=%d, want 32", m.NumCores())
	}
	if got := m.MaxHops(); got != 6 {
		t.Fatalf("4x4 mesh diameter=%d, want 6", got)
	}
	// Corner-to-corner route must have length 6.
	if r := m.Route(0, 15); len(r) != 6 {
		t.Fatalf("corner route len=%d, want 6", len(r))
	}
}

func TestMeshHopsAreManhattanProperty(t *testing.T) {
	m := MeshXY(5, 3, 1)
	f := func(a, b uint8) bool {
		sa, sb := SocketID(int(a)%15), SocketID(int(b)%15)
		ax, ay := int(sa)%5, int(sa)/5
		bx, by := int(sb)%5, int(sb)/5
		manhattan := abs(ax-bx) + abs(ay-by)
		return m.Hops(sa, sb) == manhattan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestScaledMachineShapes(t *testing.T) {
	cases := []struct {
		m       *Machine
		cores   int
		maxHops int
	}{
		{Mesh(4), 64, 6}, // 4x4 mesh: diameter 3+3
		{Mesh(16), 1024, 30},
		{Torus(4), 64, 4}, // wrap halves each dimension: 2+2
		{Torus(8), 256, 8},
		{Hier(4, 4, 4), 64, 4}, // to gateway, ≤2 ring hops, from gateway
	}
	for _, c := range cases {
		if got := c.m.NumCores(); got != c.cores {
			t.Errorf("%s: cores=%d, want %d", c.m.Name, got, c.cores)
		}
		if got := c.m.MaxHops(); got != c.maxHops {
			t.Errorf("%s: maxHops=%d, want %d", c.m.Name, got, c.maxHops)
		}
	}
}

// Every scaled machine's routes must follow real links and match the hop
// count — the XY tables are built analytically, so cross-check them against
// the link list the fabric charges.
func TestScaledRoutesFollowLinks(t *testing.T) {
	for _, m := range []*Machine{Mesh(3), Mesh(5), Torus(3), Torus(5), Hier(3, 3, 2)} {
		linked := map[[2]SocketID]bool{}
		for _, l := range m.Links {
			linked[[2]SocketID{l.A, l.B}] = true
			linked[[2]SocketID{l.B, l.A}] = true
		}
		for a := 0; a < m.NSockets; a++ {
			for b := 0; b < m.NSockets; b++ {
				r := m.Route(SocketID(a), SocketID(b))
				if len(r) != m.Hops(SocketID(a), SocketID(b)) {
					t.Fatalf("%s: route %d->%d len %d, hops %d", m.Name, a, b, len(r), m.Hops(SocketID(a), SocketID(b)))
				}
				cur := SocketID(a)
				for _, n := range r {
					if !linked[[2]SocketID{cur, n}] {
						t.Fatalf("%s: route %d->%d uses non-link %d-%d", m.Name, a, b, cur, n)
					}
					cur = n
				}
				if cur != SocketID(b) {
					t.Fatalf("%s: route %d->%d ends at %d", m.Name, a, b, cur)
				}
			}
		}
	}
}

func TestMeshXYRoutingIsManhattan(t *testing.T) {
	m := Mesh(5)
	f := func(a, b uint8) bool {
		sa, sb := SocketID(int(a)%25), SocketID(int(b)%25)
		ax, ay := int(sa)%5, int(sa)/5
		bx, by := int(sb)%5, int(sb)/5
		return m.Hops(sa, sb) == abs(ax-bx)+abs(ay-by)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Dimension order: X is resolved before Y. From (0,0) to (2,2) the first
	// hop is (1,0) = socket 1, not (0,1) = socket 5.
	if r := m.Route(0, 12); r[0] != 1 {
		t.Fatalf("XY routing: first hop %d, want 1", r[0])
	}
}

func TestTorusWrapDistances(t *testing.T) {
	m := Torus(5)
	// Sockets 0 (0,0) and 4 (4,0): one wrap hop, not four mesh hops.
	if got := m.Hops(0, 4); got != 1 {
		t.Fatalf("hops(0,4)=%d, want 1 (wrap)", got)
	}
	// (0,0) to (3,3): wrap both dimensions, 2+2.
	if got := m.Hops(0, 18); got != 4 {
		t.Fatalf("hops(0,18)=%d, want 4", got)
	}
	// Symmetry survives the tie-break (distance 2 either way at k=4).
	e := Torus(4)
	for a := 0; a < e.NSockets; a++ {
		for b := 0; b < e.NSockets; b++ {
			if e.Hops(SocketID(a), SocketID(b)) != e.Hops(SocketID(b), SocketID(a)) {
				t.Fatalf("torus-4 hops(%d,%d) asymmetric", a, b)
			}
		}
	}
}

func TestHierUplinkCosts(t *testing.T) {
	m := Hier(4, 4, 4)
	// Intra-cluster: full mesh, no extra.
	if got := m.PathExtra(0, 1); got != 0 {
		t.Fatalf("intra-cluster PathExtra=%d, want 0", got)
	}
	// Cross-cluster: at least one uplink crossing.
	if got := m.PathExtra(0, 4); got == 0 {
		t.Fatal("cross-cluster PathExtra=0, want uplink surcharge")
	}
	// The surcharge shows up in coherence and memory latencies.
	sameCluster := m.TransferLat(0, m.CoresOf(1)[0])
	crossCluster := m.TransferLat(0, m.CoresOf(4)[0])
	if crossCluster <= sameCluster {
		t.Fatalf("cross-cluster transfer %d not > intra-cluster %d", crossCluster, sameCluster)
	}
	// Uplinks are half bandwidth; intra-cluster links full.
	if g := m.LinkBandwidth(0, 1); g != DefaultLinkGBps {
		t.Fatalf("intra-cluster bandwidth %v, want %v", g, DefaultLinkGBps)
	}
	if g := m.LinkBandwidth(0, 4); g != DefaultLinkGBps/2 {
		t.Fatalf("uplink bandwidth %v, want %v", g, DefaultLinkGBps/2)
	}
	// Paper machines: no maps, defaults everywhere.
	p := AMD8x4()
	if p.PathExtra(0, 7) != 0 || p.LinkBandwidth(0, 1) != DefaultLinkGBps {
		t.Fatal("paper machine should have zero PathExtra and default bandwidth")
	}
}

func TestCoresOf(t *testing.T) {
	m := AMD4x4()
	cores := m.CoresOf(2)
	if len(cores) != 4 || cores[0] != 8 || cores[3] != 11 {
		t.Fatalf("CoresOf(2)=%v", cores)
	}
}

func TestByName(t *testing.T) {
	if ByName("4x4-core AMD") == nil {
		t.Fatal("ByName failed for known machine")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName returned machine for unknown name")
	}
}

func TestBadMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unreachable socket")
		}
	}()
	m := &Machine{Name: "broken", ClockGHz: 1, NSockets: 3, DiesPerSocket: 1, CoresPerSocket: 1,
		Links: []Link{{0, 1}}} // socket 2 unreachable
	m.finish()
}
