package topo

import "fmt"

// The cost parameters below are calibrated so that the microbenchmark tables
// of the paper (Tables 1–3) come out in the right range on each machine; the
// derivations are recorded in EXPERIMENTS.md. Coherence-transaction constants
// fold in the broadcast-probe cost to all sockets, which is why the per-hop
// increment is small compared to the base (on HyperTransport every
// transaction probes every node, so distance to the data source adds little).

// Intel2x4 models the 2×4-core Intel s5000XVN system: two quad-core Xeon
// X5355 packages, each with two dies of two cores sharing a 4MB L2, a shared
// front-side bus and a single external memory controller with snoop filter.
func Intel2x4() *Machine {
	m := &Machine{
		Name:           "2x4-core Intel",
		ClockGHz:       2.66,
		NSockets:       2,
		DiesPerSocket:  2,
		CoresPerSocket: 4,
		SharedDieCache: true,
		SingleMemCtrl:  true,
		IOSocket:       0,
		Links:          []Link{{0, 1}},
		Costs: CostParams{
			L1Hit: 3, Store: 3, StoreIssue: 25,
			IntraDie:    60,  // through the shared on-die L2
			IntraSocket: 290, // different dies: across the FSB
			RemoteBase:  420, RemoteHop: 10,
			DRAMLocal: 260, DRAMRemoteHop: 0, HomeRoute: 0,
			Trap: 700, Syscall: 140, CSwitch: 280, Upcall: 170,
			Dispatch: 180, IPIDeliver: 350, TLBInval: 120, TLBFill: 190,
		},
	}
	return m.finish()
}

// AMD2x2 models the 2×2-core AMD system: two dual-core Opteron 2220 packages
// with private 1MB L2s, local memory controllers and two HyperTransport
// links.
func AMD2x2() *Machine {
	m := &Machine{
		Name:           "2x2-core AMD",
		ClockGHz:       2.8,
		NSockets:       2,
		DiesPerSocket:  1,
		CoresPerSocket: 2,
		IOSocket:       0,
		Links:          []Link{{0, 1}},
		Costs: CostParams{
			L1Hit: 3, Store: 3, StoreIssue: 25,
			IntraDie:    300, // no shared cache: local snoop between the two cores
			IntraSocket: 300,
			RemoteBase:  355, RemoteHop: 8,
			DRAMLocal: 220, DRAMRemoteHop: 60, HomeRoute: 12,
			Trap: 640, Syscall: 120, CSwitch: 250, Upcall: 150,
			Dispatch: 160, IPIDeliver: 320, TLBInval: 100, TLBFill: 170,
		},
	}
	return m.finish()
}

// AMD4x4 models the 4×4-core AMD system: four quad-core Opteron 8380 packages
// with private 512kB L2s and a 6MB shared L3 per socket, connected in a
// square by four HyperTransport links.
func AMD4x4() *Machine {
	m := &Machine{
		Name:           "4x4-core AMD",
		ClockGHz:       2.5,
		NSockets:       4,
		DiesPerSocket:  1,
		CoresPerSocket: 4,
		SharedL3:       true,
		IOSocket:       0,
		Links:          []Link{{0, 1}, {1, 3}, {3, 2}, {2, 0}},
		Costs: CostParams{
			L1Hit: 3, Store: 3, StoreIssue: 25,
			IntraDie:    300, // via the shared L3
			IntraSocket: 300,
			RemoteBase:  390, RemoteHop: 7,
			DRAMLocal: 250, DRAMRemoteHop: 55, HomeRoute: 12,
			Trap: 790, Syscall: 220, CSwitch: 470, Upcall: 330,
			Dispatch: 368, IPIDeliver: 400, TLBInval: 200, TLBFill: 260,
		},
	}
	return m.finish()
}

// AMD8x4 models the 8×4-core AMD system: eight quad-core Opteron 8350
// packages with 2MB shared L3s, wired in the paper's Figure 2 grid — two rows
// of four sockets with row and column HyperTransport links.
func AMD8x4() *Machine {
	m := &Machine{
		Name:           "8x4-core AMD",
		ClockGHz:       2.0,
		NSockets:       8,
		DiesPerSocket:  1,
		CoresPerSocket: 4,
		SharedL3:       true,
		IOSocket:       0,
		// Figure 2 layout: top row 7-5-3-1, bottom row 6-2-4-0, with
		// vertical links 7-6, 5-2, 3-4, 1-0.
		Links: []Link{
			{7, 5}, {5, 3}, {3, 1},
			{6, 2}, {2, 4}, {4, 0},
			{7, 6}, {5, 2}, {3, 4}, {1, 0},
		},
		Costs: CostParams{
			L1Hit: 3, Store: 3, StoreIssue: 25,
			IntraDie:    390, // via the shared L3
			IntraSocket: 390,
			RemoteBase:  460, RemoteHop: 4,
			DRAMLocal: 280, DRAMRemoteHop: 50, HomeRoute: 22,
			Trap: 800, Syscall: 230, CSwitch: 490, Upcall: 350,
			Dispatch: 404, IPIDeliver: 420, TLBInval: 210, TLBFill: 270,
		},
	}
	return m.finish()
}

// Mesh builds a synthetic nx×ny socket grid with the given cores per socket,
// using the 8×4 AMD cost parameters. It models the network-on-chip style
// machines the paper anticipates (§2.3) and supports scalability sweeps past
// commodity core counts.
func Mesh(nx, ny, coresPerSocket int) *Machine {
	if nx < 1 || ny < 1 {
		panic("topo: mesh dimensions must be positive")
	}
	n := nx * ny
	var links []Link
	id := func(x, y int) SocketID { return SocketID(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				links = append(links, Link{id(x, y), id(x+1, y)})
			}
			if y+1 < ny {
				links = append(links, Link{id(x, y), id(x, y+1)})
			}
		}
	}
	base := AMD8x4().Costs
	m := &Machine{
		Name:           fmt.Sprintf("mesh-%dx%d-%dc", nx, ny, coresPerSocket),
		ClockGHz:       2.0,
		NSockets:       n,
		DiesPerSocket:  1,
		CoresPerSocket: coresPerSocket,
		SharedL3:       true,
		IOSocket:       0,
		Links:          links,
		Costs:          base,
	}
	return m.finish()
}

// AllMachines returns the paper's four test platforms in the order used by
// its tables.
func AllMachines() []*Machine {
	return []*Machine{Intel2x4(), AMD2x2(), AMD4x4(), AMD8x4()}
}

// ByName returns the predefined machine with the given Name, or nil.
func ByName(name string) *Machine {
	for _, m := range AllMachines() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
