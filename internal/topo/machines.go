package topo

import (
	"fmt"

	"multikernel/internal/sim"
)

// The cost parameters below are calibrated so that the microbenchmark tables
// of the paper (Tables 1–3) come out in the right range on each machine; the
// derivations are recorded in EXPERIMENTS.md. On the four paper machines the
// coherence-transaction constants fold the broadcast-probe cost into
// RemoteBase (on HyperTransport every transaction probes every node, so
// distance to the data source adds little and SnoopPerSocket stays zero);
// the scaled Mesh/Torus/Hier machines instead separate the mode-dependent
// costs into SnoopPerSocket (broadcast) and DirLookup (directory) so the two
// coherence modes genuinely diverge as socket counts grow.

// Intel2x4 models the 2×4-core Intel s5000XVN system: two quad-core Xeon
// X5355 packages, each with two dies of two cores sharing a 4MB L2, a shared
// front-side bus and a single external memory controller with snoop filter.
func Intel2x4() *Machine {
	m := &Machine{
		Name:           "2x4-core Intel",
		ClockGHz:       2.66,
		NSockets:       2,
		DiesPerSocket:  2,
		CoresPerSocket: 4,
		SharedDieCache: true,
		SingleMemCtrl:  true,
		IOSocket:       0,
		Links:          []Link{{0, 1}},
		Costs: CostParams{
			L1Hit: 3, Store: 3, StoreIssue: 25,
			IntraDie:    60,  // through the shared on-die L2
			IntraSocket: 290, // different dies: across the FSB
			RemoteBase:  420, RemoteHop: 10,
			DRAMLocal: 260, DRAMRemoteHop: 0, HomeRoute: 0, DirLookup: 48,
			Trap: 700, Syscall: 140, CSwitch: 280, Upcall: 170,
			Dispatch: 180, IPIDeliver: 350, TLBInval: 120, TLBFill: 190,
		},
	}
	return m.finish()
}

// AMD2x2 models the 2×2-core AMD system: two dual-core Opteron 2220 packages
// with private 1MB L2s, local memory controllers and two HyperTransport
// links.
func AMD2x2() *Machine {
	m := &Machine{
		Name:           "2x2-core AMD",
		ClockGHz:       2.8,
		NSockets:       2,
		DiesPerSocket:  1,
		CoresPerSocket: 2,
		IOSocket:       0,
		Links:          []Link{{0, 1}},
		Costs: CostParams{
			L1Hit: 3, Store: 3, StoreIssue: 25,
			IntraDie:    300, // no shared cache: local snoop between the two cores
			IntraSocket: 300,
			RemoteBase:  355, RemoteHop: 8,
			DRAMLocal: 220, DRAMRemoteHop: 60, HomeRoute: 12, DirLookup: 40,
			Trap: 640, Syscall: 120, CSwitch: 250, Upcall: 150,
			Dispatch: 160, IPIDeliver: 320, TLBInval: 100, TLBFill: 170,
		},
	}
	return m.finish()
}

// AMD4x4 models the 4×4-core AMD system: four quad-core Opteron 8380 packages
// with private 512kB L2s and a 6MB shared L3 per socket, connected in a
// square by four HyperTransport links.
func AMD4x4() *Machine {
	m := &Machine{
		Name:           "4x4-core AMD",
		ClockGHz:       2.5,
		NSockets:       4,
		DiesPerSocket:  1,
		CoresPerSocket: 4,
		SharedL3:       true,
		IOSocket:       0,
		Links:          []Link{{0, 1}, {1, 3}, {3, 2}, {2, 0}},
		Costs: CostParams{
			L1Hit: 3, Store: 3, StoreIssue: 25,
			IntraDie:    300, // via the shared L3
			IntraSocket: 300,
			RemoteBase:  390, RemoteHop: 7,
			DRAMLocal: 250, DRAMRemoteHop: 55, HomeRoute: 12, DirLookup: 44,
			Trap: 790, Syscall: 220, CSwitch: 470, Upcall: 330,
			Dispatch: 368, IPIDeliver: 400, TLBInval: 200, TLBFill: 260,
		},
	}
	return m.finish()
}

// AMD8x4 models the 8×4-core AMD system: eight quad-core Opteron 8350
// packages with 2MB shared L3s, wired in the paper's Figure 2 grid — two rows
// of four sockets with row and column HyperTransport links.
func AMD8x4() *Machine {
	m := &Machine{
		Name:           "8x4-core AMD",
		ClockGHz:       2.0,
		NSockets:       8,
		DiesPerSocket:  1,
		CoresPerSocket: 4,
		SharedL3:       true,
		IOSocket:       0,
		// Figure 2 layout: top row 7-5-3-1, bottom row 6-2-4-0, with
		// vertical links 7-6, 5-2, 3-4, 1-0.
		Links: []Link{
			{7, 5}, {5, 3}, {3, 1},
			{6, 2}, {2, 4}, {4, 0},
			{7, 6}, {5, 2}, {3, 4}, {1, 0},
		},
		Costs: CostParams{
			L1Hit: 3, Store: 3, StoreIssue: 25,
			IntraDie:    390, // via the shared L3
			IntraSocket: 390,
			RemoteBase:  460, RemoteHop: 4,
			DRAMLocal: 280, DRAMRemoteHop: 50, HomeRoute: 22, DirLookup: 48,
			Trap: 800, Syscall: 230, CSwitch: 490, Upcall: 350,
			Dispatch: 404, IPIDeliver: 420, TLBInval: 210, TLBFill: 270,
		},
	}
	return m.finish()
}

// MeshXY builds a synthetic nx×ny socket grid with the given cores per
// socket, using the 8×4 AMD cost parameters unchanged (BFS routing, no
// mode-dependent snoop/directory costs). It models the network-on-chip style
// machines the paper anticipates (§2.3) and supports scalability sweeps past
// commodity core counts.
func MeshXY(nx, ny, coresPerSocket int) *Machine {
	if nx < 1 || ny < 1 {
		panic("topo: mesh dimensions must be positive")
	}
	m := &Machine{
		Name:           fmt.Sprintf("mesh-%dx%d-%dc", nx, ny, coresPerSocket),
		ClockGHz:       2.0,
		NSockets:       nx * ny,
		DiesPerSocket:  1,
		CoresPerSocket: coresPerSocket,
		SharedL3:       true,
		IOSocket:       0,
		Links:          gridLinks(nx, ny, false),
		Costs:          AMD8x4().Costs,
	}
	return m.finish()
}

// gridLinks enumerates the links of an nx×ny grid in row-major order: for
// each socket its +X neighbour then its +Y neighbour, with wraparound links
// when wrap is set.
func gridLinks(nx, ny int, wrap bool) []Link {
	var links []Link
	id := func(x, y int) SocketID { return SocketID(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				links = append(links, Link{id(x, y), id(x+1, y)})
			} else if wrap && nx > 2 {
				links = append(links, Link{id(x, y), id(0, y)})
			}
			if y+1 < ny {
				links = append(links, Link{id(x, y), id(x, y+1)})
			} else if wrap && ny > 2 {
				links = append(links, Link{id(x, y), id(x, 0)})
			}
		}
	}
	return links
}

// scaledCosts are the AMD8x4 cost parameters with the mode-dependent
// coherence costs separated out: SnoopPerSocket is the per-remote-socket
// serialization a broadcast snoop pays (every socket's tag filter must
// answer before the transaction completes), DirLookup the flat home-node
// directory indirection a targeted transaction pays instead. With these
// values broadcast wins below ~14 sockets and directory above — the
// crossover the coherence experiment measures.
func scaledCosts() CostParams {
	c := AMD8x4().Costs
	c.SnoopPerSocket = 4
	c.DirLookup = 52
	return c
}

// Mesh builds a k×k socket mesh with 4 cores per socket (64 cores at k=4,
// 1024 at k=16), dimension-ordered XY routing, per-link bandwidth maps and
// the mode-dependent coherence costs of scaledCosts. This is the primary
// scaled machine of the 64–1024 core sweeps.
func Mesh(k int) *Machine {
	if k < 2 {
		panic("topo: mesh size must be at least 2")
	}
	m := &Machine{
		Name:           fmt.Sprintf("mesh-%d", k),
		ClockGHz:       2.0,
		NSockets:       k * k,
		DiesPerSocket:  1,
		CoresPerSocket: 4,
		SharedL3:       true,
		IOSocket:       0,
		Links:          gridLinks(k, k, false),
		Costs:          scaledCosts(),
		gridNX:         k,
		gridNY:         k,
		LinkGBps:       uniformGBps(gridLinks(k, k, false), DefaultLinkGBps),
	}
	return m.finish()
}

// Torus builds a k×k socket torus: the mesh plus wraparound links in both
// dimensions, halving the diameter. Requires k ≥ 3 (below that the wrap
// links would duplicate mesh links).
func Torus(k int) *Machine {
	if k < 3 {
		panic("topo: torus size must be at least 3")
	}
	m := &Machine{
		Name:           fmt.Sprintf("torus-%d", k),
		ClockGHz:       2.0,
		NSockets:       k * k,
		DiesPerSocket:  1,
		CoresPerSocket: 4,
		SharedL3:       true,
		IOSocket:       0,
		Links:          gridLinks(k, k, true),
		Costs:          scaledCosts(),
		gridNX:         k,
		gridNY:         k,
		gridWrap:       true,
		LinkGBps:       uniformGBps(gridLinks(k, k, true), DefaultLinkGBps),
	}
	return m.finish()
}

// uniformGBps builds a bandwidth map assigning every listed link g GB/s.
func uniformGBps(links []Link, g float64) map[Link]float64 {
	out := make(map[Link]float64, len(links))
	for _, l := range links {
		out[l] = g
	}
	return out
}

// Hier builds a multi-socket hierarchy: clusters of fully-meshed sockets
// joined by a ring of slower, narrower uplinks between each cluster's
// gateway (lowest-numbered) socket. The uplinks carry a per-crossing
// LinkLat surcharge and half the intra-cluster bandwidth, so routes that
// leave a cluster are visibly more expensive — the NUMA-of-NUMAs shape of
// large shared-memory machines.
func Hier(clusters, socketsPerCluster, coresPerSocket int) *Machine {
	if clusters < 2 || socketsPerCluster < 1 || coresPerSocket < 1 {
		panic("topo: hierarchy needs ≥2 clusters and positive sockets/cores")
	}
	const uplinkExtra = 120 // cycles per uplink crossing
	n := clusters * socketsPerCluster
	var links []Link
	linkLat := make(map[Link]sim.Time)
	linkGBps := make(map[Link]float64)
	for c := 0; c < clusters; c++ {
		base := c * socketsPerCluster
		for i := 0; i < socketsPerCluster; i++ {
			for j := i + 1; j < socketsPerCluster; j++ {
				l := Link{SocketID(base + i), SocketID(base + j)}
				links = append(links, l)
				linkGBps[l] = DefaultLinkGBps
			}
		}
	}
	for c := 0; c < clusters; c++ {
		gw := SocketID(c * socketsPerCluster)
		ngw := SocketID(((c + 1) % clusters) * socketsPerCluster)
		if clusters == 2 && c == 1 {
			break // a 2-cluster ring is a single link
		}
		l := Link{gw, ngw}
		links = append(links, l)
		linkLat[l] = uplinkExtra
		linkGBps[l] = DefaultLinkGBps / 2
	}
	m := &Machine{
		Name: fmt.Sprintf("hier-%dx%dx%dc",
			clusters, socketsPerCluster, coresPerSocket),
		ClockGHz:       2.0,
		NSockets:       n,
		DiesPerSocket:  1,
		CoresPerSocket: coresPerSocket,
		SharedL3:       true,
		IOSocket:       0,
		Links:          links,
		Costs:          scaledCosts(),
		LinkLat:        linkLat,
		LinkGBps:       linkGBps,
	}
	return m.finish()
}

// AllMachines returns the paper's four test platforms in the order used by
// its tables.
func AllMachines() []*Machine {
	return []*Machine{Intel2x4(), AMD2x2(), AMD4x4(), AMD8x4()}
}

// ByName returns the predefined machine with the given Name, or nil.
func ByName(name string) *Machine {
	for _, m := range AllMachines() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
