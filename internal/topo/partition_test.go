package topo

import "testing"

func TestPartitionBalancedContiguous(t *testing.T) {
	for _, m := range AllMachines() {
		for nparts := 1; nparts <= m.NSockets; nparts++ {
			pm := Partition(m, nparts)
			if pm.NParts() != nparts {
				t.Fatalf("%s: NParts() = %d, want %d", m.Name, pm.NParts(), nparts)
			}
			// Contiguous: partition ids are non-decreasing in socket order and
			// cover [0, nparts) without gaps.
			prev := 0
			sizes := make([]int, nparts)
			for s := 0; s < m.NSockets; s++ {
				p := pm.Part(SocketID(s))
				if p < prev || p > prev+1 {
					t.Fatalf("%s nparts=%d: socket %d in partition %d after partition %d", m.Name, nparts, s, p, prev)
				}
				prev = p
				sizes[p]++
			}
			if prev != nparts-1 {
				t.Fatalf("%s nparts=%d: highest partition is %d", m.Name, nparts, prev)
			}
			// Balanced to within one socket.
			min, max := m.NSockets, 0
			for _, n := range sizes {
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			if max-min > 1 {
				t.Errorf("%s nparts=%d: partition sizes %v differ by more than one", m.Name, nparts, sizes)
			}
			// Every core's partition matches its socket's.
			for c := 0; c < m.NumCores(); c++ {
				if pm.PartOfCore(CoreID(c)) != pm.Part(m.Socket(CoreID(c))) {
					t.Fatalf("%s nparts=%d: core %d partition disagrees with its socket", m.Name, nparts, c)
				}
			}
		}
	}
}

func TestPartitionClamp(t *testing.T) {
	m := AMD8x4()
	if got := Partition(m, 0).NParts(); got != 1 {
		t.Errorf("nparts=0 clamps to %d, want 1", got)
	}
	if got := Partition(m, 100).NParts(); got != m.NSockets {
		t.Errorf("nparts=100 clamps to %d, want %d", got, m.NSockets)
	}
}

func TestPartitionSocketsAndCores(t *testing.T) {
	m := AMD8x4()
	pm := Partition(m, 4) // 8 sockets -> 2 per partition
	seenSockets := make(map[SocketID]bool)
	seenCores := make(map[CoreID]bool)
	for p := 0; p < pm.NParts(); p++ {
		socks := pm.Sockets(p)
		if len(socks) != 2 {
			t.Fatalf("partition %d has sockets %v, want 2 of them", p, socks)
		}
		for _, s := range socks {
			if seenSockets[s] {
				t.Fatalf("socket %d appears in two partitions", s)
			}
			seenSockets[s] = true
		}
		cores := pm.Cores(p)
		if len(cores) != 2*m.CoresPerSocket {
			t.Fatalf("partition %d has %d cores, want %d", p, len(cores), 2*m.CoresPerSocket)
		}
		for _, c := range cores {
			if seenCores[c] {
				t.Fatalf("core %d appears in two partitions", c)
			}
			seenCores[c] = true
		}
	}
	if len(seenSockets) != m.NSockets || len(seenCores) != m.NumCores() {
		t.Fatalf("partitions cover %d sockets / %d cores, want %d / %d",
			len(seenSockets), len(seenCores), m.NSockets, m.NumCores())
	}
}

func TestPerSocket(t *testing.T) {
	m := AMD8x4()
	pm := PerSocket(m)
	if pm.NParts() != m.NSockets {
		t.Fatalf("PerSocket NParts() = %d, want %d", pm.NParts(), m.NSockets)
	}
	for s := 0; s < m.NSockets; s++ {
		if pm.Part(SocketID(s)) != s {
			t.Errorf("socket %d in partition %d under PerSocket", s, pm.Part(SocketID(s)))
		}
	}
}
