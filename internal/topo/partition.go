package topo

import "fmt"

// PartitionMap assigns every socket of a machine to one of NParts partitions.
// It is the static decomposition consumed by the parallel simulation engine
// (internal/sim): each partition runs its own event heap, and only events
// that cross a partition boundary pay synchronization. Sockets are the unit
// of partitioning because the machine's latency cliff sits at the socket
// boundary — intra-socket transfers (shared L3, local snoop) are far cheaper
// than any cross-socket transaction, so socket-aligned partitions maximize
// the conservative lookahead (see interconnect.Lookahead).
type PartitionMap struct {
	m      *Machine
	nparts int
	of     []int // socket -> partition
}

// Partition divides machine m into nparts partitions of contiguous sockets,
// balanced to within one socket. nparts is clamped to [1, NSockets]. The
// assignment is a pure function of (machine, nparts), so every run over the
// same machine partitions identically regardless of worker count.
func Partition(m *Machine, nparts int) *PartitionMap {
	if nparts < 1 {
		nparts = 1
	}
	if nparts > m.NSockets {
		nparts = m.NSockets
	}
	pm := &PartitionMap{m: m, nparts: nparts, of: make([]int, m.NSockets)}
	for s := 0; s < m.NSockets; s++ {
		// Socket s lands in partition floor(s*nparts/NSockets): contiguous
		// blocks, sizes differing by at most one.
		pm.of[s] = s * nparts / m.NSockets
	}
	return pm
}

// PerSocket partitions m with one partition per socket — the finest
// decomposition, and the default for the parallel engine.
func PerSocket(m *Machine) *PartitionMap { return Partition(m, m.NSockets) }

// Machine returns the partitioned machine.
func (pm *PartitionMap) Machine() *Machine { return pm.m }

// NParts returns the number of partitions.
func (pm *PartitionMap) NParts() int { return pm.nparts }

// Part returns the partition of socket s.
func (pm *PartitionMap) Part(s SocketID) int { return pm.of[s] }

// PartOfCore returns the partition of the socket housing core c.
func (pm *PartitionMap) PartOfCore(c CoreID) int { return pm.of[pm.m.Socket(c)] }

// Sockets returns the sockets of partition p in ascending order.
func (pm *PartitionMap) Sockets(p int) []SocketID {
	var out []SocketID
	for s, ps := range pm.of {
		if ps == p {
			out = append(out, SocketID(s))
		}
	}
	return out
}

// Cores returns the cores of partition p in ascending order.
func (pm *PartitionMap) Cores(p int) []CoreID {
	var out []CoreID
	for _, s := range pm.Sockets(p) {
		out = append(out, pm.m.CoresOf(s)...)
	}
	return out
}

// String implements fmt.Stringer.
func (pm *PartitionMap) String() string {
	return fmt.Sprintf("%s into %d partitions", pm.m.Name, pm.nparts)
}
