// Package topo describes simulated machine topologies: sockets, dies, cores,
// cache sharing, NUMA layout and the point-to-point interconnect between
// sockets, together with the per-machine cost parameters that drive the cache
// and kernel models.
//
// The four predefined machines mirror the paper's test platforms (§4.1):
// a 2×4-core Intel system, and 2×2-, 4×4- and 8×4-core AMD systems, the last
// with the HyperTransport square-grid interconnect of the paper's Figure 2.
// Synthetic mesh machines support beyond-32-core scalability runs.
package topo

import (
	"fmt"

	"multikernel/internal/sim"
)

// CoreID identifies a core, in [0, NumCores).
type CoreID int

// SocketID identifies a processor package, in [0, NSockets).
type SocketID int

// Link is an undirected interconnect link between two sockets.
type Link struct {
	A, B SocketID
}

// CostParams are the calibrated per-machine latency and cost constants, in
// cycles. Cache-transfer constants are one coherence transaction (probe +
// data) between the named domains; software costs model the CPU driver paths.
type CostParams struct {
	// Core-local accesses.
	L1Hit      sim.Time // load/store hit in the private cache
	Store      sim.Time // store issue cost when line already owned
	StoreIssue sim.Time // store-buffer issue cost for an uncontended store miss

	// Coherence transaction latencies (ownership transfer or line fetch).
	IntraDie    sim.Time // between cores sharing a die cache (Intel shared L2)
	IntraSocket sim.Time // within one socket (shared L3 / local snoop)
	RemoteBase  sim.Time // cross-socket base (includes broadcast probe)
	RemoteHop   sim.Time // additional per interconnect hop to the data source

	// Memory.
	DRAMLocal     sim.Time // fetch from the socket's local memory controller
	DRAMRemoteHop sim.Time // extra per hop to a remote home node
	HomeRoute     sim.Time // per-hop cost of routing a coherence transaction via the line's home node

	// Coherence-mode costs (zero on the paper machines, whose RemoteBase
	// folds the broadcast-probe cost in; nonzero on the scaled mesh/torus
	// machines where the two coherence modes genuinely diverge).
	SnoopPerSocket sim.Time // broadcast mode: per-remote-socket serialization of one snoop broadcast
	DirLookup      sim.Time // directory mode: home-node directory lookup/indirection per remote transaction

	// Kernel and CPU-driver software costs.
	Trap       sim.Time // hardware trap/interrupt entry+exit (paper: ~800)
	Syscall    sim.Time // system-call entry+exit fast path
	CSwitch    sim.Time // context switch between dispatchers on one core
	Upcall     sim.Time // scheduler-activation upcall into a dispatcher
	Dispatch   sim.Time // user-level message/thread dispatch loop iteration
	IPIDeliver sim.Time // sending one inter-processor interrupt
	TLBInval   sim.Time // invlpg on one core (paper: 95–320)
	TLBFill    sim.Time // refilling one TLB entry (page-table walk)
}

// Machine is an immutable description of a simulated multiprocessor.
type Machine struct {
	Name           string
	ClockGHz       float64
	NSockets       int
	DiesPerSocket  int
	CoresPerSocket int  // total per socket, across its dies
	SharedDieCache bool // cores on one die share a cache (Intel L2)
	SharedL3       bool // all cores of a socket share an L3
	SingleMemCtrl  bool // one external memory controller (Intel FSB system)
	IOSocket       SocketID
	Links          []Link
	Costs          CostParams

	// LinkLat maps a link to extra per-crossing latency beyond the uniform
	// RemoteHop (e.g. slower inter-cluster uplinks of a hierarchy). LinkGBps
	// maps a link to its bandwidth; links absent from either map use the
	// uniform defaults. Both nil on the paper machines.
	LinkLat  map[Link]sim.Time
	LinkGBps map[Link]float64

	// Grid geometry, set by the Mesh/Torus builders: routing is then
	// dimension-ordered (X first, then Y) instead of BFS, the deterministic
	// XY routing of network-on-chip fabrics.
	gridNX, gridNY int
	gridWrap       bool

	dist  [][]int      // socket-to-socket hop counts
	next  [][]SocketID // next hop on a shortest path
	extra []sim.Time   // per socket pair: sum of LinkLat along the route (nil when LinkLat is)
}

// finish validates the machine and computes routing tables.
func (m *Machine) finish() *Machine {
	if m.NSockets <= 0 || m.CoresPerSocket <= 0 || m.DiesPerSocket <= 0 {
		panic("topo: machine must have sockets, dies and cores")
	}
	if m.CoresPerSocket%m.DiesPerSocket != 0 {
		panic("topo: cores per socket must divide evenly into dies")
	}
	n := m.NSockets
	const inf = 1 << 30
	m.dist = make([][]int, n)
	m.next = make([][]SocketID, n)
	adj := make([][]SocketID, n)
	for _, l := range m.Links {
		if int(l.A) >= n || int(l.B) >= n || l.A < 0 || l.B < 0 || l.A == l.B {
			panic(fmt.Sprintf("topo: bad link %v in %s", l, m.Name))
		}
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	if m.gridNX > 0 {
		m.finishGrid()
		m.finishExtra()
		return m
	}
	for s := 0; s < n; s++ {
		d := make([]int, n)
		nx := make([]SocketID, n)
		for i := range d {
			d[i] = inf
			nx[i] = -1
		}
		d[s] = 0
		queue := []SocketID{SocketID(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if d[v] == inf {
					d[v] = d[u] + 1
					if u == SocketID(s) {
						nx[v] = v
					} else {
						nx[v] = nx[u]
					}
					queue = append(queue, v)
				}
			}
		}
		if n > 1 {
			for i, dv := range d {
				if dv == inf {
					panic(fmt.Sprintf("topo: socket %d unreachable from %d in %s", i, s, m.Name))
				}
			}
		}
		m.dist[s] = d
		m.next[s] = nx
	}
	m.finishExtra()
	return m
}

// finishGrid fills the routing tables of a gridNX×gridNY machine
// analytically with dimension-ordered (XY) routing: a transaction first
// travels along X to the destination column, then along Y. On a torus each
// dimension wraps and the shorter direction wins, ties broken toward
// increasing coordinates. This is the deterministic routing of
// network-on-chip meshes, and — unlike BFS — independent of link order.
func (m *Machine) finishGrid() {
	nx, ny := m.gridNX, m.gridNY
	n := m.NSockets
	if nx*ny != n {
		panic(fmt.Sprintf("topo: grid %dx%d does not cover %d sockets in %s", nx, ny, n, m.Name))
	}
	// step returns the per-dimension hop count and the first move (-1, 0, +1)
	// from coordinate a to b in a dimension of size k.
	step := func(a, b, k int) (int, int) {
		if a == b {
			return 0, 0
		}
		d := b - a
		if d < 0 {
			d = -d
		}
		if !m.gridWrap {
			if b > a {
				return d, 1
			}
			return d, -1
		}
		wrap := k - d
		switch {
		case d < wrap:
			if b > a {
				return d, 1
			}
			return d, -1
		case wrap < d:
			if b > a {
				return wrap, -1
			}
			return wrap, 1
		default: // tie: route toward increasing coordinates
			return d, 1
		}
	}
	for s := 0; s < n; s++ {
		d := make([]int, n)
		nxt := make([]SocketID, n)
		sx, sy := s%nx, s/nx
		for t := 0; t < n; t++ {
			if t == s {
				nxt[t] = -1
				continue
			}
			tx, ty := t%nx, t/nx
			dx, mx := step(sx, tx, nx)
			dy, my := step(sy, ty, ny)
			d[t] = dx + dy
			hx, hy := sx, sy
			if mx != 0 {
				hx = (sx + mx + nx) % nx
			} else {
				hy = (sy + my + ny) % ny
			}
			nxt[t] = SocketID(hy*nx + hx)
		}
		m.dist[s] = d
		m.next[s] = nxt
	}
}

// finishExtra precomputes, for every socket pair, the sum of LinkLat entries
// along the routed path. Nil (free to query) when the machine has no
// per-link latency map.
func (m *Machine) finishExtra() {
	if m.LinkLat == nil {
		return
	}
	n := m.NSockets
	m.extra = make([]sim.Time, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			var sum sim.Time
			prev := SocketID(a)
			for _, hop := range m.Route(SocketID(a), SocketID(b)) {
				if lat, ok := m.LinkLat[Link{prev, hop}]; ok {
					sum += lat
				} else if lat, ok := m.LinkLat[Link{hop, prev}]; ok {
					sum += lat
				}
				prev = hop
			}
			m.extra[a*n+b] = sum
		}
	}
}

// NumCores returns the total core count.
func (m *Machine) NumCores() int { return m.NSockets * m.CoresPerSocket }

// Socket returns the socket housing core c.
func (m *Machine) Socket(c CoreID) SocketID {
	return SocketID(int(c) / m.CoresPerSocket)
}

// Die returns the global die index housing core c.
func (m *Machine) Die(c CoreID) int {
	perDie := m.CoresPerSocket / m.DiesPerSocket
	return int(c) / perDie
}

// SameSocket reports whether two cores share a socket.
func (m *Machine) SameSocket(a, b CoreID) bool { return m.Socket(a) == m.Socket(b) }

// SameDie reports whether two cores share a die.
func (m *Machine) SameDie(a, b CoreID) bool { return m.Die(a) == m.Die(b) }

// CoresOf returns the cores of socket s in ascending order.
func (m *Machine) CoresOf(s SocketID) []CoreID {
	out := make([]CoreID, m.CoresPerSocket)
	base := int(s) * m.CoresPerSocket
	for i := range out {
		out[i] = CoreID(base + i)
	}
	return out
}

// Hops returns the interconnect hop count between two sockets (0 if equal).
func (m *Machine) Hops(a, b SocketID) int { return m.dist[a][b] }

// CoreHops returns the hop count between the sockets of two cores.
func (m *Machine) CoreHops(a, b CoreID) int { return m.Hops(m.Socket(a), m.Socket(b)) }

// MaxHops returns the interconnect diameter.
func (m *Machine) MaxHops() int {
	max := 0
	for _, row := range m.dist {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Route returns the socket sequence of a shortest path from a to b,
// excluding a itself. It is empty when a == b.
func (m *Machine) Route(a, b SocketID) []SocketID {
	var out []SocketID
	for a != b {
		n := m.next[a][b]
		out = append(out, n)
		a = n
	}
	return out
}

// PathExtra returns the sum of per-link extra latencies (LinkLat) along the
// routed path from a to b. Zero on machines without a link latency map.
func (m *Machine) PathExtra(a, b SocketID) sim.Time {
	if m.extra == nil || a == b {
		return 0
	}
	return m.extra[int(a)*m.NSockets+int(b)]
}

// DefaultLinkGBps is the bandwidth assumed for links absent from a machine's
// LinkGBps map (one HyperTransport-class link).
const DefaultLinkGBps = 4.0

// LinkBandwidth returns the bandwidth in GB/s of the direct link between two
// adjacent sockets, in either key order, defaulting to DefaultLinkGBps.
func (m *Machine) LinkBandwidth(a, b SocketID) float64 {
	if m.LinkGBps != nil {
		if g, ok := m.LinkGBps[Link{a, b}]; ok {
			return g
		}
		if g, ok := m.LinkGBps[Link{b, a}]; ok {
			return g
		}
	}
	return DefaultLinkGBps
}

// TransferLat returns the latency of one coherence transaction that moves a
// line (or its ownership) from core src to core dst.
func (m *Machine) TransferLat(dst, src CoreID) sim.Time {
	c := &m.Costs
	switch {
	case dst == src:
		return c.L1Hit
	case m.SharedDieCache && m.SameDie(dst, src):
		return c.IntraDie
	case m.SameSocket(dst, src):
		return c.IntraSocket
	default:
		return c.RemoteBase + sim.Time(m.CoreHops(dst, src))*c.RemoteHop +
			m.PathExtra(m.Socket(dst), m.Socket(src))
	}
}

// MemLat returns the latency for core c to fetch a line from memory homed on
// socket home.
func (m *Machine) MemLat(c CoreID, home SocketID) sim.Time {
	p := &m.Costs
	if m.SingleMemCtrl {
		return p.DRAMLocal
	}
	return p.DRAMLocal + sim.Time(m.Hops(m.Socket(c), home))*p.DRAMRemoteHop +
		m.PathExtra(m.Socket(c), home)
}

// Cycles converts a duration in nanoseconds to cycles on this machine.
func (m *Machine) Cycles(ns float64) sim.Time { return sim.Time(ns * m.ClockGHz) }

// Nanoseconds converts cycles to nanoseconds on this machine.
func (m *Machine) Nanoseconds(t sim.Time) float64 { return float64(t) / m.ClockGHz }

// String implements fmt.Stringer.
func (m *Machine) String() string {
	return fmt.Sprintf("%s (%d sockets × %d cores @ %.2fGHz)",
		m.Name, m.NSockets, m.CoresPerSocket, m.ClockGHz)
}
