package caps

import (
	"errors"
	"testing"
	"testing/quick"

	"multikernel/internal/memory"
)

func ramRoot(cs *CSpace, base memory.Addr, bytes uint64) Ref {
	return cs.AddRoot(Capability{Type: RAM, Base: base, Bytes: bytes, Rights: AllRights})
}

func TestRetypeProducesDisjointChildren(t *testing.T) {
	cs := NewCSpace("core0")
	root := ramRoot(cs, 0x10000, 16*4096)
	refs, err := cs.Retype(root, Frame, 0, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 4 {
		t.Fatalf("got %d refs", len(refs))
	}
	for i, r := range refs {
		c := cs.MustGet(r)
		if c.Type != Frame || c.Bytes != 4096 {
			t.Fatalf("child %d = %v", i, c)
		}
		if c.Base != 0x10000+memory.Addr(i*4096) {
			t.Fatalf("child %d base %#x", i, uint64(c.Base))
		}
		for j, r2 := range refs {
			if i != j && c.Overlaps(cs.MustGet(r2)) {
				t.Fatalf("children %d and %d overlap", i, j)
			}
		}
	}
	if !cs.HasDescendants(root) {
		t.Fatal("root should have descendants")
	}
}

func TestRetypeRefusedWithLiveDescendants(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 8*4096)
	if _, err := cs.Retype(root, Frame, 0, 4096, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Retype(root, PageTable, 4, 4096, 1); !errors.Is(err, ErrHasChildren) {
		t.Fatalf("second retype err=%v, want ErrHasChildren", err)
	}
}

func TestRetypeAfterRevokeSucceeds(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 8*4096)
	if _, err := cs.Retype(root, Frame, 0, 4096, 2); err != nil {
		t.Fatal(err)
	}
	n, err := cs.Revoke(root)
	if err != nil || n != 2 {
		t.Fatalf("revoke=%d,%v", n, err)
	}
	if _, err := cs.Retype(root, PageTable, 4, 4096, 1); err != nil {
		t.Fatalf("retype after revoke: %v", err)
	}
}

func TestRetypeOnlyFromRAM(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 8*4096)
	refs, _ := cs.Retype(root, Frame, 0, 4096, 1)
	if _, err := cs.Retype(refs[0], Frame, 0, 4096, 1); !errors.Is(err, ErrNotRetypable) {
		t.Fatalf("err=%v", err)
	}
}

func TestRetypeSizeChecks(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 4096)
	if _, err := cs.Retype(root, Frame, 0, 4096, 2); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("overcommit err=%v", err)
	}
	if _, err := cs.Retype(root, Frame, 0, 100, 1); !errors.Is(err, ErrBadObject) {
		t.Fatalf("unaligned err=%v", err)
	}
	if _, err := cs.Retype(root, PageTable, 9, 4096, 1); !errors.Is(err, ErrBadObject) {
		t.Fatalf("bad level err=%v", err)
	}
	if _, err := cs.Retype(root, Dispatcher, 0, 512, 1); !errors.Is(err, ErrBadObject) {
		t.Fatalf("bad dispatcher size err=%v", err)
	}
}

func TestCopyAndMintRights(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 4096)
	refs, _ := cs.Retype(root, Frame, 0, 4096, 1)
	dup, err := cs.Copy(refs[0])
	if err != nil {
		t.Fatal(err)
	}
	if cs.MustGet(dup) != cs.MustGet(refs[0]) {
		t.Fatal("copy differs from original")
	}
	ro, err := cs.Mint(refs[0], CanRead)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MustGet(ro).Rights != CanRead {
		t.Fatal("minted rights wrong")
	}
	if _, err := cs.Mint(ro, CanRead|CanWrite); !errors.Is(err, ErrNoGrant) {
		// ro lost CanGrant, so minting from it fails before the grow check.
		t.Fatalf("err=%v", err)
	}
	if _, err := cs.Mint(refs[0], AllRights|0x10); !errors.Is(err, ErrRightsGrow) {
		t.Fatalf("rights-grow err=%v", err)
	}
}

func TestCopyRequiresGrant(t *testing.T) {
	cs := NewCSpace("c")
	r := cs.AddRoot(Capability{Type: Frame, Base: 0, Bytes: 4096, Rights: CanRead | CanWrite})
	if _, err := cs.Copy(r); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("err=%v", err)
	}
}

func TestRevokeRemovesWholeSubtree(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 64*1024)
	frames, _ := cs.Retype(root, Frame, 0, 4096, 2)
	c1, _ := cs.Copy(frames[0])
	c2, _ := cs.Copy(c1)
	before := cs.Len()
	n, err := cs.Revoke(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("revoked %d, want 2 (copy and copy-of-copy)", n)
	}
	if cs.Len() != before-2 {
		t.Fatal("space size wrong after revoke")
	}
	if _, err := cs.Get(c1); !errors.Is(err, ErrBadRef) {
		t.Fatal("revoked copy still live")
	}
	if _, err := cs.Get(c2); !errors.Is(err, ErrBadRef) {
		t.Fatal("revoked grandchild still live")
	}
	if _, err := cs.Get(frames[0]); err != nil {
		t.Fatal("revocation target should remain live")
	}
}

func TestDeleteReparentsChildren(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 4096)
	frames, _ := cs.Retype(root, Frame, 0, 4096, 1)
	cpy, _ := cs.Copy(frames[0])
	if err := cs.Delete(frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get(cpy); err != nil {
		t.Fatal("copy must survive parent deletion")
	}
	// Revoking the root must now reach the re-parented copy.
	n, _ := cs.Revoke(root)
	if n != 1 {
		t.Fatalf("revoke removed %d, want 1", n)
	}
}

func TestDeleteBadRef(t *testing.T) {
	cs := NewCSpace("c")
	if err := cs.Delete(Ref(99)); !errors.Is(err, ErrBadRef) {
		t.Fatalf("err=%v", err)
	}
}

func TestConflictCheckDetectsFrameOverPageTable(t *testing.T) {
	a := NewCSpace("core0")
	b := NewCSpace("core1")
	// Core 0 types the region as a page table; core 1 (inconsistently)
	// holds a writable frame over the same memory.
	a.AddRoot(Capability{Type: PageTable, Level: 1, Base: 0x4000, Bytes: 4096, Rights: CanRead | CanWrite})
	b.AddRoot(Capability{Type: Frame, Base: 0x4000, Bytes: 4096, Rights: AllRights})
	if err := ConflictCheck(a, b); err == nil {
		t.Fatal("conflict not detected")
	}
}

func TestConflictCheckAllowsReplicas(t *testing.T) {
	a := NewCSpace("core0")
	b := NewCSpace("core1")
	c := Capability{Type: Frame, Base: 0x4000, Bytes: 4096, Rights: AllRights}
	a.AddRoot(c)
	b.AddRoot(c)
	if err := ConflictCheck(a, b); err != nil {
		t.Fatalf("replicas flagged as conflict: %v", err)
	}
}

func TestConflictCheckIgnoresRAM(t *testing.T) {
	a := NewCSpace("core0")
	root := ramRoot(a, 0, 64*4096)
	if _, err := a.Retype(root, Frame, 0, 4096, 4); err != nil {
		t.Fatal(err)
	}
	// RAM parent overlaps its Frame children, which is fine.
	if err := ConflictCheck(a); err != nil {
		t.Fatalf("parent/child flagged: %v", err)
	}
}

func TestEndpointAndDispatcherSizes(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 8*1024)
	if _, err := cs.Retype(root, Endpoint, 0, 64, 4); err != nil {
		t.Fatal(err)
	}
	cs2 := NewCSpace("c2")
	root2 := ramRoot(cs2, 0, 8*1024)
	if _, err := cs2.Retype(root2, Dispatcher, 0, 1024, 2); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of retype/copy/revoke operations, no two live
// non-RAM capabilities of different types overlap (the §4.7 safety property,
// locally), and revoke leaves its target live.
func TestTypingSafetyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cs := NewCSpace("p")
		root := ramRoot(cs, 0, 1<<20)
		var live []Ref
		live = append(live, root)
		for _, op := range ops {
			if len(live) == 0 {
				break
			}
			target := live[int(op>>4)%len(live)]
			switch op % 4 {
			case 0:
				if refs, err := cs.Retype(target, Frame, 0, 4096, int(op%3)+1); err == nil {
					live = append(live, refs...)
				}
			case 1:
				if r, err := cs.Copy(target); err == nil {
					live = append(live, r)
				}
			case 2:
				cs.Revoke(target)
				// prune dead refs
				var keep []Ref
				for _, r := range live {
					if _, err := cs.Get(r); err == nil {
						keep = append(keep, r)
					}
				}
				live = keep
				if _, err := cs.Get(target); err != nil {
					return false // revoke target must survive
				}
			case 3:
				if target != root {
					cs.Delete(target)
					var keep []Ref
					for _, r := range live {
						if _, err := cs.Get(r); err == nil {
							keep = append(keep, r)
						}
					}
					live = keep
				}
			}
		}
		return ConflictCheck(cs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
