package caps

import (
	"encoding/binary"
	"errors"

	"multikernel/internal/memory"
)

// This file adds the wire form of capabilities (monitors exchange
// capabilities between cores, §4.8; the serialized form is what an
// inter-monitor message carries) and hierarchical CNode addressing: a
// capability address names a slot by walking CNode capabilities from a root,
// the way invocations address capabilities in seL4-style systems.

// WireSize is the serialized capability size in bytes.
const WireSize = 1 + 1 + 8 + 8 + 1 // type, level, base, bytes, rights

// Errors for serialization and addressing.
var (
	ErrBadWire  = errors.New("caps: malformed serialized capability")
	ErrNotCNode = errors.New("caps: path component is not a CNode")
	ErrBadPath  = errors.New("caps: capability path resolves nowhere")
)

// Marshal appends the capability's wire form to b.
func (c Capability) Marshal(b []byte) []byte {
	b = append(b, byte(c.Type), byte(c.Level))
	b = binary.BigEndian.AppendUint64(b, uint64(c.Base))
	b = binary.BigEndian.AppendUint64(b, c.Bytes)
	return append(b, byte(c.Rights))
}

// UnmarshalCapability decodes one capability, returning it and the rest of
// the buffer.
func UnmarshalCapability(b []byte) (Capability, []byte, error) {
	if len(b) < WireSize {
		return Capability{}, nil, ErrBadWire
	}
	c := Capability{
		Type:   Type(b[0]),
		Level:  int(b[1]),
		Base:   memory.Addr(binary.BigEndian.Uint64(b[2:10])),
		Bytes:  binary.BigEndian.Uint64(b[10:18]),
		Rights: Rights(b[18]),
	}
	if c.Type > IRQ {
		return Capability{}, nil, ErrBadWire
	}
	return c, b[WireSize:], nil
}

// PackWords encodes the capability into two 64-bit words plus a rights/type
// word fragment, the representation that fits a URPC message. The layout is
// stable: w0 = base, w1 = bytes, w2 = type<<16 | level<<8 | rights.
func (c Capability) PackWords() (w0, w1, w2 uint64) {
	return uint64(c.Base), c.Bytes,
		uint64(c.Type)<<16 | uint64(c.Level)<<8 | uint64(c.Rights)
}

// UnpackWords reverses PackWords.
func UnpackWords(w0, w1, w2 uint64) Capability {
	return Capability{
		Type:   Type(w2 >> 16),
		Level:  int(w2 >> 8 & 0xff),
		Base:   memory.Addr(w0),
		Bytes:  w1,
		Rights: Rights(w2 & 0xff),
	}
}

// ---------------------------------------------------------------------------
// CNode addressing

// slotsPerCNode is how many capability slots a CNode object holds in this
// model (its Bytes field sizes the backing memory; addressing is by index).
const slotsPerCNode = 256

// cnodeContents maps a CNode capability's identity (base address) to the
// slots stored "inside" it. Contents live beside the CSpace rather than in
// simulated memory: the slots' existence is what matters to the OS model.
type cnodeKey memory.Addr

// PutAt stores a capability into slot `index` of the CNode in cnRef.
// The CNode's backing object identifies the node, so copies of the CNode
// capability address the same slots.
func (cs *CSpace) PutAt(cnRef Ref, index int, c Capability) error {
	cn, err := cs.Get(cnRef)
	if err != nil {
		return err
	}
	if cn.Type != CNode {
		return ErrNotCNode
	}
	if index < 0 || index >= slotsPerCNode {
		return ErrBadPath
	}
	if cs.cnodes == nil {
		cs.cnodes = make(map[cnodeKey]map[int]Capability)
	}
	m := cs.cnodes[cnodeKey(cn.Base)]
	if m == nil {
		m = make(map[int]Capability)
		cs.cnodes[cnodeKey(cn.Base)] = m
	}
	m[index] = c
	return nil
}

// LookupPath resolves a capability address: starting from the CNode in
// rootRef, each path component indexes a slot; intermediate slots must hold
// CNode capabilities. It returns the capability in the final slot.
func (cs *CSpace) LookupPath(rootRef Ref, path ...int) (Capability, error) {
	cur, err := cs.Get(rootRef)
	if err != nil {
		return Capability{}, err
	}
	if len(path) == 0 {
		return Capability{}, ErrBadPath
	}
	for depth, idx := range path {
		if cur.Type != CNode {
			return Capability{}, ErrNotCNode
		}
		if idx < 0 || idx >= slotsPerCNode {
			return Capability{}, ErrBadPath
		}
		slot, ok := cs.cnodes[cnodeKey(cur.Base)][idx]
		if !ok {
			return Capability{}, ErrBadPath
		}
		if depth == len(path)-1 {
			return slot, nil
		}
		cur = slot
	}
	return Capability{}, ErrBadPath
}
