package caps

import (
	"errors"
	"testing"
	"testing/quick"

	"multikernel/internal/memory"
)

func TestCapabilityWireRoundTrip(t *testing.T) {
	c := Capability{Type: PageTable, Level: 3, Base: 0xdead000, Bytes: 4096, Rights: CanRead | CanGrant}
	b := c.Marshal(nil)
	if len(b) != WireSize {
		t.Fatalf("wire size %d", len(b))
	}
	got, rest, err := UnmarshalCapability(append(b, 0xff)) // trailing byte survives
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("got %+v want %+v", got, c)
	}
	if len(rest) != 1 || rest[0] != 0xff {
		t.Fatalf("rest %v", rest)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, _, err := UnmarshalCapability([]byte{1, 2, 3}); !errors.Is(err, ErrBadWire) {
		t.Fatalf("short err=%v", err)
	}
	bad := Capability{Type: Frame, Base: 1, Bytes: 2}.Marshal(nil)
	bad[0] = 200 // invalid type
	if _, _, err := UnmarshalCapability(bad); !errors.Is(err, ErrBadWire) {
		t.Fatalf("bad-type err=%v", err)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(typ uint8, level uint8, base uint64, bytes uint64, rights uint8) bool {
		c := Capability{
			Type:   Type(typ % 9),
			Level:  int(level % 5),
			Base:   memory.Addr(base),
			Bytes:  bytes,
			Rights: Rights(rights & 0x0f),
		}
		got, rest, err := UnmarshalCapability(c.Marshal(nil))
		return err == nil && got == c && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackWordsRoundTripProperty(t *testing.T) {
	f := func(typ uint8, level uint8, base uint64, bytes uint64, rights uint8) bool {
		c := Capability{
			Type:   Type(typ % 9),
			Level:  int(level % 5),
			Base:   memory.Addr(base),
			Bytes:  bytes,
			Rights: Rights(rights & 0x0f),
		}
		return UnpackWords(c.PackWords()) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCNodeAddressing(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 64*1024)
	cnodes, err := cs.Retype(root, CNode, 0, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	l2 := cs.MustGet(cnodes[1])
	frame := Capability{Type: Frame, Base: 0x9000000, Bytes: 4096, Rights: AllRights}
	// root cnode slot 3 -> second cnode; second cnode slot 7 -> frame.
	if err := cs.PutAt(cnodes[0], 3, l2); err != nil {
		t.Fatal(err)
	}
	if err := cs.PutAt(cnodes[1], 7, frame); err != nil {
		t.Fatal(err)
	}
	got, err := cs.LookupPath(cnodes[0], 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != frame {
		t.Fatalf("resolved %+v", got)
	}
	// One-level lookup.
	if got, err := cs.LookupPath(cnodes[0], 3); err != nil || got.Type != CNode {
		t.Fatalf("one-level: %+v %v", got, err)
	}
}

func TestCNodeAddressingErrors(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 64*1024)
	cnodes, _ := cs.Retype(root, CNode, 0, 4096, 1)
	frames, _ := cs.Retype(cs.AddRoot(Capability{Type: RAM, Base: 1 << 20, Bytes: 4096, Rights: AllRights}), Frame, 0, 4096, 1)

	if err := cs.PutAt(frames[0], 0, Capability{}); !errors.Is(err, ErrNotCNode) {
		t.Fatalf("put into frame: %v", err)
	}
	if err := cs.PutAt(cnodes[0], 9999, Capability{}); !errors.Is(err, ErrBadPath) {
		t.Fatalf("out of range: %v", err)
	}
	if _, err := cs.LookupPath(cnodes[0]); !errors.Is(err, ErrBadPath) {
		t.Fatalf("empty path: %v", err)
	}
	if _, err := cs.LookupPath(cnodes[0], 5); !errors.Is(err, ErrBadPath) {
		t.Fatalf("empty slot: %v", err)
	}
	cs.PutAt(cnodes[0], 1, cs.MustGet(frames[0]))
	if _, err := cs.LookupPath(cnodes[0], 1, 2); !errors.Is(err, ErrNotCNode) {
		t.Fatalf("walk through frame: %v", err)
	}
}

func TestCNodeCopiesShareSlots(t *testing.T) {
	cs := NewCSpace("c")
	root := ramRoot(cs, 0, 64*1024)
	cnodes, _ := cs.Retype(root, CNode, 0, 4096, 1)
	dup, err := cs.Copy(cnodes[0])
	if err != nil {
		t.Fatal(err)
	}
	frame := Capability{Type: Frame, Base: 0x9000000, Bytes: 4096, Rights: AllRights}
	cs.PutAt(cnodes[0], 4, frame)
	// The copy addresses the same backing object, so it sees the slot.
	got, err := cs.LookupPath(dup, 4)
	if err != nil || got != frame {
		t.Fatalf("copy lookup: %+v %v", got, err)
	}
}
