// Package caps implements the capability system Barrelfish uses for all
// memory management (paper §4.7), modelled on seL4: every kernel object and
// region of physical memory is referred to by a typed capability, and the
// only way to change the use of memory is to retype or revoke capabilities.
// The CPU driver's sole memory-management duty is checking these operations.
//
// Each core has its own CSpace (a replica); cross-core consistency — the
// guarantee that, say, no core holds a writable Frame over another core's
// page table — is maintained by the monitors' two-phase commit (package
// monitor), and can be audited with ConflictCheck.
package caps

import (
	"errors"
	"fmt"
	"sort"

	"multikernel/internal/memory"
)

// Type classifies a capability.
type Type uint8

// Capability types.
const (
	Null       Type = iota
	RAM             // untyped memory, retypable
	Frame           // mappable user memory
	DevFrame        // device registers / DMA memory, mappable uncached
	PageTable       // a page-table node (Level distinguishes L1..L4)
	CNode           // capability storage
	Dispatcher      // a dispatcher control block
	Endpoint        // an IPC endpoint
	IRQ             // interrupt delivery rights
)

func (t Type) String() string {
	switch t {
	case Null:
		return "Null"
	case RAM:
		return "RAM"
	case Frame:
		return "Frame"
	case DevFrame:
		return "DevFrame"
	case PageTable:
		return "PageTable"
	case CNode:
		return "CNode"
	case Dispatcher:
		return "Dispatcher"
	case Endpoint:
		return "Endpoint"
	case IRQ:
		return "IRQ"
	}
	return "?"
}

// Rights restrict what a capability permits.
type Rights uint8

// Capability rights bits.
const (
	CanRead Rights = 1 << iota
	CanWrite
	CanExec
	CanGrant // may be copied to other domains/cores
)

// AllRights grants everything.
const AllRights = CanRead | CanWrite | CanExec | CanGrant

// Capability describes one typed reference to memory or a kernel object.
type Capability struct {
	Type   Type
	Level  int // page-table level (1 = leaf .. 4 = root); 0 otherwise
	Base   memory.Addr
	Bytes  uint64
	Rights Rights
}

// End returns one past the capability's range.
func (c Capability) End() memory.Addr { return c.Base + memory.Addr(c.Bytes) }

// Overlaps reports whether two capabilities' physical ranges intersect.
func (c Capability) Overlaps(o Capability) bool {
	return c.Base < o.End() && o.Base < c.End()
}

func (c Capability) String() string {
	if c.Type == PageTable {
		return fmt.Sprintf("PageTable/L%d[%#x+%#x]", c.Level, uint64(c.Base), c.Bytes)
	}
	return fmt.Sprintf("%s[%#x+%#x]", c.Type, uint64(c.Base), c.Bytes)
}

// Ref names a slot in a CSpace.
type Ref uint32

// NilRef is the invalid slot.
const NilRef Ref = 0

// Errors returned by capability operations.
var (
	ErrBadRef       = errors.New("caps: invalid capability reference")
	ErrNotRetypable = errors.New("caps: source capability is not untyped RAM")
	ErrHasChildren  = errors.New("caps: capability has live descendants")
	ErrTooSmall     = errors.New("caps: region too small for requested objects")
	ErrBadObject    = errors.New("caps: invalid object size or type")
	ErrRightsGrow   = errors.New("caps: mint may only reduce rights")
	ErrNoGrant      = errors.New("caps: capability lacks grant right")
)

// node is one entry of the mapping database: the derivation tree of caps.
type node struct {
	cap      Capability
	ref      Ref
	parent   *node
	children []*node
	isCopy   bool // derived by Copy/Mint rather than Retype
}

// CSpace is one core's capability space.
type CSpace struct {
	owner  string
	slots  map[Ref]*node
	next   Ref
	cnodes map[cnodeKey]map[int]Capability // CNode slot contents
}

// NewCSpace returns an empty capability space. The owner string is purely
// diagnostic (e.g. "core3").
func NewCSpace(owner string) *CSpace {
	return &CSpace{owner: owner, slots: make(map[Ref]*node), next: 1}
}

// Owner returns the diagnostic owner label.
func (cs *CSpace) Owner() string { return cs.owner }

// Len returns the number of live capabilities.
func (cs *CSpace) Len() int { return len(cs.slots) }

func (cs *CSpace) insert(n *node) Ref {
	r := cs.next
	cs.next++
	n.ref = r
	cs.slots[r] = n
	return r
}

// AddRoot installs a boot-time capability with no parent (e.g. the initial
// untyped RAM covering a memory region) and returns its slot.
func (cs *CSpace) AddRoot(c Capability) Ref {
	return cs.insert(&node{cap: c})
}

// Get returns the capability in slot r.
func (cs *CSpace) Get(r Ref) (Capability, error) {
	n, ok := cs.slots[r]
	if !ok {
		return Capability{}, ErrBadRef
	}
	return n.cap, nil
}

// MustGet is Get for slots known to be valid; it panics on a bad ref.
func (cs *CSpace) MustGet(r Ref) Capability {
	c, err := cs.Get(r)
	if err != nil {
		panic(fmt.Sprintf("caps: %v (slot %d in %s)", err, r, cs.owner))
	}
	return c
}

// HasDescendants reports whether slot r has live derived capabilities.
func (cs *CSpace) HasDescendants(r Ref) bool {
	n, ok := cs.slots[r]
	return ok && len(n.children) > 0
}

// objectSpec validates a retype target and returns the required alignment.
func objectSpec(to Type, level int, objBytes uint64) error {
	switch to {
	case Frame, DevFrame, RAM:
		if objBytes == 0 || objBytes%memory.LineSize != 0 {
			return ErrBadObject
		}
	case PageTable:
		if level < 1 || level > 4 || objBytes != 4096 {
			return ErrBadObject
		}
	case CNode:
		if objBytes == 0 || objBytes%memory.LineSize != 0 {
			return ErrBadObject
		}
	case Dispatcher:
		if objBytes != 1024 {
			return ErrBadObject
		}
	case Endpoint:
		if objBytes != memory.LineSize {
			return ErrBadObject
		}
	default:
		return ErrBadObject
	}
	return nil
}

// Retype converts count objects of the given type out of the untyped RAM
// capability in slot r, returning their new slots. Following seL4, a
// capability with live descendants cannot be retyped — this is the local
// check; cross-core agreement is the monitors' job.
func (cs *CSpace) Retype(r Ref, to Type, level int, objBytes uint64, count int) ([]Ref, error) {
	n, ok := cs.slots[r]
	if !ok {
		return nil, ErrBadRef
	}
	if n.cap.Type != RAM {
		return nil, ErrNotRetypable
	}
	if len(n.children) > 0 {
		return nil, ErrHasChildren
	}
	if err := objectSpec(to, level, objBytes); err != nil {
		return nil, err
	}
	if count < 1 || objBytes*uint64(count) > n.cap.Bytes {
		return nil, ErrTooSmall
	}
	refs := make([]Ref, count)
	for i := 0; i < count; i++ {
		child := &node{
			cap: Capability{
				Type:   to,
				Level:  level,
				Base:   n.cap.Base + memory.Addr(uint64(i)*objBytes),
				Bytes:  objBytes,
				Rights: n.cap.Rights,
			},
			parent: n,
		}
		n.children = append(n.children, child)
		refs[i] = cs.insert(child)
	}
	return refs, nil
}

// Copy duplicates the capability in slot r with identical rights. The source
// must carry the grant right.
func (cs *CSpace) Copy(r Ref) (Ref, error) {
	return cs.Mint(r, 0xff) // 0xff: keep all current rights
}

// Mint duplicates the capability in slot r with reduced rights (a subset of
// the source's). Pass 0xff to keep the source rights unchanged.
func (cs *CSpace) Mint(r Ref, rights Rights) (Ref, error) {
	n, ok := cs.slots[r]
	if !ok {
		return NilRef, ErrBadRef
	}
	if n.cap.Rights&CanGrant == 0 {
		return NilRef, ErrNoGrant
	}
	if rights == 0xff {
		rights = n.cap.Rights
	}
	if rights&^n.cap.Rights != 0 {
		return NilRef, ErrRightsGrow
	}
	child := &node{cap: n.cap, parent: n, isCopy: true}
	child.cap.Rights = rights
	n.children = append(n.children, child)
	return cs.insert(child), nil
}

// Delete removes the capability in slot r. Its children (if any) are
// re-parented to r's parent, preserving revocation reachability.
func (cs *CSpace) Delete(r Ref) error {
	n, ok := cs.slots[r]
	if !ok {
		return ErrBadRef
	}
	for _, c := range n.children {
		c.parent = n.parent
		if n.parent != nil {
			n.parent.children = append(n.parent.children, c)
		}
	}
	if n.parent != nil {
		n.parent.children = removeChild(n.parent.children, n)
	}
	delete(cs.slots, r)
	return nil
}

// Revoke deletes every capability derived from slot r (copies and retypes,
// transitively), leaving r itself live. It returns the number removed.
func (cs *CSpace) Revoke(r Ref) (int, error) {
	n, ok := cs.slots[r]
	if !ok {
		return 0, ErrBadRef
	}
	removed := 0
	var kill func(*node)
	kill = func(x *node) {
		for _, c := range x.children {
			kill(c)
		}
		x.children = nil
		delete(cs.slots, x.ref)
		removed++
	}
	for _, c := range n.children {
		kill(c)
	}
	n.children = nil
	return removed, nil
}

// Refs returns the live slot references in ascending order.
func (cs *CSpace) Refs() []Ref {
	out := make([]Ref, 0, len(cs.slots))
	for r := range cs.slots {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns the live capabilities sorted by base address (copies included).
func (cs *CSpace) All() []Capability {
	out := make([]Capability, 0, len(cs.slots))
	for _, n := range cs.slots {
		out = append(out, n.cap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Base != out[j].Base {
			return out[i].Base < out[j].Base
		}
		return out[i].Type < out[j].Type
	})
	return out
}

func removeChild(list []*node, target *node) []*node {
	for i, c := range list {
		if c == target {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// ConflictCheck audits a set of capability spaces (typically one per core)
// for the cross-core typing hazard of §4.7: a writable Frame overlapping a
// PageTable, Dispatcher or CNode object, or two different-type non-RAM
// capabilities over the same memory. It returns nil when the system is
// consistent.
func ConflictCheck(spaces ...*CSpace) error {
	type entry struct {
		cap   Capability
		owner string
	}
	var all []entry
	for _, cs := range spaces {
		for _, c := range cs.All() {
			if c.Type == Null || c.Type == RAM || c.Type == IRQ {
				continue // untyped and non-memory caps cannot conflict
			}
			all = append(all, entry{c, cs.owner})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].cap.Base < all[j].cap.Base })
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if b.cap.Base >= a.cap.End() {
				break // sorted: no further overlaps with a
			}
			if !a.cap.Overlaps(b.cap) {
				continue
			}
			sameObject := a.cap.Base == b.cap.Base && a.cap.Bytes == b.cap.Bytes && a.cap.Type == b.cap.Type && a.cap.Level == b.cap.Level
			if sameObject {
				continue // replicas/copies of one object are fine
			}
			return fmt.Errorf("caps: %s in %s conflicts with %s in %s",
				a.cap, a.owner, b.cap, b.owner)
		}
	}
	return nil
}
