package check

import (
	"testing"

	"multikernel/internal/trace"
)

// hand-built histories: r = complete read, w = complete write, times chosen
// so the real-time order is unambiguous where it matters.
func read(key, val uint64, found bool, inv, res uint64) KVOp {
	return KVOp{Key: key, RVal: val, RFound: found, Inv: inv, Res: res, Done: true}
}
func write(key, val uint64, inv, res uint64) KVOp {
	return KVOp{Key: key, Write: true, Val: val, Applied: true, Inv: inv, Res: res, Done: true}
}

func assertOK(t *testing.T, hist []KVOp, init map[uint64]uint64) {
	t.Helper()
	if v := CheckLinearizable(hist, init); len(v) != 0 {
		t.Errorf("valid history rejected: %v", v)
	}
}

func assertBad(t *testing.T, hist []KVOp, init map[uint64]uint64) {
	t.Helper()
	if v := CheckLinearizable(hist, init); len(v) == 0 {
		t.Errorf("invalid history accepted: %v", hist)
	}
}

func TestLinearizeSequentialHistory(t *testing.T) {
	init := map[uint64]uint64{1: 10}
	assertOK(t, []KVOp{
		read(1, 10, true, 0, 5),
		write(1, 20, 10, 15),
		read(1, 20, true, 20, 25),
	}, init)
}

func TestLinearizeStaleReadRejected(t *testing.T) {
	init := map[uint64]uint64{1: 10}
	// The write completed before the read was invoked, so the read may not
	// return the old value.
	assertBad(t, []KVOp{
		write(1, 20, 0, 5),
		read(1, 10, true, 10, 15),
	}, init)
}

func TestLinearizeConcurrentReadsEitherOrder(t *testing.T) {
	init := map[uint64]uint64{1: 10}
	// Both reads overlap the write; one sees the old value, one the new.
	assertOK(t, []KVOp{
		write(1, 20, 0, 30),
		read(1, 10, true, 5, 25),
		read(1, 20, true, 6, 26),
	}, init)
}

func TestLinearizeLostUpdateRejected(t *testing.T) {
	init := map[uint64]uint64{1: 10}
	// Two sequential writes, then a read of the first write's value: the
	// second write's effect was lost.
	assertBad(t, []KVOp{
		write(1, 20, 0, 5),
		write(1, 30, 10, 15),
		read(1, 20, true, 20, 25),
	}, init)
}

func TestLinearizeIncompleteWriteMayTakeEffect(t *testing.T) {
	init := map[uint64]uint64{1: 10}
	pending := KVOp{Key: 1, Write: true, Val: 20, Inv: 0} // no response
	// A later read may see the pending write's value...
	assertOK(t, []KVOp{pending, read(1, 20, true, 10, 15)}, init)
	// ...or not.
	assertOK(t, []KVOp{pending, read(1, 10, true, 10, 15)}, init)
	// But it cannot see it and then un-see it.
	assertBad(t, []KVOp{
		pending,
		read(1, 20, true, 10, 15),
		read(1, 10, true, 20, 25),
	}, init)
}

func TestLinearizeMissingKey(t *testing.T) {
	// Reads of an absent key report not-found; an update of it is a no-op
	// that reports Applied=false.
	hist := []KVOp{
		read(9, 0, false, 0, 5),
		{Key: 9, Write: true, Val: 7, Applied: false, Inv: 10, Res: 15, Done: true},
		read(9, 0, false, 20, 25),
	}
	assertOK(t, hist, map[uint64]uint64{})
}

func TestExtractKVHistory(t *testing.T) {
	id := func(serial, key uint64) uint64 { return serial<<20 | key }
	events := []trace.Event{
		{At: 10, Kind: trace.AsyncBegin, Sub: trace.SubApp, Name: "kv.update", ID: id(1, 3), Arg: 42},
		{At: 12, Kind: trace.AsyncBegin, Sub: trace.SubApp, Name: "kv.select", ID: id(2, 3), Arg: 0},
		{At: 20, Kind: trace.AsyncEnd, Sub: trace.SubApp, Name: "kv.update", ID: id(1, 3), Arg: 1},
		{At: 25, Kind: trace.AsyncEnd, Sub: trace.SubApp, Name: "kv.select", ID: id(2, 3), Arg: 2*42 + 1},
		{At: 30, Kind: trace.AsyncBegin, Sub: trace.SubApp, Name: "kv.select", ID: id(3, 5), Arg: 0},
	}
	hist := ExtractKVHistory(events)
	if len(hist) != 3 {
		t.Fatalf("got %d ops, want 3: %v", len(hist), hist)
	}
	w, r, open := hist[0], hist[1], hist[2]
	if !w.Write || w.Key != 3 || w.Val != 42 || !w.Applied || w.Inv != 10 || w.Res != 20 || !w.Done {
		t.Errorf("bad write op: %+v", w)
	}
	if r.Write || r.Key != 3 || r.RVal != 42 || !r.RFound || r.Inv != 12 || r.Res != 25 {
		t.Errorf("bad read op: %+v", r)
	}
	if open.Done || open.Key != 5 {
		t.Errorf("bad open op: %+v", open)
	}
	if v := CheckLinearizable(hist, map[uint64]uint64{3: 7}); len(v) != 0 {
		t.Errorf("extracted history should linearize: %v", v)
	}
}
