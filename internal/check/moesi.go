package check

import (
	"fmt"
	"math/bits"

	"multikernel/internal/cache"
	"multikernel/internal/memory"
	"multikernel/internal/topo"
)

// MOESIChecker is a cache.Audit hook that shadows the directory and validates
// every transition against the MOESI invariants the simulator is supposed to
// preserve:
//
//   - single owner: at most one core owns a line, and the owner holds it;
//   - no stale read: a fill is never served from memory while some cache
//     holds the line dirty (the dirty copy is the only current one);
//   - probe conservation: a write upgrade probes exactly the other sharers
//     it invalidates, and leaves the writer as the sole holder/owner;
//   - store isolation: a line is dirtied only by its owner, only after every
//     other copy has been invalidated;
//   - continuity: every directory mutation arrives through the audit hook
//     (the before-image of each transition must equal the shadow copy).
//
// Violations are collected, not fatal, so a perturbed run reports every
// failure it encounters.
type MOESIChecker struct {
	shadow map[memory.LineID]cache.LineView
	viol   []Violation
}

// NewMOESIChecker returns an empty checker; install with sys.SetAudit.
func NewMOESIChecker() *MOESIChecker {
	return &MOESIChecker{shadow: make(map[memory.LineID]cache.LineView)}
}

func (mc *MOESIChecker) fail(id memory.LineID, r cache.Reason, format string, args ...any) {
	msg := fmt.Sprintf("line %d %s: ", id, r) + fmt.Sprintf(format, args...)
	mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: msg})
}

// Transition implements cache.Audit.
func (mc *MOESIChecker) Transition(id memory.LineID, r cache.Reason, core topo.CoreID, before, after cache.LineView, probes int) {
	if sv, ok := mc.shadow[id]; ok && sv != before {
		mc.fail(id, r, "shadow divergence: directory mutated outside audit (shadow %+v, before %+v)", sv, before)
	}
	mc.shadow[id] = after

	if after.Owner >= 0 && after.Holders&(1<<uint(after.Owner)) == 0 {
		mc.fail(id, r, "owner %d is not a holder (holders %#x)", after.Owner, after.Holders)
	}
	if after.Dirty && after.Owner < 0 {
		mc.fail(id, r, "dirty line with no owner")
	}

	switch r {
	case cache.AuditFillMem, cache.AuditFillShared:
		if before.Dirty {
			mc.fail(id, r, "stale read: core %d filled from memory while owner %d holds the line dirty", core, before.Owner)
		}
	case cache.AuditFillOwner:
		if before.Owner < 0 {
			mc.fail(id, r, "owner-forwarded fill with no owner")
		} else if before.Owner == core {
			mc.fail(id, r, "core %d forwarded the line to itself", core)
		}
	case cache.AuditUpgrade:
		want := bits.OnesCount64(before.Holders &^ (1 << uint(core)))
		if probes != want {
			mc.fail(id, r, "probe conservation: invalidated %d sharers, sent %d probes", want, probes)
		}
		if after.Holders != 1<<uint(core) || after.Owner != core {
			mc.fail(id, r, "core %d upgraded but is not sole holder/owner (holders %#x, owner %d)", core, after.Holders, after.Owner)
		}
	case cache.AuditDirty:
		if before.Owner != core {
			mc.fail(id, r, "core %d dirtied a line owned by %d", core, before.Owner)
		}
		if before.Holders&^(1<<uint(core)) != 0 {
			mc.fail(id, r, "core %d dirtied the line with live sharers %#x", core, before.Holders)
		}
	}
}

// Finish runs the end-of-run sweep: the real directory must match the shadow
// (nothing mutated a line without reporting it) and obey the steady-state
// invariants. It returns every violation collected during the run plus any
// found by the sweep. Call only after the engine has quiesced.
func (mc *MOESIChecker) Finish(sys *cache.System) []Violation {
	sys.ForEachLine(func(id memory.LineID, v cache.LineView) {
		if sv, ok := mc.shadow[id]; ok && sv != v {
			mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: fmt.Sprintf(
				"line %d final sweep: shadow %+v != directory %+v", id, sv, v)})
		}
		if v.Owner >= 0 && v.Holders&(1<<uint(v.Owner)) == 0 {
			mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: fmt.Sprintf(
				"line %d final sweep: owner %d not a holder (holders %#x)", id, v.Owner, v.Holders)})
		}
		if v.Dirty && v.Owner < 0 {
			mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: fmt.Sprintf(
				"line %d final sweep: dirty with no owner", id)})
		}
	})
	return mc.viol
}
