package check

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/memory"
	"multikernel/internal/topo"
)

// MOESIChecker is a cache.Audit hook that shadows the directory and validates
// every transition against the MOESI invariants the simulator is supposed to
// preserve:
//
//   - single owner: at most one core owns a line, and the owner holds it;
//   - no stale read: a fill is never served from memory while some cache
//     holds the line dirty (the dirty copy is the only current one);
//   - probe conservation: a write upgrade probes exactly the other sharers
//     it invalidates (under a broadcast-snoop cost model, every remote
//     socket), and leaves the writer as the sole holder/owner;
//   - store isolation: a line is dirtied only by its owner, only after every
//     other copy has been invalidated;
//   - continuity: every directory mutation arrives through the audit hook
//     (the before-image of each transition must equal the shadow copy).
//
// Violations are collected, not fatal, so a perturbed run reports every
// failure it encounters.
type MOESIChecker struct {
	shadow map[memory.LineID]cache.LineView
	viol   []Violation

	// bcastProbes, when ≥ 0, is the fixed probe fan-out of every upgrade on
	// a broadcast-snoop machine (NSockets-1); -1 means probes must equal the
	// actual sharer count (directory mode and the paper machines).
	bcastProbes int
	// dirCheck, when set, cross-checks the home-node sharer bitmaps against
	// the shadow directory in Finish — the directory-protocol half of the
	// oracle.
	dirCheck bool
}

// NewMOESIChecker returns an empty checker; install with sys.SetAudit.
func NewMOESIChecker() *MOESIChecker {
	return &MOESIChecker{shadow: make(map[memory.LineID]cache.LineView), bcastProbes: -1}
}

// Bind adapts the checker to the system's coherence mode: broadcast on a
// machine with a per-socket snoop cost probes every remote socket regardless
// of sharer count, while directory mode must probe exactly the home node's
// sharer bitmap — which Finish then cross-checks against the shadow. Call
// after sys.SetMode, before the workload runs.
func (mc *MOESIChecker) Bind(sys *cache.System) {
	m := sys.Machine()
	switch sys.Mode() {
	case cache.Broadcast:
		if m.Costs.SnoopPerSocket > 0 {
			mc.bcastProbes = m.NSockets - 1
		}
	case cache.Directory:
		mc.dirCheck = true
	}
}

func (mc *MOESIChecker) fail(id memory.LineID, r cache.Reason, format string, args ...any) {
	msg := fmt.Sprintf("line %d %s: ", id, r) + fmt.Sprintf(format, args...)
	mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: msg})
}

// Transition implements cache.Audit.
func (mc *MOESIChecker) Transition(id memory.LineID, r cache.Reason, core topo.CoreID, before, after cache.LineView, probes int) {
	if sv, ok := mc.shadow[id]; ok && sv != before {
		mc.fail(id, r, "shadow divergence: directory mutated outside audit (shadow %+v, before %+v)", sv, before)
	}
	mc.shadow[id] = after

	if after.Owner >= 0 && !after.Holders.Has(after.Owner) {
		mc.fail(id, r, "owner %d is not a holder (holders %v)", after.Owner, after.Holders)
	}
	if after.Dirty && after.Owner < 0 {
		mc.fail(id, r, "dirty line with no owner")
	}

	switch r {
	case cache.AuditFillMem, cache.AuditFillShared:
		if before.Dirty {
			mc.fail(id, r, "stale read: core %d filled from memory while owner %d holds the line dirty", core, before.Owner)
		}
	case cache.AuditFillOwner:
		if before.Owner < 0 {
			mc.fail(id, r, "owner-forwarded fill with no owner")
		} else if before.Owner == core {
			mc.fail(id, r, "core %d forwarded the line to itself", core)
		}
	case cache.AuditUpgrade:
		want := mc.bcastProbes
		if want < 0 {
			sharers := before.Holders
			sharers.Del(core)
			want = sharers.Count()
		}
		if probes != want {
			mc.fail(id, r, "probe conservation: invalidated %d sharers, sent %d probes", want, probes)
		}
		if !after.Holders.Only(core) || after.Owner != core {
			mc.fail(id, r, "core %d upgraded but is not sole holder/owner (holders %v, owner %d)", core, after.Holders, after.Owner)
		}
	case cache.AuditDirty:
		if before.Owner != core {
			mc.fail(id, r, "core %d dirtied a line owned by %d", core, before.Owner)
		}
		if before.Holders.HasOther(core) {
			mc.fail(id, r, "core %d dirtied the line with live sharers %v", core, before.Holders)
		}
	}
}

// Finish runs the end-of-run sweep: the real directory must match the shadow
// (nothing mutated a line without reporting it) and obey the steady-state
// invariants; in directory mode every home node's sharer bitmap must equal
// the shadow's holder set (the targeted-probe protocol consulted exactly the
// state the audited transitions built). It returns every violation collected
// during the run plus any found by the sweep. Call only after the engine has
// quiesced.
func (mc *MOESIChecker) Finish(sys *cache.System) []Violation {
	sys.ForEachLine(func(id memory.LineID, v cache.LineView) {
		if sv, ok := mc.shadow[id]; ok && sv != v {
			mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: fmt.Sprintf(
				"line %d final sweep: shadow %+v != directory %+v", id, sv, v)})
		}
		if v.Owner >= 0 && !v.Holders.Has(v.Owner) {
			mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: fmt.Sprintf(
				"line %d final sweep: owner %d not a holder (holders %v)", id, v.Owner, v.Holders)})
		}
		if v.Dirty && v.Owner < 0 {
			mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: fmt.Sprintf(
				"line %d final sweep: dirty with no owner", id)})
		}
	})
	if mc.dirCheck {
		for id, sv := range mc.shadow {
			if hs := sys.HomeSharers(id); hs != sv.Holders {
				mc.viol = append(mc.viol, Violation{Checker: "moesi", Msg: fmt.Sprintf(
					"line %d directory sweep: home sharer bitmap %v != shadow holders %v", id, hs, sv.Holders)})
			}
		}
	}
	return mc.viol
}
