package check

import (
	"fmt"
	"strconv"
	"strings"

	"multikernel/internal/sim"
)

// Perturbation is one recorded scheduling decision: the event created by
// engine schedule call N (its dispatch sequence number) was delayed by Jitter
// extra cycles and demoted to tie-break class Pri. A run's applied
// perturbation list is a complete, replayable description of how that run
// diverged from the unperturbed schedule — replaying the list on a fresh
// engine with the same seed reproduces the run exactly, which is what makes
// delta-debugging shrinkage (Shrink) possible.
type Perturbation struct {
	N      uint64   // schedule-call sequence number the perturbation applies to
	Jitter sim.Time // extra delay added to the event
	Pri    uint64   // tie-break demotion class (0 = unperturbed)
}

func (pt Perturbation) String() string {
	return fmt.Sprintf("%d:%d:%d", pt.N, pt.Jitter, pt.Pri)
}

// gapMax bounds the spacing between generated perturbations, in schedule
// calls. Spreading a depth-D budget across the run (instead of burning it on
// the first D events, which are all boot-time spawns) is what lets a small
// depth reach interesting interleavings deep in a workload.
const gapMax = 1024

// Perturber drives a sim.Engine's perturbation hook. In generative mode it
// draws seeded random perturbations, recording each one it applies; in replay
// mode it applies exactly a given script. Install with e.SetPerturb(pb.Hook).
type Perturber struct {
	rng       *sim.RNG
	depth     int
	maxJitter sim.Time
	nextAt    uint64
	script    map[uint64]Perturbation // non-nil: replay mode
	applied   []Perturbation
}

// NewPerturber returns a generative perturber that applies at most depth
// perturbations with jitters in [1, maxJitter].
func NewPerturber(seed uint64, depth int, maxJitter sim.Time) *Perturber {
	if maxJitter < 1 {
		maxJitter = 1
	}
	pb := &Perturber{rng: sim.NewRNG(seed ^ 0x7065727475726221), depth: depth, maxJitter: maxJitter}
	pb.nextAt = 1 + pb.rng.Uint64()%gapMax
	return pb
}

// Replay returns a perturber that applies exactly the given script and
// nothing else. An empty (non-nil) script yields an unperturbed run.
func Replay(script []Perturbation) *Perturber {
	m := make(map[uint64]Perturbation, len(script))
	for _, pt := range script {
		m[pt.N] = pt
	}
	return &Perturber{script: m}
}

// Hook is the sim.PerturbFunc to install on the engine under test.
func (pb *Perturber) Hook(now, delay sim.Time, seq uint64) (sim.Time, uint64) {
	if pb.script != nil {
		pt, ok := pb.script[seq]
		if !ok {
			return 0, 0
		}
		pb.applied = append(pb.applied, pt)
		return pt.Jitter, pt.Pri
	}
	if len(pb.applied) >= pb.depth || seq < pb.nextAt {
		return 0, 0
	}
	pb.nextAt = seq + 1 + pb.rng.Uint64()%gapMax
	pt := Perturbation{N: seq}
	switch pb.rng.Uint64() % 3 {
	case 0:
		pt.Jitter = 1 + pb.rng.Time(pb.maxJitter)
	case 1:
		pt.Pri = 1 + pb.rng.Uint64()%7
	default:
		pt.Jitter = 1 + pb.rng.Time(pb.maxJitter)
		pt.Pri = 1 + pb.rng.Uint64()%7
	}
	pb.applied = append(pb.applied, pt)
	return pt.Jitter, pt.Pri
}

// Applied returns the perturbations this perturber actually applied, in
// schedule order. In replay mode entries the run never reached are absent.
func (pb *Perturber) Applied() []Perturbation {
	out := make([]Perturbation, len(pb.applied))
	copy(out, pb.applied)
	return out
}

// FormatScript renders a perturbation list as "N:jitter:pri,...", the form
// mkcheck prints for reproduction and accepts via -replay.
func FormatScript(script []Perturbation) string {
	if len(script) == 0 {
		return "none"
	}
	parts := make([]string, len(script))
	for i, pt := range script {
		parts[i] = pt.String()
	}
	return strings.Join(parts, ",")
}

// ParseScript inverts FormatScript.
func ParseScript(s string) ([]Perturbation, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return []Perturbation{}, nil
	}
	var out []Perturbation
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(part, ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("check: bad perturbation %q (want N:jitter:pri)", part)
		}
		n, err1 := strconv.ParseUint(f[0], 10, 64)
		j, err2 := strconv.ParseUint(f[1], 10, 64)
		p, err3 := strconv.ParseUint(f[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("check: bad perturbation %q", part)
		}
		out = append(out, Perturbation{N: n, Jitter: sim.Time(j), Pri: p})
	}
	return out, nil
}
