package check

import (
	"fmt"
	"sort"

	"multikernel/internal/trace"
)

// KVOp is one client-observed kvstore operation, reconstructed from the
// kv.select / kv.update async spans in a trace. Inv and Res are the
// invocation and response times in virtual cycles; an op whose span never
// ended (client killed, horizon reached) has Done=false and may or may not
// have taken effect.
type KVOp struct {
	Key     uint64
	Write   bool
	Val     uint64 // write: value sent
	RVal    uint64 // read: value returned
	RFound  bool   // read: key present
	Applied bool   // write: service reported the key existed and was updated
	Inv     uint64
	Res     uint64
	Done    bool
}

func (op KVOp) String() string {
	if op.Write {
		if !op.Done {
			return fmt.Sprintf("update(%d,%d)@%d..?", op.Key, op.Val, op.Inv)
		}
		return fmt.Sprintf("update(%d,%d)=%v@%d..%d", op.Key, op.Val, op.Applied, op.Inv, op.Res)
	}
	if !op.Done {
		return fmt.Sprintf("select(%d)@%d..?", op.Key, op.Inv)
	}
	return fmt.Sprintf("select(%d)=(%d,%v)@%d..%d", op.Key, op.RVal, op.RFound, op.Inv, op.Res)
}

const kvKeyMask = 1<<20 - 1 // span ID is serial<<20|key

// ExtractKVHistory rebuilds the operation history from a trace. The span ID
// carries a unique serial plus the key; select ends encode 2*val+found,
// update begins carry the value and update ends the applied flag.
func ExtractKVHistory(events []trace.Event) []KVOp {
	open := make(map[uint64]*KVOp)
	var order []uint64 // span IDs in invocation order
	for _, ev := range events {
		if ev.Sub != trace.SubApp || (ev.Name != "kv.select" && ev.Name != "kv.update") {
			continue
		}
		switch ev.Kind {
		case trace.AsyncBegin:
			op := &KVOp{Key: ev.ID & kvKeyMask, Inv: ev.At}
			if ev.Name == "kv.update" {
				op.Write = true
				op.Val = ev.Arg
			}
			open[ev.ID] = op
			order = append(order, ev.ID)
		case trace.AsyncEnd:
			op := open[ev.ID]
			if op == nil {
				continue // end without begin: tracing enabled mid-run
			}
			op.Done = true
			op.Res = ev.At
			if op.Write {
				op.Applied = ev.Arg == 1
			} else {
				op.RVal = ev.Arg >> 1
				op.RFound = ev.Arg&1 == 1
			}
		}
	}
	hist := make([]KVOp, 0, len(order))
	for _, id := range order {
		hist = append(hist, *open[id])
	}
	return hist
}

// CheckLinearizable decides whether a kvstore history is linearizable with
// respect to a per-key register initialized from init (keys absent from init
// read as not-found). Every operation touches a single key, so by locality
// the full history is linearizable iff each key's subhistory is; each key is
// checked independently with a Wing & Gong style search: repeatedly pick a
// minimal operation (one invoked before every pending completed operation's
// response), apply it to the model register, and backtrack on mismatch.
// Incomplete operations may linearize at any point after their invocation or
// never take effect at all; incomplete reads constrain nothing and are
// dropped. States are memoized on (applied-set, register value), keeping the
// search polynomial on the well-behaved histories the workloads generate.
func CheckLinearizable(hist []KVOp, init map[uint64]uint64) []Violation {
	byKey := make(map[uint64][]KVOp)
	for _, op := range hist {
		if !op.Done && !op.Write {
			continue
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	keys := make([]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var viol []Violation
	for _, k := range keys {
		ops := byKey[k]
		if len(ops) > 63 {
			viol = append(viol, Violation{Checker: "linearize", Msg: fmt.Sprintf(
				"key %d: %d ops exceeds the 63-op search bound; shrink the workload", k, len(ops))})
			continue
		}
		initVal, present := init[k]
		if !linearizeKey(ops, initVal, present) {
			viol = append(viol, Violation{Checker: "linearize", Msg: fmt.Sprintf(
				"key %d: history not linearizable: %v", k, ops)})
		}
	}
	return viol
}

type regState struct {
	mask    uint64 // set of linearized ops
	val     uint64
	present bool
}

func linearizeKey(ops []KVOp, initVal uint64, present bool) bool {
	var complete uint64
	for i, op := range ops {
		if op.Done {
			complete |= 1 << uint(i)
		}
	}
	memo := make(map[regState]bool)
	var search func(mask, val uint64, pres bool) bool
	search = func(mask, val uint64, pres bool) bool {
		if mask&complete == complete {
			return true // every completed op linearized; pending writes may simply never take effect
		}
		st := regState{mask, val, pres}
		if done, ok := memo[st]; ok {
			return done
		}
		memo[st] = false
		// A minimal op is one invoked before every other pending completed
		// op's response. Ops overlap freely; only a strict response-before-
		// invocation gap forces an order.
		minRes := ^uint64(0)
		for i, op := range ops {
			if mask&(1<<uint(i)) == 0 && op.Done && op.Res < minRes {
				minRes = op.Res
			}
		}
		for i, op := range ops {
			if mask&(1<<uint(i)) != 0 || op.Inv > minRes {
				continue
			}
			nv, np := val, pres
			if op.Write {
				applied := pres // the model: update hits iff the key is present
				if op.Done && op.Applied != applied {
					continue // observed outcome contradicts the model here
				}
				if applied {
					nv = op.Val
				}
			} else {
				if op.RFound != pres || (pres && op.RVal != val) {
					continue // read observed a value the register never held here
				}
			}
			if search(mask|1<<uint(i), nv, np) {
				memo[st] = true
				return true
			}
		}
		return false
	}
	return search(0, initVal, present)
}
