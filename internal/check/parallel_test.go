package check

import (
	"fmt"
	"sort"
	"testing"

	"multikernel/internal/apps"
	"multikernel/internal/core"
	"multikernel/internal/interconnect"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// mergeByTime interleaves per-partition traces into one global scan order.
// Each recorder is already time-ordered; a stable sort on At keeps partition
// order as the tie-break, so the merge is deterministic. CheckTransport's
// forward scan then sees every channel's transmits (sender's replica) before
// the matching deliveries (receiver's replica, at least one lookahead later).
func mergeByTime(recs []*trace.Recorder) []trace.Event {
	var all []trace.Event
	for _, r := range recs {
		all = append(all, r.Events()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// The oracles must accept a ParallelEngine-booted system: the MOESI audit
// (including the AuditRemote transitions the cross-partition mirror path
// emits), the URPC transport invariants reconstructed across per-partition
// traces, and kvstore linearizability over clients on remote partitions —
// on the default schedule and under seeded per-partition perturbation.
func TestOraclesAcceptParallelBootedSystem(t *testing.T) {
	for _, perturbed := range []bool{false, true} {
		name := "default-schedule"
		if perturbed {
			name = "perturbed-schedule"
		}
		t.Run(name, func(t *testing.T) {
			const (
				seed    = 11
				rows    = 16
				opsPer  = 12
				horizon = sim.Time(200_000_000)
			)
			m := topo.AMD8x4()
			pm := topo.PerSocket(m)
			pe := sim.NewParallelEngine(pm.NParts(), interconnect.Lookahead(m, pm), seed, 2)
			defer pe.Close()

			recs := make([]*trace.Recorder, pm.NParts())
			for i := range recs {
				recs[i] = trace.NewRecorder()
				pe.Part(i).SetTracer(recs[i])
				if perturbed {
					// One perturber per partition engine: the hook state is
					// engine-local, so worker goroutines never share it.
					pe.Part(i).SetPerturb(NewPerturber(seed+uint64(i), 32, DefaultMaxJitter).Hook)
				}
			}
			ps := core.BootParallel(pe, m, core.Options{})

			mcs := make([]*MOESIChecker, pm.NParts())
			ps.Each(func(part int, s *core.System) {
				mcs[part] = NewMOESIChecker()
				s.Cache.SetAudit(mcs[part])
			})

			// kvstore service on core 0 (partition 0), clients on cores 4 and
			// 8 (partitions 1 and 2): every request and reply crosses a
			// partition boundary through the URPC mirror path.
			init := make(map[uint64]uint64, rows)
			for k := uint64(0); k < rows; k++ {
				init[k] = k*2654435761 + 1 // NewKVStore's seeding formula
			}
			clients := []topo.CoreID{4, 8}
			ps.Each(func(part int, s *core.System) {
				kv := apps.NewKVStore(s.Cache, 0, rows)
				svc := apps.NewKVService(s.Eng, kv)
				for ci, c := range clients {
					cl := svc.Connect(c)
					if !s.Cache.LocalCore(c) {
						continue
					}
					ci := ci
					s.Eng.Spawn(fmt.Sprintf("client%d", ci), func(p *sim.Proc) {
						for i := 0; i < opsPer; i++ {
							key := uint64((i*5 + ci) % rows)
							if i%2 == 0 {
								if _, err := cl.Update(p, key, uint64(ci+1)*1_000_000+uint64(i)); err != nil {
									t.Errorf("client %d update: %v", ci, err)
									return
								}
							} else {
								if _, _, err := cl.Select(p, key); err != nil {
									t.Errorf("client %d select: %v", ci, err)
									return
								}
							}
						}
					})
				}
			})

			pe.RunUntil(horizon)
			if dead := pe.Deadlocked(); len(dead) != 0 {
				t.Fatalf("deadlocked: %v", dead)
			}

			var viol []Violation
			ps.Each(func(part int, s *core.System) {
				viol = append(viol, mcs[part].Finish(s.Cache)...)
			})
			events := mergeByTime(recs)
			if len(events) == 0 {
				t.Fatal("no trace events recorded")
			}
			viol = append(viol, CheckTransport(events)...)
			viol = append(viol, CheckLinearizable(ExtractKVHistory(events), init)...)
			for _, v := range viol {
				t.Errorf("%s", v)
			}
		})
	}
}
