package check

import (
	"reflect"
	"testing"

	"multikernel/internal/apps"
	"multikernel/internal/urpc"
)

func mustPass(t *testing.T, r Result) {
	t.Helper()
	for _, v := range r.Violations {
		t.Errorf("%s seed %d: %s", r.Workload, r.Seed, v)
	}
}

// Every workload must pass all checkers on the default (unperturbed,
// fault-free) schedule.
func TestUnperturbedWorkloadsPass(t *testing.T) {
	for _, name := range WorkloadNames() {
		mustPass(t, RunOne(RunConfig{Workload: name, Seed: 1}))
	}
}

// A short perturbed sweep with faults armed: the protocols must uphold their
// invariants on every explored schedule. This is the in-repo slice of the CI
// mkcheck job.
func TestPerturbedFaultySweepPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, r := range Run(Config{Seeds: []uint64{1, 2, 3}, Depth: 32, Faults: true}) {
		mustPass(t, r)
	}
}

// Replaying a generative run's applied perturbation list must reproduce the
// run exactly — the property the shrinker depends on.
func TestReplayReproducesGenerativeRun(t *testing.T) {
	gen := RunOne(RunConfig{Workload: "urpc", Seed: 7, Depth: 24})
	mustPass(t, gen)
	if len(gen.Applied) == 0 {
		t.Fatal("generative run applied no perturbations; depth budget never spent")
	}
	rep := RunOne(RunConfig{Workload: "urpc", Seed: 7, Script: gen.Applied})
	if rep.TraceHash != gen.TraceHash {
		t.Fatalf("replay diverged: trace hash %#x vs %#x", rep.TraceHash, gen.TraceHash)
	}
	if !reflect.DeepEqual(rep.Applied, gen.Applied) {
		t.Fatalf("replay applied %v, generative run applied %v", rep.Applied, gen.Applied)
	}
}

// The checker must cost nothing when disabled: a run with no perturber
// installed and a run replaying the empty script are byte-identical.
func TestEmptyReplayIsByteIdentical(t *testing.T) {
	for _, name := range WorkloadNames() {
		bare := RunOne(RunConfig{Workload: name, Seed: 5})                          // no hook installed
		empty := RunOne(RunConfig{Workload: name, Seed: 5, Script: []Perturbation{}}) // hook installed, no-op
		if bare.TraceHash != empty.TraceHash || bare.Events != empty.Events {
			t.Errorf("%s: empty-script replay diverged from hook-free run (%d/%#x vs %d/%#x)",
				name, empty.Events, empty.TraceHash, bare.Events, bare.TraceHash)
		}
	}
}

// Acceptance demo: a deliberately planted ack-overpublication defect (the
// receiver publishes progress one message beyond what it consumed) must be
// caught by the transport checker and shrink to a minimal repro of at most 5
// perturbations. The defect fires on every schedule, so the shrinker should
// strip the script to (near) nothing.
func TestAckOverpublishCaughtAndShrunk(t *testing.T) {
	cfg := RunConfig{Workload: "urpc", Seed: 1, Depth: 24, Mutate: urpc.MutAckOverpublish}
	r := RunOne(cfg)
	found := false
	for _, v := range r.Violations {
		if v.Checker == "transport" {
			found = true
		}
	}
	if !found {
		t.Fatalf("transport checker missed the planted ack overpublication; got %v", r.Violations)
	}
	min := Shrink(cfg, r.Applied)
	if len(min) > 5 {
		t.Fatalf("shrunk repro has %d perturbations, want <= 5: %s", len(min), FormatScript(min))
	}
	rep := RunOne(RunConfig{Workload: "urpc", Seed: 1, Script: min, Mutate: urpc.MutAckOverpublish})
	if !rep.Failed() {
		t.Fatal("minimal script no longer reproduces the violation")
	}
}

// The replication ack-drop defect (primary acks the client without
// replicating) must surface as a linearizability violation once the primary
// is killed: the acked write exists on no surviving replica, so post-failover
// reads observe its absence. The shrunk script must still reproduce — this is
// the kv-failover analogue of the transport's ack-overpublication self-test,
// and the proof that the oracle actually guards the no-lost-write claim.
func TestKVFailoverAckDropCaughtAndShrunk(t *testing.T) {
	cfg := RunConfig{Workload: "kvfailover", Seed: 2, Depth: 24, KVMut: apps.KVMutAckDrop}
	r := RunOne(cfg)
	found := false
	for _, v := range r.Violations {
		if v.Checker == "linearize" {
			found = true
		}
	}
	if !found {
		t.Fatalf("linearizability checker missed the planted replication ack drop; got %v", r.Violations)
	}
	min := Shrink(cfg, r.Applied)
	if len(min) > 5 {
		t.Fatalf("shrunk repro has %d perturbations, want <= 5: %s", len(min), FormatScript(min))
	}
	rep := RunOne(RunConfig{Workload: "kvfailover", Seed: 2, Script: min, KVMut: apps.KVMutAckDrop})
	if !rep.Failed() {
		t.Fatal("minimal script no longer reproduces the violation")
	}
}

// A lost parked-receiver wakeup (MutDropNotify) must surface as a liveness
// violation: the receiver parks in RecvWindow and the messages it is owed
// never arrive.
func TestDropNotifyCaughtByLiveness(t *testing.T) {
	r := RunOne(RunConfig{Workload: "urpc", Seed: 1, Mutate: urpc.MutDropNotify})
	for _, v := range r.Violations {
		if v.Checker == "liveness" {
			return
		}
	}
	t.Fatalf("lost wakeup not caught; violations: %v", r.Violations)
}

// The perturbation script round-trips through its text form, so a CI failure
// line can be pasted back into mkcheck -replay.
func TestScriptRoundTrip(t *testing.T) {
	in := []Perturbation{{N: 12, Jitter: 90, Pri: 0}, {N: 774, Jitter: 0, Pri: 3}}
	out, err := ParseScript(FormatScript(in))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v, err %v", out, err)
	}
	if empty, err := ParseScript("none"); err != nil || len(empty) != 0 || empty == nil {
		t.Fatalf("parsing the empty script: %v, err %v", empty, err)
	}
}
