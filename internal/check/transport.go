package check

import (
	"fmt"

	"multikernel/internal/trace"
)

// chanState is the transport checker's model of one URPC channel,
// reconstructed purely from trace events. Sequence numbers start at 1; all
// three counters are "highest seen", and the protocol invariants say they may
// only advance contiguously and in delivered ≤ sent, acked ≤ delivered order.
type chanState struct {
	slots     uint64 // ring capacity from the urpc.chan event; 0 = unknown
	sent      uint64 // highest transmitted seq (urpc.msg FlowOut)
	delivered uint64 // highest received seq (urpc.msg FlowIn)
	acked     uint64 // last published ack-line value (urpc.ack)
}

// CheckTransport validates the URPC transport invariants over a recorded
// trace. The recorder emits events in virtual-time order, so a single forward
// scan sees every channel's sends, deliveries and ack publications in the
// order the simulated cores performed them. Checked per channel:
//
//   - FIFO, exactly-once: deliveries are the contiguous sequence 1,2,3,...
//     with no gap, duplicate or reordering, and never outrun transmissions;
//   - no slot reuse before ack: a transmit of seq S overwrites the ring slot
//     that held S-slots, which is only safe once the receiver has published
//     an ack covering it (S ≤ acked + slots);
//   - ack conservation: the published ack never exceeds what was actually
//     delivered and never regresses (an over-published ack lets the sender
//     overwrite an unread slot — the planted MutAckOverpublish defect).
//
// Channels created before tracing was enabled have unknown capacity; the
// slot-reuse check is skipped for those, the rest still apply.
func CheckTransport(events []trace.Event) []Violation {
	chans := make(map[uint64]*chanState)
	get := func(id uint64) *chanState {
		st := chans[id]
		if st == nil {
			st = &chanState{}
			chans[id] = st
		}
		return st
	}
	var viol []Violation
	fail := func(id uint64, format string, args ...any) {
		msg := fmt.Sprintf("channel %d: ", id>>32) + fmt.Sprintf(format, args...)
		viol = append(viol, Violation{Checker: "transport", Msg: msg})
	}
	for _, ev := range events {
		if ev.Sub != trace.SubURPC {
			continue
		}
		switch ev.Name {
		case "urpc.chan":
			get(ev.ID).slots = ev.Arg
		case "urpc.msg":
			cid, seq := ev.ID&^uint64(0xffffffff), ev.ID&0xffffffff
			st := get(cid)
			switch ev.Kind {
			case trace.FlowOut:
				if seq != st.sent+1 {
					fail(cid, "transmit gap: seq %d after %d", seq, st.sent)
				}
				if seq > st.sent {
					st.sent = seq
				}
				if st.slots > 0 && seq > st.acked+st.slots {
					fail(cid, "slot reuse before ack: transmitting seq %d with ack at %d on a %d-slot ring",
						seq, st.acked, st.slots)
				}
			case trace.FlowIn:
				if seq != st.delivered+1 {
					fail(cid, "FIFO/exactly-once violation: delivered seq %d after %d", seq, st.delivered)
				}
				if seq > st.sent {
					fail(cid, "delivered seq %d was never transmitted (sent %d)", seq, st.sent)
				}
				if seq > st.delivered {
					st.delivered = seq
				}
			}
		case "urpc.ack":
			st := get(ev.ID)
			if ev.Arg > st.delivered {
				fail(ev.ID, "ack overpublished: ack line says %d delivered, receiver consumed %d", ev.Arg, st.delivered)
			}
			if ev.Arg < st.acked {
				fail(ev.ID, "ack regressed: %d after %d", ev.Arg, st.acked)
			}
			st.acked = ev.Arg
		}
	}
	return viol
}
