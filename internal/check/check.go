// Package check is the schedule-exploration model checker: it re-runs the
// simulator's workloads under seeded perturbations of the event queue
// (bounded tie-break reordering plus small wake jitter) and randomized fault
// schedules, and validates protocol-level invariants that plain unit tests
// pin only on the default schedule:
//
//   - MOESI coherence (moesi.go): a cache.Audit shadow directory checks
//     single-owner, no-stale-read and probe-conservation on every transition;
//   - URPC transport (transport.go): FIFO exactly-once delivery, no ring-slot
//     reuse before ack, and ack conservation, reconstructed from trace flows;
//   - kvstore linearizability (linearize.go): a Wing & Gong search over the
//     client-observed history extracted from kv.* trace spans.
//
// Every perturbation a run applies is recorded; a failing seed is shrunk by
// delta debugging (Shrink) to a minimal perturbation list that still fails,
// and the list round-trips through FormatScript/ParseScript so a CI failure
// is reproducible with `mkcheck -workloads W -replay S -seed N`.
package check

import (
	"fmt"

	"multikernel/internal/apps"
	"multikernel/internal/cache"
	"multikernel/internal/harness"
	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
	"multikernel/internal/urpc"
)

// Violation is one invariant failure found by a checker.
type Violation struct {
	Checker string // "moesi", "transport", "linearize", "liveness", "payload"
	Msg     string
}

func (v Violation) String() string { return v.Checker + ": " + v.Msg }

// RunConfig describes a single checked run.
type RunConfig struct {
	Workload  string
	Seed      uint64
	Depth     int           // max perturbations in generative mode; 0 = unperturbed
	MaxJitter sim.Time      // jitter bound; 0 = default (128 cycles)
	Faults    bool          // arm a seeded fault schedule
	Directory bool            // run under directory coherence instead of broadcast
	Script    []Perturbation  // non-nil: replay exactly this script instead of generating
	Mutate    urpc.Mutation   // plant a known transport defect (checker self-tests)
	KVMut     apps.KVMutation // plant a known replication defect (checker self-tests)
}

// Result is the outcome of one checked run.
type Result struct {
	Workload   string
	Seed       uint64
	Violations []Violation
	Applied    []Perturbation // perturbations actually applied, in schedule order
	Events     int            // trace events recorded (a cheap effort proxy)
	TraceHash  uint64         // FNV-1a over every trace event; equal hashes = identical runs
}

// Failed reports whether the run violated any invariant.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// DefaultMaxJitter bounds generated wake jitter: large enough to reorder
// same-cycle and near-cycle events, small enough not to distort gross timing.
const DefaultMaxJitter = 128

// RunOne executes one workload on a fresh engine under cfg's perturbations
// and faults, then runs every checker over the audit stream and trace.
func RunOne(cfg RunConfig) Result {
	wl, ok := findWorkload(cfg.Workload)
	if !ok {
		panic(fmt.Sprintf("check: unknown workload %q (have %v)", cfg.Workload, WorkloadNames()))
	}
	if cfg.MaxJitter == 0 {
		cfg.MaxJitter = DefaultMaxJitter
	}

	e := sim.NewEngine(cfg.Seed)
	defer e.Close()
	var pb *Perturber
	if cfg.Script != nil {
		pb = Replay(cfg.Script)
	} else if cfg.Depth > 0 {
		pb = NewPerturber(cfg.Seed, cfg.Depth, cfg.MaxJitter)
	}
	if pb != nil {
		e.SetPerturb(pb.Hook)
	}
	rec := trace.NewRecorder()
	e.SetTracer(rec)

	m := topo.AMD4x4()
	sys := cache.New(e, m, memory.New(m), interconnect.New(m))
	if cfg.Directory {
		sys.SetMode(cache.Directory)
	}
	mc := NewMOESIChecker()
	mc.Bind(sys)
	sys.SetAudit(mc)

	res := Result{Workload: cfg.Workload, Seed: cfg.Seed}
	viol, kvInit := wl.run(e, sys, cfg)
	res.Violations = append(res.Violations, viol...)
	res.Violations = append(res.Violations, mc.Finish(sys)...)
	events := rec.Events()
	res.Events = len(events)
	res.TraceHash = traceHash(events)
	res.Violations = append(res.Violations, CheckTransport(events)...)
	if kvInit != nil {
		res.Violations = append(res.Violations, CheckLinearizable(ExtractKVHistory(events), kvInit)...)
	}
	if pb != nil {
		res.Applied = pb.Applied()
	}
	return res
}

// traceHash folds a full trace into one FNV-1a word. Two runs with equal
// hashes executed the same virtual-time history event for event, which is how
// the tests pin "no perturber installed" and "replay of the empty script" to
// byte-identical behavior.
func traceHash(events []trace.Event) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	for _, ev := range events {
		mix(ev.At)
		mix(ev.ID)
		mix(ev.Arg)
		mix(uint64(ev.Kind)<<32 | uint64(ev.Sub)<<16 | uint64(uint16(ev.Core)))
		for i := 0; i < len(ev.Name); i++ {
			mix(uint64(ev.Name[i]))
		}
	}
	return h
}

// Config describes a sweep: the cross product of workloads and seeds.
type Config struct {
	Workloads []string // nil = all registered workloads
	Seeds     []uint64
	Depth     int
	MaxJitter sim.Time
	Faults    bool
	Directory bool // run every point under directory coherence
}

// Run executes the sweep, one engine per (workload, seed) pair, parallelized
// with harness.Map. Results are in deterministic (workload-major) order
// regardless of parallelism.
func Run(cfg Config) []Result {
	wls := cfg.Workloads
	if len(wls) == 0 {
		wls = WorkloadNames()
	}
	type job struct {
		wl   string
		seed uint64
	}
	var jobs []job
	for _, wl := range wls {
		for _, s := range cfg.Seeds {
			jobs = append(jobs, job{wl, s})
		}
	}
	return harness.Map(len(jobs), func(i int) Result {
		return RunOne(RunConfig{
			Workload:  jobs[i].wl,
			Seed:      jobs[i].seed,
			Depth:     cfg.Depth,
			MaxJitter: cfg.MaxJitter,
			Faults:    cfg.Faults,
			Directory: cfg.Directory,
		})
	})
}

// Shrink minimizes a failing run's perturbation script by delta debugging:
// starting from the full applied list, it re-runs the workload with chunks
// removed, keeping any reduction that still fails, halving the chunk size
// down to single perturbations. The returned script is 1-minimal — removing
// any single remaining perturbation makes the run pass — and is often empty
// when the underlying defect does not actually depend on the perturbations
// (a deterministic bug reached on every schedule).
func Shrink(cfg RunConfig, script []Perturbation) []Perturbation {
	fails := func(s []Perturbation) bool {
		c := cfg
		c.Script = s
		if c.Script == nil {
			c.Script = []Perturbation{}
		}
		return RunOne(c).Failed()
	}
	cur := append([]Perturbation(nil), script...)
	for chunk := len(cur); chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= len(cur); {
			cand := make([]Perturbation, 0, len(cur)-chunk)
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[lo+chunk:]...)
			if fails(cand) {
				cur = cand
			} else {
				lo += chunk
			}
		}
		if chunk == 1 {
			break
		}
	}
	return cur
}
