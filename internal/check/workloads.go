package check

import (
	"fmt"

	"multikernel/internal/apps"
	"multikernel/internal/cache"
	"multikernel/internal/caps"
	"multikernel/internal/fault"
	"multikernel/internal/kernel"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// A workload builds a system on a fresh engine, drives it to completion under
// whatever perturbations and faults the runner installed, and reports
// liveness violations (work that failed to complete by the horizon). The
// trace- and audit-based safety checkers run afterwards in RunOne; kvInit is
// the initial store contents for the linearizability checker (nil when the
// workload has no kvstore).
type workload struct {
	name string
	run  func(e *sim.Engine, sys *cache.System, cfg RunConfig) (viol []Violation, kvInit map[uint64]uint64)
}

var workloads = []workload{
	{"kv", runKVWorkload},
	{"kvfailover", runKVFailoverWorkload},
	{"urpc", runURPCWorkload},
	{"monitor", runMonitorWorkload},
}

// WorkloadNames lists the registered workloads in run order.
func WorkloadNames() []string {
	out := make([]string, len(workloads))
	for i, wl := range workloads {
		out[i] = wl.name
	}
	return out
}

func findWorkload(name string) (workload, bool) {
	for _, wl := range workloads {
		if wl.name == name {
			return wl, true
		}
	}
	return workload{}, false
}

// runKVWorkload drives three clients on three sockets through a mixed
// select/update script against a kvstore service on core 0, then hands the
// trace-reconstructed history to the linearizability checker. Every written
// value is unique ((client+1)*1e6 + op index), so the checker can tell every
// write's effect apart. Fault mode adds stalls and link degradations but no
// kills: the service core's death would void the completion guarantee this
// workload asserts.
func runKVWorkload(e *sim.Engine, sys *cache.System, cfg RunConfig) ([]Violation, map[uint64]uint64) {
	const (
		rows    = 32
		hotKeys = 4
		opsPer  = 8
		horizon = 120_000_000
	)
	kv := apps.NewKVStore(sys, 0, rows)
	init := make(map[uint64]uint64, rows)
	for k := uint64(0); k < rows; k++ {
		init[k] = k*2654435761 + 1 // NewKVStore's seeding formula
	}
	svc := apps.NewKVService(e, kv)

	type kvOp struct {
		write bool
		key   uint64
		val   uint64
	}
	rng := sim.NewRNG(cfg.Seed ^ 0x6b76776f726b21)
	clientCores := []topo.CoreID{1, 5, 10}
	scripts := make([][]kvOp, len(clientCores))
	for ci := range clientCores {
		for i := 0; i < opsPer; i++ {
			op := kvOp{key: uint64(rng.Intn(hotKeys))}
			if rng.Uint64()%2 == 0 {
				op.write = true
				op.val = uint64(ci+1)*1_000_000 + uint64(i)
			}
			scripts[ci] = append(scripts[ci], op)
		}
	}
	done := make([]bool, len(clientCores))
	for ci, core := range clientCores {
		cl := svc.Connect(core)
		script := scripts[ci]
		ci := ci
		e.Spawn(fmt.Sprintf("kvclient%d", ci), func(p *sim.Proc) {
			for _, op := range script {
				if op.write {
					if _, err := cl.Update(p, op.key, op.val); err != nil {
						return // service core is protected from kills; a verdict here fails liveness below
					}
				} else {
					if _, _, err := cl.Select(p, op.key); err != nil {
						return
					}
				}
			}
			done[ci] = true
		})
	}
	if cfg.Faults {
		spec := fault.Spec{
			Stalls: 2, LinkFaults: 2,
			Window:  [2]sim.Time{500_000, 40_000_000},
			Protect: []topo.CoreID{0, 1, 5, 10},
		}
		inj := fault.NewInjector(e, sys)
		inj.Arm(fault.Random(cfg.Seed^0x6b766661756c74, sys.Machine(), spec))
	}
	e.RunUntil(horizon)

	var viol []Violation
	for ci := range done {
		if !done[ci] {
			viol = append(viol, Violation{Checker: "liveness", Msg: fmt.Sprintf(
				"kv client %d (core %d) did not finish its script by the horizon", ci, clientCores[ci])})
		}
	}
	return viol, init
}

// runKVFailoverWorkload is the robustness counterpart of runKVWorkload: the
// kvstore is sharded over three server cores with two spares and one replica
// per shard beyond the primary, a seeded fault schedule ALWAYS kills one
// server mid-write-window (the kill is the workload, not an option), and the
// monitors' deadline detection drives promotion plus anti-entropy
// re-replication onto a spare. Three fault-aware clients write unique values
// through the kill and finish with a read pass over every hot key; the
// linearizability checker then proves no acknowledged write was lost across
// the fail-over. cfg.Faults layers stall and link noise on top; cfg.KVMut
// plants a replication defect (used by the self-tests to show the oracle
// catches a dropped replication ack).
func runKVFailoverWorkload(e *sim.Engine, sys *cache.System, cfg RunConfig) ([]Violation, map[uint64]uint64) {
	const (
		rows    = 16
		hotKeys = 8
		opsPer  = 10
		horizon = 150_000_000
	)
	m := sys.Machine()
	kern := kernel.NewSystem(e, m)
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	net := monitor.NewNetwork(e, sys, kern, kb, monitor.Hooks{})
	net.EnableFaultTolerance(100_000)

	servers := []topo.CoreID{2, 3, 6}
	spares := []topo.CoreID{8, 12}
	cluster := apps.NewKVCluster(e, sys, net, apps.ClusterConfig{
		Rows:    rows,
		Servers: servers,
		Spares:  spares,
		Mut:     cfg.KVMut,
	})
	cluster.StartFailureDetector(net, 0, 400_000)
	init := make(map[uint64]uint64, rows)
	for k := uint64(0); k < rows; k++ {
		init[k] = k*2654435761 + 1
	}

	// The kill lands inside the write window, so replication is in flight.
	// Clients, the heartbeat core and the spares are never the victim.
	rng := sim.NewRNG(cfg.Seed ^ 0x6b766661696c6f)
	inj := fault.NewInjector(e, sys)
	inj.OnKill(func(c topo.CoreID) {
		cluster.KillCore(c)
		net.FailStop(c)
	})
	sched := &fault.Schedule{}
	victim := servers[rng.Intn(len(servers))]
	sched.KillAt(600_000+rng.Time(2_500_000), victim)
	if cfg.Faults {
		if len(m.Links) > 0 {
			l := m.Links[rng.Intn(len(m.Links))]
			sched.DegradeLinkAt(500_000+rng.Time(4_000_000), l.A, l.B, 200_000, 4, 0.2)
		}
		// A stalled spare delays its anti-entropy sync but must not break
		// safety: writes stay shed until the transfer really completes.
		sched.StallAt(700_000+rng.Time(2_000_000), spares[rng.Intn(len(spares))], 120_000)
	}
	inj.Arm(sched)

	type kvOp struct {
		write bool
		key   uint64
		val   uint64
	}
	clientCores := []topo.CoreID{1, 5, 10}
	scripts := make([][]kvOp, len(clientCores))
	for ci := range clientCores {
		for i := 0; i < opsPer; i++ {
			op := kvOp{key: uint64(rng.Intn(hotKeys))}
			if rng.Uint64()%2 == 0 {
				op.write = true
				op.val = uint64(ci+1)*1_000_000 + uint64(i)
			}
			scripts[ci] = append(scripts[ci], op)
		}
	}
	done := make([]bool, len(clientCores))
	unavailable := make([]int, len(clientCores))
	for ci, core := range clientCores {
		cl := cluster.Connect(core)
		script := scripts[ci]
		ci := ci
		e.Spawn(fmt.Sprintf("kvfclient%d", ci), func(p *sim.Proc) {
			for _, op := range script {
				// Errors are expected while the cluster is degraded
				// (ErrDegraded sheds, dead-primary attempts burn retries);
				// the script presses on — safety is the checker's job.
				if op.write {
					cl.Put(p, op.key, op.val)
				} else {
					cl.Get(p, op.key)
				}
				p.Sleep(sim.Time(120_000 + 7_000*ci))
			}
			// Final read pass: by now fail-over must have restored
			// availability on every shard, and each read feeds the
			// linearizability checker one more completed observation.
			for k := uint64(0); k < hotKeys; k++ {
				if _, _, err := cl.Get(p, k); err != nil {
					unavailable[ci]++
				}
			}
			done[ci] = true
		})
	}
	e.RunUntil(horizon)

	var viol []Violation
	for ci := range done {
		if !done[ci] {
			viol = append(viol, Violation{Checker: "liveness", Msg: fmt.Sprintf(
				"kvfailover client %d (core %d) did not finish by the horizon", ci, clientCores[ci])})
		} else if unavailable[ci] > 0 {
			viol = append(viol, Violation{Checker: "liveness", Msg: fmt.Sprintf(
				"kvfailover client %d: %d final reads failed after fail-over should have completed",
				ci, unavailable[ci])})
		}
	}
	st := cluster.Stats()
	if st.Promotions == 0 {
		viol = append(viol, Violation{Checker: "liveness", Msg: fmt.Sprintf(
			"server core %d was killed but no shard was ever promoted", victim)})
	}
	return viol, init
}

// runURPCWorkload stresses the raw transport: four point-to-point channels
// with randomized ring sizes carry fixed message counts while the receivers
// mix RecvAll, TryRecv and parking RecvWindow polls, plus one bulk channel
// streaming tagged payloads. Fault mode may kill sender cores (receivers are
// protected); a receiver whose sender died is excused from the completion
// check — everything already transmitted must still satisfy the transport
// invariants.
func runURPCWorkload(e *sim.Engine, sys *cache.System, cfg RunConfig) ([]Violation, map[uint64]uint64) {
	const (
		msgs    = 48
		bulks   = 12
		horizon = 40_000_000
	)
	type pair struct{ s, r topo.CoreID }
	pairs := []pair{{1, 2}, {4, 6}, {8, 9}, {12, 3}} // same-socket and cross-socket mixes
	rng := sim.NewRNG(cfg.Seed ^ 0x75727063737472)

	var viol []Violation
	got := make([]int, len(pairs))
	senderCores := make([]topo.CoreID, len(pairs))
	for i, pr := range pairs {
		slots := 2 + rng.Intn(15)
		ch := urpc.New(sys, pr.s, pr.r, urpc.Options{Slots: slots, Home: -1})
		if i == 0 && cfg.Mutate != urpc.MutNone {
			ch.Mutate(cfg.Mutate)
		}
		senderCores[i] = pr.s
		burst := 1 + rng.Intn(7)
		// Pre-generated inter-burst gaps (drawn before the run so the
		// workload's inputs don't depend on the schedule): long enough that
		// the receiver sometimes drains the ring and parks in RecvWindow,
		// which is the only way to exercise the notify path.
		gaps := make([]sim.Time, msgs/burst+1)
		for g := range gaps {
			gaps[g] = sim.Time(rng.Intn(6000))
		}
		i := i
		e.Spawn(fmt.Sprintf("send%d", i), func(p *sim.Proc) {
			batch := make([]urpc.Message, 0, burst)
			nburst := 0
			for v := uint64(0); v < msgs; v++ {
				batch = append(batch, urpc.Message{v, uint64(i), 0})
				if len(batch) == burst || v == msgs-1 {
					ch.SendBatch(p, batch)
					batch = batch[:0]
					p.Sleep(gaps[nburst])
					nburst++
				}
			}
		})
		e.Spawn(fmt.Sprintf("recv%d", i), func(p *sim.Proc) {
			buf := make([]urpc.Message, 8)
			next := uint64(0)
			polls := 0
			for next < msgs {
				var take int
				switch polls % 3 {
				case 0:
					take = ch.RecvAll(p, buf)
					if take == 0 {
						p.Sleep(400)
					}
				case 1:
					if m, ok := ch.TryRecv(p); ok {
						buf[0], take = m, 1
					} else {
						p.Sleep(200)
					}
				default:
					buf[0], take = ch.RecvWindow(p, 2_000), 1
				}
				polls++
				for k := 0; k < take; k++ {
					if buf[k][0] != next || buf[k][1] != uint64(i) {
						viol = append(viol, Violation{Checker: "payload", Msg: fmt.Sprintf(
							"channel %d: message %d carried %v", i, next, buf[k])})
					}
					next++
				}
				got[i] = int(next)
			}
		})
	}

	// One bulk channel streaming distinguishable payloads.
	bs, br := topo.CoreID(13), topo.CoreID(7)
	bch := urpc.NewBulk(sys, bs, br, urpc.BulkOptions{Slots: 4, SlotLines: 2, Home: -1})
	bulkGot := 0
	e.Spawn("bulksend", func(p *sim.Proc) {
		payload := make([]byte, bch.SlotBytes())
		for v := 0; v < bulks; v++ {
			for j := range payload {
				payload[j] = byte(v + j)
			}
			bch.Send(p, payload)
		}
	})
	e.Spawn("bulkrecv", func(p *sim.Proc) {
		for bulkGot < bulks {
			data, ok := bch.TryRecv(p)
			if !ok {
				p.Sleep(300)
				continue
			}
			for j, b := range data {
				if b != byte(bulkGot+j) {
					viol = append(viol, Violation{Checker: "payload", Msg: fmt.Sprintf(
						"bulk payload %d corrupt at byte %d: %d", bulkGot, j, b)})
					break
				}
			}
			bulkGot++
		}
	})

	killed := make(map[topo.CoreID]bool)
	if cfg.Faults {
		spec := fault.Spec{
			Kills: 1, Stalls: 2, LinkFaults: 1,
			Window:  [2]sim.Time{100_000, 10_000_000},
			Protect: []topo.CoreID{2, 6, 9, 3, 7, 0}, // receivers (and core 0) survive
		}
		sch := fault.Random(cfg.Seed^0x757270636b696c6c, sys.Machine(), spec)
		for _, c := range sch.Kills() {
			killed[c] = true
		}
		inj := fault.NewInjector(e, sys)
		inj.Arm(sch)
	}
	e.RunUntil(horizon)

	for i := range pairs {
		if got[i] < msgs && !killed[senderCores[i]] {
			viol = append(viol, Violation{Checker: "liveness", Msg: fmt.Sprintf(
				"channel %d: receiver drained %d of %d messages with its sender alive", i, got[i], msgs)})
		}
	}
	if bulkGot < bulks && !killed[bs] {
		viol = append(viol, Violation{Checker: "liveness", Msg: fmt.Sprintf(
			"bulk channel: receiver drained %d of %d payloads with its sender alive", bulkGot, bulks)})
	}
	return viol, nil
}

// runMonitorWorkload exercises the agreement layer: a driver on core 0 issues
// unmap/retype/revoke rounds across the monitor network under each protocol
// while perturbations reorder the message flights. Fault mode arms fault
// tolerance and may fail-stop up to two non-root monitors mid-operation; the
// recovery protocol must still complete every op on the survivors.
func runMonitorWorkload(e *sim.Engine, sys *cache.System, cfg RunConfig) ([]Violation, map[uint64]uint64) {
	const horizon = 30_000_000
	m := sys.Machine()
	kern := kernel.NewSystem(e, m)
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	net := monitor.NewNetwork(e, sys, kern, kb, monitor.Hooks{})

	if cfg.Faults {
		net.EnableFaultTolerance(100_000)
		spec := fault.Spec{
			Kills: 2, Stalls: 1, LinkFaults: 1,
			Window:  [2]sim.Time{50_000, 5_000_000},
			Protect: []topo.CoreID{0},
		}
		inj := fault.NewInjector(e, sys)
		inj.OnKill(func(c topo.CoreID) { net.FailStop(c) })
		inj.Arm(fault.Random(cfg.Seed^0x6d6f6e6661756c74, m, spec))
	}

	const rounds = 2
	completed := 0
	want := 0
	e.Spawn("driver", func(p *sim.Proc) {
		mon := net.Monitor(0)
		for r := 0; r < rounds; r++ {
			for _, proto := range []monitor.Protocol{monitor.Unicast, monitor.Multicast, monitor.NUMAAware} {
				mon.Unmap(p, 0x10000, 4096, nil, proto)
				completed++
			}
			mon.Retype(p, 0x40000, 8192, caps.Frame, 0, nil)
			completed++
			mon.Revoke(p, 0x80000, 4096, nil)
			completed++
		}
	})
	want = rounds * 5
	e.RunUntil(horizon)

	var viol []Violation
	if completed < want {
		viol = append(viol, Violation{Checker: "liveness", Msg: fmt.Sprintf(
			"monitor driver completed %d of %d agreement ops by the horizon", completed, want)})
	}
	return viol, nil
}
