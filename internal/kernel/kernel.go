// Package kernel models the privileged-mode CPU driver of each core (paper
// §4.3): a purely core-local, event-driven, single-threaded kernel that
// enforces protection, dispatches processes and mediates access to core
// hardware. CPU drivers share no state; everything cross-core goes through
// URPC channels owned by user-space (package urpc) or inter-processor
// interrupts delivered here.
//
// The package also implements the driver's two same-core IPC primitives:
// the asynchronous fixed-size message facility and the synchronous LRPC fast
// path whose one-way cost the paper reports in Table 1.
package kernel

import (
	"fmt"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// lrpcCheckCost is the capability-invocation check the CPU driver performs on
// the LRPC fast path, identical across machines.
const lrpcCheckCost = 75

// IPIHandler is invoked (in engine context; it must not block) when an
// inter-processor interrupt arrives at a core. Handlers typically enqueue
// work and wake a proc.
type IPIHandler func(from topo.CoreID, vector int)

// Stats counts per-core CPU-driver activity.
type Stats struct {
	Syscalls  uint64
	Traps     uint64
	LRPCs     uint64
	IPIsSent  uint64
	IPIsRecvd uint64
	Switches  uint64
}

// Core is one CPU driver instance plus the hardware it mediates.
type Core struct {
	ID   topo.CoreID
	mach *topo.Machine
	eng  *sim.Engine

	ipiHandler IPIHandler
	occupancy  *sim.Resource // serializes privileged execution on the core
	route      routeFn       // resolves CoreIDs for IPI delivery
	stats      Stats
}

// System is the set of CPU drivers of one machine.
type System struct {
	Mach  *topo.Machine
	Eng   *sim.Engine
	Cores []*Core

	irqs map[int]*irqBinding // device interrupt routing (§4.2)
}

// NewSystem creates one CPU driver per core of the machine.
func NewSystem(e *sim.Engine, m *topo.Machine) *System {
	s := &System{Mach: m, Eng: e}
	for i := 0; i < m.NumCores(); i++ {
		s.Cores = append(s.Cores, &Core{
			ID:        topo.CoreID(i),
			mach:      m,
			eng:       e,
			occupancy: sim.NewResource(e, 1),
		})
	}
	s.connect()
	return s
}

// Core returns the driver for core c.
func (s *System) Core(c topo.CoreID) *Core { return s.Cores[c] }

// Stats returns a copy of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Machine returns the machine this core belongs to.
func (c *Core) Machine() *topo.Machine { return c.mach }

// Syscall charges one system-call entry/exit on this core.
func (c *Core) Syscall(p *sim.Proc) {
	c.stats.Syscalls++
	p.Sleep(c.mach.Costs.Syscall)
}

// Trap charges one hardware trap/interrupt entry/exit on this core.
func (c *Core) Trap(p *sim.Proc) {
	c.stats.Traps++
	p.Sleep(c.mach.Costs.Trap)
}

// ContextSwitch charges a switch between dispatchers on this core.
func (c *Core) ContextSwitch(p *sim.Proc) {
	c.stats.Switches++
	p.Sleep(c.mach.Costs.CSwitch)
}

// LRPCCost returns the one-way user-to-user cost of the synchronous LRPC
// primitive on this machine: syscall entry, capability check, context switch
// to the target dispatcher, scheduler-activation upcall and user-level
// dispatch (Table 1).
func LRPCCost(m *topo.Machine) sim.Time {
	c := &m.Costs
	return c.Syscall + lrpcCheckCost + c.CSwitch + c.Upcall + c.Dispatch
}

// LRPC charges a one-way LRPC from the running process to another process on
// the same core (the fast-path of §4.3).
func (c *Core) LRPC(p *sim.Proc) {
	c.stats.LRPCs++
	c.stats.Syscalls++
	c.stats.Switches++
	p.Sleep(LRPCCost(c.mach))
}

// LRPCCall performs a synchronous same-core RPC: one LRPC to the server, the
// server handler runs (charging its own costs), and one LRPC back.
func (c *Core) LRPCCall(p *sim.Proc, handler func(p *sim.Proc)) {
	c.LRPC(p)
	handler(p)
	c.LRPC(p)
}

// OnIPI installs the core's interrupt handler.
func (c *Core) OnIPI(h IPIHandler) { c.ipiHandler = h }

// SendIPI sends an inter-processor interrupt to core `to`. The sender is
// charged the APIC send cost; the interrupt arrives after an
// interconnect-distance delay and runs the target's handler in engine
// context. The receiving core's trap cost is charged by the handler's
// consumer (see Core.Trap), matching how the paper accounts the ~800-cycle
// trap on each shot-down core.
func (c *Core) SendIPI(p *sim.Proc, to topo.CoreID, vector int) {
	c.stats.IPIsSent++
	p.Sleep(c.mach.Costs.IPIDeliver)
	target := to
	delay := c.mach.TransferLat(target, c.ID) / 2 // one-way wire delay
	eng := c.eng
	sys := c
	eng.After(delay, func() {
		sys.deliverIPI(target, vector)
	})
}

// deliverIPI is split out so System can route to the right core.
func (c *Core) deliverIPI(to topo.CoreID, vector int) {
	// The Core type has no back-pointer to System; IPI delivery is wired by
	// System.Connect at construction. See System.route.
	if c.route == nil {
		panic("kernel: core not connected to a system")
	}
	tc := c.route(to)
	tc.stats.IPIsRecvd++
	if tc.ipiHandler != nil {
		tc.ipiHandler(c.ID, vector)
	}
}

// route resolves a CoreID to its Core; installed by NewSystem via connect.
type routeFn func(topo.CoreID) *Core

// connect wires each core's IPI routing to the system.
func (s *System) connect() {
	for _, c := range s.Cores {
		c.route = func(id topo.CoreID) *Core { return s.Cores[id] }
	}
}

// Acquire takes exclusive privileged occupancy of the core (e.g. while a
// driver or monitor runs); Release frees it. Most models rely on proc
// sequentiality instead, but contention-sensitive paths (a monitor sharing
// its core with an application) use this.
func (c *Core) Acquire(p *sim.Proc) { c.occupancy.Acquire(p) }

// Release frees privileged occupancy.
func (c *Core) Release() { c.occupancy.Release() }

// String implements fmt.Stringer.
func (c *Core) String() string { return fmt.Sprintf("cpu%d", c.ID) }
