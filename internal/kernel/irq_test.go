package kernel

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func TestIRQRoutedDeliveryAsMessage(t *testing.T) {
	e := sim.NewEngine(1)
	m := topo.AMD4x4()
	sys := NewSystem(e, m)
	q := sys.RouteIRQ(33, 6)
	var got IRQMsg
	var at sim.Time
	drv := e.Spawn("driver", func(p *sim.Proc) {
		got = q.Pop(p)
		at = p.Now()
	})
	sys.SetIRQWaker(33, drv)
	e.After(10_000, func() { sys.RaiseIRQ(33) })
	e.Run()
	if got.Vector != 33 {
		t.Fatalf("vector %d", got.Vector)
	}
	// Delivery pays the trap + demux after the line asserted.
	if at < 10_000+m.Costs.Trap {
		t.Fatalf("delivered at %d, before trap cost elapsed", at)
	}
	if sys.Core(6).Stats().Traps != 1 {
		t.Fatal("routed core did not trap")
	}
	if sys.Core(0).Stats().Traps != 0 {
		t.Fatal("wrong core trapped")
	}
}

func TestIRQUnroutedDropped(t *testing.T) {
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD2x2())
	sys.RaiseIRQ(99) // must not panic
	e.Run()
	if sys.IRQRoute(99) != -1 {
		t.Fatal("unrouted vector has a route")
	}
}

func TestIRQRerouteMoves(t *testing.T) {
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD4x4())
	q1 := sys.RouteIRQ(40, 2)
	q2 := sys.RouteIRQ(40, 10) // migrate, e.g. after hotplug
	if q1 != q2 {
		t.Fatal("reroute created a new queue")
	}
	if sys.IRQRoute(40) != 10 {
		t.Fatalf("route=%d", sys.IRQRoute(40))
	}
	sys.RaiseIRQ(40)
	e.Run()
	if sys.Core(10).Stats().Traps != 1 || sys.Core(2).Stats().Traps != 0 {
		t.Fatal("interrupt fired on the old core")
	}
}

func TestIRQBurstQueues(t *testing.T) {
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD2x2())
	q := sys.RouteIRQ(5, 1)
	for i := 0; i < 4; i++ {
		sys.RaiseIRQ(5)
	}
	var n int
	e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			q.Pop(p)
			n++
		}
	})
	e.Run()
	if n != 4 {
		t.Fatalf("delivered %d/4 interrupts", n)
	}
}

func TestSetWakerUnroutedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD2x2())
	sys.SetIRQWaker(7, nil)
}
