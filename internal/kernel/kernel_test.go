package kernel

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func TestLRPCCostMatchesTable1(t *testing.T) {
	// Paper Table 1 one-way LRPC latencies in cycles.
	want := map[string]sim.Time{
		"2x4-core Intel": 845,
		"2x2-core AMD":   757,
		"4x4-core AMD":   1463,
		"8x4-core AMD":   1549,
	}
	for _, m := range topo.AllMachines() {
		got := LRPCCost(m)
		w := want[m.Name]
		// The model composes the cost from syscall + check + switch + upcall
		// + dispatch; allow 3% calibration slack.
		lo, hi := w*97/100, w*103/100
		if got < lo || got > hi {
			t.Errorf("%s: LRPC=%d cycles, want ~%d", m.Name, got, w)
		}
	}
}

func TestLRPCChargesTime(t *testing.T) {
	e := sim.NewEngine(1)
	m := topo.AMD2x2()
	sys := NewSystem(e, m)
	var took sim.Time
	e.Spawn("caller", func(p *sim.Proc) {
		start := p.Now()
		sys.Core(0).LRPC(p)
		took = p.Now() - start
	})
	e.Run()
	if took != LRPCCost(m) {
		t.Fatalf("charged %d, want %d", took, LRPCCost(m))
	}
	if sys.Core(0).Stats().LRPCs != 1 {
		t.Fatal("LRPC not counted")
	}
}

func TestLRPCCallRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	m := topo.AMD2x2()
	sys := NewSystem(e, m)
	var took sim.Time
	served := false
	e.Spawn("caller", func(p *sim.Proc) {
		start := p.Now()
		sys.Core(0).LRPCCall(p, func(p *sim.Proc) {
			served = true
			p.Sleep(100)
		})
		took = p.Now() - start
	})
	e.Run()
	if !served {
		t.Fatal("handler not invoked")
	}
	if want := 2*LRPCCost(m) + 100; took != want {
		t.Fatalf("round trip %d, want %d", took, want)
	}
}

func TestIPIDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	m := topo.AMD4x4()
	sys := NewSystem(e, m)
	var gotFrom topo.CoreID = -1
	var gotVec int
	var deliveredAt sim.Time
	sys.Core(12).OnIPI(func(from topo.CoreID, vector int) {
		gotFrom, gotVec = from, vector
		deliveredAt = e.Now()
	})
	var sentAt sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		sentAt = p.Now()
		sys.Core(0).SendIPI(p, 12, 7)
	})
	e.Run()
	if gotFrom != 0 || gotVec != 7 {
		t.Fatalf("handler got from=%d vec=%d", gotFrom, gotVec)
	}
	if deliveredAt <= sentAt {
		t.Fatal("IPI arrived instantaneously")
	}
	if sys.Core(0).Stats().IPIsSent != 1 || sys.Core(12).Stats().IPIsRecvd != 1 {
		t.Fatal("IPI counters wrong")
	}
}

func TestIPIWakesParkedProc(t *testing.T) {
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD2x2())
	var wokenAt sim.Time
	waiter := e.Spawn("idle", func(p *sim.Proc) {
		p.Park()
		sys.Core(2).Trap(p) // interrupt entry on wake
		wokenAt = p.Now()
	})
	sys.Core(2).OnIPI(func(from topo.CoreID, vector int) { e.Wake(waiter) })
	e.Spawn("sender", func(p *sim.Proc) {
		p.Sleep(1000)
		sys.Core(0).SendIPI(p, 2, 1)
	})
	e.Run()
	e.CheckQuiesced()
	if wokenAt < 1000 {
		t.Fatalf("woken at %d, before IPI was sent", wokenAt)
	}
}

func TestSyscallTrapSwitchCounters(t *testing.T) {
	e := sim.NewEngine(1)
	m := topo.Intel2x4()
	sys := NewSystem(e, m)
	e.Spawn("p", func(p *sim.Proc) {
		c := sys.Core(3)
		c.Syscall(p)
		c.Trap(p)
		c.ContextSwitch(p)
	})
	e.Run()
	st := sys.Core(3).Stats()
	if st.Syscalls != 1 || st.Traps != 1 || st.Switches != 1 {
		t.Fatalf("stats %+v", st)
	}
	want := m.Costs.Syscall + m.Costs.Trap + m.Costs.CSwitch
	if e.Now() != want {
		t.Fatalf("elapsed %d, want %d", e.Now(), want)
	}
}

func TestCoreOccupancySerializes(t *testing.T) {
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD2x2())
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		e.Spawn(name, func(p *sim.Proc) {
			c := sys.Core(0)
			c.Acquire(p)
			p.Sleep(100)
			order = append(order, name)
			c.Release()
		})
	}
	e.Run()
	if e.Now() != 200 {
		t.Fatalf("two 100-cycle occupancies finished at %d, want 200", e.Now())
	}
	if len(order) != 2 || order[0] != "a" {
		t.Fatalf("order %v", order)
	}
}

func TestPerCoreDriverIsolation(t *testing.T) {
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD8x4())
	if len(sys.Cores) != 32 {
		t.Fatalf("%d drivers, want 32", len(sys.Cores))
	}
	e.Spawn("p", func(p *sim.Proc) { sys.Core(5).Syscall(p) })
	e.Run()
	if sys.Core(4).Stats().Syscalls != 0 {
		t.Fatal("syscall leaked to another core's driver")
	}
}
