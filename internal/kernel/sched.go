package kernel

import (
	"fmt"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file models the CPU driver's dispatch machinery (§4.3, §4.5): each
// core's driver time-slices dispatcher objects and enters them through the
// scheduler-activation upcall interface, and drivers can be coordinated to
// gang-schedule the dispatchers of one domain across cores (§4.8: "Barrelfish
// is responsible only for multiplexing the dispatchers on each core via the
// CPU driver scheduler, and coordinating the CPU drivers to perform, for
// example, gang scheduling or co-scheduling of dispatchers").
//
// The scheduler is a model: workloads that want scheduling effects run their
// compute through Dispatcher slices, accumulating virtual runtime, while the
// switch/upcall costs ride the machine's cost parameters.

// Dispatcher is one schedulable entity on one core (§4.5): the target of the
// CPU driver's upcalls.
type Dispatcher struct {
	Name     string
	Core     topo.CoreID
	runnable bool
	// Runtime is the dispatcher's accumulated execution time.
	Runtime sim.Time
	// Activations counts upcalls into this dispatcher.
	Activations uint64
	sched       *Scheduler
}

// Runnable reports whether the dispatcher wants CPU time.
func (d *Dispatcher) Runnable() bool { return d.runnable }

// Scheduler is one core's dispatcher scheduler: round-robin with a fixed
// timeslice, entirely core-local state (no other core can touch it).
type Scheduler struct {
	core      *Core
	Timeslice sim.Time
	queue     []*Dispatcher // rotation order; runnable and not
	current   *Dispatcher
	Switches  uint64
}

// NewScheduler creates the dispatcher scheduler for a core. A zero timeslice
// selects 1ms at the machine's clock.
func (c *Core) NewScheduler(timeslice sim.Time) *Scheduler {
	if timeslice == 0 {
		timeslice = sim.Time(c.mach.ClockGHz * 1e6) // 1ms
	}
	return &Scheduler{core: c, Timeslice: timeslice}
}

// Add registers a dispatcher, initially runnable.
func (s *Scheduler) Add(name string) *Dispatcher {
	d := &Dispatcher{Name: name, Core: s.core.ID, runnable: true, sched: s}
	s.queue = append(s.queue, d)
	return d
}

// Remove deregisters a dispatcher.
func (s *Scheduler) Remove(d *Dispatcher) {
	for i, q := range s.queue {
		if q == d {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	if s.current == d {
		s.current = nil
	}
}

// SetRunnable marks a dispatcher runnable or blocked (e.g. waiting on a
// channel; the monitor wakes it by marking it runnable again, §4.4).
func (s *Scheduler) SetRunnable(d *Dispatcher, on bool) {
	d.runnable = on
	if !on && s.current == d {
		s.current = nil
	}
}

// pickNext returns the next runnable dispatcher in rotation order, rotating
// the queue past it, or nil if none is runnable.
func (s *Scheduler) pickNext() *Dispatcher {
	for i := 0; i < len(s.queue); i++ {
		d := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue[len(s.queue)-1] = d
		if d.runnable {
			return d
		}
	}
	return nil
}

// RunSlice dispatches the next runnable dispatcher for one timeslice,
// charging the context switch and upcall when the dispatcher changes. It
// returns the dispatcher that ran, or nil if the core would idle (the caller
// models core sleep, §4.4).
func (s *Scheduler) RunSlice(p *sim.Proc) *Dispatcher {
	next := s.pickNext()
	if next == nil {
		s.current = nil
		return nil
	}
	if next != s.current {
		s.Switches++
		s.core.ContextSwitch(p)
		p.Sleep(s.core.mach.Costs.Upcall)
		next.Activations++
		s.current = next
	}
	p.Sleep(s.Timeslice)
	next.Runtime += s.Timeslice
	return next
}

// Gang is a set of dispatchers (one per core) belonging to one domain that
// should run simultaneously (§4.8).
type Gang struct {
	Name    string
	Members []*Dispatcher
}

// GangSchedule coordinates the CPU drivers so every member dispatcher is
// activated at a common time edge: the coordinator messages each member
// core's driver (IPI cost plus interconnect distance), each driver switches
// to the member, and the gang starts together at the time the slowest core
// is ready. It returns that synchronized start time.
func GangSchedule(p *sim.Proc, sys *System, coordinator topo.CoreID, g *Gang) sim.Time {
	if len(g.Members) == 0 {
		panic("kernel: empty gang")
	}
	mach := sys.Mach
	var latest sim.Time
	for _, d := range g.Members {
		// Coordination message to the member's CPU driver.
		var reach sim.Time
		if d.Core != coordinator {
			sys.Core(coordinator).stats.IPIsSent++
			p.Sleep(mach.Costs.IPIDeliver)
			reach = mach.TransferLat(d.Core, coordinator)
		}
		// The member core switches to the gang dispatcher on receipt.
		ready := p.Now() + reach + mach.Costs.Trap + mach.Costs.CSwitch + mach.Costs.Upcall
		if ready > latest {
			latest = ready
		}
		d.sched.current = d
		d.Activations++
	}
	return latest
}

// String implements fmt.Stringer.
func (d *Dispatcher) String() string {
	return fmt.Sprintf("dispatcher %s@cpu%d (runtime %d)", d.Name, d.Core, d.Runtime)
}
