package kernel

import (
	"fmt"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file implements device-interrupt routing (§4.2): "Device interrupts
// are routed in hardware to the appropriate core, demultiplexed by that
// core's CPU driver, and delivered to the driver process as a message." The
// routing table is the I/O APIC analogue; delivery charges the trap and
// demux at the target core and enqueues a message the driver domain's proc
// consumes.

// IRQMsg is the message a CPU driver delivers to a driver process for one
// device interrupt.
type IRQMsg struct {
	Vector int
	At     sim.Time
}

// irqBinding is one registered device vector.
type irqBinding struct {
	core  topo.CoreID
	queue *sim.Queue[IRQMsg]
	waker *sim.Proc // driver proc to wake, if any
}

// irqDemuxCost is the CPU driver's per-interrupt demultiplex cost, beyond
// the hardware trap.
const irqDemuxCost = 120

// RouteIRQ programs the interrupt routing: vector fires on core, and
// messages are delivered to the returned queue. The SKB's DriverPlacement
// typically chooses the core. Re-routing an existing vector moves it.
func (s *System) RouteIRQ(vector int, core topo.CoreID) *sim.Queue[IRQMsg] {
	if s.irqs == nil {
		s.irqs = make(map[int]*irqBinding)
	}
	if old, ok := s.irqs[vector]; ok {
		// Migration (e.g. after hotplug): keep the queue, move the route.
		old.core = core
		return old.queue
	}
	b := &irqBinding{core: core, queue: sim.NewQueue[IRQMsg](s.Eng)}
	s.irqs[vector] = b
	return b.queue
}

// SetIRQWaker registers the driver proc to wake on the vector's interrupts
// (the "unblock the dispatcher" half of delivery).
func (s *System) SetIRQWaker(vector int, p *sim.Proc) {
	b := s.irqs[vector]
	if b == nil {
		panic(fmt.Sprintf("kernel: vector %d not routed", vector))
	}
	b.waker = p
}

// RaiseIRQ is called by a device model (engine context) when its interrupt
// line asserts. The routed core takes the trap and demux costs in virtual
// time before the message appears on the driver's queue.
func (s *System) RaiseIRQ(vector int) {
	b := s.irqs[vector]
	if b == nil {
		return // unrouted interrupts are dropped, as with a masked line
	}
	target := s.Cores[b.core]
	target.stats.IPIsRecvd++ // interrupt delivery shares the LAPIC path
	// The trap + demux happen on the target core; model them as a delay
	// before the message is visible.
	s.Eng.After(s.Mach.Costs.Trap+irqDemuxCost, func() {
		b.queue.Push(IRQMsg{Vector: vector, At: s.Eng.Now()})
		target.stats.Traps++
		if b.waker != nil {
			s.Eng.Wake(b.waker)
		}
	})
}

// IRQRoute reports the core a vector is currently routed to, or -1.
func (s *System) IRQRoute(vector int) topo.CoreID {
	if b, ok := s.irqs[vector]; ok {
		return b.core
	}
	return -1
}
