package kernel

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func newSchedRig() (*sim.Engine, *System, *Scheduler) {
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD4x4())
	return e, sys, sys.Core(0).NewScheduler(1000)
}

func TestRoundRobinFairness(t *testing.T) {
	e, _, s := newSchedRig()
	a := s.Add("a")
	b := s.Add("b")
	c := s.Add("c")
	e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			s.RunSlice(p)
		}
	})
	e.Run()
	if a.Runtime != 10000 || b.Runtime != 10000 || c.Runtime != 10000 {
		t.Fatalf("unfair: a=%d b=%d c=%d", a.Runtime, b.Runtime, c.Runtime)
	}
}

func TestBlockedDispatcherSkipped(t *testing.T) {
	e, _, s := newSchedRig()
	a := s.Add("a")
	b := s.Add("b")
	s.SetRunnable(b, false)
	e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			s.RunSlice(p)
		}
	})
	e.Run()
	if b.Runtime != 0 {
		t.Fatalf("blocked dispatcher ran %d", b.Runtime)
	}
	if a.Runtime != 10000 {
		t.Fatalf("a ran %d, want all slices", a.Runtime)
	}
}

func TestIdleWhenNothingRunnable(t *testing.T) {
	e, _, s := newSchedRig()
	a := s.Add("a")
	s.SetRunnable(a, false)
	var got *Dispatcher = a
	e.Spawn("driver", func(p *sim.Proc) {
		got = s.RunSlice(p)
	})
	e.Run()
	if got != nil {
		t.Fatalf("idle core dispatched %v", got)
	}
}

func TestSwitchCostOnlyOnChange(t *testing.T) {
	e, sysk, s := newSchedRig()
	s.Add("only")
	var elapsed sim.Time
	e.Spawn("driver", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 5; i++ {
			s.RunSlice(p)
		}
		elapsed = p.Now() - start
	})
	e.Run()
	costs := sysk.Mach.Costs
	want := 5*sim.Time(1000) + costs.CSwitch + costs.Upcall // one switch only
	if elapsed != want {
		t.Fatalf("elapsed %d, want %d (single context switch)", elapsed, want)
	}
	if s.Switches != 1 {
		t.Fatalf("switches=%d", s.Switches)
	}
}

func TestRemoveCurrent(t *testing.T) {
	e, _, s := newSchedRig()
	a := s.Add("a")
	b := s.Add("b")
	e.Spawn("driver", func(p *sim.Proc) {
		s.RunSlice(p)
		s.Remove(a)
		s.Remove(b)
		if got := s.RunSlice(p); got != nil {
			t.Errorf("dispatched removed dispatcher %v", got)
		}
	})
	e.Run()
}

func TestActivationCounting(t *testing.T) {
	e, _, s := newSchedRig()
	a := s.Add("a")
	b := s.Add("b")
	e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			s.RunSlice(p)
		}
	})
	e.Run()
	// Alternating a/b: each re-entered 3 times.
	if a.Activations != 3 || b.Activations != 3 {
		t.Fatalf("activations a=%d b=%d", a.Activations, b.Activations)
	}
}

func TestGangScheduleSynchronizes(t *testing.T) {
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD4x4())
	gang := &Gang{Name: "omp"}
	for i := 0; i < 4; i++ {
		sched := sys.Core(topo.CoreID(i * 4)).NewScheduler(1000)
		sched.Add("other") // competing dispatcher
		gang.Members = append(gang.Members, sched.Add("omp"))
	}
	var start sim.Time
	e.Spawn("coordinator", func(p *sim.Proc) {
		start = GangSchedule(p, sys, 0, gang)
	})
	e.Run()
	if start == 0 {
		t.Fatal("no synchronized start computed")
	}
	for _, d := range gang.Members {
		if d.Activations != 1 {
			t.Fatalf("member %v not activated", d)
		}
		if d.sched.current != d {
			t.Fatalf("member %v not current on its core", d)
		}
	}
	// The edge must be no earlier than the remote coordination path.
	m := sys.Mach
	if start < m.Costs.IPIDeliver+m.Costs.Trap {
		t.Fatalf("synchronized start %d implausibly early", start)
	}
}

func TestEmptyGangPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := sim.NewEngine(1)
	sys := NewSystem(e, topo.AMD2x2())
	// The empty-gang check fires before any simulated time is needed.
	GangSchedule(nil, sys, 0, &Gang{})
}
