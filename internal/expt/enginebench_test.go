package expt

import "testing"

// TestEngineBenchIdentical is the CI-enforced half of the engine benchmark:
// wall-clock speedup depends on idle host cores, but byte identity of the
// final engine image across worker counts must hold anywhere.
func TestEngineBenchIdentical(t *testing.T) {
	res := EngineBench(300, []int{2, 4, 8})
	if len(res) != 4 {
		t.Fatalf("got %d rows, want 4", len(res))
	}
	for _, r := range res[1:] {
		if !r.Identical {
			t.Errorf("workers=%d: final engine image differs from serial reference", r.Workers)
		}
		if r.Events != res[0].Events {
			t.Errorf("workers=%d: dispatched %d events, serial dispatched %d", r.Workers, r.Events, res[0].Events)
		}
	}
	if res[0].Events == 0 {
		t.Fatal("benchmark dispatched no events")
	}
}

func TestWarmStartIdentical(t *testing.T) {
	_, res := WarmStart(3, nil)
	if !res.Identical {
		t.Error("warm-started points disagree with cold-booted points")
	}
	if res.ImageBytes == 0 {
		t.Error("boot image is empty")
	}
}

// TestWarmStartFromSavedImage covers the mkbench -restore path: a boot image
// produced by an earlier process (here just an earlier BootImage call) warm
// starts the sweep with identical results.
func TestWarmStartFromSavedImage(t *testing.T) {
	img := BootImage(WarmStartMachine())
	_, res := WarmStart(2, img)
	if !res.Identical {
		t.Error("sweep warm-started from a saved image disagrees with cold boot")
	}
	if res.ImageBytes != len(img) {
		t.Errorf("reported image size %d, supplied %d", res.ImageBytes, len(img))
	}
}
