package expt

import (
	"reflect"
	"testing"

	"multikernel/internal/check"
	"multikernel/internal/harness"
)

// The model-checker sweep must be deterministic across worker counts: each
// run's engine is seeded only by (workload, seed), so running the sweep
// serially and with the full worker pool must produce identical results —
// down to the trace hash and the exact perturbation list each run applied.
// This is the same guarantee the experiment sweeps pin, extended to mkcheck.
func TestCheckSweepParallelDeterminism(t *testing.T) {
	cfg := check.Config{
		Workloads: []string{"urpc", "kv"},
		Seeds:     []uint64{1, 2, 3, 4},
		Depth:     24,
		MaxJitter: check.DefaultMaxJitter,
		Faults:    true,
	}

	prev := harness.Parallelism()
	defer harness.SetParallelism(prev)
	harness.SetParallelism(1)
	serial := check.Run(cfg)
	harness.SetParallelism(8)
	parallel := check.Run(cfg)

	if len(serial) == 0 {
		t.Fatal("sweep produced no results")
	}
	for _, r := range serial {
		if r.Failed() {
			t.Fatalf("%s seed %d failed: %v", r.Workload, r.Seed, r.Violations)
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Fatalf("run %d diverged across parallelism:\nserial:   %+v\nparallel: %+v",
					i, serial[i], parallel[i])
			}
		}
		t.Fatal("results diverged across parallelism")
	}
}
