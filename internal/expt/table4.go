package expt

import (
	"bytes"
	"fmt"

	"multikernel/internal/baseline"
	"multikernel/internal/netstack"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// htLinkGBps is the HyperTransport link bandwidth used for utilization
// percentages (8 GB/s per direction, as on the 2×2 AMD system's HT links).
const htLinkGBps = 8.0

// LoopbackResult is one measured configuration of Table 4.
type LoopbackResult struct {
	ThroughputMbit float64
	DcachePerPkt   float64
	FwdDwords      float64 // source -> sink HT dwords per packet
	RevDwords      float64 // sink -> source
	FwdUtil        float64
	RevUtil        float64
}

// table4Packets is the measurement length.
const table4Packets = 400

// LoopbackBF measures the multikernel's URPC loopback path: two user-space
// stacks on different sockets joined by URPC frame links.
func LoopbackBF() *LoopbackResult {
	m := topo.AMD2x2()
	env := NewEnv(m, 1)
	defer env.Close()
	const srcCore, sinkCore = 0, 2 // different sockets
	src := netstack.NewStack(env.E, env.Sys, "src", srcCore, netstack.IP4(127, 0, 0, 1))
	sink := netstack.NewStack(env.E, env.Sys, "sink", sinkCore, netstack.IP4(127, 0, 0, 2))
	netstack.ConnectLoopback(src, sink)
	sSock := src.BindUDP(1000)
	dSock := sink.BindUDP(2000)
	payload := bytes.Repeat([]byte{0x5a}, 1000)

	var start, end sim.Time
	const warm = 32
	resume := sim.NewFuture[bool](env.E)
	env.E.Spawn("sink", func(p *sim.Proc) {
		for i := 0; i < warm; i++ {
			dSock.Recv(p)
		}
		// Ring drained and the source is paused: clean measurement window.
		env.Sys.ResetStats()
		env.Sys.Fabric().Reset()
		start = p.Now()
		resume.Complete(true)
		for i := 0; i < table4Packets; i++ {
			d := dSock.Recv(p)
			if len(d.Payload) != 1000 {
				panic("short packet")
			}
		}
		end = p.Now()
	})
	env.E.Spawn("src", func(p *sim.Proc) {
		for i := 0; i < warm; i++ {
			sSock.SendTo(p, sink.IP, 2000, payload)
		}
		resume.Await(p)
		for i := 0; i < table4Packets; i++ {
			sSock.SendTo(p, sink.IP, 2000, payload)
		}
	})
	env.E.Run()
	return summarizeLoopback(env, srcCore, sinkCore, start, end)
}

// LoopbackLinux measures the comparator's in-kernel loopback: shared packet
// queues, spinlocks and kernel crossings.
func LoopbackLinux() *LoopbackResult {
	m := topo.AMD2x2()
	env := NewEnv(m, 1)
	defer env.Close()
	const srcCore, sinkCore = 0, 2
	k := baseline.New(env.E, env.Sys, env.Kern, baseline.Linux)
	lb := k.NewLoopback(1100, m.Socket(srcCore))
	payload := bytes.Repeat([]byte{0x5a}, 1000)

	var start, end sim.Time
	const warm = 32
	resume := sim.NewFuture[bool](env.E)
	env.E.Spawn("sink", func(p *sim.Proc) {
		for i := 0; i < warm; i++ {
			lb.Recv(p, sinkCore)
		}
		env.Sys.ResetStats()
		env.Sys.Fabric().Reset()
		start = p.Now()
		resume.Complete(true)
		for i := 0; i < table4Packets; i++ {
			lb.Recv(p, sinkCore)
		}
		end = p.Now()
	})
	env.E.Spawn("src", func(p *sim.Proc) {
		for i := 0; i < warm; i++ {
			lb.Send(p, srcCore, payload)
		}
		resume.Await(p)
		for i := 0; i < table4Packets; i++ {
			lb.Send(p, srcCore, payload)
		}
	})
	env.E.Run()
	return summarizeLoopback(env, srcCore, sinkCore, start, end)
}

func summarizeLoopback(env *Env, srcCore, sinkCore topo.CoreID, start, end sim.Time) *LoopbackResult {
	elapsed := end - start
	pkts := float64(table4Packets)
	seconds := env.M.Nanoseconds(elapsed) * 1e-9
	misses := env.Sys.Stats(srcCore).Misses + env.Sys.Stats(sinkCore).Misses
	srcSock := env.M.Socket(srcCore)
	sinkSock := env.M.Socket(sinkCore)
	fab := env.Sys.Fabric()
	return &LoopbackResult{
		ThroughputMbit: pkts * 1000 * 8 / seconds / 1e6,
		DcachePerPkt:   float64(misses) / pkts,
		FwdDwords:      float64(fab.PathDwords(srcSock, sinkSock)) / pkts,
		RevDwords:      float64(fab.PathDwords(sinkSock, srcSock)) / pkts,
		FwdUtil:        fab.Utilization(srcSock, sinkSock, uint64(elapsed), htLinkGBps),
		RevUtil:        fab.Utilization(sinkSock, srcSock, uint64(elapsed), htLinkGBps),
	}
}

// Table4 regenerates Table 4: IP loopback on the 2×2-core AMD system,
// Barrelfish (URPC between user-space stacks) versus Linux (in-kernel stack
// with shared queues).
func Table4() *table {
	bf, lx := LoopbackBF(), LoopbackLinux()
	t := &table{
		Title:   "Table 4: IP loopback performance on 2x2-core AMD",
		Columns: []string{"", "Barrelfish", "Linux"},
	}
	row := func(name, a, b string) { t.AddRow(name, a, b) }
	row("Throughput (Mbit/s)", fmt.Sprintf("%.0f", bf.ThroughputMbit), fmt.Sprintf("%.0f", lx.ThroughputMbit))
	row("Dcache misses per packet", fmt.Sprintf("%.0f", bf.DcachePerPkt), fmt.Sprintf("%.0f", lx.DcachePerPkt))
	row("source->sink HT traffic per packet (dwords)", fmt.Sprintf("%.0f", bf.FwdDwords), fmt.Sprintf("%.0f", lx.FwdDwords))
	row("sink->source HT traffic per packet (dwords)", fmt.Sprintf("%.0f", bf.RevDwords), fmt.Sprintf("%.0f", lx.RevDwords))
	row("source->sink HT link utilization", fmt.Sprintf("%.1f%%", bf.FwdUtil*100), fmt.Sprintf("%.1f%%", lx.FwdUtil*100))
	row("sink->source HT link utilization", fmt.Sprintf("%.1f%%", bf.RevUtil*100), fmt.Sprintf("%.1f%%", lx.RevUtil*100))
	return t
}
