package expt

import (
	"fmt"
	"testing"
)

// BenchmarkBootParallelPinned is the parallel-boot determinism gate consumed
// by ci/traceguard: the staged shootdown workload on the full 8-socket
// multikernel boot, replayed at workers 1, 2 and 4. The simevents/op metric
// is fully deterministic — a pure function of (seed, nparts), never of the
// worker count — so all three entries are pinned exactly in the committed
// baseline and must stay equal to each other; one event of divergence from
// the serial schedule fails CI.
func BenchmarkBootParallelPinned(b *testing.B) {
	wl := bootWorkloads()[0] // shootdown, staged RunUntil/Stop schedule
	const scale = 4
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			var ev uint64
			for i := 0; i < b.N; i++ {
				ev = bootRunOnce(wl, scale, w).nevents
			}
			b.ReportMetric(float64(ev), "simevents/op")
		})
	}
}
