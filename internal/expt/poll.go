package expt

import (
	"fmt"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// PollModel regenerates the §5.2 polling-cost analysis. With a polling
// window of P cycles before blocking (blocking/wakeup cost C), a message
// arriving at time t costs:
//
//	overhead = t          if t <= P        latency = 0
//	overhead = P + C      otherwise        latency = C
//
// The paper picks P = C (about 6000 cycles on its hardware), bounding
// overhead at 2C and latency at C.
func PollModel(C sim.Time) *table {
	t := &table{
		Title:   fmt.Sprintf("Section 5.2: polling cost model (P = C = %d cycles)", C),
		Columns: []string{"arrival t", "overhead (cycles)", "added latency (cycles)"},
	}
	P := C
	for _, frac := range []float64{0.1, 0.5, 1.0, 1.5, 3.0, 10.0} {
		at := sim.Time(float64(C) * frac)
		var overhead, latency sim.Time
		if at <= P {
			overhead, latency = at, 0
		} else {
			overhead, latency = P+C, C
		}
		t.AddRow(fmt.Sprintf("%.1fC", frac),
			fmt.Sprintf("%d", overhead),
			fmt.Sprintf("%d", latency))
	}
	return t
}

// MeasurePollWindow empirically measures the receiver-side overhead and
// message latency of urpc.RecvWindow for a message arriving at time t with
// polling window P, validating the analytic model above against the
// simulated implementation.
func MeasurePollWindow(m *topo.Machine, window, arrival sim.Time) (overhead, latency sim.Time) {
	env := NewEnv(m, 4)
	defer env.Close()
	ch := urpc.New(env.Sys, 0, 2, urpc.Options{Home: -1})
	var recvStart, recvEnd, sentAt sim.Time
	env.E.Spawn("recv", func(p *sim.Proc) {
		recvStart = p.Now()
		ch.RecvWindow(p, window)
		recvEnd = p.Now()
	})
	env.E.Spawn("send", func(p *sim.Proc) {
		p.Sleep(arrival)
		sentAt = p.Now()
		ch.Send(p, urpc.Message{1})
	})
	env.E.Run()
	return recvEnd - recvStart, recvEnd - sentAt
}
