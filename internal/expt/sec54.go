package expt

import (
	"fmt"

	"multikernel/internal/apps"
	"multikernel/internal/netstack"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// In-kernel network stack costs for the Linux comparator, in cycles.
const (
	// TCP path (per frame): socket layer, TCP state machine, copies.
	kRxPathCost = 11000 // interrupt + softirq + protocol processing + copy to user
	kTxPathCost = 9000  // socket send + copy from user + qdisc + driver
	// UDP fast path (per datagram) — much shorter than TCP.
	kUDPRxCost = 4000
	kUDPTxCost = 3200
)

// UDPEchoResult is one §5.4 network-throughput measurement.
type UDPEchoResult struct {
	OfferedMbit  float64
	AchievedMbit float64
	Echoed       uint64
}

// UDPEchoBF measures the multikernel's UDP echo throughput on the 2×4-core
// Intel system: e1000 driver domain on core 2, echo application (with its
// library lwIP stack) on core 3, connected by URPC.
func UDPEchoBF(packets int) *UDPEchoResult {
	return udpEcho(packets, false)
}

// UDPEchoLinux measures the comparator: interrupt-driven in-kernel stack and
// a socket application, all passing through the kernel on one core.
func UDPEchoLinux(packets int) *UDPEchoResult {
	return udpEcho(packets, true)
}

func udpEcho(packets int, kernelStack bool) *UDPEchoResult {
	m := topo.Intel2x4()
	env := NewEnv(m, 5)
	defer env.Close()
	w := netstack.NewWire(env.E, 1, m.ClockGHz) // gigabit Ethernet
	nic := netstack.NewNIC(env.E, env.Sys, "e1000", w, true)

	appIP := netstack.IP4(192, 168, 1, 1)
	app := netstack.NewStack(env.E, env.Sys, "echo", 3, appIP)

	if kernelStack {
		// Merged in-kernel path: the application core takes the interrupt,
		// runs the kernel stack and the socket syscalls.
		const core = 3
		app.SetPoller(func(p *sim.Proc) bool {
			any := false
			for {
				f := nic.Poll(p, core)
				if f == nil {
					return any
				}
				p.Sleep(kUDPRxCost)
				env.Kern.Core(core).Syscall(p) // recvfrom
				app.Inject(f)
				any = true
			}
		})
		app.SetOutput(func(p *sim.Proc, f netstack.Frame) {
			env.Kern.Core(core).Syscall(p) // sendto
			p.Sleep(kUDPTxCost)
			if err := nic.Transmit(p, core, f); err != nil {
				_ = err // overload: drop
			}
		})
	} else {
		netstack.NewDriver(env.E, env.Sys, nic, 2, app)
	}

	gen := &apps.UDPEchoGen{
		Wire: w, FromA: false,
		SrcIP: netstack.IP4(192, 168, 1, 99), DstIP: appIP,
		DstMAC: app.MAC, DstPort: 7, Payload: 1000,
	}
	w.Attach(nic, gen)

	sock := app.BindUDP(7)
	env.E.Spawn("echo-app", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			d := sock.Recv(p)
			sock.SendTo(p, d.Src, d.SrcPort, d.Payload)
		}
	})

	// Offer traffic at ~105% of wire rate so the wire (or the slower OS
	// path) is the bottleneck.
	frameBytes := 1000 + netstack.EthHeaderLen + netstack.IPv4HeaderLen + netstack.UDPHeaderLen
	interval := sim.Time(float64(frameBytes) / (1e9 / 8 / (m.ClockGHz * 1e9)) / 1.05)
	gen.Run(env.E, interval, packets)
	deadline := sim.Time(packets+20) * interval * 4
	env.E.RunUntil(deadline)

	offered := float64(sim.Time(packets)*interval) / (m.ClockGHz * 1e9)
	// Achieved rate over the actual span of echoed packets: the wire (or the
	// OS path) paces delivery, so the receive span is what saturation means.
	achieved := 0.0
	if gen.Received > 1 {
		rxSeconds := float64(gen.LastRx-gen.FirstRx) / (m.ClockGHz * 1e9)
		achieved = float64(gen.Received-1) * 1000 * 8 / rxSeconds / 1e6
	}
	return &UDPEchoResult{
		OfferedMbit:  float64(gen.Sent) * 1000 * 8 / offered / 1e6,
		AchievedMbit: achieved,
		Echoed:       gen.Received,
	}
}

// WebResult is one §5.4 web-server measurement.
type WebResult struct {
	ReqPerSec float64
	Mbit      float64
}

// WebServerBF measures the multikernel web server on the 2×2-core AMD
// system: driver on core 2, web server on core 3, database (if any) on core
// 1, all connected by URPC, serving an external httperf-style client fleet.
func WebServerBF(db bool, window sim.Time) *WebResult {
	return webServer(db, false, window)
}

// WebServerLinux measures the comparator (lighttpd over the in-kernel
// stack).
func WebServerLinux(window sim.Time) *WebResult {
	return webServer(false, true, window)
}

func webServer(db, kernelStack bool, window sim.Time) *WebResult {
	m := topo.AMD2x2()
	env := NewEnv(m, 6)
	defer env.Close()
	w := netstack.NewWire(env.E, 1, m.ClockGHz)
	nic := netstack.NewNIC(env.E, env.Sys, "e1000", w, true)

	serverIP := netstack.IP4(10, 1, 1, 1)
	app := netstack.NewStack(env.E, env.Sys, "web", 3, serverIP)
	if kernelStack {
		const core = 3
		app.SetPoller(func(p *sim.Proc) bool {
			any := false
			for {
				f := nic.Poll(p, core)
				if f == nil {
					return any
				}
				p.Sleep(kRxPathCost)
				env.Kern.Core(core).Syscall(p)
				app.Inject(f)
				any = true
			}
		})
		app.SetOutput(func(p *sim.Proc, f netstack.Frame) {
			env.Kern.Core(core).Syscall(p)
			p.Sleep(kTxPathCost)
			if err := nic.Transmit(p, core, f); err != nil {
				_ = err
			}
		})
	} else {
		netstack.NewDriver(env.E, env.Sys, nic, 2, app)
	}

	ws := &apps.WebServer{Stack: app, Page: apps.StaticPage()}
	path := "/index.html"
	if db {
		kv := apps.NewKVStore(env.Sys, 1, 10000)
		svc := apps.NewKVService(env.E, kv)
		ws.DB = svc.Connect(3)
		path = "/db/123"
	}
	env.E.Spawn("websrv", func(p *sim.Proc) {
		p.SetDaemon(true)
		ws.Serve(p)
	})

	gen := &apps.HTTPLoadGen{
		Wire: w, FromA: false,
		SrcIP: netstack.IP4(10, 1, 1, 99), DstIP: serverIP,
		DstMAC: app.MAC, Path: path, Concurrency: 24,
	}
	w.Attach(nic, gen)
	gen.Start(env.E)

	// Warm-up, then measure over the window.
	warm := window / 4
	env.E.RunUntil(warm)
	before, beforeBytes := gen.Completed, gen.BytesIn
	env.E.RunUntil(warm + window)
	done := gen.Completed - before
	bytes := gen.BytesIn - beforeBytes
	gen.Stop()
	seconds := float64(window) / (m.ClockGHz * 1e9)
	return &WebResult{
		ReqPerSec: float64(done) / seconds,
		Mbit:      float64(bytes) * 8 / seconds / 1e6,
	}
}

// Sec54 regenerates the §5.4 I/O results as one table.
func Sec54(packets int, webWindow sim.Time) *table {
	t := &table{
		Title:   "Section 5.4: IO workloads",
		Columns: []string{"Experiment", "Barrelfish", "Linux"},
	}
	bfEcho := UDPEchoBF(packets)
	lxEcho := UDPEchoLinux(packets)
	t.AddRow("UDP echo throughput (Mbit/s)",
		fmt.Sprintf("%.1f", bfEcho.AchievedMbit),
		fmt.Sprintf("%.1f", lxEcho.AchievedMbit))
	bfWeb := WebServerBF(false, webWindow)
	lxWeb := WebServerLinux(webWindow)
	t.AddRow("Static web server (requests/s)",
		fmt.Sprintf("%.0f", bfWeb.ReqPerSec),
		fmt.Sprintf("%.0f", lxWeb.ReqPerSec))
	t.AddRow("Static web server (Mbit/s)",
		fmt.Sprintf("%.1f", bfWeb.Mbit),
		fmt.Sprintf("%.1f", lxWeb.Mbit))
	dbWeb := WebServerBF(true, webWindow)
	t.AddRow("Web + database (requests/s)",
		fmt.Sprintf("%.0f", dbWeb.ReqPerSec), "-")
	return t
}
