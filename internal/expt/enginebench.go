package expt

// Engine-throughput benchmarks for the parallel intra-run simulation layer:
// how many simulated events per wall-clock second the engine retires,
// serially and under per-socket sub-engines at several worker counts, and
// what the gem5-style boot-checkpoint workflow saves per sweep point.

import (
	"bytes"
	"fmt"
	"time"

	"multikernel/internal/core"
	"multikernel/internal/harness"
	"multikernel/internal/interconnect"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/vm"
)

// EngineBenchResult is one row of the engine-throughput benchmark.
type EngineBenchResult struct {
	Workers      int
	Events       uint64  // simulated events dispatched across all partitions
	Seconds      float64 // wall-clock
	EventsPerSec float64
	Speedup      float64 // vs the serial (workers=1) row
	Identical    bool    // final engine image byte-identical to serial
}

// engineStorm builds the synthetic benchmark workload on pe: per-partition
// background event storms (one proc per core of the socket) plus token rings
// crossing every partition boundary, all RNG-flavored so epochs stay
// irregular. scale sets both the local event count per core and the ring hop
// budget.
func engineStorm(pe *sim.ParallelEngine, m *topo.Machine, scale int) {
	nparts := pe.NParts()
	for i := 0; i < nparts; i++ {
		i := i
		e := pe.Part(i)
		tokens := e.Metrics().Counter("storm.tokens")
		pe.RegisterHandler(i, func(v, hop uint64) {
			tokens.Inc()
			if hop == 0 {
				return
			}
			e.After(1+e.RNG().Time(200), func() {
				pe.Post(i, (i+1)%nparts, pe.Lookahead()+sim.Time(v%127), 0, v*0x9e3779b9+uint64(i), hop-1)
			})
		})
		for c := 0; c < m.CoresPerSocket; c++ {
			pe.Spawn(i, fmt.Sprintf("core%d.%d", i, c), func(p *sim.Proc) {
				for j := 0; j < scale; j++ {
					p.Sleep(1 + e.RNG().Time(120))
				}
			})
		}
	}
	for i := 0; i < nparts; i++ {
		for k := 0; k < m.CoresPerSocket; k++ {
			pe.Post(i, (i+1)%nparts, pe.Lookahead(), 0, uint64(i*100+k), uint64(scale))
		}
	}
}

func engineBenchOnce(m *topo.Machine, scale, workers int) (EngineBenchResult, []byte) {
	pm := topo.PerSocket(m)
	pe := sim.NewParallelEngine(pm.NParts(), interconnect.Lookahead(m, pm), 99, workers)
	engineStorm(pe, m, scale)
	t0 := time.Now()
	pe.Run()
	wall := time.Since(t0).Seconds()
	snap := pe.MetricsSnapshot()
	events := snap.Counters["sim.events_dispatched"]
	var img bytes.Buffer
	if err := pe.Checkpoint(&img); err != nil {
		panic("expt: engine bench checkpoint: " + err.Error())
	}
	pe.Close()
	res := EngineBenchResult{Workers: pe.Workers(), Events: events, Seconds: wall}
	if wall > 0 {
		res.EventsPerSec = float64(events) / wall
	}
	return res, img.Bytes()
}

// EngineBench runs the storm on the 8×4 machine serially and at each
// requested worker count, verifying that every parallel run's final engine
// image is byte-identical to the serial reference. Wall-clock speedup is
// hardware-dependent (it needs as many idle host cores as workers); byte
// identity is not.
func EngineBench(scale int, workerCounts []int) []EngineBenchResult {
	m := topo.AMD8x4()
	ref, refImg := engineBenchOnce(m, scale, 1)
	ref.Speedup = 1
	ref.Identical = true
	out := []EngineBenchResult{ref}
	for _, w := range workerCounts {
		if w <= 1 {
			continue
		}
		r, img := engineBenchOnce(m, scale, w)
		if ref.Seconds > 0 && r.Seconds > 0 {
			r.Speedup = ref.Seconds / r.Seconds
		}
		r.Identical = bytes.Equal(img, refImg)
		out = append(out, r)
	}
	return out
}

// EngineBenchTable renders EngineBench results in the evaluation's layout.
func EngineBenchTable(results []EngineBenchResult) *table {
	t := &table{
		Title:   "Engine throughput: per-socket sub-engines, conservative lookahead (8x4-core AMD)",
		Columns: []string{"workers", "events", "wall s", "events/s", "speedup", "identical"},
	}
	for _, r := range results {
		t.AddRow(
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%.3g", r.EventsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%v", r.Identical),
		)
	}
	return t
}

// WarmStartResult summarizes the boot-once workflow measurement.
type WarmStartResult struct {
	Points      int
	ColdSeconds float64 // boot every point from scratch
	WarmSeconds float64 // boot once, checkpoint, restore per point
	ImageBytes  int
	Identical   bool // warm and cold points produced identical outcomes
}

// WarmStartMachine is the platform WarmStart sweeps (and the one a saved
// boot image must have been checkpointed on).
func WarmStartMachine() *topo.Machine { return topo.AMD4x4() }

// BootImage boots a multikernel on m to quiescence and returns the engine
// checkpoint image — the artifact mkbench -checkpoint writes to disk and
// mkbench -restore feeds back into WarmStart on a later run.
func BootImage(m *topo.Machine) []byte {
	e := sim.NewEngine(1)
	core.Boot(e, m)
	e.Run()
	var img bytes.Buffer
	if err := e.Checkpoint(&img); err != nil {
		panic("expt: boot checkpoint: " + err.Error())
	}
	e.Close()
	return img.Bytes()
}

// WarmStart measures what Engine.Checkpoint buys a sweep: points sweep
// points each needing a freshly booted multikernel, run cold (boot per
// point) and warm (boot once, checkpoint, sim.Restore per point). Points are
// fanned out through the harness in both modes; each runs the same
// coordinated-unmap workload, and the two modes must agree on every point's
// virtual-time result. A non-nil img supplies a previously saved boot image
// (mkbench -restore), so the warm phase skips even the single boot.
func WarmStart(points int, img []byte) (*table, WarmStartResult) {
	m := WarmStartMachine()
	cores := make([]topo.CoreID, m.NumCores())
	for c := range cores {
		cores[c] = topo.CoreID(c)
	}
	workload := func(e *sim.Engine, s *core.System) sim.Time {
		var cost sim.Time
		e.Spawn("init", func(p *sim.Proc) {
			d, err := s.NewDomain(p, "pt", cores)
			if err != nil {
				panic(err)
			}
			va, err := d.MapAnon(p, 0, 2*vm.PageSize, vm.Read|vm.Write)
			if err != nil {
				panic(err)
			}
			start := p.Now()
			if err := d.Unmap(p, 0, va, 2*vm.PageSize, monitor.NUMAAware); err != nil {
				panic(err)
			}
			cost = p.Now() - start
		})
		e.Run()
		e.Close()
		return cost
	}

	t0 := time.Now()
	cold := harness.Map(points, func(i int) sim.Time {
		e := sim.NewEngine(1)
		s := core.Boot(e, m)
		e.Run()
		return workload(e, s)
	})
	coldSec := time.Since(t0).Seconds()

	t0 = time.Now()
	if img == nil {
		img = BootImage(m)
	}
	warm := harness.Map(points, func(i int) sim.Time {
		var s *core.System
		e, err := sim.Restore(bytes.NewReader(img), func(e *sim.Engine) {
			s = core.Boot(e, m)
		})
		if err != nil {
			panic("expt: restore boot image: " + err.Error())
		}
		return workload(e, s)
	})
	warmSec := time.Since(t0).Seconds()

	res := WarmStartResult{
		Points:      points,
		ColdSeconds: coldSec,
		WarmSeconds: warmSec,
		ImageBytes:  len(img),
		Identical:   true,
	}
	for i := range cold {
		if cold[i] != warm[i] {
			res.Identical = false
		}
	}

	t := &table{
		Title:   fmt.Sprintf("Warm-started sweep: %d points on %s", points, m.Name),
		Columns: []string{"mode", "wall s", "per point ms", "identical"},
	}
	t.AddRow("cold boot", fmt.Sprintf("%.3f", coldSec),
		fmt.Sprintf("%.1f", 1000*coldSec/float64(points)), "-")
	t.AddRow("restore", fmt.Sprintf("%.3f", warmSec),
		fmt.Sprintf("%.1f", 1000*warmSec/float64(points)), fmt.Sprintf("%v", res.Identical))
	return t, res
}
