package expt

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"

	"multikernel/internal/apps"
	"multikernel/internal/harness"
	"multikernel/internal/monitor"
	"multikernel/internal/obs"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file holds the observability-plane experiment (mkbench obs): the
// kvcluster fail-over scenario re-run with the distributed stat plane at a
// sweep of sampling intervals, measuring what observation costs and what it
// buys. Costs: the client drivers' completion cycle with no plane, with a
// disabled plane (must be the same cycle — the zero-overhead contract the
// pinned BenchmarkObsPinned also gates in CI) and with live sampling, plus
// the plane's own message volume per committed window. Buys: exact fidelity
// (summing a committed counter series reproduces the engine-side registry
// value), and the health monitor's kill-to-degraded-event latency against
// its documented bound of detector period + monitor op deadline + two
// sampling intervals. Every point is a hermetic seeded run and each point's
// result embeds a hash of the committed store's JSON export, so the sweep —
// including the store bytes — is checked byte-identical at any -parallel.

const (
	obsHorizon   = sim.Time(12_000_000)
	obsKillAt    = sim.Time(2_000_000)
	obsFDPeriod  = sim.Time(400_000)
	obsOpTimeout = sim.Time(100_000)
	// obsClientOps per driver, at one op per 30k cycles: drivers quiesce by
	// ~6 Mcycles, leaving windows of silence before the horizon so committed
	// totals must equal the registry exactly.
	obsClientOps = 120
)

type obsPoint struct {
	label    string
	interval sim.Time // 0 with plane=true: constructed but disabled
	plane    bool
}

type obsPointResult struct {
	doneAt                     sim.Time // last client driver completion
	ops                        uint64   // successful client ops
	windows, msgs, pairs, late uint64
	fidelityOK                 bool
	detectLat                  uint64 // kill→degraded-event cycles (0: no plane)
	recovered                  bool
	storeHash                  [32]byte
	storeBytes                 int
}

// ObsResult carries the headline numbers mkbench exports to BENCH_obs.json.
type ObsResult struct {
	Tab           *table
	ZeroOverhead  bool    // disabled-plane run finished on the base run's exact cycle
	SamplingDelta float64 // client completion delta of the finest live interval vs base, in cycles
	DetectLat     float64 // kill→degraded at the finest interval, cycles
	DetectBound   float64 // documented bound for that interval, cycles
	WithinBound   bool
	FidelityExact bool   // every live point reproduced the registry counter exactly
	Windows       uint64 // committed windows at the finest interval
	MsgsPerWindow float64
	StoreHash     uint32 // leading bytes of the finest point's store JSON sha256
}

func obsRun(seed uint64, pt obsPoint) obsPointResult {
	m := topo.AMD4x4()
	env := NewEnv(m, seed)
	defer env.Close()
	e := env.E

	net := monitor.NewNetwork(e, env.Sys, env.Kern, env.KB, monitor.Hooks{})
	net.EnableFaultTolerance(obsOpTimeout)
	cluster := apps.NewKVCluster(e, env.Sys, net, apps.ClusterConfig{
		Rows:    16,
		Servers: []topo.CoreID{2, 3, 6},
		Spares:  []topo.CoreID{8, 12},
	})
	cluster.StartFailureDetector(net, 0, obsFDPeriod)

	var pl *obs.Plane
	var health *obs.Health
	if pt.plane {
		pl = obs.NewPlane(e, env.Sys, env.KB, obs.Config{
			Interval: pt.interval, Seed: seed, Publish: true,
		})
		health = pl.EnableHealth(obs.HealthConfig{ReplicaTarget: 2})
		pl.Start()
	}

	var res obsPointResult
	for ci, core := range []topo.CoreID{1, 5, 10} {
		cl := cluster.Connect(core)
		rng := sim.NewRNG(seed ^ uint64(ci)*0x9e37_79b9_7f4a_7c15)
		e.Spawn(fmt.Sprintf("obsdrv%d", ci), func(p *sim.Proc) {
			for i := 0; i < obsClientOps; i++ {
				key := uint64(rng.Intn(16))
				var err error
				if rng.Uint64()%2 == 0 {
					_, err = cl.Put(p, key, uint64(i))
				} else {
					_, _, err = cl.Get(p, key)
				}
				if err == nil {
					res.ops++
				}
				p.Sleep(30_000)
			}
			if p.Now() > res.doneAt {
				res.doneAt = p.Now()
			}
		})
	}

	victim := cluster.Primary(0)
	e.After(obsKillAt, func() {
		cluster.KillCore(victim)
		net.FailStop(victim)
		if pl != nil {
			pl.FailStop(victim)
		}
	})
	e.RunUntil(obsHorizon)

	if pl != nil && pl.Enabled() {
		reg := e.Metrics()
		res.windows = reg.Counter("obs.windows").Value()
		res.msgs = reg.Counter("obs.msgs").Value()
		res.pairs = reg.Counter("obs.pairs").Value()
		res.late = reg.Counter("obs.late").Value()
		// Fidelity: the committed op-count series must sum to the exact
		// engine-side histogram population.
		_, n, _, _ := reg.Histogram("kv.op_cycles").Raw()
		s := pl.Store().Get("kv.op_cycles.n")
		res.fidelityOK = s != nil && s.Total() == int64(n)
		for _, ev := range health.Events() {
			if ev.Kind == obs.ShardDegraded && res.detectLat == 0 {
				res.detectLat = ev.At - uint64(obsKillAt)
			}
			if ev.Kind == obs.ShardRecovered {
				res.recovered = true
			}
		}
		buf := newHashWriter()
		if err := pl.Store().WriteJSON(buf); err != nil {
			panic(err)
		}
		res.storeHash = buf.sum()
		res.storeBytes = buf.n
	}
	return res
}

// hashWriter hashes the store export without retaining it.
type hashWriter struct {
	h hash.Hash
	n int
}

func newHashWriter() *hashWriter { return &hashWriter{h: sha256.New()} }

func (w *hashWriter) Write(p []byte) (int, error) {
	w.h.Write(p)
	w.n += len(p)
	return len(p), nil
}

func (w *hashWriter) sum() (out [32]byte) {
	copy(out[:], w.h.Sum(nil))
	return out
}

// obsBound is the documented detection bound for a sampling interval.
func obsBound(interval sim.Time) uint64 {
	return uint64(obsFDPeriod + obsOpTimeout + 2*interval)
}

// Obs sweeps the observability plane's sampling interval over the kvcluster
// fail-over scenario. seed selects the run family (mkbench -fault-seed).
func Obs(seed uint64) ObsResult {
	points := []obsPoint{
		{"no plane", 0, false},
		{"disabled", 0, true},
		{"400k", 400_000, true},
		{"200k", 200_000, true},
		{"100k", 100_000, true},
	}
	rs := harness.Map(len(points), func(i int) obsPointResult {
		return obsRun(seed, points[i])
	})

	tab := &table{
		Title: "Observability plane: cost and detection latency (4x4-core AMD, 1 server kill)",
		Columns: []string{"plane", "client done Mcy", "ops", "windows", "msgs/win",
			"late", "fidelity", "detect cycles", "bound", "store sha256"},
	}
	base := rs[0]
	res := ObsResult{Tab: tab, FidelityExact: true}
	for i, pt := range points {
		r := rs[i]
		mw, fid, det, bnd, hash := "-", "-", "-", "-", "-"
		if pt.plane && pt.interval > 0 {
			if r.windows > 0 {
				mw = fmt.Sprintf("%.1f", float64(r.msgs)/float64(r.windows))
			}
			fid = fmt.Sprintf("%v", r.fidelityOK)
			// A replica dip shorter than the sampling window is invisible to
			// the plane — the coarse-interval rows report it as missed.
			det = "missed"
			if r.detectLat > 0 {
				det = fmt.Sprintf("%d", r.detectLat)
			}
			bnd = fmt.Sprintf("%d", obsBound(pt.interval))
			hash = fmt.Sprintf("%x", r.storeHash[:6])
			res.FidelityExact = res.FidelityExact && r.fidelityOK
		}
		tab.AddRow(pt.label,
			fmt.Sprintf("%.3f", float64(r.doneAt)/1e6),
			fmt.Sprintf("%d", r.ops),
			fmt.Sprintf("%d", r.windows), mw,
			fmt.Sprintf("%d", r.late), fid, det, bnd, hash)
	}
	res.ZeroOverhead = rs[1].doneAt == base.doneAt && rs[1].ops == base.ops
	fine := rs[len(rs)-1]
	res.SamplingDelta = float64(fine.doneAt) - float64(base.doneAt)
	res.DetectLat = float64(fine.detectLat)
	res.DetectBound = float64(obsBound(points[len(points)-1].interval))
	res.WithinBound = fine.detectLat > 0 && fine.detectLat <= obsBound(points[len(points)-1].interval)
	res.Windows = fine.windows
	if fine.windows > 0 {
		res.MsgsPerWindow = float64(fine.msgs) / float64(fine.windows)
	}
	res.StoreHash = binary.BigEndian.Uint32(fine.storeHash[:4])
	return res
}
