package expt

// The parallel-boot benchmark (ROADMAP item 4): the full multikernel booted
// with core.BootParallel on the 8-socket machine, driven through the three
// app workloads of the evaluation — TLB-shootdown agreement storms, the
// web+database request path, and the replicated kvcluster — at several worker
// counts. Each workload's parallel runs must be byte-identical to its
// workers=1 run in every observable: the final engine checkpoint image
// (memory pages, MOESI directory, monitor cursors, clocks, RNG streams), the
// merged metrics snapshot rendered as JSON, and the per-partition event
// traces. Wall-clock speedup is hardware-dependent (it needs idle host
// cores); byte identity is not, and BENCH_boot.json records both along with
// the runner's core count.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"multikernel/internal/apps"
	"multikernel/internal/core"
	"multikernel/internal/interconnect"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// bootSeed seeds every parallel-boot run; results are a function of
// (seed, nparts) alone, which is exactly what the worker sweep verifies.
const bootSeed = 7

// BootWorkloadNames lists the boot workloads in sweep order.
var BootWorkloadNames = []string{"shootdown", "webserver", "kvcluster"}

// bootWorkload is one benchmark scenario on a parallel-booted system.
type bootWorkload struct {
	name string
	// setup builds the scenario. Replica-shared structures (stores, services,
	// channels) must be constructed identically in every replica — setup runs
	// ps.Each for those — while procs are spawned only in the replica owning
	// their core.
	setup func(ps *core.ParallelSystem, scale int)
	// staged, when true, drives the run through a RunUntil/Stop schedule
	// instead of one uninterrupted Run (the schedule is virtual-time-fixed,
	// so it cannot perturb results — which is what the identity gate checks).
	staged bool
}

// bootShootdown: core 0's monitor drives machine-wide unmap agreement rounds
// under the NUMA-aware multicast protocol. Every round fans out over the
// monitor mesh to all 32 cores — the aggregation tree spans every partition
// boundary — and completes only when the ack tree has folded back.
func bootShootdown(ps *core.ParallelSystem, scale int) {
	m := ps.Mach
	targets := make([]topo.CoreID, m.NumCores())
	for c := range targets {
		targets[c] = topo.CoreID(c)
	}
	s0 := ps.Local(0)
	s0.Eng.Spawn("shootdown-driver", func(p *sim.Proc) {
		mon := s0.Net.Monitor(0)
		for i := 0; i < scale; i++ {
			if !mon.Unmap(p, 0x4000_0000, 4096, targets, monitor.NUMAAware) {
				panic("expt: boot shootdown round failed")
			}
		}
	})
}

// bootWebserver: four web+database pairs (§5.4's shape), each pair straddling
// a partition boundary — the database core on an even socket, its web
// front-end on the following odd socket. Requests and replies cross
// partitions through the URPC mirror path; range results ride bulk pools.
func bootWebserver(ps *core.ParallelSystem, scale int) {
	ps.Each(func(part int, s *core.System) {
		for j := 0; j < 4; j++ {
			db := topo.CoreID(8 * j)    // socket 2j
			web := topo.CoreID(8*j + 4) // socket 2j+1
			kv := apps.NewKVStore(s.Cache, db, 128)
			svc := apps.NewKVService(s.Eng, kv)
			cl := svc.Connect(web)
			if !s.Cache.LocalCore(web) {
				continue
			}
			j := j
			s.Eng.Spawn(fmt.Sprintf("web%d", j), func(p *sim.Proc) {
				for i := 0; i < scale; i++ {
					key := uint64((i*7 + j) % 128)
					switch i % 4 {
					case 0:
						if _, err := cl.Update(p, key, uint64(i)<<8|uint64(j)); err != nil {
							panic(err)
						}
					case 2:
						if _, err := cl.SelectRange(p, key, key+24); err != nil {
							panic(err)
						}
					default:
						if _, _, err := cl.Select(p, key); err != nil {
							panic(err)
						}
					}
				}
			})
		}
	})
}

// bootKVCluster: the replicated kvstore spanning four partitions (primaries
// and backups on sockets 0–3), fault-free, with client cores on sockets 4 and
// 5 driving a mixed GET/PUT load. Every PUT's primary→backup replication and
// backup→primary ack crosses a partition boundary.
func bootKVCluster(ps *core.ParallelSystem, scale int) {
	cfg := apps.ClusterConfig{
		Shards:   4,
		Replicas: 2,
		Rows:     64,
		Servers:  []topo.CoreID{0, 4, 8, 12}, // sockets 0..3
	}
	clients := []topo.CoreID{16, 20} // sockets 4, 5
	ps.Each(func(part int, s *core.System) {
		cl := apps.NewKVCluster(s.Eng, s.Cache, s.Net, cfg)
		for ci, c := range clients {
			h := cl.Connect(c)
			if !s.Cache.LocalCore(c) {
				continue
			}
			ci, c := ci, c
			s.Eng.Spawn(fmt.Sprintf("kvclient@c%d", c), func(p *sim.Proc) {
				for i := 0; i < scale; i++ {
					key := uint64((i*13 + ci*29) % 64)
					if i%3 == 0 {
						if _, err := h.Put(p, key, uint64(i+1)<<16|uint64(ci)); err != nil {
							panic(err)
						}
					} else {
						if _, _, err := h.Get(p, key); err != nil {
							panic(err)
						}
					}
				}
			})
		}
	})
}

func bootWorkloads() []bootWorkload {
	return []bootWorkload{
		{name: "shootdown", setup: bootShootdown, staged: true},
		{name: "webserver", setup: bootWebserver},
		{name: "kvcluster", setup: bootKVCluster},
	}
}

// bootArtifacts are one run's identity-checked observables.
type bootArtifacts struct {
	img     []byte        // ParallelEngine checkpoint image
	metrics []byte        // merged metrics snapshot as JSON
	events  []trace.Event // per-partition traces, partition order
	nevents uint64        // sim.events_dispatched, the pinned count
	wall    float64
}

// BootMachine is the platform of the parallel-boot benchmark.
func BootMachine() *topo.Machine { return topo.AMD8x4() }

// bootRunOnce boots the multikernel on a per-socket ParallelEngine, runs one
// workload, and collects the identity artifacts.
func bootRunOnce(wl bootWorkload, scale, workers int) bootArtifacts {
	m := BootMachine()
	pm := topo.PerSocket(m)
	pe := sim.NewParallelEngine(pm.NParts(), interconnect.Lookahead(m, pm), bootSeed, workers)
	recs := make([]*trace.Recorder, pm.NParts())
	for i := range recs {
		recs[i] = trace.NewRecorder()
		pe.Part(i).SetTracer(recs[i])
	}
	ps := core.BootParallel(pe, m, core.Options{})
	wl.setup(ps, scale)

	t0 := time.Now()
	if wl.staged {
		// A virtual-time-fixed staging schedule: two RunUntil cuts (the
		// second lands mid-epoch, keeping the window open across calls), a
		// Stop from a virtual timer at t=2M (it takes effect at the next
		// epoch barrier, which sits on the worker-independent grid), then run
		// to completion. The identity gate proves staging is invisible in
		// every observable.
		pe.Part(0).After(2_000_000, func() { pe.Stop() })
		pe.RunUntil(500_000)
		pe.RunUntil(1_234_567)
		pe.Run() // returns at the first barrier past the Stop timer
		pe.Run() // drains to completion
	} else {
		pe.Run()
	}
	wall := time.Since(t0).Seconds()

	if dead := pe.Deadlocked(); len(dead) != 0 {
		panic(fmt.Sprintf("expt: boot %s deadlocked: %v", wl.name, dead))
	}
	snap := pe.MetricsSnapshot()
	mjson, err := json.Marshal(snap)
	if err != nil {
		panic("expt: boot metrics: " + err.Error())
	}
	var img bytes.Buffer
	if err := ps.Checkpoint(&img); err != nil {
		panic("expt: boot checkpoint: " + err.Error())
	}
	var evs []trace.Event
	for _, r := range recs {
		evs = append(evs, r.Events()...)
	}
	art := bootArtifacts{
		img:     img.Bytes(),
		metrics: mjson,
		events:  evs,
		nevents: snap.Counters["sim.events_dispatched"],
		wall:    wall,
	}
	pe.Close()
	return art
}

func sameEvents(a, b []trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BootBenchRow is one (workload, workers) point of the benchmark.
type BootBenchRow struct {
	Workload  string  `json:"workload"`
	Workers   int     `json:"workers"`
	SimEvents uint64  `json:"sim_events"`
	Seconds   float64 `json:"seconds"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"` // ckpt image + metrics JSON + traces vs w1
}

// BootParallelBench sweeps every workload over the worker counts. The first
// row of each workload is the workers=1 reference (Identical true by
// definition); every later row's artifacts are compared byte-for-byte against
// it. scale sets rounds per driver (shootdown rounds, requests per client).
func BootParallelBench(scale int, workerCounts []int) []BootBenchRow {
	var out []BootBenchRow
	for _, wl := range bootWorkloads() {
		ref := bootRunOnce(wl, scale, 1)
		out = append(out, BootBenchRow{
			Workload: wl.name, Workers: 1, SimEvents: ref.nevents,
			Seconds: ref.wall, Speedup: 1, Identical: true,
		})
		for _, w := range workerCounts {
			if w <= 1 {
				continue
			}
			r := bootRunOnce(wl, scale, w)
			row := BootBenchRow{
				Workload: wl.name, Workers: w, SimEvents: r.nevents, Seconds: r.wall,
				Identical: bytes.Equal(r.img, ref.img) &&
					bytes.Equal(r.metrics, ref.metrics) &&
					sameEvents(r.events, ref.events),
			}
			if ref.wall > 0 && r.wall > 0 {
				row.Speedup = ref.wall / r.wall
			}
			out = append(out, row)
		}
	}
	return out
}

// BootBenchTable renders the sweep in the evaluation's layout.
func BootBenchTable(rows []BootBenchRow) *table {
	t := &table{
		Title:   "Full multikernel boot on the parallel engine (8x4-core AMD, per-socket partitions)",
		Columns: []string{"workload", "workers", "sim events", "wall s", "speedup", "identical"},
	}
	for _, r := range rows {
		t.AddRow(
			r.Workload,
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.SimEvents),
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%v", r.Identical),
		)
	}
	return t
}
