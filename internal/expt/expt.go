// Package expt contains the benchmark harness: one runner per table and
// figure of the paper's evaluation (§5), each regenerating the same rows or
// series the paper reports, on the same (simulated) machines. EXPERIMENTS.md
// records the paper-vs-measured comparison for every artifact.
package expt

import (
	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
)

// Aliases keeping the runners concise.
type figure = stats.Figure
type series = stats.Series
type table = stats.Table

func newFigure(title, xlabel, ylabel string) *figure {
	return &figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Env bundles a freshly simulated machine for one measurement run.
type Env struct {
	E    *sim.Engine
	PE   *sim.ParallelEngine // non-nil when built by NewEnvWorkers
	M    *topo.Machine
	Sys  *cache.System
	Kern *kernel.System
	KB   *skb.KB
}

// NewEnv builds hardware models and a populated SKB for machine m.
func NewEnv(m *topo.Machine, seed uint64) *Env {
	return newEnv(sim.NewEngine(seed), nil, m)
}

// NewEnvWorkers builds the same env on a single-partition ParallelEngine with
// the given host-worker budget — the engine-selection knob behind the
// examples' -workers flags. One partition keeps driver-style measurement code
// valid while the run goes through the epoch loop and worker pool; the
// schedule is byte-identical to NewEnv's at every worker count. Drive it with
// Env.RunUntil, which dispatches to whichever engine the env runs on.
func NewEnvWorkers(m *topo.Machine, seed uint64, workers int) *Env {
	if workers <= 0 {
		return NewEnv(m, seed)
	}
	pe := sim.NewParallelEngine(1, sim.Forever, seed, workers)
	return newEnv(pe.Part(0), pe, m)
}

func newEnv(e *sim.Engine, pe *sim.ParallelEngine, m *topo.Machine) *Env {
	sys := cache.New(e, m, memory.New(m), interconnect.New(m))
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2*m.TransferLat(b, a) + 160 })
	return &Env{E: e, PE: pe, M: m, Sys: sys, Kern: kernel.NewSystem(e, m), KB: kb}
}

// RunUntil drives the env's engine — serial or parallel — to virtual time t.
func (v *Env) RunUntil(t sim.Time) {
	if v.PE != nil {
		v.PE.RunUntil(t)
		return
	}
	v.E.RunUntil(t)
}

// Close releases the env's engine.
func (v *Env) Close() {
	if v.PE != nil {
		v.PE.Close()
		return
	}
	v.E.Close()
}

// Cores returns the first n cores of the env's machine.
func (v *Env) Cores(n int) []topo.CoreID {
	out := make([]topo.CoreID, n)
	for i := range out {
		out[i] = topo.CoreID(i)
	}
	return out
}

// sweepCores returns the core counts used on the x-axes: 2..max in steps of
// step, always including max.
func sweepCores(step, max int) []int {
	var out []int
	for n := 2; n <= max; n += step {
		out = append(out, n)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
