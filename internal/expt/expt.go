// Package expt contains the benchmark harness: one runner per table and
// figure of the paper's evaluation (§5), each regenerating the same rows or
// series the paper reports, on the same (simulated) machines. EXPERIMENTS.md
// records the paper-vs-measured comparison for every artifact.
package expt

import (
	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
)

// Aliases keeping the runners concise.
type figure = stats.Figure
type series = stats.Series
type table = stats.Table

func newFigure(title, xlabel, ylabel string) *figure {
	return &figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Env bundles a freshly simulated machine for one measurement run.
type Env struct {
	E    *sim.Engine
	M    *topo.Machine
	Sys  *cache.System
	Kern *kernel.System
	KB   *skb.KB
}

// NewEnv builds hardware models and a populated SKB for machine m.
func NewEnv(m *topo.Machine, seed uint64) *Env {
	e := sim.NewEngine(seed)
	sys := cache.New(e, m, memory.New(m), interconnect.New(m))
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2*m.TransferLat(b, a) + 160 })
	return &Env{E: e, M: m, Sys: sys, Kern: kernel.NewSystem(e, m), KB: kb}
}

// Close releases the env's engine.
func (v *Env) Close() { v.E.Close() }

// Cores returns the first n cores of the env's machine.
func (v *Env) Cores(n int) []topo.CoreID {
	out := make([]topo.CoreID, n)
	for i := range out {
		out[i] = topo.CoreID(i)
	}
	return out
}

// sweepCores returns the core counts used on the x-axes: 2..max in steps of
// step, always including max.
func sweepCores(step, max int) []int {
	var out []int
	for n := 2; n <= max; n += step {
		out = append(out, n)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
