package expt

import (
	"fmt"

	"multikernel/internal/apps"
	"multikernel/internal/topo"
)

// Fig3 regenerates Figure 3: the cost of updating shared state with shared
// memory (SHM1–8: 1..8 cache lines updated directly by all cores) versus
// message passing (MSG1/MSG8: RPC to a server core), plus the server-side
// cost, on the 4×4-core AMD system, for 2..16 cores.
func Fig3(iters int) *figure {
	m := topo.AMD4x4()
	f := newFigure(
		"Figure 3: shared memory vs. message passing ("+m.Name+")",
		"cores", "latency (cycles)")
	shmLines := []int{1, 2, 4, 8}
	for _, lines := range shmLines {
		s := f.AddSeries(fmt.Sprintf("SHM%d", lines))
		for _, n := range sweepCores(2, 16) {
			env := NewEnv(m, 1)
			res := apps.SHMUpdate(env.E, env.Sys, n, lines, iters)
			s.AddErr(float64(n), res.ClientLatency.Percentile(50), res.ClientLatency.Stddev())
			env.Close()
		}
	}
	for _, lines := range []int{1, 8} {
		s := f.AddSeries(fmt.Sprintf("MSG%d", lines))
		var server *series
		if lines == 8 {
			server = f.AddSeries("Server")
		}
		for _, n := range sweepCores(2, 16) {
			env := NewEnv(m, 1)
			// n is the number of client cores; the server runs on core 0.
			clients := n - 1
			if clients < 1 {
				clients = 1
			}
			res := apps.MSGUpdate(env.E, env.Sys, clients, lines, iters)
			s.AddErr(float64(n), res.ClientLatency.Percentile(50), res.ClientLatency.Stddev())
			if server != nil {
				server.Add(float64(n), res.ServerCost.Percentile(50))
			}
			env.Close()
		}
	}
	return f
}
