package expt

import (
	"fmt"

	"multikernel/internal/kernel"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// Table1 regenerates Table 1: one-way LRPC latency on each test platform.
// Each platform is sampled with the CPU driver's jittered fast path.
func Table1(samples int) *table {
	t := &table{
		Title:   "Table 1: LRPC latency",
		Columns: []string{"System", "cycles", "(σ)", "ns"},
	}
	for _, m := range topo.AllMachines() {
		env := NewEnv(m, 7)
		var s stats.Sample
		env.E.Spawn("bench", func(p *sim.Proc) {
			for i := 0; i < samples; i++ {
				start := p.Now()
				env.Kern.Core(0).LRPC(p)
				// Per-run microarchitectural variance.
				p.Sleep(env.E.RNG().Time(kernel.LRPCCost(m) / 16))
				s.Add(float64(p.Now() - start))
			}
		})
		env.E.Run()
		env.Close()
		t.AddRow(m.Name,
			fmt.Sprintf("%.0f", s.Mean()),
			fmt.Sprintf("(%.0f)", s.Stddev()),
			fmt.Sprintf("%.0f", m.Nanoseconds(sim.Time(s.Mean()))))
	}
	return t
}

// pairSpec names one cache relationship measured in Table 2.
type pairSpec struct {
	label    string
	from, to topo.CoreID
}

func table2Pairs(m *topo.Machine) []pairSpec {
	switch m.Name {
	case "2x4-core Intel":
		return []pairSpec{{"shared", 0, 1}, {"non-shared", 0, 4}}
	case "2x2-core AMD":
		return []pairSpec{{"same die", 0, 1}, {"one-hop", 0, 2}}
	case "4x4-core AMD":
		return []pairSpec{{"shared", 0, 1}, {"one-hop", 0, 4}, {"two-hop", 0, 12}}
	case "8x4-core AMD":
		return []pairSpec{{"shared", 0, 1}, {"one-hop", 0, 4}, {"two-hop", 0, 8}}
	}
	return []pairSpec{{"pair", 0, topo.CoreID(m.CoresPerSocket)}}
}

// URPCResult is one measured channel configuration.
type URPCResult struct {
	Latency    stats.Sample // one-way latency in cycles
	Throughput float64      // pipelined messages per kilocycle
	DcacheUsed int          // distinct cache lines touched per round trip
}

// MeasureURPC measures one-way latency (paced single messages) and pipelined
// throughput (queue of 16) between two cores.
func MeasureURPC(m *topo.Machine, from, to topo.CoreID, samples int, prefetch bool) *URPCResult {
	res := &URPCResult{}

	// Latency: paced messages carrying their send timestamp.
	env := NewEnv(m, 3)
	ch := urpc.New(env.Sys, from, to, urpc.Options{Home: -1, Prefetch: prefetch})
	env.E.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < samples+3; i++ {
			msg := ch.Recv(p)
			if i >= 3 { // discard warm-up
				res.Latency.Add(float64(p.Now() - sim.Time(msg[0])))
			}
		}
	})
	env.E.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < samples+3; i++ {
			p.Sleep(3000) // pace far apart
			ch.Send(p, urpc.Message{uint64(p.Now())})
		}
	})
	env.E.Run()
	env.Close()

	// Throughput: pipelined stream of messages, queue length 16.
	env = NewEnv(m, 3)
	ch = urpc.New(env.Sys, from, to, urpc.Options{Home: -1, Slots: 16, Prefetch: prefetch})
	const burst = 600
	var start, end sim.Time
	env.E.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < burst; i++ {
			ch.Recv(p)
		}
		end = p.Now()
	})
	env.E.Spawn("send", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < burst; i++ {
			ch.Send(p, urpc.Message{uint64(i)})
		}
	})
	env.E.Run()
	res.Throughput = float64(burst) * 1000 / float64(end-start)
	env.Close()

	// Cache footprint: distinct lines touched by one request/response
	// exchange on a small (Table 3 style) ring.
	env = NewEnv(m, 3)
	req := urpc.New(env.Sys, from, to, urpc.Options{Home: -1, Slots: 4})
	rsp := urpc.New(env.Sys, to, from, urpc.Options{Home: -1, Slots: 4})
	env.E.Spawn("echo", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			rsp.Send(p, req.Recv(p))
		}
	})
	env.E.Spawn("caller", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			if i == 5 {
				env.Sys.StartTouchTracking()
			}
			req.Send(p, urpc.Message{uint64(i)})
			rsp.Recv(p)
		}
		res.DcacheUsed = env.Sys.StopTouchTracking()
	})
	env.E.Run()
	env.Close()
	return res
}

// Table2 regenerates Table 2: URPC one-way latency and pipelined throughput
// for each cache relationship on each machine.
func Table2(samples int) *table {
	t := &table{
		Title:   "Table 2: URPC performance",
		Columns: []string{"System", "Cache", "Latency cycles", "(σ)", "ns", "Throughput msgs/kcycle"},
	}
	for _, m := range topo.AllMachines() {
		for _, pr := range table2Pairs(m) {
			r := MeasureURPC(m, pr.from, pr.to, samples, false)
			t.AddRow(m.Name, pr.label,
				fmt.Sprintf("%.0f", r.Latency.Mean()),
				fmt.Sprintf("(%.0f)", r.Latency.Stddev()),
				fmt.Sprintf("%.0f", m.Nanoseconds(sim.Time(r.Latency.Mean()))),
				fmt.Sprintf("%.2f", r.Throughput))
		}
	}
	return t
}

// L4 comparator constants: the paper measured L4Ka::Pistachio's same-core
// IPC at 424 cycles on the 2×2 AMD system, using 25 icache and 13 dcache
// lines. We model the latency as the kernel IPC fast path (syscall + one
// context switch + minimal dispatch) and carry the paper's cache footprints
// for the comparator row.
const (
	l4DispatchCost = 50
	l4Icache       = 25
	l4Dcache       = 13
	urpcIcache     = 9 // URPC's polling loop and demux code footprint
)

// L4IPCCost returns the modelled one-way L4 IPC cost on machine m.
func L4IPCCost(m *topo.Machine) sim.Time {
	return m.Costs.Syscall + m.Costs.CSwitch + l4DispatchCost
}

// Table3 regenerates Table 3: URPC versus L4 IPC on the 2×2-core AMD system.
func Table3(samples int) *table {
	m := topo.AMD2x2()
	r := MeasureURPC(m, 0, 2, samples, false)
	l4lat := float64(L4IPCCost(m))
	// L4's synchronous IPC throughput: one switch each way per message.
	l4thr := 1000 / float64(2*L4IPCCost(m)) * 2

	t := &table{
		Title:   "Table 3: messaging costs on 2x2-core AMD",
		Columns: []string{"", "Latency cycles", "Throughput msgs/kcycle", "Icache lines", "Dcache lines"},
	}
	t.AddRow("URPC",
		fmt.Sprintf("%.0f", r.Latency.Mean()),
		fmt.Sprintf("%.2f", r.Throughput),
		fmt.Sprintf("%d", urpcIcache),
		fmt.Sprintf("%d", r.DcacheUsed))
	t.AddRow("L4 IPC",
		fmt.Sprintf("%.0f", l4lat),
		fmt.Sprintf("%.2f", l4thr),
		fmt.Sprintf("%d", l4Icache),
		fmt.Sprintf("%d", l4Dcache))
	return t
}
