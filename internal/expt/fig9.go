package expt

import (
	"multikernel/internal/apps"
	"multikernel/internal/baseline"
	"multikernel/internal/harness"
	"multikernel/internal/threads"
	"multikernel/internal/topo"
)

// fig9CoreCounts are the x-axis points of Figure 9.
func fig9CoreCounts() []int { return []int{1, 2, 4, 8, 12, 16} }

// RunFig9Workload measures one workload at one core count under both
// systems, returning total cycles (Barrelfish, Linux).
func RunFig9Workload(wl apps.Workload, n int) (bf, lx float64) {
	m := topo.AMD4x4()

	{ // Barrelfish: user-space threads and spin barriers.
		env := NewEnv(m, 2)
		team := threads.NewTeam(env.Sys, env.Kern, env.Cores(16))
		bf = float64(apps.RunCompute(team, wl, env.Cores(n), func(parts int) apps.Barrier {
			return apps.SpinBarrierAdapter{B: team.NewSpinBarrier(parts, 0)}
		}))
		env.Close()
	}
	{ // Linux: in-kernel futex barriers (plus their syscall costs).
		env := NewEnv(m, 2)
		k := baseline.New(env.E, env.Sys, env.Kern, baseline.Linux)
		team := threads.NewTeam(env.Sys, env.Kern, env.Cores(16))
		lx = float64(apps.RunCompute(team, wl, env.Cores(n), func(parts int) apps.Barrier {
			return kernelBarrier{k.NewBarrier(parts, 0)}
		}))
		env.Close()
	}
	return bf, lx
}

// kernelBarrier adapts the baseline barrier to the workload interface.
type kernelBarrier struct{ b *baseline.Barrier }

func (a kernelBarrier) Wait(th *threads.Thread) { a.b.Wait(th.Proc(), th.Core()) }

// Fig9 regenerates Figure 9: the five compute-bound workloads (NAS CG, FT,
// IS; SPLASH-2 Barnes-Hut and radiosity) on the 4×4-core AMD system,
// Barrelfish versus Linux, 1..16 cores. One figure per workload. All
// (workload, cores) points share one harness worker pool so the expensive
// workloads do not serialize behind each other.
func Fig9(scale float64) []*figure {
	wls := apps.NASWorkloads()
	for i := range wls {
		if scale > 0 && scale < 1 {
			wls[i].Iters = int(float64(wls[i].Iters)*scale) + 1
		}
	}
	ns := fig9CoreCounts()
	type point struct{ bf, lx float64 }
	pts := harness.Map2(len(wls), len(ns), func(wi, ni int) point {
		bf, lx := RunFig9Workload(wls[wi], ns[ni])
		return point{bf, lx}
	})
	var out []*figure
	for wi, wl := range wls {
		f := newFigure("Figure 9: "+wl.Name+" (4x4-core AMD)", "cores", "cycles")
		bfs := f.AddSeries("Barrelfish")
		lxs := f.AddSeries("Linux")
		for ni, n := range ns {
			bfs.Add(float64(n), pts[wi][ni].bf)
			lxs.Add(float64(n), pts[wi][ni].lx)
		}
		out = append(out, f)
	}
	return out
}
