package expt

import (
	"multikernel/internal/core"
	"multikernel/internal/fault"
	"multikernel/internal/harness"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file holds the robustness extension experiment: how the agreement
// protocols behave under a seeded fault schedule on the 8×4-core AMD system.
// Each point arms a fault.Random schedule (fail-stop cores plus degraded
// links and cache-owner stalls, all derived from the point's seed) onto a
// fresh engine and drives repeated global unmaps through it with monitor
// fault tolerance enabled. Reported are the recovery latency — from each
// kill to the completion of the first coordinated operation that finishes
// after it — and the degraded-mode throughput of the surviving cores.

// recoveryOpTimeout is the aggregation deadline used by the recovery
// experiment: comfortably above any fault-free response time on the 8×4
// machine, small against the experiment horizon.
const recoveryOpTimeout = 100_000

// recoveryPoint is one hermetic run: faults faults (that many kills, link
// degradations, and stalls each) against rounds sequential global unmaps.
type recoveryResult struct {
	meanRecovery float64 // mean cycles from a kill to the next op completion
	maxLatency   float64 // slowest single unmap round
	throughput   float64 // completed unmaps per Mcycle of driver wall-clock
	failures     int     // unmap rounds that returned false
}

func recoveryPoint(seed uint64, faults, rounds int) recoveryResult {
	m := topo.AMD8x4()
	e := sim.NewEngine(seed)
	defer e.Close()
	s := core.Boot(e, m)
	s.Net.EnableFaultTolerance(recoveryOpTimeout)
	inj := fault.NewInjector(e, s.Cache)
	inj.OnKill(func(c topo.CoreID) { s.Net.FailStop(c) })
	sched := fault.Random(seed, m, fault.Spec{
		Kills:      faults,
		LinkFaults: faults,
		Stalls:     faults,
		Window:     [2]sim.Time{50_000, sim.Time(rounds) * 60_000},
		Protect:    []topo.CoreID{0},
	})
	inj.Arm(sched)

	var res recoveryResult
	var completions []sim.Time
	var start, end sim.Time
	var maxLat sim.Time
	done := 0
	e.Spawn("driver", func(p *sim.Proc) {
		mon := s.Net.Monitor(0)
		start = p.Now()
		for i := 0; i < rounds; i++ {
			p.Sleep(10_000)
			t0 := p.Now()
			if mon.Unmap(p, 0x10000, 4096, nil, monitor.NUMAAware) {
				done++
				completions = append(completions, p.Now())
			} else {
				res.failures++
			}
			if lat := p.Now() - t0; lat > maxLat {
				maxLat = lat
			}
			p.Sleep(20_000)
		}
		end = p.Now()
	})
	e.Run()

	var recSum float64
	var recN int
	for _, c := range sched.Kills() {
		killT, ok := inj.Killed(c)
		if !ok {
			continue // fired after the driver finished
		}
		for _, ct := range completions {
			if ct >= killT {
				recSum += float64(ct - killT)
				recN++
				break
			}
		}
	}
	if recN > 0 {
		res.meanRecovery = recSum / float64(recN)
	}
	res.maxLatency = float64(maxLat)
	if end > start {
		res.throughput = float64(done) / (float64(end-start) / 1e6)
	}
	return res
}

// FaultRecovery sweeps the fault rate on the 8×4-core AMD system and returns
// the recovery-latency and degraded-throughput figures. seed selects the
// family of fault schedules (mkbench -fault-seed); each sweep point mixes it
// with the fault count so no two points share a schedule, and the whole sweep
// is byte-identical at any harness parallelism.
func FaultRecovery(seed uint64, rounds int) (*figure, *figure) {
	lat := newFigure("Extension: recovery latency under seeded faults (8x4-core AMD)",
		"faults injected (kills = link faults = stalls)", "cycles")
	rec := lat.AddSeries("mean kill-to-completion recovery")
	worst := lat.AddSeries("max unmap latency")
	thr := newFigure("Extension: degraded-mode throughput under seeded faults (8x4-core AMD)",
		"faults injected (kills = link faults = stalls)", "unmaps per Mcycle")
	tseries := thr.AddSeries("completed unmaps per Mcycle")

	faults := []int{0, 1, 2, 4, 8}
	pts := harness.Map(len(faults), func(i int) recoveryResult {
		return recoveryPoint(seed+uint64(i)*0x9e37_79b9_7f4a_7c15, faults[i], rounds)
	})
	for i, k := range faults {
		x := float64(k)
		rec.Add(x, pts[i].meanRecovery)
		worst.Add(x, pts[i].maxLatency)
		tseries.Add(x, pts[i].throughput)
	}
	return lat, thr
}
