package expt

import "testing"

// TestFaultRecoveryShape is the acceptance check for the recovery
// experiment: with faults injected, recovery latency is finite and positive,
// every sweep point keeps completing operations, and degraded-mode
// throughput decreases from the fault-free point.
func TestFaultRecoveryShape(t *testing.T) {
	lat, thr := FaultRecovery(42, 6)
	for _, x := range []float64{1, 2, 4, 8} {
		rec := yAt(t, lat, "mean kill-to-completion recovery", x)
		if rec <= 0 || rec > 20*recoveryOpTimeout {
			t.Errorf("faults=%v: recovery latency %v not finite/positive/bounded", x, rec)
		}
	}
	if rec := yAt(t, lat, "mean kill-to-completion recovery", 0); rec != 0 {
		t.Errorf("fault-free point reports nonzero recovery latency %v", rec)
	}
	for _, x := range []float64{0, 1, 2, 4, 8} {
		if tp := yAt(t, thr, "completed unmaps per Mcycle", x); tp <= 0 {
			t.Errorf("faults=%v: throughput %v, want > 0", x, tp)
		}
		if worst := yAt(t, lat, "max unmap latency", x); worst <= 0 {
			t.Errorf("faults=%v: max latency %v, want > 0", x, worst)
		}
	}
	if thrF, thr8 := yAt(t, thr, "completed unmaps per Mcycle", 0),
		yAt(t, thr, "completed unmaps per Mcycle", 8); thr8 >= thrF {
		t.Errorf("throughput did not degrade under faults: fault-free %v vs 8 faults %v", thrF, thr8)
	}
}
