package expt

import (
	"fmt"

	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// AblationPrefetch quantifies the URPC receive-side prefetch option (§4.6):
// pipelined throughput with and without prefetching, on the 8×4 AMD system's
// one-hop pair.
func AblationPrefetch(samples int) *table {
	m := topo.AMD8x4()
	off := MeasureURPC(m, 0, 4, samples, false)
	on := MeasureURPC(m, 0, 4, samples, true)
	t := &table{
		Title:   "Ablation: URPC receive prefetch (8x4-core AMD, one-hop)",
		Columns: []string{"Prefetch", "Latency (cycles)", "Throughput (msgs/kcycle)"},
	}
	t.AddRow("off", fmt.Sprintf("%.0f", off.Latency.Mean()), fmt.Sprintf("%.2f", off.Throughput))
	t.AddRow("on", fmt.Sprintf("%.0f", on.Latency.Mean()), fmt.Sprintf("%.2f", on.Throughput))
	return t
}

// AblationShootdownProtocols compares the integrated (full unmap path)
// latency of the dissemination protocols at 32 cores — the design choice
// behind Figure 7's use of the NUMA-aware tree.
func AblationShootdownProtocols(iters int) *table {
	m := topo.AMD8x4()
	t := &table{
		Title:   "Ablation: unmap dissemination protocol at 32 cores (8x4-core AMD)",
		Columns: []string{"Protocol", "Unmap latency (cycles)"},
	}
	for _, pr := range []monitor.Protocol{monitor.Unicast, monitor.Multicast, monitor.NUMAAware} {
		lat := unmapLatencyProto(m, 32, iters, pr)
		t.AddRow(pr.String(), fmt.Sprintf("%.0f", lat))
	}
	return t
}

// AblationPipelineDepth sweeps the two-phase-commit pipeline depth at 32
// cores, showing how batching amortizes agreement latency (Figure 8's
// "cost when pipelining" design point).
func AblationPipelineDepth(iters int) *table {
	m := topo.AMD8x4()
	t := &table{
		Title:   "Ablation: 2PC pipeline depth at 32 cores (8x4-core AMD)",
		Columns: []string{"Depth", "Cycles per operation"},
	}
	for _, d := range []int{1, 2, 4, 8, 16, 32} {
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%.0f", twoPCLatency(m, 32, iters, d)))
	}
	return t
}

// AblationPollWindow sweeps the poll-before-block window against early and
// late arrivals, validating the §5.2 model empirically.
func AblationPollWindow() *table {
	m := topo.AMD2x2()
	C := 2 * (m.Costs.Trap + m.Costs.CSwitch) // block+wake round trip scale
	t := &table{
		Title:   "Ablation: poll window vs. arrival time (2x2-core AMD)",
		Columns: []string{"window", "arrival", "rx overhead (cycles)", "msg latency (cycles)"},
	}
	for _, wFrac := range []float64{0.25, 1, 4} {
		for _, aFrac := range []float64{0.5, 2} {
			w := sim.Time(float64(C) * wFrac)
			a := sim.Time(float64(C) * aFrac)
			ov, lat := MeasurePollWindow(m, w, a)
			t.AddRow(fmt.Sprintf("%.2fC", wFrac), fmt.Sprintf("%.1fC", aFrac),
				fmt.Sprintf("%d", ov), fmt.Sprintf("%d", lat))
		}
	}
	return t
}
