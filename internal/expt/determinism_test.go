package expt

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"testing"

	"multikernel/internal/harness"
	"multikernel/internal/metrics"
	"multikernel/internal/stats"
	"multikernel/internal/trace"
)

// TestParallelSweepDeterminism is the harness determinism contract: running
// a sweep serially and through the parallel worker pool must produce
// byte-identical rendered output, because every experiment point is a
// hermetic, seed-deterministic engine run and results are collected in
// index order. The fault-recovery sweep rides along: fault schedules are
// pure data derived from each point's seed and injected at exact virtual
// times, so fault injection must not break the contract either.
func TestParallelSweepDeterminism(t *testing.T) {
	render := func(par int) string {
		old := harness.Parallelism()
		harness.SetParallelism(par)
		defer harness.SetParallelism(old)
		out := stats.RenderFigure(Fig6(2), 72, 18)
		out += stats.RenderFigure(Fig7(1), 72, 18)
		lat, thr := FaultRecovery(42, 4)
		out += stats.RenderFigure(lat, 72, 18)
		out += stats.RenderFigure(thr, 72, 18)
		klat, kthr, ktab := KVFault(42)
		out += stats.RenderFigure(klat, 72, 18)
		out += stats.RenderFigure(kthr, 72, 18)
		out += ktab.Render()
		return out
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != serial {
			t.Fatalf("parallelism %d produced different rendered output than serial run", par)
		}
	}
}

// TestTraceMetricsDeterminism extends the contract to the observability
// layer: the exported Chrome-trace bytes and the merged metrics snapshot of a
// sweep must be byte-identical at any host parallelism and for every fault
// seed. Traces are full event streams, so this is a much sharper check than
// comparing rendered figures — a single reordered or time-shifted event
// anywhere in any engine changes the hash.
func TestTraceMetricsDeterminism(t *testing.T) {
	capture := func(par int, faultSeed uint64) (traceHash [32]byte, metricsJSON []byte, nEvents int) {
		old := harness.Parallelism()
		harness.SetParallelism(par)
		defer harness.SetParallelism(old)

		trace.StartCapture()
		metrics.StartCapture()
		stats.RenderFigure(Fig6(1), 72, 18)
		FaultRecovery(faultSeed, 2)
		var buf bytes.Buffer
		if err := trace.WriteCaptured(&buf); err != nil {
			t.Fatal(err)
		}
		trace.StopCapture()
		snap := metrics.TakeCapture()
		js, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return sha256.Sum256(buf.Bytes()), js, bytes.Count(buf.Bytes(), []byte("\n"))
	}

	for _, faultSeed := range []uint64{42, 1007} {
		h1, m1, n1 := capture(1, faultSeed)
		if n1 < 1000 {
			t.Fatalf("seed %d: capture suspiciously small (%d lines); instrumentation not firing?", faultSeed, n1)
		}
		for _, par := range []int{2, 8} {
			hp, mp, _ := capture(par, faultSeed)
			if hp != h1 {
				t.Errorf("seed %d: trace bytes differ between -parallel=1 and -parallel=%d", faultSeed, par)
			}
			if !bytes.Equal(mp, m1) {
				t.Errorf("seed %d: metrics snapshot differs between -parallel=1 and -parallel=%d", faultSeed, par)
			}
		}
		// The fault-free Fig6 points and the faulted recovery rounds share one
		// capture, so timeouts must come only from injected faults: a second
		// run of the fault-free figure alone must report zero.
		trace.StopCapture()
		metrics.StartCapture()
		stats.RenderFigure(Fig6(1), 72, 18)
		clean := metrics.TakeCapture()
		if to, re := clean.Counters["urpc.timeouts"], clean.Counters["urpc.retries"]; to != 0 || re != 0 {
			t.Errorf("fault-free sweep reported urpc.timeouts=%d urpc.retries=%d, want 0/0", to, re)
		}
	}
}
