package expt

import (
	"testing"

	"multikernel/internal/harness"
	"multikernel/internal/stats"
)

// TestParallelSweepDeterminism is the harness determinism contract: running
// a sweep serially and through the parallel worker pool must produce
// byte-identical rendered output, because every experiment point is a
// hermetic, seed-deterministic engine run and results are collected in
// index order. The fault-recovery sweep rides along: fault schedules are
// pure data derived from each point's seed and injected at exact virtual
// times, so fault injection must not break the contract either.
func TestParallelSweepDeterminism(t *testing.T) {
	render := func(par int) string {
		old := harness.Parallelism()
		harness.SetParallelism(par)
		defer harness.SetParallelism(old)
		out := stats.RenderFigure(Fig6(2), 72, 18)
		out += stats.RenderFigure(Fig7(1), 72, 18)
		lat, thr := FaultRecovery(42, 4)
		out += stats.RenderFigure(lat, 72, 18)
		out += stats.RenderFigure(thr, 72, 18)
		return out
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != serial {
			t.Fatalf("parallelism %d produced different rendered output than serial run", par)
		}
	}
}
