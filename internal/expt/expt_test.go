package expt

import (
	"fmt"
	"strings"
	"testing"

	"multikernel/internal/apps"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
)

func yAt(t *testing.T, f *stats.Figure, series string, x float64) float64 {
	t.Helper()
	s := f.Get(series)
	if s == nil {
		t.Fatalf("series %q missing", series)
	}
	v, ok := s.YAt(x)
	if !ok {
		t.Fatalf("series %q has no point at %v", series, x)
	}
	return v
}

func TestFig3Shape(t *testing.T) {
	f := Fig3(12)
	// SHM grows with both line count and cores.
	if yAt(t, f, "SHM8", 16) <= yAt(t, f, "SHM1", 16) {
		t.Error("SHM8 not more expensive than SHM1 at 16 cores")
	}
	if yAt(t, f, "SHM8", 16) <= yAt(t, f, "SHM8", 4) {
		t.Error("SHM8 not growing with cores")
	}
	// Headline: at high core counts MSG8 beats SHM8 (and approaches SHM4).
	if yAt(t, f, "MSG8", 16) >= yAt(t, f, "SHM8", 16) {
		t.Errorf("MSG8 (%v) not below SHM8 (%v) at 16 cores",
			yAt(t, f, "MSG8", 16), yAt(t, f, "SHM8", 16))
	}
	// Server-side cost stays flat.
	if yAt(t, f, "Server", 16) > 3*yAt(t, f, "Server", 4) {
		t.Error("server cost not flat")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1(24)
	want := map[string]float64{
		"2x4-core Intel": 845,
		"2x2-core AMD":   757,
		"4x4-core AMD":   1463,
		"8x4-core AMD":   1549,
	}
	for _, row := range tb.Rows {
		w := want[row[0]]
		var got float64
		if _, err := sscan(row[1], &got); err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if got < w*0.92 || got > w*1.08 {
			t.Errorf("%s: LRPC %v, want ~%v", row[0], got, w)
		}
	}
}

// sscan parses a float cell.
func sscan(s string, out *float64) (int, error) {
	var v float64
	n, err := fmtSscan(s, &v)
	*out = v
	return n, err
}

func TestTable2LatenciesInPaperBallpark(t *testing.T) {
	// Paper Table 2 latencies (cycles); allow ±30% model slack.
	want := map[[2]string]float64{
		{"2x4-core Intel", "shared"}:     180,
		{"2x4-core Intel", "non-shared"}: 570,
		{"2x2-core AMD", "same die"}:     450,
		{"2x2-core AMD", "one-hop"}:      532,
		{"4x4-core AMD", "shared"}:       448,
		{"4x4-core AMD", "one-hop"}:      545,
		{"4x4-core AMD", "two-hop"}:      558,
		{"8x4-core AMD", "shared"}:       538,
		{"8x4-core AMD", "one-hop"}:      613,
		{"8x4-core AMD", "two-hop"}:      618,
	}
	tb := Table2(10)
	checked := 0
	for _, row := range tb.Rows {
		key := [2]string{row[0], row[1]}
		w, ok := want[key]
		if !ok {
			continue
		}
		var got float64
		sscan(row[2], &got)
		lo, hi := w*0.70, w*1.30
		// The Intel shared-L2 pair has software costs larger than the
		// hardware path; allow it wider slack.
		if key[1] == "shared" && key[0] == "2x4-core Intel" {
			hi = w * 1.9
		}
		if got < lo || got > hi {
			t.Errorf("%v: latency %v, want ~%v", key, got, w)
		}
		checked++
	}
	if checked != len(want) {
		t.Fatalf("checked %d of %d rows", checked, len(want))
	}
}

func TestTable3URPCCompetitiveWithL4(t *testing.T) {
	tb := Table3(10)
	var urpcLat, l4Lat, urpcThr, l4Thr float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "URPC":
			sscan(row[1], &urpcLat)
			sscan(row[2], &urpcThr)
		case "L4 IPC":
			sscan(row[1], &l4Lat)
			sscan(row[2], &l4Thr)
		}
	}
	// Paper: URPC 450 vs L4 424 cycles — same ballpark; URPC throughput
	// higher thanks to pipelining.
	if urpcLat > 2*l4Lat {
		t.Errorf("URPC latency %v not comparable to L4 %v", urpcLat, l4Lat)
	}
	if urpcThr <= l4Thr {
		t.Errorf("URPC throughput %v not above L4 %v", urpcThr, l4Thr)
	}
}

func TestFig6Shape(t *testing.T) {
	f := Fig6(4)
	b := yAt(t, f, "Broadcast", 32)
	u := yAt(t, f, "Unicast", 32)
	mc := yAt(t, f, "Multicast", 32)
	nm := yAt(t, f, "NUMA-Aware Multicast", 32)
	t.Logf("fig6 at 32: broadcast=%v unicast=%v multicast=%v numa=%v", b, u, mc, nm)
	if !(nm <= mc && mc < u && u < b) {
		t.Errorf("protocol ordering violated")
	}
	// Broadcast grows linearly; NUMA-aware stays nearly flat.
	if yAt(t, f, "Broadcast", 32) < 2.5*yAt(t, f, "Broadcast", 8) {
		t.Error("broadcast not scaling linearly")
	}
	if yAt(t, f, "NUMA-Aware Multicast", 32) > 3*yAt(t, f, "NUMA-Aware Multicast", 8) {
		t.Error("NUMA multicast growing too fast")
	}
}

func TestFig7Shape(t *testing.T) {
	f := Fig7(2)
	// At 2 cores the IPI path wins; by 32 cores Barrelfish wins.
	if yAt(t, f, "Barrelfish", 2) < yAt(t, f, "Linux", 2) {
		t.Error("Barrelfish should lose at 2 cores (constant message overhead)")
	}
	bf32, lx32, wn32 := yAt(t, f, "Barrelfish", 32), yAt(t, f, "Linux", 32), yAt(t, f, "Windows", 32)
	t.Logf("fig7 at 32: barrelfish=%v linux=%v windows=%v", bf32, lx32, wn32)
	if bf32 >= lx32 || bf32 >= wn32 {
		t.Error("Barrelfish not fastest at 32 cores")
	}
	if wn32 >= lx32 {
		t.Error("Windows should beat Linux (cheaper IPI path)")
	}
}

func TestFig8Shape(t *testing.T) {
	f := Fig8(2)
	single32 := yAt(t, f, "Single-operation latency", 32)
	piped32 := yAt(t, f, "Cost when pipelining", 32)
	t.Logf("fig8 at 32: single=%v piped=%v", single32, piped32)
	if piped32 >= single32 {
		t.Error("pipelining does not amortize 2PC cost")
	}
	// 2PC is more expensive than 1PC shootdown (two rounds).
	f7 := Fig7(2)
	if single32 <= yAt(t, f7, "Barrelfish", 32)/2 {
		t.Error("2PC suspiciously cheaper than unmap")
	}
}

func TestTable4Shape(t *testing.T) {
	bf, lx := LoopbackBF(), LoopbackLinux()
	t.Logf("BF: %+v", *bf)
	t.Logf("LX: %+v", *lx)
	if bf.ThroughputMbit <= lx.ThroughputMbit {
		t.Error("Barrelfish loopback not faster than Linux")
	}
	if bf.DcachePerPkt >= lx.DcachePerPkt {
		t.Error("Barrelfish should take fewer dcache misses per packet")
	}
	if bf.RevDwords >= lx.RevDwords {
		t.Error("Barrelfish reverse-direction traffic should be much lower (no lock ping-pong)")
	}
	if bf.FwdDwords >= lx.FwdDwords {
		t.Error("Barrelfish forward traffic should be lower")
	}
}

func TestFig9Shape(t *testing.T) {
	// Spot-check one barrier-heavy workload (CG-like) at small scale: both
	// systems speed up with cores and stay within 2x of each other.
	wl := fig9TestWorkload()
	bf1, lx1 := RunFig9Workload(wl, 1)
	bf8, lx8 := RunFig9Workload(wl, 8)
	t.Logf("1 core: bf=%v lx=%v; 8 cores: bf=%v lx=%v", bf1, lx1, bf8, lx8)
	if bf8 >= bf1 || lx8 >= lx1 {
		t.Error("no speedup from 1 to 8 cores")
	}
	ratio := bf8 / lx8
	if ratio > 1.5 || ratio < 0.3 {
		t.Errorf("systems diverge too much on compute-bound work: ratio %v", ratio)
	}
}

func TestPollModelTable(t *testing.T) {
	tb := PollModel(6000)
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	out := tb.Render()
	if !strings.Contains(out, "12000") {
		t.Errorf("P+C bound missing from:\n%s", out)
	}
}

func TestMeasurePollWindowMatchesModel(t *testing.T) {
	m := topo.AMD2x2()
	// Early arrival: latency far below the blocking cost.
	_, latEarly := MeasurePollWindow(m, 50_000, 5_000)
	// Late arrival with a tiny window: pays the blocking round trip.
	_, latLate := MeasurePollWindow(m, 1_000, 80_000)
	t.Logf("early=%d late=%d", latEarly, latLate)
	if latEarly >= latLate {
		t.Error("blocking receive should cost more than polled receive")
	}
	C := m.Costs.Trap + m.Costs.CSwitch + m.Costs.IPIDeliver
	if latLate < sim.Time(float64(C)*0.8) {
		t.Errorf("late latency %d below blocking cost %d", latLate, C)
	}
}

// fmtSscan wraps fmt.Sscan for cell parsing.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(strings.TrimSuffix(strings.TrimSpace(s), "%"), v)
}

// fig9TestWorkload is a small barrier-heavy workload for the shape test.
func fig9TestWorkload() apps.Workload {
	return apps.Workload{Name: "CG-small", Iters: 6, Work: 6_000_000, BarriersPerIter: 4, SharedRMWs: 2}
}

func TestExtScalingShape(t *testing.T) {
	f := ExtScaling(2)
	// Barrelfish unmap grows slowly past 32 cores; the baseline keeps its
	// linear slope, so the gap widens.
	bf16, _ := f.Get("Barrelfish unmap").YAt(16)
	bf64, _ := f.Get("Barrelfish unmap").YAt(64)
	lx64, _ := f.Get("Linux unmap").YAt(64)
	t.Logf("64-core mesh: barrelfish=%v linux=%v", bf64, lx64)
	if bf64 >= lx64 {
		t.Error("Barrelfish not ahead at 64 cores")
	}
	if bf64 > 5*bf16 {
		t.Error("Barrelfish unmap growing too fast on meshes")
	}
}

func TestExtSharedReplicaSpeedup(t *testing.T) {
	tb := ExtSharedReplica(3)
	for _, row := range tb.Rows {
		var per, grp float64
		sscan(row[1], &per)
		sscan(row[2], &grp)
		if grp >= per {
			t.Errorf("%s: shared replicas (%v) not cheaper than per-core (%v)", row[0], grp, per)
		}
	}
}

func TestExtRunQueueContention(t *testing.T) {
	tb := ExtRunQueue(40)
	var shared16, percore16 float64
	for _, row := range tb.Rows {
		if row[0] == "16" {
			sscan(row[1], &shared16)
			sscan(row[2], &percore16)
		}
	}
	if shared16 <= percore16 {
		t.Fatalf("shared queue (%v) not slower than per-core queues (%v) at 16 cores", shared16, percore16)
	}
}
