package expt

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/harness"
	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file holds the coherence-crossover experiment (mkbench coherence):
// the paper's core scalability argument (§2.1) measured on the scaled
// machine models. A contended read-write workload runs on meshes from 16 to
// 1024 cores under both coherence modes of the cache model — broadcast
// snooping, whose upgrade cost grows with the socket count because every
// remote socket's tag filter must answer, and directory coherence, which
// pays a flat home-node lookup and probes only actual sharers. The sweep
// reports mean RMW latency and mean probe fan-out per mode and locates the
// core count where directory overtakes broadcast; torus rows at the largest
// sizes show what halving the network diameter buys on top. Each point is a
// hermetic seeded engine run built directly over the hardware models (no
// SKB: populating the all-pairs latency table is quadratic in cores and
// irrelevant here), so the sweep is byte-identical at any -parallel.

const (
	cohSeed = 7
	// cohReadDeg remote sockets share each published line. Small and fixed:
	// the point of the directory is that probe fan-out tracks the actual
	// sharer count, not the machine size.
	cohReadDeg = 4
	// Inter-op gaps (coprime-ish so writers and readers drift apart): the
	// workload must stay mostly uncontended, because a queued requester
	// receives the line as a pipelined handoff at a mode-independent cost —
	// convoys would average the snoop-vs-directory delta away.
	cohWriteGap = 2600
	cohReadGap  = 1900
)

// cohMachine is one machine of the sweep; mesh rows form the crossover
// series, torus rows are diameter ablations at matching socket counts.
type cohMachine struct {
	m    *topo.Machine
	mesh bool
}

// cohRun is one hermetic (machine, mode) measurement.
type cohRun struct {
	cyclesPerOp float64 // mean writer RMW latency
	fanoutMean  float64 // mean cache.probe_fanout observation
	ops         uint64
	sumsOK      bool   // every contended line summed to writers*incs
	events      uint64 // sim.events_dispatched, pinned by BenchmarkDirectoryPinned
}

// coherenceRun drives a read-mostly publishing workload: every socket owns
// one line homed locally, its writer RMW-increments it incs times, and the
// readers of the next cohReadDeg sockets keep re-filling it in between. Each
// increment therefore upgrades a genuinely shared line — broadcast pays the
// per-remote-socket snoop serialization, directory a flat lookup plus probes
// to the few actual sharers — while write-write convoys (whose pipelined
// handoffs cost the same in either mode) stay rare.
func coherenceRun(seed uint64, m *topo.Machine, mode cache.CoherenceMode, incs int) cohRun {
	e := sim.NewEngine(seed)
	defer e.Close()
	sys := cache.New(e, m, memory.New(m), interconnect.New(m))
	sys.SetMode(mode)

	var res cohRun
	var latSum sim.Time
	lines := spawnCohWorkload(e, sys, incs, &res, &latSum)
	e.Run()

	res.sumsOK = true
	e.Spawn("cohck", func(p *sim.Proc) {
		for _, a := range lines {
			if sys.Load(p, 0, a) != uint64(incs) {
				res.sumsOK = false
			}
		}
	})
	e.Run()

	res.cyclesPerOp = float64(latSum) / float64(res.ops)
	res.fanoutMean = e.Metrics().Histogram("cache.probe_fanout").Mean()
	res.events = e.Metrics().Snapshot().Counters["sim.events_dispatched"]
	return res
}

// spawnCohWorkload spawns the publishing workload's writer and reader procs
// on an already-configured system and returns the published lines. Split
// from coherenceRun so the oracle test can run the identical workload with a
// MOESI checker audited onto the cache.
func spawnCohWorkload(e *sim.Engine, sys *cache.System, incs int, res *cohRun, latSum *sim.Time) []memory.Addr {
	m := sys.Machine()
	ns := m.NSockets
	deg := cohReadDeg
	if deg > ns-1 {
		deg = ns - 1
	}
	lines := make([]memory.Addr, ns)
	for s := range lines {
		lines[s] = sys.Memory().AllocLines(1, topo.SocketID(s)).LineAt(0)
	}

	for w := 0; w < ns; w++ {
		w := w
		wc := topo.CoreID(w * m.CoresPerSocket)
		rc := wc + 1
		e.Spawn(fmt.Sprintf("cohw%d", w), func(p *sim.Proc) {
			for i := 0; i < incs; i++ {
				t0 := p.Now()
				sys.RMW(p, wc, lines[w], func(v uint64) uint64 { return v + 1 })
				*latSum += p.Now() - t0
				res.ops++
				p.Sleep(cohWriteGap)
			}
		})
		e.Spawn(fmt.Sprintf("cohr%d", w), func(p *sim.Proc) {
			for i := 0; i < incs; i++ {
				for d := 1; d <= deg; d++ {
					sys.Load(p, rc, lines[(w+d)%ns])
				}
				p.Sleep(cohReadGap)
			}
		})
	}
	return lines
}

// CoherenceResult carries the headline numbers mkbench exports to
// BENCH_coherence.json.
type CoherenceResult struct {
	Fig *figure // mesh series: mean RMW cycles/op vs cores, per mode
	Tab *table

	// Crossover is the core count of the smallest mesh where directory
	// coherence beats broadcast (0 if it never does). With the scaled cost
	// parameters (SnoopPerSocket 4, DirLookup 52) the analytic break-even
	// sits between 9 and 16 sockets, so the measured value lands on the
	// 64-core Mesh(4).
	Crossover int

	// At the largest mesh swept:
	BcastCycles float64
	DirCycles   float64
	FanoutBcast float64 // == SharerBound: broadcast probes every remote socket
	FanoutDir   float64 // < SharerBound: the directory probes actual sharers
	SharerBound float64 // NSockets-1, the snoop fan-out

	// TorusGain is broadcast-mode cycles/op on the largest mesh divided by
	// the same-size torus — what the wraparound links' shorter routes save.
	TorusGain float64

	SumsOK bool // every run's contended counters summed exactly
}

var cohModes = [2]cache.CoherenceMode{cache.Broadcast, cache.Directory}

// Coherence sweeps contended RMW latency across mesh sizes under both
// coherence modes. incs scales the per-writer work; machines with more than
// maxCores cores are dropped (the -quick bound).
func Coherence(incs, maxCores int) CoherenceResult {
	var ms []cohMachine
	for _, k := range []int{2, 3, 4, 6, 8, 12, 16} {
		ms = append(ms, cohMachine{topo.Mesh(k), true})
	}
	for _, k := range []int{8, 16} {
		ms = append(ms, cohMachine{topo.Torus(k), false})
	}
	n := 0
	for _, cm := range ms {
		if cm.m.NumCores() <= maxCores {
			ms[n] = cm
			n++
		}
	}
	ms = ms[:n]

	rs := harness.Map2(len(ms), len(cohModes), func(r, c int) cohRun {
		return coherenceRun(cohSeed, ms[r].m, cohModes[c], incs)
	})

	fig := newFigure("Contended RMW latency: broadcast snoop vs directory coherence",
		"cores", "cycles per RMW")
	bc := fig.AddSeries("broadcast")
	dc := fig.AddSeries("directory")
	tab := &table{
		Title: "Coherence-mode crossover on scaled machines (per-socket published line, 4 remote readers)",
		Columns: []string{"machine", "cores", "bcast cy/op", "dir cy/op", "winner",
			"bcast fanout", "dir fanout", "sockets-1", "sums"},
	}
	res := CoherenceResult{Fig: fig, Tab: tab, SumsOK: true}
	lastMesh := -1
	torus := map[int]float64{} // broadcast cycles/op by socket count
	for i, cm := range ms {
		b, d := rs[i][0], rs[i][1]
		cores := cm.m.NumCores()
		winner := "broadcast"
		if d.cyclesPerOp < b.cyclesPerOp {
			winner = "directory"
		}
		if cm.mesh {
			bc.Add(float64(cores), b.cyclesPerOp)
			dc.Add(float64(cores), d.cyclesPerOp)
			if winner == "directory" && res.Crossover == 0 {
				res.Crossover = cores
			}
			lastMesh = i
		} else {
			torus[cm.m.NSockets] = b.cyclesPerOp
		}
		res.SumsOK = res.SumsOK && b.sumsOK && d.sumsOK
		tab.AddRow(cm.m.Name,
			fmt.Sprintf("%d", cores),
			fmt.Sprintf("%.1f", b.cyclesPerOp),
			fmt.Sprintf("%.1f", d.cyclesPerOp),
			winner,
			fmt.Sprintf("%.2f", b.fanoutMean),
			fmt.Sprintf("%.2f", d.fanoutMean),
			fmt.Sprintf("%d", cm.m.NSockets-1),
			fmt.Sprintf("%v", b.sumsOK && d.sumsOK))
	}
	if lastMesh >= 0 {
		cm := ms[lastMesh]
		b, d := rs[lastMesh][0], rs[lastMesh][1]
		res.BcastCycles = b.cyclesPerOp
		res.DirCycles = d.cyclesPerOp
		res.FanoutBcast = b.fanoutMean
		res.FanoutDir = d.fanoutMean
		res.SharerBound = float64(cm.m.NSockets - 1)
		if tc, ok := torus[cm.m.NSockets]; ok && tc > 0 {
			res.TorusGain = b.cyclesPerOp / tc
		}
	}
	return res
}
