package expt

import (
	"fmt"
	"testing"

	"multikernel/internal/cache"
	"multikernel/internal/check"
	"multikernel/internal/harness"
	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// The coherence sweep's contract: the mode crossover lands where the scaled
// cost parameters put it, directory-mode probe fan-out is a real (targeted)
// signal rather than the socket count, and the whole sweep is byte-identical
// at any harness parallelism.

func TestCoherenceCrossoverShape(t *testing.T) {
	res := Coherence(4, 1024)
	if !res.SumsOK {
		t.Fatal("a contended counter did not sum to writers*incs")
	}
	// Broadcast wins on small meshes, directory on the 64-core Mesh(4) and
	// beyond: the analytic break-even of SnoopPerSocket 4 vs DirLookup 52
	// lies between 9 and 16 sockets.
	if res.Crossover != 64 {
		t.Errorf("crossover at %d cores, want 64", res.Crossover)
	}
	if res.DirCycles >= res.BcastCycles {
		t.Errorf("directory (%.1f cy/op) not cheaper than broadcast (%.1f) at 1024 cores",
			res.DirCycles, res.BcastCycles)
	}
	// Broadcast probes every remote socket; the directory probes only actual
	// sharers, so its mean fan-out must sit strictly below the snoop bound.
	if res.FanoutBcast != res.SharerBound {
		t.Errorf("broadcast fan-out %.2f, want the socket bound %.0f",
			res.FanoutBcast, res.SharerBound)
	}
	if res.FanoutDir <= 0 || res.FanoutDir >= res.SharerBound {
		t.Errorf("directory fan-out %.2f not in (0, %.0f)", res.FanoutDir, res.SharerBound)
	}
	// Wraparound links shorten routes, so the torus can't be slower.
	if res.TorusGain < 1 {
		t.Errorf("torus gain %.3f < 1: torus slower than mesh at equal size", res.TorusGain)
	}
}

// The extended MOESI oracle must pass at every swept topology under both
// modes: the shadow directory validates every transition (single owner, no
// stale reads, probe conservation — targeted probes must cover exactly the
// true sharers in directory mode, every remote socket under broadcast
// snooping) and Finish cross-checks the home-node sharer bitmaps.
func TestCoherenceOracleAtEveryTopology(t *testing.T) {
	var machines []*topo.Machine
	for _, k := range []int{2, 3, 4, 6, 8, 12, 16} {
		machines = append(machines, topo.Mesh(k))
	}
	machines = append(machines, topo.Torus(8), topo.Torus(16))
	for _, m := range machines {
		for _, mode := range cohModes {
			t.Run(fmt.Sprintf("%s/%s", m.Name, mode), func(t *testing.T) {
				e := sim.NewEngine(cohSeed)
				defer e.Close()
				sys := cache.New(e, m, memory.New(m), interconnect.New(m))
				sys.SetMode(mode)
				mc := check.NewMOESIChecker()
				mc.Bind(sys)
				sys.SetAudit(mc)
				var res cohRun
				var latSum sim.Time
				spawnCohWorkload(e, sys, 2, &res, &latSum)
				e.Run()
				for _, v := range mc.Finish(sys) {
					t.Error(v.Msg)
				}
				if res.ops == 0 {
					t.Fatal("workload performed no operations")
				}
			})
		}
	}
}

// The sweep must render byte-identically regardless of the point-level host
// parallelism — every point is a hermetic seeded run.
func TestCoherenceDeterminism(t *testing.T) {
	render := func(par int) string {
		old := harness.Parallelism()
		harness.SetParallelism(par)
		defer harness.SetParallelism(old)
		res := Coherence(2, 256)
		return res.Tab.Render()
	}
	serial := render(1)
	for _, par := range []int{2, 4} {
		if got := render(par); got != serial {
			t.Fatalf("-parallel %d output differs from serial:\n%s\nvs\n%s", par, got, serial)
		}
	}
}

// BenchmarkDirectoryPinned is the scaled-machine determinism gate consumed
// by ci/traceguard: the contended workload on the 256-core Mesh(8) under
// each coherence mode. simevents/op is a pure function of (seed, machine,
// mode), so both entries are pinned exactly in the committed baseline — a
// schedule divergence in either mode's cost model fails CI.
func BenchmarkDirectoryPinned(b *testing.B) {
	m := topo.Mesh(8)
	for _, mode := range []cache.CoherenceMode{cache.Broadcast, cache.Directory} {
		b.Run(mode.String(), func(b *testing.B) {
			var ev uint64
			for i := 0; i < b.N; i++ {
				ev = coherenceRun(cohSeed, m, mode, 4).events
			}
			b.ReportMetric(float64(ev), "simevents/op")
		})
	}
}
