package expt

import (
	"fmt"

	"multikernel/internal/harness"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// URPC v2 experiments: the pipelined-throughput and messaging-vs-bulk
// crossover curves behind the paper's Table 2/3 numbers. Every point is a
// hermetic, seed-deterministic engine run, so the sweeps fan out across the
// harness worker pool with byte-identical output at any parallelism.

// urpcIdleGap paces the measurement loops' idle polling (matches the
// transport's internal poll gap).
const urpcIdleGap = 25

// MeasureURPCDepth measures pipelined throughput (messages per kilocycle)
// between two cores with the sender holding at most depth messages in
// flight: depth 1 is the stop-and-wait regime, depth = ring size (16) is the
// paper's fully pipelined regime.
func MeasureURPCDepth(m *topo.Machine, from, to topo.CoreID, depth, msgs int) float64 {
	env := NewEnv(m, 5)
	defer env.Close()
	ch := urpc.New(env.Sys, from, to, urpc.Options{Home: -1, Slots: urpc.DefaultSlots, Prefetch: true})
	var start, end sim.Time
	env.E.Spawn("recv", func(p *sim.Proc) {
		buf := make([]urpc.Message, urpc.DefaultSlots)
		for got := 0; got < msgs; {
			n := ch.RecvAll(p, buf)
			if n == 0 {
				p.Sleep(urpcIdleGap)
			}
			got += n
		}
		end = p.Now()
	})
	env.E.Spawn("send", func(p *sim.Proc) {
		start = p.Now()
		batch := make([]urpc.Message, 0, depth)
		for sent := 0; sent < msgs; {
			for ch.InFlight() >= depth {
				ch.RefreshAck(p)
				if ch.InFlight() >= depth {
					p.Sleep(urpcIdleGap)
				}
			}
			n := depth - ch.InFlight()
			if n > msgs-sent {
				n = msgs - sent
			}
			batch = batch[:0]
			for i := 0; i < n; i++ {
				batch = append(batch, urpc.Message{uint64(sent + i)})
			}
			ch.SendBatch(p, batch)
			sent += n
		}
	})
	env.E.Run()
	return float64(msgs) * 1000 / float64(end-start)
}

// MeasureRingPayload measures the cost of moving reps payloads of the given
// line count through the message ring: each payload is a vectored batch of
// single-line messages. Returns cycles per payload.
func MeasureRingPayload(m *topo.Machine, from, to topo.CoreID, lines, reps int) float64 {
	env := NewEnv(m, 5)
	defer env.Close()
	ch := urpc.New(env.Sys, from, to, urpc.Options{Home: -1, Slots: urpc.DefaultSlots, Prefetch: true})
	total := lines * reps
	var start, end sim.Time
	env.E.Spawn("recv", func(p *sim.Proc) {
		buf := make([]urpc.Message, urpc.DefaultSlots)
		for got := 0; got < total; {
			n := ch.RecvAll(p, buf)
			if n == 0 {
				p.Sleep(urpcIdleGap)
			}
			got += n
		}
		end = p.Now()
	})
	env.E.Spawn("send", func(p *sim.Proc) {
		start = p.Now()
		batch := make([]urpc.Message, lines)
		for r := 0; r < reps; r++ {
			for i := range batch {
				batch[i] = urpc.Message{uint64(r), uint64(i)}
			}
			ch.SendBatch(p, batch)
		}
	})
	env.E.Run()
	return float64(end-start) / float64(reps)
}

// MeasureBulkPayload measures the cost of moving reps payloads of the given
// line count through a bulk channel: one descriptor message per payload plus
// line-granularity first-touch transfers. Returns cycles per payload.
func MeasureBulkPayload(m *topo.Machine, from, to topo.CoreID, lines, reps int) float64 {
	env := NewEnv(m, 5)
	defer env.Close()
	bulk := urpc.NewBulk(env.Sys, from, to, urpc.BulkOptions{
		Slots: 8, SlotLines: lines, Home: -1, Prefetch: true,
	})
	payload := make([]byte, lines*64)
	for i := range payload {
		payload[i] = byte(i)
	}
	var start, end sim.Time
	env.E.Spawn("recv", func(p *sim.Proc) {
		for got := 0; got < reps; {
			if _, ok := bulk.TryRecv(p); ok {
				got++
				continue
			}
			p.Sleep(urpcIdleGap)
		}
		end = p.Now()
	})
	env.E.Spawn("send", func(p *sim.Proc) {
		start = p.Now()
		for r := 0; r < reps; r++ {
			bulk.Send(p, payload)
		}
	})
	env.E.Run()
	return float64(end-start) / float64(reps)
}

// urpcV2Depths is the in-flight sweep of the depth experiment.
var urpcV2Depths = []int{1, 2, 4, 8, 16}

// URPCv2Depth regenerates the pipelined-throughput curve: messages per
// kilocycle against sender in-flight depth 1→16, on the 8×4 AMD machine's
// one-hop pair (the scaling platform) with the 2×2 same-die pair for
// contrast.
func URPCv2Depth(msgs int) *figure {
	f := newFigure("URPC v2: pipelined throughput vs in-flight depth",
		"in-flight depth", "throughput (msgs/kcycle)")
	pairs := []struct {
		name     string
		m        *topo.Machine
		from, to topo.CoreID
	}{
		{"8x4 one-hop", topo.AMD8x4(), 0, 4},
		{"2x2 same-die", topo.AMD2x2(), 0, 1},
	}
	pts := harness.Map2(len(pairs), len(urpcV2Depths), func(pi, di int) float64 {
		pr := pairs[pi]
		return MeasureURPCDepth(pr.m, pr.from, pr.to, urpcV2Depths[di], msgs)
	})
	for pi, pr := range pairs {
		s := f.AddSeries(pr.name)
		for di, d := range urpcV2Depths {
			s.Add(float64(d), pts[pi][di])
		}
	}
	return f
}

// urpcV2Sizes is the payload sweep of the crossover experiment, in lines.
var urpcV2Sizes = []int{1, 2, 4, 8, 16, 32, 64}

// URPCv2Size regenerates the messaging-vs-bulk crossover: cycles to move one
// payload of 1→64 cache lines, through the message ring (vectored single-line
// sends) and through a bulk channel (descriptor + shared pool), on the 8×4
// AMD machine's one-hop pair.
func URPCv2Size(reps int) *figure {
	m := topo.AMD8x4()
	f := newFigure("URPC v2: ring vs bulk transfer ("+m.Name+", one-hop)",
		"payload (cache lines)", "cycles per payload")
	kinds := []struct {
		name    string
		measure func(lines int) float64
	}{
		{"ring", func(lines int) float64 { return MeasureRingPayload(m, 0, 4, lines, reps) }},
		{"bulk", func(lines int) float64 { return MeasureBulkPayload(m, 0, 4, lines, reps) }},
	}
	pts := harness.Map2(len(kinds), len(urpcV2Sizes), func(ki, si int) float64 {
		return kinds[ki].measure(urpcV2Sizes[si])
	})
	for ki, k := range kinds {
		s := f.AddSeries(k.name)
		for si, lines := range urpcV2Sizes {
			s.Add(float64(lines), pts[ki][si])
		}
	}
	return f
}

// URPCv2Table regenerates the Table 2-style per-hop cost table for the v2
// transport: stop-and-wait and fully pipelined per-message cost, and the bulk
// per-line cost at 64-line payloads, for each cache relationship on each
// machine.
func URPCv2Table(msgs int) *table {
	t := &table{
		Title: "URPC v2 per-hop costs",
		Columns: []string{"System", "Cache", "depth-1 cycles/msg",
			"depth-16 cycles/msg", "bulk cycles/line"},
	}
	type rowSpec struct {
		m  *topo.Machine
		pr pairSpec
	}
	var rows []rowSpec
	for _, m := range topo.AllMachines() {
		for _, pr := range table2Pairs(m) {
			rows = append(rows, rowSpec{m, pr})
		}
	}
	const bulkLines = 64
	vals := harness.Map(len(rows), func(i int) [3]float64 {
		r := rows[i]
		d1 := MeasureURPCDepth(r.m, r.pr.from, r.pr.to, 1, msgs)
		d16 := MeasureURPCDepth(r.m, r.pr.from, r.pr.to, 16, msgs)
		perLine := MeasureBulkPayload(r.m, r.pr.from, r.pr.to, bulkLines, max(2, msgs/bulkLines)) / bulkLines
		return [3]float64{1000 / d1, 1000 / d16, perLine}
	})
	for i, r := range rows {
		t.AddRow(r.m.Name, r.pr.label,
			fmt.Sprintf("%.0f", vals[i][0]),
			fmt.Sprintf("%.0f", vals[i][1]),
			fmt.Sprintf("%.1f", vals[i][2]))
	}
	return t
}
