package expt

import (
	"multikernel/internal/baseline"
	"multikernel/internal/caps"
	"multikernel/internal/core"
	"multikernel/internal/harness"
	"multikernel/internal/memory"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/vm"
)

// Fig6 regenerates Figure 6: raw messaging costs of the four TLB-shootdown
// protocols on the 8×4-core AMD system, 2..32 cores. Each (protocol, cores)
// point is a hermetic engine run, so the sweep fans out across the harness
// worker pool.
func Fig6(iters int) *figure {
	m := topo.AMD8x4()
	f := newFigure("Figure 6: TLB shootdown protocols, raw messaging ("+m.Name+")",
		"cores", "latency (cycles)")
	protos := []struct {
		name  string
		proto monitor.Protocol
	}{
		{"Broadcast", monitor.Broadcast},
		{"Unicast", monitor.Unicast},
		{"Multicast", monitor.Multicast},
		{"NUMA-Aware Multicast", monitor.NUMAAware},
	}
	ns := sweepCores(2, 32)
	pts := harness.Map2(len(protos), len(ns), func(pi, ni int) float64 {
		return monitor.RawShootdownLatency(m, protos[pi].proto, ns[ni], iters)
	})
	for pi, pr := range protos {
		s := f.AddSeries(pr.name)
		for ni, n := range ns {
			s.Add(float64(n), pts[pi][ni])
		}
	}
	return f
}

// UnmapLatencyBF measures the complete Barrelfish unmap (Figure 7): LRPC to
// the local monitor, NUMA-aware multicast shootdown with per-core TLB
// invalidation, LRPC reply.
func UnmapLatencyBF(m *topo.Machine, n, iters int) float64 {
	return unmapLatencyProto(m, n, iters, monitor.NUMAAware)
}

// unmapLatencyProto is unmapLatencyBF with a selectable dissemination
// protocol (used by the protocol ablation).
func unmapLatencyProto(m *topo.Machine, n, iters int, proto monitor.Protocol) float64 {
	e := sim.NewEngine(1)
	defer e.Close()
	s := core.Boot(e, m)
	var total sim.Time
	e.Spawn("bench", func(p *sim.Proc) {
		cores := make([]topo.CoreID, n)
		for i := range cores {
			cores[i] = topo.CoreID(i)
		}
		d, err := s.NewDomain(p, "bench", cores)
		if err != nil {
			panic(err)
		}
		for it := 0; it < iters+1; it++ {
			va, err := d.MapAnon(p, 0, vm.PageSize, vm.Read|vm.Write)
			if err != nil {
				panic(err)
			}
			for _, c := range cores {
				d.Space.Access(p, c, va, false, 0)
			}
			start := p.Now()
			if err := d.Unmap(p, 0, va, vm.PageSize, proto); err != nil {
				panic(err)
			}
			if it > 0 { // discard the cold round
				total += p.Now() - start
			}
		}
	})
	e.Run()
	return float64(total) / float64(iters)
}

// unmapLatencyBaseline measures the monolithic comparator's serial-IPI unmap.
func unmapLatencyBaseline(m *topo.Machine, flavor baseline.Flavor, n, iters int) float64 {
	env := NewEnv(m, 1)
	defer env.Close()
	k := baseline.New(env.E, env.Sys, env.Kern, flavor)
	var total sim.Time
	env.E.Spawn("bench", func(p *sim.Proc) {
		targets := env.Cores(n)
		k.Unmap(p, 0, targets) // warm
		for it := 0; it < iters; it++ {
			start := p.Now()
			k.Unmap(p, 0, targets)
			total += p.Now() - start
		}
	})
	env.E.Run()
	return float64(total) / float64(iters)
}

// Fig7 regenerates Figure 7: end-to-end unmap latency, Barrelfish versus
// Linux and Windows, on the 8×4-core AMD system. Each (system, cores) point
// runs on its own engine, parallelized across the harness pool.
func Fig7(iters int) *figure {
	m := topo.AMD8x4()
	f := newFigure("Figure 7: unmap latency ("+m.Name+")", "cores", "latency (cycles)")
	systems := []struct {
		name string
		run  func(n int) float64
	}{
		{"Linux", func(n int) float64 { return unmapLatencyBaseline(m, baseline.Linux, n, iters) }},
		{"Windows", func(n int) float64 { return unmapLatencyBaseline(m, baseline.Windows, n, iters) }},
		{"Barrelfish", func(n int) float64 { return UnmapLatencyBF(m, n, iters) }},
	}
	ns := sweepCores(2, 32)
	pts := harness.Map2(len(systems), len(ns), func(si, ni int) float64 {
		return systems[si].run(ns[ni])
	})
	for si, sys := range systems {
		s := f.AddSeries(sys.name)
		for ni, n := range ns {
			s.Add(float64(n), pts[si][ni])
		}
	}
	return f
}

// Fig8 regenerates Figure 8: two-phase commit on the 8×4-core AMD system —
// single-operation latency and per-operation cost when pipelining 16
// operations. Both series fan out across the harness pool.
func Fig8(iters int) *figure {
	m := topo.AMD8x4()
	f := newFigure("Figure 8: two-phase commit ("+m.Name+")", "cores", "cycles per operation")
	depths := []int{1, 16}
	ns := sweepCores(2, 32)
	pts := harness.Map2(len(depths), len(ns), func(di, ni int) float64 {
		return twoPCLatency(m, ns[ni], iters, depths[di])
	})
	single := f.AddSeries("Single-operation latency")
	piped := f.AddSeries("Cost when pipelining")
	for ni, n := range ns {
		single.Add(float64(n), pts[0][ni])
		piped.Add(float64(n), pts[1][ni])
	}
	return f
}

// twoPCLatency measures per-operation cost of capability retypes over the
// first n cores with the given pipeline depth.
func twoPCLatency(m *topo.Machine, n, iters, depth int) float64 {
	e := sim.NewEngine(1)
	defer e.Close()
	s := core.Boot(e, m)
	var total sim.Time
	var ops int
	e.Spawn("bench", func(p *sim.Proc) {
		targets := make([]topo.CoreID, n)
		for i := range targets {
			targets[i] = topo.CoreID(i)
		}
		mon := s.Net.Monitor(0)
		next := memory.Addr(1 << 30)
		alloc := func() memory.Addr {
			next += 0x10000
			return next
		}
		// Warm round.
		mon.Retype(p, alloc(), 4096, caps.Frame, 0, targets)
		for it := 0; it < iters; it++ {
			start := p.Now()
			if depth == 1 {
				if !mon.Retype(p, alloc(), 4096, caps.Frame, 0, targets) {
					panic("retype aborted in benchmark")
				}
				ops++
			} else {
				futs := make([]*sim.Future[bool], depth)
				for i := range futs {
					futs[i] = mon.RetypeAsync(p, alloc(), 4096, caps.Frame, 0, targets)
				}
				for _, fut := range futs {
					if !fut.Await(p) {
						panic("pipelined retype aborted")
					}
					ops++
				}
			}
			total += p.Now() - start
		}
	})
	e.Run()
	return float64(total) / float64(ops)
}
