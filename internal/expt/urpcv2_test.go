package expt

import (
	"bytes"
	"testing"

	"multikernel/internal/harness"
	"multikernel/internal/stats"
	"multikernel/internal/trace"
)

// TestURPCv2DepthPipelining is the tentpole acceptance criterion: on the 8×4
// machine's one-hop pair, depth-16 pipelined sends must achieve at least 4×
// the messages/cycle of depth-1 stop-and-wait sends.
func TestURPCv2DepthPipelining(t *testing.T) {
	f := URPCv2Depth(300)
	d1 := yAt(t, f, "8x4 one-hop", 1)
	d16 := yAt(t, f, "8x4 one-hop", 16)
	t.Logf("one-hop throughput: depth-1 %.2f, depth-16 %.2f msgs/kcycle (%.1fx)", d1, d16, d16/d1)
	if d16 < 4*d1 {
		t.Fatalf("depth-16 throughput %.2f not >= 4x depth-1 %.2f", d16, d1)
	}
	// The curve is monotone: more in-flight depth never hurts.
	for i := 1; i < len(urpcV2Depths); i++ {
		lo := yAt(t, f, "8x4 one-hop", float64(urpcV2Depths[i-1]))
		hi := yAt(t, f, "8x4 one-hop", float64(urpcV2Depths[i]))
		if hi < lo {
			t.Errorf("throughput dropped from depth %d (%.2f) to %d (%.2f)",
				urpcV2Depths[i-1], lo, urpcV2Depths[i], hi)
		}
	}
}

// TestURPCv2BulkCrossover is the bulk acceptance criterion: one bulk transfer
// must beat N single-line ring sends for payloads of 8 lines and up.
func TestURPCv2BulkCrossover(t *testing.T) {
	f := URPCv2Size(30)
	for _, lines := range []float64{8, 16, 32, 64} {
		ring := yAt(t, f, "ring", lines)
		bulk := yAt(t, f, "bulk", lines)
		if bulk >= ring {
			t.Errorf("%v lines: bulk (%.0f cycles) not below ring (%.0f cycles)", lines, bulk, ring)
		}
	}
	// Below the crossover the single-descriptor overhead dominates and the
	// ring should win — otherwise the ring path has regressed.
	if ring1, bulk1 := yAt(t, f, "ring", 1), yAt(t, f, "bulk", 1); ring1 >= bulk1 {
		t.Errorf("1 line: ring (%.0f cycles) not below bulk (%.0f cycles)", ring1, bulk1)
	}
}

// TestURPCv2SweepDeterminism extends the harness determinism contract to the
// v2 sweeps: both curves must render byte-identically at any -parallel
// setting.
func TestURPCv2SweepDeterminism(t *testing.T) {
	render := func(par int) string {
		old := harness.Parallelism()
		harness.SetParallelism(par)
		defer harness.SetParallelism(old)
		out := stats.RenderFigure(URPCv2Depth(120), 72, 18)
		out += stats.RenderFigure(URPCv2Size(8), 72, 18)
		return out
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != serial {
			t.Fatalf("parallelism %d produced different rendered output than serial run", par)
		}
	}
}

// TestURPCv2BatchedTraceDeterminism asserts the batched transport keeps the
// trace contract: a run using SendBatch/RecvAll exports byte-identical trace
// bytes at any host parallelism and on repeated runs, reaching the same
// virtual end time every time. An unbatched (Send/TryRecv) run of the same
// workload is held to the same standard, and the batched run must finish at
// an equal-or-earlier virtual time — the whole point of the batching.
func TestURPCv2BatchedTraceDeterminism(t *testing.T) {
	capture := func(par int, batched bool) []byte {
		old := harness.Parallelism()
		harness.SetParallelism(par)
		defer harness.SetParallelism(old)
		trace.StartCapture()
		defer trace.StopCapture()
		if batched {
			URPCv2Depth(100)
		} else {
			// The depth-1 path through Send-per-message measurement: reuse the
			// ring sweep at 1 line per payload, which degenerates to paced
			// single sends.
			URPCv2Size(6)
		}
		var buf bytes.Buffer
		if err := trace.WriteCaptured(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, batched := range []bool{true, false} {
		base := capture(1, batched)
		if len(base) == 0 {
			t.Fatalf("batched=%v: empty trace capture", batched)
		}
		for _, par := range []int{2, 8} {
			if got := capture(par, batched); !bytes.Equal(got, base) {
				t.Errorf("batched=%v: trace bytes differ between -parallel=1 and -parallel=%d", batched, par)
			}
		}
		if again := capture(1, batched); !bytes.Equal(again, base) {
			t.Errorf("batched=%v: repeated serial run produced different trace bytes", batched)
		}
	}
}
