package expt

import (
	"fmt"

	"multikernel/internal/apps"
	"multikernel/internal/fault"
	"multikernel/internal/harness"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file holds the kvstore fail-over experiment (mkbench kvfault): the
// sharded, replicated kvstore from internal/apps is driven by closed-loop
// clients on the 4×4-core AMD system while a seeded schedule fail-stops
// server cores mid-stream. Reported per kill count are the recovery latency —
// from each kill to the first successful client operation on a shard the dead
// core was leading — and the cluster's throughput while degraded versus
// steady state, plus the admission-control shed counts. Every point is a
// hermetic engine run derived from (seed, kills), so the sweep is
// byte-identical at any harness parallelism.

const (
	kvfHorizon     = sim.Time(22_000_000)
	kvfFirstKill   = sim.Time(2_000_000)
	kvfKillSpacing = sim.Time(8_000_000)
	// kvfDegradedWin is the post-kill window counted as degraded operation
	// when splitting throughput; generously beyond detection + promotion +
	// re-replication on this machine.
	kvfDegradedWin = sim.Time(3_000_000)
)

type kvfaultResult struct {
	meanRecovery float64 // mean cycles from kill to first op on an affected shard
	maxRecovery  float64
	steadyThr    float64 // successful ops per Mcycle outside degraded windows
	degradedThr  float64 // successful ops per Mcycle inside degraded windows
	shed         uint64  // writes refused by admission control
	promotions   uint64
	syncs        uint64
}

// workers selects the engine: 0 runs the serial reference, >0 the parallel
// engine with that many host workers. The fault schedule, detection deadlines
// and recovery all ride virtual time, so the result is byte-identical across
// engines and worker counts (TestKVFaultParallelEngineIdentity pins this).
func kvfaultPoint(seed uint64, kills, workers int) kvfaultResult {
	m := topo.AMD4x4()
	env := NewEnvWorkers(m, seed, workers)
	defer env.Close()
	e := env.E
	net := monitor.NewNetwork(e, env.Sys, env.Kern, env.KB, monitor.Hooks{})
	net.EnableFaultTolerance(100_000)

	servers := []topo.CoreID{2, 3, 6}
	spares := []topo.CoreID{8, 12}
	cluster := apps.NewKVCluster(e, env.Sys, net, apps.ClusterConfig{
		Rows:    16,
		Servers: servers,
		Spares:  spares,
	})
	cluster.StartFailureDetector(net, 0, 400_000)

	// Kills land on distinct servers, spaced so one fail-over completes
	// before the next begins; at each kill the set of keys the victim was
	// serving is snapshotted for recovery attribution.
	type killRec struct {
		at       sim.Time
		affected map[uint64]bool
	}
	var killRecs []killRec
	inj := fault.NewInjector(e, env.Sys)
	inj.OnKill(func(c topo.CoreID) {
		aff := make(map[uint64]bool)
		for k := uint64(0); k < 16; k++ {
			if cluster.Primary(cluster.ShardOfKey(k)) == c {
				aff[k] = true
			}
		}
		killRecs = append(killRecs, killRec{at: e.Now(), affected: aff})
		cluster.KillCore(c)
		net.FailStop(c)
	})
	sched := &fault.Schedule{}
	for i := 0; i < kills && i < len(servers); i++ {
		sched.KillAt(kvfFirstKill+sim.Time(i)*kvfKillSpacing, servers[i])
	}
	inj.Arm(sched)

	type completion struct {
		at  sim.Time
		key uint64
	}
	var completions []completion
	clientCores := []topo.CoreID{1, 5, 10}
	for ci, core := range clientCores {
		cl := cluster.Connect(core)
		rng := sim.NewRNG(seed ^ uint64(ci)*0x9e37_79b9_7f4a_7c15)
		ci := ci
		e.Spawn(fmt.Sprintf("kvfdrv%d", ci), func(p *sim.Proc) {
			i := 0
			for p.Now() < kvfHorizon {
				key := uint64(rng.Intn(8))
				var err error
				if rng.Uint64()%2 == 0 {
					_, err = cl.Put(p, key, uint64(ci+1)*1_000_000+uint64(i))
				} else {
					_, _, err = cl.Get(p, key)
				}
				if err == nil {
					completions = append(completions, completion{at: p.Now(), key: key})
				}
				i++
				p.Sleep(30_000)
			}
		})
	}
	env.RunUntil(kvfHorizon + 1)

	var res kvfaultResult
	st := cluster.Stats()
	res.shed = st.Shed
	res.promotions = st.Promotions
	res.syncs = st.Syncs

	var recN int
	for _, kr := range killRecs {
		for _, c := range completions {
			if c.at >= kr.at && kr.affected[c.key] {
				rec := float64(c.at - kr.at)
				res.meanRecovery += rec
				if rec > res.maxRecovery {
					res.maxRecovery = rec
				}
				recN++
				break
			}
		}
	}
	if recN > 0 {
		res.meanRecovery /= float64(recN)
	}

	degraded := func(at sim.Time) bool {
		for _, kr := range killRecs {
			if at >= kr.at && at < kr.at+kvfDegradedWin {
				return true
			}
		}
		return false
	}
	var degT sim.Time
	for _, kr := range killRecs {
		w := kvfDegradedWin
		if kr.at+w > kvfHorizon {
			w = kvfHorizon - kr.at
		}
		degT += w
	}
	steadyT := kvfHorizon - degT
	var degOps, steadyOps int
	for _, c := range completions {
		if degraded(c.at) {
			degOps++
		} else {
			steadyOps++
		}
	}
	if degT > 0 {
		res.degradedThr = float64(degOps) / (float64(degT) / 1e6)
	}
	if steadyT > 0 {
		res.steadyThr = float64(steadyOps) / (float64(steadyT) / 1e6)
	}
	return res
}

// KVFault sweeps the number of fail-stopped kvstore server cores and returns
// the recovery-latency and throughput figures plus a summary table. seed
// selects the schedule family (mkbench -fault-seed); points mix it with the
// kill count so no two points share an engine seed.
func KVFault(seed uint64) (*figure, *figure, *table) {
	lat := newFigure("Extension: kvstore fail-over recovery latency (4x4-core AMD)",
		"server cores killed", "cycles")
	mean := lat.AddSeries("mean kill-to-first-affected-op")
	worst := lat.AddSeries("max kill-to-first-affected-op")
	thr := newFigure("Extension: kvstore throughput under fail-over (4x4-core AMD)",
		"server cores killed", "successful client ops per Mcycle")
	steady := thr.AddSeries("steady-state")
	deg := thr.AddSeries("degraded windows (kill+3Mcy)")

	kills := []int{0, 1, 2}
	pts := harness.Map(len(kills), func(i int) kvfaultResult {
		return kvfaultPoint(seed+uint64(i)*0x9e37_79b9_7f4a_7c15, kills[i], 0)
	})

	tab := &table{
		Title:   "Extension: kvstore fail-over summary (4x4-core AMD)",
		Columns: []string{"kills", "mean recovery (cyc)", "shed writes", "promotions", "re-syncs"},
	}
	for i, k := range kills {
		x := float64(k)
		mean.Add(x, pts[i].meanRecovery)
		worst.Add(x, pts[i].maxRecovery)
		steady.Add(x, pts[i].steadyThr)
		deg.Add(x, pts[i].degradedThr)
		tab.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.0f", pts[i].meanRecovery),
			fmt.Sprintf("%d", pts[i].shed), fmt.Sprintf("%d", pts[i].promotions),
			fmt.Sprintf("%d", pts[i].syncs))
	}
	return lat, thr, tab
}
