package expt

import (
	"fmt"

	"multikernel/internal/baseline"
	"multikernel/internal/caps"
	"multikernel/internal/core"
	"multikernel/internal/harness"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file holds extension experiments beyond the paper's evaluation:
// the scalability the paper could not measure ("we have not evaluated the
// system's scalability beyond currently-available commodity hardware",
// §5.5), the §3.3 shared-replica optimization it proposes as future work,
// and a scheduler-contention study on the baseline's shared run queue.

// ExtScaling measures NUMA-aware-multicast shootdown and the end-to-end
// unmap on synthetic mesh machines past 32 cores, alongside the monolithic
// comparator — the future-hardware projection of Figures 6 and 7.
func ExtScaling(iters int) *figure {
	f := newFigure("Extension: scaling past commodity core counts (mesh machines)",
		"cores", "latency (cycles)")
	shoot := f.AddSeries("raw NUMA multicast")
	unmap := f.AddSeries("Barrelfish unmap")
	lx := f.AddSeries("Linux unmap")
	meshes := []*topo.Machine{
		topo.MeshXY(2, 2, 4), // 16 cores
		topo.MeshXY(4, 2, 4), // 32
		topo.MeshXY(4, 3, 4), // 48
		topo.MeshXY(4, 4, 4), // 64
	}
	runs := []func(m *topo.Machine, n int) float64{
		func(m *topo.Machine, n int) float64 {
			return monitor.RawShootdownLatency(m, monitor.NUMAAware, n, iters)
		},
		func(m *topo.Machine, n int) float64 { return unmapLatencyProto(m, n, iters, monitor.NUMAAware) },
		func(m *topo.Machine, n int) float64 { return unmapLatencyBaseline(m, baseline.Linux, n, iters) },
	}
	pts := harness.Map2(len(runs), len(meshes), func(ri, mi int) float64 {
		m := meshes[mi]
		return runs[ri](m, m.NumCores())
	})
	for mi, m := range meshes {
		n := float64(m.NumCores())
		shoot.Add(n, pts[0][mi])
		unmap.Add(n, pts[1][mi])
		lx.Add(n, pts[2][mi])
	}
	return f
}

// ExtSharedReplica measures the §3.3 shared-replica optimization: global
// retype cost with per-core replicas versus one spinlocked replica per
// socket, across machine sizes.
func ExtSharedReplica(iters int) *table {
	t := &table{
		Title:   "Extension: shared-replica optimization (2PC retype cost, cycles)",
		Columns: []string{"Machine", "per-core replicas", "per-socket replicas", "speedup"},
	}
	for _, m := range []*topo.Machine{topo.AMD4x4(), topo.AMD8x4(), topo.MeshXY(4, 4, 4)} {
		per := retypeCost(m, false, iters)
		grp := retypeCost(m, true, iters)
		t.AddRow(m.Name,
			fmt.Sprintf("%.0f", per),
			fmt.Sprintf("%.0f", grp),
			fmt.Sprintf("%.2fx", per/grp))
	}
	return t
}

func retypeCost(m *topo.Machine, shared bool, iters int) float64 {
	e := sim.NewEngine(1)
	defer e.Close()
	s := core.BootWith(e, m, core.Options{SharedReplicas: shared})
	var total sim.Time
	e.Spawn("bench", func(p *sim.Proc) {
		warm := s.Mem.Alloc(4096, 0)
		s.GlobalRetype(p, 0, warm.Base, warm.Bytes, caps.Frame, 0)
		for i := 0; i < iters; i++ {
			reg := s.Mem.Alloc(4096, 0)
			start := p.Now()
			if !s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.Frame, 0) {
				panic("retype aborted")
			}
			total += p.Now() - start
		}
	})
	e.Run()
	return float64(total) / float64(iters)
}

// ExtRunQueue measures the baseline's shared, spinlocked run queue against
// per-core queues as scheduler load rises — the contention the paper's
// Figure 4 spectrum starts from.
func ExtRunQueue(opsPerCore int) *table {
	t := &table{
		Title:   "Extension: scheduler run-queue contention (4x4-core AMD, cycles/op)",
		Columns: []string{"cores", "shared queue", "per-core queues", "slowdown"},
	}
	for _, n := range []int{2, 4, 8, 16} {
		sharedCost := runQueueCost(n, opsPerCore, true)
		perCore := runQueueCost(n, opsPerCore, false)
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", sharedCost),
			fmt.Sprintf("%.0f", perCore),
			fmt.Sprintf("%.1fx", sharedCost/perCore))
	}
	return t
}

func runQueueCost(nCores, ops int, shared bool) float64 {
	m := topo.AMD4x4()
	env := NewEnv(m, 1)
	defer env.Close()
	k := baseline.New(env.E, env.Sys, env.Kern, baseline.Linux)
	queues := make([]*baseline.RunQueue, nCores)
	for i := range queues {
		if shared {
			if i == 0 {
				queues[i] = k.NewRunQueue(0)
			} else {
				queues[i] = queues[0]
			}
		} else {
			queues[i] = k.NewRunQueue(m.Socket(topo.CoreID(i)))
		}
	}
	done := sim.NewWaitGroup(env.E)
	done.Add(nCores)
	var total sim.Time
	for c := 0; c < nCores; c++ {
		c := c
		env.E.Spawn(fmt.Sprintf("sched%d", c), func(p *sim.Proc) {
			defer done.Done()
			start := p.Now()
			q := queues[c]
			for i := 0; i < ops; i++ {
				q.Enqueue(p, topo.CoreID(c), i)
				q.Dequeue(p, topo.CoreID(c))
			}
			total += p.Now() - start
		})
	}
	env.E.Run()
	return float64(total) / float64(nCores*ops)
}
