package expt

import (
	"strings"
	"testing"

	"multikernel/internal/harness"
)

// TestObsDeterminism pins the observability plane's byte-identity contract:
// the full obs sweep — including the sha256 of every point's committed
// time-series store JSON, rendered into the table — must be identical
// whether points run serially or across the worker pool. A single reordered
// sample, window or committed byte anywhere changes a hash and fails this.
func TestObsDeterminism(t *testing.T) {
	render := func(par int) string {
		old := harness.Parallelism()
		harness.SetParallelism(par)
		defer harness.SetParallelism(old)
		res := Obs(42)
		return res.Tab.Render()
	}
	serial := render(1)
	if !strings.Contains(serial, "true") {
		t.Fatalf("obs sweep reported no exact-fidelity point:\n%s", serial)
	}
	for _, par := range []int{2, 4} {
		if got := render(par); got != serial {
			t.Fatalf("parallelism %d changed the obs sweep output\nserial:\n%s\npar:\n%s",
				par, serial, got)
		}
	}
}

// TestObsHeadline sanity-checks the numbers mkbench exports to
// BENCH_obs.json: the disabled plane is exactly free, live sampling keeps
// exact counter fidelity, and the health monitor catches the server kill
// within its documented bound at the finest interval.
func TestObsHeadline(t *testing.T) {
	res := Obs(42)
	if !res.ZeroOverhead {
		t.Error("disabled plane perturbed the client run")
	}
	if !res.FidelityExact {
		t.Error("a live point lost counter fidelity")
	}
	if !res.WithinBound {
		t.Errorf("kill not detected within bound: detect %.0f, bound %.0f",
			res.DetectLat, res.DetectBound)
	}
	if res.Windows == 0 || res.MsgsPerWindow <= 0 {
		t.Errorf("no sampling traffic recorded: windows %d, msgs/win %.1f",
			res.Windows, res.MsgsPerWindow)
	}
}
