package expt

import "testing"

// The kvfault fault matrix — seeded fail-stops, deadline detection,
// promotion, anti-entropy recruitment, admission-control sheds — must report
// identical figures whether the run is driven by the serial reference engine
// (workers=0) or the parallel engine at any worker budget. kvfaultResult is a
// plain struct of numbers, so == is the whole comparison.
func TestKVFaultParallelEngineIdentity(t *testing.T) {
	for _, kills := range []int{1, 2} {
		ref := kvfaultPoint(7, kills, 0)
		if ref.promotions == 0 {
			t.Fatalf("kills=%d: reference run saw no promotions; fault matrix not exercised", kills)
		}
		for _, w := range []int{1, 2, 4} {
			if got := kvfaultPoint(7, kills, w); got != ref {
				t.Errorf("kills=%d workers=%d: %+v diverges from serial %+v", kills, w, got, ref)
			}
		}
	}
}
