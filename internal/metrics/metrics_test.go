package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterHandlesShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("urpc.sent")
	b := r.Counter("urpc.sent")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(4)
	if got := r.Snapshot().Counters["urpc.sent"]; got != 5 {
		t.Fatalf("snapshot=%d, want 5", got)
	}
}

func TestCounterFuncSampledLazily(t *testing.T) {
	r := NewRegistry()
	v := uint64(0)
	r.CounterFunc("sim.events", func() uint64 { return v })
	v = 42
	if got := r.Snapshot().Counters["sim.events"]; got != 42 {
		t.Fatalf("lazy counter sampled %d, want 42", got)
	}
	v = 99
	if got := r.Snapshot().Counters["sim.events"]; got != 99 {
		t.Fatalf("resample got %d, want 99", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cache.fill_cycles")
	if r.Histogram("cache.fill_cycles") != h {
		t.Fatal("same name returned distinct histograms")
	}
	h.Observe(100)
	h.Observe(200)
	s := r.Snapshot()
	hs, ok := s.Histograms["cache.fill_cycles"]
	if !ok || hs.N != 2 || hs.Sum != 300 || hs.Max != 200 {
		t.Fatalf("histogram summary wrong: %+v", hs)
	}
}

func TestSnapshotMergeCommutative(t *testing.T) {
	mk := func(sent, to uint64, lats ...uint64) Snapshot {
		r := NewRegistry()
		r.Counter("urpc.sent").Add(sent)
		r.Counter("urpc.timeouts").Add(to)
		h := r.Histogram("lat")
		for _, l := range lats {
			h.Observe(l)
		}
		return r.Snapshot()
	}
	a1, b1 := mk(3, 1, 10, 5000), mk(7, 0, 80)
	a2, b2 := mk(3, 1, 10, 5000), mk(7, 0, 80)
	a1.Merge(b1)
	b2.Merge(a2)
	ja, _ := json.Marshal(a1)
	jb, _ := json.Marshal(b2)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("merge not commutative:\n%s\n%s", ja, jb)
	}
	if a1.Counters["urpc.sent"] != 10 || a1.Counters["urpc.timeouts"] != 1 {
		t.Fatalf("merged counters wrong: %v", a1.Counters)
	}
	if h := a1.Histograms["lat"]; h.N != 3 || h.Sum != 5090 {
		t.Fatalf("merged histogram wrong: %+v", h)
	}
}

func TestGaugeLevels(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("kv.shard.0.replicas")
	if r.Gauge("kv.shard.0.replicas") != g {
		t.Fatal("same name returned distinct gauges")
	}
	g.Set(3)
	g.Add(-1)
	if got := r.Snapshot().Gauges["kv.shard.0.replicas"]; got != 2 {
		t.Fatalf("snapshot=%d, want 2", got)
	}
	// Gauges sum across merged snapshots (disjoint engines' levels add).
	o := NewRegistry()
	o.Gauge("kv.shard.0.replicas").Set(3)
	s := r.Snapshot()
	s.Merge(o.Snapshot())
	if s.Gauges["kv.shard.0.replicas"] != 5 {
		t.Fatalf("merged gauge=%d, want 5", s.Gauges["kv.shard.0.replicas"])
	}
}

func TestCursorSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("urpc.sent")
	lazy := uint64(10)
	r.CounterFunc("sim.events", func() uint64 { return lazy })
	g := r.Gauge("depth")
	h := r.Histogram("lat")
	c.Add(5)
	g.Set(7)
	h.Observe(100)

	cur := r.NewCursor(nil)
	// First window: everything accumulated so far.
	d := cur.SnapshotDelta()
	if d.Counters["urpc.sent"] != 5 || d.Counters["sim.events"] != 10 {
		t.Fatalf("first window counters: %v", d.Counters)
	}
	if d.Gauges["depth"] != 7 {
		t.Fatalf("first window gauges: %v", d.Gauges)
	}
	if hs := d.Histograms["lat"]; hs.N != 1 || hs.Sum != 100 {
		t.Fatalf("first window histogram: %+v", hs)
	}

	// Idle window: empty snapshot — nothing to ship.
	if d = cur.SnapshotDelta(); len(d.Counters) != 0 || len(d.Gauges) != 0 || len(d.Histograms) != 0 {
		t.Fatalf("idle window not empty: %+v", d)
	}

	// Active window: only the deltas, and the gauge only because it moved.
	c.Add(2)
	lazy = 16
	g.Set(3)
	h.Observe(200)
	h.Observe(300)
	d = cur.SnapshotDelta()
	if d.Counters["urpc.sent"] != 2 || d.Counters["sim.events"] != 6 {
		t.Fatalf("delta counters: %v", d.Counters)
	}
	if d.Gauges["depth"] != 3 {
		t.Fatalf("delta gauges: %v", d.Gauges)
	}
	if hs := d.Histograms["lat"]; hs.N != 2 || hs.Sum != 500 {
		t.Fatalf("delta histogram: %+v", hs)
	}

	// Mergeability: the summed windows equal the full snapshot difference.
	var total Snapshot
	total.Merge(Snapshot{Counters: map[string]uint64{"urpc.sent": 5, "sim.events": 10}})
	total.Merge(d)
	if total.Counters["urpc.sent"] != c.Value() || total.Counters["sim.events"] != lazy {
		t.Fatalf("windows don't sum to totals: %v", total.Counters)
	}

	// A name registered after cursor creation is picked up on its next delta.
	r.Counter("late").Inc()
	if d = cur.SnapshotDelta(); d.Counters["late"] != 1 {
		t.Fatalf("late-registered counter missed: %v", d.Counters)
	}
}

func TestCursorFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.x").Add(1)
	r.Counter("b.y").Add(2)
	r.Gauge("b.g").Set(9)
	cur := r.NewCursor(func(name string) bool { return name[0] == 'b' })
	d := cur.SnapshotDelta()
	if _, ok := d.Counters["a.x"]; ok {
		t.Fatalf("filtered name leaked: %v", d.Counters)
	}
	if d.Counters["b.y"] != 2 || d.Gauges["b.g"] != 9 {
		t.Fatalf("accepted names wrong: %v %v", d.Counters, d.Gauges)
	}
}

func TestGaugeCheckpointRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(4)
	r.Gauge("g").Set(-3)
	r.Histogram("h").Observe(10)
	var buf bytes.Buffer
	if err := r.CheckpointState(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	g2 := r2.Gauge("g") // handle held from build time observes the restore
	if err := r2.RestoreState(&buf); err != nil {
		t.Fatal(err)
	}
	if g2.Value() != -3 || r2.Snapshot().Counters["c"] != 4 {
		t.Fatalf("restore: gauge=%d counters=%v", g2.Value(), r2.Snapshot().Counters)
	}
}

func TestSnapshotNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last")
	r.Counter("a.first")
	r.Counter("m.mid")
	names := r.Snapshot().Names()
	if len(names) != 3 || names[0] != "a.first" || names[1] != "m.mid" || names[2] != "z.last" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestCaptureMergesContributions(t *testing.T) {
	StartCapture()
	if !Capturing() {
		t.Fatal("capture window not open")
	}
	r1 := NewRegistry()
	r1.Counter("x").Add(2)
	r2 := NewRegistry()
	r2.Counter("x").Add(3)
	Contribute(r1.Snapshot())
	Contribute(r2.Snapshot())
	got := TakeCapture()
	if Capturing() {
		t.Fatal("capture window still open after TakeCapture")
	}
	if got.Counters["x"] != 5 {
		t.Fatalf("captured x=%d, want 5", got.Counters["x"])
	}
	// A contribution after the window closed is dropped.
	Contribute(r1.Snapshot())
	if again := TakeCapture(); len(again.Counters) != 0 {
		t.Fatalf("closed-window contribution leaked: %v", again.Counters)
	}
}
