package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterHandlesShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("urpc.sent")
	b := r.Counter("urpc.sent")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(4)
	if got := r.Snapshot().Counters["urpc.sent"]; got != 5 {
		t.Fatalf("snapshot=%d, want 5", got)
	}
}

func TestCounterFuncSampledLazily(t *testing.T) {
	r := NewRegistry()
	v := uint64(0)
	r.CounterFunc("sim.events", func() uint64 { return v })
	v = 42
	if got := r.Snapshot().Counters["sim.events"]; got != 42 {
		t.Fatalf("lazy counter sampled %d, want 42", got)
	}
	v = 99
	if got := r.Snapshot().Counters["sim.events"]; got != 99 {
		t.Fatalf("resample got %d, want 99", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cache.fill_cycles")
	if r.Histogram("cache.fill_cycles") != h {
		t.Fatal("same name returned distinct histograms")
	}
	h.Observe(100)
	h.Observe(200)
	s := r.Snapshot()
	hs, ok := s.Histograms["cache.fill_cycles"]
	if !ok || hs.N != 2 || hs.Sum != 300 || hs.Max != 200 {
		t.Fatalf("histogram summary wrong: %+v", hs)
	}
}

func TestSnapshotMergeCommutative(t *testing.T) {
	mk := func(sent, to uint64, lats ...uint64) Snapshot {
		r := NewRegistry()
		r.Counter("urpc.sent").Add(sent)
		r.Counter("urpc.timeouts").Add(to)
		h := r.Histogram("lat")
		for _, l := range lats {
			h.Observe(l)
		}
		return r.Snapshot()
	}
	a1, b1 := mk(3, 1, 10, 5000), mk(7, 0, 80)
	a2, b2 := mk(3, 1, 10, 5000), mk(7, 0, 80)
	a1.Merge(b1)
	b2.Merge(a2)
	ja, _ := json.Marshal(a1)
	jb, _ := json.Marshal(b2)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("merge not commutative:\n%s\n%s", ja, jb)
	}
	if a1.Counters["urpc.sent"] != 10 || a1.Counters["urpc.timeouts"] != 1 {
		t.Fatalf("merged counters wrong: %v", a1.Counters)
	}
	if h := a1.Histograms["lat"]; h.N != 3 || h.Sum != 5090 {
		t.Fatalf("merged histogram wrong: %+v", h)
	}
}

func TestSnapshotNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last")
	r.Counter("a.first")
	r.Counter("m.mid")
	names := r.Snapshot().Names()
	if len(names) != 3 || names[0] != "a.first" || names[1] != "m.mid" || names[2] != "z.last" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestCaptureMergesContributions(t *testing.T) {
	StartCapture()
	if !Capturing() {
		t.Fatal("capture window not open")
	}
	r1 := NewRegistry()
	r1.Counter("x").Add(2)
	r2 := NewRegistry()
	r2.Counter("x").Add(3)
	Contribute(r1.Snapshot())
	Contribute(r2.Snapshot())
	got := TakeCapture()
	if Capturing() {
		t.Fatal("capture window still open after TakeCapture")
	}
	if got.Counters["x"] != 5 {
		t.Fatalf("captured x=%d, want 5", got.Counters["x"])
	}
	// A contribution after the window closed is dropped.
	Contribute(r1.Snapshot())
	if again := TakeCapture(); len(again.Counters) != 0 {
		t.Fatalf("closed-window contribution leaked: %v", again.Counters)
	}
}
