// Package metrics is the typed per-subsystem counter and histogram registry
// of the simulator. One Registry belongs to one sim.Engine (the package does
// not import internal/sim, so the engine can embed a Registry without an
// import cycle), and everything an engine touches — URPC channels, the cache
// system, the interconnect fabric, monitors, the fault injector — registers
// its counters there under dotted names ("urpc.timeouts",
// "interconnect.link.0-1.dwords").
//
// Accumulation convention: a Registry and its counters are engine-confined
// state, exactly like the simulation models that update them. The engine
// guarantees at most one proc (or engine callback) runs at a time with a
// happens-before edge at every baton handoff, so counters use plain
// non-atomic increments — race-free under -race, and free of hot-path atomic
// traffic. The only cross-goroutine boundary is the global capture
// collector, which engines call once at Close and which takes a lock.
//
// Two registration styles:
//
//   - Counter/Histogram hand out live handles for code that increments as it
//     goes (URPC sends, cache fill latencies).
//   - CounterFunc registers a sampling function evaluated only at Snapshot
//     time — for state a subsystem already accumulates (fabric link traffic,
//     per-monitor Stats structs, engine internals). Zero hot-path cost.
package metrics

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"multikernel/internal/ckpt"
	"multikernel/internal/stats"
)

// Counter is a monotonically increasing count. Engine-confined: see the
// package accumulation convention.
type Counter struct{ v uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Registry holds one engine's counters and histograms.
type Registry struct {
	counters map[string]*Counter
	funcs    map[string]func() uint64
	hists    map[string]*stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		funcs:    make(map[string]func() uint64),
		hists:    make(map[string]*stats.Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
// All callers asking for one name share one counter.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterFunc registers fn as a lazy counter sampled at Snapshot time,
// replacing any previous function under the same name.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.funcs[name] = fn
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *stats.Histogram {
	h := r.hists[name]
	if h == nil {
		h = &stats.Histogram{}
		r.hists[name] = h
	}
	return h
}

// CheckpointState serializes every live counter and histogram, sorted by
// name, implementing sim.Checkpointer so a registry survives engine
// checkpoint/restore. Lazy CounterFunc entries are not serialized: they
// sample component state that is checkpointed (and re-registered) by the
// components themselves.
func (r *Registry) CheckpointState(w io.Writer) error {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := ckpt.WriteU64(w, uint64(len(names))); err != nil {
		return err
	}
	for _, n := range names {
		if err := ckpt.WriteString(w, n); err != nil {
			return err
		}
		if err := ckpt.WriteU64(w, r.counters[n].v); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	if err := ckpt.WriteU64(w, uint64(len(hnames))); err != nil {
		return err
	}
	for _, n := range hnames {
		if err := ckpt.WriteString(w, n); err != nil {
			return err
		}
		counts, hn, sum, max := r.hists[n].Raw()
		if err := ckpt.WriteU64(w, hn, sum, max); err != nil {
			return err
		}
		if err := ckpt.WriteU64Slice(w, counts); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState reads back what CheckpointState wrote. Counters and
// histograms are created on demand and restored in place, so handles already
// held by components (from build-time registration) observe the restored
// values.
func (r *Registry) RestoreState(rd io.Reader) error {
	var n uint64
	if err := ckpt.ReadU64(rd, &n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		name, err := ckpt.ReadString(rd)
		if err != nil {
			return err
		}
		var v uint64
		if err := ckpt.ReadU64(rd, &v); err != nil {
			return err
		}
		r.Counter(name).v = v
	}
	if err := ckpt.ReadU64(rd, &n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		name, err := ckpt.ReadString(rd)
		if err != nil {
			return err
		}
		var hn, sum, max uint64
		if err := ckpt.ReadU64(rd, &hn, &sum, &max); err != nil {
			return err
		}
		counts, err := ckpt.ReadU64Slice(rd)
		if err != nil {
			return err
		}
		r.Histogram(name).SetRaw(counts, hn, sum, max)
	}
	return nil
}

// Snapshot is a point-in-time copy of a registry, or a merge of several.
// Maps marshal with sorted keys and histogram buckets are ordered slices, so
// the JSON encoding is deterministic.
type Snapshot struct {
	Counters   map[string]uint64                 `json:"counters"`
	Histograms map[string]stats.HistogramSummary `json:"histograms,omitempty"`
}

// Snapshot samples every counter (live and lazy) and histogram.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64, len(r.counters)+len(r.funcs))}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, fn := range r.funcs {
		s.Counters[name] = fn()
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]stats.HistogramSummary, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Summary()
		}
	}
	return s
}

// Merge folds o into s: counters sum, histograms merge bucket-wise. Merging
// is commutative, so a parallel sweep folds to the same totals in any
// completion order.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]uint64, len(o.Counters))
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	if len(o.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]stats.HistogramSummary, len(o.Histograms))
	}
	for name, h := range o.Histograms {
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

// Names returns the snapshot's counter names, sorted — the iteration helper
// for renderers.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Global capture: merging per-engine snapshots from a parallel sweep.

var (
	captureOn atomic.Bool
	captureMu sync.Mutex
	captured  Snapshot
)

// StartCapture opens a capture window: engines snapshot their registry into
// it when closed. Any previously captured totals are discarded.
func StartCapture() {
	captureMu.Lock()
	captured = Snapshot{}
	captureMu.Unlock()
	captureOn.Store(true)
}

// Capturing reports whether a capture window is open.
func Capturing() bool { return captureOn.Load() }

// Contribute merges snap into the open capture window. Safe to call from
// concurrent harness workers; a closed window ignores the contribution.
func Contribute(snap Snapshot) {
	if !captureOn.Load() {
		return
	}
	captureMu.Lock()
	captured.Merge(snap)
	captureMu.Unlock()
}

// TakeCapture closes the capture window and returns the merged totals.
func TakeCapture() Snapshot {
	captureOn.Store(false)
	captureMu.Lock()
	out := captured
	captured = Snapshot{}
	captureMu.Unlock()
	return out
}
