// Package metrics is the typed per-subsystem counter and histogram registry
// of the simulator. One Registry belongs to one sim.Engine (the package does
// not import internal/sim, so the engine can embed a Registry without an
// import cycle), and everything an engine touches — URPC channels, the cache
// system, the interconnect fabric, monitors, the fault injector — registers
// its counters there under dotted names ("urpc.timeouts",
// "interconnect.link.0-1.dwords").
//
// Accumulation convention: a Registry and its counters are engine-confined
// state, exactly like the simulation models that update them. The engine
// guarantees at most one proc (or engine callback) runs at a time with a
// happens-before edge at every baton handoff, so counters use plain
// non-atomic increments — race-free under -race, and free of hot-path atomic
// traffic. The only cross-goroutine boundary is the global capture
// collector, which engines call once at Close and which takes a lock.
//
// Two registration styles:
//
//   - Counter/Histogram hand out live handles for code that increments as it
//     goes (URPC sends, cache fill latencies).
//   - CounterFunc registers a sampling function evaluated only at Snapshot
//     time — for state a subsystem already accumulates (fabric link traffic,
//     per-monitor Stats structs, engine internals). Zero hot-path cost.
package metrics

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"multikernel/internal/ckpt"
	"multikernel/internal/stats"
)

// Counter is a monotonically increasing count. Engine-confined: see the
// package accumulation convention.
type Counter struct{ v uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level — queue depth, replica count, heap size —
// as opposed to a Counter's monotone total. Engine-confined like Counter: see
// the package accumulation convention.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v += d }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Registry holds one engine's counters, gauges and histograms.
type Registry struct {
	counters map[string]*Counter
	funcs    map[string]func() uint64
	gauges   map[string]*Gauge
	hists    map[string]*stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		funcs:    make(map[string]func() uint64),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*stats.Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
// All callers asking for one name share one counter.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterFunc registers fn as a lazy counter sampled at Snapshot time,
// replacing any previous function under the same name.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.funcs[name] = fn
}

// Gauge returns the gauge registered under name, creating it if needed. All
// callers asking for one name share one gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *stats.Histogram {
	h := r.hists[name]
	if h == nil {
		h = &stats.Histogram{}
		r.hists[name] = h
	}
	return h
}

// CheckpointState serializes every live counter and histogram, sorted by
// name, implementing sim.Checkpointer so a registry survives engine
// checkpoint/restore. Lazy CounterFunc entries are not serialized: they
// sample component state that is checkpointed (and re-registered) by the
// components themselves.
func (r *Registry) CheckpointState(w io.Writer) error {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := ckpt.WriteU64(w, uint64(len(names))); err != nil {
		return err
	}
	for _, n := range names {
		if err := ckpt.WriteString(w, n); err != nil {
			return err
		}
		if err := ckpt.WriteU64(w, r.counters[n].v); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	if err := ckpt.WriteU64(w, uint64(len(hnames))); err != nil {
		return err
	}
	for _, n := range hnames {
		if err := ckpt.WriteString(w, n); err != nil {
			return err
		}
		counts, hn, sum, max := r.hists[n].Raw()
		if err := ckpt.WriteU64(w, hn, sum, max); err != nil {
			return err
		}
		if err := ckpt.WriteU64Slice(w, counts); err != nil {
			return err
		}
	}
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	if err := ckpt.WriteU64(w, uint64(len(gnames))); err != nil {
		return err
	}
	for _, n := range gnames {
		if err := ckpt.WriteString(w, n); err != nil {
			return err
		}
		if err := ckpt.WriteU64(w, uint64(r.gauges[n].v)); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState reads back what CheckpointState wrote. Counters and
// histograms are created on demand and restored in place, so handles already
// held by components (from build-time registration) observe the restored
// values.
func (r *Registry) RestoreState(rd io.Reader) error {
	var n uint64
	if err := ckpt.ReadU64(rd, &n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		name, err := ckpt.ReadString(rd)
		if err != nil {
			return err
		}
		var v uint64
		if err := ckpt.ReadU64(rd, &v); err != nil {
			return err
		}
		r.Counter(name).v = v
	}
	if err := ckpt.ReadU64(rd, &n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		name, err := ckpt.ReadString(rd)
		if err != nil {
			return err
		}
		var hn, sum, max uint64
		if err := ckpt.ReadU64(rd, &hn, &sum, &max); err != nil {
			return err
		}
		counts, err := ckpt.ReadU64Slice(rd)
		if err != nil {
			return err
		}
		r.Histogram(name).SetRaw(counts, hn, sum, max)
	}
	if err := ckpt.ReadU64(rd, &n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		name, err := ckpt.ReadString(rd)
		if err != nil {
			return err
		}
		var v uint64
		if err := ckpt.ReadU64(rd, &v); err != nil {
			return err
		}
		r.Gauge(name).v = int64(v)
	}
	return nil
}

// Snapshot is a point-in-time copy of a registry, or a merge of several.
// Maps marshal with sorted keys and histogram buckets are ordered slices, so
// the JSON encoding is deterministic.
type Snapshot struct {
	Counters   map[string]uint64                 `json:"counters"`
	Gauges     map[string]int64                  `json:"gauges,omitempty"`
	Histograms map[string]stats.HistogramSummary `json:"histograms,omitempty"`
}

// Snapshot samples every counter (live and lazy), gauge and histogram.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64, len(r.counters)+len(r.funcs))}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, fn := range r.funcs {
		s.Counters[name] = fn()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]stats.HistogramSummary, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Summary()
		}
	}
	return s
}

// Merge folds o into s: counters and gauges sum, histograms merge
// bucket-wise. Merging is commutative, so a parallel sweep folds to the same
// totals in any completion order. (Summing gauges is right for the sweep use:
// disjoint engines' levels — queue depths, heap sizes — add.)
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]uint64, len(o.Counters))
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	if len(o.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]int64, len(o.Gauges))
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	if len(o.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]stats.HistogramSummary, len(o.Histograms))
	}
	for name, h := range o.Histograms {
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

// Names returns the snapshot's counter names, sorted — the iteration helper
// for renderers.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Cursors: windowed delta sampling for the observability plane.

// histMark is a cursor's remembered position in one histogram.
type histMark struct {
	counts [stats.NumBuckets]uint64
	n, sum uint64
}

// Cursor remembers a sampler's position in a registry so successive
// SnapshotDelta calls return only what changed in between. Deltas are
// atomic in the only sense that matters here — the registry is
// engine-confined, so a cursor running inside a proc observes one consistent
// virtual instant with no counter racing ahead mid-snapshot — and they are
// mergeable: summing a series' deltas over any window partition reproduces
// the plain Snapshot difference across that window.
//
// A cursor sees only names its filter accepts (nil accepts everything);
// disjoint filters across per-core cursors give exactly-once accounting of a
// shared registry. Names registered after the cursor was created are picked
// up on their first subsequent delta.
type Cursor struct {
	r        *Registry
	filter   func(string) bool
	counters map[string]uint64
	gauges   map[string]int64
	hists    map[string]*histMark
}

// NewCursor returns a cursor over r restricted to names accepted by filter
// (nil for all). The cursor starts at zero: the first SnapshotDelta returns
// everything accumulated so far.
func (r *Registry) NewCursor(filter func(string) bool) *Cursor {
	return &Cursor{
		r:        r,
		filter:   filter,
		counters: make(map[string]uint64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*histMark),
	}
}

func (c *Cursor) accepts(name string) bool { return c.filter == nil || c.filter(name) }

// SnapshotDelta returns what changed since the previous call and advances the
// cursor. Counters (live and lazy) report their increase and are omitted when
// unchanged; gauges report their current level, but only on calls where it
// changed (first observation included); histograms report the window's delta
// summary and are omitted when no observation landed. An idle window is an
// empty snapshot.
func (c *Cursor) SnapshotDelta() Snapshot {
	var s Snapshot
	counter := func(name string, cur uint64) {
		prev := c.counters[name]
		if cur == prev {
			return
		}
		c.counters[name] = cur
		if cur < prev {
			return // a lazy sampler regressed; resync without emitting garbage
		}
		if s.Counters == nil {
			s.Counters = make(map[string]uint64)
		}
		s.Counters[name] = cur - prev
	}
	for name, cn := range c.r.counters {
		if c.accepts(name) {
			counter(name, cn.v)
		}
	}
	for name, fn := range c.r.funcs {
		if c.accepts(name) {
			counter(name, fn())
		}
	}
	for name, g := range c.r.gauges {
		if !c.accepts(name) {
			continue
		}
		prev, seen := c.gauges[name]
		if seen && prev == g.v {
			continue
		}
		c.gauges[name] = g.v
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		s.Gauges[name] = g.v
	}
	for name, h := range c.r.hists {
		if !c.accepts(name) {
			continue
		}
		m := c.hists[name]
		if m == nil {
			m = &histMark{}
			c.hists[name] = m
		}
		counts, n, sum, _ := h.Raw()
		if n == m.n {
			continue
		}
		d := stats.DeltaSummary(counts, m.counts[:], n-m.n, sum-m.sum)
		copy(m.counts[:], counts)
		m.n, m.sum = n, sum
		if s.Histograms == nil {
			s.Histograms = make(map[string]stats.HistogramSummary)
		}
		s.Histograms[name] = d
	}
	return s
}

// ---------------------------------------------------------------------------
// Global capture: merging per-engine snapshots from a parallel sweep.

var (
	captureOn atomic.Bool
	captureMu sync.Mutex
	captured  Snapshot
)

// StartCapture opens a capture window: engines snapshot their registry into
// it when closed. Any previously captured totals are discarded.
func StartCapture() {
	captureMu.Lock()
	captured = Snapshot{}
	captureMu.Unlock()
	captureOn.Store(true)
}

// Capturing reports whether a capture window is open.
func Capturing() bool { return captureOn.Load() }

// Contribute merges snap into the open capture window. Safe to call from
// concurrent harness workers; a closed window ignores the contribution.
func Contribute(snap Snapshot) {
	if !captureOn.Load() {
		return
	}
	captureMu.Lock()
	captured.Merge(snap)
	captureMu.Unlock()
}

// TakeCapture closes the capture window and returns the merged totals.
func TakeCapture() Snapshot {
	captureOn.Store(false)
	captureMu.Lock()
	out := captured
	captured = Snapshot{}
	captureMu.Unlock()
	return out
}
