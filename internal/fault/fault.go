// Package fault is a seeded, deterministic fault-schedule engine for the
// simulated multikernel machine. A Schedule is a list of timed fault events —
// fail-stop a core at cycle T, degrade or partition an interconnect link for
// a window, stall a cache-line owner — generated either explicitly or from a
// seed, and an Injector arms it onto a simulation: kills become sim.Engine
// proc kills (delivered through registered OnKill hooks, so the OS layer
// decides what "core death" means), link faults become interconnect.Fabric
// degradations, and stalls become cache owner-stall windows.
//
// Determinism contract: a schedule is pure data derived only from its seed
// and spec, and the Injector delivers every event through engine callbacks at
// exact virtual times. Two runs with the same engine seed and the same
// schedule are therefore bit-for-bit identical, at any host parallelism —
// the fault schedule is simply part of the experiment point's seed.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// Kind enumerates fault types.
type Kind uint8

const (
	// KillCore fail-stops a core at Event.At: its procs are killed and it
	// never responds again.
	KillCore Kind = iota
	// DegradeLink multiplies the latency of transfers crossing the link
	// A—B by Factor and retries lost transfers with probability Loss, for
	// the window [At, At+For).
	DegradeLink
	// PartitionLink is DegradeLink with total loss: every crossing pays the
	// fabric's full retry budget for the window [At, At+For).
	PartitionLink
	// StallCore freezes core Core's cache controller for [At, At+For):
	// fills served by it and probes to it wait out the window.
	StallCore
)

func (k Kind) String() string {
	switch k {
	case KillCore:
		return "kill"
	case DegradeLink:
		return "degrade"
	case PartitionLink:
		return "partition"
	case StallCore:
		return "stall"
	}
	return "?"
}

// Event is one timed fault.
type Event struct {
	At   sim.Time
	Kind Kind

	Core topo.CoreID   // KillCore, StallCore
	A, B topo.SocketID // DegradeLink, PartitionLink
	For  sim.Time      // window length (link and stall faults)

	Factor float64 // DegradeLink latency multiplier (>= 1)
	Loss   float64 // DegradeLink loss probability [0, 1]
}

func (ev Event) String() string {
	switch ev.Kind {
	case KillCore:
		return fmt.Sprintf("t=%d kill core %d", ev.At, ev.Core)
	case DegradeLink:
		return fmt.Sprintf("t=%d degrade link %d-%d x%.1f loss=%.2f for %d", ev.At, ev.A, ev.B, ev.Factor, ev.Loss, ev.For)
	case PartitionLink:
		return fmt.Sprintf("t=%d partition link %d-%d for %d", ev.At, ev.A, ev.B, ev.For)
	case StallCore:
		return fmt.Sprintf("t=%d stall core %d for %d", ev.At, ev.Core, ev.For)
	}
	return "?"
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

// KillAt appends a fail-stop of core c at time t.
func (s *Schedule) KillAt(t sim.Time, c topo.CoreID) *Schedule {
	s.Events = append(s.Events, Event{At: t, Kind: KillCore, Core: c})
	return s
}

// DegradeLinkAt appends a degradation of link a—b for the window [t, t+d).
func (s *Schedule) DegradeLinkAt(t sim.Time, a, b topo.SocketID, d sim.Time, factor, loss float64) *Schedule {
	s.Events = append(s.Events, Event{At: t, Kind: DegradeLink, A: a, B: b, For: d, Factor: factor, Loss: loss})
	return s
}

// PartitionLinkAt appends a partition of link a—b for the window [t, t+d).
func (s *Schedule) PartitionLinkAt(t sim.Time, a, b topo.SocketID, d sim.Time) *Schedule {
	s.Events = append(s.Events, Event{At: t, Kind: PartitionLink, A: a, B: b, For: d})
	return s
}

// StallAt appends an owner-stall of core c's cache for the window [t, t+d).
func (s *Schedule) StallAt(t sim.Time, c topo.CoreID, d sim.Time) *Schedule {
	s.Events = append(s.Events, Event{At: t, Kind: StallCore, Core: c, For: d})
	return s
}

// Kills returns the cores fail-stopped by the schedule, in kill-time order.
func (s *Schedule) Kills() []topo.CoreID {
	type kill struct {
		at sim.Time
		c  topo.CoreID
	}
	var ks []kill
	for _, ev := range s.Events {
		if ev.Kind == KillCore {
			ks = append(ks, kill{ev.At, ev.Core})
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].at < ks[j].at })
	out := make([]topo.CoreID, len(ks))
	for i, k := range ks {
		out[i] = k.c
	}
	return out
}

// String renders the schedule one event per line, in time order.
func (s *Schedule) String() string {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var b strings.Builder
	for _, ev := range evs {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Spec parameterizes Random schedule generation.
type Spec struct {
	Kills      int // fail-stopped cores (distinct, never from Protect)
	LinkFaults int // degraded-link windows
	Stalls     int // owner-stall windows

	// Window is the virtual-time interval faults are drawn from.
	Window [2]sim.Time
	// FaultFor is the duration of link and stall windows (default 200_000).
	FaultFor sim.Time
	// Factor and Loss parameterize link degradations (defaults 4 and 0.2).
	Factor float64
	Loss   float64
	// Protect lists cores that are never killed or stalled (typically the
	// initiating core, whose death would orphan the experiment's driver).
	Protect []topo.CoreID
}

// Random derives a schedule from seed for machine m. The schedule depends
// only on (seed, m, spec): it uses a private splitmix64 stream, never the
// engine RNG, so composing it with an engine run perturbs nothing else.
func Random(seed uint64, m *topo.Machine, spec Spec) *Schedule {
	rng := sim.NewRNG(seed ^ 0xfa17_5eed_9e37_79b9)
	lo, hi := spec.Window[0], spec.Window[1]
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	if spec.FaultFor == 0 {
		spec.FaultFor = 200_000
	}
	if spec.Factor == 0 {
		spec.Factor = 4
	}
	if spec.Loss == 0 {
		spec.Loss = 0.2
	}
	protected := make(map[topo.CoreID]bool, len(spec.Protect))
	for _, c := range spec.Protect {
		protected[c] = true
	}

	s := &Schedule{}
	killed := make(map[topo.CoreID]bool)
	// Never kill so many cores that fewer than 2 survive.
	maxKills := m.NumCores() - 2 - len(spec.Protect)
	if spec.Kills < maxKills {
		maxKills = spec.Kills
	}
	for len(killed) < maxKills {
		c := topo.CoreID(rng.Intn(m.NumCores()))
		if protected[c] || killed[c] {
			continue
		}
		killed[c] = true
		s.KillAt(lo+rng.Time(span), c)
	}
	for i := 0; i < spec.LinkFaults && len(m.Links) > 0; i++ {
		l := m.Links[rng.Intn(len(m.Links))]
		s.DegradeLinkAt(lo+rng.Time(span), l.A, l.B, spec.FaultFor, spec.Factor, spec.Loss)
	}
	for i := 0; i < spec.Stalls; i++ {
		c := topo.CoreID(rng.Intn(m.NumCores()))
		if protected[c] || killed[c] {
			continue // a dead or protected core is not stalled; keep the count deterministic
		}
		s.StallAt(lo+rng.Time(span), c, spec.FaultFor)
	}
	return s
}

// Injector arms schedules onto a simulation.
type Injector struct {
	eng    *sim.Engine
	sys    *cache.System
	onKill []func(topo.CoreID)
	killed map[topo.CoreID]sim.Time
	fired  int
}

// NewInjector returns an injector for the given engine and cache system.
func NewInjector(e *sim.Engine, sys *cache.System) *Injector {
	i := &Injector{eng: e, sys: sys, killed: make(map[topo.CoreID]sim.Time)}
	e.Metrics().CounterFunc("fault.events_fired", func() uint64 { return uint64(i.fired) })
	return i
}

// OnKill registers a hook invoked (in registration order, in engine-callback
// context) when a KillCore event fires. The OS layer registers its notion of
// core death here — e.g. monitor.Network.FailStop.
func (i *Injector) OnKill(fn func(topo.CoreID)) { i.onKill = append(i.onKill, fn) }

// Arm schedules every event of s onto the engine. It may be called before or
// during a run; events whose time has passed fire immediately.
func (i *Injector) Arm(s *Schedule) {
	for _, ev := range s.Events {
		ev := ev
		d := ev.At
		if now := i.eng.Now(); d > now {
			d -= now
		} else {
			d = 0
		}
		i.eng.After(d, func() { i.fire(ev) })
	}
}

func (i *Injector) fire(ev Event) {
	i.fired++
	switch ev.Kind {
	case KillCore:
		if _, dead := i.killed[ev.Core]; dead {
			return
		}
		i.eng.Tracer().Emit(uint64(i.eng.Now()), trace.Instant, trace.SubSim, int32(ev.Core), "fault.kill", 0, 0)
		i.killed[ev.Core] = i.eng.Now()
		for _, fn := range i.onKill {
			fn(ev.Core)
		}
	case DegradeLink, PartitionLink:
		fab := i.sys.Fabric()
		d := interconnect.Degrade{DelayFactor: ev.Factor, LossProb: ev.Loss}
		name := "fault.degrade"
		if ev.Kind == PartitionLink {
			d = interconnect.Degrade{LossProb: 1}
			name = "fault.partition"
		}
		i.eng.Tracer().Emit(uint64(i.eng.Now()), trace.Instant, trace.SubSim, -1, name, uint64(ev.A)<<32|uint64(ev.B), uint64(ev.For))
		fab.SetDegrade(ev.A, ev.B, d)
		i.eng.After(ev.For, func() { fab.ClearDegrade(ev.A, ev.B) })
	case StallCore:
		if _, dead := i.killed[ev.Core]; !dead {
			i.eng.Tracer().Emit(uint64(i.eng.Now()), trace.Instant, trace.SubSim, int32(ev.Core), "fault.stall", 0, uint64(ev.For))
			i.sys.SetCoreStall(ev.Core, i.eng.Now()+ev.For)
		}
	}
}

// Killed reports whether the injector has fail-stopped core c, and when.
func (i *Injector) Killed(c topo.CoreID) (sim.Time, bool) {
	t, ok := i.killed[c]
	return t, ok
}

// Fired returns the number of events delivered so far.
func (i *Injector) Fired() int { return i.fired }
