package fault

import (
	"reflect"
	"testing"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func newRig(m *topo.Machine) (*sim.Engine, *cache.System) {
	e := sim.NewEngine(1)
	return e, cache.New(e, m, memory.New(m), interconnect.New(m))
}

// TestRandomScheduleIsSeedDeterministic: same (seed, machine, spec) gives the
// identical schedule; a different seed gives a different one.
func TestRandomScheduleIsSeedDeterministic(t *testing.T) {
	m := topo.AMD8x4()
	spec := Spec{Kills: 3, LinkFaults: 2, Stalls: 2, Window: [2]sim.Time{10_000, 900_000}, Protect: []topo.CoreID{0}}
	a := Random(42, m, spec)
	b := Random(42, m, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\nvs\n%v", a, b)
	}
	c := Random(43, m, spec)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestRandomRespectsProtectAndSurvivorFloor: protected cores are never killed
// or stalled, and at least 2 cores always survive.
func TestRandomRespectsProtectAndSurvivorFloor(t *testing.T) {
	m := topo.AMD2x2() // 4 cores
	for seed := uint64(0); seed < 30; seed++ {
		s := Random(seed, m, Spec{Kills: 10, Stalls: 5, Window: [2]sim.Time{0, 100_000}, Protect: []topo.CoreID{0}})
		kills := s.Kills()
		if len(kills) > m.NumCores()-2-1 {
			t.Fatalf("seed %d killed %d of %d cores (protect=1)", seed, len(kills), m.NumCores())
		}
		for _, ev := range s.Events {
			if (ev.Kind == KillCore || ev.Kind == StallCore) && ev.Core == 0 {
				t.Fatalf("seed %d touched protected core: %v", seed, ev)
			}
			if ev.At < 0 || ev.At > 100_000 {
				t.Fatalf("seed %d event outside window: %v", seed, ev)
			}
		}
	}
}

// TestInjectorDeliversKillsToHooks: kills fire at their scheduled virtual
// times, exactly once per core, through every registered hook.
func TestInjectorDeliversKillsToHooks(t *testing.T) {
	e, sys := newRig(topo.AMD2x2())
	inj := NewInjector(e, sys)
	var killedAt []sim.Time
	var killedCore []topo.CoreID
	inj.OnKill(func(c topo.CoreID) {
		killedAt = append(killedAt, e.Now())
		killedCore = append(killedCore, c)
	})
	s := &Schedule{}
	s.KillAt(500, 3).KillAt(200, 1).KillAt(900, 3) // duplicate kill of 3 ignored
	inj.Arm(s)
	e.Run()
	if !reflect.DeepEqual(killedCore, []topo.CoreID{1, 3}) {
		t.Fatalf("kill order %v, want [1 3]", killedCore)
	}
	if !reflect.DeepEqual(killedAt, []sim.Time{200, 500}) {
		t.Fatalf("kill times %v, want [200 500]", killedAt)
	}
	if _, ok := inj.Killed(3); !ok {
		t.Fatal("Killed(3) not recorded")
	}
	if _, ok := inj.Killed(0); ok {
		t.Fatal("Killed(0) spuriously recorded")
	}
	if inj.Fired() != 3 {
		t.Fatalf("fired=%d, want 3", inj.Fired())
	}
}

// TestInjectorLinkWindowOpensAndCloses: the fabric is degraded exactly for
// the scheduled window.
func TestInjectorLinkWindowOpensAndCloses(t *testing.T) {
	e, sys := newRig(topo.AMD2x2())
	inj := NewInjector(e, sys)
	s := &Schedule{}
	s.DegradeLinkAt(1_000, 0, 1, 5_000, 3, 0)
	inj.Arm(s)
	e.RunUntil(2_000)
	if d, ok := sys.Fabric().LinkDegrade(0, 1); !ok || d.DelayFactor != 3 {
		t.Fatalf("mid-window degrade = %+v ok=%v", d, ok)
	}
	e.RunUntil(10_000)
	if sys.Fabric().Degraded() {
		t.Fatal("degradation survived its window")
	}
}

// TestInjectorStallSkipsDeadCore: stalling a core that was already killed is
// a no-op (its cache controller is gone, not slow).
func TestInjectorStallSkipsDeadCore(t *testing.T) {
	e, sys := newRig(topo.AMD2x2())
	inj := NewInjector(e, sys)
	s := &Schedule{}
	s.KillAt(100, 2).StallAt(200, 2, 50_000).StallAt(200, 3, 50_000)
	inj.Arm(s)
	e.Run()
	// Core 3's stall landed; verify by a remote fetch from core 3's cache.
	a := sys.Memory().AllocLines(1, 0).Base
	// (direct model check: schedule only records; the stall is visible via
	// cache latency, covered in cache tests — here just check no panic and
	// accounting)
	_ = a
	if inj.Fired() != 3 {
		t.Fatalf("fired=%d, want 3", inj.Fired())
	}
}

// TestPartitionEventUsesFullLoss: a PartitionLink event sets LossProb 1.
func TestPartitionEventUsesFullLoss(t *testing.T) {
	e, sys := newRig(topo.AMD2x2())
	inj := NewInjector(e, sys)
	s := &Schedule{}
	s.PartitionLinkAt(10, 0, 1, 1_000)
	inj.Arm(s)
	e.RunUntil(20)
	if d, ok := sys.Fabric().LinkDegrade(0, 1); !ok || d.LossProb != 1 {
		t.Fatalf("partition degrade = %+v ok=%v", d, ok)
	}
	e.Run()
}

// TestScheduleString renders events in time order.
func TestScheduleString(t *testing.T) {
	s := &Schedule{}
	s.KillAt(500, 3).StallAt(100, 1, 50)
	out := s.String()
	if out == "" {
		t.Fatal("empty rendering")
	}
	if idx1, idx2 := indexOf(out, "stall core 1"), indexOf(out, "kill core 3"); idx1 < 0 || idx2 < 0 || idx1 > idx2 {
		t.Fatalf("events not in time order:\n%s", out)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
