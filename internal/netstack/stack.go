package netstack

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// Protocol-processing software costs in cycles (lwIP-style library stack).
const (
	costEthRx  = 90
	costIPRx   = 160
	costUDPRx  = 110
	costTCPRx  = 260
	costEthTx  = 80
	costIPTx   = 170
	costUDPTx  = 100
	costTCPTx  = 240
	costSockOp = 60
)

// Stack is one lwIP-like stack instance, linked as a library into the
// application domain on a single core (paper §5.4). Frames arrive either
// from a NIC (via a Driver) or from a URPC link to another stack.
type Stack struct {
	Name string
	IP   IPAddr
	MAC  MAC

	e    *sim.Engine
	sys  *cache.System
	core topo.CoreID

	udp     map[uint16]*UDPSock
	tcp     map[uint16]*TCPListener
	conns   map[connKey]*TCPConn
	out     func(p *sim.Proc, f Frame) // transmit path
	poller  func(p *sim.Proc) bool     // pulls frames from the link into inbox
	inbox   *sim.Queue[Frame]
	nextEph uint16
	ipID    uint16
}

// stackPollGap is the idle polling interval of blocking socket operations.
const stackPollGap = 250

type connKey struct {
	localPort, remotePort uint16
	remote                IPAddr
}

// NewStack creates a stack bound to a core.
func NewStack(e *sim.Engine, sys *cache.System, name string, core topo.CoreID, ip IPAddr) *Stack {
	var mac MAC
	mac[0] = 0x02
	mac[5] = byte(core)
	return &Stack{
		Name:    name,
		IP:      ip,
		MAC:     mac,
		e:       e,
		sys:     sys,
		core:    core,
		udp:     make(map[uint16]*UDPSock),
		tcp:     make(map[uint16]*TCPListener),
		conns:   make(map[connKey]*TCPConn),
		inbox:   sim.NewQueue[Frame](e),
		nextEph: 32768,
	}
}

// Core returns the core the stack runs on.
func (s *Stack) Core() topo.CoreID { return s.core }

// SetOutput installs the transmit function (to a NIC driver link or a URPC
// loopback link).
func (s *Stack) SetOutput(fn func(p *sim.Proc, f Frame)) { s.out = fn }

// SetPoller installs the function blocking socket operations use to pull
// frames from the underlying link into the stack. ConnectLoopback and
// NewDriver install one automatically; custom configurations (e.g. a merged
// driver/app loop modelling an in-kernel stack) set their own.
func (s *Stack) SetPoller(fn func(p *sim.Proc) bool) { s.poller = fn }

// Inject queues a received frame into the stack (engine or proc context).
func (s *Stack) Inject(f Frame) { s.inbox.Push(f) }

// Pump processes at least one received frame, polling the underlying link
// until one arrives. The application's proc drives the stack, as with a
// library stack.
func (s *Stack) Pump(p *sim.Proc) {
	for {
		if f, ok := s.inbox.TryPop(); ok {
			s.handleFrame(p, f)
			return
		}
		if s.poller != nil {
			if !s.poller(p) {
				p.Sleep(stackPollGap)
			}
			continue
		}
		f := s.inbox.Pop(p)
		s.handleFrame(p, f)
		return
	}
}

// PumpReady polls the link and processes pending frames without blocking; it
// reports whether any were handled.
func (s *Stack) PumpReady(p *sim.Proc) bool {
	if s.poller != nil {
		s.poller(p)
	}
	any := false
	for {
		f, ok := s.inbox.TryPop()
		if !ok {
			return any
		}
		any = true
		s.handleFrame(p, f)
	}
}

func (s *Stack) handleFrame(p *sim.Proc, f Frame) {
	p.Sleep(costEthRx)
	eth, ipb, err := ParseEth(f)
	if err != nil || eth.EtherType != EtherTypeIPv4 {
		return
	}
	p.Sleep(costIPRx)
	ip, body, err := ParseIPv4(ipb)
	if err != nil || ip.Dst != s.IP {
		return
	}
	switch ip.Protocol {
	case ProtoUDP:
		p.Sleep(costUDPRx)
		udp, payload, err := ParseUDP(body)
		if err != nil {
			return
		}
		if sock := s.udp[udp.DstPort]; sock != nil {
			sock.deliver(Datagram{Src: ip.Src, SrcPort: udp.SrcPort, Payload: payload})
		}
	case ProtoTCP:
		p.Sleep(costTCPRx)
		tcp, payload, err := ParseTCP(body)
		if err != nil {
			return
		}
		s.handleTCP(p, ip.Src, tcp, payload)
	}
}

// sendIP builds and transmits an IPv4 packet.
func (s *Stack) sendIP(p *sim.Proc, proto uint8, dst IPAddr, l4 []byte) {
	if s.out == nil {
		panic(fmt.Sprintf("netstack: stack %s has no output", s.Name))
	}
	s.ipID++
	var dstMAC MAC // resolved by the link layer below us
	eth := EthHeader{Dst: dstMAC, Src: s.MAC, EtherType: EtherTypeIPv4}
	ip := IPv4Header{Protocol: proto, Src: s.IP, Dst: dst, ID: s.ipID,
		Length: uint16(IPv4HeaderLen + len(l4))}
	b := make([]byte, 0, EthHeaderLen+int(ip.Length))
	b = eth.Marshal(b)
	b = ip.Marshal(b)
	b = append(b, l4...)
	p.Sleep(costEthTx + costIPTx)
	s.out(p, b)
}

// Datagram is a received UDP message.
type Datagram struct {
	Src     IPAddr
	SrcPort uint16
	Payload []byte
}

// UDPSock is a bound UDP socket.
type UDPSock struct {
	stack *Stack
	port  uint16
	inbox *sim.Queue[Datagram]
}

// BindUDP binds a UDP socket on the given port.
func (s *Stack) BindUDP(port uint16) *UDPSock {
	if s.udp[port] != nil {
		panic(fmt.Sprintf("netstack: port %d already bound", port))
	}
	sock := &UDPSock{stack: s, port: port, inbox: sim.NewQueue[Datagram](s.e)}
	s.udp[port] = sock
	return sock
}

func (u *UDPSock) deliver(d Datagram) { u.inbox.Push(d) }

// SendTo transmits a datagram.
func (u *UDPSock) SendTo(p *sim.Proc, dst IPAddr, dstPort uint16, payload []byte) {
	p.Sleep(costSockOp + costUDPTx)
	udp := UDPHeader{SrcPort: u.port, DstPort: dstPort, Length: uint16(UDPHeaderLen + len(payload))}
	l4 := udp.Marshal(make([]byte, 0, UDPHeaderLen+len(payload)))
	l4 = append(l4, payload...)
	u.stack.sendIP(p, ProtoUDP, dst, l4)
}

// Recv returns the next datagram, pumping the stack while waiting.
func (u *UDPSock) Recv(p *sim.Proc) Datagram {
	p.Sleep(costSockOp)
	for {
		if d, ok := u.inbox.TryPop(); ok {
			return d
		}
		u.stack.Pump(p)
	}
}

// TryRecv returns a queued datagram without blocking, after processing any
// pending frames.
func (u *UDPSock) TryRecv(p *sim.Proc) (Datagram, bool) {
	u.stack.PumpReady(p)
	return u.inbox.TryPop()
}

// ---------------------------------------------------------------------------
// URPC frame link: the multikernel's loopback path (Table 4). Frames move
// between two stacks on different cores as URPC descriptor messages plus a
// shared buffer pool — no kernel crossings, no shared locks.

// linkSlots is the number of in-flight frames per direction.
const linkSlots = 16

// linkBufLines fits a 1500-byte frame.
const linkBufLines = 24

// FrameLink is one direction of a URPC loopback connection: a thin framing
// layer over a urpc.BulkChannel, which supplies the shared buffer pool, the
// descriptor ring and the line-granularity first-touch transfers. Receive
// prefetching is on — frames are read as sequential pool scans, the case the
// stride prefetcher exists for.
type FrameLink struct {
	bulk *urpc.BulkChannel
}

// NewFrameLink builds a frame channel from one core to another, with the
// buffer pool homed at the receiver (SKB placement advice).
func NewFrameLink(sys *cache.System, from, to topo.CoreID) *FrameLink {
	home := sys.Machine().Socket(to)
	return &FrameLink{
		bulk: urpc.NewBulk(sys, from, to, urpc.BulkOptions{
			Slots:     linkSlots,
			SlotLines: linkBufLines,
			Home:      int(home),
			Prefetch:  true,
		}),
	}
}

// Send writes the frame into the next pool buffer and sends its descriptor.
func (l *FrameLink) Send(p *sim.Proc, f Frame) {
	l.bulk.Send(p, f)
}

// Recv blocks until a frame arrives and reads it out of the pool.
func (l *FrameLink) Recv(p *sim.Proc) Frame {
	return Frame(l.bulk.Recv(p))
}

// TryRecv polls for a frame.
func (l *FrameLink) TryRecv(p *sim.Proc) (Frame, bool) {
	b, ok := l.bulk.TryRecv(p)
	if !ok {
		return nil, false
	}
	return Frame(b), true
}

// ConnectLoopback joins two stacks with a pair of frame links and returns a
// pump function per side that the owning procs must call to move frames.
// Each stack's output becomes a FrameLink send; received descriptors are
// injected on Pump.
func ConnectLoopback(a, b *Stack) (pumpA, pumpB func(p *sim.Proc) bool) {
	ab := NewFrameLink(a.sys, a.core, b.core)
	ba := NewFrameLink(b.sys, b.core, a.core)
	a.SetOutput(func(p *sim.Proc, f Frame) { ab.Send(p, f) })
	b.SetOutput(func(p *sim.Proc, f Frame) { ba.Send(p, f) })
	a.poller = linkPoller(a, ba)
	b.poller = linkPoller(b, ab)
	return a.PumpReady, b.PumpReady
}

// linkPoller moves frames from a link into a stack's inbox.
func linkPoller(s *Stack, link *FrameLink) func(p *sim.Proc) bool {
	return func(p *sim.Proc) bool {
		any := false
		for {
			f, ok := link.TryRecv(p)
			if !ok {
				return any
			}
			s.Inject(f)
			any = true
		}
	}
}

// ---------------------------------------------------------------------------
// Driver: the separate e1000 driver domain (paper §5.4), polling the NIC on
// its own core and relaying frames to/from an application stack over URPC.

// Driver runs a NIC on a dedicated core and bridges it to a Stack.
type Driver struct {
	nic   *NIC
	core  topo.CoreID
	toApp *FrameLink
	toNIC *FrameLink
	proc  *sim.Proc
}

// NewDriver starts the driver loop on the given core, bridging nic to the
// application stack app.
func NewDriver(e *sim.Engine, sys *cache.System, nic *NIC, core topo.CoreID, app *Stack) *Driver {
	d := &Driver{
		nic:   nic,
		core:  core,
		toApp: NewFrameLink(sys, core, app.core),
		toNIC: NewFrameLink(sys, app.core, core),
	}
	app.SetOutput(func(p *sim.Proc, f Frame) {
		d.toNIC.Send(p, f)
		e.Wake(d.proc)
	})
	app.poller = linkPoller(app, d.toApp)
	d.proc = e.Spawn(fmt.Sprintf("drv-%s", nic.Name), func(p *sim.Proc) {
		p.SetDaemon(true)
		d.loop(p)
	})
	nic.OnInterrupt(func() { e.Wake(d.proc) })
	return d
}

// AppPump returns a function the application proc may call to opportunistically
// move frames from the driver link into its stack; blocking socket operations
// do this automatically through the stack's poller.
func (d *Driver) AppPump(app *Stack) func(p *sim.Proc) bool {
	return app.PumpReady
}

func (d *Driver) loop(p *sim.Proc) {
	idle := 0
	for {
		progress := false
		if f := d.nic.Poll(p, d.core); f != nil {
			d.toApp.Send(p, f)
			progress = true
		}
		if f, ok := d.toNIC.TryRecv(p); ok {
			if err := d.nic.Transmit(p, d.core, f); err != nil {
				// Ring full: drop, as a real driver would under overload.
				_ = err
			}
			progress = true
		}
		if progress {
			idle = 0
			continue
		}
		idle++
		if idle < 30 {
			p.Sleep(150)
			continue
		}
		p.Park() // woken by the NIC interrupt or sender wakeups
		idle = 0
		p.Sleep(d.nic.sys.Machine().Costs.Trap)
	}
}
