// Package netstack implements the user-space network stack of the
// multikernel (paper §4.10, §5.4): lwIP-style protocol processing linked
// into application domains as a library, an e1000-style NIC device model
// with descriptor rings and DMA, URPC-based loopback links between stacks on
// different cores (Table 4), and a small TCP for request/response services.
//
// Header marshalling is real code over real bytes — checksums included — so
// the protocol path is exercised, while transport costs (DMA, cache-line
// copies, wire time) come from the simulation models.
package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers and header sizes.
const (
	EtherTypeIPv4 = 0x0800
	ProtoUDP      = 17
	ProtoTCP      = 6

	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
)

// Errors returned by packet parsing.
var (
	ErrTruncated   = errors.New("netstack: truncated packet")
	ErrBadChecksum = errors.New("netstack: bad IPv4 header checksum")
	ErrBadProto    = errors.New("netstack: unexpected protocol")
)

// MAC is an Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPAddr is an IPv4 address.
type IPAddr uint32

// IP4 builds an IPAddr from dotted quad components.
func IP4(a, b, c, d byte) IPAddr {
	return IPAddr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (ip IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// EthHeader is an Ethernet II frame header.
type EthHeader struct {
	Dst, Src  MAC
	EtherType uint16
}

// Marshal appends the header to b.
func (h *EthHeader) Marshal(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	return binary.BigEndian.AppendUint16(b, h.EtherType)
}

// ParseEth decodes an Ethernet header, returning it and the payload.
func ParseEth(b []byte) (EthHeader, []byte, error) {
	var h EthHeader
	if len(b) < EthHeaderLen {
		return h, nil, ErrTruncated
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, b[EthHeaderLen:], nil
}

// IPv4Header is a (options-free) IPv4 header.
type IPv4Header struct {
	TTL      uint8
	Protocol uint8
	Src, Dst IPAddr
	Length   uint16 // total length including header
	ID       uint16
}

// ipv4Checksum computes the ones-complement header checksum.
func ipv4Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// Marshal appends the header (with checksum) to b.
func (h *IPv4Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, 0x45, 0) // version/IHL, DSCP
	b = binary.BigEndian.AppendUint16(b, h.Length)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, 0) // flags/fragment
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	b = append(b, ttl, h.Protocol)
	b = binary.BigEndian.AppendUint16(b, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint32(b, uint32(h.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(h.Dst))
	ck := ipv4Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+10:start+12], ck)
	return b
}

// ParseIPv4 decodes and checksum-verifies an IPv4 header, returning it and
// the payload.
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, nil, ErrTruncated
	}
	if ipv4Checksum(b[:IPv4HeaderLen]) != 0 {
		return h, nil, ErrBadChecksum
	}
	h.Length = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Src = IPAddr(binary.BigEndian.Uint32(b[12:16]))
	h.Dst = IPAddr(binary.BigEndian.Uint32(b[16:20]))
	if int(h.Length) > len(b) {
		return h, nil, ErrTruncated
	}
	return h, b[IPv4HeaderLen:h.Length], nil
}

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
}

// Marshal appends the header to b (checksum omitted, as permitted for IPv4).
func (h *UDPHeader) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, h.Length)
	return binary.BigEndian.AppendUint16(b, 0)
}

// ParseUDP decodes a UDP header, returning it and the payload.
func ParseUDP(b []byte) (UDPHeader, []byte, error) {
	var h UDPHeader
	if len(b) < UDPHeaderLen {
		return h, nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return h, nil, ErrTruncated
	}
	return h, b[UDPHeaderLen:h.Length], nil
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
)

// TCPHeader is an options-free TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// Marshal appends the header to b.
func (h *TCPHeader) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, 5<<4, h.Flags) // data offset = 5 words
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = binary.BigEndian.AppendUint16(b, 0)    // checksum (offloaded)
	return binary.BigEndian.AppendUint16(b, 0) // urgent
}

// ParseTCP decodes a TCP header, returning it and the payload.
func ParseTCP(b []byte) (TCPHeader, []byte, error) {
	var h TCPHeader
	if len(b) < TCPHeaderLen {
		return h, nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return h, nil, ErrTruncated
	}
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	return h, b[off:], nil
}

// BuildUDPFrame assembles a complete Ethernet/IPv4/UDP frame.
func BuildUDPFrame(srcMAC, dstMAC MAC, src, dst IPAddr, srcPort, dstPort uint16, payload []byte) []byte {
	eth := EthHeader{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	ip := IPv4Header{
		Protocol: ProtoUDP,
		Src:      src, Dst: dst,
		Length: uint16(IPv4HeaderLen + UDPHeaderLen + len(payload)),
	}
	udp := UDPHeader{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UDPHeaderLen + len(payload))}
	b := make([]byte, 0, EthHeaderLen+int(ip.Length))
	b = eth.Marshal(b)
	b = ip.Marshal(b)
	b = udp.Marshal(b)
	return append(b, payload...)
}

// BuildTCPFrame assembles a complete Ethernet/IPv4/TCP frame.
func BuildTCPFrame(srcMAC, dstMAC MAC, src, dst IPAddr, tcp TCPHeader, payload []byte) []byte {
	eth := EthHeader{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	ip := IPv4Header{
		Protocol: ProtoTCP,
		Src:      src, Dst: dst,
		Length: uint16(IPv4HeaderLen + TCPHeaderLen + len(payload)),
	}
	b := make([]byte, 0, EthHeaderLen+int(ip.Length))
	b = eth.Marshal(b)
	b = ip.Marshal(b)
	b = tcp.Marshal(b)
	return append(b, payload...)
}
