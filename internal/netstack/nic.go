package netstack

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Frame is a raw Ethernet frame.
type Frame []byte

// Port is anything attachable to a wire end: a NIC or a load generator.
type Port interface {
	// Deliver hands a received frame to the port. It runs in engine context
	// and must not block.
	Deliver(f Frame)
}

// Wire is a full-duplex point-to-point Ethernet link with finite bandwidth
// and propagation delay. Transmissions in one direction serialize; the two
// directions are independent.
type Wire struct {
	e        *sim.Engine
	bpc      float64 // bytes per cycle per direction
	prop     sim.Time
	a, b     Port
	nextFree [2]sim.Time
	// Stats
	Bytes [2]uint64
}

// NewWire creates a link of the given gigabits per second on a machine
// running at clockGHz (bandwidth is expressed in the simulation's cycle
// domain).
func NewWire(e *sim.Engine, gbps, clockGHz float64) *Wire {
	return &Wire{
		e:    e,
		bpc:  gbps * 1e9 / 8 / (clockGHz * 1e9),
		prop: sim.Time(clockGHz * 1000), // ~1µs one way
	}
}

// Attach connects the two ports.
func (w *Wire) Attach(a, b Port) { w.a, w.b = a, b }

// transmit sends a frame from the given end, modelling serialization and
// propagation delay. Callable from engine context or procs.
func (w *Wire) transmit(fromA bool, f Frame) {
	dir := 0
	dst := w.b
	if !fromA {
		dir = 1
		dst = w.a
	}
	if dst == nil {
		return
	}
	now := w.e.Now()
	start := now
	if w.nextFree[dir] > start {
		start = w.nextFree[dir]
	}
	tx := sim.Time(float64(len(f)) / w.bpc)
	w.nextFree[dir] = start + tx
	w.Bytes[dir] += uint64(len(f))
	w.e.After(start-now+tx+w.prop, func() { dst.Deliver(f) })
}

// Transmit sends a frame from the given end of the wire. External load
// generators (which model machines outside the simulated host) use this
// directly; NICs use it internally.
func (w *Wire) Transmit(fromA bool, f Frame) { w.transmit(fromA, f) }

// Utilization returns the fraction of one direction's bandwidth used over
// elapsed cycles.
func (w *Wire) Utilization(fromA bool, elapsed sim.Time) float64 {
	dir := 0
	if !fromA {
		dir = 1
	}
	if elapsed == 0 {
		return 0
	}
	return float64(w.Bytes[dir]) / (w.bpc * float64(elapsed))
}

// NIC device parameters.
const (
	nicRings    = 32 // descriptors per ring
	nicBufLines = 24 // 1536 bytes per buffer
	nicDMALat   = 900
	nicDoorbell = 250 // PIO write cost at the driver core
)

// NICStats counts device activity.
type NICStats struct {
	RxFrames, TxFrames uint64
	RxDropped          uint64
	Interrupts         uint64
}

// NIC is an e1000-style device: receive and transmit descriptor rings plus
// packet buffers in simulated host memory, DMA, and interrupt (or polled)
// receive. The driver side runs on a core and pays coherent-memory costs;
// the device side runs in engine time and pays DMA latency and wire time.
type NIC struct {
	Name   string
	e      *sim.Engine
	sys    *cache.System
	socket topo.SocketID

	wire *Wire
	isA  bool

	rxDescs memory.Region
	rxBufs  memory.Region
	txDescs memory.Region
	txBufs  memory.Region

	rxDev, rxDrv uint64 // device produce / driver consume indices
	txDrv, txDev uint64
	rxSizes      [nicRings]int
	txSizes      [nicRings]int
	txFrames     [nicRings]Frame

	intr  func() // driver-installed interrupt handler (engine context)
	stats NICStats
}

// NewNIC creates a NIC attached to the machine's I/O socket, with its rings
// and buffers in host memory homed there.
func NewNIC(e *sim.Engine, sys *cache.System, name string, wire *Wire, isA bool) *NIC {
	mem := sys.Memory()
	socket := sys.Machine().IOSocket
	n := &NIC{
		Name:    name,
		e:       e,
		sys:     sys,
		socket:  socket,
		wire:    wire,
		isA:     isA,
		rxDescs: mem.AllocLines(nicRings, socket),
		rxBufs:  mem.AllocLines(nicRings*nicBufLines, socket),
		txDescs: mem.AllocLines(nicRings, socket),
		txBufs:  mem.AllocLines(nicRings*nicBufLines, socket),
	}
	return n
}

// Stats returns a copy of the device counters.
func (n *NIC) Stats() NICStats { return n.stats }

// OnInterrupt installs the receive-interrupt handler (typically waking the
// driver proc). A nil handler leaves the device in polled mode.
func (n *NIC) OnInterrupt(fn func()) { n.intr = fn }

// Deliver implements Port: the device DMA-writes the frame into the next
// receive buffer, publishes the descriptor and raises an interrupt.
func (n *NIC) Deliver(f Frame) {
	if n.rxDev-n.rxDrv >= nicRings {
		n.stats.RxDropped++
		return
	}
	slot := n.rxDev % nicRings
	n.e.After(nicDMALat, func() {
		base := n.rxBufs.LineAt(int(slot) * nicBufLines)
		n.sys.DMAWrite(base, f, n.socket)
		n.rxSizes[slot] = len(f)
		// Publish the descriptor: DMA write to the descriptor line.
		n.sys.DMAWrite(n.rxDescs.LineAt(int(slot)), []byte{1}, n.socket)
		n.rxDev++
		n.stats.RxFrames++
		if n.intr != nil {
			n.stats.Interrupts++
			n.intr()
		}
	})
}

// Poll checks for a received frame from the driver core, paying the
// descriptor and buffer reads through the cache. It returns nil when the
// ring is empty.
func (n *NIC) Poll(p *sim.Proc, core topo.CoreID) Frame {
	if n.rxDrv >= n.rxDev {
		// Check the descriptor anyway, as a real driver would.
		n.sys.Load(p, core, n.rxDescs.LineAt(int(n.rxDrv%nicRings)))
		return nil
	}
	slot := n.rxDrv % nicRings
	n.sys.Load(p, core, n.rxDescs.LineAt(int(slot)))
	size := n.rxSizes[slot]
	base := n.rxBufs.LineAt(int(slot) * nicBufLines)
	for i := 0; i*memory.LineSize < size; i++ {
		n.sys.LoadLine(p, core, base+memory.Addr(i*memory.LineSize))
	}
	f := Frame(n.sys.Memory().LoadBytes(base, size))
	n.rxDrv++
	return f
}

// Transmit queues a frame for transmission from the driver core: the frame
// is written into a transmit buffer, its descriptor published, and the
// doorbell rung; the device then DMA-reads it and puts it on the wire.
func (n *NIC) Transmit(p *sim.Proc, core topo.CoreID, f Frame) error {
	if n.txDrv-n.txDev >= nicRings {
		return fmt.Errorf("netstack: %s transmit ring full", n.Name)
	}
	slot := n.txDrv % nicRings
	base := n.txBufs.LineAt(int(slot) * nicBufLines)
	var zero [memory.WordsPerLine]uint64
	for i := 0; i*memory.LineSize < len(f); i++ {
		n.sys.StoreLine(p, core, base+memory.Addr(i*memory.LineSize), zero)
	}
	n.sys.Memory().StoreBytes(base, f)
	n.txSizes[slot] = len(f)
	n.txFrames[slot] = append(Frame(nil), f...)
	n.sys.Store(p, core, n.txDescs.LineAt(int(slot)), slot+1)
	n.txDrv++
	p.Sleep(nicDoorbell)
	n.e.After(nicDMALat, n.deviceTx)
	return nil
}

// deviceTx drains the transmit ring onto the wire (engine context).
func (n *NIC) deviceTx() {
	for n.txDev < n.txDrv {
		slot := n.txDev % nicRings
		f := n.txFrames[slot]
		n.txFrames[slot] = nil
		n.txDev++
		n.stats.TxFrames++
		n.wire.transmit(n.isA, f)
	}
}
