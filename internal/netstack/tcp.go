package netstack

import (
	"fmt"

	"multikernel/internal/sim"
)

// MSS is the maximum TCP segment payload.
const MSS = 1460

// TCP connection states (simplified: the simulated wire is lossless and
// in-order, so no retransmission machinery is modelled).
type tcpState int

const (
	tcpSynSent tcpState = iota
	tcpEstablished
	tcpClosed
)

// TCPListener accepts incoming connections on a port.
type TCPListener struct {
	stack   *Stack
	port    uint16
	backlog *sim.Queue[*TCPConn]
}

// ListenTCP binds a listening socket.
func (s *Stack) ListenTCP(port uint16) *TCPListener {
	if s.tcp[port] != nil {
		panic(fmt.Sprintf("netstack: tcp port %d already bound", port))
	}
	l := &TCPListener{stack: s, port: port, backlog: sim.NewQueue[*TCPConn](s.e)}
	s.tcp[port] = l
	return l
}

// Accept returns the next established connection, pumping the stack while
// waiting.
func (l *TCPListener) Accept(p *sim.Proc) *TCPConn {
	p.Sleep(costSockOp)
	for {
		if c, ok := l.backlog.TryPop(); ok {
			return c
		}
		l.stack.Pump(p)
	}
}

// TryAccept returns an established connection if one is pending.
func (l *TCPListener) TryAccept(p *sim.Proc) (*TCPConn, bool) {
	l.stack.PumpReady(p)
	return l.backlog.TryPop()
}

// TCPConn is one end of an established connection.
type TCPConn struct {
	stack      *Stack
	key        connKey
	state      tcpState
	seq, ack   uint32
	inbox      *sim.Queue[[]byte]
	estab      *sim.Future[bool]
	peerClosed bool
	listener   *TCPListener // server side: where to queue on establish
}

// Remote returns the peer address and port.
func (c *TCPConn) Remote() (IPAddr, uint16) { return c.key.remote, c.key.remotePort }

func (c *TCPConn) sendSeg(p *sim.Proc, flags uint8, payload []byte) {
	p.Sleep(costTCPTx)
	h := TCPHeader{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     c.seq,
		Ack:     c.ack,
		Flags:   flags,
		Window:  0xffff,
	}
	l4 := h.Marshal(make([]byte, 0, TCPHeaderLen+len(payload)))
	l4 = append(l4, payload...)
	c.stack.sendIP(p, ProtoTCP, c.key.remote, l4)
	c.seq += uint32(len(payload))
	if flags&(TCPSyn|TCPFin) != 0 {
		c.seq++
	}
}

// Dial opens a connection to dst:port, blocking (and pumping the stack)
// until the handshake completes.
func (s *Stack) Dial(p *sim.Proc, dst IPAddr, port uint16) *TCPConn {
	s.nextEph++
	c := &TCPConn{
		stack: s,
		key:   connKey{localPort: s.nextEph, remotePort: port, remote: dst},
		state: tcpSynSent,
		seq:   uint32(s.nextEph) * 7919,
		inbox: sim.NewQueue[[]byte](s.e),
		estab: sim.NewFuture[bool](s.e),
	}
	s.conns[c.key] = c
	c.sendSeg(p, TCPSyn, nil)
	for !c.estab.Done() {
		s.Pump(p)
	}
	return c
}

// Send transmits data, segmenting at the MSS.
func (c *TCPConn) Send(p *sim.Proc, data []byte) {
	p.Sleep(costSockOp)
	for len(data) > 0 {
		n := len(data)
		if n > MSS {
			n = MSS
		}
		c.sendSeg(p, TCPAck|TCPPsh, data[:n])
		data = data[n:]
	}
}

// Recv returns the next received segment payload; ok is false once the peer
// has closed and all data is drained.
func (c *TCPConn) Recv(p *sim.Proc) ([]byte, bool) {
	p.Sleep(costSockOp)
	for {
		if b, ok := c.inbox.TryPop(); ok {
			return b, true
		}
		if c.peerClosed {
			return nil, false
		}
		c.stack.Pump(p)
	}
}

// RecvTimeout is Recv with a deadline: it returns ok=false either when the
// peer has closed or when no data arrives within d cycles (lost frames under
// overload would otherwise wedge the caller forever).
func (c *TCPConn) RecvTimeout(p *sim.Proc, d sim.Time) ([]byte, bool) {
	p.Sleep(costSockOp)
	deadline := p.Now() + d
	for {
		if b, ok := c.inbox.TryPop(); ok {
			return b, true
		}
		if c.peerClosed || p.Now() >= deadline {
			return nil, false
		}
		if !c.stack.PumpReady(p) {
			p.Sleep(stackPollGap)
		}
	}
}

// RecvN collects exactly n bytes (concatenating segments); it returns false
// if the peer closes first.
func (c *TCPConn) RecvN(p *sim.Proc, n int) ([]byte, bool) {
	var buf []byte
	for len(buf) < n {
		b, ok := c.Recv(p)
		if !ok {
			return buf, false
		}
		buf = append(buf, b...)
	}
	return buf, true
}

// Close sends a FIN and marks the connection closed. Once both sides have
// closed, the connection is removed from the stack's demux table.
func (c *TCPConn) Close(p *sim.Proc) {
	if c.state == tcpClosed {
		return
	}
	c.sendSeg(p, TCPFin|TCPAck, nil)
	c.state = tcpClosed
	if c.peerClosed {
		delete(c.stack.conns, c.key)
	}
}

// handleTCP is the stack's TCP demultiplexer.
func (s *Stack) handleTCP(p *sim.Proc, src IPAddr, h TCPHeader, payload []byte) {
	key := connKey{localPort: h.DstPort, remotePort: h.SrcPort, remote: src}
	if c, ok := s.conns[key]; ok {
		c.handleSeg(p, h, payload)
		return
	}
	// New connection?
	if l, ok := s.tcp[h.DstPort]; ok && h.Flags&TCPSyn != 0 && h.Flags&TCPAck == 0 {
		c := &TCPConn{
			stack:    s,
			key:      key,
			state:    tcpEstablished, // server considers it live on 3rd ack; simplified
			seq:      uint32(h.DstPort) * 104729,
			ack:      h.Seq + 1,
			inbox:    sim.NewQueue[[]byte](s.e),
			estab:    sim.NewFuture[bool](s.e),
			listener: l,
		}
		s.conns[key] = c
		c.sendSeg(p, TCPSyn|TCPAck, nil)
		return
	}
	// Stray segment: RST per spec; dropped silently here.
}

func (c *TCPConn) handleSeg(p *sim.Proc, h TCPHeader, payload []byte) {
	switch {
	case h.Flags&TCPSyn != 0 && h.Flags&TCPAck != 0 && c.state == tcpSynSent:
		// Client side: handshake complete.
		c.ack = h.Seq + 1
		c.state = tcpEstablished
		c.sendSeg(p, TCPAck, nil)
		c.estab.Complete(true)
		return
	case h.Flags&TCPAck != 0 && c.listener != nil:
		// Server side: the third handshake ack; hand to the acceptor once.
		l := c.listener
		c.listener = nil
		l.backlog.Push(c)
	}
	if len(payload) > 0 {
		c.ack = h.Seq + uint32(len(payload))
		c.inbox.Push(append([]byte(nil), payload...))
	}
	if h.Flags&TCPFin != 0 {
		c.ack = h.Seq + 1
		c.peerClosed = true
		if c.state != tcpClosed {
			c.sendSeg(p, TCPAck, nil)
		} else {
			delete(c.stack.conns, c.key)
		}
	}
}
