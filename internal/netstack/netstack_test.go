package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func newSys(m *topo.Machine) (*sim.Engine, *cache.System) {
	e := sim.NewEngine(1)
	return e, cache.New(e, m, memory.New(m), interconnect.New(m))
}

func TestUDPFrameRoundTrip(t *testing.T) {
	src, dst := IP4(10, 0, 0, 1), IP4(10, 0, 0, 2)
	payload := []byte("hello multikernel")
	f := BuildUDPFrame(MAC{1}, MAC{2}, src, dst, 1234, 5678, payload)
	eth, ipb, err := ParseEth(f)
	if err != nil || eth.EtherType != EtherTypeIPv4 {
		t.Fatalf("eth: %v %x", err, eth.EtherType)
	}
	ip, body, err := ParseIPv4(ipb)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != src || ip.Dst != dst || ip.Protocol != ProtoUDP {
		t.Fatalf("ip: %+v", ip)
	}
	udp, got, err := ParseUDP(body)
	if err != nil {
		t.Fatal(err)
	}
	if udp.SrcPort != 1234 || udp.DstPort != 5678 {
		t.Fatalf("udp: %+v", udp)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	f := BuildUDPFrame(MAC{1}, MAC{2}, IP4(1, 2, 3, 4), IP4(5, 6, 7, 8), 1, 2, []byte("x"))
	_, ipb, _ := ParseEth(f)
	corrupted := append([]byte(nil), ipb...)
	corrupted[8] ^= 0xff // flip the TTL
	if _, _, err := ParseIPv4(corrupted); err != ErrBadChecksum {
		t.Fatalf("err=%v, want bad checksum", err)
	}
}

func TestTCPHeaderRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 80, DstPort: 40000, Seq: 12345, Ack: 999, Flags: TCPSyn | TCPAck, Window: 1024}
	b := h.Marshal(nil)
	got, payload, err := ParseTCP(append(b, 'd', 'a', 't', 'a'))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
	if string(payload) != "data" {
		t.Fatalf("payload %q", payload)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, src, dst uint32, payload []byte) bool {
		if len(payload) > 1400 {
			return true
		}
		fr := BuildUDPFrame(MAC{9}, MAC{8}, IPAddr(src), IPAddr(dst), srcPort, dstPort, payload)
		_, ipb, err := ParseEth(fr)
		if err != nil {
			return false
		}
		ip, body, err := ParseIPv4(ipb)
		if err != nil || ip.Src != IPAddr(src) || ip.Dst != IPAddr(dst) {
			return false
		}
		udp, got, err := ParseUDP(body)
		if err != nil || udp.SrcPort != srcPort || udp.DstPort != dstPort {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedPacketsRejected(t *testing.T) {
	if _, _, err := ParseEth([]byte{1, 2, 3}); err != ErrTruncated {
		t.Fatal("short eth accepted")
	}
	if _, _, err := ParseIPv4(make([]byte, 10)); err != ErrTruncated {
		t.Fatal("short ip accepted")
	}
	if _, _, err := ParseUDP(make([]byte, 4)); err != ErrTruncated {
		t.Fatal("short udp accepted")
	}
	if _, _, err := ParseTCP(make([]byte, 10)); err != ErrTruncated {
		t.Fatal("short tcp accepted")
	}
}

func TestWireSerializesAndDelays(t *testing.T) {
	m := topo.Intel2x4()
	e, _ := newSys(m)
	w := NewWire(e, 1, m.ClockGHz) // 1 Gb/s
	var got []Frame
	var at []sim.Time
	w.Attach(portFunc(func(f Frame) { got = append(got, f); at = append(at, e.Now()) }), portFunc(func(f Frame) {}))
	// Send two 1250-byte frames from B to A: at 1Gb/s and 2.66GHz,
	// 1250 bytes is 10µs*2.66e9... = 1250/0.047 ≈ 26.6k cycles each.
	e.Spawn("tx", func(p *sim.Proc) {
		w.transmit(false, make(Frame, 1250))
		w.transmit(false, make(Frame, 1250))
	})
	e.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d frames", len(got))
	}
	gap := at[1] - at[0]
	txTime := sim.Time(1250.0 / (1e9 / 8 / (m.ClockGHz * 1e9)))
	if gap < txTime*9/10 || gap > txTime*11/10 {
		t.Fatalf("inter-frame gap %d, want ~%d (serialization)", gap, txTime)
	}
}

// portFunc adapts a function to the Port interface.
type portFunc func(f Frame)

func (fn portFunc) Deliver(f Frame) { fn(f) }

func TestNICLoopDelivery(t *testing.T) {
	m := topo.Intel2x4()
	e, sys := newSys(m)
	w := NewWire(e, 1, m.ClockGHz)
	nicA := NewNIC(e, sys, "eth0", w, true)
	nicB := NewNIC(e, sys, "eth1", w, false)
	w.Attach(nicA, nicB)
	frame := BuildUDPFrame(MAC{1}, MAC{2}, IP4(10, 0, 0, 1), IP4(10, 0, 0, 2), 1, 2, []byte("ping"))
	var got Frame
	e.Spawn("driverB", func(p *sim.Proc) {
		for got == nil {
			if f := nicB.Poll(p, 4); f != nil {
				got = f
			} else {
				p.Sleep(500)
			}
		}
	})
	e.Spawn("driverA", func(p *sim.Proc) {
		if err := nicA.Transmit(p, 0, frame); err != nil {
			t.Error(err)
		}
	})
	e.RunUntil(10_000_000)
	if !bytes.Equal(got, frame) {
		t.Fatalf("frame corrupted in transit (%d bytes)", len(got))
	}
	if nicA.Stats().TxFrames != 1 || nicB.Stats().RxFrames != 1 {
		t.Fatal("NIC counters wrong")
	}
	e.Close()
}

func TestUDPOverURPCLoopback(t *testing.T) {
	m := topo.AMD2x2()
	e, sys := newSys(m)
	a := NewStack(e, sys, "src", 0, IP4(127, 0, 0, 1))
	b := NewStack(e, sys, "sink", 2, IP4(127, 0, 0, 2))
	pumpA, pumpB := ConnectLoopback(a, b)
	_ = pumpA
	sockA := a.BindUDP(1000)
	sockB := b.BindUDP(2000)
	const n = 50
	var got int
	e.Spawn("sink", func(p *sim.Proc) {
		for got < n {
			if d, ok := sockB.TryRecv(p); ok {
				if len(d.Payload) != 1000 {
					t.Errorf("payload %d bytes", len(d.Payload))
				}
				got++
				continue
			}
			if !pumpB(p) {
				p.Sleep(300)
			}
		}
	})
	e.Spawn("src", func(p *sim.Proc) {
		payload := bytes.Repeat([]byte{7}, 1000)
		for i := 0; i < n; i++ {
			sockA.SendTo(p, b.IP, 2000, payload)
		}
	})
	e.RunUntil(50_000_000)
	if got != n {
		t.Fatalf("sink received %d/%d", got, n)
	}
	e.Close()
}

func TestUDPEchoThroughNICAndDriver(t *testing.T) {
	m := topo.Intel2x4()
	e, sys := newSys(m)
	w := NewWire(e, 1, m.ClockGHz)
	nic := NewNIC(e, sys, "e1000", w, true)

	// Load generator on the far end of the wire.
	var echoed int
	gen := portFunc(func(f Frame) { echoed++ })
	w.Attach(nic, gen)

	app := NewStack(e, sys, "echo", 3, IP4(192, 168, 1, 1))
	drv := NewDriver(e, sys, nic, 2, app)
	pump := drv.AppPump(app)
	sock := app.BindUDP(7)

	e.Spawn("echo-app", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			if d, ok := sock.TryRecv(p); ok {
				sock.SendTo(p, d.Src, d.SrcPort, d.Payload)
				continue
			}
			if !pump(p) {
				p.Sleep(400)
			}
		}
	})
	// Inject requests from the generator side.
	clientMAC := MAC{0xaa}
	for i := 0; i < 10; i++ {
		f := BuildUDPFrame(clientMAC, app.MAC, IP4(192, 168, 1, 99), app.IP, 5555, 7, bytes.Repeat([]byte{1}, 64))
		i := i
		e.After(sim.Time(100_000*(i+1)), func() { w.transmit(false, f) })
	}
	e.RunUntil(60_000_000)
	if echoed != 10 {
		t.Fatalf("echoed %d/10 packets", echoed)
	}
	e.Close()
}

func TestTCPConnectSendClose(t *testing.T) {
	m := topo.AMD2x2()
	e, sys := newSys(m)
	server := NewStack(e, sys, "server", 1, IP4(10, 0, 0, 1))
	client := NewStack(e, sys, "client", 3, IP4(10, 0, 0, 2))
	pumpS, pumpC := ConnectLoopback(server, client)
	_ = pumpC
	lis := server.ListenTCP(80)

	var serverGot []byte
	var clientGot []byte
	e.Spawn("server", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			pumpS(p)
			if c, ok := lis.TryAccept(p); ok {
				req, ok := c.Recv(p)
				if !ok {
					t.Error("no request")
					return
				}
				serverGot = req
				c.Send(p, bytes.Repeat([]byte{0x42}, 4100)) // multi-segment response
				c.Close(p)
				return
			}
			p.Sleep(400)
		}
	})
	e.Spawn("client", func(p *sim.Proc) {
		conn := client.Dial(p, server.IP, 80)
		conn.Send(p, []byte("GET /index.html"))
		for {
			b, ok := conn.Recv(p)
			if !ok {
				break
			}
			clientGot = append(clientGot, b...)
		}
		conn.Close(p)
	})
	e.RunUntil(80_000_000)
	if string(serverGot) != "GET /index.html" {
		t.Fatalf("server got %q", serverGot)
	}
	if len(clientGot) != 4100 {
		t.Fatalf("client got %d bytes, want 4100", len(clientGot))
	}
	e.Close()
}

func TestLoopbackPutsTrafficOnFabric(t *testing.T) {
	m := topo.AMD2x2()
	e, sys := newSys(m)
	a := NewStack(e, sys, "a", 0, IP4(127, 0, 0, 1))
	b := NewStack(e, sys, "b", 2, IP4(127, 0, 0, 2))
	_, pumpB := ConnectLoopback(a, b)
	sa := a.BindUDP(1)
	sb := b.BindUDP(2)
	got := 0
	e.Spawn("sink", func(p *sim.Proc) {
		for got < 5 {
			if _, ok := sb.TryRecv(p); ok {
				got++
			} else if !pumpB(p) {
				p.Sleep(300)
			}
		}
	})
	e.Spawn("src", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			sa.SendTo(p, b.IP, 2, bytes.Repeat([]byte{9}, 1000))
		}
	})
	e.RunUntil(20_000_000)
	if got != 5 {
		t.Fatalf("got %d", got)
	}
	if fwd := sys.Fabric().PathDwords(0, 1); fwd == 0 {
		t.Fatal("no payload traffic on fabric")
	}
	e.Close()
}

// Property: arbitrary request/response byte strings survive a TCP
// connection over the loopback link intact, for any sizes up to several
// segments.
func TestTCPTransferProperty(t *testing.T) {
	f := func(reqSeed, respSeed uint32, reqLen, respLen uint16) bool {
		rl := int(reqLen)%2000 + 1
		pl := int(respLen)%6000 + 1
		req := make([]byte, rl)
		for i := range req {
			req[i] = byte(reqSeed >> (uint(i) % 24))
		}
		resp := make([]byte, pl)
		for i := range resp {
			resp[i] = byte(respSeed >> (uint(i) % 24))
		}

		m := topo.AMD2x2()
		e, sys := newSys(m)
		defer e.Close()
		server := NewStack(e, sys, "s", 1, IP4(10, 0, 0, 1))
		client := NewStack(e, sys, "c", 3, IP4(10, 0, 0, 2))
		ConnectLoopback(server, client)
		lis := server.ListenTCP(80)

		var gotReq, gotResp []byte
		e.Spawn("server", func(p *sim.Proc) {
			p.SetDaemon(true)
			conn := lis.Accept(p)
			b, ok := conn.RecvN(p, rl)
			if !ok {
				return
			}
			gotReq = b
			conn.Send(p, resp)
			conn.Close(p)
		})
		e.Spawn("client", func(p *sim.Proc) {
			conn := client.Dial(p, server.IP, 80)
			conn.Send(p, req)
			for {
				b, ok := conn.Recv(p)
				if !ok {
					break
				}
				gotResp = append(gotResp, b...)
			}
			conn.Close(p)
		})
		e.RunUntil(200_000_000)
		return bytes.Equal(gotReq, req) && bytes.Equal(gotResp, resp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
