// Package apps contains the application workloads of the paper's
// evaluation: the shared-memory-versus-messages update microbenchmark
// (Figure 3), skeletons of the NAS OpenMP and SPLASH-2 compute benchmarks
// (Figure 9), a UDP echo service, a web server and a relational-ish
// key-value store (§5.4).
package apps

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// SharedUpdateResult is one point of the Figure 3 experiment.
type SharedUpdateResult struct {
	ClientLatency stats.Sample // per-operation latency seen by clients
	ServerCost    stats.Sample // per-operation cost at the server (MSG only)
}

// SHMUpdate runs the shared-memory side of Figure 3: nClients threads pinned
// to distinct cores directly update the same `lines` cache lines (without
// locking) and the latency of each update is recorded. The cache-coherence
// model serializes the contended lines, reproducing the linear degradation.
func SHMUpdate(e *sim.Engine, sys *cache.System, nClients, lines, iters int) *SharedUpdateResult {
	res := &SharedUpdateResult{}
	buf := sys.Memory().AllocLines(lines, 0)
	done := sim.NewWaitGroup(e)
	done.Add(nClients)
	for c := 0; c < nClients; c++ {
		core := topo.CoreID(c)
		e.Spawn(fmt.Sprintf("shm%d", c), func(p *sim.Proc) {
			defer done.Done()
			p.Sleep(e.RNG().Time(200)) // stagger thread start-up
			for it := 0; it < iters; it++ {
				start := p.Now()
				// All threads sweep the same lines in the same order, as the
				// paper's microbenchmark does.
				for l := 0; l < lines; l++ {
					sys.Store(p, core, buf.LineAt(l), uint64(it))
				}
				res.ClientLatency.Add(float64(p.Now() - start))
			}
		})
	}
	e.Run()
	return res
}

// MSGUpdate runs the message-passing side of Figure 3: nClients issue
// synchronous lightweight RPCs (one cache-line request) to a single server
// core which performs the `lines`-line update on its local replica and
// replies. Requests queue at the server, so client latency grows with client
// count while the server-side cost per operation stays flat.
func MSGUpdate(e *sim.Engine, sys *cache.System, nClients, lines, iters int) *SharedUpdateResult {
	res := &SharedUpdateResult{}
	serverCore := topo.CoreID(0)
	buf := sys.Memory().AllocLines(lines, 0)

	type rpc struct {
		req  *urpc.Channel
		resp *urpc.Channel
	}
	chans := make([]rpc, nClients)
	for c := 0; c < nClients; c++ {
		client := topo.CoreID(c + 1)
		chans[c] = rpc{
			req:  urpc.New(sys, client, serverCore, urpc.Options{Slots: 4, Home: int(sys.Machine().Socket(serverCore))}),
			resp: urpc.New(sys, serverCore, client, urpc.Options{Slots: 4, Home: int(sys.Machine().Socket(client))}),
		}
	}

	total := nClients * iters
	e.Spawn("server", func(p *sim.Proc) {
		handled := 0
		for handled < total {
			progress := false
			for i := range chans {
				start := p.Now()
				msg, ok := chans[i].req.TryRecv(p)
				if !ok {
					continue
				}
				progress = true
				handled++
				// Apply the update to the server-local replica: all hits.
				for l := 0; l < lines; l++ {
					sys.Store(p, serverCore, buf.LineAt(l), msg[0])
				}
				chans[i].resp.Send(p, msg)
				// Per-operation cost at the server: receive + update + reply
				// (the paper's "Server" curve, which excludes queuing delay).
				res.ServerCost.Add(float64(p.Now() - start))
			}
			if !progress {
				p.Sleep(30)
			}
		}
	})
	done := sim.NewWaitGroup(e)
	done.Add(nClients)
	for c := 0; c < nClients; c++ {
		ch := chans[c]
		e.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			defer done.Done()
			for it := 0; it < iters; it++ {
				start := p.Now()
				ch.req.Send(p, urpc.Message{uint64(it)})
				ch.resp.Recv(p)
				res.ClientLatency.Add(float64(p.Now() - start))
			}
		})
	}
	e.Run()
	return res
}

// line size sanity: requests fit one cache line by construction.
var _ = memory.LineSize
