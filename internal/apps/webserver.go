package apps

import (
	"fmt"
	"strconv"
	"strings"

	"multikernel/internal/netstack"
	"multikernel/internal/sim"
)

// HTTP processing costs in cycles, calibrated to era web servers: lighttpd
// in 2008 spent on the order of 100µs of CPU per request (8924 req/s on a
// 2.8GHz core); the user-space Barrelfish pipeline halves that by avoiding
// kernel crossings (§5.4).
const (
	httpParseCost    = 4_000   // request line + header parsing, routing
	httpBuildCost    = 4_000   // response formatting
	connAcceptCost   = 100_000 // accept, socket/fd setup, event registration
	connTeardownCost = 25_000  // close, state teardown
)

// StaticPage is the 4.1kB page of §5.4's static-content experiment.
func StaticPage() []byte {
	var b strings.Builder
	b.WriteString("<html><head><title>barrelfish</title></head><body>\n")
	for b.Len() < 4100 {
		b.WriteString("<p>the multikernel treats the machine as a network of cores</p>\n")
	}
	return []byte(b.String()[:4100])
}

// WebServer serves static content, and optionally database-backed queries,
// over a netstack TCP listener. One instance runs on one core, as in the
// paper's placement experiment.
type WebServer struct {
	Stack *netstack.Stack
	Page  []byte
	DB    *KVClient // nil for static-only serving

	Requests uint64
	Errors   uint64
}

// Serve runs the accept loop forever on the caller's proc (mark it daemon).
func (w *WebServer) Serve(p *sim.Proc) {
	lis := w.Stack.ListenTCP(80)
	for {
		conn, ok := lis.TryAccept(p)
		if !ok {
			p.Sleep(300)
			continue
		}
		p.Sleep(connAcceptCost)
		w.handle(p, conn)
	}
}

// readTimeout bounds how long the server waits for a request on an accepted
// connection; under overload the client's request frame may have been
// dropped, and a serial server must not wedge on it.
const readTimeout = 400_000

// handle serves requests on one connection until the peer closes.
func (w *WebServer) handle(p *sim.Proc, conn *netstack.TCPConn) {
	for {
		req, ok := conn.RecvTimeout(p, readTimeout)
		if !ok {
			conn.Close(p)
			return
		}
		p.Sleep(httpParseCost)
		path := parseRequestPath(string(req))
		var body []byte
		status := "200 OK"
		switch {
		case path == "/index.html" || path == "/":
			body = w.Page
		case strings.HasPrefix(path, "/db/") && w.DB != nil:
			key, err := strconv.ParseUint(path[len("/db/"):], 10, 64)
			if err != nil {
				status, body = "400 Bad Request", []byte("bad key")
				w.Errors++
				break
			}
			v, found, err := w.DB.Select(p, key)
			if err != nil {
				status, body = "503 Service Unavailable", []byte("db down")
				w.Errors++
				break
			}
			if !found {
				status, body = "404 Not Found", []byte("no row")
				w.Errors++
				break
			}
			body = []byte(fmt.Sprintf("{\"key\":%d,\"value\":%d}", key, v))
		case strings.HasPrefix(path, "/range/") && w.DB != nil:
			lo, hi, ok := parseRangeSpec(path[len("/range/"):])
			if !ok {
				status, body = "400 Bad Request", []byte("bad range")
				w.Errors++
				break
			}
			// Row values arrive zero-copy over the client's bulk channel.
			vals, err := w.DB.SelectRange(p, lo, hi)
			if err != nil {
				status, body = "503 Service Unavailable", []byte("db down")
				w.Errors++
				break
			}
			var sum uint64
			for _, v := range vals {
				sum += v
			}
			body = []byte(fmt.Sprintf("{\"count\":%d,\"sum\":%d}", len(vals), sum))
		default:
			status, body = "404 Not Found", []byte("not found")
			w.Errors++
		}
		p.Sleep(httpBuildCost)
		resp := fmt.Sprintf("HTTP/1.0 %s\r\nContent-Length: %d\r\n\r\n", status, len(body))
		w.Requests++
		conn.Send(p, append([]byte(resp), body...))
		conn.Close(p)
		p.Sleep(connTeardownCost)
		return
	}
}

// parseRangeSpec parses the "<lo>-<hi>" tail of a /range/ request.
func parseRangeSpec(s string) (lo, hi uint64, ok bool) {
	i := strings.IndexByte(s, '-')
	if i < 0 {
		return 0, 0, false
	}
	lo, err1 := strconv.ParseUint(s[:i], 10, 64)
	hi, err2 := strconv.ParseUint(s[i+1:], 10, 64)
	return lo, hi, err1 == nil && err2 == nil && lo <= hi
}

// parseRequestPath extracts the path of a "GET <path> HTTP/1.0" request.
func parseRequestPath(req string) string {
	parts := strings.Fields(req)
	if len(parts) < 2 || parts[0] != "GET" {
		return ""
	}
	return parts[1]
}

// BuildRequest formats a minimal HTTP GET.
func BuildRequest(path string) []byte {
	return []byte("GET " + path + " HTTP/1.0\r\n\r\n")
}

// ParseResponse splits an HTTP response into status line and body; ok
// reports a 200.
func ParseResponse(b []byte) (status string, body []byte, ok bool) {
	s := string(b)
	i := strings.Index(s, "\r\n\r\n")
	if i < 0 {
		return "", nil, false
	}
	head := s[:i]
	lines := strings.Split(head, "\r\n")
	status = lines[0]
	return status, b[i+4:], strings.Contains(status, "200")
}
