package apps

import (
	"multikernel/internal/netstack"
	"multikernel/internal/sim"
)

// This file models the external load-generating machines of §5.4 (the
// httperf client cluster and the ipbench UDP generators). They sit on the
// far end of the simulated Ethernet wire and cost the system under test
// nothing: only the frames they emit matter.

// UDPEchoGen is an open-loop UDP load generator implementing netstack.Port.
type UDPEchoGen struct {
	Wire    *netstack.Wire
	FromA   bool // which wire end the generator occupies
	SrcIP   netstack.IPAddr
	DstIP   netstack.IPAddr
	DstMAC  netstack.MAC
	DstPort uint16
	Payload int

	Sent     uint64
	Received uint64
	RxBytes  uint64
	FirstRx  sim.Time
	LastRx   sim.Time

	eng *sim.Engine
}

// Deliver counts an echoed packet.
func (g *UDPEchoGen) Deliver(f netstack.Frame) {
	if g.Received == 0 && g.eng != nil {
		g.FirstRx = g.eng.Now()
	}
	g.Received++
	g.RxBytes += uint64(len(f))
	if g.eng != nil {
		g.LastRx = g.eng.Now()
	}
}

// Run emits packets every interval cycles until the engine time limit; call
// within RunUntil.
func (g *UDPEchoGen) Run(e *sim.Engine, interval sim.Time, count int) {
	g.eng = e
	payload := make([]byte, g.Payload)
	var tick func()
	sent := 0
	tick = func() {
		if sent >= count {
			return
		}
		sent++
		g.Sent++
		f := netstack.BuildUDPFrame(netstack.MAC{0xee}, g.DstMAC, g.SrcIP, g.DstIP, 9999, g.DstPort, payload)
		g.Wire.Transmit(g.FromA, f)
		e.After(interval, tick)
	}
	e.After(0, tick)
}

// connState tracks one external HTTP connection.
type connState int

const (
	connSynSent connState = iota
	connAwaitResponse
	connDone
)

type extConn struct {
	localPort uint16
	state     connState
	seq, ack  uint32
	got       int
	activity  int // frames seen; watchdog detects wedged connections
	idleTicks int
}

// HTTPLoadGen is a closed-loop external HTTP client fleet: `Concurrency`
// connections each repeatedly connect, issue one GET and read the response
// to completion, mimicking httperf across a client cluster.
type HTTPLoadGen struct {
	Wire   *netstack.Wire
	FromA  bool
	SrcIP  netstack.IPAddr
	DstIP  netstack.IPAddr
	DstMAC netstack.MAC
	Path   string

	Concurrency int
	Completed   uint64
	BytesIn     uint64
	Timeouts    uint64

	eng      *sim.Engine
	conns    map[uint16]*extConn
	nextPort uint16
	stopped  bool
}

// watchdogPeriod is how often stalled connections are checked. Frames lost
// to receive-ring or link overflow would otherwise wedge a connection
// forever; like httperf, the client times out and retries with a fresh
// connection.
const watchdogPeriod = 3_000_000

// Start launches the client fleet.
func (g *HTTPLoadGen) Start(e *sim.Engine) {
	g.eng = e
	g.conns = make(map[uint16]*extConn)
	g.nextPort = 40000
	for i := 0; i < g.Concurrency; i++ {
		g.openConn()
	}
	var tick func()
	tick = func() {
		if g.stopped {
			return
		}
		var stale []uint16
		for port, c := range g.conns {
			if c.activity == 0 {
				c.idleTicks++
				if c.idleTicks >= 8 {
					stale = append(stale, port)
				}
			} else {
				c.activity = 0
				c.idleTicks = 0
			}
		}
		for _, port := range stale {
			delete(g.conns, port)
			g.Timeouts++
			g.openConn()
		}
		e.After(watchdogPeriod, tick)
	}
	e.After(watchdogPeriod, tick)
}

// Stop ceases opening new connections.
func (g *HTTPLoadGen) Stop() { g.stopped = true }

func (g *HTTPLoadGen) openConn() {
	if g.stopped {
		return
	}
	g.nextPort++
	c := &extConn{localPort: g.nextPort, state: connSynSent, seq: uint32(g.nextPort) * 31}
	g.conns[c.localPort] = c
	g.sendSeg(c, netstack.TCPSyn, nil)
}

func (g *HTTPLoadGen) sendSeg(c *extConn, flags uint8, payload []byte) {
	h := netstack.TCPHeader{
		SrcPort: c.localPort, DstPort: 80,
		Seq: c.seq, Ack: c.ack, Flags: flags, Window: 0xffff,
	}
	f := netstack.BuildTCPFrame(netstack.MAC{0xcc}, g.DstMAC, g.SrcIP, g.DstIP, h, payload)
	g.Wire.Transmit(g.FromA, f)
	c.seq += uint32(len(payload))
	if flags&(netstack.TCPSyn|netstack.TCPFin) != 0 {
		c.seq++
	}
}

// Deliver implements netstack.Port: it advances the owning connection's
// state machine.
func (g *HTTPLoadGen) Deliver(f netstack.Frame) {
	_, ipb, err := netstack.ParseEth(f)
	if err != nil {
		return
	}
	ip, body, err := netstack.ParseIPv4(ipb)
	if err != nil || ip.Protocol != netstack.ProtoTCP {
		return
	}
	h, payload, err := netstack.ParseTCP(body)
	if err != nil {
		return
	}
	c := g.conns[h.DstPort]
	if c == nil {
		return
	}
	c.activity++
	switch {
	case h.Flags&netstack.TCPSyn != 0 && h.Flags&netstack.TCPAck != 0 && c.state == connSynSent:
		c.ack = h.Seq + 1
		c.state = connAwaitResponse
		g.sendSeg(c, netstack.TCPAck, nil) // complete handshake
		g.sendSeg(c, netstack.TCPAck|netstack.TCPPsh, BuildRequest(g.Path))
		return
	}
	if len(payload) > 0 {
		c.ack = h.Seq + uint32(len(payload))
		c.got += len(payload)
		g.BytesIn += uint64(len(payload))
	}
	if h.Flags&netstack.TCPFin != 0 && c.state == connAwaitResponse {
		c.ack = h.Seq + 1
		c.state = connDone
		g.sendSeg(c, netstack.TCPFin|netstack.TCPAck, nil)
		delete(g.conns, c.localPort)
		g.Completed++
		g.openConn() // closed loop: immediately issue the next request
	}
}
