package apps

import (
	"errors"
	"testing"

	"multikernel/internal/kernel"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
)

func TestClusterBasicReadWrite(t *testing.T) {
	e, sys := newSys(topo.AMD4x4())
	cl := NewKVCluster(e, sys, nil, ClusterConfig{
		Rows:    16,
		Servers: []topo.CoreID{2, 3, 6},
	})
	c := cl.Connect(1)
	var fail string
	e.Spawn("client", func(p *sim.Proc) {
		for k := uint64(0); k < 16; k++ {
			v, found, err := c.Get(p, k)
			if err != nil || !found || v != k*2654435761+1 {
				fail = "seeded read wrong"
				return
			}
		}
		if applied, err := c.Put(p, 3, 777); err != nil || !applied {
			fail = "put existing key failed"
			return
		}
		if v, found, err := c.Get(p, 3); err != nil || !found || v != 777 {
			fail = "read-your-write failed"
			return
		}
		// Missing-key writes match nothing but must still complete.
		if applied, err := c.Put(p, 999, 1); err != nil || applied {
			fail = "put missing key misbehaved"
			return
		}
		if _, found, err := c.Get(p, 999); err != nil || found {
			fail = "missing key turned up"
			return
		}
	})
	e.RunUntil(50_000_000)
	if fail != "" {
		t.Fatal(fail)
	}
	st := cl.Stats()
	if st.Promotions != 0 || st.Demotions != 0 || st.Shed != 0 {
		t.Fatalf("healthy cluster saw control-plane churn: %+v", st)
	}
}

func TestClusterWriteReplicatedToBackupBeforeAck(t *testing.T) {
	e, sys := newSys(topo.AMD4x4())
	cl := NewKVCluster(e, sys, nil, ClusterConfig{
		Rows:    8,
		Servers: []topo.CoreID{2, 3, 6},
	})
	c := cl.Connect(1)
	var fail string
	e.Spawn("client", func(p *sim.Proc) {
		key := uint64(0)
		if _, err := c.Put(p, key, 4242); err != nil {
			fail = "put failed"
			return
		}
		// The ack means every in-sync replica holds the write already.
		s := cl.shardOfKey(key)
		st := cl.shards[s]
		if len(st.isr) == 0 {
			fail = "shard has no backups"
			return
		}
		for _, b := range st.isr {
			if cl.byCore[b].data[s][key] != 4242 {
				fail = "acked write missing on an in-sync backup"
				return
			}
		}
		if cl.byCore[st.primary].data[s][key] != 4242 {
			fail = "acked write missing on primary"
		}
	})
	e.RunUntil(20_000_000)
	if fail != "" {
		t.Fatal(fail)
	}
}

// clusterFaultFixture boots a cluster on a monitor network with fault
// tolerance armed and a heartbeat failure detector on core 0.
func clusterFaultFixture(t *testing.T, cfg ClusterConfig) (*sim.Engine, *KVCluster, *monitor.Network) {
	t.Helper()
	e, sys := newSys(topo.AMD4x4())
	m := sys.Machine()
	kern := kernel.NewSystem(e, m)
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	net := monitor.NewNetwork(e, sys, kern, kb, monitor.Hooks{})
	net.EnableFaultTolerance(100_000)
	cl := NewKVCluster(e, sys, net, cfg)
	cl.StartFailureDetector(net, 0, 400_000)
	return e, cl, net
}

func TestClusterFailoverNoAckedWriteLost(t *testing.T) {
	e, cl, net := clusterFaultFixture(t, ClusterConfig{
		Rows:    16,
		Servers: []topo.CoreID{2, 3, 6},
		Spares:  []topo.CoreID{8, 12},
	})
	victim := cl.Primary(cl.shardOfKey(0))

	c := cl.Connect(1)
	acked := map[uint64]uint64{}
	var fail string
	e.Spawn("client", func(p *sim.Proc) {
		// Writes straddle the kill; only acked ones count.
		for i := 0; i < 60; i++ {
			key := uint64(i % 8)
			val := uint64(10_000 + i)
			if applied, err := c.Put(p, key, val); err == nil && applied {
				acked[key] = val
			}
			p.Sleep(60_000)
		}
		// Final read pass: every acked write must still be there.
		for key, want := range acked {
			v, found, err := c.Get(p, key)
			if err != nil {
				fail = "final read failed"
				return
			}
			if !found || v != want {
				fail = "acked write lost"
				return
			}
		}
	})
	// Kill the primary of key 0's shard mid-run: writes are in flight.
	e.After(900_000, func() {
		cl.KillCore(victim)
		net.FailStop(victim)
	})
	e.RunUntil(120_000_000)
	if fail != "" {
		t.Fatalf("%s (stats %+v)", fail, cl.Stats())
	}
	st := cl.Stats()
	if st.Promotions == 0 {
		t.Fatalf("primary died but nothing was promoted: %+v", st)
	}
	if st.Syncs == 0 {
		t.Fatalf("no anti-entropy transfer completed: %+v", st)
	}
	for s := 0; s < cl.Shards(); s++ {
		if cl.Primary(s) == victim {
			t.Fatalf("shard %d still led by the dead core", s)
		}
		if cl.Degraded(s) {
			t.Fatalf("shard %d still degraded at the horizon", s)
		}
	}
}

func TestClusterAckDropMutationLosesAckedWrite(t *testing.T) {
	// Sanity-check the planted defect: with KVMutAckDrop the primary acks
	// without replicating, so killing it MUST lose an acked write — this is
	// what the model checker's kv-failover self-test relies on.
	e, cl, net := clusterFaultFixture(t, ClusterConfig{
		Rows:    8,
		Servers: []topo.CoreID{2, 3, 6},
		Spares:  []topo.CoreID{8},
		Mut:     KVMutAckDrop,
	})
	victim := cl.Primary(cl.shardOfKey(0))
	c := cl.Connect(1)
	var ackedVal uint64
	var lost bool
	var fail string
	e.Spawn("client", func(p *sim.Proc) {
		if applied, err := c.Put(p, 0, 5555); err != nil || !applied {
			fail = "mutated put not acked"
			return
		}
		ackedVal = 5555
		// Wait out detection + promotion, then read the key back.
		p.Sleep(5_000_000)
		v, found, err := c.Get(p, 0)
		if err != nil {
			fail = "read after fail-over failed"
			return
		}
		lost = !found || v != ackedVal
	})
	e.After(400_000, func() {
		cl.KillCore(victim)
		net.FailStop(victim)
	})
	e.RunUntil(60_000_000)
	if fail != "" {
		t.Fatal(fail)
	}
	if !lost {
		t.Fatal("KVMutAckDrop should lose the acked write when the primary dies")
	}
}

func TestClusterDegradedShedsWrites(t *testing.T) {
	// With no spares, losing a backup leaves the shard below target forever:
	// writes must shed with ErrDegraded while reads stay available.
	e, cl, net := clusterFaultFixture(t, ClusterConfig{
		Rows:    8,
		Shards:  1,
		Servers: []topo.CoreID{2, 3},
	})
	backup := cl.shards[0].isr[0]
	c := cl.Connect(1)
	var werr error
	var readOK bool
	e.Spawn("client", func(p *sim.Proc) {
		p.Sleep(3_000_000) // past detection
		_, werr = c.Put(p, 0, 1234)
		_, found, rerr := c.Get(p, 0)
		readOK = rerr == nil && found
	})
	e.After(200_000, func() {
		cl.KillCore(backup)
		net.FailStop(backup)
	})
	e.RunUntil(60_000_000)
	if !errors.Is(werr, ErrDegraded) {
		t.Fatalf("write to under-replicated shard: got %v, want ErrDegraded", werr)
	}
	if !readOK {
		t.Fatal("reads should stay available while degraded")
	}
	if cl.Stats().Shed == 0 {
		t.Fatal("admission control never shed")
	}
}
