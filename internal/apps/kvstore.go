package apps

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"multikernel/internal/cache"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
	"multikernel/internal/urpc"
)

// Query-processing costs in cycles (SQL parse/plan/execute shell around the
// storage accesses, which are charged through the cache model).
// SQLite-calibrated costs: a TPC-W-style point SELECT costs a few hundred
// microseconds of CPU (the paper sustains 3417 queries/s with the database
// core saturated on a 2.8GHz Opteron — about 800k cycles per query).
const (
	kvParseCost = 600_000 // SQL parse, plan and VM execution shell
	kvRowCost   = 1_200   // per-row predicate evaluation / copy-out
)

// KVStore is the relational stand-in for the paper's SQLite database: an
// in-(simulated-)memory table with an ordered primary index. Rows live in
// simulated physical memory, one cache line each, so query cost includes
// real memory-system time.
type KVStore struct {
	sys   *cache.System
	core  topo.CoreID
	rows  memory.Region
	index []uint64 // sorted keys; row i of the region holds index[i]
	vals  map[uint64]uint64

	Queries uint64
}

// NewKVStore builds a table of n rows homed on the store core's socket, with
// keys 0..n-1 and deterministic values.
func NewKVStore(sys *cache.System, core topo.CoreID, n int) *KVStore {
	kv := &KVStore{
		sys:  sys,
		core: core,
		rows: sys.Memory().AllocLines(n, sys.Machine().Socket(core)),
		vals: make(map[uint64]uint64, n),
	}
	for i := 0; i < n; i++ {
		k := uint64(i)
		v := k*2654435761 + 1
		kv.index = append(kv.index, k)
		kv.vals[k] = v
		sys.Memory().StoreWord(kv.rows.LineAt(i), v)
	}
	return kv
}

// Select executes a point SELECT by primary key from the store's core,
// charging parse, index search and row access.
func (kv *KVStore) Select(p *sim.Proc, key uint64) (uint64, bool) {
	kv.Queries++
	p.Sleep(kvParseCost)
	i := sort.Search(len(kv.index), func(j int) bool { return kv.index[j] >= key })
	// Binary search touches log2(n) index lines worth of comparisons.
	p.Sleep(sim.Time(16 * bits(len(kv.index))))
	if i >= len(kv.index) || kv.index[i] != key {
		return 0, false
	}
	p.Sleep(kvRowCost)
	got := kv.sys.Load(p, kv.core, kv.rows.LineAt(i))
	return got, true
}

// Update executes an UPDATE by primary key, charging parse, index search and
// the row store through the coherence model. It reports whether the key
// existed (UPDATE of a missing row matches nothing).
func (kv *KVStore) Update(p *sim.Proc, key, val uint64) bool {
	kv.Queries++
	p.Sleep(kvParseCost)
	i := sort.Search(len(kv.index), func(j int) bool { return kv.index[j] >= key })
	p.Sleep(sim.Time(16 * bits(len(kv.index))))
	if i >= len(kv.index) || kv.index[i] != key {
		return false
	}
	p.Sleep(kvRowCost)
	kv.sys.Store(p, kv.core, kv.rows.LineAt(i), val)
	kv.vals[key] = val
	return true
}

// SelectRange scans [lo, hi) and returns the number of matching rows.
func (kv *KVStore) SelectRange(p *sim.Proc, lo, hi uint64) int {
	kv.Queries++
	p.Sleep(kvParseCost)
	i := sort.Search(len(kv.index), func(j int) bool { return kv.index[j] >= lo })
	n := 0
	for ; i < len(kv.index) && kv.index[i] < hi; i++ {
		p.Sleep(kvRowCost)
		kv.sys.Load(p, kv.core, kv.rows.LineAt(i))
		n++
	}
	return n
}

func bits(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// Request opcodes, carried in word 2 of the request message.
const (
	kvOpPoint  = iota // point SELECT: {key}
	kvOpRange         // range SELECT over the bulk channel: {lo, hi}
	kvOpUpdate        // point UPDATE: {key, val}
)

// kvBulkSlotLines sizes one bulk-channel slot: 64 lines carry 512 row values
// per transfer; larger ranges stream as multiple payloads.
const kvBulkSlotLines = 64

// KVService runs a KVStore as a single-core server domain reached over URPC
// request/response channels — the configuration of §5.4's web+database
// experiment, where the database core is the bottleneck. Row values of range
// queries ride a per-client bulk channel: the server writes them into the
// shared pool and the client pulls the lines on first touch, so result sets
// move without a per-row message or copy.
type KVService struct {
	kv    *KVStore
	reqs  []*urpc.Channel
	rsps  []*urpc.Channel
	bulks []*urpc.BulkChannel
	proc  *sim.Proc
	eng   *sim.Engine
}

// NewKVService starts the service on its store's core. Under a parallel boot
// the service proc runs only in the replica owning that core; other replicas
// hold the structure (and the channel ends built by Connect) without a loop.
func NewKVService(e *sim.Engine, kv *KVStore) *KVService {
	s := &KVService{kv: kv, eng: e}
	if kv.sys.LocalCore(kv.core) {
		s.proc = e.Spawn(fmt.Sprintf("kvsvc@c%d", kv.core), func(p *sim.Proc) {
			p.SetDaemon(true)
			s.loop(p)
		})
	}
	return s
}

// FailStop kills the service process at the current virtual time — the
// fault-injection notion of the service core dying. Clients are not told;
// they learn through their own deadlines.
func (s *KVService) FailStop() {
	if s.proc != nil {
		s.eng.Kill(s.proc)
	}
}

// wake notifies the service loop if it runs in this replica; a cross-partition
// client instead relies on the request channel's delivery doorbell.
func (s *KVService) wake() {
	if s.proc != nil {
		s.eng.Wake(s.proc)
	}
}

// Connect returns a client handle for a caller on the given core.
func (s *KVService) Connect(client topo.CoreID) *KVClient {
	sys := s.kv.sys
	req := urpc.New(sys, client, s.kv.core, urpc.Options{Slots: 8, Home: int(sys.Machine().Socket(s.kv.core))})
	rsp := urpc.New(sys, s.kv.core, client, urpc.Options{Slots: 8, Home: int(sys.Machine().Socket(client))})
	bulk := urpc.NewBulk(sys, s.kv.core, client, urpc.BulkOptions{
		Slots: 8, SlotLines: kvBulkSlotLines,
		Home: int(sys.Machine().Socket(client)), Prefetch: true,
	})
	// A request line landing from the client's partition is the service-side
	// arrival interrupt (fires only in the replica that runs the loop).
	req.OnRemoteDeliver = s.wake
	s.reqs = append(s.reqs, req)
	s.rsps = append(s.rsps, rsp)
	s.bulks = append(s.bulks, bulk)
	s.wake()
	return &KVClient{req: req, rsp: rsp, bulk: bulk, svc: s, Timeout: DefaultKVTimeout}
}

func (s *KVService) loop(p *sim.Proc) {
	idle := 0
	var reqBuf [8]urpc.Message
	var replies []urpc.Message
	for {
		progress := false
		for i, req := range s.reqs {
			// Burst dequeue: one check charge drains a client's whole request
			// batch, and the replies go back as one vectored send.
			n := req.RecvAll(p, reqBuf[:])
			if n == 0 {
				continue
			}
			progress = true
			replies = replies[:0]
			for _, m := range reqBuf[:n] {
				switch m[2] {
				case kvOpRange:
					cnt := s.serveRange(p, i, m[0], m[1])
					replies = append(replies, urpc.Message{uint64(cnt), 1, kvOpRange})
				case kvOpUpdate:
					ok := s.kv.Update(p, m[0], m[1])
					f := uint64(0)
					if ok {
						f = 1
					}
					replies = append(replies, urpc.Message{m[1], f, kvOpUpdate})
				default:
					v, found := s.kv.Select(p, m[0])
					f := uint64(0)
					if found {
						f = 1
					}
					replies = append(replies, urpc.Message{v, f})
				}
			}
			s.rsps[i].SendBatch(p, replies)
		}
		if progress {
			idle = 0
			continue
		}
		idle++
		if idle < 40 {
			p.Sleep(200)
			continue
		}
		p.Park()
		idle = 0
	}
}

// serveRange scans [lo, hi) and streams the matching row values to client i's
// bulk channel, returning the match count. The response message follows the
// last payload, so the client knows how many values to drain.
func (s *KVService) serveRange(p *sim.Proc, client int, lo, hi uint64) int {
	kv := s.kv
	kv.Queries++
	p.Sleep(kvParseCost)
	i := sort.Search(len(kv.index), func(j int) bool { return kv.index[j] >= lo })
	bulk := s.bulks[client]
	buf := make([]byte, 0, bulk.SlotBytes())
	n := 0
	for ; i < len(kv.index) && kv.index[i] < hi; i++ {
		p.Sleep(kvRowCost)
		v := kv.sys.Load(p, kv.core, kv.rows.LineAt(i))
		buf = binary.LittleEndian.AppendUint64(buf, v)
		n++
		if len(buf) == bulk.SlotBytes() {
			bulk.Send(p, buf)
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		bulk.Send(p, buf)
	}
	return n
}

// Typed client errors. A dead service core used to park its clients forever
// (plain Send/Recv); every request path now runs under a deadline and
// surfaces the ChannelDead verdict instead.
var (
	// ErrChannelDead reports that the service channel carries (or just
	// earned) a ChannelDead verdict: the request ring stayed full or the
	// response never came within the deadline, the fail-stop signature.
	ErrChannelDead = errors.New("kv: service channel dead")
	// ErrDegraded reports admission control shedding a write because the
	// shard is below its replication target; the operation was not applied
	// and may be retried once re-replication completes.
	ErrDegraded = errors.New("kv: shard degraded below replication target")
	// ErrRetriesExhausted reports that a fault-aware client ran out of retry
	// budget without finding a live primary for the key's shard.
	ErrRetriesExhausted = errors.New("kv: retries exhausted")
)

// DefaultKVTimeout is the per-call deadline for KVClient operations: generous
// against queueing behind other clients' bursts on a saturated database core
// (§5.4 runs it at saturation, ~800k cycles per query), but finite, so a
// fail-stopped service core turns into ErrChannelDead instead of a deadlock.
const DefaultKVTimeout sim.Time = 50_000_000

// KVClient is a connected caller.
type KVClient struct {
	req  *urpc.Channel
	rsp  *urpc.Channel
	bulk *urpc.BulkChannel
	svc  *KVService

	// Timeout bounds each request/response exchange; Connect sets it to
	// DefaultKVTimeout.
	Timeout sim.Time
}

// fail renders the ChannelDead verdict on both directions: once a deadline
// expired, request/response matching is lost, so the connection is retired
// rather than resynchronized.
func (c *KVClient) fail() {
	c.req.MarkDead()
	c.rsp.MarkDead()
}

// Dead reports whether this connection carries a ChannelDead verdict.
func (c *KVClient) Dead() bool { return c.req.Dead() || c.rsp.Dead() }

// Select performs a synchronous remote SELECT.
//
// When tracing is on, the call is bracketed by "kv.select" async events so
// the linearizability checker can reconstruct the operation history from the
// trace alone: ID is serial<<20|key (keys are assumed < 2^20) and the end
// Arg packs the result as 2*value+found. A failed call emits no end event —
// in the reconstructed history it is an operation that never returned.
func (c *KVClient) Select(p *sim.Proc, key uint64) (uint64, bool, error) {
	rec := c.svc.eng.Tracer()
	var id uint64
	if rec != nil {
		id = c.svc.eng.Serial()<<20 | key
		rec.Emit(uint64(p.Now()), trace.AsyncBegin, trace.SubApp, int32(c.req.Sender), "kv.select", id, 0)
	}
	if !c.req.SendTimeout(p, urpc.Message{key}, c.Timeout) {
		c.fail()
		return 0, false, ErrChannelDead
	}
	c.svc.wake() // notify a parked service
	m, ok := c.rsp.RecvTimeout(p, c.Timeout)
	if !ok {
		c.fail()
		return 0, false, ErrChannelDead
	}
	if rec != nil {
		rec.Emit(uint64(p.Now()), trace.AsyncEnd, trace.SubApp, int32(c.req.Sender), "kv.select", id, 2*m[0]+m[1])
	}
	return m[0], m[1] == 1, nil
}

// Update performs a synchronous remote UPDATE, reporting whether the key
// existed. Traced as "kv.update" async events (ID as in Select; the begin
// Arg carries the new value, the end Arg the applied flag). A failed call
// emits no end event: the write may or may not have been applied, exactly
// the ambiguity the linearizability checker models for incomplete writes.
func (c *KVClient) Update(p *sim.Proc, key, val uint64) (bool, error) {
	rec := c.svc.eng.Tracer()
	var id uint64
	if rec != nil {
		id = c.svc.eng.Serial()<<20 | key
		rec.Emit(uint64(p.Now()), trace.AsyncBegin, trace.SubApp, int32(c.req.Sender), "kv.update", id, val)
	}
	if !c.req.SendTimeout(p, urpc.Message{key, val, kvOpUpdate}, c.Timeout) {
		c.fail()
		return false, ErrChannelDead
	}
	c.svc.wake()
	m, ok := c.rsp.RecvTimeout(p, c.Timeout)
	if !ok {
		c.fail()
		return false, ErrChannelDead
	}
	if rec != nil {
		rec.Emit(uint64(p.Now()), trace.AsyncEnd, trace.SubApp, int32(c.req.Sender), "kv.update", id, m[1])
	}
	return m[1] == 1, nil
}

// SelectMany pipelines point SELECTs: keys go out as vectored batches sized
// to the response ring (so the server can never block on a full reply ring),
// and replies are drained in bursts. Results are positional; found[i] reports
// whether keys[i] matched. On ErrChannelDead the returned slices hold the
// results that arrived before the verdict.
func (c *KVClient) SelectMany(p *sim.Proc, keys []uint64) (vals []uint64, found []bool, err error) {
	window := c.rsp.Slots()
	reqs := make([]urpc.Message, 0, window)
	rbuf := make([]urpc.Message, window)
	for len(keys) > 0 {
		n := window
		if n > len(keys) {
			n = len(keys)
		}
		reqs = reqs[:0]
		for _, k := range keys[:n] {
			reqs = append(reqs, urpc.Message{k})
		}
		if c.req.SendBatchTimeout(p, reqs, c.Timeout) < len(reqs) {
			c.fail()
			return vals, found, ErrChannelDead
		}
		c.svc.wake()
		got := 0
		deadline := p.Now() + c.Timeout
		for got < n {
			k := c.rsp.RecvAll(p, rbuf[got:n])
			if k == 0 {
				if p.Now() >= deadline {
					c.fail()
					return vals, found, ErrChannelDead
				}
				p.Sleep(200)
				continue
			}
			deadline = p.Now() + c.Timeout
			for _, m := range rbuf[got : got+k] {
				vals = append(vals, m[0])
				found = append(found, m[1] == 1)
			}
			got += k
		}
		keys = keys[n:]
	}
	return vals, found, nil
}

// SelectRange performs a remote range SELECT over [lo, hi): the row values
// arrive zero-copy through the bulk channel. Payloads are drained while
// waiting for the count reply, so result sets larger than the bulk ring
// never stall the server. The deadline re-arms on every payload, so a large
// result set is bounded by per-transfer progress, not total size.
func (c *KVClient) SelectRange(p *sim.Proc, lo, hi uint64) ([]uint64, error) {
	if !c.req.SendTimeout(p, urpc.Message{lo, hi, kvOpRange}, c.Timeout) {
		c.fail()
		return nil, ErrChannelDead
	}
	c.svc.wake()
	var vals []uint64
	total := -1
	deadline := p.Now() + c.Timeout
	for total < 0 || len(vals) < total {
		if total < 0 {
			if m, ok := c.rsp.TryRecv(p); ok {
				total = int(m[0])
				deadline = p.Now() + c.Timeout
				continue
			}
		}
		if b, ok := c.bulk.TryRecv(p); ok {
			for off := 0; off+8 <= len(b); off += 8 {
				vals = append(vals, binary.LittleEndian.Uint64(b[off:]))
			}
			deadline = p.Now() + c.Timeout
			continue
		}
		if p.Now() >= deadline {
			c.fail()
			return vals, ErrChannelDead
		}
		p.Sleep(200)
	}
	return vals, nil
}

// EncodeKey serializes a key for transport in HTTP query bodies.
func EncodeKey(key uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, key)
}

// DecodeKey parses a serialized key.
func DecodeKey(b []byte) (uint64, bool) {
	if len(b) < 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(b[:8]), true
}
