package apps

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multikernel/internal/cache"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// Query-processing costs in cycles (SQL parse/plan/execute shell around the
// storage accesses, which are charged through the cache model).
// SQLite-calibrated costs: a TPC-W-style point SELECT costs a few hundred
// microseconds of CPU (the paper sustains 3417 queries/s with the database
// core saturated on a 2.8GHz Opteron — about 800k cycles per query).
const (
	kvParseCost = 600_000 // SQL parse, plan and VM execution shell
	kvRowCost   = 1_200   // per-row predicate evaluation / copy-out
)

// KVStore is the relational stand-in for the paper's SQLite database: an
// in-(simulated-)memory table with an ordered primary index. Rows live in
// simulated physical memory, one cache line each, so query cost includes
// real memory-system time.
type KVStore struct {
	sys   *cache.System
	core  topo.CoreID
	rows  memory.Region
	index []uint64 // sorted keys; row i of the region holds index[i]
	vals  map[uint64]uint64

	Queries uint64
}

// NewKVStore builds a table of n rows homed on the store core's socket, with
// keys 0..n-1 and deterministic values.
func NewKVStore(sys *cache.System, core topo.CoreID, n int) *KVStore {
	kv := &KVStore{
		sys:  sys,
		core: core,
		rows: sys.Memory().AllocLines(n, sys.Machine().Socket(core)),
		vals: make(map[uint64]uint64, n),
	}
	for i := 0; i < n; i++ {
		k := uint64(i)
		v := k*2654435761 + 1
		kv.index = append(kv.index, k)
		kv.vals[k] = v
		sys.Memory().StoreWord(kv.rows.LineAt(i), v)
	}
	return kv
}

// Select executes a point SELECT by primary key from the store's core,
// charging parse, index search and row access.
func (kv *KVStore) Select(p *sim.Proc, key uint64) (uint64, bool) {
	kv.Queries++
	p.Sleep(kvParseCost)
	i := sort.Search(len(kv.index), func(j int) bool { return kv.index[j] >= key })
	// Binary search touches log2(n) index lines worth of comparisons.
	p.Sleep(sim.Time(16 * bits(len(kv.index))))
	if i >= len(kv.index) || kv.index[i] != key {
		return 0, false
	}
	p.Sleep(kvRowCost)
	got := kv.sys.Load(p, kv.core, kv.rows.LineAt(i))
	return got, true
}

// SelectRange scans [lo, hi) and returns the number of matching rows.
func (kv *KVStore) SelectRange(p *sim.Proc, lo, hi uint64) int {
	kv.Queries++
	p.Sleep(kvParseCost)
	i := sort.Search(len(kv.index), func(j int) bool { return kv.index[j] >= lo })
	n := 0
	for ; i < len(kv.index) && kv.index[i] < hi; i++ {
		p.Sleep(kvRowCost)
		kv.sys.Load(p, kv.core, kv.rows.LineAt(i))
		n++
	}
	return n
}

func bits(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// KVService runs a KVStore as a single-core server domain reached over URPC
// request/response channels — the configuration of §5.4's web+database
// experiment, where the database core is the bottleneck.
type KVService struct {
	kv   *KVStore
	reqs []*urpc.Channel
	rsps []*urpc.Channel
	proc *sim.Proc
	eng  *sim.Engine
}

// NewKVService starts the service on its store's core.
func NewKVService(e *sim.Engine, kv *KVStore) *KVService {
	s := &KVService{kv: kv, eng: e}
	s.proc = e.Spawn(fmt.Sprintf("kvsvc@c%d", kv.core), func(p *sim.Proc) {
		p.SetDaemon(true)
		s.loop(p)
	})
	return s
}

// Connect returns a client handle for a caller on the given core.
func (s *KVService) Connect(client topo.CoreID) *KVClient {
	sys := s.kv.sys
	req := urpc.New(sys, client, s.kv.core, urpc.Options{Slots: 8, Home: int(sys.Machine().Socket(s.kv.core))})
	rsp := urpc.New(sys, s.kv.core, client, urpc.Options{Slots: 8, Home: int(sys.Machine().Socket(client))})
	s.reqs = append(s.reqs, req)
	s.rsps = append(s.rsps, rsp)
	s.eng.Wake(s.proc)
	return &KVClient{req: req, rsp: rsp, svc: s}
}

func (s *KVService) loop(p *sim.Proc) {
	idle := 0
	for {
		progress := false
		for i, req := range s.reqs {
			m, ok := req.TryRecv(p)
			if !ok {
				continue
			}
			progress = true
			v, found := s.kv.Select(p, m[0])
			f := uint64(0)
			if found {
				f = 1
			}
			s.rsps[i].Send(p, urpc.Message{v, f})
		}
		if progress {
			idle = 0
			continue
		}
		idle++
		if idle < 40 {
			p.Sleep(200)
			continue
		}
		p.Park()
		idle = 0
	}
}

// KVClient is a connected caller.
type KVClient struct {
	req *urpc.Channel
	rsp *urpc.Channel
	svc *KVService
}

// Select performs a synchronous remote SELECT.
func (c *KVClient) Select(p *sim.Proc, key uint64) (uint64, bool) {
	c.req.Send(p, urpc.Message{key})
	c.svc.eng.Wake(c.svc.proc) // notify a parked service
	m := c.rsp.Recv(p)
	return m[0], m[1] == 1
}

// EncodeKey serializes a key for transport in HTTP query bodies.
func EncodeKey(key uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, key)
}

// DecodeKey parses a serialized key.
func DecodeKey(b []byte) (uint64, bool) {
	if len(b) < 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(b[:8]), true
}
