package apps

import (
	"errors"
	"strings"
	"testing"

	"multikernel/internal/baseline"
	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/netstack"
	"multikernel/internal/sim"
	"multikernel/internal/threads"
	"multikernel/internal/topo"
)

func newSys(m *topo.Machine) (*sim.Engine, *cache.System) {
	e := sim.NewEngine(1)
	return e, cache.New(e, m, memory.New(m), interconnect.New(m))
}

func TestSHMUpdateSingleCoreIsCheap(t *testing.T) {
	e, sys := newSys(topo.AMD4x4())
	res := SHMUpdate(e, sys, 1, 8, 50)
	// After warm-up, a single core updating 8 owned lines costs ~8 stores.
	if mean := res.ClientLatency.Percentile(50); mean > 200 {
		t.Fatalf("single-core 8-line update median %v cycles, want small", mean)
	}
}

func TestSHMUpdateDegradesLinearly(t *testing.T) {
	lat := func(n int) float64 {
		e, sys := newSys(topo.AMD4x4())
		return SHMUpdate(e, sys, n, 8, 30).ClientLatency.Percentile(50)
	}
	l2, l8, l16 := lat(2), lat(8), lat(16)
	t.Logf("SHM8: 2=%.0f 8=%.0f 16=%.0f", l2, l8, l16)
	if !(l2 < l8 && l8 < l16) {
		t.Fatalf("not monotone: %v %v %v", l2, l8, l16)
	}
	if l16 < 4*l2 {
		t.Fatalf("SHM contention too flat: 2 cores %.0f, 16 cores %.0f", l2, l16)
	}
}

func TestMSGServerCostFlat(t *testing.T) {
	cost := func(n int) float64 {
		e, sys := newSys(topo.AMD4x4())
		return MSGUpdate(e, sys, n, 8, 30).ServerCost.Percentile(50)
	}
	c2, c12 := cost(2), cost(12)
	t.Logf("MSG server cost: 2=%.0f 12=%.0f", c2, c12)
	if c12 > 2*c2+100 {
		t.Fatalf("server-side cost not flat: %v -> %v", c2, c12)
	}
}

func TestFig3CrossoverMSGBeatsSHMForLargeUpdates(t *testing.T) {
	// Paper: for updates of 4+ cache lines at high core counts, RPC latency
	// beats shared-memory access (SHM8 vs MSG8 at 14+ cores).
	e1, sys1 := newSys(topo.AMD4x4())
	shm := SHMUpdate(e1, sys1, 14, 8, 30).ClientLatency.Percentile(50)
	e2, sys2 := newSys(topo.AMD4x4())
	msg := MSGUpdate(e2, sys2, 14, 8, 30).ClientLatency.Percentile(50)
	t.Logf("14 cores, 8 lines: SHM=%.0f MSG=%.0f", shm, msg)
	if msg >= shm {
		t.Fatalf("MSG (%.0f) should beat SHM (%.0f) for 8-line updates at 14 cores", msg, shm)
	}
}

func coresN(n int) []topo.CoreID {
	out := make([]topo.CoreID, n)
	for i := range out {
		out[i] = topo.CoreID(i)
	}
	return out
}

func TestComputeWorkloadsScale(t *testing.T) {
	run := func(wl Workload, n int) sim.Time {
		m := topo.AMD4x4()
		e, sys := newSys(m)
		defer e.Close()
		kern := kernel.NewSystem(e, m)
		team := threads.NewTeam(sys, kern, coresN(16))
		return RunCompute(team, wl, coresN(n), func(parts int) Barrier {
			return SpinBarrierAdapter{team.NewSpinBarrier(parts, 0)}
		})
	}
	for _, wl := range NASWorkloads() {
		wl.Iters = 4 // shorten for the test
		t1 := run(wl, 1)
		t8 := run(wl, 8)
		if t8 >= t1 {
			t.Errorf("%s: no speedup from 1 to 8 cores (%d -> %d)", wl.Name, t1, t8)
		}
	}
}

func TestComputeBaselineBarrierDiffers(t *testing.T) {
	m := topo.AMD4x4()
	wl := Workload{Name: "barrier-heavy", Iters: 10, Work: 2_000_000, BarriersPerIter: 6}

	e1, sys1 := newSys(m)
	kern1 := kernel.NewSystem(e1, m)
	team1 := threads.NewTeam(sys1, kern1, coresN(16))
	bf := RunCompute(team1, wl, coresN(16), func(parts int) Barrier {
		return SpinBarrierAdapter{team1.NewSpinBarrier(parts, 0)}
	})
	e1.Close()

	e2, sys2 := newSys(m)
	kern2 := kernel.NewSystem(e2, m)
	base := baseline.New(e2, sys2, kern2, baseline.Linux)
	team2 := threads.NewTeam(sys2, kern2, coresN(16))
	lx := RunCompute(team2, wl, coresN(16), func(parts int) Barrier {
		return kernelBarrierAdapter{base.NewBarrier(parts, 0)}
	})
	e2.Close()

	t.Logf("barrier-heavy: barrelfish=%d linux=%d", bf, lx)
	if bf == lx {
		t.Fatal("barrier implementations indistinguishable")
	}
	// The user-space spin barrier should win on a barrier-heavy load.
	if bf > lx {
		t.Fatalf("spin barrier (%d) slower than kernel barrier (%d)", bf, lx)
	}
}

// kernelBarrierAdapter adapts the baseline barrier to the apps.Barrier
// interface.
type kernelBarrierAdapter struct{ b *baseline.Barrier }

func (a kernelBarrierAdapter) Wait(th *threads.Thread) { a.b.Wait(th.Proc(), th.Core()) }

func TestKVStoreSelect(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	kv := NewKVStore(sys, 1, 1000)
	e.Spawn("q", func(p *sim.Proc) {
		v, ok := kv.Select(p, 42)
		if !ok || v != 42*2654435761+1 {
			t.Errorf("select(42) = %d, %v", v, ok)
		}
		if _, ok := kv.Select(p, 5000); ok {
			t.Error("select of missing key succeeded")
		}
		if n := kv.SelectRange(p, 10, 20); n != 10 {
			t.Errorf("range scan found %d rows", n)
		}
	})
	e.Run()
	if kv.Queries != 3 {
		t.Fatalf("queries=%d", kv.Queries)
	}
}

func TestKVServiceOverURPC(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	defer e.Close()
	kv := NewKVStore(sys, 1, 1000)
	svc := NewKVService(e, kv)
	cli := svc.Connect(3)
	done := false
	e.Spawn("web", func(p *sim.Proc) {
		for i := uint64(0); i < 20; i++ {
			v, ok, err := cli.Select(p, i)
			if err != nil || !ok || v != i*2654435761+1 {
				t.Errorf("remote select(%d) = %d, %v, %v", i, v, ok, err)
			}
		}
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("client did not finish")
	}
}

// A dead service core must turn into ErrChannelDead on every client path,
// not a deadlock (the pre-fault-awareness client parked forever).
func TestKVClientSurvivesDeadService(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	defer e.Close()
	kv := NewKVStore(sys, 1, 100)
	svc := NewKVService(e, kv)
	cli := svc.Connect(3)
	cli.Timeout = 2_000_000 // short deadline keeps the test fast
	var errSel, errUpd, errMany, errRange error
	e.Spawn("cli", func(p *sim.Proc) {
		if _, ok, err := cli.Select(p, 1); err != nil || !ok {
			t.Errorf("select against live service failed: ok=%v err=%v", ok, err)
		}
		svc.FailStop()
		_, _, errSel = cli.Select(p, 2)
		_, errUpd = cli.Update(p, 3, 9)
		_, _, errMany = cli.SelectMany(p, []uint64{4, 5})
		_, errRange = cli.SelectRange(p, 0, 10)
	})
	e.Run()
	for name, err := range map[string]error{
		"select": errSel, "update": errUpd, "selectmany": errMany, "selectrange": errRange,
	} {
		if !errors.Is(err, ErrChannelDead) {
			t.Errorf("%s after service death: err = %v, want ErrChannelDead", name, err)
		}
	}
	if !cli.Dead() {
		t.Error("client connection not marked dead after verdict")
	}
}

func TestWebServerStaticOverLoopback(t *testing.T) {
	m := topo.AMD2x2()
	e, sys := newSys(m)
	defer e.Close()
	server := netstack.NewStack(e, sys, "web", 3, netstack.IP4(10, 0, 0, 1))
	client := netstack.NewStack(e, sys, "cli", 1, netstack.IP4(10, 0, 0, 2))
	netstack.ConnectLoopback(server, client)

	ws := &WebServer{Stack: server, Page: StaticPage()}
	e.Spawn("websrv", func(p *sim.Proc) {
		p.SetDaemon(true)
		ws.Serve(p)
	})
	var got []byte
	e.Spawn("client", func(p *sim.Proc) {
		conn := client.Dial(p, server.IP, 80)
		conn.Send(p, BuildRequest("/index.html"))
		for {
			b, ok := conn.Recv(p)
			if !ok {
				break
			}
			got = append(got, b...)
		}
	})
	e.RunUntil(100_000_000)
	status, body, ok := ParseResponse(got)
	if !ok {
		t.Fatalf("response: %q", status)
	}
	if len(body) != 4100 {
		t.Fatalf("body %d bytes, want 4100", len(body))
	}
	if ws.Requests != 1 {
		t.Fatalf("requests=%d", ws.Requests)
	}
}

func TestHTTPRequestHelpers(t *testing.T) {
	if parseRequestPath("GET /db/17 HTTP/1.0") != "/db/17" {
		t.Fatal("path parse failed")
	}
	if parseRequestPath("POST / HTTP/1.0") != "" {
		t.Fatal("non-GET accepted")
	}
	_, _, ok := ParseResponse([]byte("HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nhi"))
	if !ok {
		t.Fatal("response parse failed")
	}
	if _, _, ok := ParseResponse([]byte("garbage")); ok {
		t.Fatal("garbage accepted")
	}
}

func TestKeyCodec(t *testing.T) {
	b := EncodeKey(123456789)
	k, ok := DecodeKey(b)
	if !ok || k != 123456789 {
		t.Fatalf("roundtrip: %d %v", k, ok)
	}
	if _, ok := DecodeKey([]byte{1}); ok {
		t.Fatal("short key accepted")
	}
}

func TestWebServerErrorPaths(t *testing.T) {
	m := topo.AMD2x2()
	e, sys := newSys(m)
	defer e.Close()
	server := netstack.NewStack(e, sys, "web", 3, netstack.IP4(10, 0, 0, 1))
	client := netstack.NewStack(e, sys, "cli", 1, netstack.IP4(10, 0, 0, 2))
	netstack.ConnectLoopback(server, client)
	kv := NewKVStore(sys, 0, 100)
	svc := NewKVService(e, kv)
	ws := &WebServer{Stack: server, Page: StaticPage(), DB: svc.Connect(3)}
	e.Spawn("websrv", func(p *sim.Proc) {
		p.SetDaemon(true)
		ws.Serve(p)
	})
	fetch := func(path string) string {
		var got []byte
		done := make(chan struct{})
		e.Spawn("client", func(p *sim.Proc) {
			defer close(done)
			conn := client.Dial(p, server.IP, 80)
			conn.Send(p, BuildRequest(path))
			for {
				b, ok := conn.Recv(p)
				if !ok {
					break
				}
				got = append(got, b...)
			}
		})
		e.RunUntil(e.Now() + 80_000_000)
		status, _, _ := ParseResponse(got)
		return status
	}
	if s := fetch("/nope"); !strings.Contains(s, "404") {
		t.Errorf("missing page: %q", s)
	}
	if s := fetch("/db/99999"); !strings.Contains(s, "404") {
		t.Errorf("missing row: %q", s)
	}
	if s := fetch("/db/notanumber"); !strings.Contains(s, "400") {
		t.Errorf("bad key: %q", s)
	}
	if s := fetch("/db/5"); !strings.Contains(s, "200") {
		t.Errorf("good row: %q", s)
	}
	if ws.Errors != 3 {
		t.Errorf("errors=%d, want 3", ws.Errors)
	}
}

func TestStaticPageExactSize(t *testing.T) {
	if got := len(StaticPage()); got != 4100 {
		t.Fatalf("page is %d bytes, want 4100 (the paper's 4.1kB)", got)
	}
}
