package apps

// A sharded, replicated kvstore with automatic fail-over — the multikernel
// argument applied to the flagship application. State is partitioned by
// consistent hashing across N server cores and replicated to R total copies
// per shard; all coordination is message passing over URPC, and fail-over is
// driven by the monitors' existing deadline-based failure detection (a view
// excision IS the failure notification, via monitor.Network.OnExcise).
//
// Replication protocol (per shard, primary-sequenced):
//
//	client PUT -> primary: admit (dedup by reqID; shed with ErrDegraded if
//	  the shard is below its replication target) and queue head-of-line
//	primary -> ISR backups: kvRepl{key,val,reqID}; each backup applies to
//	  its copy, records the reqID, and acks
//	primary: only after every in-sync backup acked -> apply locally ->
//	  ack the client
//
// The ack order is the no-lost-write guarantee: a client ack implies the
// write is on every in-sync replica, so any single fail-stop leaves at least
// one survivor carrying it, and reads (served from the primary's committed
// copy only) can never observe a write that is not yet fully replicated. A
// backup that stops acking is demoted from the in-sync set BEFORE the client
// is acked — exactly the ISR rule — so the invariant "acked ⊆ every ISR
// member" survives slow and half-dead backups too.
//
// Fail-over: when the monitors excise a dead core, the cluster promotes the
// first live in-sync backup of each shard the dead core led, demotes it from
// the shards it backed, and recruits a spare core per under-replicated
// shard. The new primary streams a full anti-entropy snapshot (rows + the
// reqID dedup table, so exactly-once survives the transfer) to the recruit;
// until the shard is back at its replication target, writes are shed with
// ErrDegraded while reads stay available. Clients are fault-aware: every
// request runs under a deadline with a seeded-jitter urpc.RetryPolicy, and
// on ChannelDead / wrong-primary / degraded verdicts they re-resolve the
// shard map and retry — carrying the same reqID, so a write retried against
// the promoted backup is applied exactly once.
//
// Shard state lives in plain Go maps with explicit cycle charges (the
// protocol dynamics, not SQLite costs, are the object of study here); the
// shard map itself is engine-shared authoritative state standing in for a
// replicated coordination service, with every lookup charged ckMapLookup.

import (
	"fmt"
	"sort"

	"multikernel/internal/cache"
	"multikernel/internal/metrics"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
	"multikernel/internal/urpc"
)

// Cluster opcodes, carried in word 2 of request and mesh messages (disjoint
// from the single-core service's kvOp* space).
const (
	ckOpGet     = 10 // client GET: {key, 0, op, reqID}
	ckOpPut     = 11 // client PUT: {key, val, op, reqID}
	ckOpRepl    = 12 // primary->backup replicate: {key, val, op, reqID, shard}
	ckOpReplAck = 13 // backup->primary ack: {_, flags, op, reqID, shard}
	ckOpSyncRow = 14 // anti-entropy row: {key, val, op, 0, shard}
	ckOpSyncDup = 15 // anti-entropy dedup entry: {reqID, flags, op, 0, shard}
	ckOpSyncEnd = 16 // anti-entropy end: {rows, dups, op, syncID, shard}
	ckOpSyncAck = 17 // recruit->primary: {_, _, op, syncID, shard}
)

// Response status, word 2 of a client response {val, flags, status, reqID}.
const (
	ckStatusOK           = 0
	ckStatusWrongPrimary = 1 // shard map moved; client must re-resolve
	ckStatusDegraded     = 2 // admission control shed the write
)

// Cluster software-path costs in cycles.
const (
	ckMapLookup = 150   // shard-map resolve (modeled coordination-service read)
	ckServe     = 2_500 // per-request server processing (hash, dispatch, reply build)
	ckApply     = 900   // applying one write to a shard copy
	ckSyncRow   = 250   // marshaling one anti-entropy row
)

// KVMutation selects a deliberate replication defect, in the style of
// urpc.Mutation: the model checker's self-tests arm these to prove the
// linearizability oracle actually bites on this protocol.
type KVMutation uint8

const (
	// KVMutNone runs the correct protocol.
	KVMutNone KVMutation = iota
	// KVMutAckDrop acks the client without replicating: the primary applies
	// locally and replies immediately, silently dropping the backup-ack
	// requirement. Kill the primary afterwards and the acked write is gone —
	// the exact loss the replication protocol exists to prevent.
	KVMutAckDrop
)

// ClusterConfig parameterizes NewKVCluster.
type ClusterConfig struct {
	Shards   int // consistent-hash shards (default len(Servers))
	Replicas int // total copies per shard, primary included (default 2)
	VNodes   int // ring vnodes per shard (default 8)
	Rows     int // seeded keys 0..Rows-1, NewKVStore's value formula

	Servers []topo.CoreID // initial shard holders (primaries and backups)
	Spares  []topo.CoreID // recruitment pool for re-replication

	// ReplTimeout bounds a backup ack; past it the backup is demoted from
	// the in-sync set (default 60_000).
	ReplTimeout sim.Time
	// SyncTimeout bounds a full anti-entropy transfer; past it the recruit
	// is presumed dead and the next spare is tried (default 600_000).
	SyncTimeout sim.Time
	// RequestTimeout bounds one client request attempt (default 300_000).
	RequestTimeout sim.Time

	// Mut arms a deliberate replication defect (checker self-tests only).
	Mut KVMutation
}

// shardState is one shard's entry in the authoritative map.
type shardState struct {
	primary topo.CoreID // -1: no live candidate remained (shard down)
	isr     []topo.CoreID
	syncing bool        // below replication target; writes are shed
	target  topo.CoreID // recruit being synced, valid while syncing
}

// vnode is one ring point of the consistent-hash ring.
type vnode struct {
	hash  uint64
	shard int
}

// ClusterStats counts cluster-wide control-plane activity.
type ClusterStats struct {
	Promotions uint64 // backup took over a dead primary's shard
	Demotions  uint64 // backup removed from an in-sync set
	Recruits   uint64 // spare drafted into an under-replicated shard
	Syncs      uint64 // anti-entropy transfers completed
	Shed       uint64 // writes refused with ErrDegraded
	WrongEpoch uint64 // requests answered wrong-primary
	DedupHits  uint64 // retried writes answered from the dedup table
}

// KVCluster is the control plane plus the per-core server processes.
type KVCluster struct {
	eng *sim.Engine
	sys *cache.System
	cfg ClusterConfig

	shards []*shardState
	ring   []vnode
	epoch  uint64

	members  []topo.CoreID // servers + spares, ascending
	byCore   map[topo.CoreID]*kvServer
	spares   []topo.CoreID // cores currently holding no shard
	downSeen map[topo.CoreID]bool

	stats ClusterStats

	mPromotions, mDemotions *metrics.Counter
	mRecruits, mSyncs       *metrics.Counter
	mShed                   *metrics.Counter

	// Health telemetry consumed by the observability plane: live copies per
	// shard ("kv.shard.<s>.replicas"), admitted-write queue depth per server
	// ("kv.server.<c>.pending"), and end-to-end client op latency
	// ("kv.op_cycles"). All are zero-virtual-cost registry updates.
	gShardReplicas []*metrics.Gauge
	hOps           *stats.Histogram
}

// NewKVCluster builds the shard map, boots one server process per member
// core (spares included — a spare is just a member holding no shard yet),
// wires the full URPC mesh between them, and seeds every shard copy with
// NewKVStore's deterministic contents. net may be nil (no failure
// detection: fail-over then only happens through backup-ack demotion);
// when present, view excisions drive promotion and re-replication.
func NewKVCluster(e *sim.Engine, sys *cache.System, net *monitor.Network, cfg ClusterConfig) *KVCluster {
	if len(cfg.Servers) == 0 {
		panic("kvcluster: no servers")
	}
	if cfg.Shards == 0 {
		cfg.Shards = len(cfg.Servers)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Servers) {
		panic("kvcluster: more replicas than servers")
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = 8
	}
	if cfg.ReplTimeout == 0 {
		cfg.ReplTimeout = 60_000
	}
	if cfg.SyncTimeout == 0 {
		cfg.SyncTimeout = 600_000
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 300_000
	}
	cl := &KVCluster{
		eng: e, sys: sys, cfg: cfg,
		byCore:   make(map[topo.CoreID]*kvServer),
		downSeen: make(map[topo.CoreID]bool),
	}
	reg := e.Metrics()
	cl.mPromotions = reg.Counter("kv.cluster.promotions")
	cl.mDemotions = reg.Counter("kv.cluster.demotions")
	cl.mRecruits = reg.Counter("kv.cluster.recruits")
	cl.mSyncs = reg.Counter("kv.cluster.syncs")
	cl.mShed = reg.Counter("kv.cluster.shed")
	cl.hOps = reg.Histogram("kv.op_cycles")

	// Shard i starts on Servers[i mod N] with the next Replicas-1 servers
	// (in ring order) as its in-sync backups.
	n := len(cfg.Servers)
	for i := 0; i < cfg.Shards; i++ {
		st := &shardState{primary: cfg.Servers[i%n]}
		for r := 1; r < cfg.Replicas; r++ {
			st.isr = append(st.isr, cfg.Servers[(i+r)%n])
		}
		cl.shards = append(cl.shards, st)
	}
	// Consistent-hash ring: VNodes points per shard, sorted by hash. Keys
	// resolve to the first vnode clockwise.
	for s := 0; s < cfg.Shards; s++ {
		for v := 0; v < cfg.VNodes; v++ {
			cl.ring = append(cl.ring, vnode{hash: ckHash(uint64(s)<<16 | uint64(v)), shard: s})
		}
	}
	sort.Slice(cl.ring, func(i, j int) bool { return cl.ring[i].hash < cl.ring[j].hash })
	for s := range cl.shards {
		cl.gShardReplicas = append(cl.gShardReplicas, reg.Gauge(fmt.Sprintf("kv.shard.%d.replicas", s)))
		cl.updateShardGauge(s)
	}

	cl.members = append(append([]topo.CoreID{}, cfg.Servers...), cfg.Spares...)
	sort.Slice(cl.members, func(i, j int) bool { return cl.members[i] < cl.members[j] })
	cl.spares = append([]topo.CoreID{}, cfg.Spares...)
	sort.Slice(cl.spares, func(i, j int) bool { return cl.spares[i] < cl.spares[j] })

	for _, c := range cl.members {
		cl.byCore[c] = newKVServer(cl, c)
	}
	// Full mesh between members: replication, acks and anti-entropy all ride
	// ordinary URPC channels homed at their receivers.
	for _, a := range cl.members {
		for _, b := range cl.members {
			if a == b {
				continue
			}
			ch := urpc.New(sys, a, b, urpc.Options{Slots: 16, Home: int(sys.Machine().Socket(b))})
			cl.byCore[a].out[b] = ch
			cl.byCore[b].in[a] = ch
			// Parallel boot: a replication/ack line arriving from another
			// partition is the receiving shard server's interrupt.
			rcv := b
			ch.OnRemoteDeliver = func() { cl.wakeServer(rcv) }
		}
	}
	// Seed every shard copy identically (the linearizability checker's
	// initial state): key k -> k*2654435761 + 1, as in NewKVStore.
	for k := uint64(0); k < uint64(cfg.Rows); k++ {
		s := cl.shardOfKey(k)
		v := k*2654435761 + 1
		cl.byCore[cl.shards[s].primary].data[s][k] = v
		for _, b := range cl.shards[s].isr {
			cl.byCore[b].data[s][k] = v
		}
	}
	for _, c := range cl.members {
		if !sys.LocalCore(c) {
			// Parallel boot: the server structure exists in every replica
			// (channel ends, seeded rows), but the loop runs only where the
			// core is local.
			continue
		}
		srv := cl.byCore[c]
		srv.proc = e.Spawn(fmt.Sprintf("kvshard@c%d", c), srv.run)
	}
	if net != nil {
		net.OnExcise(func(p *sim.Proc, observer, excised topo.CoreID) {
			cl.coreDown(p, excised)
		})
	}
	return cl
}

// updateShardGauge publishes shard s's live copy count (primary + in-sync
// backups) to its health gauge. Called after every shard-map mutation.
func (cl *KVCluster) updateShardGauge(s int) {
	st := cl.shards[s]
	n := int64(len(st.isr))
	if st.primary >= 0 {
		n++
	}
	cl.gShardReplicas[s].Set(n)
}

// emit records a control-plane instant when tracing is on.
func (cl *KVCluster) emit(p *sim.Proc, core topo.CoreID, name string, id, arg uint64) {
	if rec := cl.eng.Tracer(); rec != nil {
		rec.Emit(uint64(p.Now()), trace.Instant, trace.SubApp, int32(core), name, id, arg)
	}
}

// ckHash is a splitmix64-style mixer for ring points and keys.
func ckHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardOfKey resolves key -> shard on the consistent-hash ring.
func (cl *KVCluster) shardOfKey(key uint64) int {
	h := ckHash(key)
	i := sort.Search(len(cl.ring), func(j int) bool { return cl.ring[j].hash >= h })
	if i == len(cl.ring) {
		i = 0
	}
	return cl.ring[i].shard
}

// ShardOfKey resolves key -> shard on the consistent-hash ring (exported for
// the experiment harness, which attributes client operations to shards).
func (cl *KVCluster) ShardOfKey(key uint64) int { return cl.shardOfKey(key) }

// Stats returns a copy of the cluster's control-plane counters.
func (cl *KVCluster) Stats() ClusterStats { return cl.stats }

// Epoch returns the shard-map epoch (bumped on every membership change).
func (cl *KVCluster) Epoch() uint64 { return cl.epoch }

// Primary returns shard s's current primary (-1 if the shard is down).
func (cl *KVCluster) Primary(s int) topo.CoreID { return cl.shards[s].primary }

// Degraded reports whether shard s is below its replication target.
func (cl *KVCluster) Degraded(s int) bool { return cl.shards[s].syncing }

// Shards returns the shard count.
func (cl *KVCluster) Shards() int { return len(cl.shards) }

// KillCore fail-stops the server process on core c at the current virtual
// time (safe from an engine callback — fault.Injector's OnKill). The shard
// map is NOT updated: the cluster learns through backup-ack timeouts and the
// monitors' failure detection, like a real deployment would.
func (cl *KVCluster) KillCore(c topo.CoreID) {
	if srv, ok := cl.byCore[c]; ok && srv.proc != nil {
		cl.eng.Kill(srv.proc)
	}
}

// wakeServer notifies core c's shard server if its loop runs in this replica.
// A nil proc means the core is remote under a parallel boot — there the
// channel's delivery doorbell (OnRemoteDeliver) wakes the real server in its
// own partition's replica.
func (cl *KVCluster) wakeServer(c topo.CoreID) {
	if srv, ok := cl.byCore[c]; ok && srv.proc != nil {
		cl.eng.Wake(srv.proc)
	}
}

// coreDown is the failure notification: promote, demote, recruit. Excisions
// arrive once per observing monitor, so the first wins and the rest dedup.
func (cl *KVCluster) coreDown(p *sim.Proc, c topo.CoreID) {
	if cl.downSeen[c] {
		return
	}
	if _, member := cl.byCore[c]; !member {
		return // not ours (an unrelated core died)
	}
	cl.downSeen[c] = true
	cl.spares = removeCore(cl.spares, c)
	for s, st := range cl.shards {
		if st.syncing && st.target == c {
			// The recruit died mid-transfer; let maybeRecruit try another
			// spare instead of waiting out the sync deadline.
			st.target = -1
			st.syncing = false
		}
		if st.primary == c {
			// Promote the first live in-sync backup. Every acked write is on
			// every ISR member, so any of them is a safe choice.
			st.primary = -1
			for _, b := range st.isr {
				if !cl.downSeen[b] {
					st.primary = b
					break
				}
			}
			st.isr = removeCore(st.isr, c)
			if st.primary >= 0 {
				st.isr = removeCore(st.isr, st.primary)
				cl.epoch++
				cl.stats.Promotions++
				cl.mPromotions.Inc()
				cl.emit(p, st.primary, "kv.promote", uint64(s), uint64(st.primary))
				cl.wakeServer(st.primary)
			}
		} else if containsCore(st.isr, c) {
			st.isr = removeCore(st.isr, c)
			cl.epoch++
			cl.stats.Demotions++
			cl.mDemotions.Inc()
		}
		cl.updateShardGauge(s)
		cl.maybeRecruit(p, s)
	}
}

// demote removes a backup that stopped acking from shard s's in-sync set.
// Called by the primary BEFORE acking any write the backup did not confirm —
// the order that keeps "acked ⊆ every ISR member" true. The demoted core
// goes back to the spare pool: if it is merely slow (not dead), it can be
// recruited again, through a full re-sync.
func (cl *KVCluster) demote(p *sim.Proc, s int, b topo.CoreID) {
	st := cl.shards[s]
	if !containsCore(st.isr, b) {
		return
	}
	st.isr = removeCore(st.isr, b)
	cl.epoch++
	cl.stats.Demotions++
	cl.mDemotions.Inc()
	cl.updateShardGauge(s)
	if !cl.downSeen[b] && !containsCore(cl.spares, b) {
		cl.spares = append(cl.spares, b)
		sort.Slice(cl.spares, func(i, j int) bool { return cl.spares[i] < cl.spares[j] })
	}
	cl.emit(p, b, "kv.demote", uint64(s), uint64(b))
	cl.maybeRecruit(p, s)
}

// maybeRecruit drafts a spare into shard s if it is below its replication
// target and not already syncing one. The shard stays marked degraded
// (writes shed) until the anti-entropy transfer completes.
func (cl *KVCluster) maybeRecruit(p *sim.Proc, s int) {
	st := cl.shards[s]
	if st.primary < 0 || st.syncing {
		return
	}
	if 1+len(st.isr) >= cl.cfg.Replicas {
		st.syncing = false
		return
	}
	st.syncing = true
	for _, sp := range cl.spares {
		if !cl.downSeen[sp] && sp != st.primary {
			st.target = sp
			cl.spares = removeCore(cl.spares, sp)
			cl.epoch++
			cl.stats.Recruits++
			cl.mRecruits.Inc()
			cl.emit(p, sp, "kv.recruit", uint64(s), uint64(sp))
			cl.wakeServer(st.primary)
			return
		}
	}
	// No spare available: the shard stays degraded until demote/coreDown
	// returns one to the pool.
	st.target = -1
}

// syncDone installs the recruit as an in-sync member and lifts admission
// control.
func (cl *KVCluster) syncDone(p *sim.Proc, s int, b topo.CoreID) {
	st := cl.shards[s]
	st.isr = append(st.isr, b)
	sort.Slice(st.isr, func(i, j int) bool { return st.isr[i] < st.isr[j] })
	st.syncing = 1+len(st.isr) < cl.cfg.Replicas
	st.target = -1
	cl.epoch++
	cl.stats.Syncs++
	cl.mSyncs.Inc()
	cl.updateShardGauge(s)
	cl.emit(p, b, "kv.sync_done", uint64(s), uint64(b))
	if st.syncing {
		cl.maybeRecruit(p, s)
	}
}

// syncFailed presumes the recruit dead (it never acked the transfer) and
// tries the next spare.
func (cl *KVCluster) syncFailed(p *sim.Proc, s int, b topo.CoreID) {
	st := cl.shards[s]
	if !st.syncing || st.target != b {
		return
	}
	st.target = -1
	st.syncing = false // maybeRecruit re-raises it
	cl.maybeRecruit(p, s)
}

func removeCore(s []topo.CoreID, c topo.CoreID) []topo.CoreID {
	out := s[:0]
	for _, x := range s {
		if x != c {
			out = append(out, x)
		}
	}
	return out
}

func containsCore(s []topo.CoreID, c topo.CoreID) bool {
	for _, x := range s {
		if x == c {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Server process

// pendingWrite is one admitted client write moving through replication.
type pendingWrite struct {
	key, val uint64
	reqID    uint64
	client   topo.CoreID
	waiting  map[topo.CoreID]bool // ISR backups yet to ack
	deadline sim.Time
	sent     bool
}

// pendingSync is one in-flight anti-entropy transfer this primary drives.
type pendingSync struct {
	target   topo.CoreID
	syncID   uint64
	deadline sim.Time
}

type kvServer struct {
	cl   *KVCluster
	core topo.CoreID
	proc *sim.Proc

	in, out map[topo.CoreID]*urpc.Channel // member mesh

	clients     []topo.CoreID // connected client cores, connect order
	clientReq   map[topo.CoreID]*urpc.Channel
	clientRsp   map[topo.CoreID]*urpc.Channel
	clientProcs map[topo.CoreID]*sim.Proc

	data  map[int]map[uint64]uint64 // shard -> committed rows
	dedup map[int]map[uint64]uint64 // shard -> reqID -> response flags

	pending  map[int][]*pendingWrite // shard -> admitted writes, FIFO
	syncs    map[int]*pendingSync    // shard -> in-flight transfer
	syncRecv map[int]*syncBuffer     // shard -> transfer being received

	gPending *metrics.Gauge // admitted writes queued, all shards

	nextSyncID uint64
}

// syncBuffer accumulates an incoming anti-entropy transfer until its end
// marker; the snapshot replaces the local copy atomically at install time.
type syncBuffer struct {
	from topo.CoreID
	rows map[uint64]uint64
	dups map[uint64]uint64
}

func newKVServer(cl *KVCluster, core topo.CoreID) *kvServer {
	srv := &kvServer{
		cl: cl, core: core,
		in:          make(map[topo.CoreID]*urpc.Channel),
		out:         make(map[topo.CoreID]*urpc.Channel),
		clientReq:   make(map[topo.CoreID]*urpc.Channel),
		clientRsp:   make(map[topo.CoreID]*urpc.Channel),
		clientProcs: make(map[topo.CoreID]*sim.Proc),
		data:        make(map[int]map[uint64]uint64),
		dedup:       make(map[int]map[uint64]uint64),
		pending:     make(map[int][]*pendingWrite),
		syncs:       make(map[int]*pendingSync),
		syncRecv:    make(map[int]*syncBuffer),
		gPending:    cl.eng.Metrics().Gauge(fmt.Sprintf("kv.server.%d.pending", core)),
	}
	for s := 0; s < cl.cfg.Shards; s++ {
		srv.data[s] = make(map[uint64]uint64)
		srv.dedup[s] = make(map[uint64]uint64)
	}
	return srv
}

// busy reports whether the server holds protocol state that forbids parking:
// its deadlines are its failure detector.
func (srv *kvServer) busy() bool {
	for _, q := range srv.pending {
		if len(q) > 0 {
			return true
		}
	}
	return len(srv.syncs) > 0
}

func (srv *kvServer) run(p *sim.Proc) {
	p.SetDaemon(true)
	cl := srv.cl
	idle := 0
	var buf [16]urpc.Message
	for {
		progress := false
		// 1) Mesh traffic first: replication acks and anti-entropy answers
		// unblock pending client writes, and draining every ready repl
		// message before any snapshot is taken is what keeps a promoted
		// backup's transfer a superset of everything the dead primary
		// published.
		for _, src := range cl.members {
			ch, ok := srv.in[src]
			if !ok {
				continue
			}
			n := ch.RecvAll(p, buf[:])
			for i := 0; i < n; i++ {
				srv.handleMesh(p, src, buf[i])
			}
			if n > 0 {
				progress = true
			}
		}
		// 2) Client requests.
		for _, c := range srv.clients {
			n := srv.clientReq[c].RecvAll(p, buf[:])
			for i := 0; i < n; i++ {
				srv.handleClient(p, c, buf[i])
			}
			if n > 0 {
				progress = true
			}
		}
		// 3) Drive pending writes (send repl, collect acks, commit, demote
		// laggards) and anti-entropy transfers.
		if srv.serviceWrites(p) {
			progress = true
		}
		if srv.serviceSyncs(p) {
			progress = true
		}
		p.Sleep(100)
		if progress {
			idle = 0
			continue
		}
		idle++
		if idle < 40 || srv.busy() {
			p.Sleep(400)
			continue
		}
		p.Park()
		idle = 0
	}
}

// primaryOf reports whether this core currently leads shard s (charging the
// map lookup).
func (srv *kvServer) primaryOf(p *sim.Proc, s int) bool {
	p.Sleep(ckMapLookup)
	return srv.cl.shards[s].primary == srv.core
}

func (srv *kvServer) reply(p *sim.Proc, client topo.CoreID, val, flags, status, reqID uint64) {
	ch := srv.clientRsp[client]
	if ch.SendTimeout(p, urpc.Message{val, flags, status, reqID}, srv.cl.cfg.RequestTimeout) {
		if pr := srv.clientProcs[client]; pr != nil {
			srv.cl.eng.Wake(pr)
		}
	}
}

func (srv *kvServer) handleClient(p *sim.Proc, client topo.CoreID, m urpc.Message) {
	p.Sleep(ckServe)
	key, val, op, reqID := m[0], m[1], m[2], m[3]
	cl := srv.cl
	s := cl.shardOfKey(key)
	if !srv.primaryOf(p, s) {
		cl.stats.WrongEpoch++
		srv.reply(p, client, 0, 0, ckStatusWrongPrimary, reqID)
		return
	}
	switch op {
	case ckOpGet:
		// Reads serve the committed copy only: a write becomes visible at
		// its local apply, which happens strictly after full ISR replication
		// — so no read ever exposes data a fail-over could lose.
		v, found := srv.data[s][key]
		f := uint64(0)
		if found {
			f = 1
		}
		srv.reply(p, client, v, f, ckStatusOK, reqID)
	case ckOpPut:
		if flags, hit := srv.dedup[s][reqID]; hit {
			// Exactly-once: a retry of a write already committed (for
			// example acked by a primary that died before the client heard
			// it... or re-routed after a promotion) answers from the table.
			cl.stats.DedupHits++
			srv.reply(p, client, val, flags, ckStatusOK, reqID)
			return
		}
		if _, exists := srv.data[s][key]; !exists {
			// UPDATE of a missing row matches nothing; no state changes, so
			// nothing needs replicating. Record it for retry idempotence.
			srv.dedup[s][reqID] = 0
			srv.reply(p, client, val, 0, ckStatusOK, reqID)
			return
		}
		if cl.cfg.Mut == KVMutAckDrop {
			// Planted defect: apply and ack with no replication at all.
			p.Sleep(ckApply)
			srv.data[s][key] = val
			srv.dedup[s][reqID] = 1
			srv.reply(p, client, val, 1, ckStatusOK, reqID)
			return
		}
		st := cl.shards[s]
		if st.syncing || len(st.isr) == 0 {
			// Below replication target: an ack here could be a lie (no
			// surviving copy), so admission control sheds instead.
			cl.stats.Shed++
			cl.mShed.Inc()
			cl.emit(p, srv.core, "kv.shed", uint64(s), reqID)
			srv.reply(p, client, 0, 0, ckStatusDegraded, reqID)
			return
		}
		srv.pending[s] = append(srv.pending[s], &pendingWrite{
			key: key, val: val, reqID: reqID, client: client,
		})
		srv.gPending.Add(1)
	}
}

func (srv *kvServer) handleMesh(p *sim.Proc, src topo.CoreID, m urpc.Message) {
	cl := srv.cl
	op := m[2]
	s := int(m[4])
	switch op {
	case ckOpRepl:
		// Always apply and ack — even from a core the map has since demoted.
		// A stale primary's client ack necessarily lands after this apply,
		// so its write simply linearizes late; refusing would instead turn
		// its already-acked writes into losses.
		key, val, reqID := m[0], m[1], m[3]
		p.Sleep(ckApply)
		if _, hit := srv.dedup[s][reqID]; !hit {
			srv.data[s][key] = val
			srv.dedup[s][reqID] = 1
		}
		if ch, ok := srv.out[src]; ok {
			if ch.SendTimeout(p, urpc.Message{key, 1, ckOpReplAck, reqID, uint64(s)}, cl.cfg.ReplTimeout) {
				cl.wakeServer(src)
			}
		}
	case ckOpReplAck:
		reqID := m[3]
		if q := srv.pending[s]; len(q) > 0 && q[0].reqID == reqID && q[0].waiting != nil {
			delete(q[0].waiting, src)
		}
	case ckOpSyncRow:
		sb := srv.ensureSyncBuffer(s, src)
		sb.rows[m[0]] = m[1]
	case ckOpSyncDup:
		sb := srv.ensureSyncBuffer(s, src)
		sb.dups[m[0]] = m[1]
	case ckOpSyncEnd:
		// Install the snapshot (replacing the local copy — this core may
		// hold stale rows from an earlier demotion) and confirm.
		sb := srv.ensureSyncBuffer(s, src)
		p.Sleep(ckApply + sim.Time(len(sb.rows))*ckSyncRow/4)
		srv.data[s] = sb.rows
		srv.dedup[s] = sb.dups
		delete(srv.syncRecv, s)
		if ch, ok := srv.out[src]; ok {
			if ch.SendTimeout(p, urpc.Message{0, 0, ckOpSyncAck, m[3], uint64(s)}, cl.cfg.SyncTimeout) {
				cl.wakeServer(src)
			}
		}
	case ckOpSyncAck:
		ps, ok := srv.syncs[s]
		if !ok || ps.syncID != m[3] {
			return // stale ack for a transfer already abandoned
		}
		delete(srv.syncs, s)
		cl.syncDone(p, s, ps.target)
	}
}

func (srv *kvServer) ensureSyncBuffer(s int, from topo.CoreID) *syncBuffer {
	sb, ok := srv.syncRecv[s]
	if !ok || sb.from != from {
		sb = &syncBuffer{from: from, rows: make(map[uint64]uint64), dups: make(map[uint64]uint64)}
		srv.syncRecv[s] = sb
	}
	return sb
}

// serviceWrites drives each shard's head-of-line pending write one step.
// Collection is non-blocking state-machine style, never an awaited RPC: two
// cores that are primaries of different shards and backups of each other
// would deadlock if either blocked waiting for the other's ack.
func (srv *kvServer) serviceWrites(p *sim.Proc) bool {
	cl := srv.cl
	progress := false
	for s := 0; s < cl.cfg.Shards; s++ {
		q := srv.pending[s]
		if len(q) == 0 {
			continue
		}
		if cl.shards[s].primary != srv.core {
			// Demoted with writes in flight: never ack them (the new primary
			// owns the shard); tell the clients to re-resolve.
			for _, w := range q {
				srv.reply(p, w.client, 0, 0, ckStatusWrongPrimary, w.reqID)
			}
			srv.pending[s] = nil
			srv.gPending.Add(-int64(len(q)))
			progress = true
			continue
		}
		w := q[0]
		if !w.sent {
			st := cl.shards[s]
			w.waiting = make(map[topo.CoreID]bool, len(st.isr))
			for _, b := range st.isr {
				if srv.out[b].SendTimeout(p, urpc.Message{w.key, w.val, ckOpRepl, w.reqID, uint64(s)}, cl.cfg.ReplTimeout) {
					w.waiting[b] = true
					cl.wakeServer(b)
				} else {
					// Channel dead or ring jammed past the deadline: demote
					// now, before any ack could depend on this backup.
					cl.demote(p, s, b)
				}
			}
			w.sent = true
			w.deadline = p.Now() + cl.cfg.ReplTimeout
			progress = true
		}
		if len(w.waiting) == 0 {
			srv.commitWrite(p, s, w)
			srv.pending[s] = q[1:]
			srv.gPending.Add(-1)
			progress = true
			continue
		}
		if p.Now() >= w.deadline {
			// Laggards are demoted BEFORE the ack decision. Whoever did ack
			// still carries the write, so committing on the survivors keeps
			// the invariant; if nobody acked, the shard just lost its whole
			// in-sync set and the write cannot be safely acked at all.
			for _, b := range sortedCoreSet(w.waiting) {
				cl.demote(p, s, b)
			}
			w.waiting = make(map[topo.CoreID]bool)
			if len(cl.shards[s].isr) == 0 {
				cl.stats.Shed++
				cl.mShed.Inc()
				srv.reply(p, w.client, 0, 0, ckStatusDegraded, w.reqID)
				srv.pending[s] = q[1:]
			} else {
				srv.commitWrite(p, s, w)
				srv.pending[s] = q[1:]
			}
			srv.gPending.Add(-1)
			progress = true
		}
	}
	return progress
}

// commitWrite applies a fully-replicated write locally and acks the client —
// the linearization point.
func (srv *kvServer) commitWrite(p *sim.Proc, s int, w *pendingWrite) {
	p.Sleep(ckApply)
	srv.data[s][w.key] = w.val
	srv.dedup[s][w.reqID] = 1
	srv.reply(p, w.client, w.val, 1, ckStatusOK, w.reqID)
}

// serviceSyncs starts and times out anti-entropy transfers for shards this
// core leads. A transfer only starts once the shard's pending queue is dry
// (new writes are shed while degraded, so it drains), which makes the
// snapshot trivially consistent.
func (srv *kvServer) serviceSyncs(p *sim.Proc) bool {
	cl := srv.cl
	progress := false
	for s := 0; s < cl.cfg.Shards; s++ {
		st := cl.shards[s]
		if st.primary != srv.core {
			continue
		}
		if ps, ok := srv.syncs[s]; ok && p.Now() >= ps.deadline {
			delete(srv.syncs, s)
			cl.syncFailed(p, s, ps.target)
			progress = true
		}
		if _, ok := srv.syncs[s]; ok {
			continue
		}
		if !st.syncing || st.target < 0 || len(srv.pending[s]) > 0 {
			continue
		}
		srv.startSync(p, s, st.target)
		progress = true
	}
	return progress
}

// startSync streams the full shard copy — rows AND the dedup table, so
// exactly-once survives the transfer — to the recruit.
func (srv *kvServer) startSync(p *sim.Proc, s int, target topo.CoreID) {
	cl := srv.cl
	srv.nextSyncID++
	id := srv.nextSyncID
	ch := srv.out[target]
	// Wake the recruit before streaming: the transfer can be longer than the
	// ring, so the receiver must drain concurrently or the sends would stall
	// against a parked core until the sync deadline.
	cl.wakeServer(target)
	rows := sortedKeys(srv.data[s])
	dups := sortedKeys(srv.dedup[s])
	ok := true
	for _, k := range rows {
		p.Sleep(ckSyncRow)
		if !ch.SendTimeout(p, urpc.Message{k, srv.data[s][k], ckOpSyncRow, 0, uint64(s)}, cl.cfg.SyncTimeout) {
			ok = false
			break
		}
	}
	if ok {
		for _, k := range dups {
			p.Sleep(ckSyncRow)
			if !ch.SendTimeout(p, urpc.Message{k, srv.dedup[s][k], ckOpSyncDup, 0, uint64(s)}, cl.cfg.SyncTimeout) {
				ok = false
				break
			}
		}
	}
	if ok {
		ok = ch.SendTimeout(p, urpc.Message{uint64(len(rows)), uint64(len(dups)), ckOpSyncEnd, id, uint64(s)}, cl.cfg.SyncTimeout)
	}
	if !ok {
		cl.syncFailed(p, s, target)
		return
	}
	cl.wakeServer(target)
	srv.syncs[s] = &pendingSync{target: target, syncID: id, deadline: p.Now() + cl.cfg.SyncTimeout}
}

func sortedCoreSet(set map[topo.CoreID]bool) []topo.CoreID {
	out := make([]topo.CoreID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(m map[uint64]uint64) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------------
// Fault-aware client

// ClusterClient is a fault-aware caller: it connects to every member core up
// front (fail-over must not require new channel construction), runs each
// attempt under a deadline, and on ChannelDead / wrong-primary / degraded
// verdicts backs off with a seeded-jitter RetryPolicy, re-resolves the shard
// map, and retries against the current primary — same reqID, so writes stay
// exactly-once across fail-over.
type ClusterClient struct {
	cl   *KVCluster
	core topo.CoreID
	req  map[topo.CoreID]*urpc.Channel
	rsp  map[topo.CoreID]*urpc.Channel

	retry  urpc.RetryPolicy
	serial uint64
	id     uint64
}

// Connect builds a client on the given core. The retry policy's jitter
// stream is seeded from the engine RNG at construction — construction order
// is program order, so runs replay identically.
func (cl *KVCluster) Connect(core topo.CoreID) *ClusterClient {
	c := &ClusterClient{
		cl: cl, core: core,
		req: make(map[topo.CoreID]*urpc.Channel),
		rsp: make(map[topo.CoreID]*urpc.Channel),
		id:  uint64(core) + 1,
		retry: urpc.NewRetryPolicy(
			50_000, 800_000, 14, 0.2, sim.NewRNG(cl.eng.RNG().Uint64()),
		),
	}
	sys := cl.sys
	for _, m := range cl.members {
		c.req[m] = urpc.New(sys, core, m, urpc.Options{Slots: 8, Home: int(sys.Machine().Socket(m))})
		c.rsp[m] = urpc.New(sys, m, core, urpc.Options{Slots: 8, Home: int(sys.Machine().Socket(core))})
		srv := cl.byCore[m]
		srv.clients = append(srv.clients, core)
		srv.clientReq[core] = c.req[m]
		srv.clientRsp[core] = c.rsp[m]
		// Parallel boot: a request arriving from a cross-partition client is
		// the server's interrupt.
		dst := m
		c.req[m].OnRemoteDeliver = func() { cl.wakeServer(dst) }
		cl.wakeServer(m)
	}
	// Register the client proc lazily: the first request records it.
	return c
}

// call runs one request to completion across retries. Returns the response
// value and flags, or a typed error once the retry budget is spent:
// ErrDegraded if admission control was the last thing heard, otherwise
// ErrRetriesExhausted.
func (c *ClusterClient) call(p *sim.Proc, key, val, op, reqID uint64) (uint64, uint64, error) {
	start := p.Now()
	lastDegraded := false
	for attempt := 0; ; attempt++ {
		if c.retry.Exhausted(attempt) {
			if lastDegraded {
				return 0, 0, ErrDegraded
			}
			return 0, 0, ErrRetriesExhausted
		}
		if attempt > 0 {
			p.Sleep(c.retry.Gap(attempt - 1))
		}
		v, f, status, got := c.attempt(p, key, val, op, reqID)
		if got && status == ckStatusOK {
			// End-to-end latency including all retries — the tail the health
			// monitor watches for degradation.
			c.cl.hOps.Observe(uint64(p.Now() - start))
			return v, f, nil
		}
		lastDegraded = got && status == ckStatusDegraded
	}
}

// attempt runs a single deadline-bounded try against the current primary.
// got reports whether a verdict arrived at all (false: leaderless shard,
// dead channel, or deadline expiry — back off and re-resolve).
func (c *ClusterClient) attempt(p *sim.Proc, key, val, op, reqID uint64) (v, f, status uint64, got bool) {
	cl := c.cl
	p.Sleep(ckMapLookup)
	s := cl.shardOfKey(key)
	primary := cl.shards[s].primary
	if primary < 0 || cl.downSeen[primary] {
		return 0, 0, 0, false // shard leaderless right now
	}
	srv := cl.byCore[primary]
	if srv.clientProcs[c.core] == nil {
		srv.clientProcs[c.core] = p
	}
	reqCh, rspCh := c.req[primary], c.rsp[primary]
	if reqCh.Dead() {
		return 0, 0, 0, false
	}
	if !reqCh.SendTimeout(p, urpc.Message{key, val, op, reqID}, cl.cfg.RequestTimeout) {
		reqCh.MarkDead()
		return 0, 0, 0, false
	}
	cl.wakeServer(primary)
	deadline := p.Now() + cl.cfg.RequestTimeout
	for {
		remain := deadline - p.Now()
		if remain <= 0 {
			return 0, 0, 0, false
		}
		m, ok := rspCh.RecvTimeout(p, remain)
		if !ok {
			return 0, 0, 0, false
		}
		if m[3] != reqID {
			continue // stale response from an earlier attempt to this core
		}
		return m[0], m[1], m[2], true
	}
}

// Get performs a fault-tolerant GET. Traced as "kv.select" (same span
// protocol as KVClient) — one span covers all retries, ending only on
// success, so a request that never completed is an incomplete history op.
func (c *ClusterClient) Get(p *sim.Proc, key uint64) (uint64, bool, error) {
	rec := c.cl.eng.Tracer()
	var id uint64
	if rec != nil {
		id = c.cl.eng.Serial()<<20 | key
		rec.Emit(uint64(p.Now()), trace.AsyncBegin, trace.SubApp, int32(c.core), "kv.select", id, 0)
	}
	c.serial++
	v, f, err := c.call(p, key, 0, ckOpGet, c.id<<32|c.serial)
	if err != nil {
		return 0, false, err
	}
	if rec != nil {
		rec.Emit(uint64(p.Now()), trace.AsyncEnd, trace.SubApp, int32(c.core), "kv.select", id, 2*v+f)
	}
	return v, f == 1, nil
}

// Put performs a fault-tolerant PUT, reporting whether the key existed.
// Traced as "kv.update"; retries carry the same reqID, so the write applies
// exactly once no matter how many primaries it crossed.
func (c *ClusterClient) Put(p *sim.Proc, key, val uint64) (bool, error) {
	rec := c.cl.eng.Tracer()
	var id uint64
	if rec != nil {
		id = c.cl.eng.Serial()<<20 | key
		rec.Emit(uint64(p.Now()), trace.AsyncBegin, trace.SubApp, int32(c.core), "kv.update", id, val)
	}
	c.serial++
	_, f, err := c.call(p, key, val, ckOpPut, c.id<<32|c.serial)
	if err != nil {
		return false, err
	}
	if rec != nil {
		rec.Emit(uint64(p.Now()), trace.AsyncEnd, trace.SubApp, int32(c.core), "kv.update", id, f)
	}
	return f == 1, nil
}

// ---------------------------------------------------------------------------
// Failure detector

// StartFailureDetector spawns a heartbeat process that pings every member
// core round-robin from the given monitor. A ping to a dead member expires
// the monitor's op deadline, which excises the core from the view — and the
// excision hook drives promotion. Detection latency is therefore
// period + the monitor's ping deadline.
func (cl *KVCluster) StartFailureDetector(net *monitor.Network, from topo.CoreID, period sim.Time) {
	mon := net.Monitor(from)
	cl.eng.Spawn(fmt.Sprintf("kvhb@c%d", from), func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			for _, m := range cl.members {
				if m == from || cl.downSeen[m] || net.CoreFailed(from) {
					continue
				}
				mon.Ping(p, m)
			}
			p.Sleep(period)
		}
	})
}
