package apps

import (
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/threads"
	"multikernel/internal/topo"
)

// Barrier abstracts the synchronization primitive that differs between the
// multikernel (user-space spin barrier) and the baseline (futex-style kernel
// barrier) in the Figure 9 workloads.
type Barrier interface {
	Wait(th *threads.Thread)
}

// SpinBarrierAdapter adapts threads.SpinBarrier to the Barrier interface.
type SpinBarrierAdapter struct{ B *threads.SpinBarrier }

// Wait implements Barrier.
func (a SpinBarrierAdapter) Wait(th *threads.Thread) { a.B.Wait(th) }

// Workload is one compute-bound benchmark skeleton: the per-iteration
// compute volume and communication pattern of the original program, with
// synchronization left to the provided barrier.
type Workload struct {
	Name  string
	Iters int
	// Work is the total per-iteration compute volume in cycles, divided
	// evenly among the cores (strong scaling).
	Work sim.Time
	// Serial is the per-iteration serial fraction executed by thread 0 only
	// (Amdahl term).
	Serial sim.Time
	// BarriersPerIter is how many barrier crossings each iteration performs.
	BarriersPerIter int
	// SharedRMWs is the number of contended atomic updates (reductions,
	// bucket counters) each thread performs per iteration on shared lines.
	SharedRMWs int
	// AllToAll, when true, adds a per-iteration exchange where every thread
	// writes a line later read by every other thread (FT-style transpose).
	AllToAll bool
	// TaskQueue, when true, replaces static partitioning with a central
	// work queue protected by a mutex (radiosity-style).
	TaskQueue bool
}

// NASWorkloads returns the Figure 9 benchmark skeletons. Compute volumes are
// scaled so single-core runs take the right order of magnitude relative to
// each other (paper Figure 9's y-axes).
func NASWorkloads() []Workload {
	return []Workload{
		{Name: "CG", Iters: 40, Work: 18_000_000, BarriersPerIter: 4, SharedRMWs: 2},
		{Name: "FT", Iters: 12, Work: 160_000_000, BarriersPerIter: 2, AllToAll: true},
		{Name: "IS", Iters: 20, Work: 5_500_000, BarriersPerIter: 3, SharedRMWs: 8},
		{Name: "BarnesHut", Iters: 12, Work: 15_000_000, Serial: 450_000, BarriersPerIter: 2},
		{Name: "Radiosity", Iters: 10, Work: 60_000_000, BarriersPerIter: 1, TaskQueue: true},
	}
}

// RunCompute executes the workload on the given cores with the given barrier
// factory and returns total cycles to completion.
func RunCompute(team *threads.Team, wl Workload, cores []topo.CoreID, newBarrier func(n int) Barrier) sim.Time {
	e := team.Sys().Memory() // just for allocation below
	n := len(cores)
	bar := newBarrier(n)
	sys := team.Sys()

	// Shared state for communication patterns.
	var reduction memory.Region
	if wl.SharedRMWs > 0 {
		reduction = e.AllocLines(1, 0)
	}
	var exchange memory.Region
	if wl.AllToAll {
		exchange = e.AllocLines(n, 0)
	}
	var queue *threads.Mutex
	var queueState memory.Region
	if wl.TaskQueue {
		queue = team.NewMutex(0)
		queueState = e.AllocLines(1, 0)
	}

	var end sim.Time
	for i, core := range cores {
		i, core := i, core
		team.Go(-1, core, wl.Name, func(th *threads.Thread) {
			perIter := wl.Work / sim.Time(n)
			for it := 0; it < wl.Iters; it++ {
				if wl.Serial > 0 {
					if i == 0 {
						th.Compute(wl.Serial)
					}
					bar.Wait(th)
				}
				if wl.TaskQueue {
					// Pull chunks from the central queue until the
					// iteration's work is consumed.
					const chunk = 2_000_000
					for done := sim.Time(0); done < perIter; done += chunk {
						queue.Lock(th)
						th.Load(queueState.Base)
						th.Store(queueState.Base, uint64(it))
						queue.Unlock(th)
						th.Compute(chunk)
					}
				} else {
					th.Compute(perIter)
				}
				for r := 0; r < wl.SharedRMWs; r++ {
					sys.RMW(th.Proc(), core, reduction.Base, func(v uint64) uint64 { return v + 1 })
				}
				if wl.AllToAll {
					th.Store(exchange.LineAt(i), uint64(it))
					bar.Wait(th)
					for j := 0; j < n; j++ {
						th.Load(exchange.LineAt(j))
					}
				}
				for b := 0; b < wl.BarriersPerIter; b++ {
					bar.Wait(th)
				}
				if th.Proc().Now() > end {
					end = th.Proc().Now()
				}
			}
		})
	}
	team.Engine().Run()
	return end
}
