package cache

import (
	"fmt"
	"math/bits"
	"strings"

	"multikernel/internal/topo"
)

// maxCores bounds the holder-set width: a 16×16-socket mesh of quad-core
// sockets (topo.Mesh(16)).
const maxCores = 1024

// coreWords is the number of 64-bit words in a CoreSet.
const coreWords = maxCores / 64

// CoreSet is a fixed-width bitmask of cores — the directory's sharer set for
// one line. It is a comparable value type (plain array), so views snapshot by
// assignment and equality is ==.
type CoreSet [coreWords]uint64

// OnlyCore returns the set containing exactly core c.
func OnlyCore(c topo.CoreID) CoreSet {
	var s CoreSet
	s.Add(c)
	return s
}

// Has reports whether c is in the set.
func (s *CoreSet) Has(c topo.CoreID) bool {
	return s[uint(c)/64]&(1<<(uint(c)%64)) != 0
}

// Add inserts c.
func (s *CoreSet) Add(c topo.CoreID) { s[uint(c)/64] |= 1 << (uint(c) % 64) }

// Del removes c.
func (s *CoreSet) Del(c topo.CoreID) { s[uint(c)/64] &^= 1 << (uint(c) % 64) }

// Empty reports whether the set has no members.
func (s *CoreSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s *CoreSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Only reports whether the set is exactly {c}.
func (s *CoreSet) Only(c topo.CoreID) bool { return *s == OnlyCore(c) }

// HasOther reports whether any core besides c is a member.
func (s *CoreSet) HasOther(c topo.CoreID) bool {
	o := *s
	o.Del(c)
	return !o.Empty()
}

// ForEach calls fn for every member in ascending core order.
func (s *CoreSet) ForEach(fn func(topo.CoreID)) {
	for i, w := range s {
		base := i * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(topo.CoreID(base + b))
			w &= w - 1
		}
	}
}

// String renders the set as the hex of its non-zero span, for diagnostics.
func (s CoreSet) String() string {
	hi := 0
	for i, w := range s {
		if w != 0 {
			hi = i
		}
	}
	var b strings.Builder
	for i := hi; i >= 0; i-- {
		if i == hi {
			fmt.Fprintf(&b, "%x", s[i])
		} else {
			fmt.Fprintf(&b, "%016x", s[i])
		}
	}
	return "0x" + b.String()
}
