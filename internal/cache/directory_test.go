package cache

import (
	"bytes"
	"testing"

	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Directory-mode mirror of the exhaustive MOESI transition table: the same
// 25 (state × probe) pairs, with the protocol running over home-node sharer
// bitmaps and targeted probes instead of broadcast snooping. The protocol
// state machine must be identical — only latencies and traffic differ — and
// it must stay identical when the three actors are spread across a mesh's
// sockets rather than packed into the paper machine.

// dirRig runs the transition table with arbitrary local/remote/helper cores
// under a chosen coherence mode.
type dirRig struct {
	*rig
	local, remote, helper topo.CoreID
}

func newDirRig(m *topo.Machine, mode CoherenceMode, local, remote, helper topo.CoreID) *dirRig {
	r := newRig(m)
	r.sys.SetMode(mode)
	return &dirRig{rig: r, local: local, remote: remote, helper: helper}
}

func (r *dirRig) on(fn func(p *sim.Proc)) {
	r.e.Spawn("op", func(p *sim.Proc) { fn(p) })
	r.e.Run()
}

func (r *dirRig) load(c topo.CoreID)  { r.on(func(p *sim.Proc) { r.sys.Load(p, c, moesiAddr) }) }
func (r *dirRig) store(c topo.CoreID) { r.on(func(p *sim.Proc) { r.sys.Store(p, c, moesiAddr, 1) }) }
func (r *dirRig) flush(c topo.CoreID) { r.on(func(p *sim.Proc) { r.sys.Flush(p, c, moesiAddr) }) }

func (r *dirRig) enter(s State) {
	switch s {
	case Invalid:
	case Shared:
		r.load(r.local)
		r.load(r.helper)
	case Exclusive:
		r.load(r.local)
	case Modified:
		r.store(r.local)
	case Owned:
		r.store(r.local)
		r.load(r.helper)
	}
}

func TestDirectoryTransitionTable(t *testing.T) {
	type probe struct {
		name string
		do   func(r *dirRig)
	}
	probes := []probe{
		{"local-load", func(r *dirRig) { r.load(r.local) }},
		{"local-store", func(r *dirRig) { r.store(r.local) }},
		{"remote-load", func(r *dirRig) { r.load(r.remote) }},
		{"remote-store", func(r *dirRig) { r.store(r.remote) }},
		{"local-flush", func(r *dirRig) { r.flush(r.local) }},
	}
	// want[state][probe] = {state of local, remote, helper} afterwards —
	// byte-for-byte the broadcast table of TestMOESITransitionTable.
	want := map[State]map[string][3]State{
		Invalid: {
			"local-load":   {Exclusive, Invalid, Invalid},
			"local-store":  {Modified, Invalid, Invalid},
			"remote-load":  {Invalid, Exclusive, Invalid},
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Invalid},
		},
		Shared: {
			"local-load":   {Shared, Invalid, Shared},
			"local-store":  {Modified, Invalid, Invalid},
			"remote-load":  {Shared, Shared, Shared},
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Shared},
		},
		Exclusive: {
			"local-load":   {Exclusive, Invalid, Invalid},
			"local-store":  {Modified, Invalid, Invalid},
			"remote-load":  {Shared, Shared, Invalid},
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Invalid},
		},
		Modified: {
			"local-load":   {Modified, Invalid, Invalid},
			"local-store":  {Modified, Invalid, Invalid},
			"remote-load":  {Owned, Shared, Invalid},
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Invalid},
		},
		Owned: {
			"local-load":   {Owned, Invalid, Shared},
			"local-store":  {Modified, Invalid, Invalid},
			"remote-load":  {Owned, Shared, Shared},
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Shared},
		},
	}

	// Two placements: the paper machine's layout (local and remote share a
	// socket), and three distinct sockets of a scaled mesh, where every probe
	// is a true cross-fabric directory transaction.
	rigs := []struct {
		name                  string
		mk                    func() *topo.Machine
		local, remote, helper topo.CoreID
	}{
		{"amd2x2", topo.AMD2x2, 0, 1, 2},
		{"mesh-2", func() *topo.Machine { return topo.Mesh(2) }, 0, 5, 10},
	}
	for _, rc := range rigs {
		for _, start := range []State{Invalid, Shared, Exclusive, Modified, Owned} {
			for _, pr := range probes {
				t.Run(rc.name+"/"+start.String()+"/"+pr.name, func(t *testing.T) {
					r := newDirRig(rc.mk(), Directory, rc.local, rc.remote, rc.helper)
					defer r.e.Close()
					r.enter(start)
					if got := r.sys.StateOf(r.local, moesiAddr); got != start {
						t.Fatalf("setup: local core in %v, want %v", got, start)
					}
					pr.do(r)
					w := want[start][pr.name]
					for i, exp := range w {
						c := []topo.CoreID{r.local, r.remote, r.helper}[i]
						if got := r.sys.StateOf(c, moesiAddr); got != exp {
							t.Errorf("core %d: got %v, want %v", c, got, exp)
						}
					}
					r.sys.CheckInvariants()
				})
			}
		}
	}
}

// probeRecorder captures the probe counts the audit hook reports on upgrades.
type probeRecorder struct{ upgrades []int }

func (pr *probeRecorder) Transition(_ memory.LineID, r Reason, _ topo.CoreID, _, _ LineView, probes int) {
	if r == AuditUpgrade {
		pr.upgrades = append(pr.upgrades, probes)
	}
}

// Directory mode probes exactly the actual sharers; broadcast on a
// snoop-costed machine probes every remote socket no matter how few copies
// exist. This is the `cache.probe_fanout` split the experiment reports.
func TestProbeFanoutByMode(t *testing.T) {
	m := topo.Mesh(4) // 16 sockets, 64 cores
	// sharers: cores 0, 4, 8 (sockets 0, 1, 2); writer: core 12 (socket 3).
	run := func(mode CoherenceMode) []int {
		r := newRig(m)
		defer r.e.Close()
		r.sys.SetMode(mode)
		rec := &probeRecorder{}
		r.sys.SetAudit(rec)
		a := r.mem.AllocLines(1, 0).Base
		r.runOn(func(p *sim.Proc) {
			for _, c := range []topo.CoreID{0, 4, 8} {
				r.sys.Load(p, c, a)
			}
			r.sys.Store(p, 12, a, 1)
		})
		return rec.upgrades
	}
	if got := run(Directory); len(got) != 1 || got[0] != 3 {
		t.Fatalf("directory upgrade probes = %v, want [3]", got)
	}
	if got := run(Broadcast); len(got) != 1 || got[0] != m.NSockets-1 {
		t.Fatalf("broadcast upgrade probes = %v, want [%d]", got, m.NSockets-1)
	}
}

// The crossover itself, in miniature: with few sockets the broadcast snoop
// is cheaper than the directory indirection; with many it is dearer. Same
// workload, same machine size axis the mkbench coherence experiment sweeps.
func TestCoherenceModeCrossover(t *testing.T) {
	upgradeLat := func(m *topo.Machine, mode CoherenceMode) sim.Time {
		r := newRig(m)
		defer r.e.Close()
		r.sys.SetMode(mode)
		a := r.mem.AllocLines(1, 0).Base
		// One remote sharer, then a cross-socket writer upgrade.
		r.runOn(func(p *sim.Proc) { r.sys.Load(p, 0, a) })
		writer := topo.CoreID(m.CoresPerSocket) // socket 1
		return r.runOn(func(p *sim.Proc) { r.sys.RMW(p, writer, a, func(v uint64) uint64 { return v + 1 }) })
	}
	small := topo.Mesh(2) // 4 sockets: snoop extra 3*4=12 < dir 52
	if b, d := upgradeLat(small, Broadcast), upgradeLat(small, Directory); b >= d {
		t.Fatalf("mesh-2: broadcast %d not < directory %d", b, d)
	}
	large := topo.Mesh(6) // 36 sockets: snoop extra 35*4=140 > dir 52
	if b, d := upgradeLat(large, Broadcast), upgradeLat(large, Directory); d >= b {
		t.Fatalf("mesh-6: directory %d not < broadcast %d", d, b)
	}
}

// Directory state (wide sharer bitmaps past core 64, plus the mode itself)
// must survive a checkpoint/restore round trip.
func TestDirectoryCheckpointRoundTrip(t *testing.T) {
	m := topo.Mesh(6) // 144 cores: sharer bitmaps need more than one word
	r := newRig(m)
	defer r.e.Close()
	r.sys.SetMode(Directory)
	a := r.mem.AllocLines(1, 0).Base
	sharers := []topo.CoreID{0, 63, 64, 100, 143}
	r.runOn(func(p *sim.Proc) {
		r.sys.Store(p, 143, a, 7)
		for _, c := range sharers {
			r.sys.Load(p, c, a)
		}
	})
	var img bytes.Buffer
	if err := r.sys.CheckpointState(&img); err != nil {
		t.Fatal(err)
	}

	r2 := newRig(m)
	defer r2.e.Close()
	if err := r2.sys.RestoreState(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r2.sys.Mode() != Directory {
		t.Fatalf("restored mode %v, want directory", r2.sys.Mode())
	}
	hs := r2.sys.HomeSharers(a.Line())
	for _, c := range sharers {
		if !hs.Has(c) {
			t.Fatalf("restored sharer bitmap %v missing core %d", hs, c)
		}
	}
	if got := hs.Count(); got != len(sharers) {
		t.Fatalf("restored sharer count %d, want %d", got, len(sharers))
	}
	if got := r2.sys.StateOf(143, a); got != Owned {
		t.Fatalf("restored owner state %v, want Owned", got)
	}
}
