package cache

import (
	"testing"

	"multikernel/internal/topo"
)

func TestCoreSetBasics(t *testing.T) {
	var s CoreSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	members := []topo.CoreID{0, 1, 63, 64, 500, 1023}
	for _, c := range members {
		s.Add(c)
	}
	s.Add(63) // idempotent
	if s.Count() != len(members) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(members))
	}
	for _, c := range members {
		if !s.Has(c) {
			t.Errorf("Has(%d) = false", c)
		}
	}
	if s.Has(2) || s.Has(512) {
		t.Error("Has reports a non-member")
	}
	if s.Only(0) {
		t.Error("Only(0) on a 6-member set")
	}
	if !s.HasOther(0) {
		t.Error("HasOther(0) = false with five other members")
	}
	s.Del(1023)
	s.Del(1023) // idempotent
	if s.Has(1023) || s.Count() != len(members)-1 {
		t.Fatal("Del did not remove 1023 exactly once")
	}
}

// ForEach must visit members in ascending core order — the directory's
// probe-order determinism depends on it.
func TestCoreSetForEachAscending(t *testing.T) {
	var s CoreSet
	want := []topo.CoreID{3, 64, 65, 127, 128, 700, 1023}
	// Insert out of order; iteration order must not care.
	for _, c := range []topo.CoreID{1023, 3, 128, 65, 700, 64, 127} {
		s.Add(c)
	}
	var got []topo.CoreID
	s.ForEach(func(c topo.CoreID) { got = append(got, c) })
	if len(got) != len(want) {
		t.Fatalf("visited %d members, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit %d = core %d, want %d (ascending order)", i, got[i], want[i])
		}
	}
}

func TestCoreSetOnlyAndSnapshot(t *testing.T) {
	s := OnlyCore(77)
	if !s.Only(77) || s.Count() != 1 || s.HasOther(77) {
		t.Fatal("OnlyCore(77) is not exactly {77}")
	}
	// Value semantics: a copied view must not alias later mutations.
	snap := s
	s.Add(78)
	if snap.Has(78) {
		t.Fatal("snapshot aliased the live set")
	}
	if snap != OnlyCore(77) {
		t.Fatal("comparable value equality broken")
	}
}

func TestCoreSetString(t *testing.T) {
	var s CoreSet
	if got := s.String(); got != "0x0" {
		t.Errorf("empty String = %q, want 0x0", got)
	}
	s.Add(4)
	s.Add(64)
	if got := s.String(); got != "0x10000000000000010" {
		t.Errorf("String = %q, want 0x10000000000000010", got)
	}
}
