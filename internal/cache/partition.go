// Partition support: running one cache.System replica per ParallelEngine
// partition.
//
// The multikernel treats shared memory as a message channel (URPC rings, ack
// lines, bulk pools): every such region has exactly one writing core and one
// reading core. That discipline is what makes the boot path parallelizable —
// each partition holds a complete replica of the hardware models (memory,
// directory, fabric), built by an identical construction sequence so
// addresses and channel ids line up across replicas, and only the regions
// registered through ShareRegion carry data between them. A store to a shared
// region in the writer's replica forwards the whole cache line through the
// ParallelEngine's cross-partition outbox; delivery in the reader's replica
// lands the data in memory and re-points the directory at the writer, so the
// reader's next miss charges the same owner-forwarded fill a serial run
// would.
//
// The visibility model this buys is delayed-but-deterministic: a forwarded
// line becomes readable in the reader's replica exactly one conservative
// lookahead after the store, never earlier (the epoch barrier forbids it) and
// never later (outboxes merge at the next barrier in (source, send-order)
// order). Results are a pure function of (seed, partition count) — worker
// count only changes wall-clock time. See DESIGN.md §11 for the derivation
// and the honest statement of how this differs from the single-engine
// schedule.
package cache

import (
	"fmt"

	"multikernel/internal/memory"
	"multikernel/internal/topo"
)

// sharedRegion is one registered single-writer cross-partition region.
type sharedRegion struct {
	base   memory.Addr
	limit  memory.Addr
	writer topo.CoreID // the one core that stores into the region
	reader topo.CoreID // the one core that loads from it
	wpart  int
	rpart  int
	// onDeliver runs in the reader's replica after each delivered line —
	// the cross-partition analogue of the sender's doorbell (URPC wires it
	// to the parked-receiver wake path).
	onDeliver func()
}

// partState holds a replica's view of the partitioning. nil on an
// unpartitioned (serial) system, which keeps the hot-path cost of the
// partition checks at one predicted branch.
type partState struct {
	pm   *topo.PartitionMap
	self int
	// send enqueues fn on dst's engine one lookahead ahead, through the
	// ParallelEngine outbox (core.BootParallel binds it to pe.Send).
	send  func(dst int, fn func())
	peers []*System // all replicas, indexed by partition; peers[self] == owner

	// regions in registration order. Construction order is identical in
	// every replica, so an index here names the same region everywhere —
	// that is what lets a forwarding closure address the destination
	// replica's region table.
	regions []*sharedRegion
	// fwd maps lines this replica forwards on store (writer is local).
	fwd map[memory.LineID]int
	// suppress disables store forwarding while StoreLine writes words 1..7
	// (the whole line forwards once, after the last word).
	suppress bool
}

// SetPartition marks this system as partition self's replica of a
// parallel-booted machine. Must be called before any cache activity; send
// must deliver with at least the engine's lookahead delay (BootParallel binds
// pe.Send). Registering is what arms LocalCore and ShareRegion.
func (s *System) SetPartition(pm *topo.PartitionMap, self int, send func(dst int, fn func())) {
	if s.part != nil {
		panic("cache: SetPartition called twice")
	}
	s.part = &partState{
		pm:   pm,
		self: self,
		send: send,
		fwd:  make(map[memory.LineID]int),
	}
}

// SetPeers installs the full replica set (indexed by partition) so forwarding
// closures can address the destination replica. Called by BootParallel once
// every replica exists.
func (s *System) SetPeers(peers []*System) {
	if s.part == nil {
		panic("cache: SetPeers on an unpartitioned system")
	}
	s.part.peers = peers
}

// Partition returns this replica's partition index, or -1 when the system is
// unpartitioned.
func (s *System) Partition() int {
	if s.part == nil {
		return -1
	}
	return s.part.self
}

// LocalCore reports whether core c belongs to this replica's partition.
// Unpartitioned systems own every core. Every proc-spawning site (monitors,
// app services, netstack drivers) consults this so a replica only runs the
// software of its own cores.
func (s *System) LocalCore(c topo.CoreID) bool {
	return s.part == nil || s.part.pm.PartOfCore(c) == s.part.self
}

// ShareRegion registers reg as a single-writer communication region from
// writer to reader. On an unpartitioned system, or when both cores share a
// partition, it is a no-op. In the writer's replica every store to the region
// forwards the full line to the reader's partition; in the reader's replica
// onDeliver (may be nil) runs after each delivered line. Call sites must
// execute in identical order in every replica — region indices are the
// cross-replica addressing scheme.
func (s *System) ShareRegion(reg memory.Region, writer, reader topo.CoreID, onDeliver func()) {
	pt := s.part
	if pt == nil {
		return
	}
	wp, rp := pt.pm.PartOfCore(writer), pt.pm.PartOfCore(reader)
	if wp == rp {
		return
	}
	r := &sharedRegion{
		base: reg.Base, limit: reg.Base + memory.Addr(reg.Bytes),
		writer: writer, reader: reader, wpart: wp, rpart: rp,
		onDeliver: onDeliver,
	}
	idx := len(pt.regions)
	pt.regions = append(pt.regions, r)
	if wp == pt.self {
		for id := r.base.Line(); id.Base() < r.limit; id++ {
			if old, dup := pt.fwd[id]; dup {
				panic(fmt.Sprintf("cache: line %#x shared by regions %d and %d (single-writer regions must not overlap)", id, old, idx))
			}
			pt.fwd[id] = idx
		}
	}
}

// maybeForward ships the line containing a to its reader partition if this
// replica writes a registered shared region through it. Runs after the store
// has landed in local memory, so the forwarded payload is the full
// post-store line image.
func (s *System) maybeForward(a memory.Addr) {
	pt := s.part
	if pt == nil || pt.suppress {
		return
	}
	idx, ok := pt.fwd[a.Line()]
	if !ok {
		return
	}
	r := pt.regions[idx]
	base := a.Line().Base()
	vals := s.mem.LoadLine(base)
	peer := pt.peers[r.rpart]
	pt.send(r.rpart, func() {
		peer.remoteStore(idx, base, vals)
	})
}

// MirrorBytes forwards a raw byte range of a shared region this replica
// writes — the path for bulk-pool payloads written through
// Memory().StoreBytes, which bypasses the per-store hook. No-op when the
// range is not part of a forwarded region (including the serial engine).
func (s *System) MirrorBytes(a memory.Addr, b []byte) {
	pt := s.part
	if pt == nil || len(b) == 0 {
		return
	}
	idx, ok := pt.fwd[a.Line()]
	if !ok {
		return
	}
	r := pt.regions[idx]
	payload := append([]byte(nil), b...)
	peer := pt.peers[r.rpart]
	pt.send(r.rpart, func() {
		peer.remoteBytes(idx, a, payload)
	})
}

// remoteStore lands one forwarded line in this (the reader's) replica: data
// into memory, directory re-pointed at the writing core — so the reader's
// next access misses and charges the owner-forwarded fill exactly as the
// serial schedule would — then the region's doorbell.
func (s *System) remoteStore(idx int, base memory.Addr, vals [memory.WordsPerLine]uint64) {
	r := s.part.regions[idx]
	l := s.lineFor(base)
	var before LineView
	if s.audit != nil {
		before = l.view()
	}
	for i := 0; i < memory.WordsPerLine; i++ {
		s.mem.StoreWord(base+memory.Addr(i*8), vals[i])
	}
	l.holders = OnlyCore(r.writer)
	l.owner = r.writer
	l.dirty = true
	if s.audit != nil {
		s.audit.Transition(base.Line(), AuditRemote, r.writer, before, l.view(), 0)
	}
	if r.onDeliver != nil {
		r.onDeliver()
	}
}

// remoteBytes lands a forwarded byte range: memory content plus a directory
// reset of every covered line (the writer authored them all).
func (s *System) remoteBytes(idx int, a memory.Addr, b []byte) {
	r := s.part.regions[idx]
	s.mem.StoreBytes(a, b)
	first := a.Line()
	last := (a + memory.Addr(len(b)) - 1).Line()
	for id := first; id <= last; id++ {
		l := s.lineFor(id.Base())
		var before LineView
		if s.audit != nil {
			before = l.view()
		}
		l.holders = OnlyCore(r.writer)
		l.owner = r.writer
		l.dirty = true
		if s.audit != nil {
			s.audit.Transition(id, AuditRemote, r.writer, before, l.view(), 0)
		}
	}
	if r.onDeliver != nil {
		r.onDeliver()
	}
}

// String renders the region for audit/debug dumps.
func (r *sharedRegion) String() string {
	return fmt.Sprintf("region[%#x,%#x) c%d(p%d)->c%d(p%d)", r.base, r.limit, r.writer, r.wpart, r.reader, r.rpart)
}
