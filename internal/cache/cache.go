// Package cache models the cache hierarchy and MOESI coherence protocol of a
// simulated machine. It is the mechanism behind every microbenchmark in the
// paper: shared-memory updates, URPC message transfer, TLB-shootdown
// messaging and loopback networking all reduce to sequences of coherent
// loads and stores whose latency, queuing and interconnect traffic this
// package computes.
//
// The model is line-granular and infinite-capacity (the evaluation's working
// sets are tiny; coherence misses, not capacity misses, dominate). Each line
// tracks a holder set and an owner, and carries a FIFO transfer queue: a
// coherence transaction occupies the line for its duration, so contended
// lines serialize requesters — the effect that makes shared-memory updates
// degrade linearly with core count (paper Figure 3).
package cache

import (
	"fmt"

	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// CoherenceMode selects how write upgrades and fills locate and invalidate
// remote copies.
type CoherenceMode uint8

const (
	// Broadcast snoops every socket on each coherence transaction — the
	// HyperTransport behaviour of the paper machines. On machines with a
	// nonzero SnoopPerSocket cost the probe fan-out and latency grow with the
	// socket count regardless of how many copies actually exist.
	Broadcast CoherenceMode = iota
	// Directory consults the line's home-node sharer bitmap and probes only
	// the actual holders, paying a flat DirLookup indirection instead — the
	// protocol that keeps scaling when broadcast collapses (§2.1).
	Directory
)

func (m CoherenceMode) String() string {
	switch m {
	case Broadcast:
		return "broadcast"
	case Directory:
		return "directory"
	}
	return "?"
}

// State is a MOESI line state as seen by one cache.
type State uint8

// MOESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return "?"
}

// line is the global directory entry for one cache line.
type line struct {
	holders CoreSet     // cores with a valid copy
	owner   topo.CoreID // core in M/O/E state, or -1
	dirty   bool        // owner holds M or O (memory stale)
	// xferStore marks the current/most recent occupancy of res as an
	// ownership (store) transfer: a reader that queued behind it receives
	// the line by cache-to-cache forwarding at a discount, rather than
	// launching a fresh fetch — requests outstanding at the home node are
	// answered as soon as the writer's transaction completes.
	xferStore bool
	res       *sim.Resource
}

// forwardLat is the cost of the directory forwarding a line to a reader
// whose request was already queued when the writer's transfer completed.
const forwardLat = 90

func (l *line) holds(c topo.CoreID) bool { return l.holders.Has(c) }

func (l *line) view() LineView { return LineView{Holders: l.holders, Owner: l.owner, Dirty: l.dirty} }

// LineView is an audit-time snapshot of one line's directory entry.
type LineView struct {
	Holders CoreSet     // cores with a valid copy
	Owner   topo.CoreID // core in M/O/E state, or -1
	Dirty   bool        // memory is stale; the owner holds the only current data
}

// Reason classifies a directory transition reported to an Audit hook.
type Reason uint8

const (
	// AuditFillMem: a fill served from memory (no cached copy was current).
	AuditFillMem Reason = iota
	// AuditFillShared: a fill served from memory while clean sharers exist.
	AuditFillShared
	// AuditFillOwner: a fill forwarded from the owning cache.
	AuditFillOwner
	// AuditUpgrade: a write upgrade that invalidated all other copies;
	// probes carries the probe fan-out.
	AuditUpgrade
	// AuditDirty: the owner's first store dirtied a clean line (silent E→M
	// upgrade, or the write completing an ownership acquisition).
	AuditDirty
	// AuditFlush: a clflush-style eviction of one core's copy.
	AuditFlush
	// AuditDMA: a non-coherent device write invalidated every cached copy.
	AuditDMA
	// AuditRemote: a cross-partition delivery landed a forwarded line in this
	// replica (parallel boot only): the directory is re-pointed at the remote
	// writer so the next local access charges an owner-forwarded fill.
	AuditRemote
)

func (r Reason) String() string {
	switch r {
	case AuditFillMem:
		return "fill_mem"
	case AuditFillShared:
		return "fill_shared"
	case AuditFillOwner:
		return "fill_owner"
	case AuditUpgrade:
		return "upgrade"
	case AuditDirty:
		return "dirty"
	case AuditFlush:
		return "flush"
	case AuditDMA:
		return "dma"
	case AuditRemote:
		return "remote"
	}
	return "?"
}

// Audit observes every MOESI directory transition: the schedule-exploration
// checker (internal/check) installs one to verify single-owner, stale-read
// and probe-conservation invariants on each step. The hook runs inline on
// coherence paths, so implementations must be cheap and must not re-enter
// the cache system; a nil audit (the default) costs one predicted branch.
type Audit interface {
	Transition(id memory.LineID, r Reason, core topo.CoreID, before, after LineView, probes int)
}

// Stats are per-core access counters.
type Stats struct {
	Hits         uint64
	Misses       uint64 // all fills, local or remote
	RemoteMisses uint64 // fills served across the interconnect
	Upgrades     uint64 // write upgrades that invalidated other copies
	Invalidated  uint64 // times this core's copy was invalidated by others
}

// System is the coherent cache system of one machine.
type System struct {
	mach  *topo.Machine
	mem   *memory.Memory
	fab   *interconnect.Fabric
	eng   *sim.Engine
	lines map[memory.LineID]*line
	stats []Stats

	// dirFree models each socket's home-node directory/memory-controller as
	// a virtual-time server: every coherence transaction on a line homed at
	// socket S occupies S's directory for dirService cycles. When many cores
	// hammer lines with a common home, the directory saturates and waits
	// grow linearly with the number of requesters — the dominant effect in
	// Figure 3's shared-memory curves and one of the reasons NUMA-aware
	// buffer placement (spreading homes across sockets) wins in Figure 6.
	dirFree []sim.Time

	// inflight counts each core's outstanding asynchronous store misses;
	// when the store buffer / MSHR budget is exhausted, further store misses
	// stall synchronously — the effect that makes tight loops of contended
	// writes expensive (Figure 3) while isolated message sends stay cheap.
	inflight []int

	// touch tracking for "cache lines used" measurements (paper Table 3)
	tracking bool
	touched  map[memory.LineID]bool

	// Fault injection: stallUntil[c] != 0 means core c's cache controller
	// stops answering coherence probes until that virtual time — fills served
	// by c and invalidation probes to c wait out the remainder of the stall.
	// anyStall keeps the fast path to one boolean test.
	stallUntil []sim.Time
	anyStall   bool

	// Registry handles: fill latency and probe fan-out distributions. The
	// per-core Stats counters above stay the source of truth for access
	// counts; the registry samples their sums lazily at snapshot time.
	fillHist   *stats.Histogram
	fanoutHist *stats.Histogram

	// audit, when non-nil, observes every directory transition (SetAudit).
	audit Audit

	// mode selects broadcast snooping (default) or directory coherence.
	mode CoherenceMode

	// part, when non-nil, marks this system as one partition's replica of a
	// parallel-booted machine (see partition.go). Serial systems pay one nil
	// check per store for it.
	part *partState
}

// maxInflightStores is the per-core store-miss MSHR budget.
const maxInflightStores = 4

// dirService is the home directory's per-transaction service time.
const dirService = 48

// handoffLat is the per-requester service time of a contended line: once
// ownership requests are queued at the home node, the line is forwarded
// cache-to-cache down the queue in a pipeline, so each writer in an
// N-writer convoy waits roughly N×handoffLat rather than N full round
// trips. This is the slope of Figure 3's SHM curves (~100 cycles per
// contending core per line).
const handoffLat = 100

// New returns a cache system over the given memory and fabric.
func New(e *sim.Engine, m *topo.Machine, mem *memory.Memory, fab *interconnect.Fabric) *System {
	if m.NumCores() > maxCores {
		panic(fmt.Sprintf("cache: machine has %d cores; model supports at most %d", m.NumCores(), maxCores))
	}
	s := &System{
		mach:     m,
		mem:      mem,
		fab:      fab,
		eng:      e,
		lines:    make(map[memory.LineID]*line),
		stats:    make([]Stats, m.NumCores()),
		dirFree:  make([]sim.Time, m.NSockets),
		inflight: make([]int, m.NumCores()),
	}
	reg := e.Metrics()
	s.fillHist = reg.Histogram("cache.fill_cycles")
	s.fanoutHist = reg.Histogram("cache.probe_fanout")
	reg.CounterFunc("cache.hits", func() uint64 { return s.sumStats(func(st *Stats) uint64 { return st.Hits }) })
	reg.CounterFunc("cache.misses", func() uint64 { return s.sumStats(func(st *Stats) uint64 { return st.Misses }) })
	reg.CounterFunc("cache.remote_fills", func() uint64 { return s.sumStats(func(st *Stats) uint64 { return st.RemoteMisses }) })
	reg.CounterFunc("cache.upgrades", func() uint64 { return s.sumStats(func(st *Stats) uint64 { return st.Upgrades }) })
	reg.CounterFunc("cache.invalidations", func() uint64 { return s.sumStats(func(st *Stats) uint64 { return st.Invalidated }) })
	fab.SetMetrics(reg)
	return s
}

// sumStats folds one field across the per-core counters.
func (s *System) sumStats(field func(*Stats) uint64) uint64 {
	var total uint64
	for i := range s.stats {
		total += field(&s.stats[i])
	}
	return total
}

// Engine returns the simulation engine the system runs on.
func (s *System) Engine() *sim.Engine { return s.eng }

// SetAudit installs (or, with nil, removes) a coherence-transition audit.
func (s *System) SetAudit(a Audit) { s.audit = a }

// SetMode selects the coherence mode. Call before any cache activity: the
// directory content is mode-independent, but switching mid-run would change
// latencies and traffic accounting mid-stream.
func (s *System) SetMode(m CoherenceMode) { s.mode = m }

// Mode returns the active coherence mode.
func (s *System) Mode() CoherenceMode { return s.mode }

// HomeSharers returns the home-node directory's sharer set for a line — the
// bitmap directory mode probes from, maintained identically under broadcast.
// The zero set when the line has never been cached.
func (s *System) HomeSharers(id memory.LineID) CoreSet {
	if l := s.lines[id]; l != nil {
		return l.holders
	}
	return CoreSet{}
}

// ForEachLine visits every directory entry. Iteration order is unspecified
// (it walks the line map); intended for post-run invariant sweeps, never for
// anything that feeds the event queue.
func (s *System) ForEachLine(fn func(id memory.LineID, v LineView)) {
	for id, l := range s.lines {
		fn(id, l.view())
	}
}

// SetCoreStall injects an owner-stall fault: core c's cache controller stops
// responding to coherence traffic until the given virtual time. Extending an
// existing stall keeps the later deadline.
func (s *System) SetCoreStall(c topo.CoreID, until sim.Time) {
	if s.stallUntil == nil {
		s.stallUntil = make([]sim.Time, s.mach.NumCores())
	}
	if until > s.stallUntil[c] {
		s.stallUntil[c] = until
	}
	s.anyStall = true
}

// coreStall returns the remaining stall of core c's cache controller.
func (s *System) coreStall(c topo.CoreID) sim.Time {
	if !s.anyStall {
		return 0
	}
	if u := s.stallUntil[c]; u > s.eng.Now() {
		rem := u - s.eng.Now()
		s.eng.Tracer().Emit(uint64(s.eng.Now()), trace.Instant, trace.SubCache, int32(c), "cache.owner_stall", 0, uint64(rem))
		return rem
	}
	return 0
}

// linkPenalty returns the fault-induced extra latency of a transfer of base
// latency between core c and the remote socket src.
func (s *System) linkPenalty(c topo.CoreID, src topo.SocketID, base sim.Time) sim.Time {
	if !s.fab.Degraded() {
		return 0
	}
	return s.fab.TransferPenalty(s.mach.Socket(c), src, base, s.eng.RNG())
}

// dirDelay books one transaction at the home directory of the line
// containing a and returns the queuing delay before it can be serviced.
func (s *System) dirDelay(a memory.Addr) sim.Time {
	home := s.mem.Home(a)
	now := s.eng.Now()
	start := now
	if s.dirFree[home] > start {
		start = s.dirFree[home]
	}
	s.dirFree[home] = start + dirService
	return start - now
}

// Machine returns the underlying machine.
func (s *System) Machine() *topo.Machine { return s.mach }

// Memory returns the underlying memory.
func (s *System) Memory() *memory.Memory { return s.mem }

// Fabric returns the underlying interconnect fabric.
func (s *System) Fabric() *interconnect.Fabric { return s.fab }

// Stats returns a copy of core c's counters.
func (s *System) Stats(c topo.CoreID) Stats { return s.stats[c] }

// ResetStats zeroes all per-core counters.
func (s *System) ResetStats() {
	for i := range s.stats {
		s.stats[i] = Stats{}
	}
}

// StartTouchTracking begins recording the set of distinct lines accessed
// (by any core). Used to measure cache-footprint figures like Table 3.
func (s *System) StartTouchTracking() {
	s.tracking = true
	s.touched = make(map[memory.LineID]bool)
}

// StopTouchTracking ends recording and returns the number of distinct lines
// touched since StartTouchTracking.
func (s *System) StopTouchTracking() int {
	s.tracking = false
	n := len(s.touched)
	s.touched = nil
	return n
}

func (s *System) lineFor(a memory.Addr) *line {
	id := a.Line()
	l := s.lines[id]
	if l == nil {
		l = &line{owner: -1, res: sim.NewResource(s.eng, 1)}
		s.lines[id] = l
	}
	if s.tracking {
		s.touched[id] = true
	}
	return l
}

// StateOf returns core c's MOESI state for the line containing a. Intended
// for tests and invariant checks.
func (s *System) StateOf(c topo.CoreID, a memory.Addr) State {
	l := s.lines[a.Line()]
	if l == nil || !l.holds(c) {
		return Invalid
	}
	if l.owner == c {
		alone := !l.holders.HasOther(c)
		if l.dirty {
			if alone {
				return Modified
			}
			return Owned
		}
		if alone {
			return Exclusive
		}
		return Shared
	}
	return Shared
}

// chargeFill accounts fabric traffic for a line fill from src (core or
// memory home socket) to dst core. Under a broadcast-snoop cost model the
// request probes every socket; under directory (and on the paper machines,
// whose RemoteBase folds the broadcast in without separate traffic) it is a
// targeted request. The data response is always a unicast.
func (s *System) chargeFill(dst topo.CoreID, srcSocket topo.SocketID) {
	d := s.mach.Socket(dst)
	if d == srcSocket {
		return
	}
	if s.mode == Broadcast && s.mach.Costs.SnoopPerSocket > 0 {
		s.fab.ChargeBroadcast(d, interconnect.DwordsProbe)
	} else {
		s.fab.Charge(d, srcSocket, interconnect.DwordsProbe)
	}
	s.fab.Charge(srcSocket, d, interconnect.DwordsData)
}

// modeExtra is the coherence-mode surcharge of one transaction that leaves
// the requester's socket: the serialized broadcast snoop of every remote
// socket, or the home directory's lookup/indirection. Zero on the paper
// machines (SnoopPerSocket there is folded into RemoteBase, and broadcast is
// the hardware's only mode).
func (s *System) modeExtra(c topo.CoreID, srcSocket topo.SocketID) sim.Time {
	if s.mach.Socket(c) == srcSocket {
		return 0
	}
	if s.mode == Directory {
		return s.mach.Costs.DirLookup
	}
	return s.mach.Costs.SnoopPerSocket * sim.Time(s.mach.NSockets-1)
}

// fill obtains a readable copy of the line for core c, returning the fill
// latency. The line's transfer queue must already be held.
func (s *System) fill(c topo.CoreID, a memory.Addr, l *line) sim.Time {
	s.stats[c].Misses++
	var before LineView
	if s.audit != nil {
		before = l.view()
	}
	reason := AuditFillMem
	var lat sim.Time
	src := "cache.fill_mem"
	if l.owner >= 0 && l.owner != c {
		src = "cache.fill_owner"
		reason = AuditFillOwner
		// Fetch from the owning cache; MOESI keeps the dirty copy in-cache
		// (owner degrades M->O) rather than writing back. On a
		// HyperTransport-style fabric the request is routed via the line's
		// home node, so distance to the home adds latency — the effect
		// NUMA-aware buffer placement exploits (§5.1).
		lat = s.mach.TransferLat(c, l.owner) + s.homePenalty(c, a) + s.modeExtra(c, s.mach.Socket(l.owner))
		lat += s.coreStall(l.owner) + s.linkPenalty(c, s.mach.Socket(l.owner), lat)
		if !s.mach.SameSocket(c, l.owner) {
			s.stats[c].RemoteMisses++
		}
		s.chargeFill(c, s.mach.Socket(l.owner))
	} else if !l.holders.Empty() && !l.holds(c) {
		// Shared copies exist but no owner: memory is current.
		src = "cache.fill_shared"
		reason = AuditFillShared
		home := s.mem.Home(a)
		lat = s.mach.MemLat(c, home) + s.modeExtra(c, home)
		lat += s.linkPenalty(c, home, lat)
		s.stats[c].RemoteMisses++
		s.chargeFill(c, home)
	} else {
		home := s.mem.Home(a)
		lat = s.mach.MemLat(c, home) + s.modeExtra(c, home)
		lat += s.linkPenalty(c, home, lat)
		s.chargeFill(c, home)
	}
	l.holders.Add(c)
	if l.owner < 0 {
		// First holder becomes owner (E); an existing dirty owner keeps
		// ownership (now O with sharers).
		l.owner = c
		l.dirty = false
	}
	if s.audit != nil {
		s.audit.Transition(a.Line(), reason, c, before, l.view(), 0)
	}
	s.fillHist.Observe(uint64(lat))
	s.eng.Tracer().Emit(uint64(s.eng.Now()), trace.Instant, trace.SubCache, int32(c), src, 0, uint64(lat))
	return lat
}

// homePenalty is the extra cost of routing a cross-socket transaction on the
// line containing a via its home node.
func (s *System) homePenalty(c topo.CoreID, a memory.Addr) sim.Time {
	hr := s.mach.Costs.HomeRoute
	if hr == 0 {
		return 0
	}
	return sim.Time(s.mach.Hops(s.mach.Socket(c), s.mem.Home(a))) * hr
}

// invalidateOthers removes all copies except core c's, returning the probe
// latency (to the furthest current holder) plus home routing. Under a
// broadcast-snoop cost model the upgrade probes every remote socket whether
// or not it holds a copy — the observed fan-out is NSockets-1 and the probe
// pays a per-socket serialization — while directory mode looks the sharer
// set up at the home node (flat DirLookup) and probes only actual holders,
// which is what makes cache.probe_fanout a real signal there.
func (s *System) invalidateOthers(c topo.CoreID, a memory.Addr, l *line) sim.Time {
	others := l.holders
	others.Del(c)
	if others.Empty() {
		return 0
	}
	s.stats[c].Upgrades++
	var before LineView
	if s.audit != nil {
		before = l.view()
	}
	bcastSnoop := s.mode == Broadcast && s.mach.Costs.SnoopPerSocket > 0
	fanout := uint64(others.Count())
	if bcastSnoop {
		fanout = uint64(s.mach.NSockets - 1)
	}
	s.fanoutHist.Observe(fanout)
	s.eng.Tracer().Emit(uint64(s.eng.Now()), trace.Instant, trace.SubCache, int32(c), "cache.inval", 0, fanout)
	cs := s.mach.Socket(c)
	var lat sim.Time
	if bcastSnoop {
		s.fab.ChargeBroadcast(cs, interconnect.DwordsProbe)
		lat += s.mach.Costs.SnoopPerSocket * sim.Time(s.mach.NSockets-1)
	} else if s.mode == Directory {
		lat += s.mach.Costs.DirLookup
	}
	var probe sim.Time
	others.ForEach(func(h topo.CoreID) {
		s.stats[h].Invalidated++
		t := s.mach.TransferLat(c, h)
		// A stalled or link-degraded holder delays its probe response, and
		// the upgrade cannot complete until the slowest holder has answered.
		t += s.coreStall(h) + s.linkPenalty(c, s.mach.Socket(h), t)
		if t > probe {
			probe = t
		}
		if hs := s.mach.Socket(h); hs != cs {
			if !bcastSnoop {
				s.fab.Charge(cs, hs, interconnect.DwordsProbe)
			}
			s.fab.Charge(hs, cs, interconnect.DwordsAck)
		}
	})
	lat += probe
	l.holders = OnlyCore(c)
	l.owner = c
	if s.audit != nil {
		s.audit.Transition(a.Line(), AuditUpgrade, c, before, l.view(), int(fanout))
	}
	if lat > 0 {
		lat += s.homePenalty(c, a)
	}
	return lat
}

// markDirty sets the line dirty, reporting the clean→dirty flip to the audit
// hook. Redundant stores to an already-dirty line are not transitions.
func (s *System) markDirty(c topo.CoreID, a memory.Addr, l *line) {
	if s.audit != nil && !l.dirty {
		before := l.view()
		l.dirty = true
		s.audit.Transition(a.Line(), AuditDirty, c, before, l.view(), 0)
		return
	}
	l.dirty = true
}

// Load reads the word at a from core c, charging coherence latency to p.
func (s *System) Load(p *sim.Proc, c topo.CoreID, a memory.Addr) uint64 {
	l := s.lineFor(a)
	if l.holds(c) {
		s.stats[c].Hits++
		p.Sleep(s.mach.Costs.L1Hit)
		return s.mem.LoadWord(a)
	}
	// contended: other requesters already queued beyond any single in-flight
	// transfer — the NACK/retry regime at the home directory.
	contended := l.res.QueueLen() > 0
	queuedBehindStore := !l.res.TryAcquire()
	if queuedBehindStore {
		l.res.Acquire(p)
		queuedBehindStore = l.xferStore
	}
	var lat sim.Time
	if l.holds(c) {
		// Filled by someone while we queued (e.g. broadcast read): hit now.
		s.stats[c].Hits++
		lat = s.mach.Costs.L1Hit
	} else {
		lat = s.fill(c, a, l)
		if queuedBehindStore && lat > forwardLat {
			lat = forwardLat
		}
		if contended {
			lat += s.dirDelay(a)
		}
	}
	l.xferStore = false
	// The reservation must drop even if c is fail-stopped mid-charge: the
	// transfer is already at the directory and completes without the core.
	func() {
		defer l.res.Release()
		p.Sleep(lat)
	}()
	return s.mem.LoadWord(a)
}

// Store writes the word at a from core c.
//
// An uncontended store miss is asynchronous: the store buffer issues the
// ownership request and the core continues after a small issue cost, while
// the line stays "in transfer" (its FIFO queue held) for the transaction
// latency — any other core touching it queues behind the transfer. A store
// to a line that is already mid-transfer stalls the full, queued latency.
// This split is what makes uncontended message sends cheap for the sender
// while heavily-shared data structures degrade linearly with writer count
// (paper Figures 3 and 6).
func (s *System) Store(p *sim.Proc, c topo.CoreID, a memory.Addr, v uint64) {
	l := s.lineFor(a)
	if l.holds(c) && l.owner == c && l.holders.Only(c) && l.res.QueueLen() == 0 {
		// Exclusive or Modified with no rival request queued: silent upgrade.
		// If another core's ownership request is already waiting, the line
		// is about to be taken away, so the store must join the queue like
		// any other requester rather than starving the rivals.
		s.stats[c].Hits++
		s.markDirty(c, a, l)
		p.Sleep(s.mach.Costs.Store)
		s.mem.StoreWord(a, v)
		s.maybeForward(a)
		return
	}
	if s.inflight[c] < maxInflightStores && l.res.TryAcquire() {
		// Uncontended and within the store-buffer budget: issue
		// asynchronously. State changes take effect now (the directory
		// reflects the in-flight transaction); the line is released when the
		// transfer completes.
		lat := s.ownershipLat(p, c, a, l)
		s.markDirty(c, a, l)
		l.xferStore = true
		s.mem.StoreWord(a, v)
		s.inflight[c]++
		s.eng.After(lat, func() {
			s.inflight[c]--
			l.res.Release()
		})
		p.Sleep(s.mach.Costs.StoreIssue)
		s.maybeForward(a)
		return
	}
	// Contended: queue behind in-flight transfers. Having waited in the
	// pipeline, the requester receives the line as a direct handoff rather
	// than launching a fresh full-latency transaction; with multiple rivals
	// queued, the home directory's NACK/retry service adds on top.
	waited := l.res.InUse()+l.res.QueueLen() > 0
	l.res.Acquire(p)
	lat := s.ownershipLat(p, c, a, l)
	if waited && lat > handoffLat {
		lat = handoffLat + s.dirDelay(a)
	}
	s.markDirty(c, a, l)
	l.xferStore = true
	// As in Load: release on the fail-stop unwind path too, or the line stays
	// reserved by a corpse and every later requester parks forever.
	func() {
		defer func() {
			l.xferStore = false
			l.res.Release()
		}()
		p.Sleep(lat)
	}()
	s.mem.StoreWord(a, v)
	s.maybeForward(a)
}

// ownershipLat performs the directory updates for core c taking exclusive
// ownership of the line and returns the transaction latency.
func (s *System) ownershipLat(p *sim.Proc, c topo.CoreID, a memory.Addr, l *line) sim.Time {
	var lat sim.Time
	if !l.holds(c) {
		lat = s.fill(c, a, l)
	}
	if inval := s.invalidateOthers(c, a, l); inval > lat {
		lat = inval
	}
	if lat == 0 {
		lat = s.mach.Costs.Store
		return lat
	}
	// Every ownership transfer is serviced by the line's home directory;
	// when many writers hammer lines with a common home, the directory
	// saturates and per-write cost grows with the writer count (Figure 3).
	return lat + s.dirDelay(a)
}

// RMW performs an atomic read-modify-write (lock-prefixed instruction) on
// the word at a: the line is held exclusively for the whole operation, so
// concurrent RMWs on one line serialize in FIFO order — the cost structure
// of contended spinlocks and barrier counters.
func (s *System) RMW(p *sim.Proc, c topo.CoreID, a memory.Addr, fn func(uint64) uint64) uint64 {
	l := s.lineFor(a)
	waited := l.res.InUse()+l.res.QueueLen() > 0
	l.res.Acquire(p)
	lat := s.ownershipLat(p, c, a, l)
	if waited && lat > handoffLat {
		lat = handoffLat + s.dirDelay(a)
	}
	s.markDirty(c, a, l)
	var v uint64
	// Release on the fail-stop unwind path too; a lock word whose holder died
	// mid-RMW must not wedge every later RMW on the line.
	func() {
		defer l.res.Release()
		p.Sleep(lat)
		v = fn(s.mem.LoadWord(a))
		s.mem.StoreWord(a, v)
	}()
	s.maybeForward(a)
	return v
}

// StoreLine writes a full cache line as one ownership acquisition followed by
// a burst of word stores — the URPC sender's "write the message sequentially
// into the line" fast path (§4.6).
func (s *System) StoreLine(p *sim.Proc, c topo.CoreID, a memory.Addr, vals [memory.WordsPerLine]uint64) {
	base := a.Line().Base()
	if s.part != nil {
		// Forward once, after the full line is written, not per word — the
		// word-0 store's hook is suppressed so the reader's replica never
		// sees a half-written line image.
		s.part.suppress = true
		defer func() {
			s.part.suppress = false
			s.maybeForward(base)
		}()
	}
	s.Store(p, c, base, vals[0])
	// Remaining words are hits in the now-exclusive line.
	p.Sleep(s.mach.Costs.Store * sim.Time(memory.WordsPerLine-1))
	s.stats[c].Hits += memory.WordsPerLine - 1
	for i := 1; i < memory.WordsPerLine; i++ {
		s.mem.StoreWord(base+memory.Addr(i*8), vals[i])
	}
}

// LoadLine reads a full cache line: one fill (or hit) plus word reads.
func (s *System) LoadLine(p *sim.Proc, c topo.CoreID, a memory.Addr) [memory.WordsPerLine]uint64 {
	base := a.Line().Base()
	s.Load(p, c, base)
	p.Sleep(s.mach.Costs.L1Hit * sim.Time(memory.WordsPerLine-1))
	s.stats[c].Hits += memory.WordsPerLine - 1
	return s.mem.LoadLine(base)
}

// Prefetch starts bringing the line at a into core c's cache. It models a
// non-binding software prefetch: the line state changes as for a load, but
// the caller is charged only the issue cost, not the fill latency.
func (s *System) Prefetch(p *sim.Proc, c topo.CoreID, a memory.Addr) {
	l := s.lineFor(a)
	if l.holds(c) {
		p.Sleep(1)
		return
	}
	if l.res.TryAcquire() {
		s.fill(c, a, l)
		l.res.Release()
	}
	p.Sleep(1)
}

// Flush removes core c's copy of the line containing a (clflush-style),
// writing back if dirty. Used by device DMA models.
func (s *System) Flush(p *sim.Proc, c topo.CoreID, a memory.Addr) {
	l := s.lines[a.Line()]
	if l == nil || !l.holds(c) {
		p.Sleep(1)
		return
	}
	var before LineView
	if s.audit != nil {
		before = l.view()
	}
	writeback := false
	l.holders.Del(c)
	if l.owner == c {
		l.owner = -1
		if l.dirty {
			l.dirty = false
			writeback = true
		}
	}
	if s.audit != nil {
		s.audit.Transition(a.Line(), AuditFlush, c, before, l.view(), 0)
	}
	if writeback {
		home := s.mem.Home(a)
		if cs := s.mach.Socket(c); cs != home {
			s.fab.Charge(cs, home, interconnect.DwordsData)
		}
		p.Sleep(s.mach.MemLat(c, s.mem.Home(a)))
		return
	}
	p.Sleep(1)
}

// DMAWrite models a device writing bytes to memory: all cached copies of the
// affected lines are invalidated (devices are not coherent participants in
// this model) and the data lands in memory.
func (s *System) DMAWrite(a memory.Addr, b []byte, devSocket topo.SocketID) {
	s.mem.StoreBytes(a, b)
	first := a.Line()
	last := (a + memory.Addr(len(b)) - 1).Line()
	for id := first; id <= last; id++ {
		if l := s.lines[id]; l != nil {
			var before LineView
			if s.audit != nil {
				before = l.view()
			}
			l.holders.ForEach(func(h topo.CoreID) {
				s.stats[h].Invalidated++
			})
			l.holders = CoreSet{}
			l.owner = -1
			l.dirty = false
			if s.audit != nil {
				s.audit.Transition(id, AuditDMA, -1, before, l.view(), 0)
			}
		}
		home := s.mem.Home(id.Base())
		if home != devSocket {
			s.fab.Charge(devSocket, home, interconnect.DwordsData)
		}
	}
}

// CheckInvariants panics if any line violates the MOESI single-owner rules.
// Tests call this after workloads.
func (s *System) CheckInvariants() {
	for id, l := range s.lines {
		if l.owner >= 0 && !l.holds(l.owner) {
			panic(fmt.Sprintf("cache: line %#x owner %d not a holder", id, l.owner))
		}
		if l.dirty && l.owner < 0 {
			panic(fmt.Sprintf("cache: line %#x dirty without owner", id))
		}
	}
}
