package cache

import (
	"testing"

	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// The MOESI transition table, exercised exhaustively: every starting state of
// the line on the local core (I, S, E, M, O) crossed with every probe (local
// load, local store, remote load, remote store, local flush), asserting the
// resulting states on the local core, the probing remote core and the helper
// sharer that the S and O setups require.
//
// Cores: local = 0 (the core whose state names the row), remote = 1 (the
// prober), helper = 2 (a second sharer so S and O are reachable: a line is
// Shared only with company, and Owned only while a sharer still holds a copy
// of the dirty line).

const moesiAddr = memory.Addr(0x7000)

type moesiRig struct {
	*rig
}

func newMOESIRig() *moesiRig { return &moesiRig{newRig(topo.AMD2x2())} }

// on runs fn as core c's proc to completion (draining any async store).
func (r *moesiRig) on(c topo.CoreID, fn func(p *sim.Proc)) {
	r.e.Spawn("op", func(p *sim.Proc) { fn(p) })
	r.e.Run()
}

func (r *moesiRig) load(c topo.CoreID)  { r.on(c, func(p *sim.Proc) { r.sys.Load(p, c, moesiAddr) }) }
func (r *moesiRig) store(c topo.CoreID) { r.on(c, func(p *sim.Proc) { r.sys.Store(p, c, moesiAddr, 1) }) }
func (r *moesiRig) flush(c topo.CoreID) { r.on(c, func(p *sim.Proc) { r.sys.Flush(p, c, moesiAddr) }) }

// enter drives the line into the named state on core 0.
func (r *moesiRig) enter(s State) {
	switch s {
	case Invalid:
	case Shared:
		r.load(0)
		r.load(2) // second sharer demotes E to S
	case Exclusive:
		r.load(0)
	case Modified:
		r.store(0)
	case Owned:
		r.store(0) // M...
		r.load(2)  // ...and a remote read leaves the dirty owner in O
	}
}

func TestMOESITransitionTable(t *testing.T) {
	type probe struct {
		name string
		do   func(r *moesiRig)
	}
	probes := []probe{
		{"local-load", func(r *moesiRig) { r.load(0) }},
		{"local-store", func(r *moesiRig) { r.store(0) }},
		{"remote-load", func(r *moesiRig) { r.load(1) }},
		{"remote-store", func(r *moesiRig) { r.store(1) }},
		{"local-flush", func(r *moesiRig) { r.flush(0) }},
	}
	// want[state][probe] = {state of core 0, core 1, core 2} afterwards.
	want := map[State]map[string][3]State{
		Invalid: {
			"local-load":   {Exclusive, Invalid, Invalid},
			"local-store":  {Modified, Invalid, Invalid},
			"remote-load":  {Invalid, Exclusive, Invalid},
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Invalid},
		},
		Shared: { // holders {0,2}, clean, owner 0
			"local-load":   {Shared, Invalid, Shared},
			"local-store":  {Modified, Invalid, Invalid}, // upgrade probes out the helper
			"remote-load":  {Shared, Shared, Shared},
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Shared}, // ownerless survivor reads as S
		},
		Exclusive: {
			"local-load":   {Exclusive, Invalid, Invalid},
			"local-store":  {Modified, Invalid, Invalid}, // silent E→M upgrade
			"remote-load":  {Shared, Shared, Invalid},    // clean fill, no writeback needed
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Invalid},
		},
		Modified: {
			"local-load":   {Modified, Invalid, Invalid},
			"local-store":  {Modified, Invalid, Invalid},
			"remote-load":  {Owned, Shared, Invalid}, // dirty owner forwards, keeps ownership: M→O
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Invalid}, // writeback, line clean
		},
		Owned: { // holders {0,2}, dirty, owner 0
			"local-load":   {Owned, Invalid, Shared},
			"local-store":  {Modified, Invalid, Invalid}, // O→M reclaims exclusivity
			"remote-load":  {Owned, Shared, Shared},
			"remote-store": {Invalid, Modified, Invalid},
			"local-flush":  {Invalid, Invalid, Shared}, // owner writeback; survivor keeps a clean copy
		},
	}

	for _, start := range []State{Invalid, Shared, Exclusive, Modified, Owned} {
		for _, pr := range probes {
			t.Run(start.String()+"/"+pr.name, func(t *testing.T) {
				r := newMOESIRig()
				defer r.e.Close()
				r.enter(start)
				if got := r.sys.StateOf(0, moesiAddr); got != start {
					t.Fatalf("setup: core 0 in %v, want %v", got, start)
				}
				pr.do(r)
				w := want[start][pr.name]
				for c, exp := range w {
					if got := r.sys.StateOf(topo.CoreID(c), moesiAddr); got != exp {
						t.Errorf("core %d: got %v, want %v", c, got, exp)
					}
				}
				r.sys.CheckInvariants()
			})
		}
	}
}

// The E→M→O chain the silent upgrade makes possible: a clean exclusive line
// is dirtied without any bus traffic, then a remote read demotes the writer
// to owner instead of forcing a writeback — the line's only current copy
// stays in a cache.
func TestMOESISilentUpgradeToOwned(t *testing.T) {
	r := newMOESIRig()
	defer r.e.Close()
	r.load(0)
	if got := r.sys.StateOf(0, moesiAddr); got != Exclusive {
		t.Fatalf("after load: %v, want Exclusive", got)
	}
	before := r.sys.Stats(0).Upgrades
	r.store(0)
	if got := r.sys.StateOf(0, moesiAddr); got != Modified {
		t.Fatalf("after store: %v, want Modified", got)
	}
	if r.sys.Stats(0).Upgrades != before {
		t.Fatal("silent upgrade issued probes")
	}
	r.load(1)
	if got := r.sys.StateOf(0, moesiAddr); got != Owned {
		t.Fatalf("after remote load: %v, want Owned", got)
	}
	if got := r.sys.StateOf(1, moesiAddr); got != Shared {
		t.Fatalf("remote reader: %v, want Shared", got)
	}
	r.sys.CheckInvariants()
}
