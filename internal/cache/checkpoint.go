package cache

// Checkpoint serialization for the MOESI directory, implementing
// sim.Checkpointer. The image covers everything the next transaction's
// latency depends on: per-line directory entries, home-directory service
// frontiers, per-core store-buffer occupancy, access counters and fault
// state. The fill/fan-out histograms live in the engine's metrics registry
// and travel with its image; per-line transfer queues are sim.Resources and
// are rebuilt empty — a line mid-transfer means a pending engine callback,
// which the engine-level checkpoint already rejects as non-quiescent.

import (
	"fmt"
	"io"
	"sort"

	"multikernel/internal/ckpt"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Per-line flag bits in the serialized image.
const (
	clDirty = 1 << iota
	clXferStore
)

// CheckpointState serializes the directory and per-core state.
func (s *System) CheckpointState(w io.Writer) error {
	if s.tracking {
		return fmt.Errorf("cache: checkpoint during touch tracking")
	}
	ids := make([]memory.LineID, 0, len(s.lines))
	for id := range s.lines {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if err := ckpt.WriteU64(w, uint64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		l := s.lines[id]
		if l.res.InUse()+l.res.QueueLen() > 0 {
			return fmt.Errorf("cache: line %#x mid-transfer (not quiescent)", uint64(id))
		}
		var flags uint64
		if l.dirty {
			flags |= clDirty
		}
		if l.xferStore {
			flags |= clXferStore
		}
		if err := ckpt.WriteU64(w, uint64(id)); err != nil {
			return err
		}
		if err := ckpt.WriteU64(w, l.holders[:]...); err != nil {
			return err
		}
		if err := ckpt.WriteU64(w, uint64(int64(l.owner)), flags); err != nil {
			return err
		}
	}
	dirFree := make([]uint64, len(s.dirFree))
	for i, t := range s.dirFree {
		dirFree[i] = uint64(t)
	}
	if err := ckpt.WriteU64Slice(w, dirFree); err != nil {
		return err
	}
	inflight := make([]uint64, len(s.inflight))
	for i, n := range s.inflight {
		inflight[i] = uint64(n)
	}
	if err := ckpt.WriteU64Slice(w, inflight); err != nil {
		return err
	}
	if err := ckpt.WriteU64(w, uint64(len(s.stats))); err != nil {
		return err
	}
	for i := range s.stats {
		st := &s.stats[i]
		if err := ckpt.WriteU64(w, st.Hits, st.Misses, st.RemoteMisses, st.Upgrades, st.Invalidated); err != nil {
			return err
		}
	}
	stall := make([]uint64, len(s.stallUntil))
	for i, t := range s.stallUntil {
		stall[i] = uint64(t)
	}
	if err := ckpt.WriteU64Slice(w, stall); err != nil {
		return err
	}
	return ckpt.WriteU64(w, uint64(s.mode))
}

// RestoreState replaces the directory and per-core state with an image.
func (s *System) RestoreState(r io.Reader) error {
	var nlines uint64
	if err := ckpt.ReadU64(r, &nlines); err != nil {
		return err
	}
	lines := make(map[memory.LineID]*line, nlines)
	for i := uint64(0); i < nlines; i++ {
		var id uint64
		if err := ckpt.ReadU64(r, &id); err != nil {
			return err
		}
		var holders CoreSet
		for j := range holders {
			if err := ckpt.ReadU64(r, &holders[j]); err != nil {
				return err
			}
		}
		var owner, flags uint64
		if err := ckpt.ReadU64(r, &owner, &flags); err != nil {
			return err
		}
		lines[memory.LineID(id)] = &line{
			holders:   holders,
			owner:     topo.CoreID(int64(owner)),
			dirty:     flags&clDirty != 0,
			xferStore: flags&clXferStore != 0,
			res:       sim.NewResource(s.eng, 1),
		}
	}
	dirFree, err := ckpt.ReadU64Slice(r)
	if err != nil {
		return err
	}
	if len(dirFree) != len(s.dirFree) {
		return fmt.Errorf("cache: image has %d home directories; machine has %d", len(dirFree), len(s.dirFree))
	}
	inflight, err := ckpt.ReadU64Slice(r)
	if err != nil {
		return err
	}
	if len(inflight) != len(s.inflight) {
		return fmt.Errorf("cache: image has %d cores; machine has %d", len(inflight), len(s.inflight))
	}
	var ncores uint64
	if err := ckpt.ReadU64(r, &ncores); err != nil {
		return err
	}
	if int(ncores) != len(s.stats) {
		return fmt.Errorf("cache: image has stats for %d cores; machine has %d", ncores, len(s.stats))
	}
	stats := make([]Stats, ncores)
	for i := range stats {
		st := &stats[i]
		if err := ckpt.ReadU64(r, &st.Hits, &st.Misses, &st.RemoteMisses, &st.Upgrades, &st.Invalidated); err != nil {
			return err
		}
	}
	stall, err := ckpt.ReadU64Slice(r)
	if err != nil {
		return err
	}
	var mode uint64
	if err := ckpt.ReadU64(r, &mode); err != nil {
		return err
	}
	if mode > uint64(Directory) {
		return fmt.Errorf("cache: image has unknown coherence mode %d", mode)
	}

	s.lines = lines
	s.mode = CoherenceMode(mode)
	for i, v := range dirFree {
		s.dirFree[i] = sim.Time(v)
	}
	for i, v := range inflight {
		s.inflight[i] = int(v)
	}
	copy(s.stats, stats)
	if len(stall) > 0 {
		s.stallUntil = make([]sim.Time, len(stall))
		for i, v := range stall {
			s.stallUntil[i] = sim.Time(v)
		}
		s.anyStall = true
	} else {
		s.stallUntil = nil
		s.anyStall = false
	}
	return nil
}
