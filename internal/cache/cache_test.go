package cache

import (
	"testing"
	"testing/quick"

	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// rig bundles a fresh simulated machine for cache tests.
type rig struct {
	e   *sim.Engine
	m   *topo.Machine
	mem *memory.Memory
	fab *interconnect.Fabric
	sys *System
}

func newRig(m *topo.Machine) *rig {
	e := sim.NewEngine(1)
	mem := memory.New(m)
	fab := interconnect.New(m)
	return &rig{e: e, m: m, mem: mem, fab: fab, sys: New(e, m, mem, fab)}
}

// runOn executes fn as a proc and returns the virtual cycles it consumed.
func (r *rig) runOn(fn func(p *sim.Proc)) sim.Time {
	var took sim.Time
	r.e.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		fn(p)
		took = p.Now() - start
	})
	r.e.Run()
	return took
}

func TestColdLoadFromMemoryThenHit(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	r.mem.StoreWord(a, 99)
	var v1, v2 uint64
	miss := r.runOn(func(p *sim.Proc) { v1 = r.sys.Load(p, 0, a) })
	hit := r.runOn(func(p *sim.Proc) { v2 = r.sys.Load(p, 0, a) })
	if v1 != 99 || v2 != 99 {
		t.Fatalf("values %d %d, want 99", v1, v2)
	}
	if miss != r.m.Costs.DRAMLocal {
		t.Fatalf("cold load took %d, want DRAM %d", miss, r.m.Costs.DRAMLocal)
	}
	if hit != r.m.Costs.L1Hit {
		t.Fatalf("hit took %d, want %d", hit, r.m.Costs.L1Hit)
	}
	st := r.sys.Stats(0)
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestRemoteFetchFromOwningCache(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	writer := topo.CoreID(0)
	reader := topo.CoreID(2) // other socket
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, writer, a, 7) })
	var got uint64
	lat := r.runOn(func(p *sim.Proc) { got = r.sys.Load(p, reader, a) })
	if got != 7 {
		t.Fatalf("got %d", got)
	}
	// Reader is one hop from the line's home (socket 0), so it pays the
	// cache-to-cache transfer plus one hop of home routing.
	want := r.m.TransferLat(reader, writer) + r.m.Costs.HomeRoute
	if lat != want {
		t.Fatalf("remote fetch took %d, want %d", lat, want)
	}
	if r.sys.Stats(reader).RemoteMisses != 1 {
		t.Fatal("remote miss not counted")
	}
	// Writer retains an owned copy; reader shares.
	if s := r.sys.StateOf(writer, a); s != Owned {
		t.Fatalf("writer state %v, want O", s)
	}
	if s := r.sys.StateOf(reader, a); s != Shared {
		t.Fatalf("reader state %v, want S", s)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	r := newRig(topo.AMD4x4())
	a := r.mem.AllocLines(1, 0).Base
	// Cores 0, 4, 8 all read the line.
	r.runOn(func(p *sim.Proc) {
		r.sys.Load(p, 0, a)
		r.sys.Load(p, 4, a)
		r.sys.Load(p, 8, a)
	})
	// Core 4 writes: 0 and 8 must be invalidated.
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 4, a, 1) })
	if s := r.sys.StateOf(0, a); s != Invalid {
		t.Fatalf("core 0 state %v, want I", s)
	}
	if s := r.sys.StateOf(8, a); s != Invalid {
		t.Fatalf("core 8 state %v, want I", s)
	}
	if s := r.sys.StateOf(4, a); s != Modified {
		t.Fatalf("core 4 state %v, want M", s)
	}
	if r.sys.Stats(0).Invalidated != 1 || r.sys.Stats(8).Invalidated != 1 {
		t.Fatal("invalidation counters wrong")
	}
	r.sys.CheckInvariants()
}

func TestSilentUpgradeFromExclusive(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	r.runOn(func(p *sim.Proc) { r.sys.Load(p, 0, a) }) // E
	lat := r.runOn(func(p *sim.Proc) { r.sys.Store(p, 0, a, 5) })
	if lat != r.m.Costs.Store {
		t.Fatalf("E->M store took %d, want %d (silent upgrade)", lat, r.m.Costs.Store)
	}
}

func TestPingPongIsSymmetricallyExpensive(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 0, a, 1) })
	// Uncontended cross-socket stores issue asynchronously: each writer is
	// charged only the store-buffer issue cost, while the line transfer
	// proceeds in the background.
	lat1 := r.runOn(func(p *sim.Proc) { r.sys.Store(p, 2, a, 2) })
	lat2 := r.runOn(func(p *sim.Proc) { r.sys.Store(p, 0, a, 3) })
	want := r.m.Costs.StoreIssue
	if lat1 != want || lat2 != want {
		t.Fatalf("ping-pong costs %d,%d, want %d (async issue)", lat1, lat2, want)
	}
	// A load from a third party still observes the full transfer cost.
	lat3 := r.runOn(func(p *sim.Proc) { r.sys.Load(p, 3, a) })
	if lat3 < r.m.TransferLat(3, 0) {
		t.Fatalf("observer load %d cheaper than transfer %d", lat3, r.m.TransferLat(3, 0))
	}
}

func TestContendedLineQueuesFIFO(t *testing.T) {
	r := newRig(topo.AMD4x4())
	a := r.mem.AllocLines(1, 0).Base
	// Warm the line in core 0's cache so every contender must transfer.
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 0, a, 1) })
	// 8 cross-socket cores write simultaneously; the first pays a full
	// transfer, the rest receive pipelined handoffs plus home-directory
	// NACK/retry service, so the last finisher is well behind a lone write.
	var last sim.Time
	for i := 0; i < 8; i++ {
		core := topo.CoreID(4 + i)
		r.e.Spawn("w", func(p *sim.Proc) {
			r.sys.Store(p, core, a, uint64(core))
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	r.e.Run()
	single := r.m.TransferLat(4, 0)
	if last < single+6*100 { // handoffLat per queued rival
		t.Fatalf("contended writes finished in %d, want >= %d (serialization)", last, single+600)
	}
	r.sys.CheckInvariants()
}

func TestStoreLineCheaperThanWordStores(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a1 := r.mem.AllocLines(1, 0).Base
	a2 := r.mem.AllocLines(1, 0).Base
	// Remote-own both lines first.
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 2, a1, 1); r.sys.Store(p, 2, a2, 1) })
	var vals [memory.WordsPerLine]uint64
	for i := range vals {
		vals[i] = uint64(i)
	}
	burst := r.runOn(func(p *sim.Proc) { r.sys.StoreLine(p, 0, a1, vals) })
	var wordwise sim.Time
	r.e = sim.NewEngine(1) // fresh engine not needed; reuse rig proc
	wordwise = r.runOn(func(p *sim.Proc) {
		for i := 0; i < memory.WordsPerLine; i++ {
			r.sys.Store(p, 0, a2+memory.Addr(i*8), uint64(i))
		}
	})
	// With no intervening reader, the burst costs the same as word stores to
	// an owned line (one ownership acquisition + 7 hits); its real benefit is
	// that the line can never be observed half-written.
	if burst > wordwise {
		t.Fatalf("burst %d more expensive than wordwise %d", burst, wordwise)
	}
	if got := r.mem.LoadLine(a1); got != vals {
		t.Fatal("StoreLine data wrong")
	}
}

func TestLoadLineReturnsData(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	var vals [memory.WordsPerLine]uint64
	for i := range vals {
		vals[i] = uint64(100 + i)
	}
	r.runOn(func(p *sim.Proc) { r.sys.StoreLine(p, 1, a, vals) })
	var got [memory.WordsPerLine]uint64
	r.runOn(func(p *sim.Proc) { got = r.sys.LoadLine(p, 3, a) })
	if got != vals {
		t.Fatalf("got %v, want %v", got, vals)
	}
}

func TestPrefetchMakesNextLoadAHit(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 2, a, 9) })
	r.runOn(func(p *sim.Proc) {
		r.sys.Prefetch(p, 0, a)
	})
	lat := r.runOn(func(p *sim.Proc) { r.sys.Load(p, 0, a) })
	if lat != r.m.Costs.L1Hit {
		t.Fatalf("load after prefetch took %d, want hit %d", lat, r.m.Costs.L1Hit)
	}
}

func TestInterconnectTrafficCharged(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 0, a, 1) })
	r.fab.Reset()
	r.runOn(func(p *sim.Proc) { r.sys.Load(p, 2, a) })
	// Probe goes 1->0, data comes back 0->1.
	if got := r.fab.LinkDwords(1, 0); got != interconnect.DwordsProbe {
		t.Fatalf("probe dwords=%d", got)
	}
	if got := r.fab.LinkDwords(0, 1); got != interconnect.DwordsData {
		t.Fatalf("data dwords=%d", got)
	}
}

func TestSameSocketTrafficStaysOffFabric(t *testing.T) {
	r := newRig(topo.AMD4x4())
	a := r.mem.AllocLines(1, 0).Base
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 0, a, 1) })
	r.fab.Reset()
	r.runOn(func(p *sim.Proc) { r.sys.Load(p, 1, a) }) // same socket
	if got := r.fab.TotalDwords(); got != 0 {
		t.Fatalf("intra-socket transfer put %d dwords on fabric", got)
	}
}

func TestFlushWritesBackDirtyLine(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 1).Base
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 0, a, 42) })
	r.runOn(func(p *sim.Proc) { r.sys.Flush(p, 0, a) })
	if s := r.sys.StateOf(0, a); s != Invalid {
		t.Fatalf("state after flush %v", s)
	}
	if r.mem.LoadWord(a) != 42 {
		t.Fatal("data lost on flush")
	}
	r.sys.CheckInvariants()
}

func TestDMAWriteInvalidatesAndStores(t *testing.T) {
	r := newRig(topo.AMD2x2())
	reg := r.mem.AllocLines(2, 0)
	r.runOn(func(p *sim.Proc) { r.sys.Load(p, 0, reg.Base) })
	payload := []byte{1, 2, 3, 4, 5}
	r.sys.DMAWrite(reg.Base, payload, 1)
	if s := r.sys.StateOf(0, reg.Base); s != Invalid {
		t.Fatalf("cached copy survived DMA: %v", s)
	}
	for i, b := range payload {
		if got := r.mem.LoadBytes(reg.Base+memory.Addr(i), 1)[0]; got != b {
			t.Fatalf("byte %d = %d, want %d", i, got, b)
		}
	}
}

func TestTouchTracking(t *testing.T) {
	r := newRig(topo.AMD2x2())
	reg := r.mem.AllocLines(4, 0)
	r.sys.StartTouchTracking()
	r.runOn(func(p *sim.Proc) {
		r.sys.Load(p, 0, reg.LineAt(0))
		r.sys.Load(p, 0, reg.LineAt(2))
		r.sys.Load(p, 0, reg.LineAt(2)) // same line twice
	})
	if n := r.sys.StopTouchTracking(); n != 2 {
		t.Fatalf("touched %d lines, want 2", n)
	}
}

func TestTooManyCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := topo.MeshXY(33, 33, 1)
	New(sim.NewEngine(1), m, memory.New(m), interconnect.New(m))
}

// Property: after any sequence of loads and stores by random cores, MOESI
// invariants hold and the last written value is returned by a subsequent
// load from any core.
func TestCoherenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		r := newRig(topo.AMD4x4())
		reg := r.mem.AllocLines(4, 0)
		type wr struct{ line, val uint64 }
		lastWrite := map[uint64]uint64{}
		ok := true
		r.e.Spawn("driver", func(p *sim.Proc) {
			for _, op := range ops {
				core := topo.CoreID(op % 16)
				lineIdx := uint64(op>>4) % 4
				a := reg.LineAt(int(lineIdx))
				if op&0x8000 != 0 {
					val := uint64(op)
					r.sys.Store(p, core, a, val)
					lastWrite[lineIdx] = val
				} else {
					got := r.sys.Load(p, core, a)
					if got != lastWrite[lineIdx] {
						ok = false
					}
				}
			}
		})
		r.e.Run()
		r.sys.CheckInvariants()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOwnerStallDelaysRemoteFetch injects an owner-stall fault: a fill served
// by the stalled owner's cache waits out the remainder of the stall window.
func TestOwnerStallDelaysRemoteFetch(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	writer, reader := topo.CoreID(0), topo.CoreID(2)
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, writer, a, 7) })
	base := r.runOn(func(p *sim.Proc) { r.sys.Load(p, reader, a) })
	// Re-own the line on the writer, stall it, and fetch again.
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, writer, a, 8) })
	const stall = 5_000
	r.sys.SetCoreStall(writer, r.e.Now()+stall)
	stalled := r.runOn(func(p *sim.Proc) { r.sys.Load(p, reader, a) })
	if stalled != base+stall {
		t.Fatalf("stalled fetch took %d, want %d (base %d + stall %d)", stalled, base+stall, base, stall)
	}
	// After the window expires, latency returns to the baseline.
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, writer, a, 9) })
	after := r.runOn(func(p *sim.Proc) { r.sys.Load(p, reader, a) })
	if after != base {
		t.Fatalf("post-stall fetch took %d, want %d", after, base)
	}
	r.sys.CheckInvariants()
}

// TestStalledHolderDelaysInvalidation: an upgrade must wait for the stalled
// holder's probe response.
func TestStalledHolderDelaysInvalidation(t *testing.T) {
	// RMW holds the line synchronously, so the probe to the stalled sharer is
	// on the caller's critical path (a plain store miss issues asynchronously
	// and would hide the stall).
	run := func(stall sim.Time) sim.Time {
		r := newRig(topo.AMD2x2())
		a := r.mem.AllocLines(1, 0).Base
		r.runOn(func(p *sim.Proc) { r.sys.Load(p, 2, a) }) // core 2 holds a copy
		if stall > 0 {
			r.sys.SetCoreStall(2, r.e.Now()+stall)
		}
		d := r.runOn(func(p *sim.Proc) { r.sys.RMW(p, 0, a, func(v uint64) uint64 { return v + 1 }) })
		r.sys.CheckInvariants()
		return d
	}
	base := run(0)
	const stall = 3_000
	got := run(stall)
	if got <= base {
		t.Fatalf("RMW with stalled holder took %d, want > fault-free %d", got, base)
	}
}

// TestDegradedLinkSlowsCrossSocketFill: a latency multiplier on the crossed
// link raises remote-fetch latency; same-socket traffic is unaffected.
func TestDegradedLinkSlowsCrossSocketFill(t *testing.T) {
	r := newRig(topo.AMD2x2())
	a := r.mem.AllocLines(1, 0).Base
	r.runOn(func(p *sim.Proc) { r.sys.Store(p, 0, a, 7) })
	base := r.runOn(func(p *sim.Proc) { r.sys.Load(p, 2, a) })

	r2 := newRig(topo.AMD2x2())
	a2 := r2.mem.AllocLines(1, 0).Base
	r2.runOn(func(p *sim.Proc) { r2.sys.Store(p, 0, a2, 7) })
	r2.fab.SetDegrade(0, 1, interconnect.Degrade{DelayFactor: 2})
	slow := r2.runOn(func(p *sim.Proc) { r2.sys.Load(p, 2, a2) })
	if slow != 2*base {
		t.Fatalf("degraded cross-socket fill took %d, want %d (2x base %d)", slow, 2*base, base)
	}
	// Same-socket fetch pays nothing for the degraded link.
	b := r2.mem.AllocLines(1, 0).Base
	r2.runOn(func(p *sim.Proc) { r2.sys.Store(p, 0, b, 7) })
	r3 := newRig(topo.AMD2x2())
	b3 := r3.mem.AllocLines(1, 0).Base
	r3.runOn(func(p *sim.Proc) { r3.sys.Store(p, 0, b3, 7) })
	want := r3.runOn(func(p *sim.Proc) { r3.sys.Load(p, 1, b3) })
	got := r2.runOn(func(p *sim.Proc) { r2.sys.Load(p, 1, b) })
	if got != want {
		t.Fatalf("same-socket fill on degraded fabric took %d, want %d", got, want)
	}
	r2.sys.CheckInvariants()
}
