// Package ckpt provides the small length-prefixed little-endian encoding
// primitives shared by every checkpoint serializer in the simulator
// (internal/sim engine state, cache directories, memory pages, metrics).
// Keeping the primitives in one dependency-free package gives every
// component the same byte-level conventions — which is what makes "the
// checkpoint bytes are the state" a usable equivalence test: two runs are
// byte-identical exactly when every component serializes identically.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WriteU64 writes each value as 8 little-endian bytes.
func WriteU64(w io.Writer, vs ...uint64) error {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadU64 reads 8 little-endian bytes into each destination.
func ReadU64(r io.Reader, vs ...*uint64) error {
	var buf [8]byte
	for _, v := range vs {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return err
		}
		*v = binary.LittleEndian.Uint64(buf[:])
	}
	return nil
}

// maxBlob bounds length prefixes accepted by ReadBytes/ReadU64Slice, so a
// corrupt or truncated stream fails with an error instead of a huge
// allocation.
const maxBlob = 1 << 32

// WriteBytes writes b with a u64 length prefix.
func WriteBytes(w io.Writer, b []byte) error {
	if err := WriteU64(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadBytes reads a length-prefixed byte slice.
func ReadBytes(r io.Reader) ([]byte, error) {
	var n uint64
	if err := ReadU64(r, &n); err != nil {
		return nil, err
	}
	if n > maxBlob {
		return nil, fmt.Errorf("ckpt: blob length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteString writes s with a u64 length prefix.
func WriteString(w io.Writer, s string) error { return WriteBytes(w, []byte(s)) }

// ReadString reads a length-prefixed string.
func ReadString(r io.Reader) (string, error) {
	b, err := ReadBytes(r)
	return string(b), err
}

// WriteU64Slice writes s with a u64 length prefix.
func WriteU64Slice(w io.Writer, s []uint64) error {
	if err := WriteU64(w, uint64(len(s))); err != nil {
		return err
	}
	return WriteU64(w, s...)
}

// ReadU64Slice reads a length-prefixed u64 slice.
func ReadU64Slice(r io.Reader) ([]uint64, error) {
	var n uint64
	if err := ReadU64(r, &n); err != nil {
		return nil, err
	}
	if n > maxBlob/8 {
		return nil, fmt.Errorf("ckpt: slice length %d exceeds limit", n)
	}
	s := make([]uint64, n)
	for i := range s {
		if err := ReadU64(r, &s[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Magic writes a fixed marker string (a format tag or section trailer).
func Magic(w io.Writer, magic string) error {
	_, err := io.WriteString(w, magic)
	return err
}

// ExpectMagic reads len(magic) bytes and verifies them.
func ExpectMagic(r io.Reader, magic string) error {
	b := make([]byte, len(magic))
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	if string(b) != magic {
		return fmt.Errorf("ckpt: bad magic %q (want %q)", b, magic)
	}
	return nil
}
