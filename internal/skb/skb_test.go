package skb

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func TestAssertQueryRetract(t *testing.T) {
	kb := New(topo.AMD2x2())
	kb.Assert("f", 1, 2)
	kb.Assert("f", 1, 3)
	kb.Assert("f", 2, 3)
	if got := len(kb.Query("f", 1, Wildcard)); got != 2 {
		t.Fatalf("query matched %d rows, want 2", got)
	}
	if got := len(kb.Query("f")); got != 3 {
		t.Fatalf("open query matched %d rows", got)
	}
	if r := kb.QueryOne("f", 2, Wildcard); r == nil || r[1] != 3 {
		t.Fatalf("QueryOne = %v", r)
	}
	if kb.QueryOne("f", 9, Wildcard) != nil {
		t.Fatal("QueryOne matched nothing but returned a row")
	}
	if n := kb.Retract("f", 1, Wildcard); n != 2 {
		t.Fatalf("retracted %d, want 2", n)
	}
	if kb.Count("f") != 1 {
		t.Fatalf("count=%d", kb.Count("f"))
	}
}

func TestQueryArityMismatchNoMatch(t *testing.T) {
	kb := New(topo.AMD2x2())
	kb.Assert("g", 1, 2, 3)
	if len(kb.Query("g", 1, 2)) != 0 {
		t.Fatal("pattern of wrong arity matched")
	}
}

func TestDiscoverFacts(t *testing.T) {
	m := topo.AMD4x4()
	kb := New(m)
	kb.Discover()
	if kb.Count("core") != 16 {
		t.Fatalf("core facts=%d", kb.Count("core"))
	}
	if kb.Count("socket") != 4 {
		t.Fatalf("socket facts=%d", kb.Count("socket"))
	}
	// core 9 is on socket 2
	if r := kb.QueryOne("core", 9, Wildcard); r == nil || r[1] != 2 {
		t.Fatalf("core(9,S)=%v", r)
	}
	// links are asserted both ways
	if kb.Count("link") != 2*len(m.Links) {
		t.Fatalf("link facts=%d", kb.Count("link"))
	}
	if r := kb.QueryOne("hops", 0, 3, Wildcard); r == nil || r[2] != 2 {
		t.Fatalf("hops(0,3)=%v", r)
	}
}

func TestMeasureAndLatency(t *testing.T) {
	m := topo.AMD2x2()
	kb := New(m)
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	if got := kb.Latency(0, 2); got != 2*m.TransferLat(2, 0) {
		t.Fatalf("latency(0,2)=%d", got)
	}
	if got := kb.Latency(0, 0); got != 0 {
		t.Fatal("self latency should be unmeasured")
	}
}

func TestMulticastTreeStructure(t *testing.T) {
	m := topo.AMD8x4()
	kb := New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	tree := kb.MulticastTree(0, nil)
	if tree.Fanout() != 31 {
		t.Fatalf("fanout=%d, want 31", tree.Fanout())
	}
	if len(tree.Local) != 3 {
		t.Fatalf("local children=%d, want 3", len(tree.Local))
	}
	if len(tree.Groups) != 7 {
		t.Fatalf("remote groups=%d, want 7", len(tree.Groups))
	}
	// One aggregation node per remote socket, each with 3 children.
	seen := map[topo.SocketID]bool{}
	for _, g := range tree.Groups {
		s := m.Socket(g.Agg)
		if seen[s] {
			t.Fatalf("socket %d has two aggregation nodes", s)
		}
		seen[s] = true
		if len(g.Children) != 3 {
			t.Fatalf("group %d has %d children", g.Agg, len(g.Children))
		}
		for _, c := range g.Children {
			if m.Socket(c) != s {
				t.Fatal("child on wrong socket")
			}
		}
	}
	// Groups ordered by decreasing latency.
	for i := 1; i < len(tree.Groups); i++ {
		if tree.Groups[i].Latency > tree.Groups[i-1].Latency {
			t.Fatal("groups not in decreasing latency order")
		}
	}
}

func TestMulticastTreeSubset(t *testing.T) {
	m := topo.AMD8x4()
	kb := New(m)
	kb.Discover()
	cores := []topo.CoreID{0, 1, 2, 4, 5, 8} // sockets 0 (0-3) and 1 (4-7), 2 (8-11)
	tree := kb.MulticastTree(0, cores)
	if tree.Fanout() != 5 {
		t.Fatalf("fanout=%d, want 5", tree.Fanout())
	}
	if len(tree.Local) != 2 { // cores 1, 2
		t.Fatalf("local=%v", tree.Local)
	}
	if len(tree.Groups) != 2 {
		t.Fatalf("groups=%d", len(tree.Groups))
	}
}

// HierMulticastTree on a 16-socket mesh with fanout 4: the source sends to
// 4 region heads; every one of the 15 remote socket groups appears exactly
// once (as a head or a relayed sub), region heads are the farthest groups of
// their chunk, and total coverage matches the flat tree.
func TestHierMulticastTreeStructure(t *testing.T) {
	m := topo.Mesh(4) // 16 sockets x 4 cores
	kb := New(m)
	kb.Discover()
	const fanout = 4
	tree := kb.HierMulticastTree(0, nil, fanout)
	if got, want := tree.Fanout(), m.NumCores()-1; got != want {
		t.Fatalf("fanout=%d, want %d", got, want)
	}
	if len(tree.Regions) != fanout {
		t.Fatalf("regions=%d, want %d", len(tree.Regions), fanout)
	}
	if len(tree.Local) != m.CoresPerSocket-1 {
		t.Fatalf("local=%v", tree.Local)
	}
	seen := map[topo.SocketID]bool{}
	note := func(g Group) {
		s := m.Socket(g.Agg)
		if seen[s] {
			t.Fatalf("socket %d appears twice", s)
		}
		seen[s] = true
	}
	for _, r := range tree.Regions {
		note(r.Group)
		for _, g := range r.Subs {
			note(g)
			// The head is its region's farthest group (flat order is
			// decreasing latency, chunks are contiguous).
			if g.Latency > r.Latency {
				t.Fatalf("sub group %d (lat %d) farther than its head %d (lat %d)",
					g.Agg, g.Latency, r.Agg, r.Latency)
			}
		}
	}
	if len(seen) != m.NSockets-1 {
		t.Fatalf("covered %d remote sockets, want %d", len(seen), m.NSockets-1)
	}
}

// With few remote sockets the hierarchical tree degenerates to the flat one:
// each region is a single group with no subs.
func TestHierMulticastTreeDegenerate(t *testing.T) {
	m := topo.AMD4x4()
	kb := New(m)
	kb.Discover()
	tree := kb.HierMulticastTree(0, nil, 8)
	flat := kb.MulticastTree(0, nil)
	if len(tree.Regions) != len(flat.Groups) {
		t.Fatalf("regions=%d, want %d", len(tree.Regions), len(flat.Groups))
	}
	for i, r := range tree.Regions {
		if len(r.Subs) != 0 {
			t.Fatalf("region %d has %d subs on a small machine", i, len(r.Subs))
		}
		if r.Agg != flat.Groups[i].Agg {
			t.Fatalf("region %d head %d != flat group %d", i, r.Agg, flat.Groups[i].Agg)
		}
	}
	if tree.Fanout() != flat.Fanout() {
		t.Fatalf("hier fanout %d != flat %d", tree.Fanout(), flat.Fanout())
	}
}

// The same seed always produces the same hierarchical tree (map iteration in
// group formation must not leak into region assignment).
func TestHierMulticastTreeDeterministic(t *testing.T) {
	m := topo.Mesh(3)
	kb := New(m)
	kb.Discover()
	a := kb.HierMulticastTree(5, nil, 3)
	for i := 0; i < 10; i++ {
		b := kb.HierMulticastTree(5, nil, 3)
		if len(a.Regions) != len(b.Regions) {
			t.Fatal("region count varies")
		}
		for j := range a.Regions {
			if a.Regions[j].Agg != b.Regions[j].Agg || len(a.Regions[j].Subs) != len(b.Regions[j].Subs) {
				t.Fatalf("region %d differs between runs", j)
			}
			for k := range a.Regions[j].Subs {
				if a.Regions[j].Subs[k].Agg != b.Regions[j].Subs[k].Agg {
					t.Fatalf("region %d sub %d differs between runs", j, k)
				}
			}
		}
	}
}

func TestMulticastTreeWithoutMeasurementsUsesHops(t *testing.T) {
	m := topo.AMD8x4()
	kb := New(m)
	kb.Discover() // no Measure
	tree := kb.MulticastTree(0, nil)
	if len(tree.Groups) != 7 {
		t.Fatalf("groups=%d", len(tree.Groups))
	}
	// Furthest socket from 0 in the Figure 2 grid is 7 (4 hops).
	if got := m.Socket(tree.Groups[0].Agg); got != 7 {
		t.Fatalf("first group socket=%d, want 7 (furthest)", got)
	}
}

func TestMulticastTreeDeterministic(t *testing.T) {
	m := topo.AMD4x4()
	kb := New(m)
	kb.Discover()
	a := kb.MulticastTree(5, nil)
	b := kb.MulticastTree(5, nil)
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a.Groups {
		if a.Groups[i].Agg != b.Groups[i].Agg {
			t.Fatal("nondeterministic tree")
		}
	}
}

func TestAllocAdvice(t *testing.T) {
	kb := New(topo.AMD4x4())
	if kb.AllocAdvice(9) != 2 {
		t.Fatalf("advice=%d, want 2", kb.AllocAdvice(9))
	}
}

func TestDriverPlacement(t *testing.T) {
	m := topo.AMD4x4() // IOSocket 0
	kb := New(m)
	if got := kb.DriverPlacement(); got != 0 {
		t.Fatalf("placement=%d, want 0", got)
	}
	if got := kb.DriverPlacement(0); got != 1 {
		t.Fatalf("placement excluding 0 = %d, want 1", got)
	}
	// Reserve the whole I/O socket: next closest socket wins.
	got := kb.DriverPlacement(0, 1, 2, 3)
	if m.Hops(m.Socket(got), m.IOSocket) != 1 {
		t.Fatalf("placement %d not adjacent to I/O socket", got)
	}
}
