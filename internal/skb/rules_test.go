package skb

import (
	"strings"
	"testing"
	"testing/quick"

	"multikernel/internal/topo"
)

func TestInferTransitiveClosure(t *testing.T) {
	kb := New(topo.AMD2x2())
	kb.Assert("edge", 1, 2)
	kb.Assert("edge", 2, 3)
	kb.Assert("edge", 3, 4)
	rules := []Rule{
		R(A("path", V("X"), V("Y")), A("edge", V("X"), V("Y"))),
		R(A("path", V("X"), V("Z")), A("path", V("X"), V("Y")), A("edge", V("Y"), V("Z"))),
	}
	added, err := kb.Infer(rules)
	if err != nil {
		t.Fatal(err)
	}
	// paths: 1-2,2-3,3-4,1-3,2-4,1-4 = 6
	if kb.Count("path") != 6 {
		t.Fatalf("path count=%d, want 6 (added %d)", kb.Count("path"), added)
	}
	if kb.QueryOne("path", 1, 4) == nil {
		t.Fatal("transitive path 1->4 missing")
	}
	if kb.QueryOne("path", 4, 1) != nil {
		t.Fatal("reverse path derived from nothing")
	}
}

func TestInferFixpointTerminates(t *testing.T) {
	kb := New(topo.AMD2x2())
	kb.Assert("edge", 1, 2)
	kb.Assert("edge", 2, 1) // cycle
	rules := []Rule{
		R(A("path", V("X"), V("Y")), A("edge", V("X"), V("Y"))),
		R(A("path", V("X"), V("Z")), A("path", V("X"), V("Y")), A("path", V("Y"), V("Z"))),
	}
	if _, err := kb.Infer(rules); err != nil {
		t.Fatal(err)
	}
	// Closure over the 2-cycle: 1-2, 2-1, 1-1, 2-2.
	if kb.Count("path") != 4 {
		t.Fatalf("path count=%d, want 4", kb.Count("path"))
	}
}

func TestInferRerunIsIdempotent(t *testing.T) {
	kb := New(topo.AMD2x2())
	kb.Assert("edge", 1, 2)
	rules := []Rule{R(A("path", V("X"), V("Y")), A("edge", V("X"), V("Y")))}
	kb.Infer(rules)
	added, _ := kb.Infer(rules)
	if added != 0 {
		t.Fatalf("second run added %d facts", added)
	}
}

func TestBuiltins(t *testing.T) {
	kb := New(topo.AMD2x2())
	kb.Assert("n", 1)
	kb.Assert("n", 2)
	kb.Assert("n", 3)
	rules := []Rule{
		R(A("pair", V("X"), V("Y")), A("n", V("X")), A("n", V("Y")), A("lt", V("X"), V("Y"))),
		R(A("sum", V("X"), V("Y"), V("Z")), A("pair", V("X"), V("Y")), A("add", V("X"), V("Y"), V("Z"))),
	}
	if _, err := kb.Infer(rules); err != nil {
		t.Fatal(err)
	}
	if kb.Count("pair") != 3 { // (1,2) (1,3) (2,3)
		t.Fatalf("pair count=%d", kb.Count("pair"))
	}
	if kb.QueryOne("sum", 1, 2, 3) == nil || kb.QueryOne("sum", 2, 3, 5) == nil {
		t.Fatal("add builtin wrong")
	}
}

func TestUnboundHeadVariableErrors(t *testing.T) {
	kb := New(topo.AMD2x2())
	kb.Assert("f", 1)
	rules := []Rule{R(A("g", V("X"), V("Y")), A("f", V("X")))}
	if _, err := kb.Infer(rules); err == nil {
		t.Fatal("unbound head variable accepted")
	}
}

func TestStandardRulesDeriveRoutes(t *testing.T) {
	m := topo.AMD8x4()
	kb := New(m)
	kb.Discover()
	if _, err := kb.Infer(StandardRules()); err != nil {
		t.Fatal(err)
	}
	// Inferred minimum route lengths must equal the machine's BFS hops.
	for a := 0; a < m.NSockets; a++ {
		for b := 0; b < m.NSockets; b++ {
			if a == b {
				continue
			}
			want := int64(m.Hops(topo.SocketID(a), topo.SocketID(b)))
			if got := kb.MinRoute(int64(a), int64(b)); got != want {
				t.Fatalf("route %d->%d: inferred %d, BFS %d", a, b, got, want)
			}
		}
	}
}

func TestStandardRulesSameSocket(t *testing.T) {
	m := topo.AMD4x4()
	kb := New(m)
	kb.Discover()
	kb.Infer(StandardRules())
	if kb.QueryOne("samesocket", 0, 1) == nil {
		t.Fatal("cores 0,1 not derived as same socket")
	}
	if kb.QueryOne("samesocket", 0, 4) != nil {
		t.Fatal("cores 0,4 wrongly same socket")
	}
	if kb.QueryOne("samesocket", 2, 2) != nil {
		t.Fatal("reflexive samesocket derived despite ne guard")
	}
}

func TestRuleAndAtomStrings(t *testing.T) {
	r := R(A("path", V("X"), V("Z")), A("edge", V("X"), V("Y")), A("edge", V("Y"), C(7)))
	s := r.String()
	for _, want := range []string{"path(X,Z)", ":-", "edge(X,Y)", "edge(Y,7)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rule string %q missing %q", s, want)
		}
	}
	if fact := R(A("f", C(1))).String(); fact != "f(1)." {
		t.Fatalf("fact string %q", fact)
	}
}

func TestSortedRowsDeterministic(t *testing.T) {
	kb := New(topo.AMD2x2())
	kb.Assert("r", 3, 1)
	kb.Assert("r", 1, 2)
	kb.Assert("r", 1, 1)
	rows := kb.SortedRows("r")
	if rows[0][0] != 1 || rows[0][1] != 1 || rows[2][0] != 3 {
		t.Fatalf("rows: %v", rows)
	}
}

// Property: inferred MinRoute always matches BFS hops on random meshes.
func TestInferredRoutesMatchBFSProperty(t *testing.T) {
	f := func(nx, ny uint8) bool {
		w, h := int(nx%3)+1, int(ny%3)+1
		if w*h < 2 {
			return true
		}
		m := topo.MeshXY(w, h, 1)
		kb := New(m)
		kb.Discover()
		if _, err := kb.Infer(StandardRules()); err != nil {
			return false
		}
		for a := 0; a < m.NSockets; a++ {
			for b := 0; b < m.NSockets; b++ {
				if a == b {
					continue
				}
				if kb.MinRoute(int64(a), int64(b)) != int64(m.Hops(topo.SocketID(a), topo.SocketID(b))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
