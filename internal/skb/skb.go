// Package skb implements the system knowledge base (paper §4.9): a
// repository of facts about the machine, populated from hardware discovery
// (topology), online measurement (pairwise URPC latency) and pre-asserted
// knowledge, with a query interface used to derive policy — most importantly
// the NUMA-aware multicast trees that make TLB shootdown scale (§5.1).
//
// The paper's SKB embeds a constraint-logic-programming system (ECLiPSe);
// this implementation provides a small relational fact store with wildcard
// queries, which is sufficient for every query the evaluation performs.
package skb

import (
	"fmt"
	"sort"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Wildcard matches any value in a Query pattern.
const Wildcard = int64(-1 << 62)

// KB is a fact store: a set of named relations over integers.
type KB struct {
	mach  *topo.Machine
	facts map[string][][]int64
}

// New returns an empty knowledge base for the machine.
func New(m *topo.Machine) *KB {
	return &KB{mach: m, facts: make(map[string][][]int64)}
}

// Machine returns the machine this KB describes.
func (kb *KB) Machine() *topo.Machine { return kb.mach }

// Assert adds the fact pred(args...).
func (kb *KB) Assert(pred string, args ...int64) {
	row := make([]int64, len(args))
	copy(row, args)
	kb.facts[pred] = append(kb.facts[pred], row)
}

// Retract removes all facts of pred matching the pattern (Wildcard matches
// anything) and returns the number removed.
func (kb *KB) Retract(pred string, pattern ...int64) int {
	rows := kb.facts[pred]
	var keep [][]int64
	removed := 0
	for _, r := range rows {
		if matches(r, pattern) {
			removed++
		} else {
			keep = append(keep, r)
		}
	}
	kb.facts[pred] = keep
	return removed
}

// Query returns all rows of pred matching the pattern. A nil pattern matches
// every row.
func (kb *KB) Query(pred string, pattern ...int64) [][]int64 {
	var out [][]int64
	for _, r := range kb.facts[pred] {
		if matches(r, pattern) {
			out = append(out, r)
		}
	}
	return out
}

// QueryOne returns the first row of pred matching the pattern, or nil.
func (kb *KB) QueryOne(pred string, pattern ...int64) []int64 {
	for _, r := range kb.facts[pred] {
		if matches(r, pattern) {
			return r
		}
	}
	return nil
}

// Count returns the number of facts of pred.
func (kb *KB) Count(pred string) int { return len(kb.facts[pred]) }

func matches(row, pattern []int64) bool {
	if len(pattern) == 0 {
		return true
	}
	if len(row) != len(pattern) {
		return false
	}
	for i, p := range pattern {
		if p != Wildcard && row[i] != p {
			return false
		}
	}
	return true
}

// Discover populates the KB with hardware-discovery facts: core(id, socket),
// socket(id), link(a, b), hops(a, b, n), iosocket(id) — the ACPI/PCI/CPUID
// equivalent of the paper.
func (kb *KB) Discover() {
	m := kb.mach
	for s := 0; s < m.NSockets; s++ {
		kb.Assert("socket", int64(s))
		for _, c := range m.CoresOf(topo.SocketID(s)) {
			kb.Assert("core", int64(c), int64(s))
		}
	}
	for _, l := range m.Links {
		kb.Assert("link", int64(l.A), int64(l.B))
		kb.Assert("link", int64(l.B), int64(l.A))
	}
	for a := 0; a < m.NSockets; a++ {
		for b := 0; b < m.NSockets; b++ {
			kb.Assert("hops", int64(a), int64(b), int64(m.Hops(topo.SocketID(a), topo.SocketID(b))))
		}
	}
	kb.Assert("iosocket", int64(m.IOSocket))
}

// Measure populates pairwise message-latency facts msg_latency(a, b, cycles)
// using the supplied probe function, the analogue of the paper's online URPC
// latency measurement between all core pairs.
func (kb *KB) Measure(probe func(a, b topo.CoreID) sim.Time) {
	n := kb.mach.NumCores()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			kb.Assert("msg_latency", int64(a), int64(b), int64(probe(topo.CoreID(a), topo.CoreID(b))))
		}
	}
}

// Latency returns the measured message latency from a to b, or 0 if the KB
// has no measurement.
func (kb *KB) Latency(a, b topo.CoreID) sim.Time {
	if r := kb.QueryOne("msg_latency", int64(a), int64(b), Wildcard); r != nil {
		return sim.Time(r[2])
	}
	return 0
}

// Group is one socket's portion of a multicast tree: an aggregation core
// that receives the message over the interconnect and forwards it to its
// socket-local children through the shared cache.
type Group struct {
	Agg      topo.CoreID
	Children []topo.CoreID
	Latency  sim.Time // measured latency from the tree source to Agg
}

// Tree is a two-level, NUMA-aware multicast tree rooted at Source (§5.1):
// one aggregation node per socket, ordered by decreasing latency so the
// longest paths are started first, plus the source's own socket-local
// children.
type Tree struct {
	Source topo.CoreID
	Groups []Group       // remote sockets, decreasing latency order
	Local  []topo.CoreID // cores sharing the source's socket
}

// Fanout returns the total number of cores the tree reaches (excluding the
// source).
func (t *Tree) Fanout() int {
	n := len(t.Local)
	for _, g := range t.Groups {
		n += 1 + len(g.Children)
	}
	return n
}

// MulticastTree computes the multicast tree from src covering the given
// cores (pass nil for all cores). The aggregation node of each socket is its
// lowest-numbered participating core; remote groups are ordered by
// decreasing measured latency, falling back to hop counts when the KB has no
// measurements.
func (kb *KB) MulticastTree(src topo.CoreID, cores []topo.CoreID) *Tree {
	m := kb.mach
	if cores == nil {
		for i := 0; i < m.NumCores(); i++ {
			cores = append(cores, topo.CoreID(i))
		}
	}
	bySocket := make(map[topo.SocketID][]topo.CoreID)
	for _, c := range cores {
		if c == src {
			continue
		}
		bySocket[m.Socket(c)] = append(bySocket[m.Socket(c)], c)
	}
	t := &Tree{Source: src}
	srcSocket := m.Socket(src)
	for s, cs := range bySocket {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		if s == srcSocket {
			t.Local = cs
			continue
		}
		g := Group{Agg: cs[0], Children: cs[1:]}
		g.Latency = kb.Latency(src, g.Agg)
		if g.Latency == 0 {
			// No measurement: approximate with hop count so ordering still
			// reflects distance.
			g.Latency = sim.Time(m.Hops(srcSocket, s))
		}
		t.Groups = append(t.Groups, g)
	}
	sort.Slice(t.Groups, func(i, j int) bool {
		if t.Groups[i].Latency != t.Groups[j].Latency {
			return t.Groups[i].Latency > t.Groups[j].Latency
		}
		return t.Groups[i].Agg < t.Groups[j].Agg // deterministic tie-break
	})
	return t
}

// Region is one subtree of a hierarchical multicast tree: a head group whose
// aggregation core both forwards to its own socket-local children and relays
// the message onward to the Subs groups' aggregators.
type Region struct {
	Group         // the head: first (highest-latency) group of the region
	Subs  []Group // remaining socket groups, reached via the head's Agg
}

// HierTree is a three-level multicast tree for large machines: the source
// sends to at most `fanout` region heads; each head forwards to its own
// socket-local children and relays to the aggregators of the region's other
// sockets, which in turn forward to their children. On machines with no more
// than `fanout` remote sockets it degenerates to the flat two-level Tree.
type HierTree struct {
	Source  topo.CoreID
	Regions []Region
	Local   []topo.CoreID
}

// Fanout returns the total number of cores the tree reaches (excluding the
// source).
func (t *HierTree) Fanout() int {
	n := len(t.Local)
	for _, r := range t.Regions {
		n += 1 + len(r.Children)
		for _, g := range r.Subs {
			n += 1 + len(g.Children)
		}
	}
	return n
}

// HierMulticastTree computes a hierarchical multicast tree from src covering
// the given cores (nil = all), bounding the source's direct sends to at most
// fanout region heads. Socket groups are formed exactly as in MulticastTree
// and kept in its decreasing-latency order; when they exceed the fanout they
// are split into balanced contiguous runs, so each region's head is its
// farthest group and the relayed groups are nearer ones whose extra hop
// overlaps the head's own forwarding.
func (kb *KB) HierMulticastTree(src topo.CoreID, cores []topo.CoreID, fanout int) *HierTree {
	if fanout < 1 {
		panic("skb: hierarchical multicast fanout must be >= 1")
	}
	flat := kb.MulticastTree(src, cores)
	t := &HierTree{Source: flat.Source, Local: flat.Local}
	n := len(flat.Groups)
	if n == 0 {
		return t
	}
	nregions := fanout
	if n < nregions {
		nregions = n
	}
	for i := 0; i < nregions; i++ {
		// Balanced contiguous chunks: the first n%nregions regions get one
		// extra group.
		lo := i*(n/nregions) + min(i, n%nregions)
		hi := lo + n/nregions
		if i < n%nregions {
			hi++
		}
		chunk := flat.Groups[lo:hi]
		t.Regions = append(t.Regions, Region{Group: chunk[0], Subs: chunk[1:]})
	}
	return t
}

// AllocAdvice returns the socket whose memory a channel or buffer serving
// core c should be allocated from: c's own socket (NUMA-local placement).
func (kb *KB) AllocAdvice(c topo.CoreID) topo.SocketID {
	return kb.mach.Socket(c)
}

// DriverPlacement recommends a core for a device driver: the lowest-numbered
// core on the socket closest to the I/O hub, excluding the given reserved
// cores.
func (kb *KB) DriverPlacement(reserved ...topo.CoreID) topo.CoreID {
	m := kb.mach
	isReserved := func(c topo.CoreID) bool {
		for _, r := range reserved {
			if r == c {
				return true
			}
		}
		return false
	}
	type cand struct {
		c    topo.CoreID
		hops int
	}
	var best *cand
	for i := 0; i < m.NumCores(); i++ {
		c := topo.CoreID(i)
		if isReserved(c) {
			continue
		}
		h := m.Hops(m.Socket(c), m.IOSocket)
		if best == nil || h < best.hops || (h == best.hops && c < best.c) {
			best = &cand{c, h}
		}
	}
	if best == nil {
		panic("skb: no unreserved core for driver placement")
	}
	return best.c
}

// String renders the KB's relations and cardinalities.
func (kb *KB) String() string {
	preds := make([]string, 0, len(kb.facts))
	for p := range kb.facts {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	s := fmt.Sprintf("skb for %s:", kb.mach.Name)
	for _, p := range preds {
		s += fmt.Sprintf(" %s/%d", p, len(kb.facts[p]))
	}
	return s
}
