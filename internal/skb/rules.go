package skb

import (
	"fmt"
	"sort"
	"strings"
)

// This file adds a small Datalog-style inference engine to the knowledge
// base. The paper's SKB embeds the ECLiPSe constraint-logic-programming
// system and expresses placement policy as logical rules over hardware
// facts; this engine provides the same flavour for the queries the
// evaluation needs: derived relations computed as the fixpoint of Horn
// rules over the fact store, e.g.
//
//	reach(A, B) :- link(A, B).
//	reach(A, C) :- reach(A, B), link(B, C).
//
// Terms are integers; variables are named strings. Built-in relations
// (`ne`, `lt`, `add`) cover the arithmetic the policies use.

// Term is either a constant (Var == "") or a variable reference.
type Term struct {
	Var   string
	Const int64
}

// V names a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term.
func C(v int64) Term { return Term{Const: v} }

// Atom is a predicate applied to terms: pred(t1, ..., tn).
type Atom struct {
	Pred  string
	Terms []Term
}

// A builds an atom.
func A(pred string, terms ...Term) Atom { return Atom{Pred: pred, Terms: terms} }

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		if t.Var != "" {
			parts[i] = t.Var
		} else {
			parts[i] = fmt.Sprint(t.Const)
		}
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Rule is a Horn clause: Head :- Body[0], Body[1], ...
type Rule struct {
	Head Atom
	Body []Atom
}

// R builds a rule.
func R(head Atom, body ...Atom) Rule { return Rule{Head: head, Body: body} }

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, b := range r.Body {
		parts[i] = b.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// bindings maps variable names to values during rule evaluation.
type bindings map[string]int64

func (b bindings) clone() bindings {
	nb := make(bindings, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// unify matches an atom's terms against a fact row under b, returning the
// extended bindings or nil.
func unify(terms []Term, row []int64, b bindings) bindings {
	if len(terms) != len(row) {
		return nil
	}
	nb := b
	cloned := false
	for i, t := range terms {
		want := row[i]
		if t.Var == "" {
			if t.Const != want {
				return nil
			}
			continue
		}
		if v, ok := nb[t.Var]; ok {
			if v != want {
				return nil
			}
			continue
		}
		if !cloned {
			nb = nb.clone()
			cloned = true
		}
		nb[t.Var] = want
	}
	return nb
}

// evalBuiltin evaluates the built-in relations. It returns (newBindings,
// handled, ok): handled=false means the predicate is not a built-in.
func evalBuiltin(a Atom, b bindings) (bindings, bool, bool) {
	val := func(t Term) (int64, bool) {
		if t.Var == "" {
			return t.Const, true
		}
		v, ok := b[t.Var]
		return v, ok
	}
	switch a.Pred {
	case "ne", "lt", "le":
		x, okx := val(a.Terms[0])
		y, oky := val(a.Terms[1])
		if !okx || !oky {
			return nil, true, false // built-ins need ground arguments
		}
		switch a.Pred {
		case "ne":
			return b, true, x != y
		case "lt":
			return b, true, x < y
		default:
			return b, true, x <= y
		}
	case "add": // add(X, Y, Z): Z = X + Y, Z may be unbound
		x, okx := val(a.Terms[0])
		y, oky := val(a.Terms[1])
		if !okx || !oky {
			return nil, true, false
		}
		z := a.Terms[2]
		if z.Var == "" {
			return b, true, z.Const == x+y
		}
		if v, ok := b[z.Var]; ok {
			return b, true, v == x+y
		}
		nb := b.clone()
		nb[z.Var] = x + y
		return nb, true, true
	}
	return nil, false, false
}

// matchBody enumerates all bindings satisfying the body atoms in order.
func (kb *KB) matchBody(body []Atom, b bindings, out func(bindings)) {
	if len(body) == 0 {
		out(b)
		return
	}
	head, rest := body[0], body[1:]
	if nb, handled, ok := evalBuiltin(head, b); handled {
		if ok {
			kb.matchBody(rest, nb, out)
		}
		return
	}
	for _, row := range kb.facts[head.Pred] {
		if nb := unify(head.Terms, row, b); nb != nil {
			kb.matchBody(rest, nb, out)
		}
	}
}

// instantiate grounds an atom under bindings; all variables must be bound.
func instantiate(a Atom, b bindings) ([]int64, error) {
	row := make([]int64, len(a.Terms))
	for i, t := range a.Terms {
		if t.Var == "" {
			row[i] = t.Const
			continue
		}
		v, ok := b[t.Var]
		if !ok {
			return nil, fmt.Errorf("skb: unbound variable %q in %v", t.Var, a)
		}
		row[i] = v
	}
	return row, nil
}

// Infer computes the fixpoint of the given rules over the current facts,
// asserting every newly derived fact. It returns the number of facts added
// and an error if a rule head contains a variable its body never binds.
func (kb *KB) Infer(rules []Rule) (int, error) {
	type key string
	seen := make(map[string]map[key]bool)
	mark := func(pred string, row []int64) bool {
		m := seen[pred]
		if m == nil {
			m = make(map[key]bool)
			seen[pred] = m
		}
		k := key(fmt.Sprint(row))
		if m[k] {
			return false
		}
		m[k] = true
		return true
	}
	for pred, rows := range kb.facts {
		for _, row := range rows {
			mark(pred, row)
		}
	}

	added := 0
	var evalErr error
	for {
		newThisPass := 0
		for _, r := range rules {
			kb.matchBody(r.Body, bindings{}, func(b bindings) {
				row, err := instantiate(r.Head, b)
				if err != nil {
					evalErr = err
					return
				}
				if mark(r.Head.Pred, row) {
					kb.Assert(r.Head.Pred, row...)
					newThisPass++
					added++
				}
			})
			if evalErr != nil {
				return added, evalErr
			}
		}
		if newThisPass == 0 {
			return added, nil
		}
	}
}

// SortedRows returns pred's rows in lexicographic order, for deterministic
// policy decisions derived from inferred relations.
func (kb *KB) SortedRows(pred string) [][]int64 {
	rows := append([][]int64(nil), kb.facts[pred]...)
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return rows
}

// StandardRules returns the policy rules the multikernel derives routes
// from: socket reachability with hop counts and same-socket core pairs.
//
//	route(A, B, 1)   :- link(A, B).
//	route(A, C, N+1) :- route(A, B, N), link(B, C), A != C, N < 8.
//	samesocket(X, Y) :- core(X, S), core(Y, S), X != Y.
func StandardRules() []Rule {
	return []Rule{
		R(A("route", V("A"), V("B"), C(1)), A("link", V("A"), V("B"))),
		R(A("route", V("A"), V("C"), V("M")),
			A("route", V("A"), V("B"), V("N")),
			A("link", V("B"), V("C")),
			A("ne", V("A"), V("C")),
			A("lt", V("N"), C(8)),
			A("add", V("N"), C(1), V("M"))),
		R(A("samesocket", V("X"), V("Y")),
			A("core", V("X"), V("S")),
			A("core", V("Y"), V("S")),
			A("ne", V("X"), V("Y"))),
	}
}

// MinRoute returns the minimum inferred route length between two sockets
// (after Infer(StandardRules())), or -1 if unreachable.
func (kb *KB) MinRoute(a, b int64) int64 {
	best := int64(-1)
	for _, row := range kb.Query("route", a, b, Wildcard) {
		if best < 0 || row[2] < best {
			best = row[2]
		}
	}
	return best
}
