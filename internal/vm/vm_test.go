package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"multikernel/internal/cache"
	"multikernel/internal/caps"
	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

type rig struct {
	e   *sim.Engine
	m   *topo.Machine
	sys *cache.System
	mgr *Manager
	cs  *caps.CSpace
	ram caps.Ref
}

func newRig(m *topo.Machine) *rig {
	e := sim.NewEngine(1)
	mem := memory.New(m)
	sys := cache.New(e, m, mem, interconnect.New(m))
	mgr := NewManager(sys, 0)
	cs := caps.NewCSpace("test")
	// Back page tables with a real allocated region.
	reg := mem.Alloc(1<<20, 0)
	ram := cs.AddRoot(caps.Capability{Type: caps.RAM, Base: reg.Base, Bytes: reg.Bytes, Rights: caps.AllRights})
	return &rig{e: e, m: m, sys: sys, mgr: mgr, cs: cs, ram: ram}
}

// frame allocates physical memory and returns a Frame capability for it.
func (r *rig) frame(bytes uint64, rights caps.Rights) caps.Ref {
	reg := r.sys.Memory().Alloc(int(bytes), 0)
	return r.cs.AddRoot(caps.Capability{Type: caps.Frame, Base: reg.Base, Bytes: bytes, Rights: rights})
}

func (r *rig) run(fn func(p *sim.Proc)) {
	r.e.Spawn("t", fn)
	r.e.Run()
}

func TestMapTranslateAccess(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, err := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		if err != nil {
			t.Fatal(err)
		}
		f := r.frame(PageSize, caps.AllRights)
		if err := s.Map(p, 0, 0x400000, f, Read|Write); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Access(p, 0, 0x400008, true, 777); err != nil {
			t.Fatal(err)
		}
		v, err := s.Access(p, 0, 0x400008, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v != 777 {
			t.Fatalf("read back %d", v)
		}
	})
}

func TestTranslateUnmappedFails(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		if _, err := s.Translate(p, 0, 0x1000, false); !errors.Is(err, ErrNotMapped) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestMapRequiresFrameCap(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		notFrame := r.cs.AddRoot(caps.Capability{Type: caps.RAM, Base: 0x999000, Bytes: PageSize, Rights: caps.AllRights})
		if err := s.Map(p, 0, 0x400000, notFrame, Read); !errors.Is(err, ErrNotAFrame) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestMapWritableNeedsWriteRight(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		ro := r.frame(PageSize, caps.CanRead|caps.CanGrant)
		if err := s.Map(p, 0, 0x400000, ro, Read|Write); !errors.Is(err, ErrPerms) {
			t.Fatalf("err=%v", err)
		}
		if err := s.Map(p, 0, 0x400000, ro, Read); err != nil {
			t.Fatalf("read-only map failed: %v", err)
		}
	})
}

func TestWriteToReadOnlyMappingFaults(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(PageSize, caps.AllRights)
		if err := s.Map(p, 0, 0x400000, f, Read); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Access(p, 0, 0x400000, true, 1); !errors.Is(err, ErrPerms) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestTLBHitAvoidsWalk(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(PageSize, caps.AllRights)
		s.Map(p, 0, 0x400000, f, Read|Write)
		s.Translate(p, 0, 0x400000, false)
		start := p.Now()
		s.Translate(p, 0, 0x400123, false) // same page
		hitCost := p.Now() - start
		if hitCost != 0 {
			t.Fatalf("TLB hit cost %d, want 0 (no memory access)", hitCost)
		}
		tlb := r.mgr.TLB(0)
		if tlb.Fills != 1 || tlb.Hits != 1 {
			t.Fatalf("fills=%d hits=%d", tlb.Fills, tlb.Hits)
		}
	})
}

func TestTLBEvictionAtCapacity(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.mgr.tlbSize = 4
	r.mgr.tlbs[0] = newTLB(4)
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(8*PageSize, caps.AllRights)
		for i := 0; i < 8; i++ {
			// Map each page of the frame at consecutive VAs.
			sub, _ := r.cs.Mint(f, 0xff)
			_ = sub
			s.Map(p, 0, VAddr(0x400000+i*PageSize), f, Read)
			s.Translate(p, 0, VAddr(0x400000+i*PageSize), false)
		}
		if got := r.mgr.TLB(0).Len(); got != 4 {
			t.Fatalf("TLB holds %d entries, want capacity 4", got)
		}
	})
}

func TestUnmapClearsPTEAndShootsDown(t *testing.T) {
	r := newRig(topo.AMD4x4())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(PageSize, caps.AllRights)
		s.Map(p, 0, 0x400000, f, Read|Write)
		// Populate TLBs on several cores.
		for _, c := range []topo.CoreID{0, 5, 10, 15} {
			if _, err := s.Translate(p, c, 0x400000, false); err != nil {
				t.Fatal(err)
			}
		}
		shot := false
		shoot := func(p *sim.Proc, va VAddr, bytes uint64, space uint8) bool {
			shot = true
			// Simulate what the monitors do on every core.
			for c := 0; c < r.m.NumCores(); c++ {
				r.mgr.InvalidateRange(topo.CoreID(c), space, va, bytes)
			}
			return true
		}
		if err := s.Unmap(p, 0, 0x400000, PageSize, shoot); err != nil {
			t.Fatal(err)
		}
		if !shot {
			t.Fatal("shootdown not invoked")
		}
		r.mgr.CheckNoStaleTLB(s.ID, 0x400000, PageSize)
		if _, err := s.Translate(p, 3, 0x400000, false); !errors.Is(err, ErrNotMapped) {
			t.Fatalf("translate after unmap: %v", err)
		}
	})
}

func TestUnmapUnmappedErrors(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		if err := s.Unmap(p, 0, 0x400000, PageSize, nil); !errors.Is(err, ErrNotMapped) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestSetProtDowngrade(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(PageSize, caps.AllRights)
		s.Map(p, 0, 0x400000, f, Read|Write)
		if !s.SetProt(p, 0, 0x400000, Read) {
			t.Fatal("SetProt found no mapping")
		}
		// TLB still holds the writable entry until shot down; fresh cores see
		// the new permissions.
		if _, err := s.Access(p, 2, 0x400000, true, 1); !errors.Is(err, ErrPerms) {
			t.Fatalf("write after downgrade: %v", err)
		}
	})
}

func TestPageTablesAreRealCapabilities(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		before := r.cs.Len()
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(PageSize, caps.AllRights)
		s.Map(p, 0, 0x400000, f, Read|Write)
		// Root + 3 intermediate levels = 4 PageTable caps (plus the RAM
		// sub-caps they were carved from).
		pts := 0
		for _, c := range r.cs.All() {
			if c.Type == caps.PageTable {
				pts++
			}
		}
		if pts != 4 {
			t.Fatalf("%d PageTable caps, want 4", pts)
		}
		if r.cs.Len() <= before {
			t.Fatal("no capabilities created")
		}
		if err := caps.ConflictCheck(r.cs); err != nil {
			t.Fatalf("capability conflict: %v", err)
		}
	})
}

func TestSecondMappingReusesTables(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(2*PageSize, caps.AllRights)
		s.Map(p, 0, 0x400000, f, Read)
		used := s.used
		s.Map(p, 0, 0x401000, f, Read) // same 2MB region: no new tables
		if s.used != used {
			t.Fatalf("second map allocated %d bytes of tables", s.used-used)
		}
	})
}

// Property: after any interleaving of map/translate/unmap (with full
// invalidation), no translate ever returns a mapping that was unmapped, and
// no stale TLB entries survive an unmap.
func TestNoAccessAfterUnmapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := newRig(topo.AMD2x2())
		ok := true
		r.run(func(p *sim.Proc) {
			s, err := r.mgr.NewSpace(p, 0, r.cs, r.ram)
			if err != nil {
				ok = false
				return
			}
			frames := make(map[VAddr]caps.Ref)
			mapped := make(map[VAddr]bool)
			shoot := func(p *sim.Proc, va VAddr, bytes uint64, space uint8) bool {
				for c := 0; c < r.m.NumCores(); c++ {
					r.mgr.InvalidateRange(topo.CoreID(c), space, va, bytes)
				}
				return true
			}
			for _, op := range ops {
				va := VAddr(0x400000 + uint64(op%8)*PageSize)
				core := topo.CoreID(op % 4)
				switch (op >> 3) % 3 {
				case 0: // map
					if !mapped[va] {
						fr, exists := frames[va]
						if !exists {
							fr = r.frame(PageSize, caps.AllRights)
							frames[va] = fr
						}
						if err := s.Map(p, core, va, fr, Read|Write); err != nil {
							ok = false
							return
						}
						mapped[va] = true
					}
				case 1: // access
					_, err := s.Translate(p, core, va, false)
					if mapped[va] && err != nil {
						ok = false
						return
					}
					if !mapped[va] && err == nil {
						ok = false
						return
					}
				case 2: // unmap
					if mapped[va] {
						if err := s.Unmap(p, core, va, PageSize, shoot); err != nil {
							ok = false
							return
						}
						mapped[va] = false
						r.mgr.CheckNoStaleTLB(s.ID, va, PageSize)
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessUnalignedWithinPage(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(PageSize, caps.AllRights)
		s.Map(p, 0, 0x400000, f, Read|Write)
		// Different offsets within one page translate through one TLB entry.
		s.Access(p, 0, 0x400008, true, 11)
		s.Access(p, 0, 0x400010, true, 22)
		v1, _ := s.Access(p, 0, 0x400008, false, 0)
		v2, _ := s.Access(p, 0, 0x400010, false, 0)
		if v1 != 11 || v2 != 22 {
			t.Errorf("offsets clobbered: %d %d", v1, v2)
		}
		if r.mgr.TLB(0).Fills != 1 {
			t.Errorf("fills=%d, want 1 (one page)", r.mgr.TLB(0).Fills)
		}
	})
}

func TestUnmapBadAlignment(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		if err := s.Unmap(p, 0, 0x400004, PageSize, nil); !errors.Is(err, ErrBadAlign) {
			t.Errorf("unaligned va: %v", err)
		}
		if err := s.Unmap(p, 0, 0x400000, 100, nil); !errors.Is(err, ErrBadAlign) {
			t.Errorf("unaligned bytes: %v", err)
		}
	})
}

func TestMapBadAlignment(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(PageSize, caps.AllRights)
		if err := s.Map(p, 0, 0x400010, f, Read); !errors.Is(err, ErrBadAlign) {
			t.Errorf("err=%v", err)
		}
	})
}

func TestPageTableMemoryExhaustion(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		// A tiny RAM cap: the root table fits, the first intermediate
		// table does not.
		reg := r.sys.Memory().Alloc(PageSize, 0)
		tiny := r.cs.AddRoot(caps.Capability{Type: caps.RAM, Base: reg.Base, Bytes: reg.Bytes, Rights: caps.AllRights})
		s, err := r.mgr.NewSpace(p, 0, r.cs, tiny)
		if err != nil {
			t.Fatal(err)
		}
		f := r.frame(PageSize, caps.AllRights)
		if err := s.Map(p, 0, 0x400000, f, Read); !errors.Is(err, ErrOutOfPTMem) {
			t.Errorf("err=%v, want out of PT memory", err)
		}
	})
}

func TestTLBStatsInvalCounting(t *testing.T) {
	r := newRig(topo.AMD2x2())
	r.run(func(p *sim.Proc) {
		s, _ := r.mgr.NewSpace(p, 0, r.cs, r.ram)
		f := r.frame(2*PageSize, caps.AllRights)
		s.Map(p, 0, 0x400000, f, Read)
		s.Map(p, 0, 0x401000, f, Read)
		s.Translate(p, 0, 0x400000, false)
		s.Translate(p, 0, 0x401000, false)
		n := r.mgr.InvalidateRange(0, s.ID, 0x400000, 2*PageSize)
		if n != 2 {
			t.Errorf("invalidated %d entries, want 2", n)
		}
		if r.mgr.TLB(0).Invals != 2 {
			t.Errorf("inval counter=%d", r.mgr.TLB(0).Invals)
		}
		// Idempotent.
		if n := r.mgr.InvalidateRange(0, s.ID, 0x400000, 2*PageSize); n != 0 {
			t.Errorf("second invalidate removed %d", n)
		}
	})
}
