// Package vm implements the multikernel's virtual memory system (paper
// §4.7–4.8): real 4-level page tables stored in simulated physical memory and
// manipulated through capability operations, per-core TLBs, and unmap/protect
// operations that invalidate the page-table entry and then run the monitors'
// one-phase-commit shootdown so that no stale translation survives anywhere —
// the end-to-end path measured in the paper's Figure 7.
//
// All page-table reads and writes go through the cache model, so walks cost
// real (simulated) time and page-table lines migrate between cores like any
// other memory.
package vm

import (
	"errors"
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/caps"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// VAddr is a simulated virtual address.
type VAddr uint64

// PageSize is the only supported page size.
const PageSize = 4096

// ptEntries is the number of entries per page-table node.
const ptEntries = 512

// pte flag bits (low bits of the entry; physical addresses are page-aligned).
const (
	pteP uint64 = 1 << 0 // present
	pteW uint64 = 1 << 1 // writable
)

// Flags control a mapping's permissions.
type Flags uint8

// Mapping permission flags.
const (
	Read  Flags = 1 << iota
	Write       // mapping is writable
)

// Errors returned by VM operations.
var (
	ErrNotMapped  = errors.New("vm: address not mapped")
	ErrPerms      = errors.New("vm: permission violation")
	ErrNotAFrame  = errors.New("vm: capability is not a mappable frame")
	ErrBadAlign   = errors.New("vm: address not page aligned")
	ErrOutOfPTMem = errors.New("vm: out of page-table memory")
)

// tlbEntry is one cached translation.
type tlbEntry struct {
	pa       memory.Addr
	writable bool
}

type tlbKey struct {
	space uint8
	va    VAddr
}

// TLB is one core's translation cache.
type TLB struct {
	capacity int
	entries  map[tlbKey]tlbEntry
	order    []tlbKey // FIFO eviction order

	Fills  uint64
	Hits   uint64
	Invals uint64
}

func newTLB(capacity int) *TLB {
	return &TLB{capacity: capacity, entries: make(map[tlbKey]tlbEntry)}
}

func (t *TLB) lookup(k tlbKey) (tlbEntry, bool) {
	e, ok := t.entries[k]
	return e, ok
}

func (t *TLB) insert(k tlbKey, e tlbEntry) {
	if _, exists := t.entries[k]; !exists {
		for len(t.entries) >= t.capacity {
			victim := t.order[0]
			t.order = t.order[1:]
			delete(t.entries, victim)
		}
		t.order = append(t.order, k)
	}
	t.entries[k] = e
}

// invalidate drops translations for the page range. It returns the number of
// entries removed.
func (t *TLB) invalidate(space uint8, va VAddr, pages int) int {
	n := 0
	for i := 0; i < pages; i++ {
		k := tlbKey{space, va + VAddr(i*PageSize)}
		if _, ok := t.entries[k]; ok {
			delete(t.entries, k)
			n++
			t.Invals++
		}
	}
	// Lazily compact the order list.
	if n > 0 {
		keep := t.order[:0]
		for _, k := range t.order {
			if _, ok := t.entries[k]; ok {
				keep = append(keep, k)
			}
		}
		t.order = keep
	}
	return n
}

// Len returns the number of live translations.
func (t *TLB) Len() int { return len(t.entries) }

// Space is one virtual address space: a root page table plus the capability
// machinery to grow it.
type Space struct {
	ID   uint8
	cs   *caps.CSpace
	ram  caps.Ref // untyped memory for page-table allocation
	used uint64   // bytes of ram consumed by page tables
	root memory.Addr
	mgr  *Manager
}

// Manager owns the VM state of one machine: per-core TLBs and the address
// spaces.
type Manager struct {
	sys     *cache.System
	tlbs    []*TLB
	spaces  map[uint8]*Space
	nextID  uint8
	tlbSize int
}

// NewManager creates a VM manager with per-core TLBs of the given capacity
// (0 means a realistic default of 64 entries).
func NewManager(sys *cache.System, tlbSize int) *Manager {
	if tlbSize <= 0 {
		tlbSize = 64
	}
	m := &Manager{sys: sys, spaces: make(map[uint8]*Space), tlbSize: tlbSize}
	for i := 0; i < sys.Machine().NumCores(); i++ {
		m.tlbs = append(m.tlbs, newTLB(tlbSize))
	}
	return m
}

// TLB returns core c's TLB.
func (m *Manager) TLB(c topo.CoreID) *TLB { return m.tlbs[c] }

// allocPT retypes one page of untyped memory into a page-table node and
// returns its physical address, zeroed.
func (s *Space) allocPT(p *sim.Proc, core topo.CoreID, level int) (memory.Addr, error) {
	ram, err := s.cs.Get(s.ram)
	if err != nil {
		return 0, err
	}
	// Carve the next free page from the RAM cap by minting a smaller RAM cap
	// and retyping it. Track consumption in the space.
	if s.used+PageSize > ram.Bytes {
		return 0, ErrOutOfPTMem
	}
	base := ram.Base + memory.Addr(s.used)
	s.used += PageSize
	sub := s.cs.AddRoot(caps.Capability{Type: caps.RAM, Base: base, Bytes: PageSize, Rights: ram.Rights})
	if _, err := s.cs.Retype(sub, caps.PageTable, level, PageSize, 1); err != nil {
		return 0, err
	}
	// The CPU driver zeroes page tables on retype; charge a page-write cost.
	p.Sleep(120)
	return base, nil
}

// pteAddr returns the physical address of the level-N entry for va within
// the table at base.
func pteAddr(base memory.Addr, level int, va VAddr) memory.Addr {
	shift := uint(12 + 9*(level-1))
	idx := (uint64(va) >> shift) & (ptEntries - 1)
	return base + memory.Addr(idx*8)
}

// NewSpace creates an address space whose page tables are allocated (via
// capability retypes) from the RAM capability ramRef in cs.
func (m *Manager) NewSpace(p *sim.Proc, core topo.CoreID, cs *caps.CSpace, ramRef caps.Ref) (*Space, error) {
	m.nextID++
	s := &Space{ID: m.nextID, cs: cs, ram: ramRef, mgr: m}
	root, err := s.allocPT(p, core, 4)
	if err != nil {
		return nil, err
	}
	s.root = root
	m.spaces[s.ID] = s
	return s, nil
}

// Space returns the address space with the given ID, or nil.
func (m *Manager) Space(id uint8) *Space { return m.spaces[id] }

// Map installs a translation from va to the frame capability frameRef with
// the given permissions. Intermediate page tables are allocated on demand.
// The CPU driver's only role is checking the capability types (§4.7).
func (s *Space) Map(p *sim.Proc, core topo.CoreID, va VAddr, frameRef caps.Ref, flags Flags) error {
	if uint64(va)%PageSize != 0 {
		return ErrBadAlign
	}
	frame, err := s.cs.Get(frameRef)
	if err != nil {
		return err
	}
	if frame.Type != caps.Frame && frame.Type != caps.DevFrame {
		return ErrNotAFrame
	}
	if flags&Write != 0 && frame.Rights&caps.CanWrite == 0 {
		return ErrPerms
	}
	sys := s.mgr.sys
	table := s.root
	for level := 4; level > 1; level-- {
		ea := pteAddr(table, level, va)
		e := sys.Load(p, core, ea)
		if e&pteP == 0 {
			nt, err := s.allocPT(p, core, level-1)
			if err != nil {
				return err
			}
			e = uint64(nt) | pteP | pteW
			sys.Store(p, core, ea, e)
		}
		table = memory.Addr(e &^ (PageSize - 1))
	}
	leaf := uint64(frame.Base) | pteP
	if flags&Write != 0 {
		leaf |= pteW
	}
	sys.Store(p, core, pteAddr(table, 1, va), leaf)
	return nil
}

// walk performs a page-table walk from core, charging one load per level.
func (s *Space) walk(p *sim.Proc, core topo.CoreID, va VAddr) (tlbEntry, error) {
	sys := s.mgr.sys
	table := s.root
	for level := 4; level > 1; level-- {
		e := sys.Load(p, core, pteAddr(table, level, va))
		if e&pteP == 0 {
			return tlbEntry{}, ErrNotMapped
		}
		table = memory.Addr(e &^ (PageSize - 1))
	}
	e := sys.Load(p, core, pteAddr(table, 1, va&^VAddr(PageSize-1)))
	if e&pteP == 0 {
		return tlbEntry{}, ErrNotMapped
	}
	return tlbEntry{pa: memory.Addr(e &^ (PageSize - 1)), writable: e&pteW != 0}, nil
}

// Translate resolves va from core, using and filling the core's TLB.
func (s *Space) Translate(p *sim.Proc, core topo.CoreID, va VAddr, write bool) (memory.Addr, error) {
	page := va &^ VAddr(PageSize-1)
	t := s.mgr.tlbs[core]
	k := tlbKey{s.ID, page}
	e, ok := t.lookup(k)
	if !ok {
		p.Sleep(s.mgr.sys.Machine().Costs.TLBFill)
		var err error
		e, err = s.walk(p, core, page)
		if err != nil {
			return 0, err
		}
		t.Fills++
		t.insert(k, e)
	} else {
		t.Hits++
	}
	if write && !e.writable {
		return 0, ErrPerms
	}
	return e.pa + memory.Addr(va-page), nil
}

// Access performs a load or store at va through the MMU.
func (s *Space) Access(p *sim.Proc, core topo.CoreID, va VAddr, write bool, val uint64) (uint64, error) {
	pa, err := s.Translate(p, core, va, write)
	if err != nil {
		return 0, err
	}
	if write {
		s.mgr.sys.Store(p, core, pa, val)
		return val, nil
	}
	return s.mgr.sys.Load(p, core, pa), nil
}

// Shootdowner is the monitor-side coordination the VM layer needs: it must
// guarantee that when it returns, every targeted core has run the
// invalidation hook. *monitor.Monitor's Unmap method satisfies the role; the
// wiring lives in the core package.
type Shootdowner func(p *sim.Proc, va VAddr, bytes uint64, space uint8) bool

// ClearPTE removes the leaf mapping for va (no shootdown; callers coordinate
// separately). It reports whether a mapping existed.
func (s *Space) ClearPTE(p *sim.Proc, core topo.CoreID, va VAddr) bool {
	sys := s.mgr.sys
	table := s.root
	for level := 4; level > 1; level-- {
		e := sys.Load(p, core, pteAddr(table, level, va))
		if e&pteP == 0 {
			return false
		}
		table = memory.Addr(e &^ (PageSize - 1))
	}
	ea := pteAddr(table, 1, va)
	if sys.Load(p, core, ea)&pteP == 0 {
		return false
	}
	sys.Store(p, core, ea, 0)
	return true
}

// SetProt rewrites the leaf PTE permissions for va. It reports whether a
// mapping existed.
func (s *Space) SetProt(p *sim.Proc, core topo.CoreID, va VAddr, flags Flags) bool {
	sys := s.mgr.sys
	table := s.root
	for level := 4; level > 1; level-- {
		e := sys.Load(p, core, pteAddr(table, level, va))
		if e&pteP == 0 {
			return false
		}
		table = memory.Addr(e &^ (PageSize - 1))
	}
	ea := pteAddr(table, 1, va)
	e := sys.Load(p, core, ea)
	if e&pteP == 0 {
		return false
	}
	e &^= pteW
	if flags&Write != 0 {
		e |= pteW
	}
	sys.Store(p, core, ea, e)
	return true
}

// Unmap removes the mapping for [va, va+bytes) and runs the provided
// shootdown so no TLB anywhere retains it. This is the paper's Figure 7
// operation: PTE clear, then monitor-coordinated invalidation.
func (s *Space) Unmap(p *sim.Proc, core topo.CoreID, va VAddr, bytes uint64, shoot Shootdowner) error {
	if uint64(va)%PageSize != 0 || bytes%PageSize != 0 {
		return ErrBadAlign
	}
	found := false
	for off := uint64(0); off < bytes; off += PageSize {
		if s.ClearPTE(p, core, va+VAddr(off)) {
			found = true
		}
	}
	if !found {
		return ErrNotMapped
	}
	if shoot != nil && !shoot(p, va, bytes, s.ID) {
		return fmt.Errorf("vm: shootdown failed for %#x", uint64(va))
	}
	return nil
}

// InvalidateRange is the hook body monitors run on each core during a
// shootdown: it drops the range's translations from that core's TLB.
func (m *Manager) InvalidateRange(core topo.CoreID, space uint8, va VAddr, bytes uint64) int {
	pages := int(bytes / PageSize)
	if pages == 0 {
		pages = 1
	}
	return m.tlbs[core].invalidate(space, va, pages)
}

// CheckNoStaleTLB panics if any core's TLB still maps a page of the given
// range — the correctness property of the shootdown protocol.
func (m *Manager) CheckNoStaleTLB(space uint8, va VAddr, bytes uint64) {
	for c, t := range m.tlbs {
		for off := uint64(0); off < bytes; off += PageSize {
			if _, ok := t.lookup(tlbKey{space, va + VAddr(off)}); ok {
				panic(fmt.Sprintf("vm: core %d holds stale TLB entry for %#x", c, uint64(va)+off))
			}
		}
	}
}
