// Parallel boot (ROADMAP item 4): the full multikernel on sim.ParallelEngine.
//
// The multikernel's own architecture is what makes this possible: cores share
// no state and communicate only through single-writer URPC regions, so a
// partition of the machine can hold a complete REPLICA of the hardware models
// (memory, MOESI directory, fabric, kernel, SKB, the whole monitor mesh as
// structure) and run only the software of its own cores. Every replica is
// built by the identical construction sequence — same allocation order, same
// channel serials — so a region's address and a channel's id mean the same
// thing in every replica; that is the cross-replica addressing scheme. Data
// crosses partitions exclusively through the regions registered with
// cache.System.ShareRegion (URPC rings, ack lines, bulk pools): a store in
// the writer's replica forwards the cache line through the ParallelEngine
// outbox, one conservative lookahead ahead, and delivery in the reader's
// replica re-points the directory at the writer so the reader's next miss
// charges the serial owner-forwarded fill.
//
// What this is NOT: a cycle-identical reproduction of the single-engine
// schedule at nparts>1. The conservative lookahead delays cross-partition
// visibility (a serial reader could observe a line RemoteBase cycles after
// the store; a partitioned reader observes it at the next epoch grid point),
// and a writer's replica never sees the reader as a holder, so the sender-
// side invalidation probe of the serial schedule is elided. The determinism
// contract is the one that matters for experiments: results are a pure
// function of (seed, nparts) — NEVER of workers — and nparts=1 reproduces the
// serial boot byte-for-byte. DESIGN.md §11 derives both properties.
package core

import (
	"fmt"
	"io"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// ParallelSystem is one multikernel booted across the partitions of a
// ParallelEngine: one full System replica per partition, cross-linked through
// the cache layer's shared-region forwarding.
type ParallelSystem struct {
	PE   *sim.ParallelEngine
	PM   *topo.PartitionMap
	Mach *topo.Machine

	// Parts holds partition i's replica at index i. Partition-local state
	// (procs, clocks, metrics) is authoritative only in the owning replica;
	// remote cores exist there as structure.
	Parts []*System
}

// BootParallel boots the multikernel on every partition of pe. The machine is
// partitioned along socket boundaries into pe.NParts() partitions (nparts must
// divide the socket count; topo.Partition enforces the geometry), and pe's
// lookahead must not exceed the machine's cross-partition minimum latency
// (interconnect.Lookahead) — the conservative contract the cache-line
// forwarding rides on.
func BootParallel(pe *sim.ParallelEngine, m *topo.Machine, opts Options) *ParallelSystem {
	pm := topo.Partition(m, pe.NParts())
	if max := interconnect.Lookahead(m, pm); pe.NParts() > 1 && pe.Lookahead() > max {
		panic(fmt.Sprintf("core: engine lookahead %d exceeds %s's cross-partition minimum %d", pe.Lookahead(), m.Name, max))
	}
	ps := &ParallelSystem{PE: pe, PM: pm, Mach: m}
	for i := 0; i < pe.NParts(); i++ {
		ps.Parts = append(ps.Parts, bootReplica(pe, pm, m, i, pe.Part(i), opts))
	}
	ps.link()
	return ps
}

// BootAuto boots a multikernel sized by opts.Workers: 0 boots the serial
// reference (one engine, one System), >0 boots one partition per socket on a
// ParallelEngine with that worker budget. It returns the parallel system (nil
// in serial mode) and the serial system (nil in parallel mode) — exactly one
// is non-nil. This is the engine-selection knob behind the tools' -workers
// flags.
func BootAuto(m *topo.Machine, seed uint64, opts Options) (*ParallelSystem, *System) {
	if opts.Workers <= 0 {
		e := sim.NewEngine(seed)
		return nil, BootWith(e, m, opts)
	}
	pm := topo.PerSocket(m)
	pe := sim.NewParallelEngine(pm.NParts(), interconnect.Lookahead(m, pm), seed, opts.Workers)
	return BootParallel(pe, m, opts), nil
}

// bootReplica builds partition part's replica: the full BootWith sequence on
// the partition's engine, with the cache system partition-marked before any
// channel or proc exists.
func bootReplica(pe *sim.ParallelEngine, pm *topo.PartitionMap, m *topo.Machine, part int, e *sim.Engine, opts Options) *System {
	la := pe.Lookahead()
	return bootWith(e, m, opts, func(s *System) {
		s.Cache.SetPartition(pm, part, func(dst int, fn func()) {
			pe.Send(part, dst, la, fn)
		})
	})
}

// link cross-wires the replicas (forwarding closures address peer region
// tables by index) and asserts construction parity: identical allocation
// cursors are the observable proof that every replica ran the same build
// sequence, which is what makes addresses replica-portable.
func (ps *ParallelSystem) link() {
	peers := make([]*cache.System, len(ps.Parts))
	for i, s := range ps.Parts {
		peers[i] = s.Cache
	}
	size := ps.Parts[0].Mem.Size()
	for i, s := range ps.Parts {
		if s.Mem.Size() != size {
			panic(fmt.Sprintf("core: replica %d allocated %d bytes, replica 0 allocated %d (construction sequences diverged)", i, s.Mem.Size(), size))
		}
		s.Cache.SetPeers(peers)
	}
}

// Part returns partition i's replica.
func (ps *ParallelSystem) Part(i int) *System { return ps.Parts[i] }

// Local returns the replica that owns core c — the only replica whose procs,
// clock and per-core software state are authoritative for that core.
func (ps *ParallelSystem) Local(c topo.CoreID) *System {
	return ps.Parts[ps.PM.PartOfCore(c)]
}

// Each runs fn on every replica in partition order (setup/inspection only;
// during Run, a partition is touched only by its own procs).
func (ps *ParallelSystem) Each(fn func(part int, s *System)) {
	for i, s := range ps.Parts {
		fn(i, s)
	}
}

// Checkpoint saves the booted parallel system. Quiescence requirement: call
// between Run calls at a true epoch barrier — every partition engine must
// satisfy the serial checkpoint rules (procs parked or done, no pending
// events) and no cross-partition sends may be waiting in the outboxes.
// ParallelEngine.Checkpoint rejects a mid-epoch image; a system that has run
// to completion (Run returned with empty heaps) always qualifies.
func (ps *ParallelSystem) Checkpoint(w io.Writer) error { return ps.PE.Checkpoint(w) }

// RestoreParallel warm-starts a parallel boot image at any worker count: the
// replicas are rebuilt by the same construction sequence BootParallel used
// (machine and options must match the checkpointed boot) and every engine's
// serialized state — memory pages, directory, monitor cursors, clocks, RNG
// streams — is read back. The worker count is a host-side execution knob, so
// an image taken at w1 restores and runs at w4 and vice versa.
func RestoreParallel(r io.Reader, workers int, m *topo.Machine, opts Options) (*ParallelSystem, error) {
	ps := &ParallelSystem{Mach: m}
	pe, err := sim.RestoreParallel(r, workers, func(pe *sim.ParallelEngine, part int, e *sim.Engine) {
		if ps.PM == nil {
			ps.PM = topo.Partition(m, pe.NParts())
		}
		ps.Parts = append(ps.Parts, bootReplica(pe, ps.PM, m, part, e, opts))
	})
	if err != nil {
		return nil, err
	}
	ps.PE = pe
	ps.link()
	return ps, nil
}
