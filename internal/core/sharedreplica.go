package core

import (
	"fmt"

	"multikernel/internal/caps"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file implements the optimization the paper sketches at the end of
// §3.3 but does not pursue: "privately share a replica of system state
// between a group of closely-coupled cores or hardware threads, protected by
// a shared-memory synchronization technique like spinlocks. In this way we
// can introduce (limited) sharing behind the interface as an optimization of
// replication."
//
// With shared replicas enabled, the cores of each socket share one
// capability-space replica guarded by a socket-local spinlock (a real
// cache-line lock, so its cost rides the coherence model). Agreement
// protocols then involve only one participant per socket, trading fewer
// messages for intra-socket lock traffic — measured by the
// shared-replica ablation benchmark.

// replicaGroup is one socket's shared capability replica.
type replicaGroup struct {
	cs   *caps.CSpace
	lock memory.Addr
}

// enableSharedReplicas switches the system to per-socket capability
// replicas. Must run at boot, before any capability activity.
func (s *System) enableSharedReplicas() {
	m := s.Mach
	s.groups = make([]*replicaGroup, m.NSockets)
	for sk := 0; sk < m.NSockets; sk++ {
		s.groups[sk] = &replicaGroup{
			cs:   caps.NewCSpace(fmt.Sprintf("socket%d", sk)),
			lock: s.Mem.AllocLines(1, topo.SocketID(sk)).Base,
		}
	}
}

// SharedReplicas reports whether per-socket replicas are enabled.
func (s *System) SharedReplicas() bool { return s.groups != nil }

// Replica returns the capability space core c operates on: its own monitor's
// in the default configuration, its socket's shared one otherwise.
func (s *System) Replica(c topo.CoreID) *caps.CSpace {
	if s.groups != nil {
		return s.groups[s.Mach.Socket(c)].cs
	}
	return s.Net.Monitor(c).CS
}

// lockReplica takes the socket replica's spinlock from core c through the
// coherence model.
func (s *System) lockReplica(p *sim.Proc, c topo.CoreID) {
	g := s.groups[s.Mach.Socket(c)]
	for {
		acquired := false
		s.Cache.RMW(p, c, g.lock, func(v uint64) uint64 {
			if v == 0 {
				acquired = true
				return 1
			}
			return v
		})
		if acquired {
			return
		}
		for s.Cache.Load(p, c, g.lock) != 0 {
			p.Sleep(30)
		}
	}
}

func (s *System) unlockReplica(p *sim.Proc, c topo.CoreID) {
	g := s.groups[s.Mach.Socket(c)]
	s.Cache.Store(p, c, g.lock, 0)
}

// groupLeaders returns one core per socket (the lowest), the participant set
// for agreement protocols under shared replicas.
func (s *System) groupLeaders() []topo.CoreID {
	out := make([]topo.CoreID, s.Mach.NSockets)
	for sk := range out {
		out[sk] = s.Mach.CoresOf(topo.SocketID(sk))[0]
	}
	return out
}

// RetypeTargets returns the participant set for a global retype: every core
// by default, one leader per socket under shared replicas.
func (s *System) RetypeTargets() []topo.CoreID {
	if s.groups != nil {
		return s.groupLeaders()
	}
	return nil // nil means all cores to the monitor layer
}
