package core

import (
	"fmt"
	"testing"

	"multikernel/internal/interconnect"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// engineCase is one configuration of the dual-engine test sweep: the engine
// procs spawn on, the booted system, and the run function that drives the
// workload to completion (Engine.Run serially; ParallelEngine.Run through the
// epoch loop under parallel boots).
type engineCase struct {
	e   *sim.Engine
	s   *System
	run func()
}

// forEachEngine runs a test body under the serial reference engine and under
// BootParallel on a single-partition ParallelEngine at workers 1, 2 and 4.
// A single partition keeps driver-style tests valid — one proc may touch any
// core's state, exactly as under the serial engine — while still exercising
// the parallel engine's epoch grid, barrier machinery and worker pool; the
// sweep proves the outcome is worker-independent. Multi-partition behaviour,
// where every proc must live in the replica owning its core, is covered by
// parallel_test.go and the expt boot workloads.
func forEachEngine(t *testing.T, m *topo.Machine, fn func(t *testing.T, ec engineCase)) {
	forEachEngineOpts(t, m, Options{}, fn)
}

// forEachEngineOpts is forEachEngine with explicit boot options (coherence
// mode, shared replicas), for sweeps that vary system configuration.
func forEachEngineOpts(t *testing.T, m *topo.Machine, opts Options, fn func(t *testing.T, ec engineCase)) {
	t.Run("serial", func(t *testing.T) {
		e := sim.NewEngine(1)
		t.Cleanup(e.Close)
		fn(t, engineCase{e: e, s: BootWith(e, m, opts), run: e.Run})
	})
	for _, w := range []int{1, 2, 4} {
		w := w
		t.Run(fmt.Sprintf("parallel_w%d", w), func(t *testing.T) {
			pm := topo.Partition(m, 1)
			pe := sim.NewParallelEngine(1, interconnect.Lookahead(m, pm), 1, w)
			t.Cleanup(pe.Close)
			ps := BootParallel(pe, m, opts)
			fn(t, engineCase{e: pe.Part(0), s: ps.Part(0), run: pe.Run})
		})
	}
}
