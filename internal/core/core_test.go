package core

import (
	"testing"

	"multikernel/internal/caps"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/vm"
)

func TestBootPopulatesEverything(t *testing.T) {
	forEachEngine(t, topo.AMD4x4(), func(t *testing.T, ec engineCase) {
		s := ec.s
		if s.KB.Count("core") != 16 {
			t.Fatal("SKB not discovered")
		}
		if s.KB.Latency(0, 15) == 0 {
			t.Fatal("SKB latency measurements missing")
		}
		for c := 0; c < 16; c++ {
			if s.Net.Monitor(topo.CoreID(c)) == nil {
				t.Fatalf("no monitor on core %d", c)
			}
			if s.Net.Monitor(topo.CoreID(c)).CS.Len() != 1 {
				t.Fatalf("core %d cspace should hold its boot RAM cap", c)
			}
		}
	})
}

func TestDomainMapAccessUnmap(t *testing.T) {
	forEachEngine(t, topo.AMD4x4(), func(t *testing.T, ec engineCase) {
		e, s := ec.e, ec.s
		var failed string
		e.Spawn("init", func(p *sim.Proc) {
			cores := []topo.CoreID{0, 4, 8, 12}
			d, err := s.NewDomain(p, "app", cores)
			if err != nil {
				failed = err.Error()
				return
			}
			va, err := d.MapAnon(p, 0, 2*vm.PageSize, vm.Read|vm.Write)
			if err != nil {
				failed = err.Error()
				return
			}
			// Touch the mapping from every core of the domain.
			for _, c := range cores {
				if _, err := d.Space.Access(p, c, va+8, true, uint64(c)); err != nil {
					failed = err.Error()
					return
				}
			}
			// Unmap with full shootdown.
			if err := d.Unmap(p, 0, va, 2*vm.PageSize, monitor.NUMAAware); err != nil {
				failed = err.Error()
				return
			}
			s.VM.CheckNoStaleTLB(d.Space.ID, va, 2*vm.PageSize)
			if _, err := d.Space.Access(p, 8, va, false, 0); err == nil {
				failed = "access after unmap succeeded"
			}
		})
		ec.run()
		if failed != "" {
			t.Fatal(failed)
		}
	})
}

func TestProtectDowngradesEverywhere(t *testing.T) {
	forEachEngine(t, topo.AMD2x2(), func(t *testing.T, ec engineCase) {
		e, s := ec.e, ec.s
		var failed string
		e.Spawn("init", func(p *sim.Proc) {
			cores := []topo.CoreID{0, 1, 2, 3}
			d, _ := s.NewDomain(p, "app", cores)
			va, _ := d.MapAnon(p, 0, vm.PageSize, vm.Read|vm.Write)
			for _, c := range cores {
				d.Space.Access(p, c, va, true, 1) // warm all TLBs writable
			}
			if err := d.Protect(p, 0, va, vm.PageSize, vm.Read, monitor.NUMAAware); err != nil {
				failed = err.Error()
				return
			}
			for _, c := range cores {
				if _, err := d.Space.Access(p, c, va, true, 2); err != vm.ErrPerms {
					failed = "write allowed after protect"
					return
				}
				if _, err := d.Space.Access(p, c, va, false, 0); err != nil {
					failed = "read denied after protect"
					return
				}
			}
		})
		ec.run()
		if failed != "" {
			t.Fatal(failed)
		}
	})
}

func TestGlobalRetypeKeepsReplicasConsistent(t *testing.T) {
	forEachEngine(t, topo.AMD4x4(), func(t *testing.T, ec engineCase) {
		e, s := ec.e, ec.s
		committed := false
		e.Spawn("init", func(p *sim.Proc) {
			reg := s.Mem.Alloc(8*4096, 0)
			committed = s.GlobalRetype(p, 3, reg.Base, reg.Bytes, caps.Frame, 0)
		})
		ec.run()
		if !committed {
			t.Fatal("retype aborted")
		}
		if err := s.CheckCapConsistency(); err != nil {
			t.Fatal(err)
		}
		// Every core's replica must now hold the Frame typing.
		for c := 0; c < 16; c++ {
			found := false
			for _, cap := range s.Net.Monitor(topo.CoreID(c)).CS.All() {
				if cap.Type == caps.Frame {
					found = true
				}
			}
			if !found {
				t.Fatalf("core %d missing the agreed Frame replica", c)
			}
		}
	})
}

func TestConflictingGlobalRetypeAborts(t *testing.T) {
	forEachEngine(t, topo.AMD4x4(), func(t *testing.T, ec engineCase) {
		e, s := ec.e, ec.s
		var first, second bool
		e.Spawn("init", func(p *sim.Proc) {
			reg := s.Mem.Alloc(4096, 0)
			first = s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.PageTable, 1)
			// Retyping the same memory as a writable Frame conflicts with the
			// existing PageTable typing and must abort.
			second = s.GlobalRetype(p, 5, reg.Base, reg.Bytes, caps.Frame, 0)
		})
		ec.run()
		if !first {
			t.Fatal("first retype aborted")
		}
		if second {
			t.Fatal("conflicting retype committed")
		}
		if err := s.CheckCapConsistency(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGlobalRevokeClearsReplicas(t *testing.T) {
	forEachEngine(t, topo.AMD2x2(), func(t *testing.T, ec engineCase) {
		e, s := ec.e, ec.s
		var retyped, revoked, retyped2 bool
		e.Spawn("init", func(p *sim.Proc) {
			reg := s.Mem.Alloc(4096, 0)
			retyped = s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.PageTable, 1)
			revoked = s.GlobalRevoke(p, 2, reg.Base, reg.Bytes)
			// After revocation the memory can be retyped differently.
			retyped2 = s.GlobalRetype(p, 1, reg.Base, reg.Bytes, caps.Frame, 0)
		})
		ec.run()
		if !retyped || !revoked || !retyped2 {
			t.Fatalf("retyped=%v revoked=%v retyped2=%v", retyped, revoked, retyped2)
		}
		if err := s.CheckCapConsistency(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSpaceTagRoundTrip(t *testing.T) {
	sp, va := splitSpaceTag(spaceTag(7, 0x4000_2000))
	if sp != 7 || va != 0x4000_2000 {
		t.Fatalf("roundtrip: %d %#x", sp, uint64(va))
	}
}

func TestUnmapLatencyBeatsBaselineAtScale(t *testing.T) {
	// The Figure 7 headline: message-based unmap beats IPI-based unmap at
	// high core counts. Full comparison lives in the expt package; here we
	// just check the multikernel path completes in bounded time.
	forEachEngine(t, topo.AMD8x4(), func(t *testing.T, ec engineCase) {
		e, s := ec.e, ec.s
		var lat sim.Time
		e.Spawn("init", func(p *sim.Proc) {
			cores := make([]topo.CoreID, 32)
			for i := range cores {
				cores[i] = topo.CoreID(i)
			}
			d, _ := s.NewDomain(p, "app", cores)
			va, _ := d.MapAnon(p, 0, vm.PageSize, vm.Read|vm.Write)
			for _, c := range cores {
				d.Space.Access(p, c, va, false, 0)
			}
			start := p.Now()
			if err := d.Unmap(p, 0, va, vm.PageSize, monitor.NUMAAware); err != nil {
				t.Error(err)
			}
			lat = p.Now() - start
		})
		ec.run()
		t.Logf("32-core unmap: %d cycles", lat)
		if lat == 0 || lat > 120_000 {
			t.Fatalf("32-core unmap latency %d out of plausible range", lat)
		}
	})
}
