package core

import (
	"testing"
	"testing/quick"

	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/vm"
)

// Property: through the fully-booted system (monitors, agreement protocols,
// real page tables), any interleaving of map / cross-core access / unmap
// operations preserves the core invariant: an access succeeds if and only if
// the page is currently mapped, and no unmap ever completes while any TLB
// still holds the translation.
func TestFullSystemVMProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		e := sim.NewEngine(1)
		defer e.Close()
		s := Boot(e, topo.AMD2x2())
		ok := true
		e.Spawn("driver", func(p *sim.Proc) {
			d, err := s.NewDomain(p, "prop", []topo.CoreID{0, 1, 2, 3})
			if err != nil {
				ok = false
				return
			}
			type page struct {
				va     vm.VAddr
				mapped bool
			}
			var pages []page
			for _, op := range ops {
				switch op % 3 {
				case 0: // map a fresh page
					va, err := d.MapAnon(p, 0, vm.PageSize, vm.Read|vm.Write)
					if err != nil {
						ok = false
						return
					}
					pages = append(pages, page{va: va, mapped: true})
				case 1: // access an arbitrary page from an arbitrary core
					if len(pages) == 0 {
						continue
					}
					pg := &pages[int(op/3)%len(pages)]
					core := topo.CoreID(op % 4)
					_, err := d.Space.Access(p, core, pg.va, true, uint64(op))
					if pg.mapped && err != nil {
						ok = false
						return
					}
					if !pg.mapped && err == nil {
						ok = false
						return
					}
				case 2: // unmap with full shootdown
					if len(pages) == 0 {
						continue
					}
					pg := &pages[int(op/3)%len(pages)]
					if !pg.mapped {
						continue
					}
					if err := d.Unmap(p, 0, pg.va, vm.PageSize, monitor.NUMAAware); err != nil {
						ok = false
						return
					}
					pg.mapped = false
					s.VM.CheckNoStaleTLB(d.Space.ID, pg.va, vm.PageSize)
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The system composes: a domain's threads, the VM and a monitor-coordinated
// protect interact correctly when the downgrade races with readers.
func TestProtectWhileReading(t *testing.T) {
	forEachEngine(t, topo.AMD4x4(), func(t *testing.T, ec engineCase) {
		e, s := ec.e, ec.s
		testProtectWhileReading(t, e, s, ec.run)
	})
}

func testProtectWhileReading(t *testing.T, e *sim.Engine, s *System, run func()) {
	var failed string
	e.Spawn("init", func(p *sim.Proc) {
		cores := []topo.CoreID{0, 4, 8, 12}
		d, _ := s.NewDomain(p, "app", cores)
		va, _ := d.MapAnon(p, 0, vm.PageSize, vm.Read|vm.Write)
		for _, c := range cores {
			d.Space.Access(p, c, va, true, 7)
		}
		// Readers on remote cores while core 0 downgrades to read-only.
		done := sim.NewWaitGroup(e)
		done.Add(len(cores) - 1)
		for _, c := range cores[1:] {
			c := c
			e.Spawn("reader", func(rp *sim.Proc) {
				defer done.Done()
				for i := 0; i < 20; i++ {
					if _, err := d.Space.Access(rp, c, va, false, 0); err != nil {
						failed = "read failed during protect: " + err.Error()
						return
					}
					rp.Sleep(500)
				}
			})
		}
		if err := d.Protect(p, 0, va, vm.PageSize, vm.Read, monitor.NUMAAware); err != nil {
			failed = err.Error()
			return
		}
		done.Wait(p)
		// After protect completes, no core may write.
		for _, c := range cores {
			if _, err := d.Space.Access(p, c, va, true, 9); err != vm.ErrPerms {
				failed = "write allowed after protect"
				return
			}
		}
	})
	run()
	if failed != "" {
		t.Fatal(failed)
	}
}
