package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"multikernel/internal/caps"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/vm"
)

// bootWorkload is a deterministic post-boot workload exercising every
// coordinated path: domain creation, cross-core mapped accesses, a
// NUMA-aware unmap shootdown and a globally-agreed retype. It returns the
// virtual-time costs of the coordinated operations so warm-started runs can
// be compared against the original beyond byte equality.
func bootWorkload(t *testing.T, e *sim.Engine, s *System) (unmap, retype sim.Time) {
	t.Helper()
	var failed string
	e.Spawn("init", func(p *sim.Proc) {
		// Up to four cores spread across the machine.
		n := s.Mach.NumCores()
		step := n / 4
		if step == 0 {
			step = 1
		}
		var cores []topo.CoreID
		for c := 0; c < n && len(cores) < 4; c += step {
			cores = append(cores, topo.CoreID(c))
		}
		d, err := s.NewDomain(p, "warm", cores)
		if err != nil {
			failed = err.Error()
			return
		}
		va, err := d.MapAnon(p, 0, 2*vm.PageSize, vm.Read|vm.Write)
		if err != nil {
			failed = err.Error()
			return
		}
		for _, c := range cores {
			if _, err := d.Space.Access(p, c, va+8, true, uint64(c)); err != nil {
				failed = err.Error()
				return
			}
		}
		start := p.Now()
		if err := d.Unmap(p, 0, va, vm.PageSize, monitor.NUMAAware); err != nil {
			failed = err.Error()
			return
		}
		unmap = p.Now() - start
		reg := s.Mem.Alloc(4096, 0)
		start = p.Now()
		if !s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.Frame, 0) {
			failed = "global retype aborted"
			return
		}
		retype = p.Now() - start
		if err := s.CheckCapConsistency(); err != nil {
			failed = err.Error()
		}
	})
	e.Run()
	if failed != "" {
		t.Fatal(failed)
	}
	return unmap, retype
}

// TestBootCheckpointWarmStart is the end-to-end warm-start contract: boot the
// full multikernel, run to quiescence, checkpoint. Restoring that image into
// a freshly constructed system (BootWith is its own restore builder) and
// running a workload must be byte-identical — final engine image and metrics
// — to the original system continuing past its checkpoint.
func TestBootCheckpointWarmStart(t *testing.T) {
	m := topo.AMD4x4()

	finish := func(e *sim.Engine) ([]byte, []byte) {
		t.Helper()
		e.CheckQuiesced()
		var img bytes.Buffer
		if err := e.Checkpoint(&img); err != nil {
			t.Fatalf("post-workload checkpoint: %v", err)
		}
		js, err := json.Marshal(e.Metrics().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		e.Close()
		return img.Bytes(), js
	}

	// Original: boot, quiesce, save the boot image, then run the workload.
	eA := sim.NewEngine(1)
	sA := Boot(eA, m)
	eA.Run()
	var bootImg bytes.Buffer
	if err := eA.Checkpoint(&bootImg); err != nil {
		t.Fatalf("boot checkpoint: %v", err)
	}
	unmapA, retypeA := bootWorkload(t, eA, sA)
	imgA, jsA := finish(eA)
	if unmapA == 0 || retypeA == 0 {
		t.Fatalf("workload measured unmap=%d retype=%d cycles; expected nonzero", unmapA, retypeA)
	}

	// Warm start: restore the boot image into a fresh construction and run
	// the identical workload.
	var sB *System
	eB, err := sim.Restore(bytes.NewReader(bootImg.Bytes()), func(e *sim.Engine) {
		sB = Boot(e, m)
	})
	if err != nil {
		t.Fatalf("restore boot image: %v", err)
	}
	unmapB, retypeB := bootWorkload(t, eB, sB)
	imgB, jsB := finish(eB)

	if unmapB != unmapA || retypeB != retypeA {
		t.Errorf("warm-started workload costs differ: unmap %d vs %d, retype %d vs %d",
			unmapB, unmapA, retypeB, retypeA)
	}
	if !bytes.Equal(imgB, imgA) {
		t.Error("warm-started run's final engine image differs from the original")
	}
	if !bytes.Equal(jsB, jsA) {
		t.Errorf("warm-started run's metrics differ from the original\n got: %s\nwant: %s", jsB, jsA)
	}
}

// TestBootCheckpointRoundTrip checks the cheaper invariant on every machine:
// the boot image restores, and re-checkpointing the restored system
// reproduces the image byte for byte (the checkpoint bytes ARE the state).
func TestBootCheckpointRoundTrip(t *testing.T) {
	for _, m := range []*topo.Machine{topo.AMD2x2(), topo.Intel2x4(), topo.AMD4x4(), topo.AMD8x4()} {
		e := sim.NewEngine(1)
		Boot(e, m)
		e.Run()
		var img bytes.Buffer
		if err := e.Checkpoint(&img); err != nil {
			t.Fatalf("%s: boot checkpoint: %v", m.Name, err)
		}
		e.Close()

		e2, err := sim.Restore(bytes.NewReader(img.Bytes()), func(e *sim.Engine) {
			Boot(e, m)
		})
		if err != nil {
			t.Fatalf("%s: restore: %v", m.Name, err)
		}
		var img2 bytes.Buffer
		if err := e2.Checkpoint(&img2); err != nil {
			t.Fatalf("%s: re-checkpoint: %v", m.Name, err)
		}
		e2.Close()
		if !bytes.Equal(img.Bytes(), img2.Bytes()) {
			t.Errorf("%s: restored system's checkpoint differs from the image it was restored from", m.Name)
		}
	}
}

// TestBootCheckpointSharedReplicas covers the §3.3 shared-replica
// configuration: its spinlocked per-socket replicas are host-side
// construction state, so the same warm-start contract must hold.
func TestBootCheckpointSharedReplicas(t *testing.T) {
	m := topo.AMD2x2()
	opts := Options{SharedReplicas: true}

	eA := sim.NewEngine(1)
	sA := BootWith(eA, m, opts)
	eA.Run()
	var bootImg bytes.Buffer
	if err := eA.Checkpoint(&bootImg); err != nil {
		t.Fatalf("boot checkpoint: %v", err)
	}
	unmapA, retypeA := bootWorkload(t, eA, sA)
	eA.Close()

	var sB *System
	eB, err := sim.Restore(bytes.NewReader(bootImg.Bytes()), func(e *sim.Engine) {
		sB = BootWith(e, m, opts)
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	unmapB, retypeB := bootWorkload(t, eB, sB)
	eB.Close()
	if unmapB != unmapA || retypeB != retypeA {
		t.Errorf("shared-replica warm start diverged: unmap %d vs %d, retype %d vs %d",
			unmapB, unmapA, retypeB, retypeA)
	}
}
