// Package core assembles the multikernel (the paper's primary contribution):
// it boots one CPU driver and one monitor per core of a simulated machine,
// wires the URPC mesh between monitors, populates the system knowledge base
// from discovery and online measurement, seeds per-core capability spaces,
// and exposes the OS services — domains spanning cores, virtual memory with
// coordinated unmap, globally-agreed capability retyping — that the
// evaluation exercises.
//
// The structure follows §4 of the paper: CPU drivers are purely local
// (package kernel); all inter-core coordination happens in the monitors
// (package monitor); state is replicated per core and kept consistent with
// one-phase and two-phase agreement protocols over URPC.
package core

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/caps"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/threads"
	"multikernel/internal/topo"
	"multikernel/internal/vm"
)

// ramPerCore is the untyped memory granted to each core's monitor at boot.
const ramPerCore = 4 << 20

// System is one booted multikernel instance.
type System struct {
	Eng    *sim.Engine
	Mach   *topo.Machine
	Mem    *memory.Memory
	Fabric *interconnect.Fabric
	Cache  *cache.System
	Kern   *kernel.System
	KB     *skb.KB
	Net    *monitor.Network
	VM     *vm.Manager

	ramRefs []caps.Ref      // each monitor's boot-time untyped RAM capability
	groups  []*replicaGroup // per-socket shared replicas (§3.3 option), or nil
}

// Options configure Boot.
type Options struct {
	// SharedReplicas shares one capability replica per socket behind a
	// spinlock instead of one per core (§3.3's sharing-as-optimization).
	SharedReplicas bool

	// Coherence selects the machine's coherence protocol: Broadcast (the
	// zero value, snooping as on the paper machines) or Directory (home-node
	// sharer bitmaps with targeted probes, for scaled machines).
	Coherence cache.CoherenceMode

	// Workers selects the engine: 0 boots on the serial reference engine,
	// >0 boots on a sim.ParallelEngine with that host-goroutine budget (see
	// BootAuto). BootParallel ignores it — the ParallelEngine passed in
	// already fixes the worker count.
	Workers int
}

// spaceTag packs an address-space ID and virtual address into the physical
// range fields of a monitor.Op, so shootdown messages can carry the VM
// context. The VA occupies the low 48 bits.
func spaceTag(space uint8, va vm.VAddr) memory.Addr {
	return memory.Addr(uint64(space)<<48 | uint64(va)&(1<<48-1))
}

func splitSpaceTag(a memory.Addr) (space uint8, va vm.VAddr) {
	return uint8(uint64(a) >> 48), vm.VAddr(uint64(a) & (1<<48 - 1))
}

// Boot brings up a multikernel on the machine: hardware models, CPU drivers,
// monitors with their URPC mesh, the SKB (discovery plus pairwise latency
// measurement), the VM system and per-core capability spaces.
func Boot(e *sim.Engine, m *topo.Machine) *System {
	return BootWith(e, m, Options{})
}

// BootWith is Boot with explicit configuration.
func BootWith(e *sim.Engine, m *topo.Machine, opts Options) *System {
	return bootWith(e, m, opts, nil)
}

// bootWith is the shared boot sequence. partition, when non-nil, runs right
// after the cache system exists and before anything allocates channels or
// spawns procs — the one point where a parallel boot marks the replica's
// partition (every later layer consults cache.System.LocalCore/ShareRegion).
func bootWith(e *sim.Engine, m *topo.Machine, opts Options, partition func(s *System)) *System {
	s := &System{Eng: e, Mach: m}
	s.Mem = memory.New(m)
	s.Fabric = interconnect.New(m)
	s.Cache = cache.New(e, m, s.Mem, s.Fabric)
	s.Cache.SetMode(opts.Coherence)
	if partition != nil {
		partition(s)
	}
	s.Kern = kernel.NewSystem(e, m)
	s.KB = skb.New(m)
	s.KB.Discover()
	// Online measurement: the boot-time URPC latency probe between all core
	// pairs (§4.9). The probe uses the machine model directly, standing in
	// for the measurement channels Barrelfish sets up during boot.
	s.KB.Measure(func(a, b topo.CoreID) sim.Time {
		return 2*m.TransferLat(b, a) + 160
	})
	s.VM = vm.NewManager(s.Cache, 0)

	hooks := monitor.Hooks{
		Invalidate: func(p *sim.Proc, core topo.CoreID, op monitor.Op) {
			space, va := splitSpaceTag(op.Base)
			s.VM.InvalidateRange(core, space, va, op.Bytes)
		},
		Prepare: func(p *sim.Proc, core topo.CoreID, op monitor.Op) bool {
			return s.prepareRetype(p, core, op)
		},
		Apply: func(p *sim.Proc, core topo.CoreID, op monitor.Op) {
			s.applyRetype(p, core, op)
		},
	}
	s.Net = monitor.NewNetwork(e, s.Cache, s.Kern, s.KB, hooks)
	if opts.SharedReplicas {
		s.enableSharedReplicas()
	}
	// Checkpoint participation: memory pages, the MOESI directory and the
	// monitor network (with its URPC mesh cursors) travel with the engine
	// image, so a booted system can be saved once and warm-started per sweep
	// point. Restoring requires rebuilding with the same machine and options
	// — BootWith is its own restore builder.
	e.RegisterCheckpoint("memory", s.Mem)
	e.RegisterCheckpoint("cache", s.Cache)
	e.RegisterCheckpoint("monitor", s.Net)

	// Grant each monitor an untyped RAM region for page tables and objects.
	for c := 0; c < m.NumCores(); c++ {
		reg := s.Mem.Alloc(ramPerCore, m.Socket(topo.CoreID(c)))
		ref := s.Net.Monitor(topo.CoreID(c)).CS.AddRoot(caps.Capability{
			Type: caps.RAM, Base: reg.Base, Bytes: reg.Bytes, Rights: caps.AllRights,
		})
		s.ramRefs = append(s.ramRefs, ref)
	}
	return s
}

// prepareRetype votes on a two-phase retype: it refuses if the core's
// capability space holds a typed (non-RAM) capability of a different type
// over the range — the §4.7 hazard the protocol exists to prevent.
func (s *System) prepareRetype(p *sim.Proc, core topo.CoreID, op monitor.Op) bool {
	if op.Kind == monitor.OpRevoke {
		return true
	}
	if s.groups != nil {
		s.lockReplica(p, core)
		defer s.unlockReplica(p, core)
	}
	probe := caps.Capability{Type: op.NewType, Level: op.Level, Base: op.Base, Bytes: op.Bytes}
	for _, c := range s.Replica(core).All() {
		if c.Type == caps.RAM || c.Type == caps.Null || !c.Overlaps(probe) {
			continue
		}
		same := c.Base == probe.Base && c.Bytes == probe.Bytes && c.Type == probe.Type && c.Level == probe.Level
		if !same {
			return false
		}
	}
	return true
}

// applyRetype installs the agreed typing in the core's replica, or removes
// overlapping replicas on revoke.
func (s *System) applyRetype(p *sim.Proc, core topo.CoreID, op monitor.Op) {
	cs := s.Replica(core)
	if s.groups != nil {
		s.lockReplica(p, core)
		defer s.unlockReplica(p, core)
	}
	if op.Kind == monitor.OpRevoke {
		// Remove every replica overlapping the revoked range.
		probe := caps.Capability{Base: op.Base, Bytes: op.Bytes}
		for _, n := range cs.Refs() {
			c, err := cs.Get(n)
			if err == nil && c.Type != caps.RAM && c.Overlaps(probe) {
				cs.Revoke(n)
				cs.Delete(n)
			}
		}
		return
	}
	cs.AddRoot(caps.Capability{
		Type: op.NewType, Level: op.Level, Base: op.Base, Bytes: op.Bytes,
		Rights: caps.AllRights,
	})
}

// RAMRef returns the boot-time untyped capability of core c's monitor.
func (s *System) RAMRef(c topo.CoreID) caps.Ref { return s.ramRefs[c] }

// GlobalRetype performs a machine-wide capability retype through the
// monitors' two-phase commit, reporting whether it committed.
func (s *System) GlobalRetype(p *sim.Proc, initiator topo.CoreID, base memory.Addr, bytes uint64, to caps.Type, level int) bool {
	return s.Net.Monitor(initiator).Retype(p, base, bytes, to, level, s.RetypeTargets())
}

// GlobalRevoke revokes a physical range everywhere via two-phase commit.
func (s *System) GlobalRevoke(p *sim.Proc, initiator topo.CoreID, base memory.Addr, bytes uint64) bool {
	return s.Net.Monitor(initiator).Revoke(p, base, bytes, s.RetypeTargets())
}

// CheckCapConsistency audits all per-core capability spaces for cross-core
// typing conflicts; it returns nil when the replicas agree.
func (s *System) CheckCapConsistency() error {
	if s.groups != nil {
		spaces := make([]*caps.CSpace, len(s.groups))
		for i, g := range s.groups {
			spaces[i] = g.cs
		}
		return caps.ConflictCheck(spaces...)
	}
	spaces := make([]*caps.CSpace, s.Mach.NumCores())
	for c := range spaces {
		spaces[c] = s.Net.Monitor(topo.CoreID(c)).CS
	}
	return caps.ConflictCheck(spaces...)
}

// Domain is a process spanning a set of cores: a thread team plus a shared
// virtual address space (§4.8).
type Domain struct {
	Name  string
	sys   *System
	Team  *threads.Team
	Space *vm.Space
	// The domain's frame allocator state.
	nextVA vm.VAddr
}

// NewDomain creates a domain on the given cores. Its page tables are
// allocated from the first core's monitor RAM via capability retypes.
func (s *System) NewDomain(p *sim.Proc, name string, cores []topo.CoreID) (*Domain, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("core: domain %q needs cores", name)
	}
	home := cores[0]
	space, err := s.VM.NewSpace(p, home, s.Net.Monitor(home).CS, s.ramRefs[home])
	if err != nil {
		return nil, err
	}
	return &Domain{
		Name:   name,
		sys:    s,
		Team:   threads.NewTeam(s.Cache, s.Kern, cores),
		Space:  space,
		nextVA: 0x4000_0000,
	}, nil
}

// MapAnon allocates physical memory, retypes it to a frame in the home
// core's capability space and maps it at a fresh virtual address.
func (d *Domain) MapAnon(p *sim.Proc, core topo.CoreID, bytes int, flags vm.Flags) (vm.VAddr, error) {
	mach := d.sys.Mach
	reg := d.sys.Mem.Alloc(bytes, mach.Socket(core))
	cs := d.sys.Net.Monitor(d.Team.Cores()[0]).CS
	ram := cs.AddRoot(caps.Capability{Type: caps.RAM, Base: reg.Base, Bytes: reg.Bytes, Rights: caps.AllRights})
	pages := int(reg.Bytes / vm.PageSize)
	frames, err := cs.Retype(ram, caps.Frame, 0, vm.PageSize, pages)
	if err != nil {
		return 0, err
	}
	va := d.nextVA
	for i := 0; i < pages; i++ {
		if err := d.Space.Map(p, core, va+vm.VAddr(i*vm.PageSize), frames[i], flags); err != nil {
			return 0, err
		}
	}
	d.nextVA += vm.VAddr(reg.Bytes)
	return va, nil
}

// Unmap removes [va, va+bytes) from the domain's address space and runs the
// monitors' shootdown protocol so no core retains a stale translation — the
// complete Figure 7 operation.
func (d *Domain) Unmap(p *sim.Proc, core topo.CoreID, va vm.VAddr, bytes uint64, protocol monitor.Protocol) error {
	mon := d.sys.Net.Monitor(core)
	shoot := func(p *sim.Proc, va vm.VAddr, bytes uint64, space uint8) bool {
		targets := d.Team.Cores()
		return mon.Unmap(p, spaceTag(space, va), bytes, targets, protocol)
	}
	return d.Space.Unmap(p, core, va, bytes, shoot)
}

// Protect downgrades [va, va+bytes) to the given permissions and shoots down
// stale TLB entries (the mprotect of Figure 7).
func (d *Domain) Protect(p *sim.Proc, core topo.CoreID, va vm.VAddr, bytes uint64, flags vm.Flags, protocol monitor.Protocol) error {
	for off := uint64(0); off < bytes; off += vm.PageSize {
		if !d.Space.SetProt(p, core, va+vm.VAddr(off), flags) {
			return vm.ErrNotMapped
		}
	}
	mon := d.sys.Net.Monitor(core)
	if !mon.Unmap(p, spaceTag(d.Space.ID, va), bytes, d.Team.Cores(), protocol) {
		return fmt.Errorf("core: protect shootdown failed")
	}
	return nil
}
