package core

import (
	"fmt"
	"testing"

	"multikernel/internal/apps"
	"multikernel/internal/cache"
	"multikernel/internal/caps"
	"multikernel/internal/check"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// The mode-equivalence property (the directory protocol's contract):
// broadcast and directory coherence are performance models of the SAME
// protocol, so on a scaled mesh any timing-independent workload must end in
// identical memory contents and a linearizable kvstore history under both —
// on the serial engine and on the parallel engine at 1, 2 and 4 workers.

const (
	cohLines   = 8  // contended counter lines
	cohIncs    = 4  // increments per writer per line
	cohRows    = 32 // kvstore rows
	cohKeysPer = 8  // disjoint key-range width per client
	cohOpsPer  = 6  // kv ops per client
)

// coherenceOutcome is the observable final state of one run.
type coherenceOutcome struct {
	sums   []uint64 // final counter-line values
	kvVals []uint64 // final kvstore contents
}

func runCoherenceWorkload(t *testing.T, ec engineCase) coherenceOutcome {
	s, e := ec.s, ec.e
	rec := trace.NewRecorder()
	e.SetTracer(rec)

	// Contended commutative increments: one writer per socket, all lines.
	// Any interleaving sums to nWriters*cohIncs, so the outcome is mode- and
	// schedule-independent while every RMW exercises a cross-socket upgrade.
	ctr := s.Mem.AllocLines(cohLines, 0)
	nWriters := s.Mach.NSockets
	for w := 0; w < nWriters; w++ {
		c := topo.CoreID(w * s.Mach.CoresPerSocket)
		e.Spawn(fmt.Sprintf("inc%d", c), func(p *sim.Proc) {
			for i := 0; i < cohIncs; i++ {
				for l := 0; l < cohLines; l++ {
					s.Cache.RMW(p, c, ctr.LineAt(l), func(v uint64) uint64 { return v + 1 })
				}
			}
		})
	}

	// kvstore clients on distinct sockets, each owning a disjoint key range:
	// the final store contents are interleaving-independent, and the recorded
	// history must linearize regardless of how mode-dependent latencies
	// shuffled the operations.
	kv := apps.NewKVStore(s.Cache, 1, cohRows)
	svc := apps.NewKVService(e, kv)
	clients := []topo.CoreID{2, 21, 42, 63}
	for ci, cc := range clients {
		cl := svc.Connect(cc)
		base := uint64(ci * cohKeysPer)
		ci := ci
		e.Spawn(fmt.Sprintf("kvclient%d", ci), func(p *sim.Proc) {
			for i := 0; i < cohOpsPer; i++ {
				key := base + uint64(i%cohKeysPer)
				if _, err := cl.Update(p, key, uint64(ci+1)*1_000_000+uint64(i)); err != nil {
					t.Errorf("client %d: %v", ci, err)
					return
				}
				if _, _, err := cl.Select(p, base+uint64((i+3)%cohKeysPer)); err != nil {
					t.Errorf("client %d: %v", ci, err)
					return
				}
			}
		})
	}

	// Coordinated operations ride along, so the monitor hierarchy runs under
	// both coherence modes too.
	reg := s.Mem.Alloc(8192, 0)
	e.Spawn("admin", func(p *sim.Proc) {
		if !s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.Frame, 0) {
			t.Error("retype aborted")
		}
	})
	ec.run()

	// Read back the final state on a quiesced system.
	out := coherenceOutcome{
		sums:   make([]uint64, cohLines),
		kvVals: make([]uint64, cohRows),
	}
	cl := svc.Connect(3)
	e.Spawn("readback", func(p *sim.Proc) {
		for l := 0; l < cohLines; l++ {
			out.sums[l] = s.Cache.Load(p, 0, ctr.LineAt(l))
		}
		for k := 0; k < cohRows; k++ {
			v, ok, err := cl.Select(p, uint64(k))
			if err != nil || !ok {
				t.Errorf("readback key %d: ok=%v err=%v", k, ok, err)
				return
			}
			out.kvVals[k] = v
		}
	})
	ec.run()

	// Linearizability of the trace-reconstructed history against the store's
	// seeded contents.
	init := make(map[uint64]uint64, cohRows)
	for k := uint64(0); k < cohRows; k++ {
		init[k] = k*2654435761 + 1 // NewKVStore's seeding formula
	}
	for _, v := range check.CheckLinearizable(check.ExtractKVHistory(rec.Events()), init) {
		t.Errorf("%s: %s", ec.s.Cache.Mode(), v)
	}
	return out
}

func TestCoherenceModeEquivalence(t *testing.T) {
	m := topo.Mesh(4) // 64 cores, 16 sockets
	var ref *coherenceOutcome
	for _, mode := range []cache.CoherenceMode{cache.Broadcast, cache.Directory} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			forEachEngineOpts(t, m, Options{Coherence: mode}, func(t *testing.T, ec engineCase) {
				if got := ec.s.Cache.Mode(); got != mode {
					t.Fatalf("booted in %v, want %v", got, mode)
				}
				out := runCoherenceWorkload(t, ec)
				for l, sum := range out.sums {
					if want := uint64(m.NSockets * cohIncs); sum != want {
						t.Errorf("counter line %d = %d, want %d", l, sum, want)
					}
				}
				if ref == nil {
					ref = &out
					return
				}
				for l := range out.sums {
					if out.sums[l] != ref.sums[l] {
						t.Errorf("counter line %d = %d, reference run has %d", l, out.sums[l], ref.sums[l])
					}
				}
				for k := range out.kvVals {
					if out.kvVals[k] != ref.kvVals[k] {
						t.Errorf("key %d = %d, reference run has %d", k, out.kvVals[k], ref.kvVals[k])
					}
				}
			})
		})
	}
}
