package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"multikernel/internal/interconnect"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// shootdownRounds spawns a driver on core 0's replica running machine-wide
// unmap agreement rounds — the heaviest cross-core protocol in the system,
// touching every monitor through the URPC mesh.
func shootdownRounds(e *sim.Engine, s *System, m *topo.Machine, rounds int) {
	targets := make([]topo.CoreID, m.NumCores())
	for c := range targets {
		targets[c] = topo.CoreID(c)
	}
	e.Spawn("driver", func(p *sim.Proc) {
		mon := s.Net.Monitor(0)
		for i := 0; i < rounds; i++ {
			if !mon.Unmap(p, 0x4000_0000, 4096, targets, monitor.NUMAAware) {
				panic("unmap round failed")
			}
		}
	})
}

// The serial-equivalence anchor: BootParallel on a single-partition engine is
// the serial boot run through the parallel machinery (epoch grid, barriers,
// worker pool), and must reproduce the serial reference byte-for-byte in
// every observable — trace, metrics snapshot, engine checkpoint image — at
// every worker count. This is the nparts=1 half of the determinism contract;
// the workers-sweep identity at nparts=8 lives in expt.BootParallelBench.
func TestParallelBootMatchesSerialAtOnePartition(t *testing.T) {
	m := topo.AMD4x4()
	const seed, rounds = 7, 3
	// Both runs drain via RunUntil at the same virtual instant (far past the
	// workload) so the serialized clocks agree: Run would leave the serial
	// clock on the last event and the parallel clocks on an epoch boundary.
	const alignT = sim.Time(1) << 40

	run := func(e *sim.Engine, s *System, rec *trace.Recorder, drive func()) (events []trace.Event, metrics, img []byte) {
		shootdownRounds(e, s, m, rounds)
		drive()
		mj, err := json.Marshal(e.Metrics().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return rec.Events(), mj, buf.Bytes()
	}

	se := sim.NewEngine(seed)
	srec := trace.NewRecorder()
	se.SetTracer(srec)
	ss := Boot(se, m)
	wantEv, wantMet, wantImg := run(se, ss, srec, func() { se.RunUntil(alignT) })
	se.Close()
	if len(wantEv) == 0 {
		t.Fatal("serial reference produced no trace events")
	}

	for _, w := range []int{1, 2, 4} {
		pm := topo.Partition(m, 1)
		pe := sim.NewParallelEngine(1, interconnect.Lookahead(m, pm), seed, w)
		rec := trace.NewRecorder()
		pe.Part(0).SetTracer(rec)
		ps := BootParallel(pe, m, Options{})
		gotEv, gotMet, gotImg := run(pe.Part(0), ps.Part(0), rec, func() { pe.RunUntil(alignT) })
		if len(gotEv) != len(wantEv) {
			t.Fatalf("w%d: %d trace events, serial reference has %d", w, len(gotEv), len(wantEv))
		}
		for i := range gotEv {
			if gotEv[i] != wantEv[i] {
				t.Fatalf("w%d: trace diverges at event %d: %+v vs serial %+v", w, i, gotEv[i], wantEv[i])
			}
		}
		if !bytes.Equal(gotMet, wantMet) {
			t.Fatalf("w%d: metrics snapshot diverges from serial reference", w)
		}
		if !bytes.Equal(gotImg, wantImg) {
			t.Fatalf("w%d: checkpoint image diverges from serial reference", w)
		}
		pe.Close()
	}
}

// Satellite: checkpoint/restore of a booted multi-partition system. An image
// taken at an epoch barrier warm-starts at ANY worker count (workers are a
// host-side knob, invisible to results), and the continuation must land on
// the same final state as the uninterrupted run.
func TestParallelCheckpointRestoreAcrossWorkerCounts(t *testing.T) {
	m := topo.AMD8x4()
	pm := topo.PerSocket(m)
	la := interconnect.Lookahead(m, pm)
	const seed = 7

	// Continuous reference: boot, run 2 rounds, checkpoint at the quiescent
	// barrier, run 3 more rounds, take the final image.
	pe := sim.NewParallelEngine(pm.NParts(), la, seed, 2)
	ps := BootParallel(pe, m, Options{})
	shootdownRounds(pe.Part(0), ps.Part(0), m, 2)
	pe.Run()
	if dead := pe.Deadlocked(); len(dead) != 0 {
		t.Fatalf("deadlocked: %v", dead)
	}
	var mid bytes.Buffer
	if err := ps.Checkpoint(&mid); err != nil {
		t.Fatal(err)
	}
	shootdownRounds(pe.Part(0), ps.Part(0), m, 3)
	pe.Run()
	var want bytes.Buffer
	if err := ps.Checkpoint(&want); err != nil {
		t.Fatal(err)
	}
	pe.Close()

	for _, w := range []int{1, 2, 4} {
		ps2, err := RestoreParallel(bytes.NewReader(mid.Bytes()), w, m, Options{})
		if err != nil {
			t.Fatalf("w%d: %v", w, err)
		}
		if ps2.PE.NParts() != pm.NParts() {
			t.Fatalf("w%d: restored %d partitions, want %d", w, ps2.PE.NParts(), pm.NParts())
		}
		shootdownRounds(ps2.PE.Part(0), ps2.Part(0), m, 3)
		ps2.PE.Run()
		if dead := ps2.PE.Deadlocked(); len(dead) != 0 {
			t.Fatalf("w%d: deadlocked after restore: %v", w, dead)
		}
		var got bytes.Buffer
		if err := ps2.Checkpoint(&got); err != nil {
			t.Fatalf("w%d: %v", w, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("w%d: warm-started continuation diverged from the continuous run", w)
		}
		ps2.PE.Close()
	}
}

func TestBootParallelRejectsExcessLookahead(t *testing.T) {
	m := topo.AMD8x4()
	pm := topo.PerSocket(m)
	pe := sim.NewParallelEngine(pm.NParts(), interconnect.Lookahead(m, pm)+1, 7, 1)
	defer pe.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("BootParallel accepted a lookahead above the cross-partition minimum")
		}
	}()
	BootParallel(pe, m, Options{})
}

func TestBootAutoSelectsEngine(t *testing.T) {
	m := topo.AMD4x4()
	ps, s := BootAuto(m, 1, Options{})
	if ps != nil || s == nil {
		t.Fatal("Workers=0 must boot the serial reference")
	}
	s.Eng.Close()

	ps, s = BootAuto(m, 1, Options{Workers: 2})
	if ps == nil || s != nil {
		t.Fatal("Workers>0 must boot on the parallel engine")
	}
	if ps.PE.NParts() != m.NSockets {
		t.Fatalf("BootAuto partitioned into %d parts, want one per socket (%d)", ps.PE.NParts(), m.NSockets)
	}
	if ps.PE.Workers() != 2 {
		t.Fatalf("worker budget %d, want 2", ps.PE.Workers())
	}
	ps.PE.Close()
}
