package core

import (
	"testing"

	"multikernel/internal/caps"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func bootShared(t *testing.T, m *topo.Machine) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine(1)
	s := BootWith(e, m, Options{SharedReplicas: true})
	t.Cleanup(e.Close)
	return e, s
}

func TestSharedReplicaRetypeCommits(t *testing.T) {
	e, s := bootShared(t, topo.AMD4x4())
	ok := false
	e.Spawn("init", func(p *sim.Proc) {
		reg := s.Mem.Alloc(4096, 0)
		ok = s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.Frame, 0)
	})
	e.Run()
	if !ok {
		t.Fatal("retype aborted")
	}
	// Each socket's shared replica carries the typing.
	for sk := 0; sk < 4; sk++ {
		cs := s.Replica(topo.CoreID(sk * 4))
		found := false
		for _, c := range cs.All() {
			if c.Type == caps.Frame {
				found = true
			}
		}
		if !found {
			t.Fatalf("socket %d replica missing the Frame", sk)
		}
	}
	if err := s.CheckCapConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedReplicaConflictStillAborts(t *testing.T) {
	e, s := bootShared(t, topo.AMD4x4())
	var first, second bool
	e.Spawn("init", func(p *sim.Proc) {
		reg := s.Mem.Alloc(4096, 0)
		first = s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.PageTable, 1)
		second = s.GlobalRetype(p, 7, reg.Base, reg.Bytes, caps.Frame, 0)
	})
	e.Run()
	if !first || second {
		t.Fatalf("first=%v second=%v", first, second)
	}
	if err := s.CheckCapConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedReplicaSameSocketView(t *testing.T) {
	e, s := bootShared(t, topo.AMD4x4())
	e.Spawn("init", func(p *sim.Proc) {
		reg := s.Mem.Alloc(4096, 0)
		s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.Frame, 0)
	})
	e.Run()
	// Cores 4..7 share socket 1's replica: same object.
	if s.Replica(4) != s.Replica(7) {
		t.Fatal("same-socket cores do not share a replica")
	}
	if s.Replica(0) == s.Replica(4) {
		t.Fatal("different sockets share a replica")
	}
}

func TestSharedReplicaFewerParticipants(t *testing.T) {
	e, s := bootShared(t, topo.AMD8x4())
	e.Spawn("init", func(p *sim.Proc) {
		reg := s.Mem.Alloc(4096, 0)
		s.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.Frame, 0)
	})
	e.Run()
	// Only the 7 remote socket leaders should have handled protocol traffic;
	// non-leader remote cores saw nothing.
	if got := s.Net.Monitor(5).Stats().Handled; got != 0 {
		t.Fatalf("non-leader core 5 handled %d messages", got)
	}
	if got := s.Net.Monitor(4).Stats().Handled; got == 0 {
		t.Fatal("leader core 4 handled no messages")
	}
}

func TestSharedReplicaCheaperAtScale(t *testing.T) {
	measure := func(shared bool) sim.Time {
		e := sim.NewEngine(1)
		defer e.Close()
		s := BootWith(e, topo.AMD8x4(), Options{SharedReplicas: shared})
		var lat sim.Time
		e.Spawn("init", func(p *sim.Proc) {
			r1 := s.Mem.Alloc(4096, 0)
			s.GlobalRetype(p, 0, r1.Base, r1.Bytes, caps.Frame, 0) // warm
			r2 := s.Mem.Alloc(4096, 0)
			start := p.Now()
			s.GlobalRetype(p, 0, r2.Base, r2.Bytes, caps.Frame, 0)
			lat = p.Now() - start
		})
		e.Run()
		return lat
	}
	per, grp := measure(false), measure(true)
	t.Logf("2PC retype at 32 cores: per-core replicas %d, per-socket %d", per, grp)
	if grp >= per {
		t.Fatalf("shared replicas (%d) not cheaper than per-core (%d)", grp, per)
	}
}
