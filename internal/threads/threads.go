// Package threads implements the user-level threads package of Barrelfish's
// default library (paper §4.5, §4.8): dispatchers on each core run a
// core-local thread scheduler, and cross-core operations — spawning,
// joining, migrating threads — are performed by exchanging messages between
// dispatchers rather than by shared runqueues. Synchronization primitives
// (spinlocks, barriers) operate on shared cache lines through the coherence
// model, so their contention behaviour is emergent, which is what
// differentiates the compute-bound workloads of Figure 9 from their Linux
// counterparts.
package threads

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// xcoreSpawnCost is the dispatcher-to-dispatcher message handling cost for a
// remote thread operation, on top of the coherence traffic.
const xcoreSpawnCost = 350

// Team is a process: a shared virtual address space with one dispatcher per
// core it spans. (The address space itself is modelled by the vm package;
// Team handles scheduling and synchronization.)
type Team struct {
	sys   *cache.System
	kern  *kernel.System
	cores []topo.CoreID

	nthreads int
	joinAll  *sim.WaitGroup
}

// NewTeam creates a process spanning the given cores.
func NewTeam(sys *cache.System, kern *kernel.System, cores []topo.CoreID) *Team {
	if len(cores) == 0 {
		panic("threads: team needs at least one core")
	}
	return &Team{sys: sys, kern: kern, cores: cores, joinAll: sim.NewWaitGroup(kern.Eng)}
}

// Cores returns the cores the team spans.
func (t *Team) Cores() []topo.CoreID { return t.cores }

// Engine returns the team's simulation engine.
func (t *Team) Engine() *sim.Engine { return t.kern.Eng }

// Sys returns the team's cache system.
func (t *Team) Sys() *cache.System { return t.sys }

// Thread is one user-level thread, pinned to a core until migrated.
type Thread struct {
	Team *Team
	core topo.CoreID
	p    *sim.Proc
	done *sim.Future[struct{}]
}

// Core returns the core the thread currently runs on.
func (th *Thread) Core() topo.CoreID { return th.core }

// Proc exposes the underlying simulation proc (for integration with other
// packages).
func (th *Thread) Proc() *sim.Proc { return th.p }

// Go starts a thread on the given core. If the spawning context sits on a
// different core, the cross-core dispatcher message cost is charged to the
// new thread's startup.
func (t *Team) Go(from topo.CoreID, core topo.CoreID, name string, fn func(th *Thread)) *Thread {
	th := &Thread{Team: t, core: core}
	th.done = sim.NewFuture[struct{}](t.kern.Eng)
	t.nthreads++
	t.joinAll.Add(1)
	remote := from != core && from >= 0
	th.p = t.kern.Eng.Spawn(fmt.Sprintf("%s@c%d", name, core), func(p *sim.Proc) {
		if remote {
			// The origin dispatcher sent a create message; the local
			// dispatcher handles it and enters the thread.
			p.Sleep(xcoreSpawnCost)
		}
		p.Sleep(t.sys.Machine().Costs.Upcall)
		fn(th)
		t.joinAll.Done()
		th.done.Complete(struct{}{})
	})
	return th
}

// Join blocks the calling thread until th completes.
func (th *Thread) Join(caller *Thread) {
	th.done.Await(caller.p)
	// Joining a remote thread requires a completion message.
	if caller.core != th.core {
		caller.p.Sleep(xcoreSpawnCost / 2)
	}
}

// JoinAll parks the proc until every thread of the team has finished.
func (t *Team) JoinAll(p *sim.Proc) { t.joinAll.Wait(p) }

// Compute charges cycles of pure computation with a small deterministic
// jitter, modelling per-core execution variance.
func (th *Thread) Compute(cycles sim.Time) {
	th.p.Sleep(th.p.Engine().RNG().Jitter(cycles, 0.02))
}

// Yield passes through the user-level scheduler once.
func (th *Thread) Yield() {
	th.p.Sleep(th.Team.sys.Machine().Costs.Dispatch)
	th.p.Sleep(0)
}

// Migrate moves the thread to another core: the dispatchers exchange
// messages and the destination upcalls the thread.
func (th *Thread) Migrate(core topo.CoreID) {
	if core == th.core {
		return
	}
	c := th.Team.sys.Machine().Costs
	th.p.Sleep(xcoreSpawnCost + c.CSwitch + c.Upcall)
	th.core = core
}

// Load reads shared memory from the thread's current core.
func (th *Thread) Load(a memory.Addr) uint64 {
	return th.Team.sys.Load(th.p, th.core, a)
}

// Store writes shared memory from the thread's current core.
func (th *Thread) Store(a memory.Addr, v uint64) {
	th.Team.sys.Store(th.p, th.core, a, v)
}

// Mutex is a test-and-set spinlock on one shared cache line. Its cost under
// contention emerges from the coherence model's line queuing.
type Mutex struct {
	team *Team
	word memory.Addr
}

// NewMutex allocates a spinlock homed on the given socket.
func (t *Team) NewMutex(home topo.SocketID) *Mutex {
	return &Mutex{team: t, word: t.sys.Memory().AllocLines(1, home).Base}
}

// Lock spins until the lock is acquired (test-and-test-and-set: failed
// acquirers spin on a shared read so they don't steal line ownership).
func (m *Mutex) Lock(th *Thread) {
	for {
		acquired := false
		m.team.sys.RMW(th.p, th.core, m.word, func(v uint64) uint64 {
			if v == 0 {
				acquired = true
				return 1
			}
			return v
		})
		if acquired {
			return
		}
		for m.team.sys.Load(th.p, th.core, m.word) != 0 {
			th.p.Sleep(30)
		}
	}
}

// Unlock releases the lock.
func (m *Mutex) Unlock(th *Thread) {
	m.team.sys.Store(th.p, th.core, m.word, 0)
}

// SpinBarrier is the user-space sense-reversing barrier of the Barrelfish
// threads library: an atomic arrival counter plus a generation word both on
// shared cache lines.
type SpinBarrier struct {
	team    *Team
	n       int
	count   memory.Addr
	gen     memory.Addr
	spinGap sim.Time
}

// NewSpinBarrier allocates a barrier for n participants.
func (t *Team) NewSpinBarrier(n int, home topo.SocketID) *SpinBarrier {
	mem := t.sys.Memory()
	return &SpinBarrier{
		team:    t,
		n:       n,
		count:   mem.AllocLines(1, home).Base,
		gen:     mem.AllocLines(1, home).Base,
		spinGap: 40,
	}
}

// Wait blocks until all n participants have arrived.
func (b *SpinBarrier) Wait(th *Thread) {
	sys := b.team.sys
	g := sys.Load(th.p, th.core, b.gen)
	arrived := sys.RMW(th.p, th.core, b.count, func(v uint64) uint64 { return v + 1 })
	if arrived == uint64(b.n) {
		sys.Store(th.p, th.core, b.count, 0)
		sys.Store(th.p, th.core, b.gen, g+1)
		return
	}
	for sys.Load(th.p, th.core, b.gen) == g {
		th.p.Sleep(b.spinGap)
	}
}
