package threads

import (
	"testing"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

type rig struct {
	e    *sim.Engine
	m    *topo.Machine
	sys  *cache.System
	kern *kernel.System
}

func newRig(m *topo.Machine) *rig {
	e := sim.NewEngine(1)
	sys := cache.New(e, m, memory.New(m), interconnect.New(m))
	return &rig{e: e, m: m, sys: sys, kern: kernel.NewSystem(e, m)}
}

func allCores(m *topo.Machine) []topo.CoreID {
	out := make([]topo.CoreID, m.NumCores())
	for i := range out {
		out[i] = topo.CoreID(i)
	}
	return out
}

func TestGoAndJoinAll(t *testing.T) {
	r := newRig(topo.AMD4x4())
	team := NewTeam(r.sys, r.kern, allCores(r.m))
	ran := make(map[topo.CoreID]bool)
	for _, c := range team.Cores() {
		c := c
		team.Go(-1, c, "w", func(th *Thread) {
			th.Compute(1000)
			ran[c] = true
		})
	}
	r.e.Spawn("main", func(p *sim.Proc) { team.JoinAll(p) })
	r.e.Run()
	r.e.CheckQuiesced()
	if len(ran) != 16 {
		t.Fatalf("%d threads ran, want 16", len(ran))
	}
}

func TestRemoteSpawnCostsMore(t *testing.T) {
	r := newRig(topo.AMD2x2())
	team := NewTeam(r.sys, r.kern, allCores(r.m))
	var localDone, remoteDone sim.Time
	team.Go(0, 0, "local", func(th *Thread) { localDone = th.Proc().Now() })
	team.Go(0, 2, "remote", func(th *Thread) { remoteDone = th.Proc().Now() })
	r.e.Run()
	if remoteDone <= localDone {
		t.Fatalf("remote spawn (%d) not more expensive than local (%d)", remoteDone, localDone)
	}
}

func TestJoinSingleThread(t *testing.T) {
	r := newRig(topo.AMD2x2())
	team := NewTeam(r.sys, r.kern, allCores(r.m))
	var joinedAt sim.Time
	worker := team.Go(-1, 1, "w", func(th *Thread) { th.Compute(5000) })
	team.Go(-1, 0, "joiner", func(th *Thread) {
		worker.Join(th)
		joinedAt = th.Proc().Now()
	})
	r.e.Run()
	if joinedAt < 5000 {
		t.Fatalf("join returned at %d before worker finished", joinedAt)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	r := newRig(topo.AMD4x4())
	team := NewTeam(r.sys, r.kern, allCores(r.m))
	mu := team.NewMutex(0)
	inside := 0
	maxInside := 0
	for i := 0; i < 8; i++ {
		c := topo.CoreID(i * 2)
		team.Go(-1, c, "locker", func(th *Thread) {
			for j := 0; j < 5; j++ {
				mu.Lock(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Compute(200)
				inside--
				mu.Unlock(th)
			}
		})
	}
	r.e.Run()
	r.e.CheckQuiesced()
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d threads inside", maxInside)
	}
}

func TestSpinBarrierRendezvous(t *testing.T) {
	r := newRig(topo.AMD4x4())
	team := NewTeam(r.sys, r.kern, allCores(r.m))
	const n = 16
	b := team.NewSpinBarrier(n, 0)
	var phase [n]int
	for i := 0; i < n; i++ {
		i := i
		team.Go(-1, topo.CoreID(i), "w", func(th *Thread) {
			for round := 0; round < 3; round++ {
				th.Compute(sim.Time(100 * (i + 1))) // deliberately unbalanced
				phase[i] = round
				b.Wait(th)
				// After the barrier, every thread must have finished round.
				for j := 0; j < n; j++ {
					if phase[j] < round {
						t.Errorf("thread %d passed barrier before %d finished round %d", i, j, round)
					}
				}
			}
		})
	}
	r.e.Run()
	r.e.CheckQuiesced()
}

func TestBarrierCostGrowsWithParticipants(t *testing.T) {
	cost := func(n int) sim.Time {
		r := newRig(topo.AMD4x4())
		team := NewTeam(r.sys, r.kern, allCores(r.m))
		b := team.NewSpinBarrier(n, 0)
		var worst sim.Time
		for i := 0; i < n; i++ {
			team.Go(-1, topo.CoreID(i), "w", func(th *Thread) {
				for round := 0; round < 4; round++ {
					start := th.Proc().Now()
					b.Wait(th)
					if d := th.Proc().Now() - start; d > worst {
						worst = d
					}
				}
			})
		}
		r.e.Run()
		return worst
	}
	if c2, c16 := cost(2), cost(16); c16 <= c2 {
		t.Fatalf("barrier cost did not grow: 2 cores %d, 16 cores %d", c2, c16)
	}
}

func TestMigrate(t *testing.T) {
	r := newRig(topo.AMD2x2())
	team := NewTeam(r.sys, r.kern, allCores(r.m))
	team.Go(-1, 0, "m", func(th *Thread) {
		if th.Core() != 0 {
			t.Errorf("start core %d", th.Core())
		}
		before := th.Proc().Now()
		th.Migrate(3)
		if th.Core() != 3 {
			t.Errorf("core after migrate: %d", th.Core())
		}
		if th.Proc().Now() == before {
			t.Error("migration was free")
		}
		th.Migrate(3) // no-op
	})
	r.e.Run()
}

func TestLoadStoreThroughThread(t *testing.T) {
	r := newRig(topo.AMD2x2())
	team := NewTeam(r.sys, r.kern, allCores(r.m))
	a := r.sys.Memory().AllocLines(1, 0).Base
	team.Go(-1, 1, "w", func(th *Thread) {
		th.Store(a, 99)
		if got := th.Load(a); got != 99 {
			t.Errorf("load=%d", got)
		}
	})
	r.e.Run()
}

func TestEmptyTeamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := newRig(topo.AMD2x2())
	NewTeam(r.sys, r.kern, nil)
}
