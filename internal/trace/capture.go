// Global trace capture: how per-engine recorders from a parallel experiment
// sweep fold into one deterministic export.
//
// mkbench runs experiment points on a worker pool, each point a hermetic
// engine with its own recorder. Engines contribute their serialized trace at
// Close time, in whatever order the workers finish — so the collector sorts
// contributed chunks by their content before assigning process ids. Chunk
// bytes are a pure function of the (seed-deterministic) engine run, so the
// sorted sequence — and therefore the exported file — is byte-identical at
// any host parallelism.

package trace

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

var (
	captureOn atomic.Bool
	captureMu sync.Mutex
	chunks    []capChunk
)

type capChunk struct {
	key string // chunk serialized with pid 0: the deterministic sort key
	evs []Event
}

// StartCapture begins a global capture window: engines created while the
// window is open attach a full recorder and contribute it when closed.
// Any previously captured chunks are discarded.
func StartCapture() {
	captureMu.Lock()
	chunks = nil
	captureMu.Unlock()
	captureOn.Store(true)
}

// StopCapture ends the capture window and discards captured chunks.
func StopCapture() {
	captureOn.Store(false)
	captureMu.Lock()
	chunks = nil
	captureMu.Unlock()
}

// Capturing reports whether a global capture window is open.
func Capturing() bool { return captureOn.Load() }

// Contribute adds r's events to the open capture window. Nil recorders and
// closed windows are no-ops. Safe to call from concurrent harness workers.
func Contribute(r *Recorder) {
	if r == nil || !captureOn.Load() || r.Len() == 0 {
		return
	}
	evs := append([]Event(nil), r.Events()...)
	c := capChunk{key: string(appendChunk(nil, 0, "engine 0", evs)), evs: evs}
	captureMu.Lock()
	chunks = append(chunks, c)
	captureMu.Unlock()
}

// WriteCaptured exports every contributed chunk as one Chrome trace JSON
// document. Chunks are ordered by content and assigned process ids after
// sorting, so the output bytes do not depend on contribution order.
func WriteCaptured(w io.Writer) error {
	captureMu.Lock()
	cs := append([]capChunk(nil), chunks...)
	captureMu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].key < cs[j].key })
	out := make([][]byte, len(cs))
	for i, c := range cs {
		out[i] = appendChunk(nil, i, "engine "+strconv.Itoa(i), c.evs)
	}
	return writeJSON(w, out)
}
