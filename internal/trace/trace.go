// Package trace is the structured event recorder behind every instrumented
// subsystem of the simulator. Events are keyed by virtual time (plain uint64
// cycles — this package deliberately does not import internal/sim, so the
// engine can embed a Recorder without an import cycle) and typed: duration
// spans, instants, flow arrows that link a URPC send on one core to its
// receive on another, and async spans for operations (monitor agreement
// rounds) that overlap on a single core.
//
// The overhead contract: a nil *Recorder is a valid, disabled recorder —
// every method nil-checks its receiver and returns immediately, so the
// tracing-off cost at an instrumentation site is one predicted branch.
// Recording itself never formats anything: event names must be static string
// constants, arguments are raw integers, and ring-mode recorders reuse a
// fixed buffer, so the hot path performs no allocation in steady state.
// Rendering (text dump, Chrome trace JSON) happens only at export time.
package trace

// Kind is the type of one trace event, mirroring the Chrome trace-event
// phases it exports to.
type Kind uint8

const (
	// Begin/End bracket a duration span on one core's timeline ('B'/'E').
	Begin Kind = iota
	End
	// Instant is a point event ('i').
	Instant
	// FlowOut/FlowIn are the two ends of a flow arrow ('s'/'f'): a FlowOut
	// inside a span on core A links to the FlowIn with the same ID inside a
	// span on core B — the URPC send→recv causality link.
	FlowOut
	FlowIn
	// AsyncBegin/AsyncEnd bracket an async span ('b'/'e'), correlated by ID
	// rather than nesting, for operations that overlap on one timeline
	// (concurrent monitor agreement rounds).
	AsyncBegin
	AsyncEnd
	// Count is a sampled counter value ('C'); Arg carries the sample.
	Count
)

func (k Kind) String() string {
	switch k {
	case Begin:
		return "B"
	case End:
		return "E"
	case Instant:
		return "i"
	case FlowOut:
		return "s"
	case FlowIn:
		return "f"
	case AsyncBegin:
		return "b"
	case AsyncEnd:
		return "e"
	case Count:
		return "C"
	}
	return "?"
}

// Subsystem tags an event with the layer that emitted it; it becomes the
// Chrome trace category.
type Subsystem uint8

const (
	SubSim Subsystem = iota
	SubCache
	SubLink
	SubURPC
	SubMonitor
	SubKernel
	SubBaseline
	SubApp
	SubObs
)

func (s Subsystem) String() string {
	switch s {
	case SubSim:
		return "sim"
	case SubCache:
		return "cache"
	case SubLink:
		return "link"
	case SubURPC:
		return "urpc"
	case SubMonitor:
		return "monitor"
	case SubKernel:
		return "kernel"
	case SubBaseline:
		return "baseline"
	case SubApp:
		return "app"
	case SubObs:
		return "obs"
	}
	return "?"
}

// Event is one structured trace record. Name must be a static string
// constant (the zero-alloc contract); ID correlates the two ends of a flow
// or async span and is 0 when unused; Arg carries one event-specific integer
// (a latency, a fan-out count, a commit flag).
type Event struct {
	At   uint64 // virtual time in cycles
	ID   uint64
	Arg  uint64
	Name string
	Kind Kind
	Sub  Subsystem
	Core int32 // emitting core, or -1 for engine context
}

// Recorder accumulates events. The zero value is unusable; a nil *Recorder
// is the disabled recorder.
type Recorder struct {
	events []Event
	ring   int    // >0: keep only the last ring events (flight recorder)
	n      uint64 // total events emitted (exceeds len(events) after ring wrap)
}

// NewRecorder returns a full recorder that keeps every event.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRing returns a flight recorder keeping only the most recent n events —
// bounded memory for always-on recording, dumped on test failure or fault
// replay.
func NewRing(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{ring: n, events: make([]Event, 0, n)}
}

// Emit records one event. Safe (and near-free) on a nil receiver.
func (r *Recorder) Emit(at uint64, k Kind, sub Subsystem, core int32, name string, id, arg uint64) {
	if r == nil {
		return
	}
	ev := Event{At: at, ID: id, Arg: arg, Name: name, Kind: k, Sub: sub, Core: core}
	if r.ring > 0 && len(r.events) == r.ring {
		r.events[r.n%uint64(r.ring)] = ev
	} else {
		r.events = append(r.events, ev)
	}
	r.n++
}

// Len returns the total number of events emitted (including any that a ring
// recorder has since overwritten).
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Events returns the retained events in emission order. The slice aliases
// the recorder's buffer except after a ring wrap.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.ring == 0 || r.n <= uint64(r.ring) {
		return r.events
	}
	// Ring wrapped: the oldest retained event sits at the next write slot.
	cut := int(r.n % uint64(r.ring))
	out := make([]Event, 0, r.ring)
	out = append(out, r.events[cut:]...)
	return append(out, r.events[:cut]...)
}

// Reset discards all recorded events, keeping the mode and capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.n = 0
}

// failer is the subset of testing.TB this package needs, kept as an
// interface so non-test builds do not link the testing package.
type failer interface {
	Failed() bool
	Logf(format string, args ...any)
	Cleanup(func())
}

// DumpOnFailure arranges for r's retained events to be logged through t if
// the test fails — the flight-recorder dump for protocol debugging.
func DumpOnFailure(t failer, r *Recorder) {
	t.Cleanup(func() {
		if !t.Failed() || r == nil {
			return
		}
		t.Logf("trace flight recorder (%d of %d events retained):\n%s",
			len(r.Events()), r.Len(), r.TextDump())
	})
}
