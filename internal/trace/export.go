// Chrome trace-event / Perfetto JSON export and the plain-text dump.
//
// The JSON is hand-rolled rather than reflected through encoding/json: field
// order, number formatting and escaping are then fixed by this code alone,
// which is what makes exported traces byte-identical across runs and across
// host parallelism (the determinism test hashes these bytes).

package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// phase maps a Kind to its Chrome trace-event phase letter.
func phase(k Kind) byte {
	switch k {
	case Begin:
		return 'B'
	case End:
		return 'E'
	case Instant:
		return 'i'
	case FlowOut:
		return 's'
	case FlowIn:
		return 'f'
	case AsyncBegin:
		return 'b'
	case AsyncEnd:
		return 'e'
	case Count:
		return 'C'
	}
	return 'i'
}

// tid maps an event's core to a Chrome thread id: tid 0 is engine context,
// core N is tid N+1.
func tid(core int32) int64 { return int64(core) + 1 }

// appendEvent serializes one event as a Chrome trace-event object. ts is the
// virtual time in cycles (exported 1 cycle = 1 µs, so Perfetto's time axis
// reads directly in cycles).
func appendEvent(b []byte, pid int, ev Event) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, ev.Name)
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, ev.Sub.String())
	b = append(b, `,"ph":"`...)
	b = append(b, phase(ev.Kind))
	b = append(b, `","ts":`...)
	b = strconv.AppendUint(b, ev.At, 10)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, tid(ev.Core), 10)
	switch ev.Kind {
	case FlowOut, FlowIn, AsyncBegin, AsyncEnd:
		// id2.local scopes the correlation id to this process, so parallel
		// engine runs exported as separate pids cannot cross-link.
		b = append(b, `,"id2":{"local":"0x`...)
		b = strconv.AppendUint(b, ev.ID, 16)
		b = append(b, `"}`...)
		if ev.Kind == FlowIn {
			b = append(b, `,"bp":"e"`...)
		}
	case Instant:
		b = append(b, `,"s":"t"`...)
	}
	if ev.Arg != 0 || ev.Kind == Count {
		b = append(b, `,"args":{"v":`...)
		b = strconv.AppendUint(b, ev.Arg, 10)
		b = append(b, '}')
	}
	return append(b, '}')
}

// appendMeta serializes a process/thread-name metadata event.
func appendMeta(b []byte, kind string, pid int, tid int64, name string) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, kind)
	b = append(b, `,"ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	if tid >= 0 {
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, tid, 10)
	}
	b = append(b, `,"args":{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `}}`...)
	return b
}

// appendChunk serializes evs (plus naming metadata) for the given pid and
// process name. Every event object is terminated by ",\n" so chunks
// concatenate directly inside the traceEvents array.
func appendChunk(b []byte, pid int, procName string, evs []Event) []byte {
	b = appendMeta(b, "process_name", pid, -1, procName)
	b = append(b, ",\n"...)
	for _, t := range chunkTids(evs) {
		name := "engine"
		if t > 0 {
			name = "core " + strconv.FormatInt(t-1, 10)
		}
		b = appendMeta(b, "thread_name", pid, t, name)
		b = append(b, ",\n"...)
	}
	for _, ev := range evs {
		b = appendEvent(b, pid, ev)
		b = append(b, ",\n"...)
	}
	return b
}

// chunkTids returns the distinct thread ids appearing in evs, ascending.
func chunkTids(evs []Event) []int64 {
	var seen [130]bool // tids are small (core counts ≤ 64 here); spill is ignored
	for _, ev := range evs {
		if t := tid(ev.Core); t >= 0 && t < int64(len(seen)) {
			seen[t] = true
		}
	}
	var out []int64
	for t, ok := range seen {
		if ok {
			out = append(out, int64(t))
		}
	}
	return out
}

// writeJSON writes a complete Chrome trace JSON document from pre-serialized
// chunks. The final "]}"-closing object is legal even with the trailing
// comma-free last element handled by a sentinel metadata event.
func writeJSON(w io.Writer, chunks [][]byte) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for _, c := range chunks {
		if _, err := w.Write(c); err != nil {
			return err
		}
	}
	// Chunks end with ",\n"; close the array with a final no-op metadata
	// event so the JSON stays valid without trailing-comma surgery.
	_, err := io.WriteString(w, "{\"name\":\"trace_export_done\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"done\"}}\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// WriteJSON exports the recorders as one Chrome trace JSON document, one
// process per recorder in argument order. Nil recorders are skipped.
func WriteJSON(w io.Writer, recs ...*Recorder) error {
	var chunks [][]byte
	pid := 0
	for _, r := range recs {
		if r == nil {
			continue
		}
		chunks = append(chunks, appendChunk(nil, pid, "engine "+strconv.Itoa(pid), r.Events()))
		pid++
	}
	return writeJSON(w, chunks)
}

// CounterPoint is one sample of a counter track: the series' value V at
// virtual time At.
type CounterPoint struct {
	At uint64
	V  uint64
}

// CounterTrack is a named time series exported as a Perfetto counter ('C')
// track: one independently-plotted line per Name on the Core's timeline
// (Core -1 places it on the engine row). Points must be in ascending At
// order.
type CounterTrack struct {
	Name   string
	Sub    Subsystem
	Core   int32
	Points []CounterPoint
}

// WriteJSONCounters exports counter tracks as one Chrome trace JSON document
// under a single "counters" process. Like WriteJSON, the bytes are fully
// determined by the inputs, so identical stores export identically.
func WriteJSONCounters(w io.Writer, tracks ...CounterTrack) error {
	var evs []Event
	for _, tr := range tracks {
		for _, p := range tr.Points {
			evs = append(evs, Event{At: p.At, Arg: p.V, Name: tr.Name, Kind: Count, Sub: tr.Sub, Core: tr.Core})
		}
	}
	return writeJSON(w, [][]byte{appendChunk(nil, 0, "counters", evs)})
}

// TextDump renders the retained events as aligned plain text — the flight
// recorder format printed on test failure and by mksim -trace.
func (r *Recorder) TextDump() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, ev := range r.Events() {
		who := "engine"
		if ev.Core >= 0 {
			who = "core" + strconv.Itoa(int(ev.Core))
		}
		fmt.Fprintf(&b, "%12d %-8s %-7s %s %-24s", ev.At, ev.Sub, who, ev.Kind, ev.Name)
		if ev.ID != 0 {
			fmt.Fprintf(&b, " id=%#x", ev.ID)
		}
		if ev.Arg != 0 {
			fmt.Fprintf(&b, " arg=%d", ev.Arg)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DumpText writes TextDump to w.
func (r *Recorder) DumpText(w io.Writer) error {
	_, err := io.WriteString(w, r.TextDump())
	return err
}
