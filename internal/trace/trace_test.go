package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Emit(1, Instant, SubSim, 0, "x", 0, 0) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder retained events")
	}
	r.Reset()
	if got := r.TextDump(); got != "" {
		t.Fatalf("nil TextDump = %q", got)
	}
}

func TestRecorderKeepsEmissionOrder(t *testing.T) {
	r := NewRecorder()
	r.Emit(10, Begin, SubURPC, 2, "urpc.send", 0, 0)
	r.Emit(15, FlowOut, SubURPC, 2, "urpc.msg", 0x42, 0)
	r.Emit(20, End, SubURPC, 2, "urpc.send", 0, 0)
	evs := r.Events()
	if len(evs) != 3 || r.Len() != 3 {
		t.Fatalf("got %d events, Len=%d", len(evs), r.Len())
	}
	if evs[0].Kind != Begin || evs[1].Kind != FlowOut || evs[2].Kind != End {
		t.Fatalf("order lost: %v", evs)
	}
	if evs[1].ID != 0x42 || evs[1].At != 15 || evs[1].Core != 2 {
		t.Fatalf("fields lost: %+v", evs[1])
	}
	r.Reset()
	if r.Len() != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRingRecorderKeepsLastN(t *testing.T) {
	r := NewRing(4)
	for i := uint64(0); i < 10; i++ {
		r.Emit(i, Instant, SubSim, -1, "tick", 0, i)
	}
	if r.Len() != 10 {
		t.Fatalf("Len=%d, want total emitted 10", r.Len())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.At != want {
			t.Fatalf("event %d at t=%d, want %d (oldest-first after wrap)", i, ev.At, want)
		}
	}
}

func TestTextDumpFormat(t *testing.T) {
	r := NewRecorder()
	r.Emit(100, Instant, SubCache, 3, "cache.inval", 0, 7)
	r.Emit(200, FlowIn, SubURPC, 1, "urpc.msg", 0xbeef, 0)
	dump := r.TextDump()
	for _, want := range []string{"cache", "core3", "cache.inval", "arg=7", "core1", "id=0xbeef"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("TextDump missing %q:\n%s", want, dump)
		}
	}
}

// TestWriteJSONIsValidChromeTrace parses the export with encoding/json and
// checks the trace-event fields Perfetto keys on: phases, flow binding points,
// process-scoped ids, and the 1-cycle-per-µs timestamp mapping.
func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	r := NewRecorder()
	r.Emit(10, Begin, SubURPC, 0, "urpc.send", 0, 0)
	r.Emit(12, FlowOut, SubURPC, 0, "urpc.msg", 0x101, 0)
	r.Emit(14, End, SubURPC, 0, "urpc.send", 0, 0)
	r.Emit(30, Begin, SubURPC, 5, "urpc.recv", 0, 0)
	r.Emit(31, FlowIn, SubURPC, 5, "urpc.msg", 0x101, 0)
	r.Emit(32, End, SubURPC, 5, "urpc.recv", 0, 0)
	r.Emit(40, Instant, SubMonitor, 2, "monitor.decide", 9, 1)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	byPhase := map[string][]map[string]any{}
	for _, ev := range doc.TraceEvents {
		byPhase[ev["ph"].(string)] = append(byPhase[ev["ph"].(string)], ev)
	}
	if len(byPhase["B"]) != 2 || len(byPhase["E"]) != 2 || len(byPhase["i"]) != 1 {
		t.Fatalf("phase counts wrong: B=%d E=%d i=%d", len(byPhase["B"]), len(byPhase["E"]), len(byPhase["i"]))
	}
	if len(byPhase["s"]) != 1 || len(byPhase["f"]) != 1 {
		t.Fatalf("flow ends missing: s=%d f=%d", len(byPhase["s"]), len(byPhase["f"]))
	}
	out, in := byPhase["s"][0], byPhase["f"][0]
	oid := out["id2"].(map[string]any)["local"]
	iid := in["id2"].(map[string]any)["local"]
	if oid != "0x101" || oid != iid {
		t.Fatalf("flow ids do not link: out=%v in=%v", oid, iid)
	}
	if in["bp"] != "e" {
		t.Fatalf("FlowIn missing bp:e binding point: %v", in)
	}
	if out["tid"].(float64) == in["tid"].(float64) {
		t.Fatal("flow ends on same tid; cross-core link lost")
	}
	if ts := byPhase["i"][0]["ts"].(float64); ts != 40 {
		t.Fatalf("instant ts=%v, want 40 (1 cycle = 1 µs)", ts)
	}
	// Metadata names every process and thread that appears.
	names := 0
	for _, ev := range byPhase["M"] {
		if ev["name"] == "process_name" || ev["name"] == "thread_name" {
			names++
		}
	}
	if names < 4 { // 1 process + 3 threads (core 0, 2, 5)
		t.Fatalf("only %d naming metadata events", names)
	}
}

// TestWriteJSONCountersRoundTrip exports two counter tracks and parses the
// document back: every sample must come out as a 'C' event whose (name, ts,
// args.v, tid, cat) reconstruct the original series exactly — the contract
// Perfetto counter rendering and mkstat -perfetto rely on.
func TestWriteJSONCountersRoundTrip(t *testing.T) {
	heat := CounterTrack{
		Name: "interconnect.link.0-1.dwords", Sub: SubObs, Core: 0,
		Points: []CounterPoint{{At: 1000, V: 0}, {At: 2000, V: 48}, {At: 3000, V: 112}},
	}
	depth := CounterTrack{
		Name: "kv.server.2.pending", Sub: SubObs, Core: 2,
		Points: []CounterPoint{{At: 1000, V: 3}, {At: 2000, V: 0}},
	}
	var buf bytes.Buffer
	if err := WriteJSONCounters(&buf, heat, depth); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("counter export is not valid JSON: %v\n%s", err, buf.String())
	}
	got := map[string][]CounterPoint{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "C" {
			continue
		}
		if ev["cat"] != "obs" {
			t.Fatalf("counter category %v, want obs", ev["cat"])
		}
		name := ev["name"].(string)
		v := ev["args"].(map[string]any)["v"].(float64)
		got[name] = append(got[name], CounterPoint{At: uint64(ev["ts"].(float64)), V: uint64(v)})
		wantTid := int64(1)
		if name == depth.Name {
			wantTid = 3
		}
		if int64(ev["tid"].(float64)) != wantTid {
			t.Fatalf("%s on tid %v, want %d", name, ev["tid"], wantTid)
		}
	}
	for _, tr := range []CounterTrack{heat, depth} {
		pts := got[tr.Name]
		if len(pts) != len(tr.Points) {
			t.Fatalf("%s: %d points round-tripped, want %d", tr.Name, len(pts), len(tr.Points))
		}
		for i, p := range pts {
			if p != tr.Points[i] {
				t.Fatalf("%s point %d: %+v, want %+v", tr.Name, i, p, tr.Points[i])
			}
		}
	}

	// Zero samples must survive: a counter dropping to 0 is a real point
	// (the args object is emitted for 'C' even when v==0).
	if got[depth.Name][1].V != 0 {
		t.Fatal("zero-valued counter sample lost")
	}

	// Byte stability, same contract as WriteJSON.
	var again bytes.Buffer
	if err := WriteJSONCounters(&again, heat, depth); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two counter exports differ")
	}
}

// TestWriteJSONByteStable re-exports the same recorder and requires identical
// bytes — the property the determinism test hashes.
func TestWriteJSONByteStable(t *testing.T) {
	r := NewRecorder()
	for i := uint64(0); i < 100; i++ {
		r.Emit(i, Kind(i%8), Subsystem(i%8), int32(i%5)-1, "ev", i*3, i^0xff)
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of one recorder differ")
	}
}

// TestCaptureOrderIndependent contributes recorders in two different orders
// and requires byte-identical WriteCaptured output — the mechanism that makes
// parallel sweeps deterministic.
func TestCaptureOrderIndependent(t *testing.T) {
	mk := func(seed uint64) *Recorder {
		r := NewRecorder()
		for i := uint64(0); i < 10; i++ {
			r.Emit(seed*1000+i, Instant, SubSim, int32(seed), "tick", 0, i)
		}
		return r
	}
	export := func(order []uint64) []byte {
		StartCapture()
		defer StopCapture()
		for _, s := range order {
			Contribute(mk(s))
		}
		var buf bytes.Buffer
		if err := WriteCaptured(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := export([]uint64{1, 2, 3})
	b := export([]uint64{3, 1, 2})
	if !bytes.Equal(a, b) {
		t.Fatal("capture output depends on contribution order")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("captured export invalid: %v", err)
	}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev["pid"].(float64)] = true
	}
	if !pids[0] || !pids[1] || !pids[2] {
		t.Fatalf("expected pids 0..2, got %v", pids)
	}
}

func TestContributeOutsideWindowIgnored(t *testing.T) {
	StopCapture()
	r := NewRecorder()
	r.Emit(1, Instant, SubSim, -1, "x", 0, 0)
	Contribute(r) // closed window: dropped
	StartCapture()
	defer StopCapture()
	var buf bytes.Buffer
	if err := WriteCaptured(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "M" {
			t.Fatalf("stray event leaked into empty capture: %v", ev)
		}
	}
}

// BenchmarkEmitNil is the disabled-recorder cost at an instrumentation site:
// the overhead contract says this is one predicted branch.
func BenchmarkEmitNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(uint64(i), Instant, SubSim, 0, "bench", 0, 0)
	}
}

// BenchmarkEmitRing is the enabled steady-state cost: ring reuse means no
// allocation after warm-up.
func BenchmarkEmitRing(b *testing.B) {
	r := NewRing(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(uint64(i), Instant, SubSim, 0, "bench", 0, 0)
	}
}
