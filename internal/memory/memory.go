// Package memory models the simulated machine's physical memory: a sparse
// word-addressed store partitioned into 64-byte cache lines, each homed on a
// NUMA node (socket). Latency is not charged here — the cache model consults
// the machine's cost parameters — but data values and home-node placement
// are, so that messages really carry payloads and NUMA-aware allocation is a
// real placement decision.
//
// Both index structures are built for the simulator's access pattern rather
// than generality. Home-node placement is kept as a run-length list over the
// bump allocator's monotonically increasing address space, so allocating a
// region is O(1) regardless of its size (per-line bookkeeping made machine
// boot the single hottest operation in whole-experiment profiles). Word
// contents live in 4KiB pages indexed by a map keyed on page number, with a
// one-entry cache for the repeated same-page accesses of polling loops and
// payload copies.
package memory

import (
	"fmt"
	"io"
	"sort"

	"multikernel/internal/ckpt"
	"multikernel/internal/topo"
)

// Addr is a simulated physical byte address. Word accesses must be 8-byte
// aligned.
type Addr uint64

// LineSize is the cache-line size in bytes.
const LineSize = 64

// WordsPerLine is the number of 64-bit words in a cache line.
const WordsPerLine = LineSize / 8

// LineID identifies a cache line (Addr / LineSize).
type LineID uint64

// Line returns the line containing a.
func (a Addr) Line() LineID { return LineID(a / LineSize) }

// LineBase returns the first address of line l.
func (l LineID) Base() Addr { return Addr(l) * LineSize }

// Region is an allocated range of physical memory.
type Region struct {
	Base  Addr
	Bytes uint64
	Home  topo.SocketID
}

// End returns one past the last byte of the region.
func (r Region) End() Addr { return r.Base + Addr(r.Bytes) }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() int { return int(r.Bytes / LineSize) }

// LineAt returns the base address of the i'th line of the region.
func (r Region) LineAt(i int) Addr { return r.Base + Addr(i*LineSize) }

// pageShift selects 4KiB pages (512 words) for the backing store.
const (
	pageShift = 12
	pageWords = (1 << pageShift) / 8
)

type page [pageWords]uint64

// homeRun records that lines starting at start (up to the next run) are
// homed on home. Runs are appended in ascending start order by the bump
// allocator.
type homeRun struct {
	start LineID
	home  topo.SocketID
}

// Memory is the physical memory of one simulated machine.
type Memory struct {
	m     *topo.Machine
	next  Addr
	homes []homeRun // run-length home index, ascending by start
	pages map[Addr]*page

	// One-entry page cache: polling loops and payload copies hit the same
	// page repeatedly.
	cacheKey  Addr
	cachePage *page
}

// New returns an empty memory for machine m. Address 0 is never allocated so
// it can serve as a null value.
func New(m *topo.Machine) *Memory {
	return &Memory{
		m:        m,
		next:     LineSize, // keep line 0 unused
		pages:    make(map[Addr]*page),
		cacheKey: ^Addr(0),
	}
}

// Alloc reserves bytes of line-aligned memory homed on the given socket and
// returns the region. Allocations are rounded up to whole lines.
func (mem *Memory) Alloc(bytes int, home topo.SocketID) Region {
	if bytes <= 0 {
		panic("memory: allocation must be positive")
	}
	if int(home) < 0 || int(home) >= mem.m.NSockets {
		panic(fmt.Sprintf("memory: home socket %d out of range", home))
	}
	lines := (bytes + LineSize - 1) / LineSize
	r := Region{Base: mem.next, Bytes: uint64(lines * LineSize), Home: home}
	if n := len(mem.homes); n == 0 || mem.homes[n-1].home != home {
		mem.homes = append(mem.homes, homeRun{start: r.Base.Line(), home: home})
	}
	mem.next += Addr(lines * LineSize)
	return r
}

// AllocLines reserves n cache lines homed on the given socket.
func (mem *Memory) AllocLines(n int, home topo.SocketID) Region {
	return mem.Alloc(n*LineSize, home)
}

// Home returns the NUMA home socket of the line containing a. Unallocated
// addresses are homed on socket 0.
func (mem *Memory) Home(a Addr) topo.SocketID {
	if a >= mem.next || len(mem.homes) == 0 {
		return 0
	}
	l := a.Line()
	if l < mem.homes[0].start {
		return 0
	}
	// Find the last run starting at or before l.
	i := sort.Search(len(mem.homes), func(i int) bool { return mem.homes[i].start > l })
	return mem.homes[i-1].home
}

// pageFor returns the page containing a, creating it if create is set.
// It returns nil for an absent page when create is false.
func (mem *Memory) pageFor(a Addr, create bool) *page {
	key := a >> pageShift
	if key == mem.cacheKey {
		return mem.cachePage
	}
	pg := mem.pages[key]
	if pg == nil {
		if !create {
			return nil
		}
		pg = new(page)
		mem.pages[key] = pg
	}
	mem.cacheKey, mem.cachePage = key, pg
	return pg
}

// LoadWord returns the 64-bit word at a, which must be 8-byte aligned.
func (mem *Memory) LoadWord(a Addr) uint64 {
	if a%8 != 0 {
		panic(fmt.Sprintf("memory: misaligned load at %#x", uint64(a)))
	}
	pg := mem.pageFor(a, false)
	if pg == nil {
		return 0
	}
	return pg[(a%(1<<pageShift))/8]
}

// StoreWord writes the 64-bit word at a, which must be 8-byte aligned.
func (mem *Memory) StoreWord(a Addr, v uint64) {
	if a%8 != 0 {
		panic(fmt.Sprintf("memory: misaligned store at %#x", uint64(a)))
	}
	pg := mem.pageFor(a, v != 0)
	if pg == nil {
		return // storing zero into an untouched page is a no-op
	}
	pg[(a%(1<<pageShift))/8] = v
}

// LoadLine returns the 8 words of the line containing a.
func (mem *Memory) LoadLine(a Addr) [WordsPerLine]uint64 {
	base := a.Line().Base()
	var out [WordsPerLine]uint64
	pg := mem.pageFor(base, false)
	if pg == nil {
		return out
	}
	copy(out[:], pg[(base%(1<<pageShift))/8:])
	return out
}

// StoreLine writes the 8 words of the line containing a.
func (mem *Memory) StoreLine(a Addr, vals [WordsPerLine]uint64) {
	base := a.Line().Base()
	pg := mem.pageFor(base, true)
	copy(pg[(base%(1<<pageShift))/8:], vals[:])
}

// LoadBytes copies n bytes starting at a into a fresh slice. Byte access is
// implemented over the word store, so it interoperates with word writes.
func (mem *Memory) LoadBytes(a Addr, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		addr := a + Addr(i)
		var w uint64
		if pg := mem.pageFor(addr, false); pg != nil {
			w = pg[(addr%(1<<pageShift))/8]
		}
		out[i] = byte(w >> (8 * (addr & 7)))
	}
	return out
}

// StoreBytes writes b starting at address a.
func (mem *Memory) StoreBytes(a Addr, b []byte) {
	for i, c := range b {
		addr := a + Addr(i)
		pg := mem.pageFor(addr, true)
		w := &pg[(addr%(1<<pageShift))/8]
		shift := 8 * (addr & 7)
		*w = (*w &^ (uint64(0xff) << shift)) | uint64(c)<<shift
	}
}

// Size returns the total allocated bytes.
func (mem *Memory) Size() uint64 { return uint64(mem.next) - LineSize }

// CheckpointState serializes the allocator frontier, the home-run index and
// every backing page (sorted by page number), implementing sim.Checkpointer.
func (mem *Memory) CheckpointState(w io.Writer) error {
	if err := ckpt.WriteU64(w, uint64(mem.next), uint64(len(mem.homes))); err != nil {
		return err
	}
	for _, h := range mem.homes {
		if err := ckpt.WriteU64(w, uint64(h.start), uint64(h.home)); err != nil {
			return err
		}
	}
	keys := make([]Addr, 0, len(mem.pages))
	for k := range mem.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if err := ckpt.WriteU64(w, uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := ckpt.WriteU64(w, uint64(k)); err != nil {
			return err
		}
		if err := ckpt.WriteU64(w, mem.pages[k][:]...); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState replaces the memory's contents with a serialized image.
func (mem *Memory) RestoreState(r io.Reader) error {
	var next, nhomes uint64
	if err := ckpt.ReadU64(r, &next, &nhomes); err != nil {
		return err
	}
	homes := make([]homeRun, nhomes)
	for i := range homes {
		var start, home uint64
		if err := ckpt.ReadU64(r, &start, &home); err != nil {
			return err
		}
		homes[i] = homeRun{start: LineID(start), home: topo.SocketID(home)}
	}
	var npages uint64
	if err := ckpt.ReadU64(r, &npages); err != nil {
		return err
	}
	pages := make(map[Addr]*page, npages)
	for i := uint64(0); i < npages; i++ {
		var key uint64
		if err := ckpt.ReadU64(r, &key); err != nil {
			return err
		}
		pg := new(page)
		for j := range pg {
			if err := ckpt.ReadU64(r, &pg[j]); err != nil {
				return err
			}
		}
		pages[Addr(key)] = pg
	}
	mem.next = Addr(next)
	mem.homes = homes
	mem.pages = pages
	mem.cacheKey, mem.cachePage = ^Addr(0), nil
	return nil
}
