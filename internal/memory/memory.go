// Package memory models the simulated machine's physical memory: a sparse
// word-addressed store partitioned into 64-byte cache lines, each homed on a
// NUMA node (socket). Latency is not charged here — the cache model consults
// the machine's cost parameters — but data values and home-node placement
// are, so that messages really carry payloads and NUMA-aware allocation is a
// real placement decision.
package memory

import (
	"fmt"

	"multikernel/internal/topo"
)

// Addr is a simulated physical byte address. Word accesses must be 8-byte
// aligned.
type Addr uint64

// LineSize is the cache-line size in bytes.
const LineSize = 64

// WordsPerLine is the number of 64-bit words in a cache line.
const WordsPerLine = LineSize / 8

// LineID identifies a cache line (Addr / LineSize).
type LineID uint64

// Line returns the line containing a.
func (a Addr) Line() LineID { return LineID(a / LineSize) }

// LineBase returns the first address of line l.
func (l LineID) Base() Addr { return Addr(l) * LineSize }

// Region is an allocated range of physical memory.
type Region struct {
	Base  Addr
	Bytes uint64
	Home  topo.SocketID
}

// End returns one past the last byte of the region.
func (r Region) End() Addr { return r.Base + Addr(r.Bytes) }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() int { return int(r.Bytes / LineSize) }

// LineAt returns the base address of the i'th line of the region.
func (r Region) LineAt(i int) Addr { return r.Base + Addr(i*LineSize) }

// Memory is the physical memory of one simulated machine.
type Memory struct {
	m     *topo.Machine
	next  Addr
	homes map[LineID]topo.SocketID
	words map[Addr]uint64
}

// New returns an empty memory for machine m. Address 0 is never allocated so
// it can serve as a null value.
func New(m *topo.Machine) *Memory {
	return &Memory{
		m:     m,
		next:  LineSize, // keep line 0 unused
		homes: make(map[LineID]topo.SocketID),
		words: make(map[Addr]uint64),
	}
}

// Alloc reserves bytes of line-aligned memory homed on the given socket and
// returns the region. Allocations are rounded up to whole lines.
func (mem *Memory) Alloc(bytes int, home topo.SocketID) Region {
	if bytes <= 0 {
		panic("memory: allocation must be positive")
	}
	if int(home) < 0 || int(home) >= mem.m.NSockets {
		panic(fmt.Sprintf("memory: home socket %d out of range", home))
	}
	lines := (bytes + LineSize - 1) / LineSize
	r := Region{Base: mem.next, Bytes: uint64(lines * LineSize), Home: home}
	for i := 0; i < lines; i++ {
		mem.homes[r.LineAt(i).Line()] = home
	}
	mem.next += Addr(lines * LineSize)
	return r
}

// AllocLines reserves n cache lines homed on the given socket.
func (mem *Memory) AllocLines(n int, home topo.SocketID) Region {
	return mem.Alloc(n*LineSize, home)
}

// Home returns the NUMA home socket of the line containing a. Unallocated
// addresses are homed on socket 0.
func (mem *Memory) Home(a Addr) topo.SocketID {
	return mem.homes[a.Line()]
}

// LoadWord returns the 64-bit word at a, which must be 8-byte aligned.
func (mem *Memory) LoadWord(a Addr) uint64 {
	if a%8 != 0 {
		panic(fmt.Sprintf("memory: misaligned load at %#x", uint64(a)))
	}
	return mem.words[a]
}

// StoreWord writes the 64-bit word at a, which must be 8-byte aligned.
func (mem *Memory) StoreWord(a Addr, v uint64) {
	if a%8 != 0 {
		panic(fmt.Sprintf("memory: misaligned store at %#x", uint64(a)))
	}
	if v == 0 {
		delete(mem.words, a)
		return
	}
	mem.words[a] = v
}

// LoadLine returns the 8 words of the line containing a.
func (mem *Memory) LoadLine(a Addr) [WordsPerLine]uint64 {
	base := a.Line().Base()
	var out [WordsPerLine]uint64
	for i := range out {
		out[i] = mem.words[base+Addr(i*8)]
	}
	return out
}

// StoreLine writes the 8 words of the line containing a.
func (mem *Memory) StoreLine(a Addr, vals [WordsPerLine]uint64) {
	base := a.Line().Base()
	for i, v := range vals {
		mem.StoreWord(base+Addr(i*8), v)
	}
}

// LoadBytes copies n bytes starting at a into a fresh slice. Byte access is
// implemented over the word store, so it interoperates with word writes.
func (mem *Memory) LoadBytes(a Addr, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		addr := a + Addr(i)
		w := mem.words[addr&^7]
		out[i] = byte(w >> (8 * (addr & 7)))
	}
	return out
}

// StoreBytes writes b starting at address a.
func (mem *Memory) StoreBytes(a Addr, b []byte) {
	for i, c := range b {
		addr := a + Addr(i)
		wa := addr &^ 7
		shift := 8 * (addr & 7)
		w := mem.words[wa]
		w = (w &^ (uint64(0xff) << shift)) | uint64(c)<<shift
		mem.StoreWord(wa, w)
	}
}

// Size returns the total allocated bytes.
func (mem *Memory) Size() uint64 { return uint64(mem.next) - LineSize }
