package memory

import (
	"bytes"
	"testing"
	"testing/quick"

	"multikernel/internal/topo"
)

func TestAllocAlignmentAndHomes(t *testing.T) {
	mem := New(topo.AMD4x4())
	r1 := mem.Alloc(100, 2) // rounds to 2 lines
	if r1.Bytes != 128 {
		t.Fatalf("bytes=%d, want 128", r1.Bytes)
	}
	if r1.Base%LineSize != 0 {
		t.Fatalf("base %#x not line aligned", uint64(r1.Base))
	}
	if mem.Home(r1.Base) != 2 || mem.Home(r1.Base+64) != 2 {
		t.Fatal("home socket not recorded for all lines")
	}
	r2 := mem.Alloc(64, 1)
	if r2.Base < r1.End() {
		t.Fatal("regions overlap")
	}
	if mem.Home(r2.Base) != 1 {
		t.Fatal("second region home wrong")
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(topo.AMD2x2()).Alloc(0, 0)
}

func TestAllocBadHomePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(topo.AMD2x2()).Alloc(64, 5)
}

func TestWordRoundTrip(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(1, 0)
	mem.StoreWord(r.Base+8, 0xdeadbeef)
	if got := mem.LoadWord(r.Base + 8); got != 0xdeadbeef {
		t.Fatalf("got %#x", got)
	}
	if got := mem.LoadWord(r.Base); got != 0 {
		t.Fatalf("unwritten word = %#x, want 0", got)
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mem.LoadWord(r.Base + 3)
}

func TestLineRoundTrip(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(1, 0)
	var vals [WordsPerLine]uint64
	for i := range vals {
		vals[i] = uint64(i * 7)
	}
	mem.StoreLine(r.Base, vals)
	if got := mem.LoadLine(r.Base); got != vals {
		t.Fatalf("got %v, want %v", got, vals)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(4, 1)
	msg := []byte("the multikernel treats the machine as a network")
	mem.StoreBytes(r.Base+5, msg) // deliberately unaligned
	if got := mem.LoadBytes(r.Base+5, len(msg)); !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestBytesWordInterop(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(1, 0)
	mem.StoreWord(r.Base, 0x0807060504030201)
	got := mem.LoadBytes(r.Base, 8)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v, want %v (little-endian view)", got, want)
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	mem := New(topo.AMD4x4())
	r := mem.AllocLines(64, 0)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 || len(data) > 1024 {
			return true
		}
		a := r.Base + Addr(off%1024)
		mem.StoreBytes(a, data)
		return bytes.Equal(mem.LoadBytes(a, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLineIDMath(t *testing.T) {
	a := Addr(3 * LineSize)
	if a.Line() != 3 {
		t.Fatalf("line=%d", a.Line())
	}
	if a.Line().Base() != a {
		t.Fatal("base round trip failed")
	}
	if (a+63).Line() != 3 || (a+64).Line() != 4 {
		t.Fatal("line boundary math wrong")
	}
}

func TestRegionHelpers(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(3, 1)
	if r.Lines() != 3 {
		t.Fatalf("lines=%d", r.Lines())
	}
	if r.LineAt(2) != r.Base+128 {
		t.Fatal("LineAt wrong")
	}
	if r.End() != r.Base+192 {
		t.Fatal("End wrong")
	}
	if mem.Size() != 192 {
		t.Fatalf("size=%d", mem.Size())
	}
}
