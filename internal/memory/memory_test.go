package memory

import (
	"bytes"
	"testing"
	"testing/quick"

	"multikernel/internal/topo"
)

func TestAllocAlignmentAndHomes(t *testing.T) {
	mem := New(topo.AMD4x4())
	r1 := mem.Alloc(100, 2) // rounds to 2 lines
	if r1.Bytes != 128 {
		t.Fatalf("bytes=%d, want 128", r1.Bytes)
	}
	if r1.Base%LineSize != 0 {
		t.Fatalf("base %#x not line aligned", uint64(r1.Base))
	}
	if mem.Home(r1.Base) != 2 || mem.Home(r1.Base+64) != 2 {
		t.Fatal("home socket not recorded for all lines")
	}
	r2 := mem.Alloc(64, 1)
	if r2.Base < r1.End() {
		t.Fatal("regions overlap")
	}
	if mem.Home(r2.Base) != 1 {
		t.Fatal("second region home wrong")
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(topo.AMD2x2()).Alloc(0, 0)
}

func TestAllocBadHomePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(topo.AMD2x2()).Alloc(64, 5)
}

func TestWordRoundTrip(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(1, 0)
	mem.StoreWord(r.Base+8, 0xdeadbeef)
	if got := mem.LoadWord(r.Base + 8); got != 0xdeadbeef {
		t.Fatalf("got %#x", got)
	}
	if got := mem.LoadWord(r.Base); got != 0 {
		t.Fatalf("unwritten word = %#x, want 0", got)
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mem.LoadWord(r.Base + 3)
}

func TestLineRoundTrip(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(1, 0)
	var vals [WordsPerLine]uint64
	for i := range vals {
		vals[i] = uint64(i * 7)
	}
	mem.StoreLine(r.Base, vals)
	if got := mem.LoadLine(r.Base); got != vals {
		t.Fatalf("got %v, want %v", got, vals)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(4, 1)
	msg := []byte("the multikernel treats the machine as a network")
	mem.StoreBytes(r.Base+5, msg) // deliberately unaligned
	if got := mem.LoadBytes(r.Base+5, len(msg)); !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestBytesWordInterop(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(1, 0)
	mem.StoreWord(r.Base, 0x0807060504030201)
	got := mem.LoadBytes(r.Base, 8)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v, want %v (little-endian view)", got, want)
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	mem := New(topo.AMD4x4())
	r := mem.AllocLines(64, 0)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 || len(data) > 1024 {
			return true
		}
		a := r.Base + Addr(off%1024)
		mem.StoreBytes(a, data)
		return bytes.Equal(mem.LoadBytes(a, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLineIDMath(t *testing.T) {
	a := Addr(3 * LineSize)
	if a.Line() != 3 {
		t.Fatalf("line=%d", a.Line())
	}
	if a.Line().Base() != a {
		t.Fatal("base round trip failed")
	}
	if (a+63).Line() != 3 || (a+64).Line() != 4 {
		t.Fatal("line boundary math wrong")
	}
}

func TestHomeRunIndex(t *testing.T) {
	mem := New(topo.AMD4x4())
	// Consecutive same-home allocations merge into one run; home changes
	// start new runs.
	r0 := mem.Alloc(4096, 0)
	r1 := mem.Alloc(4096, 0)
	r2 := mem.Alloc(4096, 3)
	r3 := mem.Alloc(64, 1)
	for _, tc := range []struct {
		a    Addr
		want topo.SocketID
	}{
		{r0.Base, 0}, {r0.End() - 1, 0},
		{r1.Base, 0}, {r1.End() - 1, 0},
		{r2.Base, 3}, {r2.Base + 2048, 3}, {r2.End() - 1, 3},
		{r3.Base, 1},
	} {
		if got := mem.Home(tc.a); got != tc.want {
			t.Errorf("Home(%#x) = %d, want %d", uint64(tc.a), got, tc.want)
		}
	}
	// Line 0 is never allocated; addresses past the bump pointer are
	// unallocated. Both are homed on socket 0 by convention.
	if mem.Home(0) != 0 {
		t.Error("null line not homed on 0")
	}
	if mem.Home(1<<30) != 0 {
		t.Error("unallocated high address not homed on 0")
	}
}

func TestStoreToUnallocatedAddress(t *testing.T) {
	// Models (e.g. benchmark scratch regions) store to addresses never
	// handed out by Alloc; the paged store must handle them.
	mem := New(topo.AMD2x2())
	a := Addr(1 << 30)
	mem.StoreWord(a, 99)
	if mem.LoadWord(a) != 99 {
		t.Fatal("high-address store lost")
	}
	// Storing zero into an untouched page must not materialize the page.
	pages := len(mem.pages)
	mem.StoreWord(1<<40, 0)
	if len(mem.pages) != pages {
		t.Fatal("zero store materialized a page")
	}
	if mem.LoadWord(1<<40) != 0 {
		t.Fatal("untouched word not zero")
	}
}

func TestBytesAcrossPageBoundary(t *testing.T) {
	mem := New(topo.AMD2x2())
	a := Addr(1<<pageShift) - 7 // straddles the first page boundary
	msg := []byte("boundary-crossing payload")
	mem.StoreBytes(a, msg)
	if got := mem.LoadBytes(a, len(msg)); !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestRegionHelpers(t *testing.T) {
	mem := New(topo.AMD2x2())
	r := mem.AllocLines(3, 1)
	if r.Lines() != 3 {
		t.Fatalf("lines=%d", r.Lines())
	}
	if r.LineAt(2) != r.Base+128 {
		t.Fatal("LineAt wrong")
	}
	if r.End() != r.Base+192 {
		t.Fatal("End wrong")
	}
	if mem.Size() != 192 {
		t.Fatalf("size=%d", mem.Size())
	}
}
