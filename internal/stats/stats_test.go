package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMeanStddev(t *testing.T) {
	var s Sample
	s.AddN(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean=%v, want 5", got)
	}
	// Sample stddev with n-1 denominator: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := s.Stddev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev=%v, want %v", got, want)
	}
}

func TestEmptySampleIsZero(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSingleObservationStddevZero(t *testing.T) {
	var s Sample
	s.Add(42)
	if s.Stddev() != 0 {
		t.Fatal("stddev of single observation must be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	var s Sample
	s.AddN(3, -1, 7, 0)
	if s.Min() != -1 || s.Max() != 7 || s.Sum() != 9 {
		t.Fatalf("min=%v max=%v sum=%v", s.Min(), s.Max(), s.Sum())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0=%v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100=%v", got)
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50=%v, want 50.5", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
			s.Add(v)
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesYAt(t *testing.T) {
	s := &Series{Name: "a"}
	s.Add(1, 10)
	s.Add(2, 20)
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Fatalf("YAt(2)=%v,%v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Fatal("YAt(3) should be absent")
	}
}

func TestFigureAddAndGet(t *testing.T) {
	f := &Figure{Title: "t"}
	a := f.AddSeries("alpha")
	a.Add(1, 1)
	if f.Get("alpha") != a {
		t.Fatal("Get did not return the added series")
	}
	if f.Get("missing") != nil {
		t.Fatal("Get of missing series should be nil")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"sys", "cycles"}}
	tb.AddRow("2x4-core Intel", "845")
	tb.AddRow("8x4 AMD", "1549")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "sys") || !strings.Contains(lines[1], "cycles") {
		t.Fatalf("header line wrong: %q", lines[1])
	}
	// All data lines should be at least as wide as the widest cell column.
	if len(lines[3]) < len("2x4-core Intel") {
		t.Fatalf("row not padded: %q", lines[3])
	}
}

func TestRenderFigureListsAllXs(t *testing.T) {
	f := &Figure{Title: "fig", XLabel: "cores", YLabel: "cycles"}
	a := f.AddSeries("A")
	a.Add(2, 100)
	a.Add(4, 200)
	b := f.AddSeries("B")
	b.Add(4, 150)
	b.Add(8, 300)
	out := RenderFigure(f, 0, 0)
	for _, want := range []string{"cores", "A", "B", "2", "4", "8", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigureASCIIPlot(t *testing.T) {
	f := &Figure{Title: "fig", XLabel: "x", YLabel: "y"}
	s := f.AddSeries("S")
	for i := 1; i <= 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := RenderFigure(f, 40, 10)
	if !strings.Contains(out, "legend:") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("plot missing marks:\n%s", out)
	}
}

func TestAllXsSortedUnique(t *testing.T) {
	f := &Figure{}
	a := f.AddSeries("a")
	a.Add(3, 1)
	a.Add(1, 1)
	b := f.AddSeries("b")
	b.Add(3, 2)
	b.Add(2, 2)
	xs := allXs(f)
	if !sort.Float64sAreSorted(xs) {
		t.Fatalf("xs not sorted: %v", xs)
	}
	if len(xs) != 3 {
		t.Fatalf("xs not deduplicated: %v", xs)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(5) != "5" {
		t.Fatalf("trimFloat(5)=%q", trimFloat(5))
	}
	if trimFloat(5.25) != "5.25" {
		t.Fatalf("trimFloat(5.25)=%q", trimFloat(5.25))
	}
}
