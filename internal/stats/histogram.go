package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is the fixed bucket count of Histogram: bucket b holds values
// of bit length b (i.e. in [2^(b-1), 2^b-1]), so 48 buckets cover any
// realistic cycle latency with no per-observation allocation or rescaling.
const histBuckets = 48

// Histogram is a fixed-bucket log2 histogram of cycle latencies. Observe is
// a few array/scalar updates — cheap enough for coherence-miss and
// message-latency hot paths — and two histograms merge bucket-by-bucket, so
// parallel experiment runs fold deterministically.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    uint64
	max    uint64
}

// bucketOf returns the bucket index of v (its bit length, clamped).
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLe returns the inclusive upper bound of bucket b.
func bucketLe(b int) uint64 {
	if b == 0 {
		return 0
	}
	return 1<<uint(b) - 1
}

// NumBuckets is the fixed bucket count of every Histogram — exported for
// samplers that ship raw bucket deltas and reassemble summaries remotely.
const NumBuckets = histBuckets

// BucketUpperBound returns the inclusive upper bound of bucket b, the Le
// value a HistogramSummary reports for it.
func BucketUpperBound(b int) uint64 { return bucketLe(b) }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Raw returns the histogram's complete internal state — bucket counts,
// observation count, sum and max — for checkpoint serialization.
func (h *Histogram) Raw() (counts []uint64, n, sum, max uint64) {
	return h.counts[:], h.n, h.sum, h.max
}

// SetRaw restores state previously obtained from Raw. counts longer than the
// bucket array is an error from a newer format; shorter is zero-padded.
func (h *Histogram) SetRaw(counts []uint64, n, sum, max uint64) {
	h.counts = [histBuckets]uint64{}
	copy(h.counts[:], counts)
	h.n, h.sum, h.max = n, sum, max
}

// HistBucket is one non-empty bucket of a summary: Count observations were
// ≤ Le (and greater than the previous bucket's Le).
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSummary is the JSON-stable snapshot of a Histogram. Buckets is an
// ordered slice (not a map) so encoded output is deterministic.
type HistogramSummary struct {
	N       uint64       `json:"n"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Summary snapshots the histogram.
func (h *Histogram) Summary() HistogramSummary {
	s := HistogramSummary{N: h.n, Sum: h.sum, Max: h.max}
	for b, c := range h.counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: bucketLe(b), Count: c})
		}
	}
	return s
}

// Merge folds o into s, aligning buckets by upper bound (both sides come
// from the same log2 bucketing, so bounds either match or interleave).
func (s *HistogramSummary) Merge(o HistogramSummary) {
	s.N += o.N
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	merged := make([]HistBucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Le < o.Buckets[j].Le):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Le < s.Buckets[i].Le:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{Le: s.Buckets[i].Le, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}

// DeltaSummary builds the summary of a sampling window from two raw bucket
// snapshots of the same histogram: cur was taken at the window's end, prev at
// its start (nil or shorter slices are treated as zero — the first window of
// a fresh cursor). n and sum are the window's observation-count and value-sum
// deltas. Because the true per-window maximum is not recoverable from
// monotone state, Max is the upper bound of the highest bucket the window
// touched — the same resolution the quantiles have.
func DeltaSummary(cur, prev []uint64, n, sum uint64) HistogramSummary {
	s := HistogramSummary{N: n, Sum: sum}
	for b, c := range cur {
		var p uint64
		if b < len(prev) {
			p = prev[b]
		}
		if d := c - p; d > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: bucketLe(b), Count: d})
			s.Max = bucketLe(b)
		}
	}
	return s
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the Le bound of the bucket holding the ceil(q*N)-th smallest observation.
// Empty summaries report 0. The estimate is exact to within one log2 bucket,
// which is the histogram's resolution everywhere.
func (s HistogramSummary) Quantile(q float64) uint64 {
	if s.N == 0 {
		return 0
	}
	rank := uint64(q * float64(s.N))
	if float64(rank) < q*float64(s.N) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Le
		}
	}
	return s.Max
}

// Mean returns the summary's arithmetic mean, or 0 when empty.
func (s HistogramSummary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Render returns the summary as an aligned text bar chart, one row per
// non-empty bucket.
func (s HistogramSummary) Render() string {
	if s.N == 0 {
		return "(empty)\n"
	}
	var peak uint64
	for _, b := range s.Buckets {
		if b.Count > peak {
			peak = b.Count
		}
	}
	var out strings.Builder
	for _, b := range s.Buckets {
		bar := int(b.Count * 40 / peak)
		fmt.Fprintf(&out, "  ≤%-12d %8d %s\n", b.Le, b.Count, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&out, "  n=%d mean=%.1f max=%d\n", s.N, s.Mean(), s.Max)
	return out.String()
}
