package stats

import (
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000, 1 << 40} {
		h.Observe(v)
	}
	if h.N() != 7 || h.Max() != 1<<40 {
		t.Fatalf("n=%d max=%d", h.N(), h.Max())
	}
	if h.Sum() != 0+1+2+3+4+1000+1<<40 {
		t.Fatalf("sum=%d", h.Sum())
	}
	s := h.Summary()
	// Log2 buckets: 0 → ≤0, 1 → ≤1, 2..3 → ≤3, 4 → ≤7, 1000 → ≤1023.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1, 1<<41 - 1: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets: %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket ≤%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
	// Buckets are ordered ascending (JSON determinism).
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Le <= s.Buckets[i-1].Le {
			t.Fatalf("buckets unsorted: %+v", s.Buckets)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
	h.Observe(10)
	h.Observe(20)
	if h.Mean() != 15 {
		t.Fatalf("mean=%v", h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(5)
	a.Observe(100)
	b.Observe(7)
	b.Observe(9000)
	a.Merge(&b)
	if a.N() != 4 || a.Sum() != 5+100+7+9000 || a.Max() != 9000 {
		t.Fatalf("merged: n=%d sum=%d max=%d", a.N(), a.Sum(), a.Max())
	}
	// 5 and 7 share the ≤7 bucket after merging.
	for _, bk := range a.Summary().Buckets {
		if bk.Le == 7 && bk.Count != 2 {
			t.Fatalf("≤7 bucket count=%d, want 2", bk.Count)
		}
	}
}

func TestSummaryMergeMatchesHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := uint64(1); i < 200; i += 3 {
		a.Observe(i * i)
	}
	for i := uint64(2); i < 300; i += 7 {
		b.Observe(i * 5)
	}
	sa, sb := a.Summary(), b.Summary()
	sa.Merge(sb)
	a.Merge(&b)
	direct := a.Summary()
	if sa.N != direct.N || sa.Sum != direct.Sum || sa.Max != direct.Max || len(sa.Buckets) != len(direct.Buckets) {
		t.Fatalf("summary merge diverged from histogram merge:\n%+v\n%+v", sa, direct)
	}
	for i := range sa.Buckets {
		if sa.Buckets[i] != direct.Buckets[i] {
			t.Fatalf("bucket %d: %+v vs %+v", i, sa.Buckets[i], direct.Buckets[i])
		}
	}
}

// TestMergeMatchesCombinedStream is the mergeability contract behind every
// parallel fold in the repository: merge(a, b) must be indistinguishable —
// bucket counts, moments, and therefore every quantile — from observing both
// streams into a single histogram.
func TestMergeMatchesCombinedStream(t *testing.T) {
	var a, b, combined Histogram
	seedA := []uint64{0, 1, 3, 9, 81, 6561, 1 << 20, 1<<46 + 5}
	seedB := []uint64{2, 2, 2, 500, 500, 1 << 33}
	for i := uint64(0); i < 400; i++ {
		v := seedA[i%uint64(len(seedA))] + i*i
		a.Observe(v)
		combined.Observe(v)
	}
	for i := uint64(0); i < 300; i++ {
		v := seedB[i%uint64(len(seedB))] * (i + 1)
		b.Observe(v)
		combined.Observe(v)
	}
	a.Merge(&b)
	ac, an, asum, amax := a.Raw()
	cc, cn, csum, cmax := combined.Raw()
	if an != cn || asum != csum || amax != cmax {
		t.Fatalf("moments diverged: n %d/%d sum %d/%d max %d/%d", an, cn, asum, csum, amax, cmax)
	}
	for i := range ac {
		if ac[i] != cc[i] {
			t.Fatalf("bucket %d: merged %d, combined %d", i, ac[i], cc[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := a.Summary().Quantile(q), combined.Summary().Quantile(q); got != want {
			t.Fatalf("q%.3f: merged %d, combined %d", q, got, want)
		}
	}
}

// TestMergeEmptyAndOverflow pins the edge cases: merging with an empty
// histogram is the identity in both directions, and values at or beyond the
// top bucket's range clamp into the overflow bucket on both sides of a merge.
func TestMergeEmptyAndOverflow(t *testing.T) {
	var empty, h Histogram
	h.Observe(42)
	h.Merge(&empty)
	if h.N() != 1 || h.Sum() != 42 || h.Max() != 42 {
		t.Fatalf("merge with empty changed state: n=%d sum=%d max=%d", h.N(), h.Sum(), h.Max())
	}
	empty.Merge(&h)
	if empty.N() != 1 || empty.Summary().Quantile(1) != h.Summary().Quantile(1) {
		t.Fatalf("empty.Merge(h) != h: %+v", empty.Summary())
	}
	var e2 Histogram
	if s := e2.Summary(); s.N != 0 || len(s.Buckets) != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("empty summary not empty: %+v", s)
	}

	// ^uint64(0) has bit length 64 and 1<<47 has bit length 48: both clamp
	// into the top (overflow) bucket, whose Le is the clamped bound — merges
	// must keep them there rather than inventing new buckets.
	var x, y Histogram
	x.Observe(1 << 47)
	y.Observe(^uint64(0))
	x.Merge(&y)
	s := x.Summary()
	if len(s.Buckets) != 1 {
		t.Fatalf("overflow values split buckets: %+v", s.Buckets)
	}
	if want := BucketUpperBound(NumBuckets - 1); s.Buckets[0].Le != want || s.Buckets[0].Count != 2 {
		t.Fatalf("overflow bucket: got ≤%d count=%d, want ≤%d count=2", s.Buckets[0].Le, s.Buckets[0].Count, want)
	}
	if s.Max != ^uint64(0) {
		t.Fatalf("max lost in overflow merge: %d", s.Max)
	}
}

// TestDeltaSummary drives the windowed-delta path the observability samplers
// use: raw snapshots before and after a burst of observations must reduce to
// exactly the burst's summary, empty windows must come out empty, and the
// overflow bucket must survive the round trip.
func TestDeltaSummary(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(1000)
	prevCounts, prevN, prevSum, _ := h.Raw()
	prev := append([]uint64(nil), prevCounts...)

	var window Histogram
	for _, v := range []uint64{3, 70, 70, 1 << 50} {
		h.Observe(v)
		window.Observe(v)
	}
	curCounts, curN, curSum, _ := h.Raw()
	d := DeltaSummary(curCounts, prev, curN-prevN, curSum-prevSum)
	want := window.Summary()
	if d.N != want.N || d.Sum != want.Sum || len(d.Buckets) != len(want.Buckets) {
		t.Fatalf("delta %+v, want %+v", d, want)
	}
	for i := range d.Buckets {
		if d.Buckets[i] != want.Buckets[i] {
			t.Fatalf("delta bucket %d: %+v vs %+v", i, d.Buckets[i], want.Buckets[i])
		}
	}
	// Max degrades to bucket resolution: the overflow bound, not 1<<50.
	if d.Max != BucketUpperBound(NumBuckets-1) {
		t.Fatalf("delta max=%d, want overflow bound", d.Max)
	}
	for _, q := range []float64{0.5, 0.99} {
		if d.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q%.2f: delta %d, window %d", q, d.Quantile(q), want.Quantile(q))
		}
	}

	// An idle window: identical snapshots, zero deltas.
	empty := DeltaSummary(curCounts, curCounts, 0, 0)
	if empty.N != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("idle window not empty: %+v", empty)
	}
	// A fresh cursor: nil prev means the whole histogram is the first window.
	first := DeltaSummary(curCounts, nil, curN, curSum)
	if first.N != h.N() || len(first.Buckets) == 0 {
		t.Fatalf("first window: %+v", first)
	}
}

func TestSummaryQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket ≤127
	}
	h.Observe(100_000) // bucket ≤131071
	s := h.Summary()
	if got := s.Quantile(0.5); got != 127 {
		t.Fatalf("p50=%d, want 127", got)
	}
	if got := s.Quantile(0.99); got != 127 {
		t.Fatalf("p99=%d, want 127 (99th of 100 obs)", got)
	}
	if got := s.Quantile(0.999); got != 131071 {
		t.Fatalf("p999=%d, want 131071", got)
	}
	if got := s.Quantile(1); got != 131071 {
		t.Fatalf("p100=%d, want 131071", got)
	}
}

func TestSummaryRender(t *testing.T) {
	var h Histogram
	if got := h.Summary().Render(); got != "(empty)\n" {
		t.Fatalf("empty render: %q", got)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	h.Observe(100000)
	out := h.Summary().Render()
	if !strings.Contains(out, "≤127") || !strings.Contains(out, "n=11") {
		t.Fatalf("render missing fields:\n%s", out)
	}
	if !strings.Contains(out, "########") {
		t.Fatalf("render missing bar:\n%s", out)
	}
}
