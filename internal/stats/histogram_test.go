package stats

import (
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000, 1 << 40} {
		h.Observe(v)
	}
	if h.N() != 7 || h.Max() != 1<<40 {
		t.Fatalf("n=%d max=%d", h.N(), h.Max())
	}
	if h.Sum() != 0+1+2+3+4+1000+1<<40 {
		t.Fatalf("sum=%d", h.Sum())
	}
	s := h.Summary()
	// Log2 buckets: 0 → ≤0, 1 → ≤1, 2..3 → ≤3, 4 → ≤7, 1000 → ≤1023.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1, 1<<41 - 1: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets: %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket ≤%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
	// Buckets are ordered ascending (JSON determinism).
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Le <= s.Buckets[i-1].Le {
			t.Fatalf("buckets unsorted: %+v", s.Buckets)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
	h.Observe(10)
	h.Observe(20)
	if h.Mean() != 15 {
		t.Fatalf("mean=%v", h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(5)
	a.Observe(100)
	b.Observe(7)
	b.Observe(9000)
	a.Merge(&b)
	if a.N() != 4 || a.Sum() != 5+100+7+9000 || a.Max() != 9000 {
		t.Fatalf("merged: n=%d sum=%d max=%d", a.N(), a.Sum(), a.Max())
	}
	// 5 and 7 share the ≤7 bucket after merging.
	for _, bk := range a.Summary().Buckets {
		if bk.Le == 7 && bk.Count != 2 {
			t.Fatalf("≤7 bucket count=%d, want 2", bk.Count)
		}
	}
}

func TestSummaryMergeMatchesHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := uint64(1); i < 200; i += 3 {
		a.Observe(i * i)
	}
	for i := uint64(2); i < 300; i += 7 {
		b.Observe(i * 5)
	}
	sa, sb := a.Summary(), b.Summary()
	sa.Merge(sb)
	a.Merge(&b)
	direct := a.Summary()
	if sa.N != direct.N || sa.Sum != direct.Sum || sa.Max != direct.Max || len(sa.Buckets) != len(direct.Buckets) {
		t.Fatalf("summary merge diverged from histogram merge:\n%+v\n%+v", sa, direct)
	}
	for i := range sa.Buckets {
		if sa.Buckets[i] != direct.Buckets[i] {
			t.Fatalf("bucket %d: %+v vs %+v", i, sa.Buckets[i], direct.Buckets[i])
		}
	}
}

func TestSummaryRender(t *testing.T) {
	var h Histogram
	if got := h.Summary().Render(); got != "(empty)\n" {
		t.Fatalf("empty render: %q", got)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	h.Observe(100000)
	out := h.Summary().Render()
	if !strings.Contains(out, "≤127") || !strings.Contains(out, "n=11") {
		t.Fatalf("render missing fields:\n%s", out)
	}
	if !strings.Contains(out, "########") {
		t.Fatalf("render missing bar:\n%s", out)
	}
}
