// Package stats provides the small statistical and rendering toolkit used by
// the benchmark harness: sample accumulation (mean, standard deviation,
// percentiles), named data series, and plain-text table / ASCII-figure
// rendering in the style of the paper's tables and plots.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations of a scalar quantity.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = false
}

// AddN appends several observations.
func (s *Sample) AddN(vs ...float64) {
	s.xs = append(s.xs, vs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the sample standard deviation (n-1 denominator), or 0 for
// samples of size < 2.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, v := range s.xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, v := range s.xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Values returns the observations in insertion order. Calling Percentile
// reorders them; take a copy if both are needed.
func (s *Sample) Values() []float64 { return s.xs }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	var sum float64
	for _, v := range s.xs {
		sum += v
	}
	return sum
}

// Point is one (x, y) observation in a Series.
type Point struct {
	X float64
	Y float64
	// Err is an optional error-bar half-height (e.g. standard deviation).
	Err float64
}

// Series is a named sequence of points, one line on a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// AddErr appends a point with an error bar.
func (s *Series) AddErr(x, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}

// YAt returns the Y value at the given X, or (0, false) if absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a set of series plus axis labels — the data behind one of the
// paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries creates, attaches and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Table is a plain rows-and-columns result, like the paper's tables.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the table formatted as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderFigure renders a figure as a column-per-series text listing followed
// by a coarse ASCII plot, enough to eyeball curve shapes in a terminal.
func RenderFigure(f *Figure, plotWidth, plotHeight int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)

	// Tabular listing.
	tab := Table{Columns: append([]string{f.XLabel}, seriesNames(f)...)}
	for _, x := range allXs(f) {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "-")
			}
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.Render())

	if plotWidth > 0 && plotHeight > 0 {
		b.WriteString(asciiPlot(f, plotWidth, plotHeight))
	}
	return b.String()
}

func seriesNames(f *Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Name
	}
	return out
}

func allXs(f *Figure) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

func asciiPlot(f *Figure, w, h int) string {
	var xmin, xmax, ymax float64
	first := true
	for _, s := range f.Series {
		for _, p := range s.Points {
			if first {
				xmin, xmax = p.X, p.X
				first = false
			}
			if p.X < xmin {
				xmin = p.X
			}
			if p.X > xmax {
				xmax = p.X
			}
			if p.Y > ymax {
				ymax = p.Y
			}
		}
	}
	if first || xmax == xmin || ymax == 0 {
		return ""
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	marks := []byte("*+xo#@%&")
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for _, p := range s.Points {
			cx := int(float64(w-1) * (p.X - xmin) / (xmax - xmin))
			cy := h - 1 - int(float64(h-1)*p.Y/ymax)
			if cy >= 0 && cy < h && cx >= 0 && cx < w {
				grid[cy][cx] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\n%s (max %s)\n", f.YLabel, trimFloat(ymax))
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&b, " %s: %s .. %s   legend:", f.XLabel, trimFloat(xmin), trimFloat(xmax))
	for si, s := range f.Series {
		fmt.Fprintf(&b, " %c=%s", marks[si%len(marks)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}
