package monitor

import (
	"fmt"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// This file implements core power management (§3.3, §4.4): a core can be
// taken offline to save power and brought back later. The set of online
// cores is itself replicated OS state: every monitor holds its own view,
// and changes are disseminated with the same order-insensitive one-phase
// protocol as TLB shootdown, so subsequent coordinated operations (unmap,
// retype) simply stop — or resume — including the affected core. Multicast
// trees are recomputed from each monitor's view, demonstrating the paper's
// claim that replication "supports changes to the set of running cores".

// coreDownParkCost models entering the core sleep state (MONITOR/MWAIT or
// waiting for an IPI, §4.4).
const coreDownParkCost = 2000

// onlineView returns the cores this monitor currently believes are online.
func (m *Monitor) onlineView() []topo.CoreID {
	var out []topo.CoreID
	for c, up := range m.view {
		if up {
			out = append(out, topo.CoreID(c))
		}
	}
	return out
}

// Online reports monitor m's replicated view of whether core c is online.
func (m *Monitor) Online(c topo.CoreID) bool { return m.view[c] }

// applyCoreChange updates this monitor's replica of the online set.
func (m *Monitor) applyCoreChange(op Op) {
	target := topo.CoreID(op.Bytes)
	m.view[target] = op.Kind == OpCoreUp
	if target == m.Core && op.Kind == OpCoreDown {
		m.down = true
	}
}

// PowerOff takes victim offline: the initiating monitor disseminates the
// membership change to every online core (victim included, so it learns to
// halt), after which no coordinated operation targets the victim and its
// monitor sleeps until PowerOn. Powering off the initiator itself or the
// last online core is refused.
func (n *Network) PowerOff(p *sim.Proc, initiator, victim topo.CoreID) error {
	mon := n.Monitor(initiator)
	if victim == initiator {
		return fmt.Errorf("monitor: core %d cannot power itself off through itself", victim)
	}
	if !mon.view[victim] {
		return fmt.Errorf("monitor: core %d is already offline", victim)
	}
	online := 0
	for _, up := range mon.view {
		if up {
			online++
		}
	}
	if online <= 1 {
		return fmt.Errorf("monitor: cannot power off the last online core")
	}
	op := Op{Kind: OpCoreDown, ID: mon.nextOpID(), Origin: initiator, Bytes: uint64(victim)}
	mon.finishCall(p, mon.submit(p, &localReq{op: op, protocol: NUMAAware}))
	return nil
}

// PowerOn brings victim back online: the initiator raises an IPI to wake the
// core (the INIT/SIPI analogue), then disseminates the membership change so
// every monitor's replica includes it again.
func (n *Network) PowerOn(p *sim.Proc, initiator, victim topo.CoreID) error {
	mon := n.Monitor(initiator)
	if n.failed[victim] {
		return fmt.Errorf("monitor: core %d fail-stopped and cannot be powered on", victim)
	}
	if mon.view[victim] {
		return fmt.Errorf("monitor: core %d is already online", victim)
	}
	vm := n.Monitor(victim)
	// Wake the sleeping core.
	n.Kern.Core(initiator).SendIPI(p, victim, 0)
	vm.down = false
	vm.view[victim] = true
	if vm.proc != nil { // nil under a parallel boot when victim is remote
		n.Eng.Wake(vm.proc)
	}
	op := Op{Kind: OpCoreUp, ID: mon.nextOpID(), Origin: initiator, Bytes: uint64(victim)}
	mon.finishCall(p, mon.submit(p, &localReq{op: op, protocol: NUMAAware}))
	return nil
}

// ReplicateView is the anti-entropy pass of view repair: the calling monitor
// re-disseminates every membership removal it knows about, one OpCoreDown per
// offline core, over the normal one-phase path. Timeout-driven excision alone
// leaves a convergence gap — a monitor that excised a dead core can itself
// die mid-dissemination, leaving some survivors uninformed and no one with a
// reason to re-send — so after a fault storm an initiator that drove
// operations across the machine (and therefore holds the most complete view)
// calls this to bring every surviving replica in line with its own.
func (m *Monitor) ReplicateView(p *sim.Proc) {
	for c, up := range m.view {
		if up {
			continue
		}
		op := Op{Kind: OpCoreDown, ID: m.nextOpID(), Origin: m.Core, Bytes: uint64(c)}
		m.finishCall(p, m.submit(p, &localReq{op: op, protocol: NUMAAware}))
	}
}
