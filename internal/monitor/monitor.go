package monitor

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/caps"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// Protocol selects how a coordinated operation is disseminated (§5.1).
type Protocol int

// Dissemination protocols.
const (
	// Unicast sends an individual message to every participant.
	Unicast Protocol = iota
	// Multicast uses the two-level socket tree in ascending socket order.
	Multicast
	// NUMAAware uses the SKB's multicast tree: aggregation nodes ordered by
	// decreasing latency, channel buffers homed at the receivers.
	NUMAAware
)

func (p Protocol) String() string {
	switch p {
	case Unicast:
		return "unicast"
	case Multicast:
		return "multicast"
	case NUMAAware:
		return "numa-aware multicast"
	}
	return "?"
}

// Costs of monitor software paths, in cycles (identical across machines;
// machine-specific costs come from topo.CostParams).
const (
	marshalCost  = 60  // building and marshaling one protocol message
	marshalDelta = 12  // re-targeting an already-marshaled message in a fan-out
	loopCost     = 8   // one pass of the dispatch loop bookkeeping
	idleSleep    = 140 // gap between idle polling sweeps
	idleToBlock  = 40  // idle sweeps before the monitor blocks
	monitorSlots = 64  // inter-monitor channel ring size
	recvBurst    = 4   // messages drained per peer per dispatch-loop pass
)

// Stats counts one monitor's activity.
type Stats struct {
	Handled   uint64 // protocol messages dispatched
	Initiated uint64 // operations started on behalf of local processes
	Commits   uint64
	Aborts    uint64
	Wakeups   uint64 // times this monitor was woken from its blocked state

	// Fault-tolerance counters (only move when Network.OpTimeout > 0).
	Excised    uint64 // cores this monitor declared dead and removed from its view
	Recoveries uint64 // deadline expiries that triggered a recovery round
	Strays     uint64 // late responses for operations already recovered or done
	Dropped    uint64 // sends abandoned on a dead channel (ChannelDead verdict)
}

// Hooks let higher layers (the VM system, the capability system) plug
// machine state changes into the agreement protocols. All hooks run in the
// context of the handling monitor's proc and may charge additional time.
type Hooks struct {
	// Invalidate is called on every participant (and the origin) of an unmap
	// operation, after the TLB-invalidate cost has been charged.
	Invalidate func(p *sim.Proc, core topo.CoreID, op Op)
	// Prepare validates a two-phase operation on a participant; returning
	// false votes to abort.
	Prepare func(p *sim.Proc, core topo.CoreID, op Op) bool
	// Apply commits a two-phase operation on a participant.
	Apply func(p *sim.Proc, core topo.CoreID, op Op)
}

// Network is the distributed system of monitors on one machine.
type Network struct {
	Eng   *sim.Engine
	Sys   *cache.System
	Kern  *kernel.System
	KB    *skb.KB
	Hooks Hooks

	// OpTimeout, when non-zero, arms a deadline on every outstanding
	// protocol phase and on every pending aggregation: a phase that does not
	// complete within its deadline triggers recovery (suspect excision,
	// re-planning, re-sending). Zero keeps the legacy fail-free behavior,
	// cycle-identical to builds without fault tolerance.
	OpTimeout sim.Time

	monitors []*Monitor
	failed   []bool // ground truth of fail-stopped cores (set by FailStop)

	// onExcise hooks run in the excising monitor's proc context whenever a
	// monitor removes a core from its replicated view. Services layered on
	// the monitor network (e.g. the replicated kvstore's fail-over) register
	// here: view excision IS their failure notification.
	onExcise []func(p *sim.Proc, observer, excised topo.CoreID)

	// opHist is the end-to-end latency distribution of coordinated
	// operations, observed at every initiator-side completion.
	opHist *stats.Histogram
}

// localReq is a request handed to a monitor by a process on its core.
type localReq struct {
	op        Op
	protocol  Protocol
	targets   []topo.CoreID
	fut       *sim.Future[bool]
	isCap     bool   // capability transfer rather than ping
	capRights uint64 // rights carried by a transferred capability
}

// opState tracks an operation this monitor initiated.
type opState struct {
	req        *localReq
	plan       []sendPlan           // dissemination plan, reused for the decision phase
	pending    map[topo.CoreID]bool // direct targets yet to respond in this phase
	allYes     bool
	decision   bool     // 2PC: commit (true) or abort
	phase      int      // 1 = prepare/shootdown, 2 = decision
	deadline   sim.Time // phase deadline; 0 = none (fault tolerance off)
	recoveries int      // recovery rounds already spent on this operation
	started    sim.Time // initiation time, for the op-latency histogram/span
}

// fwdState tracks a message an aggregation node forwarded to its children.
type fwdState struct {
	parent   topo.CoreID // who gets the aggregate response
	op       Op
	pending  map[topo.CoreID]bool // children yet to respond
	allYes   bool
	ackKind  MsgKind  // aggregate response type (ack or vote)
	deadline sim.Time // aggregation deadline; 0 = none
}

// planPending builds the response-tracking set for a dissemination plan.
func planPending(plan []sendPlan) map[topo.CoreID]bool {
	pend := make(map[topo.CoreID]bool, len(plan))
	for _, s := range plan {
		pend[s.to] = true
	}
	return pend
}

// corePending builds a response-tracking set from explicit cores.
func corePending(cores []topo.CoreID) map[topo.CoreID]bool {
	pend := make(map[topo.CoreID]bool, len(cores))
	for _, c := range cores {
		pend[c] = true
	}
	return pend
}

type lockRange struct {
	base  memory.Addr
	bytes uint64
	opID  uint64
}

// Monitor is the coordination process of one core.
type Monitor struct {
	Core topo.CoreID
	net  *Network
	CS   *caps.CSpace

	in    map[topo.CoreID]*urpc.Channel
	out   map[topo.CoreID]*urpc.Channel
	peers []topo.CoreID // deterministic poll order

	local  *sim.Queue[*localReq]
	proc   *sim.Proc
	parked bool
	down   bool   // core powered off (§3.3 hotplug)
	dead   bool   // core fail-stopped (fault injection); state is frozen
	view   []bool // replicated membership: which cores this monitor believes online
	seq    uint64

	ops   map[uint64]*opState
	fwd   map[uint64]*fwdState
	locks []lockRange
	stats Stats
}

// NewNetwork boots one monitor per core, builds the full URPC mesh between
// them (channel buffers homed at each receiver, per the SKB's allocation
// advice) and starts the monitor dispatch loops.
func NewNetwork(e *sim.Engine, sys *cache.System, kern *kernel.System, kb *skb.KB, hooks Hooks) *Network {
	n := &Network{Eng: e, Sys: sys, Kern: kern, KB: kb, Hooks: hooks}
	m := sys.Machine()
	n.failed = make([]bool, m.NumCores())
	reg := e.Metrics()
	n.opHist = reg.Histogram("monitor.op_cycles")
	sum := func(field func(*Stats) uint64) func() uint64 {
		return func() uint64 {
			var total uint64
			for _, mon := range n.monitors {
				total += field(&mon.stats)
			}
			return total
		}
	}
	reg.CounterFunc("monitor.handled", sum(func(s *Stats) uint64 { return s.Handled }))
	reg.CounterFunc("monitor.initiated", sum(func(s *Stats) uint64 { return s.Initiated }))
	reg.CounterFunc("monitor.commits", sum(func(s *Stats) uint64 { return s.Commits }))
	reg.CounterFunc("monitor.aborts", sum(func(s *Stats) uint64 { return s.Aborts }))
	reg.CounterFunc("monitor.wakeups", sum(func(s *Stats) uint64 { return s.Wakeups }))
	reg.CounterFunc("monitor.excised", sum(func(s *Stats) uint64 { return s.Excised }))
	reg.CounterFunc("monitor.recoveries", sum(func(s *Stats) uint64 { return s.Recoveries }))
	reg.CounterFunc("monitor.strays", sum(func(s *Stats) uint64 { return s.Strays }))
	reg.CounterFunc("monitor.dropped", sum(func(s *Stats) uint64 { return s.Dropped }))
	for c := 0; c < m.NumCores(); c++ {
		view := make([]bool, m.NumCores())
		for i := range view {
			view[i] = true
		}
		n.monitors = append(n.monitors, &Monitor{
			Core:  topo.CoreID(c),
			net:   n,
			CS:    caps.NewCSpace(fmt.Sprintf("core%d", c)),
			in:    make(map[topo.CoreID]*urpc.Channel),
			out:   make(map[topo.CoreID]*urpc.Channel),
			local: sim.NewQueue[*localReq](e),
			ops:   make(map[uint64]*opState),
			fwd:   make(map[uint64]*fwdState),
			view:  view,
		})
	}
	for a := 0; a < m.NumCores(); a++ {
		for b := 0; b < m.NumCores(); b++ {
			if a == b {
				continue
			}
			ca, cb := topo.CoreID(a), topo.CoreID(b)
			ch := urpc.New(sys, ca, cb, urpc.Options{Slots: monitorSlots, Home: int(kb.AllocAdvice(cb))})
			n.monitors[a].out[cb] = ch
			n.monitors[b].in[ca] = ch
			if sys.LocalCore(cb) && !sys.LocalCore(ca) {
				// Parallel boot: the sender's replica cannot unpark this
				// monitor (its proc lives here), so the delivered ring line
				// doubles as the IPI — the cross-partition analogue of
				// Network.wake, with the same notification cost.
				t := n.monitors[b]
				ipi := m.Costs.IPIDeliver
				ch.OnRemoteDeliver = func() {
					if t.parked {
						t.stats.Wakeups++
						e.After(ipi, func() { e.Wake(t.proc) })
					}
				}
			}
		}
	}
	for _, mon := range n.monitors {
		// Build the poll order by walking core ids in ascending order, never
		// by ranging over the channel map: the poll order feeds the event
		// queue every dispatch pass, so it must be visibly deterministic
		// rather than map-iteration order laundered through a sort.
		for c := 0; c < m.NumCores(); c++ {
			if _, ok := mon.in[topo.CoreID(c)]; ok {
				mon.peers = append(mon.peers, topo.CoreID(c))
			}
		}
		if !sys.LocalCore(mon.Core) {
			// Parallel boot: a remote core's monitor exists as structure (its
			// channels are the local ends of the mesh) but never runs here —
			// its dispatch loop runs in its own partition's replica.
			continue
		}
		mon := mon
		mon.proc = e.Spawn(fmt.Sprintf("monitor%d", mon.Core), mon.run)
	}
	return n
}

// Monitor returns the monitor of core c.
func (n *Network) Monitor(c topo.CoreID) *Monitor { return n.monitors[c] }

// OnExcise registers a hook invoked (in the excising monitor's proc context,
// in registration order) each time any monitor excises a core from its
// replicated view. A core's death is typically observed by several monitors;
// the hook fires once per observer, so subscribers dedup by excised core.
func (n *Network) OnExcise(fn func(p *sim.Proc, observer, excised topo.CoreID)) {
	n.onExcise = append(n.onExcise, fn)
}

// Stats returns a copy of the monitor's counters.
func (m *Monitor) Stats() Stats { return m.stats }

// wake ensures the target core's monitor notices new input, charging the
// notification cost if it had blocked.
func (n *Network) wake(p *sim.Proc, target topo.CoreID) {
	t := n.monitors[target]
	if t.parked {
		t.stats.Wakeups++
		p.Sleep(n.Sys.Machine().Costs.IPIDeliver)
		p.Unpark(t.proc)
	}
}

// send transmits a protocol message to another monitor and wakes it. With
// fault tolerance enabled the send carries a deadline: a channel whose
// receiver died stops draining its ring, and once it fills the sender backs
// off, times out, and abandons the message rather than spinning forever. A
// channel already carrying a ChannelDead verdict fails immediately.
func (m *Monitor) send(p *sim.Proc, to topo.CoreID, msg urpc.Message) {
	p.Sleep(marshalCost)
	if m.net.OpTimeout > 0 {
		if !m.out[to].SendTimeout(p, msg, m.net.OpTimeout) {
			m.stats.Dropped++
			return
		}
	} else {
		m.out[to].Send(p, msg)
	}
	m.net.wake(p, to)
}

// batchMsg is one destination of a batched fan-out.
type batchMsg struct {
	to  topo.CoreID
	msg urpc.Message
}

// sendMany transmits a dissemination fan-out as one pipelined burst: the
// message body is marshaled once (marshalCost) and each further destination
// pays only the re-targeting delta; all ring writes are issued back-to-back
// and receiver wakeups are delivered after the last write, so a parked peer
// is notified exactly once per burst. With fault tolerance armed, every send
// carries its own deadline and ChannelDead verdict handling, so the burst
// falls back to the per-message path (keeping the fault machinery — and its
// cycle accounting — unchanged).
func (m *Monitor) sendMany(p *sim.Proc, msgs []batchMsg) {
	if m.net.OpTimeout > 0 {
		for _, bm := range msgs {
			m.send(p, bm.to, bm.msg)
		}
		return
	}
	for i, bm := range msgs {
		if i == 0 {
			p.Sleep(marshalCost)
		} else {
			p.Sleep(marshalDelta)
		}
		m.out[bm.to].Send(p, bm.msg)
	}
	for _, bm := range msgs {
		m.net.wake(p, bm.to)
	}
}

// run is the monitor dispatch loop: poll local requests and every incoming
// channel; block after a sustained idle period and wait for notification.
func (m *Monitor) run(p *sim.Proc) {
	p.SetDaemon(true)
	costs := &m.net.Sys.Machine().Costs
	idle := 0
	var burst [recvBurst]urpc.Message
	if m.parked {
		// Restored from a checkpoint taken while blocked: this first resume
		// is the interrupt-driven wakeup, so replay exactly the charges of
		// the post-Park path below — that equivalence is what makes a
		// restored run byte-identical to an uninterrupted one.
		m.parked = false
		p.Sleep(costs.Trap + costs.CSwitch)
		for m.down && len(m.fwd) == 0 && len(m.ops) == 0 {
			p.Sleep(coreDownParkCost)
			m.parked = true
			p.Park()
			m.parked = false
		}
	}
	for {
		progress := false
		if req, ok := m.local.TryPop(); ok {
			m.startOp(p, req)
			progress = true
		}
		for _, src := range m.peers {
			// Burst dequeue: one check charge drains up to recvBurst queued
			// messages from this peer. The burst is capped so one chatty peer
			// cannot starve the others in a single pass.
			n := m.in[src].RecvAll(p, burst[:])
			for i := 0; i < n; i++ {
				m.dispatch(p, src, burst[i])
			}
			if n > 0 {
				progress = true
			}
		}
		if m.net.OpTimeout > 0 && m.checkDeadlines(p) {
			progress = true
		}
		p.Sleep(loopCost)
		if progress {
			idle = 0
			continue
		}
		idle++
		// With fault tolerance armed, a monitor with outstanding protocol
		// state must keep polling: its deadlines are its failure detector,
		// and a blocked monitor would only wake on a message that a dead
		// peer will never send.
		if idle < idleToBlock || (m.net.OpTimeout > 0 && len(m.ops)+len(m.fwd) > 0) {
			p.Sleep(idleSleep)
			continue
		}
		m.parked = true
		p.Park()
		m.parked = false
		idle = 0
		// Being re-dispatched after an interrupt-driven wakeup.
		p.Sleep(costs.Trap + costs.CSwitch)
		for m.down && len(m.fwd) == 0 && len(m.ops) == 0 {
			// Powered off: sleep until the PowerOn IPI (§3.3). A monitor
			// that is still the aggregation root of an in-flight operation
			// (or initiated one) drains that duty first — the membership
			// change that took it offline may have raced with a protocol
			// round that still counts on its responses.
			p.Sleep(coreDownParkCost)
			m.parked = true
			p.Park()
			m.parked = false
		}
	}
}

// dispatch demultiplexes one protocol message.
func (m *Monitor) dispatch(p *sim.Proc, src topo.CoreID, raw urpc.Message) {
	m.stats.Handled++
	p.Sleep(m.net.Sys.Machine().Costs.Dispatch)
	kind, op, aux := unwire(raw)
	switch kind {
	case MsgShootdown, MsgShootdownFwd:
		m.handleShootdown(p, src, op, aux, kind == MsgShootdownFwd)
	case MsgShootdownAck:
		m.handleAck(p, src, op, func(st *opState) {
			m.stats.Commits++
			m.opEnd(p, op, st.started, true)
			st.req.fut.Complete(true)
		})
	case MsgPrepare, MsgPrepareFwd:
		m.handlePrepare(p, src, op, aux, kind == MsgPrepareFwd)
	case MsgVote:
		m.handleVote(p, src, op, aux)
	case MsgDecision, MsgDecisionFwd:
		m.handleDecision(p, src, op, aux, kind == MsgDecisionFwd)
	case MsgDecisionAck:
		m.handleAck(p, src, op, func(st *opState) {
			m.finish2PC(p, st)
		})
	case MsgCapSend:
		m.handleCapSend(p, src, op, aux)
	case MsgCapAck:
		m.handleAck(p, src, op, func(st *opState) {
			m.opEnd(p, op, st.started, aux == 1)
			st.req.fut.Complete(aux == 1)
		})
	case MsgPing:
		m.send(p, op.Origin, wire(MsgPong, op, 0))
	case MsgPong:
		m.handleAck(p, src, op, func(st *opState) {
			m.opEnd(p, op, st.started, true)
			st.req.fut.Complete(true)
		})
	default:
		panic(fmt.Sprintf("monitor%d: unknown message %v from %d", m.Core, kind, src))
	}
}

// handleAck consumes one response toward the current phase of an operation
// this monitor initiated; done runs when the phase completes. Responses are
// tracked per responder, so a duplicate (a slow core answering both the
// original and a recovery re-send) never completes a phase early.
func (m *Monitor) handleAck(p *sim.Proc, src topo.CoreID, op Op, done func(*opState)) {
	st, ok := m.ops[op.ID]
	if !ok {
		// Response for an aggregate this core forwarded.
		m.handleFwdAck(p, src, op)
		return
	}
	delete(st.pending, src)
	if len(st.pending) == 0 {
		delete(m.ops, op.ID)
		done(st)
	}
}

func (m *Monitor) handleFwdAck(p *sim.Proc, src topo.CoreID, op Op) {
	fw, ok := m.fwd[op.ID]
	if !ok {
		// With fault tolerance, a late response for an aggregation already
		// recovered (answered upward on timeout) is expected; without it,
		// it is a protocol bug.
		if m.net.OpTimeout > 0 {
			m.stats.Strays++
			return
		}
		panic(fmt.Sprintf("monitor%d: stray ack for op %#x", m.Core, op.ID))
	}
	delete(fw.pending, src)
	if len(fw.pending) == 0 {
		delete(m.fwd, op.ID)
		m.fwdEnd(p, op, fw.allYes)
		aux := uint64(1)
		if fw.ackKind == MsgVote {
			aux = 0
			if fw.allYes {
				aux = 1
			}
		}
		m.send(p, fw.parent, wire(fw.ackKind, op, aux))
	}
}
