package monitor

import (
	"testing"

	"multikernel/internal/caps"
	"multikernel/internal/fault"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// faultTimeout is the aggregation deadline used by the fault tests: far above
// any fault-free response time on these machines (so live cores are never
// falsely suspected), far below the test horizon.
const faultTimeout = 100_000

func newFaultFixture(t *testing.T, m *topo.Machine) *fixture {
	t.Helper()
	f := newFixtureQuick(m)
	f.net.Hooks = Hooks{
		Invalidate: func(p *sim.Proc, core topo.CoreID, op Op) { f.invalidated[core]++ },
		Prepare: func(p *sim.Proc, core topo.CoreID, op Op) bool {
			f.prepared[core]++
			return !f.vetoCores[core]
		},
		Apply: func(p *sim.Proc, core topo.CoreID, op Op) { f.applied[core]++ },
	}
	f.net.EnableFaultTolerance(faultTimeout)
	t.Cleanup(f.e.Close)
	return f
}

// assertSurvivorViews checks that every surviving monitor's replicated view
// marks exactly the fail-stopped cores offline.
func assertSurvivorViews(t *testing.T, f *fixture) {
	t.Helper()
	for c := 0; c < f.m.NumCores(); c++ {
		mon := f.net.Monitor(topo.CoreID(c))
		if f.net.CoreFailed(mon.Core) {
			continue
		}
		for v := 0; v < f.m.NumCores(); v++ {
			want := !f.net.CoreFailed(topo.CoreID(v))
			if mon.Online(topo.CoreID(v)) != want {
				t.Errorf("monitor %d: Online(%d)=%v, want %v", c, v, !want, want)
			}
		}
	}
}

func sumRecoveries(f *fixture) (rec, excised uint64) {
	for c := 0; c < f.m.NumCores(); c++ {
		st := f.net.Monitor(topo.CoreID(c)).Stats()
		rec += st.Recoveries
		excised += st.Excised
	}
	return rec, excised
}

// TestShootdownSurvivesLeafDeath is the headline acceptance scenario: a fault
// schedule kills one core mid-shootdown on the 8x4 machine, and the operation
// completes on the 31 survivors with finite recovery latency.
func TestShootdownSurvivesLeafDeath(t *testing.T) {
	f := newFaultFixture(t, topo.AMD8x4())
	// Slow invalidations keep the operation in flight when the fault lands.
	f.net.Hooks.Invalidate = func(p *sim.Proc, core topo.CoreID, op Op) {
		f.invalidated[core]++
		p.Sleep(20_000)
	}
	f.e.After(10_000, func() { f.net.FailStop(9) }) // leaf of socket 2's group
	ok := false
	var latency sim.Time
	f.e.Spawn("app", func(p *sim.Proc) {
		start := p.Now()
		ok = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, NUMAAware)
		latency = p.Now() - start
	})
	f.e.Run()
	if !ok {
		t.Fatal("unmap did not complete on the survivors")
	}
	if latency == 0 || latency > 2_000_000 {
		t.Fatalf("recovery latency %d not finite/sane", latency)
	}
	for c := 0; c < 32; c++ {
		if c == 9 {
			continue
		}
		if f.invalidated[topo.CoreID(c)] < 1 {
			t.Errorf("survivor %d never invalidated", c)
		}
	}
	rec, excised := sumRecoveries(f)
	if rec == 0 || excised == 0 {
		t.Fatalf("recoveries=%d excised=%d, want both > 0", rec, excised)
	}
	assertSurvivorViews(t, f)
	if dl := f.e.Deadlocked(); len(dl) != 0 {
		t.Fatalf("deadlocked procs: %v", dl)
	}
}

// TestShootdownSurvivesAggregatorDeath kills a multicast aggregation root
// mid-operation: the initiator must time out, excise it, recompute the tree
// over the survivors (a new aggregator for that socket), and re-run.
func TestShootdownSurvivesAggregatorDeath(t *testing.T) {
	f := newFaultFixture(t, topo.AMD8x4())
	f.net.Hooks.Invalidate = func(p *sim.Proc, core topo.CoreID, op Op) {
		f.invalidated[core]++
		p.Sleep(20_000)
	}
	f.e.After(10_000, func() { f.net.FailStop(8) }) // socket 2's aggregation root
	ok := false
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, NUMAAware)
	})
	f.e.Run()
	if !ok {
		t.Fatal("unmap did not survive aggregator death")
	}
	// The dead aggregator's children were re-reached through the re-planned
	// tree rooted at a surviving socket-2 core.
	for _, c := range []topo.CoreID{9, 10, 11} {
		if f.invalidated[c] < 1 {
			t.Errorf("core %d (child of dead aggregator) never invalidated", c)
		}
	}
	assertSurvivorViews(t, f)
}

// TestRetypeSurvivesParticipantDeath runs the 2PC path through a fault: a
// participant dies before voting; its aggregator treats the silent child as
// harmless (dead cores hold no locks worth honoring) and the retype commits
// on the survivors with all locks drained.
func TestRetypeSurvivesParticipantDeath(t *testing.T) {
	f := newFaultFixture(t, topo.AMD4x4())
	f.net.Hooks.Prepare = func(p *sim.Proc, core topo.CoreID, op Op) bool {
		f.prepared[core]++
		p.Sleep(20_000)
		return true
	}
	f.e.After(10_000, func() { f.net.FailStop(5) })
	ok := false
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(0).Retype(p, 0x40000, 8192, caps.Frame, 0, nil)
	})
	f.e.Run()
	if !ok {
		t.Fatal("retype did not commit on the survivors")
	}
	for c := 0; c < 16; c++ {
		id := topo.CoreID(c)
		if f.net.CoreFailed(id) {
			continue
		}
		if f.applied[id] < 1 {
			t.Errorf("survivor %d never applied the commit", c)
		}
		if n := f.net.Monitor(id).LockedRanges(); n != 0 {
			t.Errorf("survivor %d still holds %d locks", c, n)
		}
	}
	assertSurvivorViews(t, f)
}

// TestPingToDeadCoreFailsFinite: a single-target operation against a dead
// core cannot be re-planned; it must fail within the deadline budget rather
// than hang, and the dead core must be excised.
func TestPingToDeadCoreFailsFinite(t *testing.T) {
	f := newFaultFixture(t, topo.AMD2x2())
	f.net.FailStop(2)
	var rtt sim.Time
	var ok bool
	f.e.Spawn("app", func(p *sim.Proc) {
		p.Sleep(1_000)
		start := p.Now()
		op := Op{Kind: OpNone, ID: f.net.Monitor(0).nextOpID(), Origin: 0}
		mon := f.net.Monitor(0)
		ok = mon.finishCall(p, mon.submit(p, &localReq{op: op, targets: []topo.CoreID{2}}))
		rtt = p.Now() - start
	})
	f.e.Run()
	if ok {
		t.Fatal("ping to a dead core reported success")
	}
	if rtt == 0 || rtt > 10*faultTimeout {
		t.Fatalf("dead-core ping took %d cycles, want finite and bounded", rtt)
	}
	if f.net.Monitor(0).Online(2) {
		t.Fatal("dead core not excised from initiator's view")
	}
	if dl := f.e.Deadlocked(); len(dl) != 0 {
		t.Fatalf("deadlocked procs: %v", dl)
	}
}

// TestViewConvergenceProperty: for seeded fault schedules killing up to n-2
// cores (never the driving core 0), operations complete and — after the
// driver's anti-entropy pass — every surviving monitor converges to the same
// online view: exactly the survivors.
func TestViewConvergenceProperty(t *testing.T) {
	m := topo.AMD4x4()
	for seed := uint64(0); seed < 8; seed++ {
		f := newFaultFixture(t, m)
		inj := fault.NewInjector(f.e, f.sys)
		inj.OnKill(func(c topo.CoreID) { f.net.FailStop(c) })
		kills := 1 + int(seed%5)
		sched := fault.Random(seed, m, fault.Spec{
			Kills:   kills,
			Window:  [2]sim.Time{20_000, 250_000},
			Protect: []topo.CoreID{0},
		})
		inj.Arm(sched)
		lastOK := false
		f.e.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 6; i++ {
				p.Sleep(10_000)
				lastOK = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, NUMAAware)
				p.Sleep(50_000)
			}
			// By now every kill has happened and every dead core has been
			// planned into at least one operation, so core 0's view is the
			// ground truth; repair the stragglers.
			f.net.Monitor(0).ReplicateView(p)
		})
		f.e.Run()
		if !lastOK {
			t.Fatalf("seed %d (%d kills): final unmap failed", seed, kills)
		}
		nFailed := 0
		for c := 0; c < m.NumCores(); c++ {
			if f.net.CoreFailed(topo.CoreID(c)) {
				nFailed++
			}
		}
		if nFailed == 0 {
			t.Fatalf("seed %d: schedule killed nobody", seed)
		}
		assertSurvivorViews(t, f)
		if t.Failed() {
			t.Fatalf("seed %d (%d kills): views diverged\nschedule:\n%s", seed, nFailed, sched)
		}
		f.e.Close()
	}
}

// TestStrayResponsesTolerated: a stalled (not dead) core that answers after
// being excised must not crash the network — its late responses count as
// strays and are dropped.
func TestStrayResponsesTolerated(t *testing.T) {
	f := newFaultFixture(t, topo.AMD2x2())
	// Core 3 is alive but its monitor naps through the entire operation and
	// its recovery, then wakes and answers.
	slow := topo.CoreID(3)
	f.net.Hooks.Invalidate = func(p *sim.Proc, core topo.CoreID, op Op) {
		f.invalidated[core]++
		if core == slow {
			p.Sleep(5 * faultTimeout)
		}
	}
	ok := false
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, Unicast)
	})
	f.e.Run()
	if !ok {
		t.Fatal("unmap did not complete around the stalled core")
	}
	strays := uint64(0)
	for c := 0; c < 4; c++ {
		strays += f.net.Monitor(topo.CoreID(c)).Stats().Strays
	}
	if strays == 0 {
		t.Fatal("late answer from the stalled core was not counted as a stray")
	}
}
