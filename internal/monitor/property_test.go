package monitor

import (
	"testing"
	"testing/quick"

	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Property: for any set of concurrent retypes, (a) disjoint-range operations
// all commit, (b) each group of mutually-overlapping operations commits at
// most one member per conflict window, and (c) no range locks leak.
func TestConcurrentRetypeSerializabilityProperty(t *testing.T) {
	f := func(spec []uint8) bool {
		if len(spec) == 0 {
			return true
		}
		if len(spec) > 10 {
			spec = spec[:10]
		}
		fx := newFixtureQuick(topo.AMD4x4())
		defer fx.e.Close()
		type result struct {
			base      memory.Addr
			committed bool
		}
		results := make([]result, len(spec))
		for i, b := range spec {
			i := i
			// Four possible overlap groups.
			base := memory.Addr(0x100000 + uint64(b%4)*0x1000)
			initiator := topo.CoreID(int(b) % 16)
			results[i].base = base
			fx.e.Spawn("app", func(p *sim.Proc) {
				results[i].committed = fx.net.Monitor(initiator).Retype(p, base, 4096, 2, 0, nil)
			})
		}
		fx.e.Run()
		// At most one commit per overlap group (all ops in a group share the
		// exact same range, so a second commit would re-type typed memory —
		// the prepare hook rejects overlap with an existing different typing;
		// identical typing is idempotent and may commit repeatedly, so only
		// check lock hygiene and completion here).
		for c := 0; c < 16; c++ {
			if fx.net.Monitor(topo.CoreID(c)).LockedRanges() != 0 {
				return false
			}
		}
		// Every operation completed one way or the other (no hangs): Run
		// returning with no deadlocked procs implies this.
		return len(fx.e.Deadlocked()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// newFixtureQuick is a fixture without *testing.T plumbing, for quick.Check.
func newFixtureQuick(m *topo.Machine) *fixture {
	f := &fixture{
		e:           sim.NewEngine(1),
		m:           m,
		invalidated: make(map[topo.CoreID]int),
		prepared:    make(map[topo.CoreID]int),
		applied:     make(map[topo.CoreID]int),
		vetoCores:   make(map[topo.CoreID]bool),
	}
	f.sys = newBenchCache(f.e, m)
	f.kern = kernelNew(f.e, m)
	f.kb = skbNew(m)
	f.net = NewNetwork(f.e, f.sys, f.kern, f.kb, Hooks{})
	return f
}

// Property: unmap operations over random target subsets always invalidate
// exactly the targets, never anyone else, under every protocol.
func TestUnmapTargetExactnessProperty(t *testing.T) {
	f := func(mask uint16, protoSel uint8) bool {
		m := topo.AMD4x4()
		fx := newFixtureQuick(m)
		defer fx.e.Close()
		hit := make(map[topo.CoreID]int)
		fx.net.Hooks.Invalidate = func(p *sim.Proc, core topo.CoreID, op Op) { hit[core]++ }
		var targets []topo.CoreID
		for i := 0; i < 16; i++ {
			if mask&(1<<uint(i)) != 0 {
				targets = append(targets, topo.CoreID(i))
			}
		}
		if len(targets) == 0 {
			return true
		}
		proto := []Protocol{Unicast, Multicast, NUMAAware}[protoSel%3]
		ok := false
		fx.e.Spawn("app", func(p *sim.Proc) {
			ok = fx.net.Monitor(targets[0]).Unmap(p, 0x5000, 4096, targets, proto)
		})
		fx.e.Run()
		if !ok {
			return false
		}
		want := make(map[topo.CoreID]bool)
		for _, c := range targets {
			want[c] = true
		}
		for c := 0; c < 16; c++ {
			id := topo.CoreID(c)
			if want[id] && hit[id] != 1 {
				return false
			}
			if !want[id] && hit[id] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
