package monitor

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func TestPowerOffUpdatesAllViews(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	var err error
	f.e.Spawn("init", func(p *sim.Proc) {
		err = f.net.PowerOff(p, 0, 9)
	})
	f.e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 16; c++ {
		mon := f.net.Monitor(topo.CoreID(c))
		if mon.Online(9) {
			t.Fatalf("monitor %d still believes core 9 is online", c)
		}
		if !mon.Online(3) {
			t.Fatalf("monitor %d lost an unrelated core", c)
		}
	}
}

func TestOfflineCoreExcludedFromShootdown(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	var ok bool
	f.e.Spawn("init", func(p *sim.Proc) {
		if err := f.net.PowerOff(p, 0, 9); err != nil {
			t.Error(err)
			return
		}
		ok = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, NUMAAware)
	})
	f.e.Run()
	if !ok {
		t.Fatal("unmap failed after power-off")
	}
	if f.invalidated[9] != 0 {
		t.Fatal("offline core 9 received a shootdown")
	}
	for c := 0; c < 16; c++ {
		if c != 9 && f.invalidated[topo.CoreID(c)] != 1 {
			t.Fatalf("online core %d invalidated %d times", c, f.invalidated[topo.CoreID(c)])
		}
	}
}

func TestPowerOnRejoinsProtocols(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	var ok bool
	f.e.Spawn("init", func(p *sim.Proc) {
		if err := f.net.PowerOff(p, 0, 9); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(2_000_000) // let the victim settle into its sleep loop
		if err := f.net.PowerOn(p, 0, 9); err != nil {
			t.Error(err)
			return
		}
		ok = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, NUMAAware)
	})
	f.e.Run()
	if !ok {
		t.Fatal("unmap failed after power-on")
	}
	if f.invalidated[9] != 1 {
		t.Fatalf("rejoined core 9 invalidated %d times, want 1", f.invalidated[9])
	}
	for c := 0; c < 16; c++ {
		if !f.net.Monitor(topo.CoreID(c)).Online(9) {
			t.Fatalf("monitor %d did not learn core 9 is back", c)
		}
	}
}

func TestPowerOffGuards(t *testing.T) {
	f := newFixture(t, topo.AMD2x2())
	var errSelf, errTwice, errLast error
	f.e.Spawn("init", func(p *sim.Proc) {
		errSelf = f.net.PowerOff(p, 0, 0)
		f.net.PowerOff(p, 0, 1)
		errTwice = f.net.PowerOff(p, 0, 1)
		f.net.PowerOff(p, 0, 2)
		f.net.PowerOff(p, 0, 3)
		errLast = f.net.PowerOff(p, 3, 0) // initiator 3 is itself offline... use 0
	})
	f.e.Run()
	if errSelf == nil {
		t.Error("self power-off allowed")
	}
	if errTwice == nil {
		t.Error("double power-off allowed")
	}
	if errLast == nil {
		t.Error("last-core power-off allowed")
	}
}

func TestPowerOnAlreadyOnlineErrors(t *testing.T) {
	f := newFixture(t, topo.AMD2x2())
	var err error
	f.e.Spawn("init", func(p *sim.Proc) {
		err = f.net.PowerOn(p, 0, 2)
	})
	f.e.Run()
	if err == nil {
		t.Fatal("power-on of online core allowed")
	}
}

func TestNameServiceRegisterLookup(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	ns := NewNameService(f.net, 0)
	var found bool
	var ref ServiceRef
	f.e.Spawn("svc", func(p *sim.Proc) {
		ns.Register(p, 5, "netd", 5, map[string]string{"proto": "udp"})
		ns.Register(p, 9, "webd", 9, map[string]string{"proto": "tcp"})
		ref, found = ns.Lookup(p, 12, "netd")
	})
	f.e.Run()
	if !found || ref.Core != 5 {
		t.Fatalf("lookup: %v %v", ref, found)
	}
}

func TestNameServiceLookupByProperty(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	ns := NewNameService(f.net, 0)
	var refs []ServiceRef
	f.e.Spawn("svc", func(p *sim.Proc) {
		ns.Register(p, 1, "b-svc", 1, map[string]string{"class": "driver"})
		ns.Register(p, 2, "a-svc", 2, map[string]string{"class": "driver"})
		ns.Register(p, 3, "c-svc", 3, map[string]string{"class": "app"})
		refs = ns.LookupByProperty(p, 4, "class", "driver")
	})
	f.e.Run()
	if len(refs) != 2 || refs[0].Name != "a-svc" || refs[1].Name != "b-svc" {
		t.Fatalf("refs: %v", refs)
	}
}

func TestNameServiceUnregister(t *testing.T) {
	f := newFixture(t, topo.AMD2x2())
	ns := NewNameService(f.net, 0)
	var first, second bool
	var stillThere bool
	f.e.Spawn("svc", func(p *sim.Proc) {
		ns.Register(p, 1, "x", 1, nil)
		first = ns.Unregister(p, 2, "x")
		second = ns.Unregister(p, 2, "x")
		_, stillThere = ns.Lookup(p, 3, "x")
	})
	f.e.Run()
	if !first || second || stillThere {
		t.Fatalf("first=%v second=%v stillThere=%v", first, second, stillThere)
	}
}

func TestBindServiceEstablishesWorkingChannel(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	ns := NewNameService(f.net, 0)
	var echoed uint64
	f.e.Spawn("init", func(p *sim.Proc) {
		ns.Register(p, 9, "echo", 9, nil)
		client, server, ok := ns.BindService(p, 4, "echo")
		if !ok {
			t.Error("bind failed")
			return
		}
		// Service side echoes one message.
		f.e.Spawn("echo-svc", func(sp *sim.Proc) {
			msg := server.Rx.Recv(sp)
			server.Tx.Send(sp, msg)
		})
		client.Tx.Send(p, [7]uint64{42})
		echoed = client.Rx.Recv(p)[0]
	})
	f.e.Run()
	if echoed != 42 {
		t.Fatalf("echoed %d", echoed)
	}
}

func TestBindUnknownServiceFails(t *testing.T) {
	f := newFixture(t, topo.AMD2x2())
	ns := NewNameService(f.net, 0)
	ok := true
	f.e.Spawn("init", func(p *sim.Proc) {
		_, _, ok = ns.BindService(p, 1, "missing")
	})
	f.e.Run()
	if ok {
		t.Fatal("bind to unknown name succeeded")
	}
}

// TestPowerOffMulticastRootMidOperation powers off a core while it is the
// multicast aggregation root of an in-flight shootdown. The victim's monitor
// learns it is offline before its slow children have answered; it must drain
// the aggregation duty (forward the ack upward) before parking, or both the
// shootdown and the power-off would hang forever.
func TestPowerOffMulticastRootMidOperation(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	// Socket 1's cores answer slowly, so the aggregation at core 4 (socket 1's
	// root in the tree from core 0) is still pending when the power-off lands.
	f.net.Hooks.Invalidate = func(p *sim.Proc, core topo.CoreID, op Op) {
		f.invalidated[core]++
		if core >= 5 && core <= 7 {
			p.Sleep(60_000)
		}
	}
	var ok bool
	var offErr error
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, NUMAAware)
	})
	f.e.Spawn("hotplug", func(p *sim.Proc) {
		p.Sleep(8_000) // after the shootdown reaches core 4, before its children answer
		offErr = f.net.PowerOff(p, 1, 4)
	})
	f.e.Run()
	if offErr != nil {
		t.Fatalf("power-off: %v", offErr)
	}
	if !ok {
		t.Fatal("unmap hung or failed around the power-off")
	}
	for _, c := range []topo.CoreID{5, 6, 7} {
		if f.invalidated[c] != 1 {
			t.Errorf("core %d invalidated %d times, want 1", c, f.invalidated[c])
		}
	}
	for c := 0; c < 16; c++ {
		if c != 4 && f.net.Monitor(topo.CoreID(c)).Online(4) {
			t.Errorf("monitor %d still believes core 4 is online", c)
		}
	}
	if dl := f.e.Deadlocked(); len(dl) != 0 {
		t.Fatalf("deadlocked procs: %v", dl)
	}
}
