package monitor

import (
	"fmt"

	"multikernel/internal/caps"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// ---------------------------------------------------------------------------
// Trace spans
//
// Coordinated operations overlap freely (pipelined retypes, concurrent
// recovery rounds), so they render as async spans keyed by operation ID
// rather than stack-nested Begin/End pairs. Aggregation-node forwarding gets
// its own span under a distinct id namespace (fwdIDBit | aggregator core), so
// a multicast shootdown shows as an initiator span with one child span per
// aggregation node.

// fwdIDBit separates forwarding-span ids from initiator-span ids.
const fwdIDBit = uint64(1) << 63

// opName returns the static span name of an operation kind.
func opName(k OpKind) string {
	switch k {
	case OpUnmap:
		return "monitor.unmap"
	case OpRetype:
		return "monitor.retype"
	case OpRevoke:
		return "monitor.revoke"
	case OpCoreDown:
		return "monitor.coredown"
	case OpCoreUp:
		return "monitor.coreup"
	}
	return "monitor.ping"
}

// opBegin opens the initiator-side span of a coordinated operation and
// returns its start time.
func (m *Monitor) opBegin(p *sim.Proc, op Op) sim.Time {
	m.net.Eng.Tracer().Emit(uint64(p.Now()), trace.AsyncBegin, trace.SubMonitor, int32(m.Core), opName(op.Kind), op.ID, 0)
	return p.Now()
}

// opEnd closes the initiator-side span (arg 1 = success) and feeds the
// operation's end-to-end latency into the registry histogram.
func (m *Monitor) opEnd(p *sim.Proc, op Op, started sim.Time, ok bool) {
	m.net.opHist.Observe(uint64(p.Now() - started))
	var arg uint64
	if ok {
		arg = 1
	}
	m.net.Eng.Tracer().Emit(uint64(p.Now()), trace.AsyncEnd, trace.SubMonitor, int32(m.Core), opName(op.Kind), op.ID, arg)
}

// fwdID is the span id of this aggregation node's forwarding of op.
func (m *Monitor) fwdID(op Op) uint64 {
	return fwdIDBit | uint64(m.Core)<<48 | op.ID&(1<<48-1)
}

// fwdBegin opens an aggregation-node forwarding span.
func (m *Monitor) fwdBegin(p *sim.Proc, op Op) {
	m.net.Eng.Tracer().Emit(uint64(p.Now()), trace.AsyncBegin, trace.SubMonitor, int32(m.Core), "monitor.fwd", m.fwdID(op), 0)
}

// fwdEnd closes it (arg 1 = all children answered yes).
func (m *Monitor) fwdEnd(p *sim.Proc, op Op, allYes bool) {
	var arg uint64
	if allYes {
		arg = 1
	}
	m.net.Eng.Tracer().Emit(uint64(p.Now()), trace.AsyncEnd, trace.SubMonitor, int32(m.Core), "monitor.fwd", m.fwdID(op), arg)
}

// aux-word layout for dissemination messages: low 16 bits carry the child
// mask (relative to the receiver's socket base core), bit 16 carries the
// commit flag on decision messages, and bits 17–62 carry the relay mask of a
// hierarchical dissemination — the absolute socket IDs whose aggregation
// nodes the receiving region head must contact on the initiator's behalf.
// Bit 63 (auxRelayLeaf) marks a relay mask whose sockets participate with
// their aggregation core only — the per-socket-delegate dissemination of the
// §3.3 shared-replica optimization — rather than with every online core.
const (
	auxMaskBits   = 16
	auxCommit     = 1 << auxMaskBits
	auxRelayShift = 17
	auxRelayLeaf  = uint64(1) << 63
	// hierFanout bounds the initiator's direct sends on large machines: with
	// more remote sockets than this, dissemination goes through the SKB's
	// three-level tree (source -> region heads -> socket aggregators). The
	// paper machines (<= 8 sockets) never hit it, keeping their protocol
	// traffic identical.
	hierFanout = 8
	// maxRelaySockets is the widest machine whose socket IDs fit the relay
	// mask; beyond it the planner falls back to the flat two-level tree.
	maxRelaySockets = 63 - auxRelayShift
)

// sendPlan is one direct transmission of a dissemination round.
type sendPlan struct {
	to   topo.CoreID
	mask uint64 // relative child mask the receiver must forward to
}

// relMask builds a socket-relative bitmask for the given children.
func (m *Monitor) relMask(children []topo.CoreID) uint64 {
	mach := m.net.Sys.Machine()
	var mask uint64
	for _, c := range children {
		rel := int(c) % mach.CoresPerSocket
		if rel >= auxMaskBits {
			panic("monitor: socket too wide for child mask encoding")
		}
		mask |= 1 << uint(rel)
	}
	return mask
}

// expandMask converts a relative child mask back to core IDs on core c's
// socket.
func (m *Monitor) expandMask(mask uint64) []topo.CoreID {
	mach := m.net.Sys.Machine()
	base := int(mach.Socket(m.Core)) * mach.CoresPerSocket
	var out []topo.CoreID
	for i := 0; i < mach.CoresPerSocket; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, topo.CoreID(base+i))
		}
	}
	return out
}

// plan computes the direct sends for disseminating to targets under the
// given protocol. A nil target list means every core.
func (m *Monitor) plan(protocol Protocol, targets []topo.CoreID) []sendPlan {
	full := targets == nil
	if full {
		targets = m.onlineView()
	} else {
		// Filter an explicit target list through the replicated membership
		// view: offline cores have no TLBs to shoot down and no monitor to
		// answer (§3.3).
		kept := targets[:0:0]
		for _, t := range targets {
			if m.view[t] {
				kept = append(kept, t)
			}
		}
		targets = kept
	}
	switch protocol {
	case Unicast:
		var out []sendPlan
		for _, t := range targets {
			if t != m.Core {
				out = append(out, sendPlan{to: t})
			}
		}
		return out
	case Multicast, NUMAAware:
		if m.useHier() && (full || m.leaderSet(targets)) {
			return m.hierPlan(protocol, targets, !full)
		}
		tree := m.net.KB.MulticastTree(m.Core, targets)
		groups := append([]skb.Group(nil), tree.Groups...)
		if protocol == Multicast {
			// Plain multicast ignores latency ordering: ascending socket.
			sortGroupsByAgg(groups)
		}
		var out []sendPlan
		for _, g := range groups {
			out = append(out, sendPlan{to: g.Agg, mask: m.relMask(g.Children)})
		}
		for _, c := range tree.Local {
			out = append(out, sendPlan{to: c})
		}
		return out
	}
	panic("monitor: unknown protocol")
}

// useHier reports whether full-machine dissemination should route over the
// hierarchical multicast tree: only on machines with more remote sockets than
// the initiator fanout, and only when every socket ID fits the relay mask.
func (m *Monitor) useHier() bool {
	ns := m.net.Sys.Machine().NSockets
	return ns > hierFanout+1 && ns <= maxRelaySockets
}

// leaderSet reports whether an explicit target list is a per-socket-delegate
// set: at most one target per socket, each the socket's lowest online core —
// exactly the aggregation node a relaying region head would pick on the
// initiator's behalf, which is what makes the set hierarchy-routable.
func (m *Monitor) leaderSet(targets []topo.CoreID) bool {
	mach := m.net.Sys.Machine()
	seen := make([]bool, mach.NSockets)
	for _, c := range targets {
		s := mach.Socket(c)
		if seen[s] {
			return false
		}
		seen[s] = true
		for _, o := range mach.CoresOf(s) {
			if m.view[o] {
				if o != c {
					return false
				}
				break
			}
		}
	}
	return true
}

// hierPlan computes the direct sends of a hierarchical dissemination: one
// message per region head, carrying both the head's socket-local child mask
// and the relay mask of the region's other sockets. With leaf set, relayed
// sockets participate with their aggregation core only.
func (m *Monitor) hierPlan(protocol Protocol, targets []topo.CoreID, leaf bool) []sendPlan {
	mach := m.net.Sys.Machine()
	tree := m.net.KB.HierMulticastTree(m.Core, targets, hierFanout)
	regions := append([]skb.Region(nil), tree.Regions...)
	if protocol == Multicast {
		sortRegionsByAgg(regions)
	}
	var out []sendPlan
	for _, r := range regions {
		mask := m.relMask(r.Children)
		for _, g := range r.Subs {
			mask |= 1 << uint(auxRelayShift+int(mach.Socket(g.Agg)))
		}
		if leaf && len(r.Subs) > 0 {
			mask |= auxRelayLeaf
		}
		out = append(out, sendPlan{to: r.Agg, mask: mask})
	}
	for _, c := range tree.Local {
		out = append(out, sendPlan{to: c})
	}
	return out
}

// relayPlans expands a message's relay-socket mask into the sends a region
// head owes the region's other sockets: each named socket's lowest online
// core becomes its aggregation node, with the socket's remaining online cores
// as its child mask (none under the leaf flag). Resolved against the head's
// replicated view, which in the fail-free dissemination path agrees with the
// initiator's.
func (m *Monitor) relayPlans(aux uint64) []sendPlan {
	relay := aux >> auxRelayShift & (1<<uint(maxRelaySockets) - 1)
	if relay == 0 {
		return nil
	}
	mach := m.net.Sys.Machine()
	var out []sendPlan
	for s := 0; relay != 0; s, relay = s+1, relay>>1 {
		if relay&1 == 0 {
			continue
		}
		var cs []topo.CoreID
		for _, c := range mach.CoresOf(topo.SocketID(s)) {
			if m.view[c] {
				cs = append(cs, c)
			}
		}
		if len(cs) == 0 {
			continue
		}
		if aux&auxRelayLeaf != 0 {
			out = append(out, sendPlan{to: cs[0]})
			continue
		}
		out = append(out, sendPlan{to: cs[0], mask: m.relMask(cs[1:])})
	}
	return out
}

func sortGroupsByAgg(gs []skb.Group) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j].Agg < gs[j-1].Agg; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

func sortRegionsByAgg(rs []skb.Region) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Agg < rs[j-1].Agg; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// nextOpID mints a network-unique operation ID.
func (m *Monitor) nextOpID() uint64 {
	m.seq++
	return uint64(m.Core)<<32 | m.seq
}

// ---------------------------------------------------------------------------
// Initiation

// startOp begins executing a local request inside the monitor loop.
func (m *Monitor) startOp(p *sim.Proc, req *localReq) {
	m.stats.Initiated++
	op := req.op
	started := m.opBegin(p, op)
	switch op.Kind {
	case OpUnmap, OpCoreDown, OpCoreUp:
		m.startShootdown(p, req, started)
	case OpRetype, OpRevoke:
		m.start2PC(p, req, started)
	case OpNone:
		// Ping or capability transfer: single round trip to the target.
		m.ops[op.ID] = &opState{req: req, started: started, pending: corePending(req.targets[:1]), deadline: m.opDeadline(p, 0)}
		if req.isCap {
			m.send(p, req.targets[0], wire(MsgCapSend, op, req.capRights))
		} else {
			m.send(p, req.targets[0], wire(MsgPing, op, 0))
		}
	default:
		panic(fmt.Sprintf("monitor%d: bad op kind %d", m.Core, op.Kind))
	}
}

func (m *Monitor) startShootdown(p *sim.Proc, req *localReq, started sim.Time) {
	// Plan from the pre-operation view (a membership change must still reach
	// the core it removes), then apply locally (§5.1: the origin
	// participates too).
	plan := m.plan(req.protocol, req.targets)
	m.invalidateLocal(p, req.op)
	if len(plan) == 0 {
		m.stats.Commits++
		m.opEnd(p, req.op, started, true)
		req.fut.Complete(true)
		return
	}
	m.ops[req.op.ID] = &opState{req: req, started: started, plan: plan, pending: planPending(plan), phase: 1, deadline: m.opDeadline(p, 0)}
	msgs := make([]batchMsg, 0, len(plan))
	for _, s := range plan {
		msgs = append(msgs, batchMsg{to: s.to, msg: wire(MsgShootdown, req.op, s.mask)})
	}
	m.sendMany(p, msgs)
}

func (m *Monitor) start2PC(p *sim.Proc, req *localReq, started sim.Time) {
	op := req.op
	if !m.tryLock(op) || !m.prepareLocal(p, op) {
		m.unlock(op.ID)
		m.stats.Aborts++
		m.opEnd(p, op, started, false)
		req.fut.Complete(false)
		return
	}
	plan := m.plan(req.protocol, req.targets)
	if len(plan) == 0 {
		m.applyLocal(p, op)
		m.unlock(op.ID)
		m.stats.Commits++
		m.opEnd(p, op, started, true)
		req.fut.Complete(true)
		return
	}
	st := &opState{req: req, started: started, pending: planPending(plan), phase: 1, allYes: true, deadline: m.opDeadline(p, 0)}
	st.plan = plan
	m.ops[op.ID] = st
	msgs := make([]batchMsg, 0, len(plan))
	for _, s := range plan {
		msgs = append(msgs, batchMsg{to: s.to, msg: wire(MsgPrepare, op, s.mask)})
	}
	m.sendMany(p, msgs)
}

// ---------------------------------------------------------------------------
// One-phase commit (shootdown)

func (m *Monitor) invalidateLocal(p *sim.Proc, op Op) {
	if op.Kind == OpCoreDown || op.Kind == OpCoreUp {
		m.applyCoreChange(op)
		return
	}
	p.Sleep(m.net.Sys.Machine().Costs.TLBInval)
	if m.net.Hooks.Invalidate != nil {
		m.net.Hooks.Invalidate(p, m.Core, op)
	}
}

func (m *Monitor) handleShootdown(p *sim.Proc, src topo.CoreID, op Op, aux uint64, isFwd bool) {
	m.invalidateLocal(p, op)
	children := m.expandMask(aux & (auxCommit - 1))
	var relays []sendPlan
	if !isFwd {
		relays = m.relayPlans(aux)
	}
	if len(children)+len(relays) > 0 && !isFwd {
		pend := corePending(children)
		for _, r := range relays {
			pend[r.to] = true
		}
		m.fwd[op.ID] = &fwdState{parent: src, op: op, pending: pend, ackKind: MsgShootdownAck, deadline: m.fwdDeadline(p)}
		m.fwdBegin(p, op)
		msgs := make([]batchMsg, 0, len(children)+len(relays))
		for _, c := range children {
			msgs = append(msgs, batchMsg{to: c, msg: wire(MsgShootdownFwd, op, 0)})
		}
		// Relayed sockets get the unforwarded kind: their aggregation nodes
		// build their own fwdState with this head as the parent.
		for _, r := range relays {
			msgs = append(msgs, batchMsg{to: r.to, msg: wire(MsgShootdown, op, r.mask)})
		}
		m.sendMany(p, msgs)
		return
	}
	m.send(p, src, wire(MsgShootdownAck, op, 1))
}

// ---------------------------------------------------------------------------
// Two-phase commit (retype / revoke)

func (m *Monitor) prepareLocal(p *sim.Proc, op Op) bool {
	if m.net.Hooks.Prepare != nil {
		return m.net.Hooks.Prepare(p, m.Core, op)
	}
	return true
}

func (m *Monitor) applyLocal(p *sim.Proc, op Op) {
	if m.net.Hooks.Apply != nil {
		m.net.Hooks.Apply(p, m.Core, op)
	}
}

func (m *Monitor) handlePrepare(p *sim.Proc, src topo.CoreID, op Op, aux uint64, isFwd bool) {
	ok := m.tryLock(op) && m.prepareLocal(p, op)
	if !ok {
		m.unlock(op.ID)
	}
	children := m.expandMask(aux & (auxCommit - 1))
	var relays []sendPlan
	if !isFwd {
		relays = m.relayPlans(aux)
	}
	if len(children)+len(relays) > 0 && !isFwd {
		pend := corePending(children)
		for _, r := range relays {
			pend[r.to] = true
		}
		m.fwd[op.ID] = &fwdState{parent: src, op: op, pending: pend, allYes: ok, ackKind: MsgVote, deadline: m.fwdDeadline(p)}
		m.fwdBegin(p, op)
		msgs := make([]batchMsg, 0, len(children)+len(relays))
		for _, c := range children {
			msgs = append(msgs, batchMsg{to: c, msg: wire(MsgPrepareFwd, op, 0)})
		}
		for _, r := range relays {
			msgs = append(msgs, batchMsg{to: r.to, msg: wire(MsgPrepare, op, r.mask)})
		}
		m.sendMany(p, msgs)
		return
	}
	vote := uint64(0)
	if ok {
		vote = 1
	}
	m.send(p, src, wire(MsgVote, op, vote))
}

func (m *Monitor) handleVote(p *sim.Proc, src topo.CoreID, op Op, aux uint64) {
	if st, ok := m.ops[op.ID]; ok {
		if aux != 1 {
			st.allYes = false
		}
		delete(st.pending, src)
		if len(st.pending) > 0 {
			return
		}
		// Phase 1 complete: decide and disseminate.
		st.decision = st.allYes
		st.phase = 2
		var arg uint64
		if st.decision {
			arg = 1
		}
		m.net.Eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubMonitor, int32(m.Core), "monitor.decide", op.ID, arg)
		st.pending = planPending(st.plan)
		st.deadline = m.opDeadline(p, st.recoveries)
		msgs := make([]batchMsg, 0, len(st.plan))
		for _, s := range st.plan {
			aux := s.mask
			if st.decision {
				aux |= auxCommit
			}
			msgs = append(msgs, batchMsg{to: s.to, msg: wire(MsgDecision, op, aux)})
		}
		m.sendMany(p, msgs)
		return
	}
	// Aggregate votes on behalf of children.
	fw, ok := m.fwd[op.ID]
	if !ok {
		if m.net.OpTimeout > 0 {
			m.stats.Strays++
			return
		}
		panic(fmt.Sprintf("monitor%d: stray vote for op %#x", m.Core, op.ID))
	}
	if aux != 1 {
		fw.allYes = false
	}
	delete(fw.pending, src)
	if len(fw.pending) == 0 {
		delete(m.fwd, op.ID)
		m.fwdEnd(p, op, fw.allYes)
		v := uint64(0)
		if fw.allYes {
			v = 1
		}
		m.send(p, fw.parent, wire(MsgVote, op, v))
	}
}

func (m *Monitor) handleDecision(p *sim.Proc, src topo.CoreID, op Op, aux uint64, isFwd bool) {
	commit := aux&auxCommit != 0
	if commit {
		m.applyLocal(p, op)
	}
	m.unlock(op.ID)
	children := m.expandMask(aux & (auxCommit - 1))
	var relays []sendPlan
	if !isFwd {
		relays = m.relayPlans(aux)
	}
	if len(children)+len(relays) > 0 && !isFwd {
		pend := corePending(children)
		for _, r := range relays {
			pend[r.to] = true
		}
		m.fwd[op.ID] = &fwdState{parent: src, op: op, pending: pend, ackKind: MsgDecisionAck, deadline: m.fwdDeadline(p)}
		m.fwdBegin(p, op)
		msgs := make([]batchMsg, 0, len(children)+len(relays))
		for _, c := range children {
			msgs = append(msgs, batchMsg{to: c, msg: wire(MsgDecisionFwd, op, aux&auxCommit)})
		}
		for _, r := range relays {
			msgs = append(msgs, batchMsg{to: r.to, msg: wire(MsgDecision, op, r.mask|aux&auxCommit)})
		}
		m.sendMany(p, msgs)
		return
	}
	m.send(p, src, wire(MsgDecisionAck, op, 1))
}

func (m *Monitor) finish2PC(p *sim.Proc, st *opState) {
	op := st.req.op
	if st.decision {
		m.applyLocal(p, op)
		m.stats.Commits++
	} else {
		m.stats.Aborts++
	}
	m.unlock(op.ID)
	m.opEnd(p, op, st.started, st.decision)
	st.req.fut.Complete(st.decision)
}

// ---------------------------------------------------------------------------
// Range locks (serializing conflicting 2PC operations)

func (m *Monitor) tryLock(op Op) bool {
	for _, l := range m.locks {
		if l.opID == op.ID {
			return true // already hold it
		}
		if op.Base < l.base+memory.Addr(l.bytes) && l.base < op.Base+memory.Addr(op.Bytes) {
			return false
		}
	}
	m.locks = append(m.locks, lockRange{base: op.Base, bytes: op.Bytes, opID: op.ID})
	return true
}

func (m *Monitor) unlock(opID uint64) {
	for i, l := range m.locks {
		if l.opID == opID {
			m.locks = append(m.locks[:i], m.locks[i+1:]...)
			return
		}
	}
}

// LockedRanges returns the number of currently locked ranges (for tests).
func (m *Monitor) LockedRanges() int { return len(m.locks) }

// ---------------------------------------------------------------------------
// Capability transfer (§4.8)

func (m *Monitor) handleCapSend(p *sim.Proc, src topo.CoreID, op Op, aux uint64) {
	// The capability travels in its packed wire form (base, bytes,
	// type/level/rights word).
	c := caps.UnpackWords(uint64(op.Base), op.Bytes, aux)
	// Refuse the transfer if the range is mid-revocation (locked).
	probe := Op{ID: op.ID, Base: c.Base, Bytes: c.Bytes}
	ok := m.tryLock(probe)
	if ok {
		m.unlock(op.ID)
		m.CS.AddRoot(c)
		m.send(p, src, wire(MsgCapAck, op, 1))
		return
	}
	m.send(p, src, wire(MsgCapAck, op, 0))
}

// ---------------------------------------------------------------------------
// Public API (called from application procs)

// submit charges the LRPC into the monitor, enqueues the request and wakes
// the monitor.
func (m *Monitor) submit(p *sim.Proc, req *localReq) *sim.Future[bool] {
	m.net.Kern.Core(m.Core).LRPC(p)
	req.fut = sim.NewFuture[bool](m.net.Eng)
	m.local.Push(req)
	m.net.wake(p, m.Core)
	return req.fut
}

// finishCall awaits the operation and charges the reply LRPC back to the
// calling process.
func (m *Monitor) finishCall(p *sim.Proc, fut *sim.Future[bool]) bool {
	ok := fut.Await(p)
	m.net.Kern.Core(m.Core).LRPC(p)
	return ok
}

// Unmap removes or downgrades the mapping of [base, base+bytes) on the given
// cores (nil = all cores) using the given dissemination protocol, blocking
// the calling process until every TLB is clean. It is the complete unmap
// path of the paper's Figure 7.
func (m *Monitor) Unmap(p *sim.Proc, base memory.Addr, bytes uint64, targets []topo.CoreID, protocol Protocol) bool {
	return m.finishCall(p, m.UnmapAsync(p, base, bytes, targets, protocol))
}

// UnmapAsync is the split-phase form of Unmap: it returns immediately with a
// future the caller may await later (the reply LRPC is not charged).
func (m *Monitor) UnmapAsync(p *sim.Proc, base memory.Addr, bytes uint64, targets []topo.CoreID, protocol Protocol) *sim.Future[bool] {
	op := Op{Kind: OpUnmap, ID: m.nextOpID(), Origin: m.Core, Base: base, Bytes: bytes}
	return m.submit(p, &localReq{op: op, protocol: protocol, targets: targets})
}

// Retype performs a two-phase-committed capability retype of
// [base, base+bytes) across the given cores (nil = all). It reports whether
// the operation committed.
func (m *Monitor) Retype(p *sim.Proc, base memory.Addr, bytes uint64, to caps.Type, level int, targets []topo.CoreID) bool {
	return m.finishCall(p, m.RetypeAsync(p, base, bytes, to, level, targets))
}

// RetypeAsync is the split-phase form of Retype, used for pipelining
// (Figure 8's "cost when pipelining").
func (m *Monitor) RetypeAsync(p *sim.Proc, base memory.Addr, bytes uint64, to caps.Type, level int, targets []topo.CoreID) *sim.Future[bool] {
	op := Op{Kind: OpRetype, ID: m.nextOpID(), Origin: m.Core, Base: base, Bytes: bytes, NewType: to, Level: level}
	return m.submit(p, &localReq{op: op, protocol: NUMAAware, targets: targets})
}

// Revoke performs a two-phase-committed revocation of the capability range.
func (m *Monitor) Revoke(p *sim.Proc, base memory.Addr, bytes uint64, targets []topo.CoreID) bool {
	op := Op{Kind: OpRevoke, ID: m.nextOpID(), Origin: m.Core, Base: base, Bytes: bytes}
	return m.finishCall(p, m.submit(p, &localReq{op: op, protocol: NUMAAware, targets: targets}))
}

// SendCap transfers a capability to the monitor of another core (§4.8),
// refusing if the capability lacks the grant right. It reports whether the
// remote monitor accepted it.
func (m *Monitor) SendCap(p *sim.Proc, to topo.CoreID, c caps.Capability) bool {
	if c.Rights&caps.CanGrant == 0 {
		return false
	}
	w0, w1, w2 := c.PackWords()
	op := Op{Kind: OpNone, ID: m.nextOpID(), Origin: m.Core, Base: memory.Addr(w0), Bytes: w1}
	req := &localReq{op: op, targets: []topo.CoreID{to}, capRights: w2, isCap: true}
	return m.finishCall(p, m.submit(p, req))
}

// Ping measures a monitor-to-monitor round trip, returning its latency.
func (m *Monitor) Ping(p *sim.Proc, to topo.CoreID) sim.Time {
	start := p.Now()
	op := Op{Kind: OpNone, ID: m.nextOpID(), Origin: m.Core}
	m.finishCall(p, m.submit(p, &localReq{op: op, targets: []topo.CoreID{to}}))
	return p.Now() - start
}
