package monitor

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// Broadcast is the additional raw protocol of Figure 6: every slave polls a
// single shared cache line written by the master. It performs badly by
// design (the line crosses the interconnect once per slave) and is only
// meaningful for the raw harness, not monitor-mediated operations.
const Broadcast Protocol = 99

// rawPollGap is the slave polling interval in the raw harness.
const rawPollGap = 25

// RawShootdown measures the raw messaging cost of one TLB-shootdown round
// (no TLB invalidation, no monitors — just the messaging mechanism, as in
// the paper's Figure 6) over the first nCores cores of the machine, repeated
// iters times. It returns the per-round latency sample observed at the
// master.
func RawShootdown(e *sim.Engine, sys *cache.System, kb *skb.KB, proto Protocol, nCores, iters int) *stats.Sample {
	sample := &stats.Sample{}
	if nCores < 2 {
		sample.Add(0)
		return sample
	}
	switch proto {
	case Broadcast:
		rawBroadcast(e, sys, nCores, iters, sample)
	case Unicast:
		rawUnicast(e, sys, nCores, iters, sample)
	case Multicast, NUMAAware:
		rawMulticast(e, sys, kb, proto, nCores, iters, sample)
	default:
		panic(fmt.Sprintf("monitor: no raw harness for protocol %v", proto))
	}
	e.Run()
	return sample
}

// ackProcessCost is the per-acknowledgement handling cost in the master's
// receive loop (bookkeeping beyond the raw channel receive).
const ackProcessCost = 60

// ackSweep receives one ack from each channel, polling them round-robin the
// way a real receive loop does. The channel endpoints live in an array, so
// the hardware stride prefetcher streams their lines in ahead of the polls
// (§4.6, §5.1) — modelled as a software prefetch per pending channel.
func ackSweep(p *sim.Proc, chans []*urpc.Channel) {
	remaining := len(chans)
	done := make([]bool, len(chans))
	next := func(i int) *urpc.Channel {
		for j := i + 1; j < len(chans); j++ {
			if !done[j] {
				return chans[j]
			}
		}
		return nil
	}
	for remaining > 0 {
		if n := next(-1); n != nil {
			n.PrefetchSlot(p)
		}
		progress := false
		for i, ch := range chans {
			if done[i] {
				continue
			}
			// Stride-prefetch the following endpoint while handling this one.
			if n := next(i); n != nil {
				n.PrefetchSlot(p)
			}
			if _, ok := ch.TryRecv(p); ok {
				p.Sleep(ackProcessCost)
				done[i] = true
				remaining--
				progress = true
			}
		}
		if !progress {
			p.Sleep(rawPollGap)
		}
	}
}

func rawBroadcast(e *sim.Engine, sys *cache.System, nCores, iters int, sample *stats.Sample) {
	mem := sys.Memory()
	bcast := mem.AllocLines(1, 0).Base
	acks := make([]*urpc.Channel, nCores-1)
	for i := 1; i < nCores; i++ {
		acks[i-1] = urpc.New(sys, topo.CoreID(i), 0, urpc.Options{Slots: 4, Home: 0})
	}
	for i := 1; i < nCores; i++ {
		core := topo.CoreID(i)
		ch := acks[i-1]
		e.Spawn(fmt.Sprintf("slave%d", i), func(p *sim.Proc) {
			for it := 1; it <= iters; it++ {
				for sys.Load(p, core, bcast) < uint64(it) {
					p.Sleep(rawPollGap)
				}
				ch.Send(p, urpc.Message{uint64(it)})
			}
		})
	}
	e.Spawn("master", func(p *sim.Proc) {
		for it := 1; it <= iters; it++ {
			start := p.Now()
			sys.Store(p, 0, bcast, uint64(it))
			ackSweep(p, acks)
			sample.Add(float64(p.Now() - start))
		}
	})
}

func rawUnicast(e *sim.Engine, sys *cache.System, nCores, iters int, sample *stats.Sample) {
	reqs := make([]*urpc.Channel, nCores-1)
	acks := make([]*urpc.Channel, nCores-1)
	for i := 1; i < nCores; i++ {
		reqs[i-1] = urpc.New(sys, 0, topo.CoreID(i), urpc.Options{Slots: 4, Home: 0})
		acks[i-1] = urpc.New(sys, topo.CoreID(i), 0, urpc.Options{Slots: 4, Home: 0})
	}
	for i := 1; i < nCores; i++ {
		req, ack := reqs[i-1], acks[i-1]
		e.Spawn(fmt.Sprintf("slave%d", i), func(p *sim.Proc) {
			for it := 1; it <= iters; it++ {
				m := req.Recv(p)
				ack.Send(p, m)
			}
		})
	}
	e.Spawn("master", func(p *sim.Proc) {
		for it := 1; it <= iters; it++ {
			start := p.Now()
			for _, ch := range reqs {
				ch.Send(p, urpc.Message{uint64(it)})
			}
			ackSweep(p, acks)
			sample.Add(float64(p.Now() - start))
		}
	})
}

// rawMulticast builds the two-level tree: the master sends to one
// aggregation core per socket, which forwards to its socket-local children
// through the shared cache; children ack their aggregator, aggregators send
// a combined ack to the master. NUMAAware homes each channel at its receiver
// and sends to the furthest socket first; plain Multicast homes everything
// at the master's socket and sends in socket order.
func rawMulticast(e *sim.Engine, sys *cache.System, kb *skb.KB, proto Protocol, nCores, iters int, sample *stats.Sample) {
	var cores []topo.CoreID
	for i := 0; i < nCores; i++ {
		cores = append(cores, topo.CoreID(i))
	}
	tree := kb.MulticastTree(0, cores)
	groups := append([]skb.Group(nil), tree.Groups...)
	if proto == Multicast {
		sortGroupsByAgg(groups)
	}
	home := func(c topo.CoreID) int {
		if proto == NUMAAware {
			return int(sys.Machine().Socket(c))
		}
		return 0
	}
	mkChan := func(from, to topo.CoreID) *urpc.Channel {
		return urpc.New(sys, from, to, urpc.Options{Slots: 4, Home: home(to)})
	}

	var masterDown []*urpc.Channel // to aggs and local children
	var masterUp []*urpc.Channel

	for _, g := range groups {
		down := mkChan(0, g.Agg)
		up := mkChan(g.Agg, 0)
		masterDown = append(masterDown, down)
		masterUp = append(masterUp, up)
		var kidDown, kidUp []*urpc.Channel
		for _, c := range g.Children {
			kd := mkChan(g.Agg, c)
			ku := mkChan(c, g.Agg)
			kidDown = append(kidDown, kd)
			kidUp = append(kidUp, ku)
			c := c
			e.Spawn(fmt.Sprintf("leaf%d", c), func(p *sim.Proc) {
				for it := 1; it <= iters; it++ {
					m := kd.Recv(p)
					_ = c
					ku.Send(p, m)
				}
			})
		}
		agg := g.Agg
		e.Spawn(fmt.Sprintf("agg%d", agg), func(p *sim.Proc) {
			for it := 1; it <= iters; it++ {
				m := down.Recv(p)
				for _, kd := range kidDown {
					kd.Send(p, m)
				}
				ackSweep(p, kidUp)
				up.Send(p, m)
			}
		})
	}
	for _, c := range tree.Local {
		down := mkChan(0, c)
		up := mkChan(c, 0)
		masterDown = append(masterDown, down)
		masterUp = append(masterUp, up)
		e.Spawn(fmt.Sprintf("local%d", c), func(p *sim.Proc) {
			for it := 1; it <= iters; it++ {
				m := down.Recv(p)
				up.Send(p, m)
			}
		})
	}
	e.Spawn("master", func(p *sim.Proc) {
		for it := 1; it <= iters; it++ {
			start := p.Now()
			for _, ch := range masterDown {
				ch.Send(p, urpc.Message{uint64(it)})
			}
			ackSweep(p, masterUp)
			sample.Add(float64(p.Now() - start))
		}
	})
}

// RawShootdownLatency is a convenience wrapper returning the mean per-round
// latency in cycles, discarding the first (cold) round.
func RawShootdownLatency(m *topo.Machine, proto Protocol, nCores, iters int) float64 {
	e := sim.NewEngine(1)
	defer e.Close()
	sys := newBenchCache(e, m)
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	s := RawShootdown(e, sys, kb, proto, nCores, iters+1)
	var warm stats.Sample
	warm.AddN(s.Values()[1:]...) // discard the cold first round
	return warm.Mean()
}

func newBenchCache(e *sim.Engine, m *topo.Machine) *cache.System {
	return cache.New(e, m, memoryNew(m), interconnectNew(m))
}

// Indirections to avoid a wide import list at call sites.
func memoryNew(m *topo.Machine) *memory.Memory             { return memory.New(m) }
func interconnectNew(m *topo.Machine) *interconnect.Fabric { return interconnect.New(m) }
func kernelNew(e *sim.Engine, m *topo.Machine) *kernel.System {
	return kernel.NewSystem(e, m)
}
func skbNew(m *topo.Machine) *skb.KB {
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	return kb
}
