package monitor

import (
	"testing"

	"multikernel/internal/topo"
)

func TestRawShootdownSingleCoreIsFree(t *testing.T) {
	if got := RawShootdownLatency(topo.AMD8x4(), Broadcast, 1, 3); got != 0 {
		t.Fatalf("1-core shootdown latency=%v", got)
	}
}

func TestRawShootdownAllProtocolsComplete(t *testing.T) {
	m := topo.AMD8x4()
	for _, proto := range []Protocol{Broadcast, Unicast, Multicast, NUMAAware} {
		lat := RawShootdownLatency(m, proto, 8, 4)
		if lat <= 0 {
			t.Errorf("%v: latency %v", proto, lat)
		}
	}
}

// The qualitative result of Figure 6: at 32 cores, broadcast is worst,
// unicast beats broadcast, multicast beats unicast, and NUMA-aware multicast
// is best.
func TestFigure6ProtocolOrderingAt32Cores(t *testing.T) {
	m := topo.AMD8x4()
	const iters = 6
	b := RawShootdownLatency(m, Broadcast, 32, iters)
	u := RawShootdownLatency(m, Unicast, 32, iters)
	mc := RawShootdownLatency(m, Multicast, 32, iters)
	numa := RawShootdownLatency(m, NUMAAware, 32, iters)
	t.Logf("broadcast=%.0f unicast=%.0f multicast=%.0f numa=%.0f", b, u, mc, numa)
	if !(numa <= mc && mc < u && u < b) {
		t.Fatalf("ordering violated: broadcast=%.0f unicast=%.0f multicast=%.0f numa=%.0f", b, u, mc, numa)
	}
}

// Broadcast should grow roughly linearly with core count; multicast should
// grow much more slowly (steps at socket boundaries).
func TestFigure6ScalingShape(t *testing.T) {
	m := topo.AMD8x4()
	const iters = 5
	b8 := RawShootdownLatency(m, Broadcast, 8, iters)
	b32 := RawShootdownLatency(m, Broadcast, 32, iters)
	if b32 < 2.5*b8 {
		t.Errorf("broadcast grew only %.0f -> %.0f from 8 to 32 cores", b8, b32)
	}
	n8 := RawShootdownLatency(m, NUMAAware, 8, iters)
	n32 := RawShootdownLatency(m, NUMAAware, 32, iters)
	if n32 > 3*n8 {
		t.Errorf("NUMA multicast grew too fast: %.0f -> %.0f", n8, n32)
	}
	if n32 >= b32 {
		t.Errorf("NUMA multicast (%.0f) not better than broadcast (%.0f) at 32 cores", n32, b32)
	}
}

func TestRawShootdownUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RawShootdownLatency(topo.AMD2x2(), Protocol(55), 4, 2)
}
