package monitor

import (
	"testing"

	"multikernel/internal/caps"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Hierarchical dissemination on scaled machines: full-machine operations on
// a mesh with more remote sockets than hierFanout must route over the SKB's
// three-level tree — bounding the initiator's direct sends — while still
// reaching every core exactly once and leaving no forwarding state behind.

// hierMachine is the smallest mesh the planner hierarchizes: 12 sockets.
func hierMachine() *topo.Machine { return topo.MeshXY(4, 3, 2) }

func TestHierPlanActivates(t *testing.T) {
	f := newFixture(t, hierMachine())
	mon := f.net.Monitor(0)
	if !mon.useHier() {
		t.Fatalf("%s (%d sockets) should use hierarchical dissemination", f.m.Name, f.m.NSockets)
	}
	plan := mon.plan(NUMAAware, nil)
	// Direct sends: at most hierFanout region heads plus socket-local cores.
	if max := hierFanout + f.m.CoresPerSocket - 1; len(plan) > max {
		t.Fatalf("initiator sends %d direct messages, want <= %d", len(plan), max)
	}
	// At least one send must carry a relay mask (12 sockets > 8 heads).
	relayed := 0
	for _, s := range plan {
		relayed += len(mon.relayPlans(s.mask))
	}
	if relayed == 0 {
		t.Fatal("no relay masks in hierarchical plan")
	}
	// Paper machines stay flat: no relay bits, one send per remote socket.
	fl := newFixture(t, topo.AMD8x4())
	if fl.net.Monitor(0).useHier() {
		t.Fatal("8-socket machine must not hierarchize")
	}
}

func TestHierUnmapReachesAllCores(t *testing.T) {
	for _, proto := range []Protocol{Multicast, NUMAAware} {
		f := newFixture(t, hierMachine())
		ok := false
		f.e.Spawn("app", func(p *sim.Proc) {
			ok = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, proto)
		})
		f.e.Run()
		if !ok {
			t.Fatalf("%v: unmap failed", proto)
		}
		for c := 0; c < f.m.NumCores(); c++ {
			if f.invalidated[topo.CoreID(c)] != 1 {
				t.Fatalf("%v: core %d invalidated %d times, want 1", proto, c, f.invalidated[topo.CoreID(c)])
			}
		}
		// No leaked aggregation state on any monitor.
		for c := 0; c < f.m.NumCores(); c++ {
			if n := len(f.net.Monitor(topo.CoreID(c)).fwd); n != 0 {
				t.Fatalf("%v: monitor %d left %d fwd entries", proto, c, n)
			}
		}
	}
}

func TestHierRetypeCommitsEverywhere(t *testing.T) {
	f := newFixture(t, hierMachine())
	ok := false
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(5).Retype(p, 0x40000, 8192, caps.Frame, 0, nil)
	})
	f.e.Run()
	if !ok {
		t.Fatal("retype aborted unexpectedly")
	}
	for c := 0; c < f.m.NumCores(); c++ {
		id := topo.CoreID(c)
		if f.applied[id] != 1 {
			t.Fatalf("core %d applied %d times, want 1", c, f.applied[id])
		}
	}
}

// A veto on a relayed socket must reach the initiator through two
// aggregation levels and abort the operation everywhere.
func TestHierRetypeVetoOnRelayedSocket(t *testing.T) {
	f := newFixture(t, hierMachine())
	// Core 23 is on the last socket — under latency ordering from core 0 it
	// is a region head's relay target or head itself; either way its vote
	// crosses the hierarchy.
	f.vetoCores[23] = true
	ok := true
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(0).Retype(p, 0x40000, 8192, caps.Frame, 0, nil)
	})
	f.e.Run()
	if ok {
		t.Fatal("retype committed past a veto")
	}
	for c := 0; c < f.m.NumCores(); c++ {
		if f.applied[topo.CoreID(c)] != 0 {
			t.Fatalf("core %d applied an aborted retype", c)
		}
	}
	// Range locks released everywhere after the abort round.
	for c := 0; c < f.m.NumCores(); c++ {
		if n := f.net.Monitor(topo.CoreID(c)).LockedRanges(); n != 0 {
			t.Fatalf("monitor %d still holds %d locks", c, n)
		}
	}
}

// Membership changes (1PC over the hierarchy) must update every replica of
// the view, and subsequent full-machine plans must drop the offline core.
func TestHierCoreDownUpdatesAllViews(t *testing.T) {
	f := newFixture(t, hierMachine())
	const victim = topo.CoreID(13)
	f.e.Spawn("app", func(p *sim.Proc) {
		if err := f.net.PowerOff(p, 0, victim); err != nil {
			t.Error(err)
		}
		f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, NUMAAware)
	})
	f.e.Run()
	for c := 0; c < f.m.NumCores(); c++ {
		if f.net.Monitor(topo.CoreID(c)).Online(victim) {
			t.Fatalf("monitor %d still sees core %d online", c, victim)
		}
	}
	if f.invalidated[victim] != 0 {
		t.Fatal("offline core was shot down")
	}
	for c := 0; c < f.m.NumCores(); c++ {
		if topo.CoreID(c) != victim && f.invalidated[topo.CoreID(c)] != 1 {
			t.Fatalf("core %d invalidated %d times", c, f.invalidated[topo.CoreID(c)])
		}
	}
}

// The hierarchy must pay off where it applies: on a wide machine the
// initiator-side burst of a flat tree (one marshal per remote socket) makes
// full-machine unmap slower than the hierarchical plan. Compare against
// unicast, whose initiator burst is strictly larger.
func TestHierBeatsUnicastAtScale(t *testing.T) {
	measure := func(proto Protocol) sim.Time {
		f := newFixture(t, hierMachine())
		var lat sim.Time
		f.e.Spawn("app", func(p *sim.Proc) {
			f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, proto)
			start := p.Now()
			f.net.Monitor(0).Unmap(p, 0x20000, 4096, nil, proto)
			lat = p.Now() - start
		})
		f.e.Run()
		return lat
	}
	uni, numa := measure(Unicast), measure(NUMAAware)
	if numa >= uni {
		t.Fatalf("hierarchical NUMA-aware (%d) not faster than unicast (%d)", numa, uni)
	}
}
