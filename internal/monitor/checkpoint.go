package monitor

// Checkpoint serialization for the monitor network, implementing
// sim.Checkpointer. The image carries each monitor's Go-side replica state —
// blocked flag, membership view, liveness flags, counters — and every URPC
// mesh channel's cursors. In-flight agreement operations (ops/fwd/locks) and
// queued local requests are rejected: a checkpoint is taken when the
// monitors are idle, which is exactly the state a boot image is saved in.

import (
	"fmt"
	"io"

	"multikernel/internal/ckpt"
	"multikernel/internal/topo"
)

// Per-monitor flag bits in the serialized image.
const (
	mfParked = 1 << iota
	mfDown
	mfDead
)

// packBools packs a bool slice into u64 words, LSB first.
func packBools(bs []bool) []uint64 {
	out := make([]uint64, (len(bs)+63)/64)
	for i, b := range bs {
		if b {
			out[i/64] |= 1 << uint(i%64)
		}
	}
	return out
}

// unpackBools unpacks n bools from u64 words.
func unpackBools(words []uint64, n int) ([]bool, error) {
	if len(words) != (n+63)/64 {
		return nil, fmt.Errorf("monitor: bool set has %d words; want %d", len(words), (n+63)/64)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = words[i/64]&(1<<uint(i%64)) != 0
	}
	return out, nil
}

// CheckpointState serializes every monitor and mesh channel.
func (n *Network) CheckpointState(w io.Writer) error {
	if err := ckpt.WriteU64(w, uint64(len(n.monitors))); err != nil {
		return err
	}
	if err := ckpt.WriteU64Slice(w, packBools(n.failed)); err != nil {
		return err
	}
	for _, mon := range n.monitors {
		if len(mon.ops) > 0 || len(mon.fwd) > 0 || len(mon.locks) > 0 || mon.local.Len() > 0 {
			return fmt.Errorf("monitor: core %d has in-flight operations (not quiescent)", mon.Core)
		}
		var flags uint64
		if mon.parked {
			flags |= mfParked
		}
		if mon.down {
			flags |= mfDown
		}
		if mon.dead {
			flags |= mfDead
		}
		st := &mon.stats
		if err := ckpt.WriteU64(w, flags, mon.seq,
			st.Handled, st.Initiated, st.Commits, st.Aborts, st.Wakeups,
			st.Excised, st.Recoveries, st.Strays, st.Dropped); err != nil {
			return err
		}
		if err := ckpt.WriteU64Slice(w, packBools(mon.view)); err != nil {
			return err
		}
	}
	// Mesh channels in (sender, receiver) order — the construction order.
	for a := range n.monitors {
		for b := range n.monitors {
			if a == b {
				continue
			}
			if err := n.monitors[a].out[topo.CoreID(b)].CheckpointState(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// RestoreState reads back what CheckpointState wrote.
func (n *Network) RestoreState(r io.Reader) error {
	var ncores uint64
	if err := ckpt.ReadU64(r, &ncores); err != nil {
		return err
	}
	if int(ncores) != len(n.monitors) {
		return fmt.Errorf("monitor: image has %d cores; network has %d", ncores, len(n.monitors))
	}
	fwords, err := ckpt.ReadU64Slice(r)
	if err != nil {
		return err
	}
	failed, err := unpackBools(fwords, len(n.failed))
	if err != nil {
		return err
	}
	n.failed = failed
	for _, mon := range n.monitors {
		var flags uint64
		st := &mon.stats
		if err := ckpt.ReadU64(r, &flags, &mon.seq,
			&st.Handled, &st.Initiated, &st.Commits, &st.Aborts, &st.Wakeups,
			&st.Excised, &st.Recoveries, &st.Strays, &st.Dropped); err != nil {
			return err
		}
		mon.parked = flags&mfParked != 0
		mon.down = flags&mfDown != 0
		mon.dead = flags&mfDead != 0
		vwords, err := ckpt.ReadU64Slice(r)
		if err != nil {
			return err
		}
		if mon.view, err = unpackBools(vwords, int(ncores)); err != nil {
			return err
		}
	}
	for a := range n.monitors {
		for b := range n.monitors {
			if a == b {
				continue
			}
			if err := n.monitors[a].out[topo.CoreID(b)].RestoreState(r); err != nil {
				return err
			}
		}
	}
	return nil
}
